// Lifespan: reproduce the paper's SSD-wear argument (§5.3.4 / Table 1).
// The same Ten-Cloud workload replays under every update method; the
// flash-translation-layer model counts programmed pages and erase
// operations. TSUE's sequential log appends and merged overwrites
// program far fewer pages than the in-place baselines, which the paper
// translates into a 2.5x-13x lifespan extension.
package main

import (
	"context"
	"fmt"
	"log"

	tsue "repro"
)

func main() {
	ctx := context.Background()
	const (
		fileSize = 8 << 20
		ops      = 4000
	)
	type row struct {
		method     string
		overwrites int64
		erases     int64
	}
	var rows []row
	var worst int64
	for _, method := range tsue.Methods {
		opts := tsue.DefaultOptions()
		opts.Method = method
		opts.BlockSize = 64 << 10
		cfg := tsue.DefaultStrategyConfig()
		cfg.UnitSize = 512 << 10
		opts.Strategy = &cfg
		cluster := tsue.MustNewCluster(opts)

		tr := tsue.TenCloudTrace(fileSize, ops, 3)
		rep := tsue.NewReplayer(cluster, 16)
		ino, err := rep.Prepare(ctx, "wear", fileSize)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := rep.Run(ctx, tr, ino); err != nil {
			log.Fatal(err)
		}
		// Include the deferred recycle bill: all methods must leave the
		// stripes fully consistent.
		if err := cluster.Flush(ctx); err != nil {
			log.Fatal(err)
		}
		if err := cluster.VerifyStripes(ino, nil); err != nil {
			log.Fatal(err)
		}
		st := cluster.DeviceStats()
		rows = append(rows, row{method, st.Overwrites, st.EraseOps})
		if st.EraseOps > worst {
			worst = st.EraseOps
		}
		cluster.Close()
	}

	fmt.Printf("Ten-Cloud replay, RS(6,4), %d updates — flash wear by update method\n\n", ops)
	fmt.Printf("%-8s %12s %12s %14s\n", "method", "overwrites", "erase ops", "lifespan vs worst")
	for _, r := range rows {
		fmt.Printf("%-8s %12d %12d %13.1fx\n", r.method, r.overwrites, r.erases, float64(worst)/float64(r.erases))
	}
	fmt.Println("\nfewer erases = longer flash life; TSUE turns random overwrites into merged, sequential log traffic")
}
