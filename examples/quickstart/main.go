// Quickstart: bring up an in-process ECFS cluster running TSUE, open a
// file handle (the v2 context-aware API), write a striped+encoded file
// through io.WriterAt, apply partial updates through the two-stage
// update path, read them back immediately (read-your-writes via the
// DataLog), then flush the three log layers and verify that every stripe
// still satisfies its parity equations.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"math/rand"

	tsue "repro"
)

func main() {
	ctx := context.Background()
	opts := tsue.DefaultOptions()
	opts.BlockSize = 256 << 10 // keep the demo light
	cluster := tsue.MustNewCluster(opts)
	defer cluster.Close()

	// OpenFile returns a *tsue.File: io.ReaderAt + io.WriterAt +
	// io.Closer, plus UpdateAt for the paper's two-stage updates.
	f, err := cluster.CreateFile(ctx, "demo-volume")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	// One full stripe of data: K blocks, encoded into M parity blocks by
	// the client and distributed across distinct OSDs (WriteAt is the
	// "normal write" path; offsets must be stripe-aligned).
	stripeSpan := opts.K * opts.BlockSize
	data := make([]byte, stripeSpan)
	rand.New(rand.NewSource(42)).Read(data)
	if _, err := f.WriteAt(data, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d bytes as RS(%d,%d) stripes across %d OSDs\n",
		len(data), opts.K, opts.M, opts.NumOSDs)

	// Partial updates: these take TSUE's synchronous front end — a
	// sequential DataLog append plus replica forwarding — and return in
	// microseconds of modeled latency; no read-modify-write blocks them.
	payload := []byte("TSUE two-stage update: log append now, recycle later")
	lat, err := f.UpdateAt(ctx, 12345, payload, 0)
	if err != nil {
		log.Fatal(err)
	}
	copy(data[12345:], payload)
	fmt.Printf("update acknowledged after modeled %v (front-end only)\n", lat)

	// Read-your-writes: the DataLog doubles as a read cache.
	got := make([]byte, len(payload))
	if _, err := f.ReadAt(got, 12345); err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		log.Fatalf("stale read: %q", got)
	}
	fmt.Println("read back the update through the file handle")

	// Force the asynchronous back end to finish: DataLog -> DeltaLog ->
	// ParityLog -> parity blocks, then verify all stripes.
	if err := cluster.Flush(ctx); err != nil {
		log.Fatal(err)
	}
	if err := cluster.VerifyStripes(f.Ino(), data); err != nil {
		log.Fatalf("stripe verification failed: %v", err)
	}
	fmt.Println("all stripes verify: data matches and parity is consistent")
}
