// Quickstart: bring up an in-process ECFS cluster running TSUE, write a
// striped+encoded file, apply partial updates through the two-stage
// update path, read them back immediately (read-your-writes via the
// DataLog), then flush the three log layers and verify that every stripe
// still satisfies its parity equations.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	tsue "repro"
)

func main() {
	opts := tsue.DefaultOptions()
	opts.BlockSize = 256 << 10 // keep the demo light
	cluster := tsue.MustNewCluster(opts)
	defer cluster.Close()

	client := cluster.NewClient()
	ino, err := client.Create("demo-volume")
	if err != nil {
		log.Fatal(err)
	}

	// One full stripe of data: K blocks, encoded into M parity blocks by
	// the client and distributed across distinct OSDs.
	data := make([]byte, client.StripeSpan())
	rand.New(rand.NewSource(42)).Read(data)
	if _, err := client.WriteFile(ino, data); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d bytes as RS(%d,%d) stripes across %d OSDs\n",
		len(data), opts.K, opts.M, opts.NumOSDs)

	// Partial updates: these take TSUE's synchronous front end — a
	// sequential DataLog append plus replica forwarding — and return in
	// microseconds of modeled latency; no read-modify-write blocks them.
	payload := []byte("TSUE two-stage update: log append now, recycle later")
	lat, err := client.Update(ino, 12345, payload, 0)
	if err != nil {
		log.Fatal(err)
	}
	copy(data[12345:], payload)
	fmt.Printf("update acknowledged after modeled %v (front-end only)\n", lat)

	// Read-your-writes: the DataLog doubles as a read cache.
	got, readLat, err := client.Read(ino, 12345, len(payload))
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		log.Fatalf("stale read: %q", got)
	}
	fmt.Printf("read back the update from the log cache in %v\n", readLat)

	// Force the asynchronous back end to finish: DataLog -> DeltaLog ->
	// ParityLog -> parity blocks, then verify all stripes.
	if err := cluster.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := cluster.VerifyStripes(ino, data); err != nil {
		log.Fatalf("stripe verification failed: %v", err)
	}
	fmt.Println("all stripes verify: data matches and parity is consistent")
}
