// Recovery: exercise the failure path of the paper's §4.2. A client
// updates a TSUE volume; one OSD is killed while updates are still
// buffered in its DataLog; the parallel rebuild engine reconstructs the
// lost blocks from stripe survivors AND replays the dead node's replica
// log so that no acknowledged update is lost. The scenario then
// continues multi-failure: more updates land, a second OSD dies, and it
// too is rebuilt. The cluster is verified byte-for-byte against an
// in-memory mirror after each round.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	tsue "repro"

	"repro/internal/ecfs"
	"repro/internal/wire"
)

func main() {
	opts := tsue.DefaultOptions()
	opts.BlockSize = 64 << 10
	opts.RecoveryWorkers = 8
	cfg := tsue.DefaultStrategyConfig()
	cfg.UnitSize = 16 << 20 // large units: nothing recycles before the crash
	opts.Strategy = &cfg
	cluster := tsue.MustNewCluster(opts)
	defer cluster.Close()

	client := cluster.NewClient()
	ino, err := client.Create("vol")
	if err != nil {
		log.Fatal(err)
	}
	fileSize := 2 * client.StripeSpan()
	mirror := make([]byte, fileSize)
	rng := rand.New(rand.NewSource(9))
	rng.Read(mirror)
	if _, err := client.WriteFile(ino, mirror); err != nil {
		log.Fatal(err)
	}

	update := func(n int) {
		for i := 0; i < n; i++ {
			off := int64(rng.Intn(fileSize - 256))
			data := make([]byte, 1+rng.Intn(256))
			rng.Read(data)
			if _, err := client.Update(ino, off, data, 0); err != nil {
				log.Fatal(err)
			}
			copy(mirror[off:], data)
		}
		fmt.Printf("%d updates acknowledged; none recycled yet (units not full)\n", n)
	}
	verify := func() {
		got, _, err := client.Read(ino, 0, fileSize)
		if err != nil {
			log.Fatal(err)
		}
		if !bytes.Equal(got, mirror) {
			log.Fatal("data lost: post-recovery content does not match the mirror")
		}
		fmt.Println("post-recovery read matches the mirror: no acknowledged update was lost")
	}
	// failAndRecover kills an OSD, rebuilds its blocks with the parallel
	// engine (8 workers, concurrent shard fetches, fetch-error fallback),
	// and reinstates the replacement under the same node id.
	failAndRecover := func(victim wire.NodeID) {
		cluster.FailOSD(victim)
		fmt.Printf("OSD %d failed — its DataLog content is lost with it\n", victim)
		repl, err := ecfs.NewOSD(victim, opts.Device, cluster.Tr.Caller(victim), "tsue", cfg, opts.Kind)
		if err != nil {
			log.Fatal(err)
		}
		res, err := cluster.Recover(victim, repl)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("recovered %d blocks (%d KiB) with %d workers at %.1f MB/s; %d KiB of pending updates replayed from replica logs\n",
			res.Blocks, res.Bytes>>10, res.Workers, res.Bandwidth/1e6, res.ReplayedBytes>>10)
		cluster.Reinstate(repl)
	}

	// Round 1: updates buffered, first OSD dies.
	update(200)
	loc, err := cluster.MDS.Lookup(ino, 0)
	if err != nil {
		log.Fatal(err)
	}
	failAndRecover(loc.Nodes[0])
	verify()

	// Round 2 (multi-failure): more updates land, then a different OSD —
	// one holding a parity block of stripe 0 — dies as well.
	update(200)
	failAndRecover(loc.Nodes[len(loc.Nodes)-1])
	verify()
}
