// Recovery: exercise the failure path of the paper's §4.2. A client
// updates a TSUE volume; one OSD is killed while updates are still
// buffered in its DataLog; recovery reconstructs the lost blocks from
// stripe survivors AND replays the dead node's replica log so that no
// acknowledged update is lost. The recovered cluster is then verified
// byte-for-byte against an in-memory mirror.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"time"

	tsue "repro"

	"repro/internal/ecfs"
)

func main() {
	opts := tsue.DefaultOptions()
	opts.BlockSize = 64 << 10
	cfg := tsue.DefaultStrategyConfig()
	cfg.UnitSize = 16 << 20 // large units: nothing recycles before the crash
	opts.Strategy = &cfg
	cluster := tsue.MustNewCluster(opts)
	defer cluster.Close()

	client := cluster.NewClient()
	ino, err := client.Create("vol")
	if err != nil {
		log.Fatal(err)
	}
	fileSize := 2 * client.StripeSpan()
	mirror := make([]byte, fileSize)
	rng := rand.New(rand.NewSource(9))
	rng.Read(mirror)
	if _, err := client.WriteFile(ino, mirror); err != nil {
		log.Fatal(err)
	}

	// Updates that will still be sitting in DataLogs when the node dies.
	for i := 0; i < 200; i++ {
		off := int64(rng.Intn(fileSize - 256))
		data := make([]byte, 1+rng.Intn(256))
		rng.Read(data)
		if _, err := client.Update(ino, off, data, 0); err != nil {
			log.Fatal(err)
		}
		copy(mirror[off:], data)
	}
	fmt.Println("200 updates acknowledged; none recycled yet (units not full)")

	// Kill an OSD holding data blocks of stripe 0.
	loc, err := cluster.MDS.Lookup(ino, 0)
	if err != nil {
		log.Fatal(err)
	}
	victim := loc.Nodes[0]
	cluster.FailOSD(victim)
	fmt.Printf("OSD %d failed — its DataLog content is lost with it\n", victim)

	// Build a replacement under the same node id and recover.
	repl, err := ecfs.NewOSD(victim, opts.Device, cluster.Tr.Caller(victim), "tsue", cfg, opts.Kind)
	if err != nil {
		log.Fatal(err)
	}
	defer repl.Close()
	res, err := cluster.Recover(victim, repl)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered %d blocks (%d KiB) at %.1f MB/s; %d KiB of pending updates replayed from replica logs\n",
		res.Blocks, res.Bytes>>10, res.Bandwidth/1e6, res.ReplayedBytes>>10)

	// Re-register the replacement and verify every byte.
	cluster.Tr.Register(victim, repl.Handler)
	for i, o := range cluster.OSDs {
		if o.ID() == victim {
			cluster.OSDs[i] = repl
		}
	}
	cluster.MDS.Heartbeat(victim, time.Now())
	got, _, err := client.Read(ino, 0, fileSize)
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, mirror) {
		log.Fatal("data lost: post-recovery content does not match the mirror")
	}
	fmt.Println("post-recovery read matches the mirror: no acknowledged update was lost")
}
