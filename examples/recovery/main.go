// Recovery: exercise the failure path of the paper's §4.2. A client
// updates a TSUE volume; one OSD is killed while updates are still
// buffered in its DataLog; the parallel rebuild engine reconstructs the
// lost blocks from stripe survivors AND replays the dead node's replica
// log so that no acknowledged update is lost.
//
// The scenario then continues multi-failure, and the second round shows
// placement epochs at work: the second victim is NOT resurrected under
// its own node id. Instead a brand-new OSD joins the cluster under a
// fresh id, recovery rebuilds the lost blocks onto it and *rebinds*
// every affected stripe at the MDS under a bumped placement epoch. The
// client keeps using its stale cached placements throughout: reads to
// the moved blocks re-resolve when the dead node doesn't answer, and
// updates to surviving members are rejected with a structured
// stale-epoch reply and transparently retried against the fresh
// placement. The cluster is verified byte-for-byte against an in-memory
// mirror after each round.
//
// Round three needs no failure at all: the same repair machinery —
// per-stripe epoch bumps through the prioritized repair queue — runs as
// *planned* work. Cluster.Decommission drains a live node (each block
// copied straight from the node itself, no K-way decode) and retires it
// from the topology with zero downtime: the stale client keeps reading
// and updating throughout.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"math/rand"

	tsue "repro"

	"repro/internal/ecfs"
	"repro/internal/wire"
)

func main() {
	ctx := context.Background()
	opts := tsue.DefaultOptions()
	opts.BlockSize = 64 << 10
	opts.RecoveryWorkers = 8
	cfg := tsue.DefaultStrategyConfig()
	cfg.UnitSize = 16 << 20 // large units: nothing recycles before the crash
	opts.Strategy = &cfg
	cluster := tsue.MustNewCluster(opts)
	defer cluster.Close()

	client := cluster.NewClient()
	ino, err := client.Create("vol")
	if err != nil {
		log.Fatal(err)
	}
	fileSize := 2 * client.StripeSpan()
	mirror := make([]byte, fileSize)
	rng := rand.New(rand.NewSource(9))
	rng.Read(mirror)
	if _, err := client.WriteFile(ino, mirror); err != nil {
		log.Fatal(err)
	}

	update := func(n int) {
		for i := 0; i < n; i++ {
			off := int64(rng.Intn(fileSize - 256))
			data := make([]byte, 1+rng.Intn(256))
			rng.Read(data)
			if _, err := client.Update(ino, off, data, 0); err != nil {
				log.Fatal(err)
			}
			copy(mirror[off:], data)
		}
		fmt.Printf("%d updates acknowledged; none recycled yet (units not full)\n", n)
	}
	verify := func() {
		got, _, err := client.Read(ino, 0, fileSize)
		if err != nil {
			log.Fatal(err)
		}
		if !bytes.Equal(got, mirror) {
			log.Fatal("data lost: post-recovery content does not match the mirror")
		}
		fmt.Println("post-recovery read matches the mirror: no acknowledged update was lost")
	}
	newOSD := func(id wire.NodeID) *ecfs.OSD {
		repl, err := ecfs.NewOSD(id, opts.Device, cluster.Tr.Caller(id), "tsue", cfg, opts.Kind)
		if err != nil {
			log.Fatal(err)
		}
		return repl
	}

	// Round 1 — classic drop-in replacement: kill an OSD, rebuild its
	// blocks with the parallel engine (8 workers, concurrent shard
	// fetches, fetch-error fallback) onto a replacement that reuses the
	// victim's node id, and reinstate it.
	update(200)
	loc, err := cluster.MDS.Lookup(ino, 0)
	if err != nil {
		log.Fatal(err)
	}
	victim := loc.Nodes[0]
	cluster.FailOSD(victim)
	fmt.Printf("OSD %d failed — its DataLog content is lost with it\n", victim)
	repl := newOSD(victim)
	res, err := cluster.Recover(ctx, victim, repl)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered %d blocks (%d KiB) with %d workers at %.1f MB/s; %d KiB of pending updates replayed from replica logs\n",
		res.Blocks, res.Bytes>>10, res.Workers, res.Bandwidth/1e6, res.ReplayedBytes>>10)
	cluster.Reinstate(repl)
	verify()

	// Round 2 — multi-failure, rebuilt onto a DIFFERENT node: more
	// updates land, then the OSD holding a parity block of stripe 0
	// dies. This time no hardware with the victim's identity comes
	// back. A fresh OSD joins under a new node id, recovery rebuilds
	// the lost blocks onto it, and every affected placement is rebound
	// at the MDS under a bumped epoch.
	update(200)
	victim2 := loc.Nodes[len(loc.Nodes)-1]
	cluster.FailOSD(victim2)
	fmt.Printf("OSD %d failed — and this time its node id retires with it\n", victim2)
	freshID := wire.NodeID(opts.NumOSDs + 1)
	repl2 := newOSD(freshID)
	cluster.AddOSD(repl2) // joins the MDS placement pool under the fresh id
	res2, err := cluster.Recover(ctx, victim2, repl2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered %d blocks onto NEW node %d; %d placements rebound under bumped epochs\n",
		res2.Blocks, freshID, res2.Rebound)
	cur, err := cluster.MDS.Lookup(ino, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stripe 0 placement epoch %d -> %d; parity slot moved %d -> %d\n",
		loc.Epoch, cur.Epoch, victim2, cur.Nodes[len(cur.Nodes)-1])

	// The client still holds the pre-failure placements in its cache.
	// It is never told about the rebind: its next requests are either
	// rejected with wire.StatusStaleEpoch by epoch-aware survivors or
	// fail to reach the retired node, and both paths transparently
	// re-resolve at the MDS and retry.
	update(100)
	verify()
	fmt.Println("stale client re-resolved the rebound placements transparently — no cache flush, no victim-id reuse")

	// Round 3 — planned migration, zero downtime: the node now hosting
	// stripe 0's first data block is taken out of service while it is
	// perfectly healthy. Decommission drains it through the same repair
	// queue recovery uses, but sources every block from the node itself
	// (one fetch, no K-way decode), cuts each stripe over under a bumped
	// epoch, and finally retires the node from the topology.
	cur, err = cluster.MDS.Lookup(ino, 0)
	if err != nil {
		log.Fatal(err)
	}
	retiree := cur.Nodes[0]
	fmt.Printf("decommissioning healthy OSD %d — no failure, no decode, no downtime\n", retiree)
	res3, err := cluster.Decommission(ctx, retiree)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("drained %d blocks (%d KiB) onto the survivor pool at %.1f MB/s; %d placements rebound; node %d retired\n",
		res3.Moved, res3.Bytes>>10, res3.Bandwidth/1e6, res3.Rebound, retiree)

	// The client still caches placements naming the retired node; its
	// next operations re-resolve exactly like after a failure — except
	// nothing was ever down.
	update(100)
	verify()
	fmt.Println("planned migration complete: same epochs, same queue, zero failed operations")
}
