// Cloudtrace: replay synthetic Ali-Cloud and Ten-Cloud block traces (the
// workloads of the paper's Fig. 5) against TSUE and the strongest
// baseline, Parity Logging, and report aggregate update throughput —
// reproducing the paper's headline result that TSUE's advantage is
// larger on the high-locality Ten-Cloud trace.
package main

import (
	"context"
	"fmt"
	"log"

	tsue "repro"
)

func main() {
	const (
		fileSize = 16 << 20
		ops      = 5000
		clients  = 32
	)
	fmt.Printf("replaying %d ops over a %d MiB volume, %d clients, RS(6,4), 16 OSDs\n\n",
		ops, fileSize>>20, clients)
	fmt.Printf("%-12s %-8s %12s %14s\n", "trace", "method", "IOPS", "avg latency")
	for _, traceName := range []string{"ali-cloud", "ten-cloud"} {
		for _, method := range []string{"pl", "tsue"} {
			iops, avg := replay(traceName, method, fileSize, ops, clients)
			fmt.Printf("%-12s %-8s %12.0f %14v\n", traceName, method, iops, avg)
		}
		fmt.Println()
	}
}

func replay(traceName, method string, fileSize int64, ops, clients int) (float64, string) {
	ctx := context.Background()
	opts := tsue.DefaultOptions()
	opts.Method = method
	opts.BlockSize = 128 << 10
	cfg := tsue.DefaultStrategyConfig()
	cfg.UnitSize = 1 << 20
	opts.Strategy = &cfg

	cluster := tsue.MustNewCluster(opts)
	defer cluster.Close()

	var tr *tsue.Trace
	switch traceName {
	case "ali-cloud":
		tr = tsue.AliCloudTrace(fileSize, ops, 7)
	case "ten-cloud":
		tr = tsue.TenCloudTrace(fileSize, ops, 7)
	}
	rep := tsue.NewReplayer(cluster, clients)
	ino, err := rep.Prepare(ctx, traceName, fileSize)
	if err != nil {
		log.Fatal(err)
	}
	res, err := rep.Run(ctx, tr, ino)
	if err != nil {
		log.Fatal(err)
	}
	if res.Errors > 0 {
		log.Fatalf("%d replay errors", res.Errors)
	}
	// Consistency is part of the demo: flush and verify every stripe.
	if err := cluster.Flush(ctx); err != nil {
		log.Fatal(err)
	}
	if err := cluster.VerifyStripes(ino, nil); err != nil {
		log.Fatal(err)
	}
	return rep.Throughput(res), res.AvgLatency.String()
}
