package scenario

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// EventKind names one injectable fault.
type EventKind uint8

// Fault-event kinds. Each kind is one entry of the fault-event catalog
// in docs/SCENARIOS.md.
const (
	// EventKillOSD fails a live OSD (its store and logs are lost),
	// admits a fresh-id replacement, and runs a prioritized repair onto
	// it while traffic continues.
	EventKillOSD EventKind = iota
	// EventDrainCancelResume starts draining a live node, cancels the
	// drain mid-flight after Hold progress, resumes it to completion,
	// and finally rejoins the emptied node to the placement pool.
	EventDrainCancelResume
	// EventSlowDevice multiplies one OSD's device latency by Param for a
	// Hold window, then restores full speed (sim-layer throttling).
	EventSlowDevice
	// EventCapRebase rebases the cluster rebuild-bandwidth cap to Param
	// decimal MB/s (0 uncaps) for every subsequent repair admission.
	EventCapRebase
	// EventKillRestart crashes a durable OSD (its process dies but its
	// data directory survives), lets traffic run degraded for a Hold
	// window, then restarts it from the same directory under the same id
	// — WAL redo, segment replay, and an epoch-checked resilver instead
	// of a full rebuild. Only scheduled when the cluster has a DataDir;
	// in-memory clusters draw it with weight zero, keeping their
	// timelines identical to earlier releases.
	EventKillRestart
	// EventMDSRestart crashes the MDS process (its op log and snapshot
	// survive on disk), holds the namespace offline for a Hold window
	// while data-path traffic rides out metadata unavailability, then
	// reopens the MDS from the same directory — snapshot load plus op-log
	// replay must reproduce the exact pre-crash namespace. Only scheduled
	// when the cluster has an MDSDataDir; clusters with an in-memory MDS
	// draw it with weight zero, keeping their timelines identical to
	// earlier releases.
	EventMDSRestart

	numEventKinds
)

var eventNames = [numEventKinds]string{
	"kill-osd", "drain-cancel-resume", "slow-device", "cap-rebase", "kill-restart", "mds-restart",
}

// String returns the kind's catalog name.
func (k EventKind) String() string {
	if int(k) < len(eventNames) {
		return eventNames[k]
	}
	return "invalid"
}

// Event is one scheduled fault of a scenario timeline. Events are
// generated deterministically from the scenario seed before any
// workload runs; execution fires them when the pass's operation counter
// crosses Frac of the owning phase's operations, in (Phase, Frac)
// order, one at a time.
type Event struct {
	// Seq is the event's position in the sorted timeline.
	Seq int
	// Phase is the workload phase the event fires in.
	Phase int
	// Frac is the fraction of the phase's operations that must have been
	// attempted before the event fires.
	Frac float64
	// Kind selects the fault.
	Kind EventKind
	// Pick is a deterministic target draw; execution reduces it modulo
	// the candidate set alive at fire time, so the timeline stays
	// reproducible even as membership churns.
	Pick uint64
	// Param is the kind-specific magnitude: the slowdown factor for
	// EventSlowDevice, the new cap in decimal MB/s for EventCapRebase
	// (0 = uncap); unused otherwise.
	Param float64
	// Hold is the kind-specific window, as a fraction of the phase's
	// operations: how long a slow device stays slow, or how far into the
	// drain the cancellation lands.
	Hold float64
}

// String renders one timeline line; the full timeline is the scenario's
// reproducibility contract — identical for identical seeds.
func (e Event) String() string {
	s := fmt.Sprintf("#%d phase=%d @%.0f%% %s pick=%d", e.Seq, e.Phase, 100*e.Frac, e.Kind, e.Pick%1000)
	switch e.Kind {
	case EventSlowDevice:
		s += fmt.Sprintf(" x%.1f hold=%.0f%%", e.Param, 100*e.Hold)
	case EventCapRebase:
		s += fmt.Sprintf(" cap=%.0fMBps", e.Param)
	case EventDrainCancelResume:
		s += fmt.Sprintf(" cancel@%.0f%%", 100*e.Hold)
	case EventKillRestart:
		s += fmt.Sprintf(" outage=%.0f%%", 100*e.Hold)
	case EventMDSRestart:
		s += fmt.Sprintf(" outage=%.0f%%", 100*e.Hold)
	}
	return s
}

// FormatTimeline renders a schedule one event per line.
func FormatTimeline(evs []Event) string {
	lines := make([]string, len(evs))
	for i, e := range evs {
		lines[i] = e.String()
	}
	return strings.Join(lines, "\n")
}

// presetWeights maps a scenario preset name to per-kind draw weights
// for the events beyond the two mandatory ones.
var presetWeights = map[string][numEventKinds]int{
	// mixed exercises every kind evenly.
	"mixed": {1, 1, 1, 1, 1, 1},
	// churn is membership-heavy: kills and drains dominate.
	"churn": {3, 2, 1, 1, 2, 1},
	// degrade is performance-fault-heavy: slow devices and cap churn.
	"degrade": {1, 1, 3, 2, 0, 0},
	// restart is crash-recovery-heavy: kill-restart cycles dominate
	// (durable clusters only; without a DataDir it degenerates to mixed
	// weights minus the restarts).
	"restart": {1, 1, 1, 1, 4, 1},
	// mds-restart is metadata-crash-heavy: MDS crash/reopen cycles
	// dominate (MDS-durable clusters only; without an MDSDataDir it
	// degenerates to mixed weights minus the MDS restarts).
	"mds-restart": {1, 1, 1, 1, 1, 4},
}

// Presets lists the scenario preset names accepted by Spec.Name.
func Presets() []string {
	out := make([]string, 0, len(presetWeights))
	for name := range presetWeights {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// schedule generates the deterministic fault timeline for one pass of a
// scenario. The first two events are always an OSD kill and a
// drain-cancel-resume (every soak exercises unplanned and planned
// churn); the rest are drawn by the preset's kind weights. Identical
// (spec, pass) inputs yield identical timelines.
func schedule(spec Spec, pass int) []Event {
	rng := rand.New(rand.NewSource(spec.Seed ^ int64(pass)*0x9e3779b9))
	weights, ok := presetWeights[spec.Name]
	if !ok {
		weights = presetWeights["mixed"]
	}
	durable := spec.Cluster != nil && spec.Cluster.DataDir != ""
	if !durable {
		// Kill-restart needs a disk to come back from. Zeroing the
		// weight (rather than renormalizing) keeps in-memory timelines
		// byte-identical to releases that predate the kind.
		weights[EventKillRestart] = 0
	}
	mdsDurable := spec.Cluster != nil && spec.Cluster.MDSDataDir != ""
	if !mdsDurable {
		// MDS restart needs an op log to reopen from. Same zero-weight
		// trick: non-MDS-durable timelines stay byte-identical to
		// releases that predate the kind.
		weights[EventMDSRestart] = 0
	}
	n := spec.Events
	evs := make([]Event, 0, n)
	for i := 0; i < n; i++ {
		var kind EventKind
		switch i {
		case 0:
			kind = EventKillOSD
			if durable && spec.Name == "restart" {
				// The restart preset's mandatory opening fault is the
				// crash-recovery cycle itself.
				kind = EventKillRestart
			}
			if mdsDurable && spec.Name == "mds-restart" {
				// Likewise, the mds-restart preset opens with the
				// metadata crash-recovery cycle.
				kind = EventMDSRestart
			}
		case 1:
			kind = EventDrainCancelResume
		default:
			kind = drawKind(rng, weights)
		}
		ev := Event{
			Kind:  kind,
			Phase: rng.Intn(spec.Phases),
			Frac:  0.15 + 0.55*rng.Float64(),
			Pick:  rng.Uint64(),
			Hold:  0.05 + 0.15*rng.Float64(),
		}
		switch kind {
		case EventSlowDevice:
			ev.Param = 2 + 6*rng.Float64()
		case EventCapRebase:
			ev.Param = []float64{0, 8, 24, 96}[rng.Intn(4)]
		}
		evs = append(evs, ev)
	}
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].Phase != evs[j].Phase {
			return evs[i].Phase < evs[j].Phase
		}
		return evs[i].Frac < evs[j].Frac
	})
	for i := range evs {
		evs[i].Seq = i
	}
	return evs
}

func drawKind(rng *rand.Rand, weights [numEventKinds]int) EventKind {
	total := 0
	for _, w := range weights {
		total += w
	}
	d := rng.Intn(total)
	for k, w := range weights {
		if d < w {
			return EventKind(k)
		}
		d -= w
	}
	return EventKillOSD
}
