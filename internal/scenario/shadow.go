package scenario

import (
	"bytes"
	"context"
	"fmt"
	"sync"

	"repro/internal/ecfs"
	"repro/internal/trace"
)

// shadow is a tenant's reference image of its file: what the cluster
// must hold if no acknowledged write was lost. Replay clients apply
// every acknowledged update to it under per-stripe range locks;
// acknowledged reads are checked against it inline; at each checkpoint
// the whole image is compared block-for-block against the cluster
// (Cluster.VerifyStripes).
//
// An op that *fails* mid-fault leaves the cluster range indeterminate
// (the update may have landed on some shards before the error), so the
// overlapped stripes are marked dirty and excluded from read checks
// until the checkpoint heal re-executes the op — writing cluster and
// shadow from the same deterministic payload — after which the stripes
// are clean again and the full-image compare is byte-exact.
type shadow struct {
	ino   uint64
	span  int64 // stripe span (K * blockSize)
	seed  int64 // PerOpPayload seed of the tenant's replayer
	data  []byte
	locks []sync.RWMutex // one per stripe

	mu     sync.Mutex
	dirty  []bool     // per stripe: overlapped by a failed op since last heal
	failed []trace.Op // failed ops awaiting re-execution, in failure order
}

// newShadow builds the reference image as Prepare left it: the fixed
// pattern chunk repeated per stripe (the file is prepared in full
// stripes, so the image covers stripes*span bytes even when fileSize is
// not stripe-aligned).
func newShadow(ino uint64, fileSize, span int64, seed int64) *shadow {
	stripes := (fileSize + span - 1) / span
	if stripes < 1 {
		stripes = 1
	}
	sh := &shadow{
		ino:   ino,
		span:  span,
		seed:  seed,
		data:  make([]byte, stripes*span),
		locks: make([]sync.RWMutex, stripes),
		dirty: make([]bool, stripes),
	}
	chunk := trace.PrepareChunk(int(span))
	for s := int64(0); s < stripes; s++ {
		copy(sh.data[s*span:], chunk)
	}
	return sh
}

// stripeRange returns the closed stripe interval [lo, hi] an op spans.
func (sh *shadow) stripeRange(op trace.Op) (lo, hi int64) {
	lo = op.Off / sh.span
	hi = (op.Off + int64(op.Size) - 1) / sh.span
	if max := int64(len(sh.locks)) - 1; hi > max {
		hi = max
	}
	if lo > hi {
		lo = hi
	}
	return lo, hi
}

// lockRange acquires the op's stripe locks in ascending order —
// exclusive for updates, shared for reads — and returns the unlock.
// Ascending acquisition across all clients makes the range locks
// deadlock-free.
func (sh *shadow) lockRange(op trace.Op, exclusive bool) (unlock func()) {
	lo, hi := sh.stripeRange(op)
	for s := lo; s <= hi; s++ {
		if exclusive {
			sh.locks[s].Lock()
		} else {
			sh.locks[s].RLock()
		}
	}
	return func() {
		for s := hi; s >= lo; s-- {
			if exclusive {
				sh.locks[s].Unlock()
			} else {
				sh.locks[s].RUnlock()
			}
		}
	}
}

// bracket wraps one replay op: it takes the range locks, runs the op,
// and settles the shadow — acknowledged updates are applied, failed
// updates recorded for healing, acknowledged reads verified. It is the
// replayer's Around hook body. A read that disagrees with the shadow on
// clean stripes is a lost acknowledged write observed live; the
// mismatch is returned through onMismatch (called with locks held).
//
// checkable gates the inline read check: a degraded read during a
// membership fault window (node killed but its pending log deltas not
// yet replayed onto the replacement) can legitimately serve bytes
// predating an acknowledged update, so the engine suppresses the inline
// check while a kill or drain is in flight. The checkpoint's full-image
// compare runs with the window closed and stays byte-exact.
func (sh *shadow) bracket(op trace.Op, do func() trace.OpResult, checkable func() bool, onMismatch func(error)) trace.OpResult {
	unlock := sh.lockRange(op, op.Kind == trace.OpUpdate)
	defer unlock()
	res := do()
	switch op.Kind {
	case trace.OpUpdate:
		if res.Err == nil {
			trace.Payload(sh.seed, op, sh.data[op.Off:op.Off+int64(op.Size)])
		} else {
			sh.noteFailed(op)
		}
	case trace.OpRead:
		if res.Err == nil && checkable() {
			if err := sh.checkRead(op, res.Data); err != nil {
				onMismatch(err)
			}
		}
	}
	return res
}

// noteFailed marks the op's stripes dirty and queues it for the
// checkpoint heal. Caller holds the exclusive range locks.
func (sh *shadow) noteFailed(op trace.Op) {
	lo, hi := sh.stripeRange(op)
	sh.mu.Lock()
	for s := lo; s <= hi; s++ {
		sh.dirty[s] = true
	}
	sh.failed = append(sh.failed, op)
	sh.mu.Unlock()
}

// checkRead compares an acknowledged read against the shadow. Reads
// touching a dirty stripe are skipped (the range is legitimately
// indeterminate until healed). Caller holds the shared range locks.
func (sh *shadow) checkRead(op trace.Op, got []byte) error {
	lo, hi := sh.stripeRange(op)
	sh.mu.Lock()
	for s := lo; s <= hi; s++ {
		if sh.dirty[s] {
			sh.mu.Unlock()
			return nil
		}
	}
	sh.mu.Unlock()
	want := sh.data[op.Off : op.Off+int64(len(got))]
	if !bytes.Equal(got, want) {
		i := 0
		for i < len(got) && got[i] == want[i] {
			i++
		}
		return fmt.Errorf("scenario: read mismatch ino=%d off=%d size=%d: first divergent byte at +%d (got %#x want %#x)",
			sh.ino, op.Off, op.Size, i, got[i], want[i])
	}
	return nil
}

// heal re-executes every failed update in failure order, writing the
// cluster and the shadow from the same deterministic payload, then
// clears the dirty marks. Run between phases with the workload
// quiesced (no concurrent clients), so no range locks are taken. It
// returns the number of ops healed; any re-execution error is final —
// the fault window is over, so the cluster must accept writes.
func (sh *shadow) heal(ctx context.Context, cli *ecfs.Client) (int, error) {
	sh.mu.Lock()
	failed := sh.failed
	sh.failed = nil
	sh.mu.Unlock()
	buf := make([]byte, 0)
	for _, op := range failed {
		if op.Size > len(buf) {
			buf = make([]byte, op.Size)
		}
		data := buf[:op.Size]
		trace.Payload(sh.seed, op, data)
		if _, err := cli.UpdateContext(ctx, sh.ino, op.Off, data, op.At); err != nil {
			return 0, fmt.Errorf("scenario: heal of failed update off=%d size=%d: %w", op.Off, op.Size, err)
		}
		copy(sh.data[op.Off:], data)
	}
	sh.mu.Lock()
	for s := range sh.dirty {
		sh.dirty[s] = false
	}
	sh.mu.Unlock()
	return len(failed), nil
}
