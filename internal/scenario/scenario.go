// Package scenario is the trace-driven soak harness: it drives N
// concurrent tenants — each a trace.Replayer over its own file with a
// heterogeneous synthetic workload — against one in-process ECFS
// cluster while a declarative, seed-deterministic fault schedule
// injects OSD kills (with prioritized repair onto a fresh replacement),
// drain-cancel-resume cycles, slow-device windows, and rebuild-cap
// rebases, and a continuous invariant checker proves the cluster honest
// between and after phases:
//
//   - parity consistency: Cluster.Scrub re-encodes every placed stripe;
//   - no lost acknowledged write: every tenant keeps a byte-exact
//     shadow of its file (see shadow) compared block-for-block at each
//     checkpoint and against every acknowledged read inline;
//   - epoch monotonicity: a stripe's placement epoch never regresses
//     across rebinds (repair and drain both bump it);
//   - ledger monotonicity: the repair scheduler's lifetime spent-bytes
//     ledger never decreases, cap rebases included.
//
// Everything is deterministic given Spec.Seed: tenant traces, payload
// bytes, and the fault timeline (Engine.Timeline, printable with
// FormatTimeline). Execution interleaving naturally varies run to run —
// the invariants are what must hold regardless.
package scenario

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ecfs"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Spec configures a scenario soak.
type Spec struct {
	// Name selects the fault-mix preset: "mixed" (default), "churn"
	// (membership-heavy), or "degrade" (performance-fault-heavy).
	Name string
	// Seed determines tenant traces, payloads, and the fault timeline.
	Seed int64
	// Tenants is the number of concurrent tenants (default 3). Tenant
	// sizes are heavy-tailed: tenant i runs ~Ops/(i+1) operations
	// against a ~proportionally smaller file.
	Tenants int
	// Clients is the per-tenant concurrent client count (default 4).
	Clients int
	// Phases is the number of workload phases per pass (default 3); an
	// invariant checkpoint runs after every phase.
	Phases int
	// Events is the fault count per pass (default 4). The first two are
	// always an OSD kill and a drain-cancel-resume.
	Events int
	// Ops is the largest tenant's operation count per pass (default 600).
	Ops int
	// MaxOpSize clamps trace request sizes (default 64 KiB = one stripe
	// under the default geometry).
	MaxOpSize int
	// SoakDuration, when positive, repeats passes — each a fresh cluster
	// with a pass-specific fault timeline — until the wall-clock budget
	// is spent. Zero runs exactly one pass.
	SoakDuration time.Duration
	// Cluster overrides the cluster geometry. Nil selects a scenario
	// default: 9 OSDs, RS(4,2), 16 KiB blocks, TSUE — small enough to
	// soak quickly, with three nodes of slack above the K+M pool floor
	// so kills and drains never strand placement.
	Cluster *ecfs.Options
}

func (s *Spec) applyDefaults() {
	if s.Name == "" {
		s.Name = "mixed"
	}
	if s.Tenants <= 0 {
		s.Tenants = 3
	}
	if s.Clients <= 0 {
		s.Clients = 4
	}
	if s.Phases <= 0 {
		s.Phases = 3
	}
	if s.Events <= 0 {
		s.Events = 4
	}
	if s.Ops <= 0 {
		s.Ops = 600
	}
	if s.MaxOpSize <= 0 {
		s.MaxOpSize = 64 << 10
	}
	if s.Cluster == nil {
		o := ecfs.DefaultOptions()
		o.NumOSDs, o.K, o.M = 9, 4, 2
		o.BlockSize = 16 << 10
		s.Cluster = &o
	}
}

// Quantiles is one latency distribution summary.
type Quantiles struct {
	N              int
	P50, P99, P999 time.Duration
}

// TenantResult aggregates one tenant across all passes.
type TenantResult struct {
	Tenant   string
	Workload string
	Ops      int64
	Updates  int64
	Reads    int64
	Errors   int64
	ErrorsBy map[trace.ErrClass]int64
	// Read and Write summarize acknowledged-op latency per foreground
	// traffic class (sim.ClassForegroundRead / sim.ClassForegroundWrite).
	Read, Write Quantiles
}

// Result summarizes a completed soak.
type Result struct {
	Passes          int
	Checkpoints     int
	EventsFired     int
	Healed          int // failed updates re-executed at checkpoints
	StripesScrubbed int
	RepairBytes     int64 // scheduler lifetime spent bytes, summed over passes
	// Restarts counts kill-restart cycles; the Resilver* fields sum what
	// the restarted nodes did with their recovered local state. A large
	// Kept against a small Rebuilt is the durable engine's payoff: a
	// crash-restart is not a full rebuild.
	Restarts        int
	ResilverKept    int
	ResilverRebuilt int
	ResilverDropped int
	// MDSRestarts counts MDS crash/reopen cycles: each one is a full
	// snapshot-load + op-log-replay recovery verified by the same
	// checkpoint invariants as steady-state passes.
	MDSRestarts int
	// Timeline is the pass-0 fault schedule — the reproducibility
	// contract for the seed.
	Timeline []Event
	Tenants  []TenantResult
}

// tenantState persists across passes: identity, workload, and
// accumulated results.
type tenantState struct {
	name                      string
	workload                  string
	seed                      int64 // payload seed
	ops, updates, reads, errs int64
	errsBy                    map[trace.ErrClass]int64
	readRec                   sim.LatencyRecorder
	writeRec                  sim.LatencyRecorder
}

// tenantRun is one tenant's per-pass state.
type tenantRun struct {
	st     *tenantState
	ino    uint64
	sh     *shadow
	rep    *trace.Replayer
	phases []*trace.Trace
}

// Engine executes a Spec.
type Engine struct {
	spec     Spec
	timeline []Event

	clock atomic.Int64 // op attempts in the current phase
	// kill-restart tallies, folded into the Result after each pass.
	restarts, resKept, resRebuilt, resDropped atomic.Int64
	// MDS crash/reopen tally, folded into the Result after each pass.
	mdsRestarts atomic.Int64
	// memClock counts membership-event edges: +1 when a kill or drain
	// starts executing, +1 when it finishes. Even and unchanged across a
	// read means no membership window overlapped it, so the inline
	// shadow check is decisive; otherwise the read may legitimately be
	// degraded-stale and only the checkpoint compare judges it.
	memClock atomic.Int64

	vmu       sync.Mutex
	violation error // first live-read invariant violation
}

// New validates the spec, applies defaults, and pre-generates the
// pass-0 fault timeline.
func New(spec Spec) (*Engine, error) {
	spec.applyDefaults()
	if _, ok := presetWeights[spec.Name]; !ok {
		return nil, fmt.Errorf("scenario: unknown preset %q (have %v)", spec.Name, Presets())
	}
	if spec.Cluster.K+spec.Cluster.M >= spec.Cluster.NumOSDs {
		return nil, fmt.Errorf("scenario: need NumOSDs > K+M for fault injection (have %d <= %d)",
			spec.Cluster.NumOSDs, spec.Cluster.K+spec.Cluster.M)
	}
	e := &Engine{spec: spec}
	e.timeline = schedule(spec, 0)
	return e, nil
}

// Spec returns the engine's resolved spec (defaults applied).
func (e *Engine) Spec() Spec { return e.spec }

// Timeline returns the pass-0 fault schedule. Identical specs produce
// identical timelines — print it with FormatTimeline to compare runs.
func (e *Engine) Timeline() []Event {
	return append([]Event(nil), e.timeline...)
}

// noteViolation records the first live invariant violation (a read that
// contradicts the shadow on clean stripes).
func (e *Engine) noteViolation(err error) {
	e.vmu.Lock()
	if e.violation == nil {
		e.violation = err
	}
	e.vmu.Unlock()
}

func (e *Engine) takeViolation() error {
	e.vmu.Lock()
	defer e.vmu.Unlock()
	return e.violation
}

// Run executes the soak: one pass when Spec.SoakDuration is zero, else
// passes until the budget is spent. The returned error is the first
// invariant violation or hard fault-execution failure; transient
// op errors inside fault windows (stale epoch, unreachable node) are
// tolerated, counted, and healed at the next checkpoint.
func (e *Engine) Run(ctx context.Context) (*Result, error) {
	res := &Result{Timeline: e.Timeline()}
	states := make([]*tenantState, e.spec.Tenants)
	for i := range states {
		st := &tenantState{
			name: fmt.Sprintf("tenant-%d", i),
			seed: e.spec.Seed ^ int64(i+1)*7919,
		}
		switch i % 3 {
		case 0:
			st.workload = "ali-cloud"
		case 1:
			st.workload = "ten-cloud"
		case 2:
			st.workload = "msr-src10"
		}
		states[i] = st
	}
	start := time.Now()
	var err error
	for pass := 0; ; pass++ {
		if err = e.runPass(ctx, pass, states, res); err != nil {
			break
		}
		res.Passes++
		if e.spec.SoakDuration <= 0 || time.Since(start) >= e.spec.SoakDuration {
			break
		}
		if ctx.Err() != nil {
			err = ctx.Err()
			break
		}
	}
	for _, st := range states {
		tr := TenantResult{
			Tenant:   st.name,
			Workload: st.workload,
			Ops:      st.ops,
			Updates:  st.updates,
			Reads:    st.reads,
			Errors:   st.errs,
			ErrorsBy: st.errsBy,
		}
		rq := st.readRec.Percentiles(50, 99, 99.9)
		wq := st.writeRec.Percentiles(50, 99, 99.9)
		tr.Read = Quantiles{N: int(st.reads), P50: rq[0], P99: rq[1], P999: rq[2]}
		tr.Write = Quantiles{N: int(st.updates), P50: wq[0], P99: wq[1], P999: wq[2]}
		res.Tenants = append(res.Tenants, tr)
	}
	return res, err
}

// runPass soaks one fresh cluster through all phases of one pass.
func (e *Engine) runPass(ctx context.Context, pass int, states []*tenantState, res *Result) error {
	opts := *e.spec.Cluster
	if opts.DataDir != "" {
		// Every pass is a fresh cluster; give it a fresh disk too, so a
		// soak's later passes don't replay the previous pass's state.
		opts.DataDir = filepath.Join(opts.DataDir, fmt.Sprintf("pass%d", pass))
	}
	if opts.MDSDataDir != "" {
		opts.MDSDataDir = filepath.Join(opts.MDSDataDir, fmt.Sprintf("pass%d", pass))
	}
	c, err := ecfs.NewCluster(opts)
	if err != nil {
		return err
	}
	defer c.Close()
	span := int64(e.spec.Cluster.K * e.spec.Cluster.BlockSize)

	runs := make([]*tenantRun, len(states))
	for i, st := range states {
		tr, err := e.prepareTenant(ctx, c, i, st, pass, span)
		if err != nil {
			return fmt.Errorf("scenario: prepare %s: %w", st.name, err)
		}
		runs[i] = tr
	}

	events := schedule(e.spec, pass)
	epochs := make(map[uint64][]uint64)
	var ledger int64
	for phase := 0; phase < e.spec.Phases; phase++ {
		var phaseEvents []Event
		for _, ev := range events {
			if ev.Phase == phase {
				phaseEvents = append(phaseEvents, ev)
			}
		}
		if err := e.runPhase(ctx, c, runs, phase, phaseEvents); err != nil {
			return err
		}
		res.EventsFired += len(phaseEvents)
		if err := e.checkpoint(ctx, c, runs, epochs, &ledger, res); err != nil {
			return err
		}
	}
	res.RepairBytes += c.Scheduler().TotalSpentBytes()
	res.Restarts += int(e.restarts.Swap(0))
	res.ResilverKept += int(e.resKept.Swap(0))
	res.ResilverRebuilt += int(e.resRebuilt.Swap(0))
	res.ResilverDropped += int(e.resDropped.Swap(0))
	res.MDSRestarts += int(e.mdsRestarts.Swap(0))
	return nil
}

// prepareTenant sizes, generates, clamps, and phase-slices one tenant's
// trace, prepares its backing file, and wires the replayer hooks to the
// shadow, the scenario clock, and the per-class latency recorders.
func (e *Engine) prepareTenant(ctx context.Context, c *ecfs.Cluster, i int, st *tenantState, pass int, span int64) (*tenantRun, error) {
	// Heavy-tailed tenant sizes: tenant i gets ~1/(i+1) of the lead
	// tenant's ops and file bytes.
	ops := e.spec.Ops / (i + 1)
	if ops < 40 {
		ops = 40
	}
	fileSize := 48 * span / int64(i+1)
	if min := 4 * span; fileSize < min {
		fileSize = min
	}
	traceSeed := e.spec.Seed ^ int64(i+1)<<8 ^ int64(pass)<<20
	var t *trace.Trace
	switch i % 3 {
	case 0:
		t = trace.AliCloud(fileSize, ops, traceSeed)
	case 1:
		t = trace.TenCloud(fileSize, ops, traceSeed)
	case 2:
		t, _ = trace.MSR("src10", fileSize, ops, traceSeed)
	}
	for j := range t.Ops {
		if t.Ops[j].Size > e.spec.MaxOpSize {
			t.Ops[j].Size = e.spec.MaxOpSize
		}
	}

	rep := trace.NewReplayer(c, e.spec.Clients)
	rep.PerOpPayload(st.seed)
	ino, err := rep.Prepare(ctx, fmt.Sprintf("%s-pass%d", st.name, pass), fileSize)
	if err != nil {
		return nil, err
	}
	sh := newShadow(ino, fileSize, span, st.seed)
	rep.Around = func(op trace.Op, do func() trace.OpResult) trace.OpResult {
		before := e.memClock.Load()
		checkable := func() bool {
			return before%2 == 0 && e.memClock.Load() == before
		}
		out := sh.bracket(op, do, checkable, e.noteViolation)
		e.clock.Add(1)
		if out.Err == nil {
			if op.Kind == trace.OpUpdate {
				st.writeRec.Observe(out.Lat)
			} else {
				st.readRec.Observe(out.Lat)
			}
		}
		return out
	}

	run := &tenantRun{st: st, ino: ino, sh: sh, rep: rep}
	n := len(t.Ops)
	for p := 0; p < e.spec.Phases; p++ {
		lo, hi := p*n/e.spec.Phases, (p+1)*n/e.spec.Phases
		run.phases = append(run.phases, &trace.Trace{Name: t.Name, FileSize: t.FileSize, Ops: t.Ops[lo:hi]})
	}
	return run, nil
}

// runPhase drives every tenant's phase slice concurrently while the
// event executor fires the phase's scheduled faults, then joins both.
func (e *Engine) runPhase(ctx context.Context, c *ecfs.Cluster, runs []*tenantRun, phase int, events []Event) error {
	e.clock.Store(0)
	var phaseOps int64
	for _, tr := range runs {
		phaseOps += int64(len(tr.phases[phase].Ops))
	}
	done := make(chan struct{})
	execErr := make(chan error, 1)
	go func() {
		execErr <- e.executeEvents(ctx, c, events, phaseOps, done)
	}()

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for _, tr := range runs {
		wg.Add(1)
		go func(tr *tenantRun) {
			defer wg.Done()
			rres, rerr := tr.rep.Run(ctx, tr.phases[phase], tr.ino)
			mu.Lock()
			defer mu.Unlock()
			tr.st.ops += rres.Ops
			tr.st.updates += rres.Updates
			tr.st.reads += rres.Reads
			tr.st.errs += rres.Errors
			for cls, n := range rres.ErrorsBy {
				if tr.st.errsBy == nil {
					tr.st.errsBy = make(map[trace.ErrClass]int64)
				}
				tr.st.errsBy[cls] += n
			}
			if rerr != nil && firstErr == nil && !tolerable(rres) {
				firstErr = fmt.Errorf("scenario: %s phase %d: %w", tr.st.name, phase, rerr)
			}
		}(tr)
	}
	wg.Wait()
	close(done)
	if err := <-execErr; err != nil {
		return err
	}
	return firstErr
}

// tolerable reports whether every error of a replay slice falls in a
// transient class a fault window legitimately produces. Anything else —
// data loss above all — fails the soak.
func tolerable(res *trace.ReplayResult) bool {
	if res.Errors == 0 {
		return true
	}
	for cls := range res.ErrorsBy {
		transient := false
		for _, t := range trace.TransientClasses {
			if cls == t {
				transient = true
				break
			}
		}
		if !transient {
			return false
		}
	}
	return true
}

// executeEvents fires the phase's events in timeline order, each when
// the scenario clock crosses its operation-fraction trigger (or the
// workload finishes first — late events still fire, against a quiet
// cluster).
func (e *Engine) executeEvents(ctx context.Context, c *ecfs.Cluster, events []Event, phaseOps int64, done <-chan struct{}) error {
	for _, ev := range events {
		e.waitClock(ctx, done, int64(ev.Frac*float64(phaseOps)), 0)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if err := e.fire(ctx, c, ev, phaseOps, done); err != nil {
			return fmt.Errorf("scenario: event [%s]: %w", ev, err)
		}
	}
	return nil
}

// waitClock blocks until the phase clock reaches target ops, the
// workload finishes, the context dies, or (when positive) the fallback
// wall-clock budget expires.
func (e *Engine) waitClock(ctx context.Context, done <-chan struct{}, target int64, fallback time.Duration) {
	deadline := time.Now().Add(fallback)
	for e.clock.Load() < target {
		select {
		case <-ctx.Done():
			return
		case <-done:
			return
		case <-time.After(200 * time.Microsecond):
		}
		if fallback > 0 && time.Now().After(deadline) {
			return
		}
	}
}

// pickAlive deterministically reduces an event's target draw over the
// currently alive OSDs (sorted by id).
func pickAlive(c *ecfs.Cluster, pick uint64) *ecfs.OSD {
	alive := c.Alive()
	if len(alive) == 0 {
		return nil
	}
	sort.Slice(alive, func(i, j int) bool { return alive[i].ID() < alive[j].ID() })
	return alive[int(pick%uint64(len(alive)))]
}

// fire executes one fault event against the live cluster.
func (e *Engine) fire(ctx context.Context, c *ecfs.Cluster, ev Event, phaseOps int64, done <-chan struct{}) error {
	switch ev.Kind {
	case EventKillOSD, EventDrainCancelResume, EventKillRestart:
		e.memClock.Add(1)
		defer e.memClock.Add(1)
	}
	switch ev.Kind {
	case EventKillOSD:
		victim := pickAlive(c, ev.Pick)
		if victim == nil {
			return errors.New("no alive OSD to kill")
		}
		id := victim.ID()
		c.FailOSD(id)
		repl, err := c.SpawnOSD(c.MaxNodeID() + 1)
		if err != nil {
			return err
		}
		c.AddOSD(repl)
		if _, err := c.RecoverWith(ctx, id, repl, 0); err != nil {
			return fmt.Errorf("invariant no-lost-acknowledged-write: recovery after kill of %d: %w", id, err)
		}

	case EventDrainCancelResume:
		target := pickAlive(c, ev.Pick)
		if target == nil {
			return errors.New("no alive OSD to drain")
		}
		id := target.ID()
		dctx, cancel := context.WithCancel(ctx)
		go func() {
			// Cancel partway through: after Hold more ops, or a short
			// wall-clock fallback when the workload is already done.
			e.waitClock(dctx, done, e.clock.Load()+int64(ev.Hold*float64(phaseOps)), 25*time.Millisecond)
			cancel()
		}()
		_, err := c.DrainWith(dctx, id, 0)
		cancel()
		switch {
		case err == nil:
			// Completed before the cancel landed — nothing to resume.
		case errors.Is(err, context.Canceled) && ctx.Err() == nil:
			if _, rerr := c.DrainWith(ctx, id, 0); rerr != nil {
				return fmt.Errorf("drain resume on %d: %w", id, rerr)
			}
		default:
			return fmt.Errorf("drain on %d: %w", id, err)
		}
		// Rejoin: the drained (now empty) node re-enters the placement
		// pool as a rebind target for future repairs and drains.
		c.MDS.AddNode(id)
		c.MDS.Heartbeat(id, time.Now())

	case EventSlowDevice:
		target := pickAlive(c, ev.Pick)
		if target == nil {
			return errors.New("no alive OSD to slow")
		}
		target.Dev().SetSlowdown(ev.Param)
		e.waitClock(ctx, done, e.clock.Load()+int64(ev.Hold*float64(phaseOps)), 0)
		target.Dev().SetSlowdown(1)

	case EventCapRebase:
		c.SetRebuildCap(ev.Param)

	case EventKillRestart:
		victim := pickAlive(c, ev.Pick)
		if victim == nil {
			return errors.New("no alive OSD to kill-restart")
		}
		id := victim.ID()
		c.CrashOSD(id)
		// Outage window: traffic keeps running against the degraded
		// cluster (ops that need the dead node fail transiently and heal
		// at the next checkpoint).
		e.waitClock(ctx, done, e.clock.Load()+int64(ev.Hold*float64(phaseOps)), 25*time.Millisecond)
		_, rres, err := c.RestartOSD(ctx, id)
		if err != nil {
			return fmt.Errorf("invariant no-lost-acknowledged-write: restart of %d: %w", id, err)
		}
		e.restarts.Add(1)
		e.resKept.Add(int64(rres.Kept))
		e.resRebuilt.Add(int64(rres.Rebuilt))
		e.resDropped.Add(int64(rres.Dropped))

	case EventMDSRestart:
		// Crash the metadata server; ops that need a namespace lookup
		// fail transiently for the outage window, then the MDS reopens
		// from its op log under the same identity. No memClock bracket:
		// membership is unchanged, and MDS-outage failures are transient
		// classes the checkpoint heals. The restarted MDS must serve the
		// exact pre-crash namespace or the checkpoint's shadow compare
		// and epoch-monotonicity checks fail the soak.
		if err := c.CrashMDS(); err != nil {
			return fmt.Errorf("mds crash: %w", err)
		}
		e.waitClock(ctx, done, e.clock.Load()+int64(ev.Hold*float64(phaseOps)), 25*time.Millisecond)
		if _, err := c.RestartMDS(); err != nil {
			return fmt.Errorf("invariant namespace-survives-crash: mds restart: %w", err)
		}
		e.mdsRestarts.Add(1)

	default:
		return fmt.Errorf("unknown event kind %d", ev.Kind)
	}
	return nil
}

// checkpoint runs the invariant suite against a quiesced cluster: heal
// failed updates, flush strategy logs, scrub parity, compare every
// tenant's file to its shadow, and check epoch and ledger monotonicity.
func (e *Engine) checkpoint(ctx context.Context, c *ecfs.Cluster, runs []*tenantRun, epochs map[uint64][]uint64, ledger *int64, res *Result) error {
	cli := c.NewClient()
	for _, tr := range runs {
		n, err := tr.sh.heal(ctx, cli)
		if err != nil {
			return err
		}
		res.Healed += n
	}
	if err := c.Flush(ctx); err != nil {
		return fmt.Errorf("scenario: checkpoint flush: %w", err)
	}
	n, err := c.Scrub()
	if err != nil {
		return fmt.Errorf("invariant parity-consistency: %w", err)
	}
	res.StripesScrubbed += n
	for _, tr := range runs {
		if err := c.VerifyStripes(tr.ino, tr.sh.data); err != nil {
			return fmt.Errorf("invariant no-lost-acknowledged-write (%s): %w", tr.st.name, err)
		}
	}
	for _, tr := range runs {
		stripes := c.MDS.Stripes(tr.ino)
		prev := epochs[tr.ino]
		for s := 0; s < stripes; s++ {
			loc, err := c.MDS.Lookup(tr.ino, uint32(s))
			if err != nil {
				return fmt.Errorf("scenario: checkpoint lookup %s stripe %d: %w", tr.st.name, s, err)
			}
			if s < len(prev) {
				if loc.Epoch < prev[s] {
					return fmt.Errorf("invariant epoch-monotonicity (%s): stripe %d epoch regressed %d -> %d",
						tr.st.name, s, prev[s], loc.Epoch)
				}
				prev[s] = loc.Epoch
			} else {
				prev = append(prev, loc.Epoch)
			}
		}
		epochs[tr.ino] = prev
	}
	cur := c.Scheduler().TotalSpentBytes()
	if cur < *ledger {
		return fmt.Errorf("invariant ledger-monotonicity: scheduler spent bytes regressed %d -> %d", *ledger, cur)
	}
	*ledger = cur
	res.Checkpoints++
	if err := e.takeViolation(); err != nil {
		return fmt.Errorf("invariant no-lost-acknowledged-write (live read): %w", err)
	}
	return nil
}
