package scenario

import (
	"context"
	"testing"
	"time"

	"repro/internal/ecfs"
)

// TestScenarioSmoke is the CI soak (make scenario-smoke): two tenants,
// four scheduled faults — the mandatory OSD kill and drain-cancel-
// resume among them — with the full invariant suite at every phase
// checkpoint, run under -race.
func TestScenarioSmoke(t *testing.T) {
	eng, err := New(Spec{Name: "mixed", Seed: 7, Tenants: 2, Clients: 3, Phases: 2, Events: 4, Ops: 400})
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[EventKind]int{}
	for _, ev := range eng.Timeline() {
		kinds[ev.Kind]++
	}
	if kinds[EventKillOSD] == 0 || kinds[EventDrainCancelResume] == 0 {
		t.Fatalf("timeline missing mandatory kinds:\n%s", FormatTimeline(eng.Timeline()))
	}
	res, err := eng.Run(context.Background())
	if err != nil {
		t.Fatalf("soak failed:\n%s\nerror: %v", FormatTimeline(eng.Timeline()), err)
	}
	if res.Passes != 1 || res.Checkpoints != 2 {
		t.Fatalf("got %d passes / %d checkpoints, want 1 / 2", res.Passes, res.Checkpoints)
	}
	if res.EventsFired < 3 {
		t.Fatalf("only %d events fired, want >= 3", res.EventsFired)
	}
	if res.StripesScrubbed == 0 {
		t.Fatal("scrub checked no stripes")
	}
	if len(res.Tenants) != 2 {
		t.Fatalf("got %d tenant results, want 2", len(res.Tenants))
	}
	for _, tr := range res.Tenants {
		if tr.Ops == 0 {
			t.Fatalf("tenant %s completed no ops (errors: %v)", tr.Tenant, tr.ErrorsBy)
		}
		if tr.Write.N > 0 && tr.Write.P999 < tr.Write.P50 {
			t.Fatalf("tenant %s write quantiles not ordered: %+v", tr.Tenant, tr.Write)
		}
	}
}

// TestScenarioTimelineDeterministic is the reproducibility contract:
// the same spec (same -fault-seed) yields an identical fault timeline.
func TestScenarioTimelineDeterministic(t *testing.T) {
	spec := Spec{Name: "churn", Seed: 42, Tenants: 2, Events: 6, Phases: 3}
	a, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	if ta, tb := FormatTimeline(a.Timeline()), FormatTimeline(b.Timeline()); ta != tb {
		t.Fatalf("same seed produced different timelines:\n%s\n--- vs ---\n%s", ta, tb)
	}
}

// TestScheduleMandatoryKindsAndBounds checks every preset and a seed
// sweep: the generated timeline always contains at least one OSD kill
// and one drain-cancel-resume, every event lands in a valid phase, and
// triggers stay inside the workload window.
func TestScheduleMandatoryKindsAndBounds(t *testing.T) {
	for _, preset := range Presets() {
		for seed := int64(0); seed < 20; seed++ {
			spec := Spec{Name: preset, Seed: seed}
			spec.applyDefaults()
			evs := schedule(spec, 0)
			if len(evs) != spec.Events {
				t.Fatalf("%s/%d: %d events, want %d", preset, seed, len(evs), spec.Events)
			}
			kinds := map[EventKind]int{}
			for _, ev := range evs {
				kinds[ev.Kind]++
				if ev.Phase < 0 || ev.Phase >= spec.Phases {
					t.Fatalf("%s/%d: event phase %d out of range", preset, seed, ev.Phase)
				}
				if ev.Frac <= 0 || ev.Frac >= 1 {
					t.Fatalf("%s/%d: event frac %v out of (0,1)", preset, seed, ev.Frac)
				}
			}
			if kinds[EventKillOSD] == 0 || kinds[EventDrainCancelResume] == 0 {
				t.Fatalf("%s/%d: mandatory kinds missing:\n%s", preset, seed, FormatTimeline(evs))
			}
		}
	}
}

// durableCluster returns the scenario-default cluster geometry backed
// by on-disk OSD and MDS directories, making every fault kind —
// kill-restart and mds-restart included — schedulable.
func durableCluster(t *testing.T) *ecfs.Options {
	t.Helper()
	o := ecfs.DefaultOptions()
	o.NumOSDs, o.K, o.M = 9, 4, 2
	o.BlockSize = 16 << 10
	o.DataDir = t.TempDir()
	o.MDSDataDir = t.TempDir()
	return &o
}

// TestScenarioAllEventKinds soaks a schedule that includes every fault
// kind — slow-device windows, cap rebases and kill-restart cycles
// alongside the mandatory kill and drain — and requires a clean
// invariant suite. The cluster is durable, so kill-restart is in play.
func TestScenarioAllEventKinds(t *testing.T) {
	cluster := durableCluster(t)
	// Deterministically find a seed whose "mixed" timeline covers all
	// six kinds (the first two are forced; the rest draw evenly).
	var eng *Engine
	for seed := int64(0); seed < 256; seed++ {
		cand, err := New(Spec{Name: "mixed", Seed: seed, Tenants: 3, Clients: 2, Phases: 2, Events: 8, Ops: 300,
			Cluster: cluster})
		if err != nil {
			t.Fatal(err)
		}
		kinds := map[EventKind]bool{}
		for _, ev := range cand.Timeline() {
			kinds[ev.Kind] = true
		}
		if len(kinds) == int(numEventKinds) {
			eng = cand
			break
		}
	}
	if eng == nil {
		t.Fatal("no seed in sweep covers all event kinds")
	}
	res, err := eng.Run(context.Background())
	if err != nil {
		t.Fatalf("soak failed:\n%s\nerror: %v", FormatTimeline(eng.Timeline()), err)
	}
	if res.EventsFired != 8 {
		t.Fatalf("got %d events fired, want 8", res.EventsFired)
	}
	if res.Checkpoints != 2 {
		t.Fatalf("got %d checkpoints, want 2", res.Checkpoints)
	}
	if res.Restarts == 0 {
		t.Fatal("timeline included kill-restart but none executed")
	}
}

// TestScenarioKillRestart is the crash-recovery soak: a durable cluster
// under the restart-heavy preset, where OSDs are killed mid-workload
// and brought back from their surviving data directories. The invariant
// suite (parity scrub, byte-exact shadow compare, epoch monotonicity)
// must stay green across every crash-restart cycle, and the resilver
// tallies must show the durable engine doing its job: restarted nodes
// keep local stripes rather than rebuilding the world.
func TestScenarioKillRestart(t *testing.T) {
	eng, err := New(Spec{Name: "restart", Seed: 5, Tenants: 2, Clients: 3, Phases: 2, Events: 5, Ops: 400,
		Cluster: durableCluster(t)})
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[EventKind]int{}
	for _, ev := range eng.Timeline() {
		kinds[ev.Kind]++
	}
	if kinds[EventKillRestart] == 0 {
		t.Fatalf("restart preset scheduled no kill-restart:\n%s", FormatTimeline(eng.Timeline()))
	}
	res, err := eng.Run(context.Background())
	if err != nil {
		t.Fatalf("soak failed:\n%s\nerror: %v", FormatTimeline(eng.Timeline()), err)
	}
	if res.Restarts != kinds[EventKillRestart] {
		t.Fatalf("executed %d restarts, timeline scheduled %d", res.Restarts, kinds[EventKillRestart])
	}
	if res.ResilverKept == 0 {
		t.Fatal("restarted nodes kept no local stripes; recovery rebuilt everything")
	}
	if res.ResilverRebuilt > res.ResilverKept {
		t.Fatalf("resilver rebuilt %d stripes vs %d kept; crash-restart degenerated to full rebuild",
			res.ResilverRebuilt, res.ResilverKept)
	}
}

// TestScenarioMDSRestart is the metadata crash-recovery soak: an
// MDS-durable cluster under the mds-restart preset, where the MDS is
// crashed mid-workload and reopened from its op log while tenants keep
// issuing traffic. The checkpoint suite (byte-exact shadow compare,
// epoch monotonicity, parity scrub) must stay green across every
// reopen — any namespace entry lost or resurrected by replay fails the
// soak.
func TestScenarioMDSRestart(t *testing.T) {
	eng, err := New(Spec{Name: "mds-restart", Seed: 3, Tenants: 2, Clients: 3, Phases: 2, Events: 5, Ops: 400,
		Cluster: durableCluster(t)})
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[EventKind]int{}
	for _, ev := range eng.Timeline() {
		kinds[ev.Kind]++
	}
	if kinds[EventMDSRestart] == 0 {
		t.Fatalf("mds-restart preset scheduled no mds-restart:\n%s", FormatTimeline(eng.Timeline()))
	}
	res, err := eng.Run(context.Background())
	if err != nil {
		t.Fatalf("soak failed:\n%s\nerror: %v", FormatTimeline(eng.Timeline()), err)
	}
	if res.MDSRestarts != kinds[EventMDSRestart] {
		t.Fatalf("executed %d MDS restarts, timeline scheduled %d", res.MDSRestarts, kinds[EventMDSRestart])
	}
}

// TestScenarioMDSRestartGating pins the compatibility contract: a
// cluster without an MDSDataDir never schedules an mds-restart, even
// under the preset named for it, so pre-existing fault timelines stay
// byte-identical for identical seeds.
func TestScenarioMDSRestartGating(t *testing.T) {
	o := ecfs.DefaultOptions()
	o.NumOSDs, o.K, o.M = 9, 4, 2
	o.DataDir = t.TempDir() // OSD-durable, MDS in-memory
	for _, preset := range Presets() {
		for seed := int64(0); seed < 20; seed++ {
			spec := Spec{Name: preset, Seed: seed, Cluster: &o}
			spec.applyDefaults()
			for _, ev := range schedule(spec, 0) {
				if ev.Kind == EventMDSRestart {
					t.Fatalf("%s/%d scheduled mds-restart on a non-MDS-durable cluster", preset, seed)
				}
			}
		}
	}
}

// TestScenarioSoakDuration runs the multi-pass path: a tiny wall-clock
// budget must still complete at least one full pass and keep the
// invariant suite green across cluster rebuilds.
func TestScenarioSoakDuration(t *testing.T) {
	eng, err := New(Spec{Seed: 11, Tenants: 2, Clients: 2, Phases: 2, Events: 3, Ops: 120,
		SoakDuration: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Passes < 1 {
		t.Fatalf("got %d passes, want >= 1", res.Passes)
	}
	if res.Checkpoints != 2*res.Passes {
		t.Fatalf("got %d checkpoints over %d passes, want %d", res.Checkpoints, res.Passes, 2*res.Passes)
	}
}

// TestScenarioSpecValidation rejects unknown presets and clusters with
// no slack above the K+M pool floor.
func TestScenarioSpecValidation(t *testing.T) {
	if _, err := New(Spec{Name: "nope"}); err == nil {
		t.Fatal("unknown preset accepted")
	}
	spec := Spec{}
	spec.applyDefaults()
	opts := *spec.Cluster
	opts.NumOSDs = opts.K + opts.M
	if _, err := New(Spec{Cluster: &opts}); err == nil {
		t.Fatal("cluster at pool floor accepted")
	}
}
