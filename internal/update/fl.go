package update

import (
	"context"
	"fmt"
	"time"

	"repro/internal/logpool"
	"repro/internal/sim"
	"repro/internal/wire"
)

// fl is Full Logging (paper §2.2, as used by GFS/Azure-style systems):
// updates append to a single large data-side log and the whole update
// path is deferred. The log merges with old data only when it fills (or
// recovery demands it); reads must overlay the log, and the single log
// structure makes appending and recycling mutually exclusive — the
// drawbacks the paper lists. FL is described in §2.2 but not charted; it
// is included for completeness.
type fl struct {
	cfg      Config
	env      Env
	stripes  *stripeTable
	dataLog  *logpool.Pool
	recycler *logpool.Recycler
}

func newFL(cfg Config, env Env) (*fl, error) {
	f := &fl{cfg: cfg, env: env, stripes: newStripeTable()}
	pool, err := logpool.NewPool(logpool.Config{
		Name:     fmt.Sprintf("fl/osd%d", env.ID()),
		Mode:     logpool.NoMerge, // FL exploits no locality
		UnitSize: cfg.RecycleThreshold,
		MaxUnits: 1, // a single log: append and recycle exclude each other
		Device:   env.Dev(),
	})
	if err != nil {
		return nil, err
	}
	f.dataLog = pool
	f.recycler = logpool.StartRecycler(pool, 1, f.recycleData)
	return f, nil
}

func (f *fl) Name() string { return "fl" }

// RefreshPlacement adopts a newer placement epoch (epoch broadcast).
func (f *fl) RefreshPlacement(msg *wire.Msg) { f.stripes.remember(msg) }

func (f *fl) Update(ctx context.Context, msg *wire.Msg) (time.Duration, error) {
	f.stripes.remember(msg)
	cost := f.dataLog.Append(msg.Block, msg.Off, msg.Data, time.Duration(msg.V))
	return cost, nil
}

// recycleData merges logged records into the data block and pushes the
// resulting deltas straight into in-place parity updates (FL keeps no
// parity log of its own in this formulation).
func (f *fl) recycleData(be logpool.BlockExtents, sealV time.Duration) time.Duration {
	si, ok := f.stripes.get(be.Block)
	if !ok {
		return 0
	}
	store := f.env.Store()
	var cost time.Duration
	for _, e := range be.Extents {
		unlock := store.Lock(be.Block, f.cfg.BlockSize)
		old, rc, err := store.ReadRangeNoLock(be.Block, e.Off, len(e.Data), true)
		if err != nil {
			unlock()
			continue
		}
		wc, err := store.WriteRangeNoLock(be.Block, e.Off, e.Data, true)
		unlock()
		if err != nil {
			continue
		}
		cost += rc + wc
		delta := xorBytes(old, e.Data)
		targets := si.Loc.Nodes[si.K : si.K+si.M]
		fanCost, err := fanout(context.Background(), f.env, targets, func(to wire.NodeID) *wire.Msg {
			j := indexOfNode(si.Loc.Nodes[si.K:], to)
			return &wire.Msg{
				Kind:  wire.KParityDelta,
				Block: parityBlock(be.Block, si.K, j),
				Off:   e.Off,
				Data:  delta,
				Idx:   be.Block.Idx,
				K:     uint8(si.K),
				M:     uint8(si.M),
				V:     int64(sealV),
			}
		})
		if err == nil {
			cost += fanCost
		}
	}
	return cost
}

func (f *fl) Handle(ctx context.Context, msg *wire.Msg) *wire.Resp {
	switch msg.Kind {
	case wire.KParityDelta:
		cost, err := applyParityDeltaInPlace(f.env, f.cfg, msg)
		if err != nil {
			return errResp(err)
		}
		return okResp(cost)
	default:
		return errResp(fmt.Errorf("fl: unexpected message %v", msg.Kind))
	}
}

func (f *fl) Read(b wire.BlockID, off uint32, size int) ([]byte, time.Duration, error) {
	// The log must merge with the old data on reads (FL's read penalty):
	// base read plus overlay of all pending records.
	data, cost, err := f.env.Store().ReadRangeClass(sim.ClassForegroundRead, b, off, size, true)
	if err != nil {
		return nil, 0, err
	}
	f.dataLog.Overlay(b, off, data)
	return data, cost, nil
}

func (f *fl) Drain(ctx context.Context, phase int, dead []wire.NodeID) error {
	if phase == 1 {
		f.dataLog.Drain(0)
	}
	return nil
}

func (f *fl) Close() {
	f.dataLog.Close()
	f.recycler.Wait()
}

// Settle waits for any sealed data-log units to recycle.
func (f *fl) Settle() { f.dataLog.WaitIdle() }
