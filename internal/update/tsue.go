package update

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/gf256"
	"repro/internal/logpool"
	"repro/internal/sim"
	"repro/internal/wire"
)

// tsue is the paper's contribution: a two-stage update method built on a
// three-layer log (DataLog -> DeltaLog -> ParityLog).
//
// Front end (synchronous, §3.1.1): an update is appended sequentially to
// the local DataLog and replicated to peer OSD(s); the client is acked.
// No read-modify-write sits on the critical path.
//
// Back end (asynchronous, real-time, §3.1.2):
//
//   - DataLog recycle merges same/adjacent updates via the two-level
//     index, performs ONE read-modify-write per merged extent to compute
//     the data delta and update the data block, and forwards the delta to
//     the DeltaLog of the stripe's first parity OSD (with a copy to the
//     second parity OSD for reliability, §4.1).
//   - DeltaLog recycle folds same-address deltas (Eq. 3), concatenates
//     adjacent ones, merges deltas of different data blocks of the same
//     stripe into per-parity deltas (Eq. 5), and appends those to each
//     parity OSD's ParityLog; the parity update is thereby reduced from a
//     matrix multiplication to a single XOR.
//   - ParityLog recycle XORs merged parity deltas into the parity block
//     in place.
//
// Feature gates (cfg.DataLogLocality = O1, ParityLogLocality = O2,
// UseLogPool = O3, Pools = O4, UseDeltaLog = O5) reproduce the Fig. 7
// contribution breakdown.
type tsue struct {
	cfg     Config
	env     Env
	stripes *stripeTable

	dataLogs   *logpool.PoolSet
	dataRecs   []*logpool.Recycler
	deltaLogs  *logpool.PoolSet // nil when UseDeltaLog is false
	deltaDone  []chan struct{}
	parityLogs *logpool.PoolSet
	parityRecs []*logpool.Recycler

	// deltaCopy holds the second-parity-OSD copies of data deltas
	// (recovery source only; dropped, not recycled, on drain).
	copyMu    sync.Mutex
	deltaCopy map[wire.BlockID]*logpool.Index

	// replicas holds DataLog replica content for blocks whose primary
	// DataLog lives on a peer OSD. Persisted to SSD only (device-priced,
	// no pool/index machinery, §4.1); retained so a failed primary's
	// pending updates can be replayed at recovery (§4.2). Replica
	// records store absolute data, so replaying already-recycled
	// records is idempotent (their delta against the reconstructed
	// block is zero).
	repMu    sync.Mutex
	replicas map[wire.BlockID]*logpool.Index

	// repPersist durably backs the replica index (nil without a data
	// dir). Replica records never fold: they live until the data dir is
	// recreated, and replaying them is idempotent.
	repPersist logpool.Persist
}

func newTSUE(cfg Config, env Env) (*tsue, error) {
	t := &tsue{
		cfg: cfg, env: env, stripes: newStripeTable(),
		deltaCopy: make(map[wire.BlockID]*logpool.Index),
		replicas:  make(map[wire.BlockID]*logpool.Index),
	}

	pools := cfg.Pools
	unitSize, maxUnits := cfg.UnitSize, cfg.MaxUnits
	if !cfg.UseLogPool {
		// O3 disabled: one small log buffer per layer instead of the
		// FIFO pool — append and recycle serialize, and the merging
		// window shrinks to a fraction of a pooled unit.
		pools, maxUnits = 1, 1
		unitSize = cfg.UnitSize / 8
		if unitSize < 16<<10 {
			unitSize = 16 << 10
		}
	}
	dataMode, parityMode := logpool.Overwrite, logpool.XorFold
	if !cfg.DataLogLocality {
		dataMode = logpool.NoMerge
	}
	if !cfg.ParityLogLocality {
		parityMode = logpool.NoMerge
	}

	var err error
	// DataLog appends sit on the client ack path, so their device
	// charges are foreground writes; delta/parity log appends arrive on
	// asynchronous recycle forwards and stay background-classified.
	t.dataLogs, err = logpool.NewPoolSet(pools, logpool.Config{
		Name: fmt.Sprintf("tsue-data/osd%d/", env.ID()), Mode: dataMode,
		UnitSize: unitSize, MaxUnits: maxUnits, Device: env.Dev(),
		Class: sim.ClassForegroundWrite, Persist: cfg.Persist,
	})
	if err != nil {
		return nil, err
	}
	t.parityLogs, err = logpool.NewPoolSet(pools, logpool.Config{
		Name: fmt.Sprintf("tsue-parity/osd%d/", env.ID()), Mode: parityMode,
		UnitSize: unitSize, MaxUnits: maxUnits, Device: env.Dev(),
		Persist: cfg.Persist,
	})
	if err != nil {
		return nil, err
	}
	if cfg.Persist != nil {
		// Replica records are durably logged under one never-folded
		// generation: they are the recovery source for a failed primary's
		// pending updates and are absolute-data (idempotent to replay).
		t.repPersist = cfg.Persist.Layer(fmt.Sprintf("tsue-replica/osd%d", env.ID()))
	}
	for _, p := range t.dataLogs.Pools() {
		t.dataRecs = append(t.dataRecs, logpool.StartRecycler(p, cfg.Workers, t.recycleData))
	}
	for _, p := range t.parityLogs.Pools() {
		t.parityRecs = append(t.parityRecs, logpool.StartRecycler(p, cfg.Workers, t.recycleParity))
	}
	if cfg.UseDeltaLog {
		t.deltaLogs, err = logpool.NewPoolSet(pools, logpool.Config{
			Name: fmt.Sprintf("tsue-delta/osd%d/", env.ID()), Mode: logpool.XorFold,
			UnitSize: unitSize, MaxUnits: maxUnits, Device: env.Dev(),
			Persist: cfg.Persist,
		})
		if err != nil {
			return nil, err
		}
		for _, p := range t.deltaLogs.Pools() {
			done := make(chan struct{})
			t.deltaDone = append(t.deltaDone, done)
			go t.deltaLoop(p, done)
		}
	}
	return t, nil
}

func (t *tsue) Name() string { return "tsue" }

// RefreshPlacement adopts a newer placement epoch (epoch broadcast).
func (t *tsue) RefreshPlacement(msg *wire.Msg) { t.stripes.remember(msg) }

// Update is the synchronous front end: sequential DataLog append plus
// replica forwarding — the whole client-perceived path (§3.1.1).
func (t *tsue) Update(ctx context.Context, msg *wire.Msg) (time.Duration, error) {
	t.stripes.remember(msg)
	v := time.Duration(msg.V)
	lat := t.dataLogs.Append(msg.Block, msg.Off, msg.Data, v)

	// Replicate the log record to the next OSD(s) of the stripe.
	n := len(msg.Loc.Nodes)
	if n > 1 && t.cfg.DataLogReplicas > 0 {
		pos := int(msg.Block.Idx)
		targets := make([]wire.NodeID, 0, t.cfg.DataLogReplicas)
		for r := 1; r <= t.cfg.DataLogReplicas && r < n; r++ {
			targets = append(targets, msg.Loc.Nodes[(pos+r)%n])
		}
		repCost, err := fanout(ctx, t.env, targets, func(wire.NodeID) *wire.Msg {
			return &wire.Msg{Kind: wire.KDataLogReplica, Block: msg.Block, Off: msg.Off, Data: msg.Data, V: msg.V}
		})
		if err != nil {
			return 0, err
		}
		lat += repCost
	}
	return lat, nil
}

// recycleData is the DataLog recycle function: one read-modify-write per
// merged extent, then delta forwarding to the DeltaLog layer (or, with O5
// disabled, straight to every ParityLog).
func (t *tsue) recycleData(be logpool.BlockExtents, sealV time.Duration) time.Duration {
	si, ok := t.stripes.get(be.Block)
	if !ok {
		return 0
	}
	store := t.env.Store()
	var cost time.Duration
	type deltaOut struct {
		off   uint32
		delta []byte
	}
	var outs []deltaOut
	unlock := store.Lock(be.Block, t.cfg.BlockSize)
	for _, e := range be.Extents {
		old, rc, err := store.ReadRangeNoLock(be.Block, e.Off, len(e.Data), true)
		if err != nil {
			continue
		}
		wc, err := store.WriteRangeNoLock(be.Block, e.Off, e.Data, true)
		if err != nil {
			continue
		}
		cost += rc + wc
		outs = append(outs, deltaOut{off: e.Off, delta: xorBytes(old, e.Data)})
	}
	unlock()
	if si.M == 0 {
		return cost
	}
	code, err := t.env.Code(si.K, si.M)
	if err != nil {
		return cost
	}
	for _, o := range outs {
		if t.cfg.UseDeltaLog && t.deltaLogsAvailable(si) {
			// Primary delta to parity OSD 1, copy to parity OSD 2.
			targets := []wire.NodeID{si.parityNode(0)}
			if si.M >= 2 {
				targets = append(targets, si.parityNode(1))
			}
			payload, flag := o.delta, uint8(0)
			if t.cfg.CompressDeltas {
				if c, ok := compressDelta(o.delta); ok {
					payload, flag = c, deltaCompressFlag
				}
			}
			for i, to := range targets {
				resp, err := t.env.Call(context.Background(), to, &wire.Msg{
					Kind: wire.KDeltaLogAdd, Block: be.Block, Off: o.off, Data: payload,
					Idx: be.Block.Idx, K: uint8(si.K), M: uint8(si.M), Loc: si.Loc,
					Flag: uint8(i) | flag, // low bits: 0 = primary, 1 = copy
					V:    int64(sealV),
				})
				if err == nil && resp.OK() {
					cost += resp.Cost
				}
			}
		} else {
			// O5 disabled (or HDD profile): per-parity deltas straight
			// to the parity logs.
			for j := 0; j < si.M; j++ {
				pd := code.ParityDelta(j, int(be.Block.Idx), o.delta)
				resp, err := t.env.Call(context.Background(), si.parityNode(j), &wire.Msg{
					Kind: wire.KParityLogAdd, Block: parityBlock(be.Block, si.K, j),
					Off: o.off, Data: pd, K: uint8(si.K), M: uint8(si.M), Loc: si.Loc,
					V: int64(sealV),
				})
				if err == nil && resp.OK() {
					cost += resp.Cost
				}
			}
		}
	}
	return cost
}

// deltaLogsAvailable reports whether this cluster's configuration routes
// deltas through DeltaLogs (the receiving OSDs run the same strategy, so
// local configuration decides).
func (t *tsue) deltaLogsAvailable(si stripeInfo) bool { return si.M >= 1 }

// deltaLoop drains DeltaLog units stripe-by-stripe: Eq. 3 folding already
// happened in the XOR index; here deltas of different data blocks merge
// into per-parity deltas (Eq. 5) and flow to the ParityLogs.
func (t *tsue) deltaLoop(p *logpool.Pool, done chan struct{}) {
	defer close(done)
	for {
		u := p.TakeRecyclable(true)
		if u == nil {
			return
		}
		cost, wall, extents, bytes := t.recycleDeltaUnit(u)
		p.FinishRecycle(u, cost, wall, u.Entries(), extents, bytes)
	}
}

func (t *tsue) recycleDeltaUnit(u *logpool.Unit) (cost, wall time.Duration, extents, bytes int64) {
	type stripeWork struct {
		si     stripeInfo
		blocks map[int][]logpool.Extent
		anyB   wire.BlockID
		sealV  time.Duration
	}
	work := make(map[stripeKey]*stripeWork)
	for _, be := range u.Blocks() {
		extents += int64(len(be.Extents))
		for _, e := range be.Extents {
			bytes += int64(len(e.Data))
		}
		si, ok := t.stripes.get(be.Block)
		if !ok {
			continue
		}
		k := keyOf(be.Block)
		sw := work[k]
		if sw == nil {
			sw = &stripeWork{si: si, blocks: make(map[int][]logpool.Extent), anyB: be.Block}
			work[k] = sw
		}
		sw.blocks[int(be.Block.Idx)] = be.Extents
	}
	// Stripes merge independently; model wall time as the largest
	// per-stripe cost (stripes recycle in parallel across workers).
	for _, sw := range work {
		code, err := t.env.Code(sw.si.K, sw.si.M)
		if err != nil {
			continue
		}
		var stripeCost time.Duration
		for j := 0; j < sw.si.M; j++ {
			merged := logpool.NewIndex(logpool.XorFold)
			for src, exts := range sw.blocks {
				coeff := code.Coeff(j, src)
				for _, e := range exts {
					scaled := make([]byte, len(e.Data))
					gf256.MulSlice(coeff, scaled, e.Data)
					merged.Insert(e.Off, scaled, e.V)
				}
			}
			pb := parityBlock(sw.anyB, sw.si.K, j)
			for _, e := range merged.Extents() {
				payload, flag := e.Data, uint8(0)
				if t.cfg.CompressDeltas {
					if c, ok := compressDelta(e.Data); ok {
						payload, flag = c, deltaCompressFlag
					}
				}
				resp, err := t.env.Call(context.Background(), sw.si.parityNode(j), &wire.Msg{
					Kind: wire.KParityLogAdd, Block: pb, Off: e.Off, Data: payload, Flag: flag,
					K: uint8(sw.si.K), M: uint8(sw.si.M), Loc: sw.si.Loc, V: int64(e.V),
				})
				if err == nil && resp.OK() {
					stripeCost += resp.Cost
				}
			}
		}
		cost += stripeCost
		if stripeCost > wall {
			wall = stripeCost
		}
		// Trim the copies at the second parity OSD: the recycled deltas
		// are now durable in the ParityLogs, so their copies must stop
		// contributing to a future promotion. The trim message carries
		// only the range; the copy holder cancels locally (§4.2).
		if sw.si.M >= 2 {
			for src, exts := range sw.blocks {
				b := sw.anyB.WithIdx(uint8(src))
				for _, e := range exts {
					resp, err := t.env.Call(context.Background(), sw.si.parityNode(1), &wire.Msg{
						Kind: wire.KDeltaLogAdd, Block: b, Off: e.Off,
						Size: uint32(len(e.Data)), Flag: 2,
					})
					if err == nil && resp.OK() {
						cost += resp.Cost
					}
				}
			}
		}
	}
	return cost, wall, extents, bytes
}

// recycleParity folds merged parity deltas into the parity block: one
// read-modify-write per merged extent — by now repeated and adjacent
// updates have collapsed, so these are few and large.
func (t *tsue) recycleParity(be logpool.BlockExtents, sealV time.Duration) time.Duration {
	store := t.env.Store()
	var cost time.Duration
	unlock := store.Lock(be.Block, t.cfg.BlockSize)
	defer unlock()
	for _, e := range be.Extents {
		old, rc, err := store.ReadRangeNoLock(be.Block, e.Off, len(e.Data), true)
		if err != nil {
			continue
		}
		gf256.XorSlice(old, e.Data)
		wc, err := store.WriteRangeNoLock(be.Block, e.Off, old, true)
		if err != nil {
			continue
		}
		cost += rc + wc
	}
	return cost
}

func (t *tsue) Handle(ctx context.Context, msg *wire.Msg) *wire.Resp {
	switch msg.Kind {
	case wire.KDataLogReplica:
		// Replica is persisted to SSD (§4.1) and retained so the
		// primary's pending updates survive its failure (§4.2).
		t.repMu.Lock()
		ri := t.replicas[msg.Block]
		if ri == nil {
			ri = logpool.NewIndex(logpool.Overwrite)
			t.replicas[msg.Block] = ri
		}
		ri.Insert(msg.Off, msg.Data, time.Duration(msg.V))
		t.repMu.Unlock()
		if t.repPersist != nil {
			t.repPersist.AppendEntry(0, msg.Block, msg.Off, msg.V, msg.Data)
		}
		cost := t.env.Dev().WriteClass(sim.ClassForegroundWrite, int64(len(msg.Data))+32, false, false)
		return okResp(cost)
	case wire.KReplicaFetch:
		// Recovery replay: return the replicated log extents for the
		// requested block, priced as a sequential log read.
		t.repMu.Lock()
		ri := t.replicas[msg.Block]
		var recs []ExtentRec
		if ri != nil {
			for _, e := range ri.Extents() {
				recs = append(recs, ExtentRec{Off: e.Off, Data: append([]byte(nil), e.Data...)})
			}
		}
		t.repMu.Unlock()
		payload := EncodeExtents(recs)
		var cost time.Duration
		if len(payload) > 0 {
			cost = t.env.Dev().Read(int64(len(payload)), false)
		}
		return &wire.Resp{Data: payload, Cost: cost}
	case wire.KDeltaLogAdd:
		t.stripes.remember(msg)
		role := msg.Flag &^ deltaCompressFlag
		data := msg.Data
		if msg.Flag&deltaCompressFlag != 0 {
			var err error
			if data, err = decompressDelta(msg.Data); err != nil {
				return errResp(err)
			}
		}
		if role == 2 {
			// Copy trim: cancel the recycled range by XOR-inserting its
			// own current content (zero-cost local cancellation).
			t.copyMu.Lock()
			if ci := t.deltaCopy[msg.Block]; ci != nil && msg.Size > 0 {
				buf := make([]byte, msg.Size)
				ci.Overlay(msg.Off, buf)
				ci.Insert(msg.Off, buf, 0)
			}
			t.copyMu.Unlock()
			return okResp(0)
		}
		if role == 1 {
			// Copy for reliability at the second parity OSD: persist
			// and index for recovery, but never recycle.
			t.copyMu.Lock()
			ci := t.deltaCopy[msg.Block]
			if ci == nil {
				ci = logpool.NewIndex(logpool.XorFold)
				t.deltaCopy[msg.Block] = ci
			}
			ci.Insert(msg.Off, data, time.Duration(msg.V))
			t.copyMu.Unlock()
			cost := t.env.Dev().Write(int64(len(msg.Data))+32, false, false)
			return okResp(cost)
		}
		if t.deltaLogs == nil {
			return errResp(fmt.Errorf("tsue: delta log disabled on node %d", t.env.ID()))
		}
		cost := t.deltaLogs.Append(msg.Block, msg.Off, data, time.Duration(msg.V))
		return okResp(cost)
	case wire.KParityLogAdd:
		t.stripes.remember(msg)
		data := msg.Data
		if msg.Flag&deltaCompressFlag != 0 {
			var err error
			if data, err = decompressDelta(msg.Data); err != nil {
				return errResp(err)
			}
		}
		cost := t.parityLogs.Append(msg.Block, msg.Off, data, time.Duration(msg.V))
		return okResp(cost)
	default:
		return errResp(fmt.Errorf("tsue: unexpected message %v", msg.Kind))
	}
}

// Read serves client reads: the DataLog doubles as a read cache
// (§3.3.3) — a fully covered range is served from memory at zero device
// cost; otherwise the base block is read and pending log content overlaid.
func (t *tsue) Read(b wire.BlockID, off uint32, size int) ([]byte, time.Duration, error) {
	if data, ok := t.dataLogs.Lookup(b, off, uint32(size)); ok {
		return append([]byte(nil), data...), 0, nil
	}
	data, cost, err := t.env.Store().ReadRangeClass(sim.ClassForegroundRead, b, off, size, true)
	if err != nil {
		return nil, 0, err
	}
	t.dataLogs.Overlay(b, off, data)
	return data, cost, nil
}

// ReplayPersisted routes a record recovered from the durable segment
// store back into its log layer. Placements are seeded before replay,
// so subsequent recycles can route deltas; re-appending through the
// normal path re-persists the record under the new segment era.
func (t *tsue) ReplayPersisted(layer string, block wire.BlockID, off uint32, v int64, data []byte) {
	switch {
	case strings.HasPrefix(layer, "tsue-data/"):
		t.dataLogs.Append(block, off, data, time.Duration(v))
	case strings.HasPrefix(layer, "tsue-delta/"):
		if t.deltaLogs != nil {
			t.deltaLogs.Append(block, off, data, time.Duration(v))
		}
	case strings.HasPrefix(layer, "tsue-parity/"):
		t.parityLogs.Append(block, off, data, time.Duration(v))
	case strings.HasPrefix(layer, "tsue-replica/"):
		t.repMu.Lock()
		ri := t.replicas[block]
		if ri == nil {
			ri = logpool.NewIndex(logpool.Overwrite)
			t.replicas[block] = ri
		}
		ri.Insert(off, data, time.Duration(v))
		t.repMu.Unlock()
		if t.repPersist != nil {
			t.repPersist.AppendEntry(0, block, off, v, data)
		}
	}
}

// Drain flushes layer by layer; the cluster calls phase 1 on every node,
// then 2, then 3, so deltas produced by one layer land before the next
// layer drains (§3.1.2 real-time recycle, forced to completion).
func (t *tsue) Drain(ctx context.Context, phase int, dead []wire.NodeID) error {
	switch phase {
	case 1:
		t.dataLogs.Drain(0)
	case 2:
		if t.deltaLogs != nil {
			t.deltaLogs.Drain(0)
		}
		// Promote delta copies whose primary DeltaLog died with its OSD.
		if len(dead) > 0 {
			if err := t.promoteCopies(ctx, dead); err != nil {
				return err
			}
		}
		t.copyMu.Lock()
		t.deltaCopy = make(map[wire.BlockID]*logpool.Index)
		t.copyMu.Unlock()
	case 3:
		t.parityLogs.Drain(0)
	}
	return nil
}

// promoteCopies recycles delta copies for stripes whose first parity OSD
// (the primary DeltaLog host) is dead, sending merged parity deltas to
// the surviving parity logs (§4.2 log reliability).
func (t *tsue) promoteCopies(ctx context.Context, dead []wire.NodeID) error {
	isDead := func(n wire.NodeID) bool {
		for _, d := range dead {
			if d == n {
				return true
			}
		}
		return false
	}
	t.copyMu.Lock()
	copies := t.deltaCopy
	t.copyMu.Unlock()
	for b, ci := range copies {
		si, ok := t.stripes.get(b)
		if !ok || !isDead(si.parityNode(0)) {
			continue
		}
		code, err := t.env.Code(si.K, si.M)
		if err != nil {
			return err
		}
		for j := 0; j < si.M; j++ {
			target := si.parityNode(j)
			if isDead(target) {
				continue
			}
			pb := parityBlock(b, si.K, j)
			for _, e := range ci.Extents() {
				pd := make([]byte, len(e.Data))
				gf256.MulSlice(code.Coeff(j, int(b.Idx)), pd, e.Data)
				resp, err := t.env.Call(ctx, target, &wire.Msg{
					Kind: wire.KParityLogAdd, Block: pb, Off: e.Off, Data: pd,
					K: uint8(si.K), M: uint8(si.M), Loc: si.Loc, V: int64(e.V),
				})
				if err != nil {
					return err
				}
				if err := resp.Error(); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func (t *tsue) Close() {
	t.dataLogs.Close()
	t.parityLogs.Close()
	if t.deltaLogs != nil {
		t.deltaLogs.Close()
	}
	for _, r := range t.dataRecs {
		r.Wait()
	}
	for _, r := range t.parityRecs {
		r.Wait()
	}
	for _, done := range t.deltaDone {
		<-done
	}
}

// RealTimeFlush performs the idle-timeout seal-and-recycle that
// real-time recycling completes within seconds of the workload going
// quiet (Table 2: maximum receive-to-reclaim interval of 7 s). The
// paper's recovery experiment starts after client requests terminate, so
// TSUE enters recovery with empty logs.
func (t *tsue) RealTimeFlush() error {
	for phase := 1; phase <= DrainPhases; phase++ {
		if err := t.Drain(context.Background(), phase, nil); err != nil {
			return err
		}
	}
	return nil
}

// Settle waits until all sealed log units across the three layers have
// been recycled — the steady state of real-time recycling — without
// force-sealing active units. Used by the benchmark harness to let
// in-flight asynchronous work finish before reading counters.
func (t *tsue) Settle() {
	t.dataLogs.WaitIdle()
	if t.deltaLogs != nil {
		t.deltaLogs.WaitIdle()
	}
	t.parityLogs.WaitIdle()
}

// LayerStats exposes per-layer log pool statistics for the paper's
// Table 2 and the breakdown analyses.
func (t *tsue) LayerStats() map[string]logpool.Stats {
	out := map[string]logpool.Stats{
		"data":   t.dataLogs.Stats(),
		"parity": t.parityLogs.Stats(),
	}
	if t.deltaLogs != nil {
		out["delta"] = t.deltaLogs.Stats()
	}
	return out
}

// MemoryBytes reports the configured log-buffer budget across layers —
// the quantity the paper's Fig. 6b sweeps (pools expand toward the quota
// under sustained load and shrink when idle, so the budget is the
// resident peak).
func (t *tsue) MemoryBytes() int64 {
	n := t.dataLogs.QuotaBytes() + t.parityLogs.QuotaBytes()
	if t.deltaLogs != nil {
		n += t.deltaLogs.QuotaBytes()
	}
	return n
}
