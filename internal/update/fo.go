package update

import (
	"context"
	"fmt"
	"time"

	"repro/internal/erasure"
	"repro/internal/sim"
	"repro/internal/wire"
)

// fo is the Full-Overwrite baseline [Aguilera et al., DSN'05]: in-place
// updates of the data block AND every parity block, all on the
// synchronous path. Every access is small-grained and random; the update
// path is the longest of all methods (paper Fig. 1).
type fo struct {
	cfg Config
	env Env
}

func newFO(cfg Config, env Env) *fo { return &fo{cfg: cfg, env: env} }

func (f *fo) Name() string { return "fo" }

func (f *fo) Update(ctx context.Context, msg *wire.Msg) (time.Duration, error) {
	store := f.env.Store()
	b := msg.Block
	unlock := store.Lock(b, f.cfg.BlockSize)
	old, rc, err := store.ReadRangeNoLockClass(sim.ClassForegroundWrite, b, msg.Off, len(msg.Data), true)
	if err != nil {
		unlock()
		return 0, err
	}
	wc, err := store.WriteRangeNoLockClass(sim.ClassForegroundWrite, b, msg.Off, msg.Data, true)
	unlock()
	if err != nil {
		return 0, err
	}
	delta := xorBytes(old, msg.Data)
	lat := rc + wc

	// In-place parity updates at every parity OSD, synchronously.
	k, m := int(msg.K), int(msg.M)
	targets := msg.Loc.Nodes[k : k+m]
	src := msg.Block.Idx
	fanCost, err := fanout(ctx, f.env, targets, func(to wire.NodeID) *wire.Msg {
		j := indexOfNode(msg.Loc.Nodes[k:], to)
		return &wire.Msg{
			Kind:  wire.KParityDelta,
			Block: parityBlock(b, k, j),
			Off:   msg.Off,
			Data:  delta,
			Idx:   src,
			K:     msg.K,
			M:     msg.M,
			V:     msg.V,
		}
	})
	if err != nil {
		return 0, err
	}
	return lat + fanCost, nil
}

// indexOfNode returns the position of `to` in nodes; stripes place every
// block of a stripe on a distinct node, so the match is unique.
func indexOfNode(nodes []wire.NodeID, to wire.NodeID) int {
	for i, n := range nodes {
		if n == to {
			return i
		}
	}
	return 0
}

func (f *fo) Handle(ctx context.Context, msg *wire.Msg) *wire.Resp {
	switch msg.Kind {
	case wire.KParityDelta:
		cost, err := applyParityDeltaInPlace(f.env, f.cfg, msg)
		if err != nil {
			return errResp(err)
		}
		return okResp(cost)
	default:
		return errResp(fmt.Errorf("fo: unexpected message %v", msg.Kind))
	}
}

// applyParityDeltaInPlace is the in-place parity read-modify-write shared
// by FO and FL: newParity = oldParity + coeff * dataDelta (Eq. 2).
func applyParityDeltaInPlace(env Env, cfg Config, msg *wire.Msg) (time.Duration, error) {
	code, err := env.Code(int(msg.K), int(msg.M))
	if err != nil {
		return 0, err
	}
	j := int(msg.Block.Idx) - int(msg.K)
	if j < 0 || j >= int(msg.M) {
		return 0, fmt.Errorf("parity delta for non-parity block %v", msg.Block)
	}
	pd := code.ParityDelta(j, int(msg.Idx), msg.Data)
	store := env.Store()
	unlock := store.Lock(msg.Block, cfg.BlockSize)
	defer unlock()
	old, rc, err := store.ReadRangeNoLockClass(sim.ClassForegroundWrite, msg.Block, msg.Off, len(pd), true)
	if err != nil {
		return 0, err
	}
	erasure.ApplyParityDelta(old, pd)
	wc, err := store.WriteRangeNoLockClass(sim.ClassForegroundWrite, msg.Block, msg.Off, old, true)
	if err != nil {
		return 0, err
	}
	return rc + wc, nil
}

func (f *fo) Read(b wire.BlockID, off uint32, size int) ([]byte, time.Duration, error) {
	return f.env.Store().ReadRangeClass(sim.ClassForegroundRead, b, off, size, true)
}

func (f *fo) Drain(ctx context.Context, phase int, dead []wire.NodeID) error { return nil }

func (f *fo) Close() {}
