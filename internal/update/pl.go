package update

import (
	"context"
	"fmt"
	"time"

	"repro/internal/erasure"
	"repro/internal/logpool"
	"repro/internal/sim"
	"repro/internal/wire"
)

// pl is Parity Logging [Stodolsky et al., ISCA'93]: data blocks update in
// place (a random read-modify-write to compute the data delta); the
// resulting parity deltas are appended sequentially to a per-parity-OSD
// parity log. Log recycling is deferred until the log reaches a capacity
// threshold (or recovery forces it), and replays the raw, unmerged log
// with random access — the recycle inefficiency the paper calls out.
type pl struct {
	cfg     Config
	env     Env
	stripes *stripeTable
	// parityLog holds incoming parity deltas for parity blocks this OSD
	// hosts. NoMerge: PL exploits no locality.
	parityLog *logpool.Pool
	recycler  *logpool.Recycler
}

func newPL(cfg Config, env Env) (*pl, error) {
	p := &pl{cfg: cfg, env: env, stripes: newStripeTable()}
	pool, err := logpool.NewPool(logpool.Config{
		Name:     fmt.Sprintf("pl/osd%d", env.ID()),
		Mode:     logpool.NoMerge,
		UnitSize: cfg.RecycleThreshold,
		MaxUnits: 2,
		Device:   env.Dev(),
	})
	if err != nil {
		return nil, err
	}
	p.parityLog = pool
	p.recycler = logpool.StartRecycler(pool, cfg.Workers, p.recycleParity)
	return p, nil
}

func (p *pl) Name() string { return "pl" }

// RefreshPlacement adopts a newer placement epoch (epoch broadcast).
func (p *pl) RefreshPlacement(msg *wire.Msg) { p.stripes.remember(msg) }

func (p *pl) Update(ctx context.Context, msg *wire.Msg) (time.Duration, error) {
	// In-place data-block read-modify-write (the expensive
	// write-after-read the paper highlights).
	store := p.env.Store()
	b := msg.Block
	unlock := store.Lock(b, p.cfg.BlockSize)
	old, rc, err := store.ReadRangeNoLockClass(sim.ClassForegroundWrite, b, msg.Off, len(msg.Data), true)
	if err != nil {
		unlock()
		return 0, err
	}
	wc, err := store.WriteRangeNoLockClass(sim.ClassForegroundWrite, b, msg.Off, msg.Data, true)
	unlock()
	if err != nil {
		return 0, err
	}
	delta := xorBytes(old, msg.Data)

	// Forward the data delta to every parity OSD's parity log.
	k, m := int(msg.K), int(msg.M)
	targets := msg.Loc.Nodes[k : k+m]
	fanCost, err := fanout(ctx, p.env, targets, func(to wire.NodeID) *wire.Msg {
		j := indexOfNode(msg.Loc.Nodes[k:], to)
		return &wire.Msg{
			Kind:  wire.KParityLogAdd,
			Block: parityBlock(b, k, j),
			Off:   msg.Off,
			Data:  delta,
			Idx:   msg.Block.Idx,
			K:     msg.K,
			M:     msg.M,
			Loc:   msg.Loc,
			V:     msg.V,
		}
	})
	if err != nil {
		return 0, err
	}
	return rc + wc + fanCost, nil
}

func (p *pl) Handle(ctx context.Context, msg *wire.Msg) *wire.Resp {
	switch msg.Kind {
	case wire.KParityLogAdd:
		p.stripes.remember(msg)
		// Sequential append of the delta record; the source data index
		// rides in the first payload byte position via a tiny header so
		// recycle can recover the coefficient.
		rec := encodeDeltaRecord(msg.Idx, msg.Data)
		cost := p.parityLog.Append(msg.Block, msg.Off, rec, time.Duration(msg.V))
		return okResp(cost)
	default:
		return errResp(fmt.Errorf("pl: unexpected message %v", msg.Kind))
	}
}

// Delta records carry their source data-block index so the recycler can
// pick the right encoding coefficient. The byte layout is [src][delta...];
// NoMerge mode never splices records, so the prefix survives intact.
func encodeDeltaRecord(src uint8, delta []byte) []byte {
	rec := make([]byte, 1+len(delta))
	rec[0] = src
	copy(rec[1:], delta)
	return rec
}

func decodeDeltaRecord(rec []byte) (uint8, []byte) { return rec[0], rec[1:] }

// recycleParity replays the raw log for one parity block: each record is
// re-read from the on-disk log (random), converted to a parity delta and
// folded into the parity block with a random read-modify-write.
func (p *pl) recycleParity(be logpool.BlockExtents, sealV time.Duration) time.Duration {
	si, ok := p.stripes.get(be.Block)
	if !ok {
		return 0
	}
	code, err := p.env.Code(si.K, si.M)
	if err != nil {
		return 0
	}
	j := int(be.Block.Idx) - si.K
	store := p.env.Store()
	dev := p.env.Dev()
	var cost time.Duration
	unlock := store.Lock(be.Block, p.cfg.BlockSize)
	defer unlock()
	for _, e := range be.Extents {
		src, delta := decodeDeltaRecord(e.Data)
		// Random re-read of the log record from disk.
		cost += dev.Read(int64(len(e.Data))+32, true)
		pd := code.ParityDelta(j, int(src), delta)
		old, rc, err := store.ReadRangeNoLock(be.Block, e.Off, len(pd), true)
		if err != nil {
			continue
		}
		erasure.ApplyParityDelta(old, pd)
		wc, err := store.WriteRangeNoLock(be.Block, e.Off, old, true)
		if err != nil {
			continue
		}
		cost += rc + wc
	}
	return cost
}

func (p *pl) Read(b wire.BlockID, off uint32, size int) ([]byte, time.Duration, error) {
	// Data blocks are updated in place; no log on the read path.
	return p.env.Store().ReadRangeClass(sim.ClassForegroundRead, b, off, size, true)
}

func (p *pl) Drain(ctx context.Context, phase int, dead []wire.NodeID) error {
	if phase == 3 {
		p.parityLog.Drain(0)
	}
	return nil
}

func (p *pl) Close() {
	p.parityLog.Close()
	p.recycler.Wait()
}

// Settle waits for any sealed parity-log units to recycle.
func (p *pl) Settle() { p.parityLog.WaitIdle() }
