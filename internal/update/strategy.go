// Package update implements the erasure-code update strategies the paper
// evaluates — FO, FL, PL, PLR, PARIX, CoRD, and TSUE itself — behind one
// Strategy interface, inside the same file system, exactly as the paper's
// methodology demands for a fair comparison (§5).
//
// Each OSD owns one Strategy instance. The strategy receives client
// updates for data blocks the OSD hosts, exchanges strategy-internal
// messages with peer OSDs (delta forwards, log replicas, parity-log
// appends), and answers reads with read-your-writes semantics over any
// logs it keeps. Every byte it moves is priced through the device and
// network models, so workload tables fall out of real execution.
//
// Placement handling: strategies cache the stripe placement carried on
// update messages (stripeTable) so asynchronous recycle paths can route
// deltas long after the triggering request returned. The cached entry
// is refreshed whenever a message carries a newer placement epoch
// (wire.StripeLoc.Epoch) — after recovery rebinds a stripe onto a
// replacement node, deltas must reach the new member, not the cached
// victim. Epoch *validation* is not a strategy concern: the OSD rejects
// stale client requests before Strategy.Update runs, and
// strategy-internal forwards inherit the already-validated placement of
// the triggering request.
package update

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/blockstore"
	"repro/internal/device"
	"repro/internal/erasure"
	"repro/internal/logpool"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Env is the OSD-side environment a strategy runs in.
type Env interface {
	// ID is this OSD's node id.
	ID() wire.NodeID
	// Store is the OSD's block container (device-priced).
	Store() *blockstore.Store
	// Dev is the OSD's storage device model (for log persistence).
	Dev() *device.Device
	// Call performs a synchronous RPC to a peer node. Synchronous
	// front-end paths pass the triggering request's context so
	// cancellation propagates hop by hop; asynchronous recycle paths
	// pass context.Background() — background work completes regardless
	// of any client's lifetime.
	Call(ctx context.Context, to wire.NodeID, msg *wire.Msg) (*wire.Resp, error)
	// Code returns the (cached) RS code for the given geometry.
	Code(k, m int) (*erasure.Code, error)
}

// DrainPhases is the number of ordered cluster-wide drain rounds needed
// to flush any strategy completely (TSUE: DataLog, DeltaLog, ParityLog).
const DrainPhases = 3

// Strategy is one update method instance, bound to one OSD.
type Strategy interface {
	// Name returns the method name ("tsue", "pl", ...).
	Name() string
	// Update processes a client update to a data block hosted here and
	// returns the synchronous-path latency (what the client perceives).
	// ctx is the triggering request's context; strategy-internal
	// forwards on the synchronous path inherit it.
	Update(ctx context.Context, msg *wire.Msg) (time.Duration, error)
	// Handle processes a strategy-internal message from a peer OSD.
	Handle(ctx context.Context, msg *wire.Msg) *wire.Resp
	// Read returns block bytes honoring any pending logs, with the
	// modeled read latency (zero on a log-cache hit). Reads are local
	// (store + resident logs) and take no context.
	Read(b wire.BlockID, off uint32, size int) ([]byte, time.Duration, error)
	// Drain flushes asynchronous state. It is called cluster-wide for
	// phases 1..DrainPhases in order; dead lists failed nodes so
	// replica/copy logs can be promoted.
	Drain(ctx context.Context, phase int, dead []wire.NodeID) error
	// Close stops background workers.
	Close()
}

// PlacementRefresher is implemented by strategies that cache stripe
// placements for asynchronous delta routing. The OSD forwards placement
// epoch broadcasts (wire.KEpochUpdate) through it, so recycle paths
// route deltas to the member a repair or drain just installed instead
// of the cached predecessor.
type PlacementRefresher interface {
	RefreshPlacement(msg *wire.Msg)
}

// Replayer is implemented by strategies that can re-ingest durably
// persisted log records after a restart. The OSD calls ReplayPersisted
// once per surviving (unfolded) record, in original append order, after
// placements have been seeded; the strategy routes the record back into
// the layer named by the persistence key it was logged under.
type Replayer interface {
	ReplayPersisted(layer string, block wire.BlockID, off uint32, v int64, data []byte)
}

// Config carries the tunables shared by the strategies.
type Config struct {
	// BlockSize is the stripe block size in bytes.
	BlockSize int

	// Log pool geometry (TSUE; also reused by FL/PL/CoRD logs).
	UnitSize int64 // log unit capacity (paper: 16 MiB)
	MaxUnits int   // units per pool (paper default 4; Fig. 6b sweeps it)
	Pools    int   // log pools per device (paper: 4; Fig. 7 O4)
	Workers  int   // recycle threads per pool

	// TSUE feature gates for the Fig. 7 breakdown.
	DataLogLocality   bool // O1: spatio-temporal merging in the data log
	ParityLogLocality bool // O2: merging in the parity log
	UseLogPool        bool // O3: FIFO multi-unit pool vs one small unit
	UseDeltaLog       bool // O5: the intermediate DeltaLog layer
	// DataLogReplicas is the number of extra DataLog copies (1 on the
	// SSD cluster = 2 copies total; 2 on HDD = 3 copies, Fig. 2 note).
	DataLogReplicas int
	// CompressDeltas enables the paper's §7 future-work extension:
	// deflate data deltas and merged parity deltas before forwarding
	// them between log layers, trading buffered-residence CPU time for
	// network traffic.
	CompressDeltas bool

	// Baseline knobs.
	RecycleThreshold  int64 // PL/FL/PARIX deferred-recycle threshold
	ReservedSpace     int64 // PLR per-block reserved log space
	CollectorUnitSize int64 // CoRD single buffer log size

	// Persist, when non-nil, durably backs TSUE's log layers: every
	// accepted log record is written to a per-layer on-disk segment
	// before the append returns, and recycled records are folded dead.
	// Nil (the default) keeps logs memory-only.
	Persist logpool.PersistProvider
}

// DefaultConfig returns the paper's SSD-cluster configuration.
func DefaultConfig() Config {
	return Config{
		BlockSize:         1 << 20,
		UnitSize:          16 << 20,
		MaxUnits:          4,
		Pools:             4,
		Workers:           4,
		DataLogLocality:   true,
		ParityLogLocality: true,
		UseLogPool:        true,
		UseDeltaLog:       true,
		DataLogReplicas:   1,
		RecycleThreshold:  64 << 20,
		ReservedSpace:     64 << 10,
		CollectorUnitSize: 4 << 20,
	}
}

// Known method names, in the paper's comparison order.
var Methods = []string{"fo", "pl", "plr", "parix", "cord", "tsue"}

// AllMethods includes FL (§2.2), which the paper describes but does not
// chart.
var AllMethods = []string{"fo", "fl", "pl", "plr", "parix", "cord", "tsue"}

// New constructs the named strategy bound to env.
func New(name string, cfg Config, env Env) (Strategy, error) {
	if cfg.BlockSize <= 0 {
		return nil, fmt.Errorf("update: non-positive block size")
	}
	switch name {
	case "fo":
		return newFO(cfg, env), nil
	case "fl":
		return newFL(cfg, env)
	case "pl":
		return newPL(cfg, env)
	case "plr":
		return newPLR(cfg, env), nil
	case "parix":
		return newPARIX(cfg, env), nil
	case "cord":
		return newCoRD(cfg, env)
	case "tsue":
		return newTSUE(cfg, env)
	default:
		return nil, fmt.Errorf("update: unknown method %q", name)
	}
}

// ---- shared helpers ----

// stripeKey identifies a stripe across blocks.
type stripeKey struct {
	Ino    uint64
	Stripe uint32
}

func keyOf(b wire.BlockID) stripeKey { return stripeKey{Ino: b.Ino, Stripe: b.Stripe} }

// stripeInfo caches the placement/geometry carried on update messages so
// asynchronous recycle paths can route deltas.
type stripeInfo struct {
	K, M int
	Loc  wire.StripeLoc
}

type stripeTable struct {
	mu sync.RWMutex
	m  map[stripeKey]stripeInfo
}

func newStripeTable() *stripeTable { return &stripeTable{m: make(map[stripeKey]stripeInfo)} }

func (t *stripeTable) remember(msg *wire.Msg) {
	if len(msg.Loc.Nodes) == 0 {
		return
	}
	k := keyOf(msg.Block)
	t.mu.Lock()
	// Refresh on a newer placement epoch: after a repair or drain
	// rebinds a stripe onto another node, asynchronous recycle paths
	// must route deltas to the *new* member, not the cached one.
	if cur, ok := t.m[k]; !ok || msg.Loc.Epoch > cur.Loc.Epoch {
		kk, mm := int(msg.K), int(msg.M)
		if kk == 0 && ok {
			// Geometry-free refresh (an epoch broadcast): keep the
			// known K/M, adopt only the new placement.
			kk, mm = cur.K, cur.M
		}
		loc := wire.StripeLoc{Nodes: append([]wire.NodeID(nil), msg.Loc.Nodes...), Epoch: msg.Loc.Epoch}
		t.m[k] = stripeInfo{K: kk, M: mm, Loc: loc}
	}
	t.mu.Unlock()
}
func (t *stripeTable) get(b wire.BlockID) (stripeInfo, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	si, ok := t.m[keyOf(b)]
	return si, ok
}

// parityNode returns the node hosting parity block j (0-based) of the
// stripe described by si.
func (si stripeInfo) parityNode(j int) wire.NodeID { return si.Loc.Nodes[si.K+j] }

// parityBlock returns the BlockID of parity j for a block in the stripe.
func parityBlock(b wire.BlockID, k, j int) wire.BlockID { return b.WithIdx(uint8(k + j)) }

// batchCaller is the optional Env extension for batch-capable
// environments (an OSD whose transport implements transport.BatchRPC):
// a fan-out's same-destination frames are flushed together instead of
// one write per call.
type batchCaller interface {
	CallBatch(ctx context.Context, calls []*transport.BatchCall)
}

// fanout issues one call per target concurrently — batched through the
// environment's transport when it supports it — and returns the largest
// response cost (the latency of parallel synchronous hops) plus the
// first error encountered. Fan-out callers only consume Cost and the
// status, never Data, so every response buffer is released back to the
// transport pool here.
func fanout(ctx context.Context, env Env, targets []wire.NodeID, mk func(to wire.NodeID) *wire.Msg) (time.Duration, error) {
	switch len(targets) {
	case 0:
		return 0, nil
	case 1:
		resp, err := env.Call(ctx, targets[0], mk(targets[0]))
		if err != nil {
			return 0, err
		}
		defer resp.Release()
		if err := resp.Error(); err != nil {
			return 0, err
		}
		return resp.Cost, nil
	}
	if bc, ok := env.(batchCaller); ok {
		calls := make([]*transport.BatchCall, len(targets))
		for i, to := range targets {
			calls[i] = &transport.BatchCall{To: to, Msg: mk(to)}
		}
		bc.CallBatch(ctx, calls)
		var (
			maxCost time.Duration
			firstE  error
		)
		for _, call := range calls {
			if call.Err != nil {
				if firstE == nil {
					firstE = call.Err
				}
				continue
			}
			if err := call.Resp.Error(); err != nil && firstE == nil {
				firstE = err
			}
			if call.Resp.Cost > maxCost {
				maxCost = call.Resp.Cost
			}
			call.Resp.Release()
		}
		return maxCost, firstE
	}
	type result struct {
		cost time.Duration
		err  error
	}
	results := make(chan result, len(targets))
	for _, to := range targets {
		go func(to wire.NodeID) {
			resp, err := env.Call(ctx, to, mk(to))
			if err != nil {
				results <- result{0, err}
				return
			}
			cost, rerr := resp.Cost, resp.Error()
			resp.Release()
			results <- result{cost, rerr}
		}(to)
	}
	var (
		maxCost time.Duration
		firstE  error
	)
	for range targets {
		r := <-results
		if r.err != nil && firstE == nil {
			firstE = r.err
		}
		if r.cost > maxCost {
			maxCost = r.cost
		}
	}
	return maxCost, firstE
}

// xorBytes returns a^b element-wise into a fresh slice.
func xorBytes(a, b []byte) []byte {
	if len(a) != len(b) {
		panic("update: xorBytes length mismatch")
	}
	out := make([]byte, len(a))
	for i := range a {
		out[i] = a[i] ^ b[i]
	}
	return out
}

// errResp wraps an error into a response, keeping any structured
// sentinel class (stale epoch, not found, peer unreachable) it carries.
func errResp(err error) *wire.Resp { return wire.ErrorResp(err) }

// okResp builds a success response with a cost.
func okResp(cost time.Duration) *wire.Resp { return &wire.Resp{Cost: cost} }

// intervalSet tracks covered byte ranges of a block (PARIX speculative
// state). Not safe for concurrent use; callers hold their own lock.
type intervalSet struct {
	ivs []ival // sorted, disjoint, non-adjacent
}

type ival struct{ lo, hi uint32 } // [lo, hi)

// addGaps merges [lo, hi) into the set and returns the previously
// uncovered sub-ranges.
func (s *intervalSet) addGaps(lo, hi uint32) []ival {
	if hi <= lo {
		return nil
	}
	var gaps []ival
	cur := lo
	i := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].hi >= lo })
	j := i
	newLo, newHi := lo, hi
	for ; j < len(s.ivs) && s.ivs[j].lo <= hi; j++ {
		iv := s.ivs[j]
		if cur < iv.lo {
			gaps = append(gaps, ival{cur, minU32i(iv.lo, hi)})
		}
		if iv.hi > cur {
			cur = iv.hi
		}
		if iv.lo < newLo {
			newLo = iv.lo
		}
		if iv.hi > newHi {
			newHi = iv.hi
		}
	}
	if cur < hi {
		gaps = append(gaps, ival{cur, hi})
	}
	merged := append(s.ivs[:i:i], ival{newLo, newHi})
	s.ivs = append(merged, s.ivs[j:]...)
	return gaps
}

// covered reports whether [lo, hi) is fully covered.
func (s *intervalSet) covered(lo, hi uint32) bool {
	i := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].hi >= hi })
	if i >= len(s.ivs) {
		return false
	}
	return s.ivs[i].lo <= lo
}

func minU32i(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}
