package update

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCompressRoundTrip(t *testing.T) {
	payload := bytes.Repeat([]byte("three-layer log "), 100)
	c, ok := compressDelta(payload)
	if !ok {
		t.Fatal("redundant payload should compress")
	}
	if len(c) >= len(payload) {
		t.Fatalf("compressed %d >= original %d", len(c), len(payload))
	}
	got, err := decompressDelta(c)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("round trip mismatch")
	}
}

func TestCompressSkipsSmallAndRandom(t *testing.T) {
	small := []byte("tiny")
	if _, ok := compressDelta(small); ok {
		t.Fatal("sub-64B payloads must be skipped")
	}
	random := make([]byte, 4096)
	rand.New(rand.NewSource(1)).Read(random)
	out, ok := compressDelta(random)
	if ok {
		t.Fatal("incompressible payload must be skipped")
	}
	if !bytes.Equal(out, random) {
		t.Fatal("skipped payload must be returned verbatim")
	}
}

func TestCompressProperty(t *testing.T) {
	f := func(data []byte) bool {
		c, ok := compressDelta(data)
		if !ok {
			return bytes.Equal(c, data)
		}
		got, err := decompressDelta(c)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDecompressGarbage(t *testing.T) {
	if _, err := decompressDelta([]byte{0xff, 0x00, 0x12}); err == nil {
		t.Fatal("garbage must not decompress")
	}
}
