package update

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/gf256"
	"repro/internal/sim"
	"repro/internal/wire"
)

// plr is Parity Logging with Reserved Space [Chan et al., FAST'14]: each
// parity block has a log region reserved adjacent to it. Recycling is
// cheap (the log sits next to the parity block, so replay is sequential)
// but appends land in per-block reserved regions scattered across the
// device, so the high-frequency append path becomes random I/O — which is
// why PLR measures *below* PL on SSD clusters in the paper's Fig. 5.
// When a block's reserved region fills, it is recycled inline with the
// update (the paper: "PLR integrates log recycle process into the update
// process"), adding latency spikes.
type plr struct {
	cfg     Config
	env     Env
	stripes *stripeTable

	mu   sync.Mutex
	logs map[wire.BlockID]*plrLog
}

type plrLog struct {
	mu      sync.Mutex
	entries []plrEntry
	bytes   int64
}

type plrEntry struct {
	off   uint32
	src   uint8
	delta []byte
}

func newPLR(cfg Config, env Env) *plr {
	return &plr{cfg: cfg, env: env, stripes: newStripeTable(), logs: make(map[wire.BlockID]*plrLog)}
}

func (p *plr) Name() string { return "plr" }

// RefreshPlacement adopts a newer placement epoch (epoch broadcast).
func (p *plr) RefreshPlacement(msg *wire.Msg) { p.stripes.remember(msg) }

func (p *plr) Update(ctx context.Context, msg *wire.Msg) (time.Duration, error) {
	store := p.env.Store()
	b := msg.Block
	unlock := store.Lock(b, p.cfg.BlockSize)
	old, rc, err := store.ReadRangeNoLockClass(sim.ClassForegroundWrite, b, msg.Off, len(msg.Data), true)
	if err != nil {
		unlock()
		return 0, err
	}
	wc, err := store.WriteRangeNoLockClass(sim.ClassForegroundWrite, b, msg.Off, msg.Data, true)
	unlock()
	if err != nil {
		return 0, err
	}
	delta := xorBytes(old, msg.Data)

	k, m := int(msg.K), int(msg.M)
	targets := msg.Loc.Nodes[k : k+m]
	fanCost, err := fanout(ctx, p.env, targets, func(to wire.NodeID) *wire.Msg {
		j := indexOfNode(msg.Loc.Nodes[k:], to)
		return &wire.Msg{
			Kind:  wire.KParityLogAdd,
			Block: parityBlock(b, k, j),
			Off:   msg.Off,
			Data:  delta,
			Idx:   msg.Block.Idx,
			K:     msg.K,
			M:     msg.M,
			Loc:   msg.Loc,
			V:     msg.V,
		}
	})
	if err != nil {
		return 0, err
	}
	return rc + wc + fanCost, nil
}

func (p *plr) logFor(b wire.BlockID) *plrLog {
	p.mu.Lock()
	defer p.mu.Unlock()
	l := p.logs[b]
	if l == nil {
		l = &plrLog{}
		p.logs[b] = l
	}
	return l
}

func (p *plr) Handle(ctx context.Context, msg *wire.Msg) *wire.Resp {
	switch msg.Kind {
	case wire.KParityLogAdd:
		p.stripes.remember(msg)
		l := p.logFor(msg.Block)
		l.mu.Lock()
		l.entries = append(l.entries, plrEntry{off: msg.Off, src: msg.Idx, delta: append([]byte(nil), msg.Data...)})
		l.bytes += int64(len(msg.Data)) + 32
		// The reserved region is adjacent to *this* parity block, far
		// from other blocks' regions: the append is a random write.
		cost := p.env.Dev().Write(int64(len(msg.Data))+32, true, false)
		var full bool
		if l.bytes >= p.cfg.ReservedSpace {
			full = true
		}
		if full {
			// Inline recycle: the update that fills the region pays
			// for draining it.
			cost += p.recycleLocked(msg.Block, l)
		}
		l.mu.Unlock()
		return okResp(cost)
	default:
		return errResp(fmt.Errorf("plr: unexpected message %v", msg.Kind))
	}
}

// recycleLocked drains one block's reserved log: a sequential read of the
// adjacent log region, one sequential parity read, delta application, and
// one sequential overwrite. Caller holds l.mu.
func (p *plr) recycleLocked(b wire.BlockID, l *plrLog) time.Duration {
	if len(l.entries) == 0 {
		return 0
	}
	si, ok := p.stripes.get(b)
	if !ok {
		l.entries, l.bytes = nil, 0
		return 0
	}
	code, err := p.env.Code(si.K, si.M)
	if err != nil {
		return 0
	}
	j := int(b.Idx) - si.K
	store := p.env.Store()
	dev := p.env.Dev()
	// Sequential replay of the adjacent log region — PLR's one saving
	// over PL (no random log re-reads).
	cost := dev.Read(l.bytes, false)
	unlock := store.Lock(b, p.cfg.BlockSize)
	defer unlock()
	// The parity span itself sits wherever this parity block landed on
	// the device, far from other blocks being recycled concurrently: the
	// read-modify-write of the span is random access.
	lo, hi := l.entries[0].off, l.entries[0].off+uint32(len(l.entries[0].delta))
	for _, e := range l.entries[1:] {
		if e.off < lo {
			lo = e.off
		}
		if end := e.off + uint32(len(e.delta)); end > hi {
			hi = end
		}
	}
	span, rc, err := store.ReadRangeNoLock(b, lo, int(hi-lo), true)
	if err != nil {
		l.entries, l.bytes = nil, 0
		return cost
	}
	cost += rc
	for _, e := range l.entries {
		pd := code.ParityDelta(j, int(e.src), e.delta)
		gf256.XorSlice(span[e.off-lo:e.off-lo+uint32(len(pd))], pd)
	}
	wc, err := store.WriteRangeNoLock(b, lo, span, true)
	if err == nil {
		cost += wc
	}
	l.entries, l.bytes = nil, 0
	return cost
}

func (p *plr) Read(b wire.BlockID, off uint32, size int) ([]byte, time.Duration, error) {
	return p.env.Store().ReadRangeClass(sim.ClassForegroundRead, b, off, size, true)
}

func (p *plr) Drain(ctx context.Context, phase int, dead []wire.NodeID) error {
	if phase != 3 {
		return nil
	}
	p.mu.Lock()
	blocks := make([]wire.BlockID, 0, len(p.logs))
	for b := range p.logs {
		blocks = append(blocks, b)
	}
	p.mu.Unlock()
	for _, b := range blocks {
		l := p.logFor(b)
		l.mu.Lock()
		p.recycleLocked(b, l)
		l.mu.Unlock()
	}
	return nil
}

func (p *plr) Close() {}
