package update

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
)

// Delta compression is the paper's §7 future-work item: "we explored the
// integration of compression mechanisms into the update process to
// alleviate network traffic congestion. ... The log content remains in
// each layer for approximately 1 to 5 seconds. This duration is adequate
// to facilitate the compression and decompression processes."
//
// When Config.CompressDeltas is set, TSUE compresses data deltas before
// forwarding them to the DeltaLog layer and merged parity deltas before
// forwarding to the ParityLogs, and receivers decompress before
// indexing. Compression is skipped when it does not shrink the payload
// (deltas of incompressible data), flagged per message.

// deltaCompressFlag marks a compressed payload in Msg.Flag (bitwise,
// composed with the role bits used by KDeltaLogAdd).
const deltaCompressFlag = 0x80

// compressDelta deflates data; ok is false (and data returned verbatim)
// when compression would not help.
func compressDelta(data []byte) ([]byte, bool) {
	if len(data) < 64 {
		return data, false // framing overhead dominates
	}
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, flate.BestSpeed)
	if err != nil {
		return data, false
	}
	if _, err := w.Write(data); err != nil {
		return data, false
	}
	if err := w.Close(); err != nil {
		return data, false
	}
	if buf.Len() >= len(data) {
		return data, false
	}
	return buf.Bytes(), true
}

// decompressDelta inflates a payload produced by compressDelta.
func decompressDelta(data []byte) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(data))
	defer r.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("update: delta decompression: %w", err)
	}
	return out, nil
}
