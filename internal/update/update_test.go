package update

import (
	"bytes"
	"context"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/blockstore"
	"repro/internal/device"
	"repro/internal/erasure"
	"repro/internal/wire"
)

func TestIntervalSetBasic(t *testing.T) {
	var s intervalSet
	gaps := s.addGaps(10, 20)
	if len(gaps) != 1 || gaps[0] != (ival{10, 20}) {
		t.Fatalf("first add gaps = %v", gaps)
	}
	// Fully covered: no gaps.
	if gaps := s.addGaps(12, 18); len(gaps) != 0 {
		t.Fatalf("covered add gaps = %v", gaps)
	}
	// Overlap on both sides.
	gaps = s.addGaps(5, 25)
	if len(gaps) != 2 || gaps[0] != (ival{5, 10}) || gaps[1] != (ival{20, 25}) {
		t.Fatalf("straddling add gaps = %v", gaps)
	}
	if !s.covered(5, 25) {
		t.Fatal("range should now be covered")
	}
	if s.covered(4, 6) || s.covered(24, 26) {
		t.Fatal("uncovered edges reported covered")
	}
}

func TestIntervalSetAdjacencyMerges(t *testing.T) {
	var s intervalSet
	s.addGaps(0, 10)
	s.addGaps(10, 20) // touching
	if len(s.ivs) != 1 || s.ivs[0] != (ival{0, 20}) {
		t.Fatalf("adjacent intervals not merged: %v", s.ivs)
	}
}

func TestIntervalSetEmptyRange(t *testing.T) {
	var s intervalSet
	if gaps := s.addGaps(5, 5); gaps != nil {
		t.Fatalf("empty range gaps = %v", gaps)
	}
}

// Property: the union of returned gaps over a random insert sequence
// equals exactly the bytes not previously covered, and the set stays
// sorted and disjoint.
func TestIntervalSetMatchesModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var s intervalSet
		covered := map[uint32]bool{}
		for i := 0; i < 50; i++ {
			lo := uint32(rng.Intn(500))
			hi := lo + 1 + uint32(rng.Intn(60))
			gaps := s.addGaps(lo, hi)
			// Gaps must be exactly the uncovered bytes of [lo, hi).
			gapBytes := map[uint32]bool{}
			for _, g := range gaps {
				for b := g.lo; b < g.hi; b++ {
					if covered[b] {
						return false // gap reported for covered byte
					}
					gapBytes[b] = true
				}
			}
			for b := lo; b < hi; b++ {
				if !covered[b] && !gapBytes[b] {
					return false // uncovered byte missing from gaps
				}
				covered[b] = true
			}
		}
		// Invariants: sorted, disjoint, non-adjacent.
		for i := 1; i < len(s.ivs); i++ {
			if s.ivs[i-1].hi >= s.ivs[i].lo {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestExtentCodecRoundTrip(t *testing.T) {
	in := []ExtentRec{
		{Off: 0, Data: []byte("alpha")},
		{Off: 4096, Data: []byte{}},
		{Off: 1 << 30, Data: bytes.Repeat([]byte{7}, 300)},
	}
	out, err := DecodeExtents(EncodeExtents(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("count %d != %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Off != in[i].Off || !bytes.Equal(out[i].Data, in[i].Data) {
			t.Fatalf("record %d mismatch", i)
		}
	}
	if recs, err := DecodeExtents(nil); err != nil || len(recs) != 0 {
		t.Fatal("empty payload must decode to nothing")
	}
}

func TestExtentCodecTruncation(t *testing.T) {
	good := EncodeExtents([]ExtentRec{{Off: 1, Data: []byte("abcdef")}})
	if _, err := DecodeExtents(good[:5]); err == nil {
		t.Fatal("truncated header must fail")
	}
	if _, err := DecodeExtents(good[:len(good)-2]); err == nil {
		t.Fatal("truncated body must fail")
	}
}

func TestNewRejectsUnknownMethod(t *testing.T) {
	if _, err := New("raid5", DefaultConfig(), nil); err == nil {
		t.Fatal("unknown method must fail")
	}
	cfg := DefaultConfig()
	cfg.BlockSize = 0
	if _, err := New("fo", cfg, nil); err == nil {
		t.Fatal("zero block size must fail")
	}
}

func TestMethodLists(t *testing.T) {
	if len(Methods) != 6 || Methods[len(Methods)-1] != "tsue" {
		t.Fatalf("Methods = %v", Methods)
	}
	if len(AllMethods) != 7 {
		t.Fatalf("AllMethods = %v", AllMethods)
	}
}

func TestStripeTable(t *testing.T) {
	st := newStripeTable()
	msg := &wire.Msg{
		Block: wire.BlockID{Ino: 1, Stripe: 2, Idx: 0},
		K:     2, M: 1,
		Loc: wire.StripeLoc{Nodes: []wire.NodeID{1, 2, 3}},
	}
	st.remember(msg)
	si, ok := st.get(wire.BlockID{Ino: 1, Stripe: 2, Idx: 1}) // same stripe, other block
	if !ok || si.K != 2 || si.M != 1 {
		t.Fatalf("lookup failed: %+v %v", si, ok)
	}
	if si.parityNode(0) != 3 {
		t.Fatalf("parity node = %d", si.parityNode(0))
	}
	if _, ok := st.get(wire.BlockID{Ino: 9, Stripe: 9}); ok {
		t.Fatal("unknown stripe must miss")
	}
	// Empty placement ignored.
	st.remember(&wire.Msg{Block: wire.BlockID{Ino: 5}})
	if _, ok := st.get(wire.BlockID{Ino: 5}); ok {
		t.Fatal("empty placement must not be remembered")
	}
}

func TestParityBlockHelper(t *testing.T) {
	b := wire.BlockID{Ino: 1, Stripe: 2, Idx: 1}
	pb := parityBlock(b, 6, 2)
	if pb.Idx != 8 || pb.Ino != 1 || pb.Stripe != 2 {
		t.Fatalf("parityBlock = %v", pb)
	}
}

func TestXorBytes(t *testing.T) {
	got := xorBytes([]byte{1, 2, 3}, []byte{1, 1, 1})
	if !bytes.Equal(got, []byte{0, 3, 2}) {
		t.Fatalf("xorBytes = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch must panic")
		}
	}()
	xorBytes([]byte{1}, []byte{1, 2})
}

func TestDeltaRecordCodec(t *testing.T) {
	rec := encodeDeltaRecord(5, []byte("delta"))
	src, delta := decodeDeltaRecord(rec)
	if src != 5 || string(delta) != "delta" {
		t.Fatalf("decoded %d %q", src, delta)
	}
}

func TestDefaultConfigSane(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.UnitSize != 16<<20 || cfg.MaxUnits != 4 || cfg.Pools != 4 {
		t.Fatalf("paper defaults wrong: %+v", cfg)
	}
	if !cfg.UseDeltaLog || !cfg.UseLogPool || !cfg.DataLogLocality || !cfg.ParityLogLocality {
		t.Fatal("paper defaults must enable all optimizations")
	}
	if cfg.DataLogReplicas != 1 {
		t.Fatal("SSD profile uses 2 copies total (1 replica)")
	}
}

// fakeEnv routes Call through a stub for fanout tests.
type fakeEnv struct {
	call func(to wire.NodeID, msg *wire.Msg) (*wire.Resp, error)
}

func (f *fakeEnv) ID() wire.NodeID          { return 1 }
func (f *fakeEnv) Store() *blockstore.Store { return nil }
func (f *fakeEnv) Dev() *device.Device      { return nil }
func (f *fakeEnv) Call(_ context.Context, to wire.NodeID, msg *wire.Msg) (*wire.Resp, error) {
	return f.call(to, msg)
}
func (f *fakeEnv) Code(k, m int) (*erasure.Code, error) {
	return erasure.New(k, m, erasure.Vandermonde)
}

func TestFanoutEmpty(t *testing.T) {
	cost, err := fanout(context.Background(), &fakeEnv{}, nil, nil)
	if err != nil || cost != 0 {
		t.Fatalf("empty fanout: %v %v", cost, err)
	}
}

func TestFanoutMaxCost(t *testing.T) {
	env := &fakeEnv{call: func(to wire.NodeID, msg *wire.Msg) (*wire.Resp, error) {
		return &wire.Resp{Cost: time.Duration(to) * time.Microsecond}, nil
	}}
	cost, err := fanout(context.Background(), env, []wire.NodeID{2, 9, 5}, func(to wire.NodeID) *wire.Msg {
		return &wire.Msg{Kind: wire.KPing}
	})
	if err != nil {
		t.Fatal(err)
	}
	if cost != 9*time.Microsecond {
		t.Fatalf("fanout cost = %v, want max 9us", cost)
	}
}

func TestFanoutPropagatesErrors(t *testing.T) {
	env := &fakeEnv{call: func(to wire.NodeID, msg *wire.Msg) (*wire.Resp, error) {
		if to == 3 {
			return &wire.Resp{Err: "boom"}, nil
		}
		return &wire.Resp{}, nil
	}}
	if _, err := fanout(context.Background(), env, []wire.NodeID{2, 3, 4}, func(to wire.NodeID) *wire.Msg {
		return &wire.Msg{Kind: wire.KPing}
	}); err == nil {
		t.Fatal("remote error must propagate")
	}
	// Single-target path too.
	if _, err := fanout(context.Background(), env, []wire.NodeID{3}, func(to wire.NodeID) *wire.Msg {
		return &wire.Msg{Kind: wire.KPing}
	}); err == nil {
		t.Fatal("single-target remote error must propagate")
	}
}
