package update

import (
	"context"
	"fmt"
	"time"

	"repro/internal/erasure"
	"repro/internal/gf256"
	"repro/internal/logpool"
	"repro/internal/sim"
	"repro/internal/wire"
)

// cord is CoRD [Zhou et al., SC'24]: a combination of RAID- and
// delta-based updating whose goal is minimal update traffic. The data OSD
// computes the data delta with an in-place read-modify-write and sends it
// once to the stripe's *collector* (the OSD hosting the first parity
// block). The collector aggregates deltas from all data blocks of the
// stripe in a buffer log, merges same-address deltas across blocks
// (Equation 5), and forwards the much smaller merged parity deltas to
// each parity OSD's log. The collector's single fixed-size buffer log
// takes no concurrency into account — recycling it stalls appends, the
// bottleneck the paper observes.
type cord struct {
	cfg     Config
	env     Env
	stripes *stripeTable

	// collector buffer log: XOR-folding per source data block, single
	// pool, single unit — the serialization point.
	collector *logpool.Pool
	collRec   *collectorRecycler

	// parity log of merged deltas for parity blocks hosted here;
	// deferred recycle like PL.
	parityLog *logpool.Pool
	parityRec *logpool.Recycler
}

func newCoRD(cfg Config, env Env) (*cord, error) {
	c := &cord{cfg: cfg, env: env, stripes: newStripeTable()}
	coll, err := logpool.NewPool(logpool.Config{
		Name:     fmt.Sprintf("cord-coll/osd%d", env.ID()),
		Mode:     logpool.XorFold,
		UnitSize: cfg.CollectorUnitSize,
		MaxUnits: 1, // fixed-size single buffer: append and recycle exclude
		Device:   env.Dev(),
	})
	if err != nil {
		return nil, err
	}
	c.collector = coll
	plog, err := logpool.NewPool(logpool.Config{
		Name:     fmt.Sprintf("cord-parity/osd%d", env.ID()),
		Mode:     logpool.NoMerge,
		UnitSize: cfg.RecycleThreshold,
		MaxUnits: 2,
		Device:   env.Dev(),
	})
	if err != nil {
		return nil, err
	}
	c.parityLog = plog
	c.collRec = startCollectorRecycler(c)
	c.parityRec = logpool.StartRecycler(plog, cfg.Workers, c.recycleParity)
	return c, nil
}

func (c *cord) Name() string { return "cord" }

// RefreshPlacement adopts a newer placement epoch (epoch broadcast).
func (c *cord) RefreshPlacement(msg *wire.Msg) { c.stripes.remember(msg) }

func (c *cord) Update(ctx context.Context, msg *wire.Msg) (time.Duration, error) {
	store := c.env.Store()
	b := msg.Block
	unlock := store.Lock(b, c.cfg.BlockSize)
	old, rc, err := store.ReadRangeNoLockClass(sim.ClassForegroundWrite, b, msg.Off, len(msg.Data), true)
	if err != nil {
		unlock()
		return 0, err
	}
	wc, err := store.WriteRangeNoLockClass(sim.ClassForegroundWrite, b, msg.Off, msg.Data, true)
	unlock()
	if err != nil {
		return 0, err
	}
	delta := xorBytes(old, msg.Data)

	// One hop: the delta goes to the stripe collector only.
	k := int(msg.K)
	collectorNode := msg.Loc.Nodes[k] // first parity OSD
	resp, err := c.env.Call(ctx, collectorNode, &wire.Msg{
		Kind: wire.KCordCollect, Block: b, Off: msg.Off, Data: delta,
		Idx: b.Idx, K: msg.K, M: msg.M, Loc: msg.Loc, V: msg.V,
	})
	if err != nil {
		return 0, err
	}
	if err := resp.Error(); err != nil {
		return 0, err
	}
	return rc + wc + resp.Cost, nil
}

func (c *cord) Handle(ctx context.Context, msg *wire.Msg) *wire.Resp {
	switch msg.Kind {
	case wire.KCordCollect:
		c.stripes.remember(msg)
		cost := c.collector.Append(msg.Block, msg.Off, msg.Data, time.Duration(msg.V))
		return okResp(cost)
	case wire.KParityLogAdd:
		c.stripes.remember(msg)
		cost := c.parityLog.Append(msg.Block, msg.Off, msg.Data, time.Duration(msg.V))
		return okResp(cost)
	default:
		return errResp(fmt.Errorf("cord: unexpected message %v", msg.Kind))
	}
}

// collectorRecycler drains collector units stripe-by-stripe, merging the
// per-block deltas into per-parity deltas (Eq. 5) before forwarding.
type collectorRecycler struct {
	c    *cord
	done chan struct{}
}

func startCollectorRecycler(c *cord) *collectorRecycler {
	r := &collectorRecycler{c: c, done: make(chan struct{})}
	go r.loop()
	return r
}

func (r *collectorRecycler) loop() {
	defer close(r.done)
	for {
		u := r.c.collector.TakeRecyclable(true)
		if u == nil {
			return
		}
		cost, wall, extents, bytes := r.recycleUnit(u)
		var entries int64 // per-unit appended records not exposed; extents suffice
		r.c.collector.FinishRecycle(u, cost, wall, entries, extents, bytes)
	}
}

func (r *collectorRecycler) recycleUnit(u *logpool.Unit) (cost, wall time.Duration, extents, bytes int64) {
	c := r.c
	// Group per-source-block extents by stripe for Eq. 5 merging.
	type stripeWork struct {
		si     stripeInfo
		blocks map[int][]logpool.Extent // data idx -> extents
		anyB   wire.BlockID
	}
	work := make(map[stripeKey]*stripeWork)
	for _, be := range u.Blocks() {
		extents += int64(len(be.Extents))
		for _, e := range be.Extents {
			bytes += int64(len(e.Data))
		}
		si, ok := c.stripes.get(be.Block)
		if !ok {
			continue
		}
		k := keyOf(be.Block)
		sw := work[k]
		if sw == nil {
			sw = &stripeWork{si: si, blocks: make(map[int][]logpool.Extent), anyB: be.Block}
			work[k] = sw
		}
		sw.blocks[int(be.Block.Idx)] = be.Extents
	}
	for _, sw := range work {
		code, err := c.env.Code(sw.si.K, sw.si.M)
		if err != nil {
			continue
		}
		for j := 0; j < sw.si.M; j++ {
			// Eq. 5: fold coeff-scaled deltas of all blocks into one
			// per-parity delta index; adjacency concatenates.
			merged := logpool.NewIndex(logpool.XorFold)
			for src, exts := range sw.blocks {
				coeff := code.Coeff(j, src)
				for _, e := range exts {
					scaled := make([]byte, len(e.Data))
					gf256.MulSlice(coeff, scaled, e.Data)
					merged.Insert(e.Off, scaled, e.V)
				}
			}
			target := sw.si.parityNode(j)
			pb := parityBlock(sw.anyB, sw.si.K, j)
			for _, e := range merged.Extents() {
				resp, err := c.env.Call(context.Background(), target, &wire.Msg{
					Kind: wire.KParityLogAdd, Block: pb, Off: e.Off, Data: e.Data,
					Idx: 0, K: uint8(sw.si.K), M: uint8(sw.si.M), Loc: sw.si.Loc, V: int64(e.V),
				})
				if err == nil && resp.OK() {
					cost += resp.Cost
					if resp.Cost > wall {
						wall = resp.Cost
					}
				}
			}
		}
	}
	// A single-threaded collector: wall time is the full cost.
	wall = cost
	return cost, wall, extents, bytes
}

// recycleParity folds merged parity deltas into the parity block (random
// read-modify-write per logged extent, after a random log re-read).
func (c *cord) recycleParity(be logpool.BlockExtents, sealV time.Duration) time.Duration {
	store := c.env.Store()
	dev := c.env.Dev()
	var cost time.Duration
	unlock := store.Lock(be.Block, c.cfg.BlockSize)
	defer unlock()
	for _, e := range be.Extents {
		cost += dev.Read(int64(len(e.Data))+32, true)
		old, rc, err := store.ReadRangeNoLock(be.Block, e.Off, len(e.Data), true)
		if err != nil {
			continue
		}
		erasure.ApplyParityDelta(old, e.Data)
		wc, err := store.WriteRangeNoLock(be.Block, e.Off, old, true)
		if err != nil {
			continue
		}
		cost += rc + wc
	}
	return cost
}

func (c *cord) Read(b wire.BlockID, off uint32, size int) ([]byte, time.Duration, error) {
	return c.env.Store().ReadRangeClass(sim.ClassForegroundRead, b, off, size, true)
}

func (c *cord) Drain(ctx context.Context, phase int, dead []wire.NodeID) error {
	switch phase {
	case 2:
		c.collector.Drain(0)
	case 3:
		c.parityLog.Drain(0)
	}
	return nil
}

func (c *cord) Close() {
	c.collector.Close()
	c.parityLog.Close()
	<-c.collRec.done
	c.parityRec.Wait()
}

// Settle waits for the collector's sealed units to recycle.
func (c *cord) Settle() {
	c.collector.WaitIdle()
	c.parityLog.WaitIdle()
}
