package update

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/erasure"
	"repro/internal/logpool"
	"repro/internal/sim"
	"repro/internal/wire"
)

// parix is Speculative Partial Writes [Li et al., ATC'17]: the data OSD
// overwrites its block in place *without* the read-modify-write, and
// forwards the new data (not a delta) to every parity OSD's log. The
// first time a location is updated, the original bytes must also travel
// to the parity logs so the delta can be formed at recycle time — that
// extra round is PARIX's "2x network latency" penalty for updates without
// temporal locality (paper Fig. 1 and §2.2). Repeated updates of the same
// location need only the newest value (temporal locality exploited via an
// overwrite-mode index).
type parix struct {
	cfg     Config
	env     Env
	stripes *stripeTable

	// Data-OSD side: which byte ranges of each hosted data block have
	// already had their originals shipped since the last recycle.
	specMu sync.Mutex
	spec   map[wire.BlockID]*intervalSet

	// Parity-OSD side: per source data block, the newest updated bytes
	// and the original bytes, both device-persisted as log appends.
	// loggedBytes tracks the log footprint; crossing the recycle
	// threshold forces an inline recycle — PARIX stores old AND new
	// values, so it exhausts its log space roughly twice as fast as a
	// delta-only log.
	logMu       sync.Mutex
	news        map[wire.BlockID]*logpool.Index
	olds        map[wire.BlockID]*logpool.Index
	loggedBytes int64
}

func newPARIX(cfg Config, env Env) *parix {
	return &parix{
		cfg: cfg, env: env, stripes: newStripeTable(),
		spec: make(map[wire.BlockID]*intervalSet),
		news: make(map[wire.BlockID]*logpool.Index),
		olds: make(map[wire.BlockID]*logpool.Index),
	}
}

func (p *parix) Name() string { return "parix" }

// RefreshPlacement adopts a newer placement epoch (epoch broadcast).
func (p *parix) RefreshPlacement(msg *wire.Msg) { p.stripes.remember(msg) }

func (p *parix) Update(ctx context.Context, msg *wire.Msg) (time.Duration, error) {
	store := p.env.Store()
	b := msg.Block
	end := msg.Off + uint32(len(msg.Data))

	// The block lock is held across speculation check, in-place write
	// AND forwarding: a same-block update must not overtake another's
	// origin shipment, or the parity log could recycle a new value
	// without its baseline (per-block ordered appends, §3.4).
	var lat time.Duration
	unlock := store.Lock(b, p.cfg.BlockSize)
	defer unlock()

	p.specMu.Lock()
	cov := p.spec[b]
	if cov == nil {
		cov = &intervalSet{}
		p.spec[b] = cov
	}
	gaps := cov.addGaps(msg.Off, end)
	p.specMu.Unlock()
	// Read originals only for first-touched ranges, before overwriting.
	type origin struct {
		off  uint32
		data []byte
	}
	var origins []origin
	for _, g := range gaps {
		old, rc, err := store.ReadRangeNoLockClass(sim.ClassForegroundWrite, b, g.lo, int(g.hi-g.lo), true)
		if err != nil {
			return 0, err
		}
		lat += rc
		origins = append(origins, origin{off: g.lo, data: old})
	}
	// In-place overwrite with NO read for already-speculated ranges —
	// PARIX's saving over PL/FO.
	wc, err := store.WriteRangeNoLockClass(sim.ClassForegroundWrite, b, msg.Off, msg.Data, true)
	if err != nil {
		return 0, err
	}
	lat += wc

	k, m := int(msg.K), int(msg.M)
	targets := msg.Loc.Nodes[k : k+m]
	// First updates ship the originals ahead of the new data — the
	// extra round trip that doubles PARIX's latency for updates without
	// temporal locality. Originals must arrive first so a log recycle
	// can never observe a new value without its baseline.
	for _, o := range origins {
		oCost, err := fanout(ctx, p.env, targets, func(to wire.NodeID) *wire.Msg {
			return &wire.Msg{
				Kind: wire.KParixLogAdd, Block: b, Off: o.off, Data: o.data,
				Idx: b.Idx, K: msg.K, M: msg.M, Loc: msg.Loc, Flag: 1, V: msg.V,
			}
		})
		if err != nil {
			return 0, err
		}
		lat += oCost
	}
	// Then the new data to every parity log.
	fanCost, err := fanout(ctx, p.env, targets, func(to wire.NodeID) *wire.Msg {
		return &wire.Msg{
			Kind: wire.KParixLogAdd, Block: b, Off: msg.Off, Data: msg.Data,
			Idx: b.Idx, K: msg.K, M: msg.M, Loc: msg.Loc, Flag: 0, V: msg.V,
		}
	})
	if err != nil {
		return 0, err
	}
	return lat + fanCost, nil
}

func (p *parix) Handle(ctx context.Context, msg *wire.Msg) *wire.Resp {
	switch msg.Kind {
	case wire.KParixLogAdd:
		p.stripes.remember(msg)
		p.logMu.Lock()
		tbl := p.news
		if msg.Flag == 1 {
			tbl = p.olds
		}
		bi := tbl[msg.Block]
		if bi == nil {
			bi = logpool.NewIndex(logpool.Overwrite)
			tbl[msg.Block] = bi
		}
		bi.Insert(msg.Off, msg.Data, time.Duration(msg.V))
		p.loggedBytes += int64(len(msg.Data)) + 32
		var cost time.Duration
		if p.cfg.RecycleThreshold > 0 && p.loggedBytes >= p.cfg.RecycleThreshold {
			// Log space exhausted: recycle inline while holding the log
			// lock (appends and recycling exclude each other), stalling
			// this append with the deferred-recycle bill. After the
			// fold, the recycled values become the next generation's
			// originals: the data OSDs' speculation state still says
			// "original shipped", and the parity block now embodies the
			// recycled value.
			news := p.news
			p.news = make(map[wire.BlockID]*logpool.Index)
			p.loggedBytes = 0
			cost += p.recycleMaps(news, p.olds)
			for b, ni := range news {
				oi := p.olds[b]
				if oi == nil {
					oi = logpool.NewIndex(logpool.Overwrite)
					p.olds[b] = oi
				}
				for _, e := range ni.Extents() {
					oi.Insert(e.Off, e.Data, e.V)
				}
			}
		}
		p.logMu.Unlock()
		// Sequential log append on the parity OSD's device.
		cost += p.env.Dev().Write(int64(len(msg.Data))+32, false, false)
		return okResp(cost)
	default:
		return errResp(fmt.Errorf("parix: unexpected message %v", msg.Kind))
	}
}

func (p *parix) Read(b wire.BlockID, off uint32, size int) ([]byte, time.Duration, error) {
	return p.env.Store().ReadRangeClass(sim.ClassForegroundRead, b, off, size, true)
}

// Drain recycles the parity logs: for every logged extent the delta is
// formed from (new XOR original) and folded into the parity block with a
// random read-modify-write, after a random re-read of the log records.
func (p *parix) Drain(ctx context.Context, phase int, dead []wire.NodeID) error {
	switch phase {
	case 1:
		// Reset speculation state: after recycle, first updates must
		// re-ship originals.
		p.specMu.Lock()
		p.spec = make(map[wire.BlockID]*intervalSet)
		p.specMu.Unlock()
		return nil
	case 3:
		return p.recycleAll()
	default:
		return nil
	}
}

func (p *parix) recycleAll() error {
	p.logMu.Lock()
	defer p.logMu.Unlock()
	news, olds := p.news, p.olds
	p.news = make(map[wire.BlockID]*logpool.Index)
	p.olds = make(map[wire.BlockID]*logpool.Index)
	p.loggedBytes = 0
	p.recycleMaps(news, olds)
	return nil
}

// recycleMaps folds a swapped-out generation of the parity log into the
// parity blocks this OSD hosts and returns the modeled cost.
func (p *parix) recycleMaps(news, olds map[wire.BlockID]*logpool.Index) time.Duration {
	store := p.env.Store()
	dev := p.env.Dev()
	var total time.Duration
	for dataBlock, ni := range news {
		si, ok := p.stripes.get(dataBlock)
		if !ok {
			continue
		}
		code, err := p.env.Code(si.K, si.M)
		if err != nil {
			continue
		}
		oi := olds[dataBlock]
		// This OSD hosts exactly one parity block of the stripe: find
		// which one by matching our node id in the placement.
		j := -1
		for jj := 0; jj < si.M; jj++ {
			if si.parityNode(jj) == p.env.ID() {
				j = jj
				break
			}
		}
		if j < 0 {
			continue
		}
		pb := parityBlock(dataBlock, si.K, j)
		unlock := store.Lock(pb, p.cfg.BlockSize)
		for _, e := range ni.Extents() {
			// Random re-read of new+old log records.
			total += dev.Read(int64(len(e.Data))+32, true)
			var orig []byte
			if oi != nil {
				if o, ok := oi.Lookup(e.Off, uint32(len(e.Data))); ok {
					orig = o
				}
			}
			if orig == nil {
				// Original never shipped (should not happen): treat
				// the range as zero-originated.
				orig = make([]byte, len(e.Data))
			} else {
				total += dev.Read(int64(len(orig))+32, true)
			}
			delta := xorBytes(orig, e.Data)
			pd := code.ParityDelta(j, int(dataBlock.Idx), delta)
			oldP, rc, err := store.ReadRangeNoLock(pb, e.Off, len(pd), true)
			if err != nil {
				continue
			}
			erasure.ApplyParityDelta(oldP, pd)
			wc, err := store.WriteRangeNoLock(pb, e.Off, oldP, true)
			if err != nil {
				continue
			}
			total += rc + wc
		}
		unlock()
	}
	return total
}

func (p *parix) Close() {}
