package update

import (
	"encoding/binary"
	"fmt"
)

// ExtentRec is one (offset, bytes) pair shipped over the wire during
// replica replay at recovery time.
type ExtentRec struct {
	Off  uint32
	Data []byte
}

// EncodeExtents packs extent records into a flat payload:
// repeated [off u32][len u32][bytes].
func EncodeExtents(exts []ExtentRec) []byte {
	n := 0
	for _, e := range exts {
		n += 8 + len(e.Data)
	}
	out := make([]byte, 0, n)
	var hdr [8]byte
	for _, e := range exts {
		binary.LittleEndian.PutUint32(hdr[0:], e.Off)
		binary.LittleEndian.PutUint32(hdr[4:], uint32(len(e.Data)))
		out = append(out, hdr[:]...)
		out = append(out, e.Data...)
	}
	return out
}

// DecodeExtents unpacks a payload produced by EncodeExtents.
func DecodeExtents(b []byte) ([]ExtentRec, error) {
	var out []ExtentRec
	for len(b) > 0 {
		if len(b) < 8 {
			return nil, fmt.Errorf("update: truncated extent header")
		}
		off := binary.LittleEndian.Uint32(b[0:])
		n := binary.LittleEndian.Uint32(b[4:])
		b = b[8:]
		if uint32(len(b)) < n {
			return nil, fmt.Errorf("update: truncated extent body")
		}
		out = append(out, ExtentRec{Off: off, Data: append([]byte(nil), b[:n]...)})
		b = b[n:]
	}
	return out, nil
}
