package store

import (
	"container/list"
	"errors"
	"fmt"
	"io"
	"os"
)

// pageFile is the paged block data file (blocks.dat) behind a
// fixed-size buffer pool. Frames are pinned for the duration of a copy
// and unpinned after; eviction picks the least-recently-used unpinned
// frame and writes it back if dirty. The engine's mutex serializes all
// access, so the pool needs no locking of its own.
type pageFile struct {
	f        *os.File
	pageSize int
	npages   uint32   // pages allocated in the file (high-water mark)
	free     []uint32 // freed page numbers available for reuse

	frames    map[uint32]*frame
	lru       *list.List // frames in recency order, front = coldest
	maxFrames int

	hits, misses, writebacks int64
}

// frame is one resident page.
type frame struct {
	page  uint32
	data  []byte
	dirty bool
	pins  int
	elem  *list.Element
}

func openPageFile(path string, pageSize, maxFrames int) (*pageFile, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	return &pageFile{
		f:         f,
		pageSize:  pageSize,
		frames:    make(map[uint32]*frame),
		lru:       list.New(),
		maxFrames: maxFrames,
	}, nil
}

// alloc returns a page number for a new page, reusing freed pages
// before growing the file.
func (p *pageFile) alloc() uint32 {
	if n := len(p.free); n > 0 {
		pg := p.free[n-1]
		p.free = p.free[:n-1]
		return pg
	}
	pg := p.npages
	p.npages++
	return pg
}

// release returns a page to the free list and drops any resident frame
// (its contents are dead; nothing to write back).
func (p *pageFile) release(pg uint32) {
	if fr, ok := p.frames[pg]; ok {
		p.lru.Remove(fr.elem)
		delete(p.frames, pg)
	}
	p.free = append(p.free, pg)
}

// pin returns the frame for pg, faulting it in (and evicting a cold
// unpinned frame) on a miss. fresh skips the disk read for pages whose
// on-disk bytes are dead (newly allocated or about to be fully
// overwritten). The caller must unpin.
func (p *pageFile) pin(pg uint32, fresh bool) (*frame, error) {
	if fr, ok := p.frames[pg]; ok {
		fr.pins++
		p.lru.MoveToBack(fr.elem)
		p.hits++
		return fr, nil
	}
	p.misses++
	if err := p.evictFor(); err != nil {
		return nil, err
	}
	fr := &frame{page: pg, data: make([]byte, p.pageSize), pins: 1}
	if !fresh {
		if _, err := p.f.ReadAt(fr.data, int64(pg)*int64(p.pageSize)); err != nil {
			// A short read past EOF is a page never written back:
			// its logical content is zeros, which ReadAt left in place.
			if !isEOF(err) {
				return nil, err
			}
		}
	}
	fr.elem = p.lru.PushBack(fr)
	p.frames[pg] = fr
	return fr, nil
}

func (p *pageFile) unpin(fr *frame) {
	if fr.pins <= 0 {
		panic("store: unpin of unpinned frame")
	}
	fr.pins--
}

// evictFor makes room for one more frame if the pool is full, writing
// back the coldest unpinned frame.
func (p *pageFile) evictFor() error {
	if len(p.frames) < p.maxFrames {
		return nil
	}
	for e := p.lru.Front(); e != nil; e = e.Next() {
		fr := e.Value.(*frame)
		if fr.pins > 0 {
			continue
		}
		if fr.dirty {
			if err := p.writeback(fr); err != nil {
				return err
			}
		}
		p.lru.Remove(e)
		delete(p.frames, fr.page)
		return nil
	}
	return fmt.Errorf("store: buffer pool exhausted (%d frames all pinned)", p.maxFrames)
}

func (p *pageFile) writeback(fr *frame) error {
	if _, err := p.f.WriteAt(fr.data, int64(fr.page)*int64(p.pageSize)); err != nil {
		return err
	}
	fr.dirty = false
	p.writebacks++
	return nil
}

// flush writes back every dirty frame (checkpoint path). Frames stay
// resident — a checkpoint must not empty the cache.
func (p *pageFile) flush() error {
	for _, fr := range p.frames {
		if fr.dirty {
			if err := p.writeback(fr); err != nil {
				return err
			}
		}
	}
	return nil
}

// dropClean empties the buffer pool without touching dirty pages
// (cold-cache benchmark hook; call after flush for a fully cold pool).
func (p *pageFile) dropClean() {
	for pg, fr := range p.frames {
		if !fr.dirty && fr.pins == 0 {
			p.lru.Remove(fr.elem)
			delete(p.frames, pg)
		}
	}
}

func (p *pageFile) sync() error  { return p.f.Sync() }
func (p *pageFile) close() error { return p.f.Close() }

func isEOF(err error) bool { return errors.Is(err, io.EOF) }
