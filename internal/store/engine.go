package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/wire"
)

// ErrCrashed is returned by every mutator after Crash froze the engine.
var ErrCrashed = errors.New("store: engine crashed")

// pageNil marks a block page that was never written: its logical
// content is zeros and it has no backing page in the file.
const pageNil = ^uint32(0)

// Options tunes the engine. Zero values select the defaults.
type Options struct {
	// PageSize is the block-file page size in bytes (default 16 KiB).
	PageSize int
	// Frames is the buffer-pool capacity in pages (default 2048).
	Frames int
	// Sync is the WAL fsync policy (default SyncBatched).
	Sync SyncPolicy
}

func (o Options) withDefaults() Options {
	if o.PageSize <= 0 {
		o.PageSize = 16 << 10
	}
	if o.Frames <= 0 {
		o.Frames = 2048
	}
	return o
}

// Stats counts the engine's real I/O.
type Stats struct {
	PageHits    int64 // buffer-pool hits
	PageMisses  int64 // page faults (real reads)
	Writebacks  int64 // dirty pages written back
	WALRecords  int64
	WALBytes    int64
	WALSyncs    int64
	SegAppends  int64
	SegBytes    int64
	Checkpoints int64
	// Recovery counters from the last Open.
	RedoneRecords  int64 // intact WAL records redone
	ReplayEntries  int64 // unfolded segment entries recovered
	CompactedFiles int64
	CompactedBytes int64
}

// Engine is the per-OSD durable storage engine: the paged block file
// with its WAL (block contents), the epoch/placement tables (rejoin
// state), and the log segment files (pool contents). One engine owns
// one data directory; Open recovers whatever a previous incarnation
// left there.
type Engine struct {
	dir  string
	opts Options

	mu      sync.Mutex
	crashed bool
	wal     *wal
	pf      *pageFile
	blocks  map[wire.BlockID]*blockMeta
	epochs  map[stripeKey]uint64
	places  map[stripeKey]Placement
	era     uint32
	seq     uint64
	segs    map[segKey]*segFile
	stats   Stats

	replayEntries []SegEntry
	replayFiles   []string

	compactStop chan struct{}
	compactDone chan struct{}
}

// Open opens (or creates) the engine at dir and runs crash recovery:
// load the last checkpoint, redo the committed WAL tail through the
// normal write path, truncate anything torn, and scan the segment
// files for unfolded log entries (exposed via Replay for the owner to
// feed back into its pools).
func Open(dir string, opts Options) (*Engine, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(filepath.Join(dir, "seg"), 0o755); err != nil {
		return nil, err
	}
	m, err := readMeta(dir)
	if err != nil {
		return nil, err
	}
	pf, err := openPageFile(filepath.Join(dir, "blocks.dat"), opts.PageSize, opts.Frames)
	if err != nil {
		return nil, err
	}
	pf.npages = m.npages
	pf.free = m.free
	e := &Engine{
		dir:    dir,
		opts:   opts,
		pf:     pf,
		blocks: m.blocks,
		epochs: m.epochs,
		places: m.places,
		era:    m.era + 1,
		seq:    m.seq,
		segs:   make(map[segKey]*segFile),
	}
	// Persist the era bump before anything else writes: segment files
	// created by this incarnation must never collide with a previous
	// era's names, even if we crash before the first checkpoint.
	m.era = e.era
	if err := writeMeta(dir, m); err != nil {
		pf.close()
		return nil, err
	}
	w, err := openWAL(filepath.Join(dir, "wal.bin"), opts.Sync)
	if err != nil {
		pf.close()
		return nil, err
	}
	e.wal = w
	recs, tail, err := replayWAL(w.f)
	if err != nil {
		e.closeFiles()
		return nil, err
	}
	for _, r := range recs {
		e.redo(r)
	}
	e.stats.RedoneRecords = int64(len(recs))
	if err := w.f.Truncate(tail); err != nil {
		e.closeFiles()
		return nil, err
	}
	w.off = tail
	ents, files, err := scanSegments(dir)
	if err != nil {
		e.closeFiles()
		return nil, err
	}
	e.replayEntries, e.replayFiles = ents, files
	e.stats.ReplayEntries = int64(len(ents))
	for _, se := range ents {
		if se.Seq >= e.seq {
			e.seq = se.Seq + 1
		}
	}
	return e, nil
}

// redo applies one committed WAL record through the unlogged write
// path. Redo is idempotent: records are absolute (no deltas), so pages
// already written back before the crash are rewritten with identical
// bytes.
func (e *Engine) redo(r walRecord) {
	switch r.kind {
	case opWrite:
		if id, blockLen, off, data, err := decodeWrite(r.payload); err == nil {
			e.applyWrite(id, blockLen, off, data)
		}
	case opDelete:
		if len(r.payload) >= blockIDLen {
			e.applyDelete(getBlockID(r.payload))
		}
	case opEnsure:
		if id, size, err := decodeEnsure(r.payload); err == nil {
			e.applyEnsure(id, size)
		}
	case opEpoch:
		if ino, stripe, epoch, err := decodeEpoch(r.payload); err == nil {
			e.applyEpoch(ino, stripe, epoch)
		}
	case opPlacement:
		if ino, stripe, p, err := decodePlacement(r.payload); err == nil {
			e.applyPlacement(ino, stripe, p)
		}
	}
}

// ---- block mutators (WAL-before-data) ----

// Ensure creates a zero-filled block of the given size if absent.
func (e *Engine) Ensure(id wire.BlockID, size uint32) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.crashed {
		return ErrCrashed
	}
	if _, ok := e.blocks[id]; ok {
		return nil
	}
	if err := e.logAppend(opEnsure, encodeEnsure(id, size)); err != nil {
		return err
	}
	e.applyEnsure(id, size)
	return nil
}

// WriteRange writes data at off, extending the block as needed.
func (e *Engine) WriteRange(id wire.BlockID, off uint32, data []byte) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.crashed {
		return ErrCrashed
	}
	blockLen := off + uint32(len(data))
	if bm, ok := e.blocks[id]; ok && bm.length > blockLen {
		blockLen = bm.length
	}
	if err := e.logAppend(opWrite, encodeWrite(id, blockLen, off, data)); err != nil {
		return err
	}
	return e.applyWrite(id, blockLen, off, data)
}

// WriteFull replaces the whole block.
func (e *Engine) WriteFull(id wire.BlockID, data []byte) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.crashed {
		return ErrCrashed
	}
	if err := e.logAppend(opWrite, encodeWrite(id, uint32(len(data)), 0, data)); err != nil {
		return err
	}
	return e.applyWrite(id, uint32(len(data)), 0, data)
}

// Delete removes a block and frees its pages.
func (e *Engine) Delete(id wire.BlockID) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.crashed {
		return ErrCrashed
	}
	if _, ok := e.blocks[id]; !ok {
		return nil
	}
	if err := e.logAppend(opDelete, encodeDelete(id)); err != nil {
		return err
	}
	e.applyDelete(id)
	return nil
}

func (e *Engine) logAppend(kind byte, payload []byte) error {
	_, err := e.wal.append(kind, payload)
	e.stats.WALRecords = e.wal.records
	e.stats.WALBytes = e.wal.bytes
	e.stats.WALSyncs = e.wal.syncs
	return err
}

func (e *Engine) applyEnsure(id wire.BlockID, size uint32) {
	if _, ok := e.blocks[id]; ok {
		return
	}
	bm := &blockMeta{length: size}
	for i := 0; i < pagesFor(size, e.opts.PageSize); i++ {
		bm.pages = append(bm.pages, pageNil)
	}
	e.blocks[id] = bm
}

func (e *Engine) applyWrite(id wire.BlockID, blockLen, off uint32, data []byte) error {
	bm := e.blocks[id]
	if bm == nil {
		bm = &blockMeta{}
		e.blocks[id] = bm
	}
	want := pagesFor(blockLen, e.opts.PageSize)
	for len(bm.pages) < want {
		bm.pages = append(bm.pages, pageNil)
	}
	for len(bm.pages) > want {
		last := bm.pages[len(bm.pages)-1]
		if last != pageNil {
			e.pf.release(last)
		}
		bm.pages = bm.pages[:len(bm.pages)-1]
	}
	bm.length = blockLen
	ps := uint32(e.opts.PageSize)
	for n := uint32(0); n < uint32(len(data)); {
		pi := (off + n) / ps
		po := (off + n) % ps
		chunk := ps - po
		if rem := uint32(len(data)) - n; chunk > rem {
			chunk = rem
		}
		fresh := bm.pages[pi] == pageNil
		if fresh {
			bm.pages[pi] = e.pf.alloc()
		}
		fr, err := e.pf.pin(bm.pages[pi], fresh || (po == 0 && chunk == ps))
		if err != nil {
			return err
		}
		copy(fr.data[po:po+chunk], data[n:n+chunk])
		fr.dirty = true
		e.pf.unpin(fr)
		n += chunk
	}
	e.stats.PageHits = e.pf.hits
	e.stats.PageMisses = e.pf.misses
	e.stats.Writebacks = e.pf.writebacks
	return nil
}

func (e *Engine) applyDelete(id wire.BlockID) {
	bm := e.blocks[id]
	if bm == nil {
		return
	}
	for _, pg := range bm.pages {
		if pg != pageNil {
			e.pf.release(pg)
		}
	}
	delete(e.blocks, id)
}

// ---- block readers ----

// ReadRange copies size bytes at off out of the block.
func (e *Engine) ReadRange(id wire.BlockID, off uint32, size int) ([]byte, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	bm := e.blocks[id]
	if bm == nil {
		return nil, fmt.Errorf("store: block %v not found", id)
	}
	if off+uint32(size) > bm.length {
		return nil, fmt.Errorf("store: read [%d,%d) past block length %d", off, off+uint32(size), bm.length)
	}
	out := make([]byte, size)
	if err := e.readInto(bm, off, out); err != nil {
		return nil, err
	}
	return out, nil
}

// Snapshot returns a copy of the whole block.
func (e *Engine) Snapshot(id wire.BlockID) ([]byte, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	bm := e.blocks[id]
	if bm == nil {
		return nil, false
	}
	out := make([]byte, bm.length)
	if err := e.readInto(bm, 0, out); err != nil {
		return nil, false
	}
	return out, true
}

func (e *Engine) readInto(bm *blockMeta, off uint32, dst []byte) error {
	ps := uint32(e.opts.PageSize)
	for n := uint32(0); n < uint32(len(dst)); {
		pi := (off + n) / ps
		po := (off + n) % ps
		chunk := ps - po
		if rem := uint32(len(dst)) - n; chunk > rem {
			chunk = rem
		}
		if bm.pages[pi] == pageNil {
			for i := n; i < n+chunk; i++ {
				dst[i] = 0
			}
		} else {
			fr, err := e.pf.pin(bm.pages[pi], false)
			if err != nil {
				return err
			}
			copy(dst[n:n+chunk], fr.data[po:po+chunk])
			e.pf.unpin(fr)
		}
		n += chunk
	}
	e.stats.PageHits = e.pf.hits
	e.stats.PageMisses = e.pf.misses
	return nil
}

// Has reports whether the block exists.
func (e *Engine) Has(id wire.BlockID) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	_, ok := e.blocks[id]
	return ok
}

// Size returns the block length, or -1 if absent.
func (e *Engine) Size(id wire.BlockID) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	if bm, ok := e.blocks[id]; ok {
		return int(bm.length)
	}
	return -1
}

// Blocks lists every stored block id.
func (e *Engine) Blocks() []wire.BlockID {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]wire.BlockID, 0, len(e.blocks))
	for id := range e.blocks {
		out = append(out, id)
	}
	return out
}

// ---- rejoin state: epochs and placements ----

// NoteEpoch durably records a newer placement epoch for a stripe.
func (e *Engine) NoteEpoch(ino uint64, stripe uint32, epoch uint64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.crashed {
		return ErrCrashed
	}
	if cur, ok := e.epochs[stripeKey{ino, stripe}]; ok && cur >= epoch {
		return nil
	}
	if err := e.logAppend(opEpoch, encodeEpoch(ino, stripe, epoch)); err != nil {
		return err
	}
	e.applyEpoch(ino, stripe, epoch)
	return nil
}

func (e *Engine) applyEpoch(ino uint64, stripe uint32, epoch uint64) {
	k := stripeKey{ino, stripe}
	if cur, ok := e.epochs[k]; !ok || epoch > cur {
		e.epochs[k] = epoch
	}
}

// EpochOf returns the last durably recorded epoch for a stripe.
func (e *Engine) EpochOf(ino uint64, stripe uint32) (uint64, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	ep, ok := e.epochs[stripeKey{ino, stripe}]
	return ep, ok
}

// PlacementOf returns the last durably recorded placement for a stripe.
func (e *Engine) PlacementOf(ino uint64, stripe uint32) (Placement, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	p, ok := e.places[stripeKey{ino, stripe}]
	return p, ok
}

// ForEachEpoch visits every persisted stripe epoch.
func (e *Engine) ForEachEpoch(fn func(ino uint64, stripe uint32, epoch uint64)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for k, ep := range e.epochs {
		fn(k.Ino, k.Stripe, ep)
	}
}

// RememberPlacement durably records a stripe placement if it is newer
// than the one already held.
func (e *Engine) RememberPlacement(ino uint64, stripe uint32, p Placement) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.crashed {
		return ErrCrashed
	}
	k := stripeKey{ino, stripe}
	if cur, ok := e.places[k]; ok && cur.Epoch >= p.Epoch {
		return nil
	}
	if err := e.logAppend(opPlacement, encodePlacement(ino, stripe, p)); err != nil {
		return err
	}
	e.applyPlacement(ino, stripe, p)
	return nil
}

func (e *Engine) applyPlacement(ino uint64, stripe uint32, p Placement) {
	k := stripeKey{ino, stripe}
	if cur, ok := e.places[k]; !ok || p.Epoch > cur.Epoch {
		e.places[k] = p
	}
}

// ForEachPlacement visits every persisted placement.
func (e *Engine) ForEachPlacement(fn func(ino uint64, stripe uint32, p Placement)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for k, p := range e.places {
		fn(k.Ino, k.Stripe, p)
	}
}

// ---- lifecycle ----

// Checkpoint makes the WAL redundant: write back every dirty page,
// fsync the block file, atomically persist the metadata, then truncate
// the WAL. Data-before-meta-before-WAL-reset ordering means a crash at
// any point recovers to a consistent state.
func (e *Engine) Checkpoint() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.checkpointLocked()
}

func (e *Engine) checkpointLocked() error {
	if e.crashed {
		return ErrCrashed
	}
	if err := e.pf.flush(); err != nil {
		return err
	}
	if err := e.pf.sync(); err != nil {
		return err
	}
	m := &meta{
		era:    e.era,
		seq:    e.seq,
		npages: e.pf.npages,
		free:   e.pf.free,
		blocks: e.blocks,
		epochs: e.epochs,
		places: e.places,
	}
	if err := writeMeta(e.dir, m); err != nil {
		return err
	}
	if err := e.wal.reset(); err != nil {
		return err
	}
	e.stats.Checkpoints++
	e.stats.Writebacks = e.pf.writebacks
	return nil
}

// Crash freezes the engine, simulating kill -9: every subsequent
// mutation fails with ErrCrashed and Close skips the checkpoint, so
// whatever reached the files via write(2) is exactly what the next
// Open recovers.
func (e *Engine) Crash() {
	e.mu.Lock()
	e.crashed = true
	e.mu.Unlock()
	e.stopCompactor()
}

// Crashed reports whether Crash froze the engine.
func (e *Engine) Crashed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.crashed
}

// Close checkpoints (unless crashed) and releases the files.
func (e *Engine) Close() error {
	e.stopCompactor()
	e.mu.Lock()
	defer e.mu.Unlock()
	var err error
	if !e.crashed {
		err = e.checkpointLocked()
	}
	e.closeFiles()
	return err
}

func (e *Engine) closeFiles() {
	if e.wal != nil {
		e.wal.close()
	}
	if e.pf != nil {
		e.pf.close()
	}
	for _, sf := range e.segs {
		sf.f.Close()
	}
}

// DropCaches flushes dirty pages and empties the buffer pool — the
// cold-cache benchmark hook.
func (e *Engine) DropCaches() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.crashed {
		return ErrCrashed
	}
	if err := e.pf.flush(); err != nil {
		return err
	}
	e.pf.dropClean()
	return nil
}

// Stats returns a snapshot of the engine's I/O counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := e.stats
	s.PageHits, s.PageMisses, s.Writebacks = e.pf.hits, e.pf.misses, e.pf.writebacks
	return s
}

// Dir returns the engine's data directory.
func (e *Engine) Dir() string { return e.dir }

func pagesFor(length uint32, pageSize int) int {
	return int((int64(length) + int64(pageSize) - 1) / int64(pageSize))
}
