package store

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/wire"
)

// frameRecord builds one well-formed framed record (shared WAL/segment
// framing) for seeding the fuzzer.
func frameRecord(kind byte, payload []byte) []byte {
	rec := make([]byte, walHeader+len(payload))
	binary.LittleEndian.PutUint32(rec[0:4], uint32(len(payload)))
	rec[8] = kind
	copy(rec[walHeader:], payload)
	binary.LittleEndian.PutUint32(rec[4:8], crc32.Checksum(rec[8:], castagnoli))
	return rec
}

// FuzzWALReplay feeds arbitrary byte streams — including truncated and
// bit-flipped tails of valid logs — through both recovery scanners:
// replayWAL (the WAL path) and scanSegmentFile (the segment path).
// Neither may panic, over-read, or return records past the first
// corruption.
func FuzzWALReplay(f *testing.F) {
	b := bid(3, 2, 1)
	valid := frameRecord(opWrite, encodeWrite(b, 64, 0, []byte("payload")))
	valid = append(valid, frameRecord(opEpoch, encodeEpoch(3, 2, 9))...)
	valid = append(valid, frameRecord(opEnsure, encodeEnsure(b, 4096))...)
	f.Add(valid)
	f.Add(valid[:len(valid)-5]) // torn tail
	flipped := append([]byte(nil), valid...)
	flipped[walHeader+2] ^= 0x40 // bit flip inside the first payload
	f.Add(flipped)

	seg := frameRecord(segHeader, encodeSegHeader("tsue-data/osd1/0", 7))
	seg = append(seg, frameRecord(segEntry, encodeSegEntry(12, b, 8, 99, []byte("delta")))...)
	seg = append(seg, frameRecord(segFoldBlock, encodeDelete(b))...)
	seg = append(seg, frameRecord(segFoldUnit, nil)...)
	f.Add(seg)
	f.Add(seg[:walHeader+3]) // torn header
	f.Add([]byte{})
	// Implausible length prefix: must not drive a giant allocation.
	huge := make([]byte, walHeader)
	binary.LittleEndian.PutUint32(huge, 1<<31)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "log.bin")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		fh, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		recs, tail, err := replayWAL(fh)
		fh.Close()
		if err != nil {
			t.Fatalf("replayWAL errored on arbitrary input: %v", err)
		}
		if tail < 0 || tail > int64(len(data)) {
			t.Fatalf("tail %d out of range [0,%d]", tail, len(data))
		}
		// Every returned record must round-trip from the bytes before
		// the tail; re-walking the committed prefix must agree.
		var off int64
		for i, r := range recs {
			n := int64(binary.LittleEndian.Uint32(data[off : off+4]))
			if data[off+8] != r.kind || int64(len(r.payload)) != n {
				t.Fatalf("record %d does not match committed prefix", i)
			}
			off += walHeader + n
		}
		if off != tail {
			t.Fatalf("records cover %d bytes, tail %d", off, tail)
		}
		// Decoders on arbitrary payloads must fail cleanly, not panic.
		// WAL and segment kinds share values (separate files in real
		// use), so exercise both families on every record.
		for _, r := range recs {
			switch r.kind {
			case opWrite:
				decodeWrite(r.payload)
			case opEpoch:
				decodeEpoch(r.payload)
			case opEnsure:
				decodeEnsure(r.payload)
			case opPlacement:
				decodePlacement(r.payload)
			}
			switch r.kind {
			case segEntry:
				decodeSegEntry(r.payload)
			case segHeader:
				decodeSegHeader(r.payload)
			}
		}
		// The segment scanner shares the framing but nets folds; it
		// must also survive anything.
		ents, err := scanSegmentFile(path)
		if err != nil {
			t.Fatalf("scanSegmentFile errored: %v", err)
		}
		for _, se := range ents {
			if se.Block == (wire.BlockID{}) && se.Layer == "" {
				t.Fatal("segment entry with empty identity")
			}
		}
	})
}
