package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/wire"
)

// Log pools persist as append-only segment files under <dir>/seg, one
// file per (layer, generation): a layer is one pool's stable name
// ("tsue-data/osd3/0"), a generation one incarnation of a log unit.
// Records reuse the WAL framing (length, CRC-32C, kind), so the same
// torn-tail scan recovers both. A header record names the layer and
// generation (filenames are only for humans); entry records carry a
// global sequence number so replay across every file preserves append
// order; fold records mark a block's (or a whole unit's) entries as
// recycled — folded into parity — and therefore dead. A file whose
// entries are all folded is garbage and is deleted by the compactor.
const (
	segHeader    = 1 // layer name, generation
	segEntry     = 2 // seq, block, offset, buffer timestamp, payload
	segFoldBlock = 3 // block whose entries in this generation folded
	segFoldUnit  = 4 // whole generation folded (covers empty units)
)

// segKey identifies one segment file.
type segKey struct {
	layer string
	gen   uint64
}

// segFile is one active (current-era) segment file. unit is set once a
// unit-level fold record lands: every entry is dead and the compactor
// may delete the file.
type segFile struct {
	f    *os.File
	off  int64
	path string
	unit bool
}

// SegEntry is one unfolded log entry recovered from a previous run,
// ready to be replayed into a fresh pool.
type SegEntry struct {
	Layer string
	Seq   uint64
	Block wire.BlockID
	Off   uint32
	V     int64 // buffer timestamp (time.Duration) at original append
	Data  []byte
}

func encodeSegHeader(layer string, gen uint64) []byte {
	p := make([]byte, 8+len(layer))
	binary.LittleEndian.PutUint64(p, gen)
	copy(p[8:], layer)
	return p
}

func decodeSegHeader(p []byte) (layer string, gen uint64, err error) {
	if len(p) < 8 {
		return "", 0, fmt.Errorf("store: short segment header (%d bytes)", len(p))
	}
	return string(p[8:]), binary.LittleEndian.Uint64(p), nil
}

func encodeSegEntry(seq uint64, block wire.BlockID, off uint32, v int64, data []byte) []byte {
	p := make([]byte, 8+blockIDLen+12+len(data))
	binary.LittleEndian.PutUint64(p, seq)
	putBlockID(p[8:], block)
	binary.LittleEndian.PutUint32(p[8+blockIDLen:], off)
	binary.LittleEndian.PutUint64(p[12+blockIDLen:], uint64(v))
	copy(p[20+blockIDLen:], data)
	return p
}

func decodeSegEntry(p []byte) (seq uint64, block wire.BlockID, off uint32, v int64, data []byte, err error) {
	if len(p) < 20+blockIDLen {
		return 0, block, 0, 0, nil, fmt.Errorf("store: short segment entry (%d bytes)", len(p))
	}
	seq = binary.LittleEndian.Uint64(p)
	block = getBlockID(p[8:])
	off = binary.LittleEndian.Uint32(p[8+blockIDLen:])
	v = int64(binary.LittleEndian.Uint64(p[12+blockIDLen:]))
	return seq, block, off, v, p[20+blockIDLen:], nil
}

// segPath builds a debuggable filename; the header record is the
// authoritative identity.
func segPath(dir string, era uint32, layer string, gen uint64) string {
	san := strings.NewReplacer("/", "_", string(filepath.Separator), "_").Replace(layer)
	return filepath.Join(dir, "seg", fmt.Sprintf("e%04d-%s-g%06d.seg", era, san, gen))
}

// appendRecord writes one framed record (identical framing to the WAL)
// at off and returns the next offset.
func appendRecord(f *os.File, off int64, kind byte, payload []byte) (int64, error) {
	rec := make([]byte, walHeader+len(payload))
	binary.LittleEndian.PutUint32(rec[0:4], uint32(len(payload)))
	rec[8] = kind
	copy(rec[walHeader:], payload)
	binary.LittleEndian.PutUint32(rec[4:8], crc32.Checksum(rec[8:], castagnoli))
	if _, err := f.WriteAt(rec, off); err != nil {
		return off, err
	}
	return off + int64(len(rec)), nil
}

// scanSegments reads every segment file under <dir>/seg, nets folds
// against entries, and returns the surviving entries in global append
// order plus the scanned file paths (all garbage once replayed).
func scanSegments(dir string) (entries []SegEntry, files []string, err error) {
	names, err := os.ReadDir(filepath.Join(dir, "seg"))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil, nil
		}
		return nil, nil, err
	}
	for _, de := range names {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".seg") {
			continue
		}
		path := filepath.Join(dir, "seg", de.Name())
		files = append(files, path)
		ents, err := scanSegmentFile(path)
		if err != nil {
			return nil, nil, err
		}
		entries = append(entries, ents...)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Seq < entries[j].Seq })
	return entries, files, nil
}

// scanSegmentFile recovers one file's unfolded entries. Torn tails are
// truncated by the shared framing scan; a file without an intact
// header is treated as fully torn (it held nothing committed).
func scanSegmentFile(path string) ([]SegEntry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, _, err := replayWAL(f)
	if err != nil || len(recs) == 0 || recs[0].kind != segHeader {
		return nil, err
	}
	layer, _, err := decodeSegHeader(recs[0].payload)
	if err != nil {
		return nil, nil
	}
	var (
		ents   []SegEntry
		folded = make(map[wire.BlockID]bool)
	)
	for _, r := range recs[1:] {
		switch r.kind {
		case segEntry:
			seq, block, off, v, data, err := decodeSegEntry(r.payload)
			if err != nil {
				continue
			}
			ents = append(ents, SegEntry{Layer: layer, Seq: seq, Block: block, Off: off, V: v, Data: append([]byte(nil), data...)})
		case segFoldBlock:
			if len(r.payload) >= blockIDLen {
				folded[getBlockID(r.payload)] = true
			}
		case segFoldUnit:
			return nil, nil // everything in this generation is dead
		}
	}
	live := ents[:0]
	for _, e := range ents {
		if !folded[e.Block] {
			live = append(live, e)
		}
	}
	return live, nil
}
