package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"repro/internal/wire"
)

// metaVersion guards the checkpoint file layout.
const metaVersion = 1

// meta is the engine's checkpointed state: everything the WAL carries
// between checkpoints, in its folded form. Writing it atomically
// (tmp + rename, CRC over the whole body) and then truncating the WAL
// is the checkpoint.
type meta struct {
	era    uint32
	seq    uint64
	npages uint32
	free   []uint32
	blocks map[wire.BlockID]*blockMeta
	epochs map[stripeKey]uint64
	places map[stripeKey]Placement
}

// blockMeta is the block table entry: logical length plus the page run
// holding the bytes.
type blockMeta struct {
	length uint32
	pages  []uint32
}

// stripeKey identifies a stripe across blocks.
type stripeKey struct {
	Ino    uint64
	Stripe uint32
}

// Placement is a persisted stripe placement: enough for a reopened OSD
// to seed its strategy's stripe table before replaying log segments.
type Placement struct {
	K, M  int
	Epoch uint64
	Nodes []wire.NodeID
}

func encodeMeta(m *meta) []byte {
	var b []byte
	u32 := func(v uint32) { b = binary.LittleEndian.AppendUint32(b, v) }
	u64 := func(v uint64) { b = binary.LittleEndian.AppendUint64(b, v) }
	u32(metaVersion)
	u32(m.era)
	u64(m.seq)
	u32(m.npages)
	u32(uint32(len(m.free)))
	for _, pg := range m.free {
		u32(pg)
	}
	u32(uint32(len(m.blocks)))
	for id, bm := range m.blocks {
		var idb [blockIDLen]byte
		putBlockID(idb[:], id)
		b = append(b, idb[:]...)
		u32(bm.length)
		u32(uint32(len(bm.pages)))
		for _, pg := range bm.pages {
			u32(pg)
		}
	}
	u32(uint32(len(m.epochs)))
	for k, e := range m.epochs {
		u64(k.Ino)
		u32(k.Stripe)
		u64(e)
	}
	u32(uint32(len(m.places)))
	for k, p := range m.places {
		u64(k.Ino)
		u32(k.Stripe)
		u64(p.Epoch)
		b = append(b, byte(p.K), byte(p.M))
		u32(uint32(len(p.Nodes)))
		for _, n := range p.Nodes {
			u32(uint32(n))
		}
	}
	// CRC trailer over everything above.
	b = binary.LittleEndian.AppendUint32(b, crc32.Checksum(b, castagnoli))
	return b
}

func decodeMeta(b []byte) (*meta, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("store: meta too short (%d bytes)", len(b))
	}
	body, tail := b[:len(b)-4], binary.LittleEndian.Uint32(b[len(b)-4:])
	if crc32.Checksum(body, castagnoli) != tail {
		return nil, fmt.Errorf("store: meta checksum mismatch")
	}
	var off int
	need := func(n int) error {
		if len(body)-off < n {
			return fmt.Errorf("store: truncated meta at offset %d", off)
		}
		return nil
	}
	u32 := func() uint32 { v := binary.LittleEndian.Uint32(body[off:]); off += 4; return v }
	u64 := func() uint64 { v := binary.LittleEndian.Uint64(body[off:]); off += 8; return v }
	if err := need(20); err != nil {
		return nil, err
	}
	if v := u32(); v != metaVersion {
		return nil, fmt.Errorf("store: meta version %d, want %d", v, metaVersion)
	}
	m := &meta{
		blocks: make(map[wire.BlockID]*blockMeta),
		epochs: make(map[stripeKey]uint64),
		places: make(map[stripeKey]Placement),
	}
	m.era = u32()
	m.seq = u64()
	m.npages = u32()
	if err := need(4); err != nil {
		return nil, err
	}
	for n := u32(); n > 0; n-- {
		if err := need(4); err != nil {
			return nil, err
		}
		m.free = append(m.free, u32())
	}
	if err := need(4); err != nil {
		return nil, err
	}
	for n := u32(); n > 0; n-- {
		if err := need(blockIDLen + 8); err != nil {
			return nil, err
		}
		id := getBlockID(body[off:])
		off += blockIDLen
		bm := &blockMeta{length: u32()}
		np := u32()
		if err := need(int(np) * 4); err != nil {
			return nil, err
		}
		for ; np > 0; np-- {
			bm.pages = append(bm.pages, u32())
		}
		m.blocks[id] = bm
	}
	if err := need(4); err != nil {
		return nil, err
	}
	for n := u32(); n > 0; n-- {
		if err := need(20); err != nil {
			return nil, err
		}
		k := stripeKey{Ino: u64(), Stripe: u32()}
		m.epochs[k] = u64()
	}
	if err := need(4); err != nil {
		return nil, err
	}
	for n := u32(); n > 0; n-- {
		if err := need(26); err != nil {
			return nil, err
		}
		k := stripeKey{Ino: u64(), Stripe: u32()}
		p := Placement{Epoch: u64(), K: int(body[off]), M: int(body[off+1])}
		off += 2
		nn := u32()
		if err := need(int(nn) * 4); err != nil {
			return nil, err
		}
		for ; nn > 0; nn-- {
			p.Nodes = append(p.Nodes, wire.NodeID(int32(u32())))
		}
		m.places[k] = p
	}
	return m, nil
}

// writeMeta persists m atomically: write to a temp file, fsync, rename
// over the live name, fsync the directory. A crash leaves either the
// old meta or the new one, never a torn mix.
func writeMeta(dir string, m *meta) error {
	path := filepath.Join(dir, "meta.bin")
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(encodeMeta(m)); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// readMeta loads the checkpoint; a missing file is a fresh data dir.
func readMeta(dir string) (*meta, error) {
	b, err := os.ReadFile(filepath.Join(dir, "meta.bin"))
	if os.IsNotExist(err) {
		return &meta{
			era:    0,
			blocks: make(map[wire.BlockID]*blockMeta),
			epochs: make(map[stripeKey]uint64),
			places: make(map[stripeKey]Placement),
		}, nil
	}
	if err != nil {
		return nil, err
	}
	return decodeMeta(b)
}
