// Package store is the persistent per-OSD storage engine: a
// page/extent-based block file behind a fixed-size buffer pool with a
// write-ahead log (WAL-before-data, checksummed length-prefixed
// records), plus append-only on-disk segment files that back the
// parity/data log pools (one active segment per stripe, generation
// indexed, folded and compacted in place). The engine is selected by
// ecfs.Options.DataDir; with no data dir the OSD keeps today's
// in-memory stores and nothing in this package runs.
//
// Crash model: the engine appends WAL and segment records with plain
// write(2) before acknowledging, so a process-level crash (Engine.Crash
// freezes all I/O mid-flight, simulating kill -9) loses at most the
// tail the kernel never saw — which recovery detects by checksum and
// truncates. fsync placement is a policy knob (SyncPolicy): batched
// group-commit by default, per-record for the durability bench rows.
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"repro/internal/wire"
)

// WAL record kinds. The WAL carries logical redo records: recovery
// re-applies them through the normal (unlogged) write path, which makes
// redo idempotent — pages written back before the crash are simply
// rewritten with identical bytes.
const (
	opWrite     = 1 // block range write: id, post-write length, offset, payload
	opDelete    = 2 // block removal: id
	opEpoch     = 3 // per-stripe placement epoch: ino, stripe, epoch
	opEnsure    = 4 // zero-filled block creation: id, size
	opPlacement = 5 // stripe placement: ino, stripe, epoch, k, m, nodes
)

// walHeader is the framing overhead per record: payload length (u32),
// CRC-32C over kind+payload (u32), kind (u8).
const walHeader = 9

// maxWALRecord bounds a single record so a corrupt length prefix in a
// torn tail cannot drive a giant allocation during replay.
const maxWALRecord = 1 << 26 // 64 MiB

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SyncPolicy says when the WAL fsyncs.
type SyncPolicy int

const (
	// SyncBatched fsyncs on checkpoint/flush only (group commit). The
	// default: appends are still write(2)-visible immediately, which is
	// what the in-process crash model preserves.
	SyncBatched SyncPolicy = iota
	// SyncEveryRecord fsyncs after every append — the per-record
	// durability row in the storage bench.
	SyncEveryRecord
)

// wal is the write-ahead log: an append-only file of checksummed,
// length-prefixed records. The engine's mutex serializes all access.
type wal struct {
	f      *os.File
	off    int64 // append offset == LSN of the next record
	policy SyncPolicy

	records int64
	bytes   int64
	syncs   int64
}

func openWAL(path string, policy SyncPolicy) (*wal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	return &wal{f: f, policy: policy}, nil
}

// append frames and writes one record, returning the LSN past it. The
// write is a single write(2): a crash can tear the record (detected by
// length/CRC at replay) but never interleave two records.
func (w *wal) append(kind byte, payload []byte) (int64, error) {
	rec := make([]byte, walHeader+len(payload))
	binary.LittleEndian.PutUint32(rec[0:4], uint32(len(payload)))
	rec[8] = kind
	copy(rec[walHeader:], payload)
	crc := crc32.Checksum(rec[8:], castagnoli)
	binary.LittleEndian.PutUint32(rec[4:8], crc)
	if _, err := w.f.WriteAt(rec, w.off); err != nil {
		return w.off, err
	}
	w.off += int64(len(rec))
	w.records++
	w.bytes += int64(len(rec))
	if w.policy == SyncEveryRecord {
		if err := w.sync(); err != nil {
			return w.off, err
		}
	}
	return w.off, nil
}

func (w *wal) sync() error {
	w.syncs++
	return w.f.Sync()
}

// reset truncates the log after a checkpoint has made its records
// redundant.
func (w *wal) reset() error {
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	w.off = 0
	return nil
}

func (w *wal) close() error { return w.f.Close() }

// walRecord is one decoded replay record.
type walRecord struct {
	kind    byte
	payload []byte
}

// replayWAL scans the log from the start, returning every intact record
// and the offset of the first torn or corrupt one — the point the
// caller truncates to. A short header, an implausible length, a short
// payload, or a CRC mismatch all end the scan: everything before it is
// committed, everything at and after it never finished.
func replayWAL(f *os.File) (recs []walRecord, tail int64, err error) {
	info, err := f.Stat()
	if err != nil {
		return nil, 0, err
	}
	size := info.Size()
	var off int64
	hdr := make([]byte, walHeader)
	for {
		if size-off < walHeader {
			return recs, off, nil
		}
		if _, err := f.ReadAt(hdr, off); err != nil {
			return recs, off, nil
		}
		n := int64(binary.LittleEndian.Uint32(hdr[0:4]))
		if n > maxWALRecord || size-off-walHeader < n {
			return recs, off, nil
		}
		body := make([]byte, 1+n)
		body[0] = hdr[8]
		if _, err := f.ReadAt(body[1:], off+walHeader); err != nil && err != io.EOF {
			return recs, off, nil
		}
		if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(hdr[4:8]) {
			return recs, off, nil
		}
		recs = append(recs, walRecord{kind: body[0], payload: body[1:]})
		off += walHeader + n
	}
}

// Block id and record payload codecs. Thirteen bytes identify a block
// (ino u64, stripe u32, idx u8); the remaining fields are fixed-width
// little-endian.

const blockIDLen = 13

func putBlockID(dst []byte, id wire.BlockID) {
	binary.LittleEndian.PutUint64(dst[0:8], id.Ino)
	binary.LittleEndian.PutUint32(dst[8:12], id.Stripe)
	dst[12] = id.Idx
}

func getBlockID(src []byte) wire.BlockID {
	return wire.BlockID{
		Ino:    binary.LittleEndian.Uint64(src[0:8]),
		Stripe: binary.LittleEndian.Uint32(src[8:12]),
		Idx:    src[12],
	}
}

func encodeWrite(id wire.BlockID, blockLen, off uint32, data []byte) []byte {
	p := make([]byte, blockIDLen+8+len(data))
	putBlockID(p, id)
	binary.LittleEndian.PutUint32(p[13:17], blockLen)
	binary.LittleEndian.PutUint32(p[17:21], off)
	copy(p[21:], data)
	return p
}

func decodeWrite(p []byte) (id wire.BlockID, blockLen, off uint32, data []byte, err error) {
	if len(p) < blockIDLen+8 {
		return id, 0, 0, nil, fmt.Errorf("store: short opWrite payload (%d bytes)", len(p))
	}
	id = getBlockID(p)
	blockLen = binary.LittleEndian.Uint32(p[13:17])
	off = binary.LittleEndian.Uint32(p[17:21])
	return id, blockLen, off, p[21:], nil
}

func encodeDelete(id wire.BlockID) []byte {
	p := make([]byte, blockIDLen)
	putBlockID(p, id)
	return p
}

func encodeEnsure(id wire.BlockID, size uint32) []byte {
	p := make([]byte, blockIDLen+4)
	putBlockID(p, id)
	binary.LittleEndian.PutUint32(p[13:17], size)
	return p
}

func decodeEnsure(p []byte) (id wire.BlockID, size uint32, err error) {
	if len(p) < blockIDLen+4 {
		return id, 0, fmt.Errorf("store: short opEnsure payload (%d bytes)", len(p))
	}
	return getBlockID(p), binary.LittleEndian.Uint32(p[13:17]), nil
}

func encodePlacement(ino uint64, stripe uint32, pl Placement) []byte {
	p := make([]byte, 22+4*len(pl.Nodes))
	binary.LittleEndian.PutUint64(p[0:8], ino)
	binary.LittleEndian.PutUint32(p[8:12], stripe)
	binary.LittleEndian.PutUint64(p[12:20], pl.Epoch)
	p[20], p[21] = byte(pl.K), byte(pl.M)
	for i, n := range pl.Nodes {
		binary.LittleEndian.PutUint32(p[22+4*i:], uint32(n))
	}
	return p
}

func decodePlacement(p []byte) (ino uint64, stripe uint32, pl Placement, err error) {
	if len(p) < 22 {
		return 0, 0, pl, fmt.Errorf("store: short opPlacement payload (%d bytes)", len(p))
	}
	ino = binary.LittleEndian.Uint64(p[0:8])
	stripe = binary.LittleEndian.Uint32(p[8:12])
	pl.Epoch = binary.LittleEndian.Uint64(p[12:20])
	pl.K, pl.M = int(p[20]), int(p[21])
	for off := 22; off+4 <= len(p); off += 4 {
		pl.Nodes = append(pl.Nodes, wire.NodeID(int32(binary.LittleEndian.Uint32(p[off:]))))
	}
	return ino, stripe, pl, nil
}

func encodeEpoch(ino uint64, stripe uint32, epoch uint64) []byte {
	p := make([]byte, 20)
	binary.LittleEndian.PutUint64(p[0:8], ino)
	binary.LittleEndian.PutUint32(p[8:12], stripe)
	binary.LittleEndian.PutUint64(p[12:20], epoch)
	return p
}

func decodeEpoch(p []byte) (ino uint64, stripe uint32, epoch uint64, err error) {
	if len(p) < 20 {
		return 0, 0, 0, fmt.Errorf("store: short opEpoch payload (%d bytes)", len(p))
	}
	return binary.LittleEndian.Uint64(p[0:8]),
		binary.LittleEndian.Uint32(p[8:12]),
		binary.LittleEndian.Uint64(p[12:20]), nil
}
