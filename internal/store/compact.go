package store

import (
	"context"
	"os"
	"time"

	"repro/internal/wire"
)

// Layer is a named handle into the engine's segment files — one per
// log pool. It satisfies logpool.Persist structurally (this package
// does not import logpool; the wiring layer passes the handle across).
// Persist errors are swallowed: after Crash the engine is frozen by
// design, and a real I/O failure on the simulated data path must not
// take down the pool — the entry simply will not survive a restart.
type Layer struct {
	e    *Engine
	name string
}

// Layer returns the persist handle for the named pool.
func (e *Engine) Layer(name string) *Layer { return &Layer{e: e, name: name} }

// AppendEntry durably appends one log entry under (layer, gen) before
// the pool acknowledges it.
func (l *Layer) AppendEntry(gen uint64, block wire.BlockID, off uint32, v int64, data []byte) {
	e := l.e
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.crashed {
		return
	}
	sf, err := e.segFor(l.name, gen)
	if err != nil {
		return
	}
	seq := e.seq
	e.seq++
	noff, err := appendRecord(sf.f, sf.off, segEntry, encodeSegEntry(seq, block, off, v, data))
	if err != nil {
		return
	}
	e.stats.SegAppends++
	e.stats.SegBytes += noff - sf.off
	sf.off = noff
}

// FoldBlock marks every entry for block in (layer, gen) as folded:
// its delta has been recycled into parity and must not replay.
func (l *Layer) FoldBlock(gen uint64, block wire.BlockID) {
	e := l.e
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.crashed {
		return
	}
	sf, ok := e.segs[segKey{l.name, gen}]
	if !ok {
		return
	}
	var p [blockIDLen]byte
	putBlockID(p[:], block)
	if noff, err := appendRecord(sf.f, sf.off, segFoldBlock, p[:]); err == nil {
		sf.off = noff
	}
}

// FoldUnit marks the whole generation folded; the file becomes
// compaction garbage.
func (l *Layer) FoldUnit(gen uint64) {
	e := l.e
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.crashed {
		return
	}
	sf, ok := e.segs[segKey{l.name, gen}]
	if !ok {
		return
	}
	if noff, err := appendRecord(sf.f, sf.off, segFoldUnit, nil); err == nil {
		sf.off = noff
		sf.unit = true
	}
}

// segFor opens (or returns) the active segment file for (layer, gen),
// writing the identifying header record on creation.
func (e *Engine) segFor(layer string, gen uint64) (*segFile, error) {
	k := segKey{layer, gen}
	if sf, ok := e.segs[k]; ok {
		return sf, nil
	}
	path := segPath(e.dir, e.era, layer, gen)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	sf := &segFile{f: f, path: path}
	off, err := appendRecord(f, 0, segHeader, encodeSegHeader(layer, gen))
	if err != nil {
		f.Close()
		return nil, err
	}
	sf.off = off
	e.segs[k] = sf
	return sf, nil
}

// ---- replay of a previous incarnation's segments ----

// ReplayPending returns how many unfolded entries the last Open
// recovered.
func (e *Engine) ReplayPending() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.replayEntries)
}

// Replay visits the recovered entries in original append order. The
// owner re-appends them through its pools (which re-persists them
// under this incarnation's era); FinishReplay then deletes the old
// files.
func (e *Engine) Replay(fn func(SegEntry)) {
	e.mu.Lock()
	ents := e.replayEntries
	e.mu.Unlock()
	for _, se := range ents {
		fn(se)
	}
}

// FinishReplay deletes the previous era's segment files once their
// surviving entries have been re-appended.
func (e *Engine) FinishReplay() {
	e.mu.Lock()
	files := e.replayFiles
	e.replayFiles, e.replayEntries = nil, nil
	e.mu.Unlock()
	for _, path := range files {
		os.Remove(path)
	}
}

// ---- background compaction ----

// CompactGate admits compaction I/O. The cluster wires it to the
// repair scheduler so segment reclamation is classified maintenance
// traffic and capped alongside rebuild/drain work; a nil gate admits
// everything immediately.
type CompactGate func(ctx context.Context, bytes int64) error

// CompactNow deletes every fully folded segment file, admitting each
// file's size through the gate first. It returns the bytes reclaimed.
func (e *Engine) CompactNow(ctx context.Context, gate CompactGate) (int64, error) {
	e.mu.Lock()
	var dead []*segFile
	for k, sf := range e.segs {
		if sf.unit {
			dead = append(dead, sf)
			delete(e.segs, k)
		}
	}
	e.mu.Unlock()
	var total int64
	for _, sf := range dead {
		size := sf.off
		if gate != nil {
			if err := gate(ctx, size); err != nil {
				return total, err
			}
		}
		sf.f.Close()
		os.Remove(sf.path)
		total += size
		e.mu.Lock()
		e.stats.CompactedFiles++
		e.stats.CompactedBytes += size
		e.mu.Unlock()
	}
	return total, nil
}

// StartCompactor runs CompactNow on a ticker until Crash or Close.
func (e *Engine) StartCompactor(gate CompactGate, interval time.Duration) {
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	e.mu.Lock()
	if e.compactStop != nil || e.crashed {
		e.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	e.compactStop, e.compactDone = stop, done
	e.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		ctx := context.Background()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				e.CompactNow(ctx, gate)
			}
		}
	}()
}

func (e *Engine) stopCompactor() {
	e.mu.Lock()
	stop, done := e.compactStop, e.compactDone
	e.compactStop, e.compactDone = nil, nil
	e.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}
