package store

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/wire"
)

func bid(ino uint64, stripe uint32, idx uint8) wire.BlockID {
	return wire.BlockID{Ino: ino, Stripe: stripe, Idx: idx}
}

func openT(t *testing.T, dir string, o Options) *Engine {
	t.Helper()
	e, err := Open(dir, o)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return e
}

func TestEngineWriteReadReopen(t *testing.T) {
	dir := t.TempDir()
	e := openT(t, dir, Options{PageSize: 64, Frames: 8})
	b := bid(1, 0, 2)
	if err := e.Ensure(b, 300); err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0xab}, 100)
	if err := e.WriteRange(b, 50, data); err != nil {
		t.Fatal(err)
	}
	got, err := e.ReadRange(b, 40, 120)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, 120)
	copy(want[10:110], data)
	if !bytes.Equal(got, want) {
		t.Fatalf("read mismatch after write")
	}
	full := bytes.Repeat([]byte{0x17}, 90)
	if err := e.WriteFull(b, full); err != nil {
		t.Fatal(err)
	}
	if e.Size(b) != 90 {
		t.Fatalf("Size = %d after WriteFull(90)", e.Size(b))
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2 := openT(t, dir, Options{PageSize: 64, Frames: 8})
	defer e2.Close()
	snap, ok := e2.Snapshot(b)
	if !ok || !bytes.Equal(snap, full) {
		t.Fatalf("snapshot after clean reopen: ok=%v len=%d", ok, len(snap))
	}
	if e2.Stats().RedoneRecords != 0 {
		t.Fatalf("clean shutdown should leave an empty WAL, redid %d records", e2.Stats().RedoneRecords)
	}
	if err := e2.Delete(b); err != nil {
		t.Fatal(err)
	}
	if e2.Has(b) {
		t.Fatal("block survives Delete")
	}
}

// TestEngineKillPointRedo is the deterministic kill-point test: crash
// after the WAL append but before any page writeback (no checkpoint,
// no eviction), and assert redo restores the page on reopen.
func TestEngineKillPointRedo(t *testing.T) {
	dir := t.TempDir()
	e := openT(t, dir, Options{PageSize: 128, Frames: 32})
	b := bid(7, 3, 0)
	data := bytes.Repeat([]byte{0x5c}, 512)
	if err := e.WriteFull(b, data); err != nil {
		t.Fatal(err)
	}
	// The write is in the WAL and in dirty frames only: blocks.dat has
	// never been written back (pool is big enough that nothing evicted).
	e.Crash()
	if err := e.WriteFull(b, []byte{1}); err != ErrCrashed {
		t.Fatalf("write after crash: %v, want ErrCrashed", err)
	}
	e.Close()

	e2 := openT(t, dir, Options{PageSize: 128, Frames: 32})
	defer e2.Close()
	if e2.Stats().RedoneRecords == 0 {
		t.Fatal("expected WAL records to redo after crash")
	}
	snap, ok := e2.Snapshot(b)
	if !ok || !bytes.Equal(snap, data) {
		t.Fatalf("redo did not restore the page: ok=%v", ok)
	}
}

func TestEngineTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	e := openT(t, dir, Options{PageSize: 128, Frames: 8})
	b := bid(1, 1, 1)
	if err := e.WriteFull(b, bytes.Repeat([]byte{9}, 64)); err != nil {
		t.Fatal(err)
	}
	e.Crash()
	e.Close()
	// Tear the WAL: append a half-record of garbage.
	path := filepath.Join(dir, "wal.bin")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0xff, 0x00, 0x00, 0x00, 0xde, 0xad})
	f.Close()

	e2 := openT(t, dir, Options{PageSize: 128, Frames: 8})
	defer e2.Close()
	snap, ok := e2.Snapshot(b)
	if !ok || len(snap) != 64 || snap[0] != 9 {
		t.Fatalf("committed record lost to torn tail: ok=%v", ok)
	}
	// The torn bytes must be gone so new appends extend a clean log.
	if err := e2.WriteFull(b, bytes.Repeat([]byte{8}, 64)); err != nil {
		t.Fatal(err)
	}
	e2.Crash()
	e2.Close()
	e3 := openT(t, dir, Options{PageSize: 128, Frames: 8})
	defer e3.Close()
	snap, _ = e3.Snapshot(b)
	if len(snap) != 64 || snap[0] != 8 {
		t.Fatal("append after torn-tail truncation did not commit")
	}
}

func TestEngineEvictionWriteback(t *testing.T) {
	dir := t.TempDir()
	// 4 frames of 64 bytes: heavy eviction under a 16-block workload.
	e := openT(t, dir, Options{PageSize: 64, Frames: 4})
	defer e.Close()
	for i := 0; i < 16; i++ {
		b := bid(2, uint32(i), 0)
		if err := e.WriteFull(b, bytes.Repeat([]byte{byte(i)}, 200)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 16; i++ {
		snap, ok := e.Snapshot(bid(2, uint32(i), 0))
		if !ok || len(snap) != 200 || snap[100] != byte(i) {
			t.Fatalf("block %d corrupted by eviction", i)
		}
	}
	if e.Stats().Writebacks == 0 {
		t.Fatal("expected dirty-page writebacks under a 4-frame pool")
	}
}

func TestEngineSegmentReplayAndFold(t *testing.T) {
	dir := t.TempDir()
	e := openT(t, dir, Options{})
	lay := e.Layer("pool/a")
	b1, b2 := bid(1, 0, 0), bid(1, 1, 0)
	lay.AppendEntry(1, b1, 0, 10, []byte("one"))
	lay.AppendEntry(1, b2, 8, 20, []byte("two"))
	lay.AppendEntry(2, b1, 4, 30, []byte("three"))
	lay.FoldBlock(1, b2) // b2's gen-1 entry recycled: must not replay
	e.Crash()
	e.Close()

	e2 := openT(t, dir, Options{})
	defer e2.Close()
	var got []SegEntry
	e2.Replay(func(se SegEntry) { got = append(got, se) })
	if len(got) != 2 {
		t.Fatalf("replayed %d entries, want 2 (folded one dropped)", len(got))
	}
	if got[0].Off != 0 || string(got[0].Data) != "one" || got[0].Layer != "pool/a" {
		t.Fatalf("entry 0 mismatch: %+v", got[0])
	}
	if got[1].Off != 4 || string(got[1].Data) != "three" || got[1].V != 30 {
		t.Fatalf("entry 1 mismatch: %+v", got[1])
	}
	if got[0].Seq >= got[1].Seq {
		t.Fatal("replay out of append order")
	}
	e2.FinishReplay()
	if n := e2.ReplayPending(); n != 0 {
		t.Fatalf("%d entries pending after FinishReplay", n)
	}

	// Unit folds make files compactable.
	lay2 := e2.Layer("pool/a")
	lay2.AppendEntry(5, b1, 0, 1, []byte("dead"))
	lay2.FoldUnit(5)
	n, err := e2.CompactNow(context.Background(), nil)
	if err != nil || n == 0 {
		t.Fatalf("CompactNow reclaimed %d bytes, err %v", n, err)
	}
	e2.Crash()
	e2.Close()
	e3 := openT(t, dir, Options{})
	defer e3.Close()
	if n := e3.ReplayPending(); n != 0 {
		t.Fatalf("unit-folded entries replayed: %d", n)
	}
}

func TestEngineEpochAndPlacementSurviveCrash(t *testing.T) {
	dir := t.TempDir()
	e := openT(t, dir, Options{})
	if err := e.NoteEpoch(3, 1, 7); err != nil {
		t.Fatal(err)
	}
	if err := e.NoteEpoch(3, 1, 5); err != nil { // stale: ignored
		t.Fatal(err)
	}
	pl := Placement{K: 2, M: 1, Epoch: 7, Nodes: []wire.NodeID{4, 5, 6}}
	if err := e.RememberPlacement(3, 1, pl); err != nil {
		t.Fatal(err)
	}
	e.Crash()
	e.Close()

	e2 := openT(t, dir, Options{})
	defer e2.Close()
	if ep, ok := e2.EpochOf(3, 1); !ok || ep != 7 {
		t.Fatalf("epoch after crash: %d %v", ep, ok)
	}
	var seen int
	e2.ForEachPlacement(func(ino uint64, stripe uint32, p Placement) {
		seen++
		if ino != 3 || stripe != 1 || p.Epoch != 7 || p.K != 2 || p.M != 1 || len(p.Nodes) != 3 || p.Nodes[2] != 6 {
			t.Fatalf("placement mismatch: %+v", p)
		}
	})
	if seen != 1 {
		t.Fatalf("placements after crash: %d", seen)
	}
}

func TestEngineDropCaches(t *testing.T) {
	dir := t.TempDir()
	e := openT(t, dir, Options{PageSize: 64, Frames: 32})
	defer e.Close()
	b := bid(9, 0, 0)
	if err := e.WriteFull(b, bytes.Repeat([]byte{3}, 256)); err != nil {
		t.Fatal(err)
	}
	if err := e.DropCaches(); err != nil {
		t.Fatal(err)
	}
	before := e.Stats().PageMisses
	snap, ok := e.Snapshot(b)
	if !ok || snap[200] != 3 {
		t.Fatal("cold read wrong")
	}
	if e.Stats().PageMisses == before {
		t.Fatal("cold read did not fault pages")
	}
}
