package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// TestWriteSeedCorpus regenerates the committed fuzz seed corpus under
// testdata/fuzz/FuzzWALReplay (run with STORE_WRITE_CORPUS=1 after
// changing the record formats). The corpus keeps CI's non-fuzzing
// `go test -run Fuzz` step exercising real torn-log shapes.
func TestWriteSeedCorpus(t *testing.T) {
	if os.Getenv("STORE_WRITE_CORPUS") == "" {
		t.Skip("set STORE_WRITE_CORPUS=1 to regenerate the seed corpus")
	}
	b := bid(3, 2, 1)
	valid := frameRecord(opWrite, encodeWrite(b, 64, 0, []byte("payload")))
	valid = append(valid, frameRecord(opEpoch, encodeEpoch(3, 2, 9))...)
	flipped := append([]byte(nil), valid...)
	flipped[walHeader+2] ^= 0x40
	seg := frameRecord(segHeader, encodeSegHeader("tsue-data/osd1/0", 7))
	seg = append(seg, frameRecord(segEntry, encodeSegEntry(12, b, 8, 99, []byte("delta")))...)
	seg = append(seg, frameRecord(segFoldBlock, encodeDelete(b))...)
	seeds := map[string][]byte{
		"wal-valid":     valid,
		"wal-torn":      valid[:len(valid)-5],
		"wal-bitflip":   flipped,
		"seg-valid":     seg,
		"seg-torn-head": seg[:walHeader+3],
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzWALReplay")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, data := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(data)))
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
