package erasure

import (
	"math/rand"
	"testing"
)

func TestIdentity(t *testing.T) {
	id := Identity(4)
	if !id.IsIdentity() {
		t.Fatal("Identity(4) is not identity")
	}
	m := NewMatrix(4, 4)
	m.Set(0, 1, 3)
	if m.IsIdentity() {
		t.Fatal("non-identity matrix reported as identity")
	}
	if NewMatrix(2, 3).IsIdentity() {
		t.Fatal("non-square matrix reported as identity")
	}
}

func TestMatrixMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewMatrix(5, 5)
	rng.Read(m.Data)
	got := m.Mul(Identity(5))
	for i := range got.Data {
		if got.Data[i] != m.Data[i] {
			t.Fatal("m * I != m")
		}
	}
	got = Identity(5).Mul(m)
	for i := range got.Data {
		if got.Data[i] != m.Data[i] {
			t.Fatal("I * m != m")
		}
	}
}

func TestMatrixMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	NewMatrix(2, 3).Mul(NewMatrix(2, 3))
}

func TestInvertRandomMatrices(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	inverted := 0
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(8)
		m := NewMatrix(n, n)
		rng.Read(m.Data)
		inv, err := m.Invert()
		if err != nil {
			continue // singular random matrix: fine, skip
		}
		inverted++
		if !m.Mul(inv).IsIdentity() {
			t.Fatalf("m * m^-1 != I for n=%d", n)
		}
		if !inv.Mul(m).IsIdentity() {
			t.Fatalf("m^-1 * m != I for n=%d", n)
		}
	}
	if inverted < 25 {
		t.Fatalf("too few invertible random matrices: %d", inverted)
	}
}

func TestInvertSingular(t *testing.T) {
	m := NewMatrix(3, 3)
	// Two identical rows -> singular.
	for c := 0; c < 3; c++ {
		m.Set(0, c, byte(c+1))
		m.Set(1, c, byte(c+1))
		m.Set(2, c, byte(2*c+5))
	}
	if _, err := m.Invert(); err == nil {
		t.Fatal("expected error inverting singular matrix")
	}
}

func TestInvertNonSquare(t *testing.T) {
	if _, err := NewMatrix(2, 3).Invert(); err == nil {
		t.Fatal("expected error inverting non-square matrix")
	}
}

func TestSubMatrix(t *testing.T) {
	m := NewMatrix(4, 2)
	for r := 0; r < 4; r++ {
		for c := 0; c < 2; c++ {
			m.Set(r, c, byte(10*r+c))
		}
	}
	s := m.SubMatrix([]int{3, 1})
	if s.At(0, 0) != 30 || s.At(0, 1) != 31 || s.At(1, 0) != 10 || s.At(1, 1) != 11 {
		t.Fatalf("SubMatrix rows wrong: %+v", s)
	}
}

func TestVandermondeSystematic(t *testing.T) {
	for _, km := range [][2]int{{2, 1}, {4, 2}, {6, 3}, {12, 4}} {
		m, err := vandermonde(km[0], km[1])
		if err != nil {
			t.Fatalf("vandermonde(%d,%d): %v", km[0], km[1], err)
		}
		if !m.SubMatrix(seq(0, km[0])).IsIdentity() {
			t.Fatalf("vandermonde(%d,%d) top block is not identity", km[0], km[1])
		}
	}
}

func TestCauchySystematic(t *testing.T) {
	m, err := cauchy(6, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !m.SubMatrix(seq(0, 6)).IsIdentity() {
		t.Fatal("cauchy top block is not identity")
	}
}

// TestMDSProperty verifies that for small codes, EVERY K-subset of rows of
// the encoding matrix is invertible — the defining property that makes any
// M erasures recoverable.
func TestMDSProperty(t *testing.T) {
	for _, kind := range []MatrixKind{Vandermonde, Cauchy} {
		for _, km := range [][2]int{{3, 2}, {4, 3}, {6, 2}} {
			k, m := km[0], km[1]
			c := MustNew(k, m, kind)
			n := k + m
			// Enumerate all K-subsets via bitmask.
			for mask := 0; mask < 1<<n; mask++ {
				if popcount(mask) != k {
					continue
				}
				rows := make([]int, 0, k)
				for i := 0; i < n; i++ {
					if mask&(1<<i) != 0 {
						rows = append(rows, i)
					}
				}
				if _, err := c.enc.SubMatrix(rows).Invert(); err != nil {
					t.Fatalf("%v RS(%d,%d): rows %v not invertible: %v", kind, k, m, rows, err)
				}
			}
		}
	}
}

func popcount(x int) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}
