package erasure

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func randShards(rng *rand.Rand, k, size int) [][]byte {
	shards := make([][]byte, k)
	for i := range shards {
		shards[i] = make([]byte, size)
		rng.Read(shards[i])
	}
	return shards
}

func TestNewRejectsBadParams(t *testing.T) {
	for _, km := range [][2]int{{0, 1}, {1, 0}, {-1, 2}, {200, 100}} {
		if _, err := New(km[0], km[1], Vandermonde); err == nil {
			t.Errorf("New(%d,%d) should fail", km[0], km[1])
		}
	}
	if _, err := New(4, 2, MatrixKind(99)); err == nil {
		t.Error("unknown matrix kind should fail")
	}
}

func TestEncodeVerifyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, kind := range []MatrixKind{Vandermonde, Cauchy} {
		for _, km := range [][2]int{{6, 2}, {6, 3}, {6, 4}, {12, 2}, {12, 3}, {12, 4}} {
			c := MustNew(km[0], km[1], kind)
			data := randShards(rng, c.K, 512)
			parity, err := c.Encode(data)
			if err != nil {
				t.Fatal(err)
			}
			ok, err := c.Verify(data, parity)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("%v RS(%d,%d): freshly encoded parity does not verify", kind, c.K, c.M)
			}
			// Corrupt one byte: must no longer verify.
			data[0][0] ^= 0xff
			ok, _ = c.Verify(data, parity)
			if ok {
				t.Fatalf("%v RS(%d,%d): corrupted stripe verified", kind, c.K, c.M)
			}
		}
	}
}

func TestEncodeRejectsMismatchedShards(t *testing.T) {
	c := MustNew(4, 2, Vandermonde)
	shards := [][]byte{make([]byte, 8), make([]byte, 8), make([]byte, 9), make([]byte, 8)}
	if _, err := c.Encode(shards); err == nil {
		t.Fatal("Encode must reject unequal shard lengths")
	}
	if _, err := c.Encode(shards[:2]); err == nil {
		t.Fatal("Encode must reject wrong shard count")
	}
}

func TestReconstructAllPatterns(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, kind := range []MatrixKind{Vandermonde, Cauchy} {
		c := MustNew(4, 3, kind)
		data := randShards(rng, c.K, 256)
		parity, err := c.Encode(data)
		if err != nil {
			t.Fatal(err)
		}
		full := append(append([][]byte{}, data...), parity...)
		n := c.K + c.M
		// Every erasure pattern of size 1..M must be recoverable.
		for mask := 1; mask < 1<<n; mask++ {
			lost := popcount(mask)
			if lost > c.M {
				continue
			}
			shards := make([][]byte, n)
			for i := 0; i < n; i++ {
				if mask&(1<<i) == 0 {
					shards[i] = append([]byte(nil), full[i]...)
				}
			}
			if err := c.Reconstruct(shards); err != nil {
				t.Fatalf("%v: reconstruct mask %b: %v", kind, mask, err)
			}
			for i := 0; i < n; i++ {
				if !bytes.Equal(shards[i], full[i]) {
					t.Fatalf("%v: shard %d wrong after reconstructing mask %b", kind, i, mask)
				}
			}
		}
	}
}

func TestReconstructTooManyLost(t *testing.T) {
	c := MustNew(4, 2, Vandermonde)
	shards := make([][]byte, 6)
	for i := 0; i < 3; i++ { // only 3 survivors < K=4
		shards[i] = make([]byte, 16)
	}
	if err := c.Reconstruct(shards); err == nil {
		t.Fatal("expected error with fewer than K survivors")
	}
}

func TestReconstructNoOpWhenComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	c := MustNew(3, 2, Cauchy)
	data := randShards(rng, 3, 64)
	parity, _ := c.Encode(data)
	shards := append(append([][]byte{}, data...), parity...)
	before := make([][]byte, len(shards))
	for i, s := range shards {
		before[i] = append([]byte(nil), s...)
	}
	if err := c.Reconstruct(shards); err != nil {
		t.Fatal(err)
	}
	for i := range shards {
		if !bytes.Equal(shards[i], before[i]) {
			t.Fatal("Reconstruct modified complete stripe")
		}
	}
}

// TestIncrementalUpdateEquivalence is the core invariant behind every
// update strategy in the paper: applying parity deltas (Eq. 2) must yield
// exactly the parity of a full re-encode.
func TestIncrementalUpdateEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, kind := range []MatrixKind{Vandermonde, Cauchy} {
		c := MustNew(6, 3, kind)
		size := 128
		data := randShards(rng, c.K, size)
		parity, _ := c.Encode(data)

		// Apply 20 random sub-block updates incrementally.
		for i := 0; i < 20; i++ {
			d := rng.Intn(c.K)
			off := rng.Intn(size - 8)
			n := 1 + rng.Intn(8)
			newData := make([]byte, n)
			rng.Read(newData)
			old := append([]byte(nil), data[d][off:off+n]...)
			copy(data[d][off:off+n], newData)
			delta := DataDelta(old, newData)
			for p := 0; p < c.M; p++ {
				pd := c.ParityDelta(p, d, delta)
				ApplyParityDelta(parity[p][off:off+n], pd)
			}
		}
		want, _ := c.Encode(data)
		for p := 0; p < c.M; p++ {
			if !bytes.Equal(parity[p], want[p]) {
				t.Fatalf("%v: incremental parity %d diverged from re-encode", kind, p)
			}
		}
	}
}

// TestFoldEquivalence checks Equation 3/4: folding N deltas of the same
// address equals the single old-to-latest delta.
func TestFoldEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	orig := make([]byte, 64)
	rng.Read(orig)
	cur := append([]byte(nil), orig...)
	acc := make([]byte, 64)
	for i := 0; i < 10; i++ {
		next := make([]byte, 64)
		rng.Read(next)
		Fold(acc, DataDelta(cur, next))
		cur = next
	}
	want := DataDelta(orig, cur)
	if !bytes.Equal(acc, want) {
		t.Fatal("folded deltas != end-to-end delta")
	}
}

// TestMergeDeltasEquivalence checks Equation 5: merging deltas across data
// blocks produces the same parity as applying each delta individually.
func TestMergeDeltasEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	c := MustNew(6, 4, Vandermonde)
	size := 96
	deltas := map[int][]byte{}
	for _, d := range []int{0, 2, 5} {
		b := make([]byte, size)
		rng.Read(b)
		deltas[d] = b
	}
	for p := 0; p < c.M; p++ {
		merged := c.MergeDeltas(p, deltas)
		want := make([]byte, size)
		for d, delta := range deltas {
			ApplyParityDelta(want, c.ParityDelta(p, d, delta))
		}
		if !bytes.Equal(merged, want) {
			t.Fatalf("MergeDeltas parity %d mismatch", p)
		}
	}
}

func TestDataDeltaProperties(t *testing.T) {
	f := func(a, b []byte) bool {
		n := min(len(a), len(b))
		a, b = a[:n], b[:n]
		d := DataDelta(a, b)
		// old XOR delta == new
		got := append([]byte(nil), a...)
		for i := range got {
			got[i] ^= d[i]
		}
		return bytes.Equal(got, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCoeffMatchesEncode(t *testing.T) {
	// Parity of a one-hot data pattern isolates a single coefficient.
	c := MustNew(5, 3, Cauchy)
	data := make([][]byte, c.K)
	for i := range data {
		data[i] = make([]byte, 1)
	}
	for d := 0; d < c.K; d++ {
		for i := range data {
			data[i][0] = 0
		}
		data[d][0] = 1
		parity, _ := c.Encode(data)
		for p := 0; p < c.M; p++ {
			if parity[p][0] != c.Coeff(p, d) {
				t.Fatalf("Coeff(%d,%d) = %#x but encode gives %#x", p, d, c.Coeff(p, d), parity[p][0])
			}
		}
	}
}

func TestKindString(t *testing.T) {
	if Vandermonde.String() != "vandermonde" || Cauchy.String() != "cauchy" {
		t.Fatal("MatrixKind.String wrong")
	}
	if MatrixKind(42).String() == "" {
		t.Fatal("unknown kind should still stringify")
	}
}

func BenchmarkEncodeRS6_4_1MB(b *testing.B) {
	benchEncode(b, 6, 4, 1<<20)
}

func BenchmarkEncodeRS12_4_1MB(b *testing.B) {
	benchEncode(b, 12, 4, 1<<20)
}

func benchEncode(b *testing.B, k, m, size int) {
	rng := rand.New(rand.NewSource(1))
	c := MustNew(k, m, Vandermonde)
	data := randShards(rng, k, size)
	b.SetBytes(int64(k * size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReconstructRS6_4(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	c := MustNew(6, 4, Vandermonde)
	data := randShards(rng, 6, 1<<20)
	parity, _ := c.Encode(data)
	full := append(append([][]byte{}, data...), parity...)
	b.SetBytes(int64(6 << 20))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shards := make([][]byte, len(full))
		copy(shards, full)
		shards[0], shards[3], shards[7] = nil, nil, nil
		if err := c.Reconstruct(shards); err != nil {
			b.Fatal(err)
		}
	}
}
