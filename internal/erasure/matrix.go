// Package erasure implements systematic Reed-Solomon erasure codes over
// GF(2^8) as used by the ECFS cluster file system.
//
// A Code with parameters (K, M) turns K data blocks into M parity blocks
// via matrix multiplication over the Galois field (Equation 1 of the TSUE
// paper). Any M lost blocks — data or parity — can be rebuilt from the K
// survivors by inverting the corresponding rows of the encoding matrix.
//
// Beyond whole-stripe encode/decode the package provides the incremental
// update primitives every update strategy in the paper relies on:
//
//   - ParityDelta:  parity_delta = coeff * data_delta          (Eq. 2)
//   - Fold:         folding repeated updates of one address    (Eq. 3–4)
//   - MergeDeltas:  combining deltas of several data blocks of
//     one stripe into a single per-parity delta   (Eq. 5)
package erasure

import (
	"fmt"

	"repro/internal/gf256"
)

// Matrix is a dense byte matrix over GF(2^8), row-major.
type Matrix struct {
	Rows, Cols int
	Data       []byte
}

// NewMatrix allocates a zero matrix of the given shape.
func NewMatrix(rows, cols int) Matrix {
	if rows <= 0 || cols <= 0 {
		panic("erasure: non-positive matrix dimensions")
	}
	return Matrix{Rows: rows, Cols: cols, Data: make([]byte, rows*cols)}
}

// At returns the element at (r, c).
func (m Matrix) At(r, c int) byte { return m.Data[r*m.Cols+c] }

// Set assigns the element at (r, c).
func (m Matrix) Set(r, c int, v byte) { m.Data[r*m.Cols+c] = v }

// Row returns a view of row r.
func (m Matrix) Row(r int) []byte { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m Matrix) Clone() Matrix {
	n := Matrix{Rows: m.Rows, Cols: m.Cols, Data: make([]byte, len(m.Data))}
	copy(n.Data, m.Data)
	return n
}

// Mul returns the matrix product m * other.
func (m Matrix) Mul(other Matrix) Matrix {
	if m.Cols != other.Rows {
		panic(fmt.Sprintf("erasure: shape mismatch %dx%d * %dx%d", m.Rows, m.Cols, other.Rows, other.Cols))
	}
	out := NewMatrix(m.Rows, other.Cols)
	for r := 0; r < m.Rows; r++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(r, k)
			if a == 0 {
				continue
			}
			orow := other.Row(k)
			drow := out.Row(r)
			for c, v := range orow {
				drow[c] ^= gf256.Mul(a, v)
			}
		}
	}
	return out
}

// Identity returns the n x n identity matrix.
func Identity(n int) Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// IsIdentity reports whether m is a square identity matrix.
func (m Matrix) IsIdentity() bool {
	if m.Rows != m.Cols {
		return false
	}
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			want := byte(0)
			if r == c {
				want = 1
			}
			if m.At(r, c) != want {
				return false
			}
		}
	}
	return true
}

// Invert returns the inverse of a square matrix using Gauss-Jordan
// elimination over GF(2^8). It returns an error if m is singular.
func (m Matrix) Invert() (Matrix, error) {
	if m.Rows != m.Cols {
		return Matrix{}, fmt.Errorf("erasure: cannot invert %dx%d matrix", m.Rows, m.Cols)
	}
	n := m.Rows
	work := m.Clone()
	inv := Identity(n)
	for col := 0; col < n; col++ {
		// Find a pivot.
		pivot := -1
		for r := col; r < n; r++ {
			if work.At(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return Matrix{}, fmt.Errorf("erasure: singular matrix (column %d)", col)
		}
		if pivot != col {
			swapRows(work, pivot, col)
			swapRows(inv, pivot, col)
		}
		// Scale the pivot row to 1.
		if p := work.At(col, col); p != 1 {
			ip := gf256.Inv(p)
			scaleRow(work.Row(col), ip)
			scaleRow(inv.Row(col), ip)
		}
		// Eliminate the column from all other rows.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := work.At(r, col)
			if f == 0 {
				continue
			}
			gf256.MulAddSlice(f, work.Row(r), work.Row(col))
			gf256.MulAddSlice(f, inv.Row(r), inv.Row(col))
		}
	}
	return inv, nil
}

func swapRows(m Matrix, a, b int) {
	ra, rb := m.Row(a), m.Row(b)
	for i := range ra {
		ra[i], rb[i] = rb[i], ra[i]
	}
}

func scaleRow(row []byte, c byte) {
	for i := range row {
		row[i] = gf256.Mul(row[i], c)
	}
}

// SubMatrix returns the matrix formed by the given rows of m.
func (m Matrix) SubMatrix(rows []int) Matrix {
	out := NewMatrix(len(rows), m.Cols)
	for i, r := range rows {
		copy(out.Row(i), m.Row(r))
	}
	return out
}

// vandermonde builds the (k+m) x k systematic encoding matrix: the top k
// rows are the identity; the bottom m rows are derived from a Vandermonde
// matrix so that every square submatrix formed by any k rows is invertible.
func vandermonde(k, m int) (Matrix, error) {
	n := k + m
	// Raw Vandermonde: row r is [1, r, r^2, ...] over GF(2^8).
	raw := NewMatrix(n, k)
	for r := 0; r < n; r++ {
		for c := 0; c < k; c++ {
			raw.Set(r, c, gf256.Pow(byte(r), c))
		}
	}
	// Systematize: multiply by the inverse of the top k x k block so the
	// data rows become the identity while preserving the MDS property.
	top := raw.SubMatrix(seq(0, k))
	topInv, err := top.Invert()
	if err != nil {
		return Matrix{}, fmt.Errorf("erasure: vandermonde top block singular: %w", err)
	}
	return raw.Mul(topInv), nil
}

// cauchy builds the (k+m) x k systematic encoding matrix whose parity rows
// form a Cauchy matrix: row i, column j holds 1/(x_i + y_j) with distinct
// x_i = k+i and y_j = j. Cauchy matrices are MDS by construction.
func cauchy(k, m int) (Matrix, error) {
	if k+m > 256 {
		return Matrix{}, fmt.Errorf("erasure: k+m = %d exceeds GF(2^8) capacity", k+m)
	}
	enc := NewMatrix(k+m, k)
	for i := 0; i < k; i++ {
		enc.Set(i, i, 1)
	}
	for i := 0; i < m; i++ {
		for j := 0; j < k; j++ {
			enc.Set(k+i, j, gf256.Inv(byte(k+i)^byte(j)))
		}
	}
	return enc, nil
}

func seq(from, to int) []int {
	s := make([]int, 0, to-from)
	for i := from; i < to; i++ {
		s = append(s, i)
	}
	return s
}
