package erasure

import (
	"errors"
	"fmt"

	"repro/internal/gf256"
)

// MatrixKind selects the construction of the encoding matrix.
type MatrixKind int

const (
	// Vandermonde derives parity rows from a systematized Vandermonde
	// matrix (the construction sketched in Equation 1 of the paper).
	Vandermonde MatrixKind = iota
	// Cauchy uses a Cauchy matrix for the parity rows.
	Cauchy
)

func (k MatrixKind) String() string {
	switch k {
	case Vandermonde:
		return "vandermonde"
	case Cauchy:
		return "cauchy"
	default:
		return fmt.Sprintf("MatrixKind(%d)", int(k))
	}
}

// Code is a systematic RS(K, M) erasure code. It is immutable after
// construction and safe for concurrent use.
type Code struct {
	K, M int
	Kind MatrixKind
	// enc is the (K+M) x K encoding matrix; the top K rows are identity.
	enc Matrix
}

// ErrTooFewShards is returned when fewer than K shards survive.
var ErrTooFewShards = errors.New("erasure: fewer than K shards available")

// New constructs an RS(k, m) code. k >= 1, m >= 1, k+m <= 256.
func New(k, m int, kind MatrixKind) (*Code, error) {
	if k < 1 || m < 1 {
		return nil, fmt.Errorf("erasure: invalid parameters RS(%d,%d)", k, m)
	}
	if k+m > 256 {
		return nil, fmt.Errorf("erasure: RS(%d,%d) exceeds GF(2^8) capacity", k, m)
	}
	var (
		enc Matrix
		err error
	)
	switch kind {
	case Vandermonde:
		enc, err = vandermonde(k, m)
	case Cauchy:
		enc, err = cauchy(k, m)
	default:
		return nil, fmt.Errorf("erasure: unknown matrix kind %v", kind)
	}
	if err != nil {
		return nil, err
	}
	return &Code{K: k, M: m, Kind: kind, enc: enc}, nil
}

// MustNew is New that panics on error, for tests and static configuration.
func MustNew(k, m int, kind MatrixKind) *Code {
	c, err := New(k, m, kind)
	if err != nil {
		panic(err)
	}
	return c
}

// Coeff returns the encoding coefficient relating data block `data` to
// parity block `parity` — the value written ∂(parity+1)(data+1) in the
// paper's equations. Indices are zero-based.
func (c *Code) Coeff(parity, data int) byte {
	return c.enc.At(c.K+parity, data)
}

// Encode computes the M parity shards for the given K data shards.
// All shards must have identical length. The returned parity shards are
// freshly allocated.
func (c *Code) Encode(data [][]byte) ([][]byte, error) {
	if err := c.checkDataShards(data); err != nil {
		return nil, err
	}
	size := len(data[0])
	parity := make([][]byte, c.M)
	for p := range parity {
		parity[p] = make([]byte, size)
		c.EncodeInto(parity[p], p, data)
	}
	return parity, nil
}

// EncodeInto computes parity shard p into dst, which must have the same
// length as the data shards.
func (c *Code) EncodeInto(dst []byte, p int, data [][]byte) {
	clear(dst)
	row := c.enc.Row(c.K + p)
	for d, shard := range data {
		gf256.MulAddSlice(row[d], dst, shard)
	}
}

// Verify reports whether parity is consistent with data.
func (c *Code) Verify(data, parity [][]byte) (bool, error) {
	if err := c.checkDataShards(data); err != nil {
		return false, err
	}
	if len(parity) != c.M {
		return false, fmt.Errorf("erasure: got %d parity shards, want %d", len(parity), c.M)
	}
	size := len(data[0])
	buf := make([]byte, size)
	for p := 0; p < c.M; p++ {
		if len(parity[p]) != size {
			return false, fmt.Errorf("erasure: parity shard %d has length %d, want %d", p, len(parity[p]), size)
		}
		c.EncodeInto(buf, p, data)
		for i := range buf {
			if buf[i] != parity[p][i] {
				return false, nil
			}
		}
	}
	return true, nil
}

// Reconstruct rebuilds the missing shards in place. shards must have
// length K+M, ordered data shards then parity shards; missing shards are
// nil. At least K shards must be present. Reconstructed shards are
// allocated into the nil slots.
func (c *Code) Reconstruct(shards [][]byte) error {
	n := c.K + c.M
	if len(shards) != n {
		return fmt.Errorf("erasure: got %d shards, want %d", len(shards), n)
	}
	present := make([]int, 0, n)
	missing := make([]int, 0, c.M)
	size := -1
	for i, s := range shards {
		if s == nil {
			missing = append(missing, i)
			continue
		}
		if size == -1 {
			size = len(s)
		} else if len(s) != size {
			return fmt.Errorf("erasure: shard %d has length %d, want %d", i, len(s), size)
		}
		present = append(present, i)
	}
	if len(missing) == 0 {
		return nil
	}
	if len(present) < c.K {
		return fmt.Errorf("%w: have %d, need %d", ErrTooFewShards, len(present), c.K)
	}
	// Take the first K surviving rows of the encoding matrix; invert; the
	// product with the survivors yields the original data shards.
	rows := present[:c.K]
	sub := c.enc.SubMatrix(rows)
	inv, err := sub.Invert()
	if err != nil {
		return fmt.Errorf("erasure: reconstruction matrix singular: %w", err)
	}
	// dataRow(d) = sum over j of inv[d][j] * shards[rows[j]].
	rebuiltData := make(map[int][]byte, len(missing))
	needData := func(d int) []byte {
		if d < c.K {
			if shards[d] != nil {
				return shards[d]
			}
			if b, ok := rebuiltData[d]; ok {
				return b
			}
			b := make([]byte, size)
			for j, r := range rows {
				gf256.MulAddSlice(inv.At(d, j), b, shards[r])
			}
			rebuiltData[d] = b
			return b
		}
		return nil
	}
	// First rebuild missing data shards, then missing parity from data.
	for _, idx := range missing {
		if idx < c.K {
			shards[idx] = needData(idx)
		}
	}
	for _, idx := range missing {
		if idx >= c.K {
			buf := make([]byte, size)
			row := c.enc.Row(idx)
			for d := 0; d < c.K; d++ {
				gf256.MulAddSlice(row[d], buf, needData(d))
			}
			shards[idx] = buf
		}
	}
	return nil
}

func (c *Code) checkDataShards(data [][]byte) error {
	if len(data) != c.K {
		return fmt.Errorf("erasure: got %d data shards, want %d", len(data), c.K)
	}
	size := len(data[0])
	for i, s := range data {
		if len(s) != size {
			return fmt.Errorf("erasure: data shard %d has length %d, want %d", i, len(s), size)
		}
	}
	return nil
}

// DataDelta computes newData XOR oldData into a fresh slice. In GF(2^8)
// subtraction is XOR, so this is the (D^n - D^{n-1}) term of Equation 2.
func DataDelta(oldData, newData []byte) []byte {
	if len(oldData) != len(newData) {
		panic("erasure: DataDelta length mismatch")
	}
	d := make([]byte, len(newData))
	for i := range d {
		d[i] = newData[i] ^ oldData[i]
	}
	return d
}

// ParityDelta computes the parity delta ∂ * dataDelta for parity block p
// and data block d (Equation 2). The result is freshly allocated.
func (c *Code) ParityDelta(p, d int, dataDelta []byte) []byte {
	out := make([]byte, len(dataDelta))
	gf256.MulSlice(c.Coeff(p, d), out, dataDelta)
	return out
}

// ApplyParityDelta folds a parity delta into a parity block in place:
// P^n = P^{n-1} + delta.
func ApplyParityDelta(parity, delta []byte) {
	gf256.XorSlice(parity, delta)
}

// Fold XORs b into a in place (Equation 3: deltas of the same address
// accumulate by field addition, so only the combined delta survives).
func Fold(a, b []byte) {
	gf256.XorSlice(a, b)
}

// MergeDeltas implements Equation 5: given data deltas for several data
// blocks of one stripe, all covering the same intra-block address range,
// it produces the single parity delta for parity block p.
// deltas maps data-block index -> delta bytes (all equal length).
func (c *Code) MergeDeltas(p int, deltas map[int][]byte) []byte {
	var out []byte
	for d, delta := range deltas {
		if out == nil {
			out = make([]byte, len(delta))
		}
		gf256.MulAddSlice(c.Coeff(p, d), out, delta)
	}
	return out
}
