//go:build !poolpoison

package transport

// poolPoisonBuild arms the pooled response-buffer misuse detector
// (poison-on-release, panic on double release, attach/release
// accounting) for the whole build. This is the default half: detection
// off, releases are pure pool puts. Build with -tags poolpoison to arm
// it everywhere, or call SetPoolDebug(true) to arm it at runtime.
const poolPoisonBuild = false
