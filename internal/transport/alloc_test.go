package transport

import (
	"testing"

	"repro/internal/wire"
)

func writeBlockMsg(payload []byte) *wire.Msg {
	return &wire.Msg{
		Kind:  wire.KWriteBlock,
		From:  wire.ClientIDBase,
		Block: wire.BlockID{Ino: 7, Stripe: 3, Idx: 1},
		Size:  uint32(len(payload)),
		Loc:   wire.StripeLoc{Epoch: 9, Nodes: []wire.NodeID{1, 2, 3}},
		Data:  payload,
	}
}

// Encoding a KWriteBlock frame into a warm buffer must not allocate:
// this is the client hot path (every shard of every stripe goes through
// appendMsgFrame inside the writer flush), and the whole point of the
// append-style codec is that steady-state writes reuse the flush
// buffer. A regression here silently taxes every write in the system.
func TestEncodeWriteBlockFrameZeroAllocs(t *testing.T) {
	msg := writeBlockMsg(make([]byte, 64<<10))
	var buf []byte
	var err error
	// Warm once so buffer growth is paid before measuring.
	if buf, err = appendMsgFrame(buf[:0], 1, msg); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		buf, err = appendMsgFrame(buf[:0], 1, msg)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("appendMsgFrame(KWriteBlock) = %.1f allocs/op, want 0", allocs)
	}
}

// The server-side decode of a payload frame is allowed exactly one
// allocation: the wire.Msg itself. Data must alias the pooled frame
// buffer (zero-copy), so any extra allocation means the codec started
// copying payloads again.
func TestServerDecodeWriteBlockFrameOneAlloc(t *testing.T) {
	body := writeBlockMsg(make([]byte, 64<<10)).AppendTo(nil)
	allocs := testing.AllocsPerRun(100, func() {
		msg := new(wire.Msg)
		if err := msg.Decode(body); err != nil {
			t.Fatal(err)
		}
		if &msg.Data[0] != &body[len(body)-len(msg.Data)] {
			t.Fatal("decode copied the payload instead of aliasing the frame buffer")
		}
	})
	if allocs > 1 {
		t.Errorf("server decode of a KWriteBlock frame = %.1f allocs/op, want <= 1 (the Msg itself)", allocs)
	}
}
