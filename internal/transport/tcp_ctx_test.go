package transport

import (
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/wire"
)

// TestTCPCallCancelUnblocksWithinRoundTrip proves the acceptance bound:
// a cancelled ctx aborts a TCP Call within one frame round-trip, even
// while the server is sitting on the request.
func TestTCPCallCancelUnblocksWithinRoundTrip(t *testing.T) {
	release := make(chan struct{})
	srv, err := ServeTCP(1, "127.0.0.1:0", func(_ context.Context, m *wire.Msg) *wire.Resp {
		<-release // server stalls: only cancellation can unblock the caller
		return &wire.Resp{}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	defer close(release)

	cli := NewTCPClient(map[wire.NodeID]string{1: srv.Addr()})
	defer cli.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = cli.Call(ctx, 1, &wire.Msg{Kind: wire.KPing})
	if err == nil {
		t.Fatal("cancelled call must fail")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled in %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancel took %v to unblock the call", elapsed)
	}
}

// TestTCPDeadlineMapsToConn: a ctx deadline expires the call without an
// explicit cancel.
func TestTCPDeadlineMapsToConn(t *testing.T) {
	release := make(chan struct{})
	srv, err := ServeTCP(1, "127.0.0.1:0", func(_ context.Context, m *wire.Msg) *wire.Resp {
		<-release
		return &wire.Resp{}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	defer close(release)

	cli := NewTCPClient(map[wire.NodeID]string{1: srv.Addr()})
	defer cli.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	if _, err := cli.Call(ctx, 1, &wire.Msg{Kind: wire.KPing}); err == nil {
		t.Fatal("deadline-expired call must fail")
	}
}

// TestTCPStalePooledConnReconnects: a connection pooled before a server
// restart is detected as stale on its next use and the call transparently
// redials — the reconnect story for idle pools.
func TestTCPStalePooledConnReconnects(t *testing.T) {
	srv, err := ServeTCP(1, "127.0.0.1:0", echoHandler(1))
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	cli := NewTCPClient(map[wire.NodeID]string{1: addr})
	defer cli.Close()
	if _, err := cli.Call(context.Background(), 1, &wire.Msg{Kind: wire.KPing}); err != nil {
		t.Fatal(err)
	}
	// Restart the server on the same address; the pooled conn is dead.
	srv.Close()
	srv2, err := ServeTCP(1, addr, echoHandler(1))
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer srv2.Close()
	resp, err := cli.Call(context.Background(), 1, &wire.Msg{Kind: wire.KPing, Data: []byte("again")})
	if err != nil {
		t.Fatalf("call after restart: %v", err)
	}
	if string(resp.Data) != "again" {
		t.Fatalf("bad response after reconnect: %+v", resp)
	}
}

// TestTCPResolverFollowsMovedNode: with an AddrResolver installed, an
// idempotent call to a node that moved to a new port re-resolves and
// succeeds with no SetAddr.
func TestTCPResolverFollowsMovedNode(t *testing.T) {
	srv, err := ServeTCP(1, "127.0.0.1:0", echoHandler(1))
	if err != nil {
		t.Fatal(err)
	}
	cli := NewTCPClient(map[wire.NodeID]string{1: srv.Addr()})
	defer cli.Close()
	if _, err := cli.Call(context.Background(), 1, &wire.Msg{Kind: wire.KPing}); err != nil {
		t.Fatal(err)
	}

	srv.Close()
	srv2, err := ServeTCP(1, "127.0.0.1:0", echoHandler(1))
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	var resolves int
	cli.SetResolver(func(ctx context.Context) (map[wire.NodeID]string, error) {
		resolves++
		return map[wire.NodeID]string{1: srv2.Addr()}, nil
	})
	resp, err := cli.Call(context.Background(), 1, &wire.Msg{Kind: wire.KPing, Data: []byte("moved")})
	if err != nil {
		t.Fatalf("call after move: %v", err)
	}
	if string(resp.Data) != "moved" || resolves == 0 {
		t.Fatalf("resolver not consulted (resolves=%d resp=%+v)", resolves, resp)
	}
	// A node with NO known address resolves too.
	cli2 := NewTCPClient(nil)
	defer cli2.Close()
	cli2.SetResolver(func(ctx context.Context) (map[wire.NodeID]string, error) {
		return map[wire.NodeID]string{1: srv2.Addr()}, nil
	})
	if _, err := cli2.Call(context.Background(), 1, &wire.Msg{Kind: wire.KPing}); err != nil {
		t.Fatalf("resolver-only call: %v", err)
	}
	// Unreachable without resolver wraps the sentinel.
	cli3 := NewTCPClient(nil)
	defer cli3.Close()
	if _, err := cli3.Call(context.Background(), 9, &wire.Msg{Kind: wire.KPing}); !errors.Is(err, ErrNodeUnreachable) {
		t.Fatalf("want ErrNodeUnreachable, got %v", err)
	}
}

// TestTCPResolverNoRecursionDuringMDSOutage: resolvers issue
// KResolveAddr through the same client (ecfs.Dial and ecfsd install
// exactly that shape), so a Call failure during an MDS outage must not
// re-enter resolve from inside the resolver — that mutual recursion has
// no base case and overflows the stack. The nested-resolve guard turns
// the outage into a prompt ErrNodeUnreachable.
func TestTCPResolverNoRecursionDuringMDSOutage(t *testing.T) {
	// Bind-then-close yields an address that refuses dials: an MDS that
	// is down but whose address is still known to the client.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close()

	cli := NewTCPClient(map[wire.NodeID]string{wire.MDSNode: dead})
	defer cli.Close()
	var resolves atomic.Int64
	cli.SetResolver(func(ctx context.Context) (map[wire.NodeID]string, error) {
		resolves.Add(1)
		r, err := cli.Call(ctx, wire.MDSNode, &wire.Msg{Kind: wire.KResolveAddr})
		if err != nil {
			return nil, err
		}
		return wire.DecodeAddrMap(r.Data)
	})

	// Node 5 has no address, so Call consults the resolver; its inner
	// KResolveAddr call to the dead MDS fails and must not resolve again.
	if _, err := cli.Call(context.Background(), 5, &wire.Msg{Kind: wire.KPing}); !errors.Is(err, ErrNodeUnreachable) {
		t.Fatalf("want ErrNodeUnreachable, got %v", err)
	}
	// Calling the dead MDS directly recurses through the retry loop
	// instead of poolFor; it must bottom out the same way.
	if _, err := cli.Call(context.Background(), wire.MDSNode, &wire.Msg{Kind: wire.KResolveAddr}); !errors.Is(err, ErrNodeUnreachable) {
		t.Fatalf("want ErrNodeUnreachable, got %v", err)
	}
	if n := resolves.Load(); n == 0 || n > 2*tcpAttempts {
		t.Fatalf("resolver consulted %d times, want between 1 and %d", n, 2*tcpAttempts)
	}
}

// TestTCPResolverSharedFlight: a shard-style fan-out that misses many
// addresses at once must share one in-flight resolve — concurrent Calls
// wait for its outcome and succeed, instead of failing fast (or
// dogpiling the MDS) while it runs.
func TestTCPResolverSharedFlight(t *testing.T) {
	srv, err := ServeTCP(1, "127.0.0.1:0", echoHandler(1))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli := NewTCPClient(nil) // node 1's address is only discoverable
	defer cli.Close()
	var resolves atomic.Int64
	cli.SetResolver(func(ctx context.Context) (map[wire.NodeID]string, error) {
		resolves.Add(1)
		time.Sleep(100 * time.Millisecond) // a slow MDS round trip
		return map[wire.NodeID]string{1: srv.Addr()}, nil
	})

	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = cli.Call(context.Background(), 1, &wire.Msg{Kind: wire.KPing})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("concurrent call %d during resolve: %v", i, err)
		}
	}
	if n := resolves.Load(); n == 0 || n > 3 {
		t.Fatalf("resolver invoked %d times, want one shared flight (1..3)", n)
	}
}

// TestTCPResolverFlightFailureNotAdopted: a resolve flight that dies on
// its owner's expiring context must not doom waiters with live contexts
// — they retry the resolve for themselves and succeed.
func TestTCPResolverFlightFailureNotAdopted(t *testing.T) {
	srv, err := ServeTCP(1, "127.0.0.1:0", echoHandler(1))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli := NewTCPClient(nil)
	defer cli.Close()
	var calls atomic.Int64
	entered := make(chan struct{})
	cli.SetResolver(func(ctx context.Context) (map[wire.NodeID]string, error) {
		if calls.Add(1) == 1 {
			close(entered)
			<-ctx.Done() // first flight stalls until its owner's ctx dies
			return nil, ctx.Err()
		}
		return map[wire.NodeID]string{1: srv.Addr()}, nil
	})

	ownerCtx, cancelOwner := context.WithCancel(context.Background())
	ownerErr := make(chan error, 1)
	go func() {
		_, err := cli.Call(ownerCtx, 1, &wire.Msg{Kind: wire.KPing})
		ownerErr <- err
	}()
	<-entered // the owner's resolve flight is in progress
	waiterErr := make(chan error, 1)
	go func() {
		_, err := cli.Call(context.Background(), 1, &wire.Msg{Kind: wire.KPing})
		waiterErr <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the waiter join the flight
	cancelOwner()
	if err := <-waiterErr; err != nil {
		t.Fatalf("waiter must resolve for itself after the owner's flight dies: %v", err)
	}
	if err := <-ownerErr; err == nil {
		t.Fatal("owner's cancelled call must fail")
	}
}

// TestInprocCancelBetweenPricedSteps: the in-process transport refuses
// dispatch once the context is cancelled.
func TestInprocCancelBetweenPricedSteps(t *testing.T) {
	tr := NewInproc(nil)
	tr.Register(1, echoHandler(1))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := tr.Caller(2).Call(ctx, 1, &wire.Msg{Kind: wire.KPing}); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// ErrNodeDown wraps ErrNodeUnreachable.
	tr.Deregister(1)
	if _, err := tr.Caller(2).Call(context.Background(), 1, &wire.Msg{Kind: wire.KPing}); !errors.Is(err, ErrNodeUnreachable) {
		t.Fatalf("want ErrNodeUnreachable, got %v", err)
	}
}

// TestAddrMapCodec round-trips the wire address map.
func TestAddrMapCodec(t *testing.T) {
	in := map[wire.NodeID]string{0: "10.0.0.1:7000", 3: "127.0.0.1:9", 77: "[::1]:80"}
	enc, err := wire.EncodeAddrMap(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := wire.DecodeAddrMap(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d entries, want %d", len(out), len(in))
	}
	for id, a := range in {
		if out[id] != a {
			t.Fatalf("node %d: %q != %q", id, out[id], a)
		}
	}
	if _, err := wire.DecodeAddrMap([]byte{1, 2, 3}); err == nil {
		t.Fatal("truncated map must fail to decode")
	}
}
