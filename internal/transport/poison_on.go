//go:build poolpoison

package transport

// poolPoisonBuild arms the pooled response-buffer misuse detector
// (poison-on-release, panic on double release, attach/release
// accounting) for the whole build: `go test -tags poolpoison ./...`
// turns every double release into a panic and every use-after-release
// into a loud 0xDB read across the entire suite.
const poolPoisonBuild = true
