package transport

import (
	"bufio"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/wire"
)

// Frame format: 4-byte big-endian length, then a gob-encoded frame body.
// Each connection carries a strictly alternating request/response stream;
// the client pool opens one connection per in-flight call slot.

const maxFrameSize = 64 << 20 // refuse absurd frames rather than OOM

type frame struct {
	Msg  *wire.Msg
	Resp *wire.Resp
}

func writeFrame(w *bufio.Writer, f *frame) error {
	var buf encodeBuffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(f); err != nil {
		return fmt.Errorf("transport: encode: %w", err)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(buf.b)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(buf.b); err != nil {
		return err
	}
	return w.Flush()
}

func readFrame(r *bufio.Reader) (*frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrameSize {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	var f frame
	if err := gob.NewDecoder(&sliceReader{b: body}).Decode(&f); err != nil {
		return nil, fmt.Errorf("transport: decode: %w", err)
	}
	return &f, nil
}

type encodeBuffer struct{ b []byte }

func (e *encodeBuffer) Write(p []byte) (int, error) {
	e.b = append(e.b, p...)
	return len(p), nil
}

type sliceReader struct {
	b []byte
	i int
}

func (s *sliceReader) Read(p []byte) (int, error) {
	if s.i >= len(s.b) {
		return 0, io.EOF
	}
	n := copy(p, s.b[s.i:])
	s.i += n
	return n, nil
}

// TCPServer serves a node's handler on a listener.
type TCPServer struct {
	id      wire.NodeID
	handler Handler
	ln      net.Listener

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// ServeTCP starts serving handler for node id on addr ("host:port",
// ":0" for an ephemeral port). It returns once the listener is bound.
func ServeTCP(id wire.NodeID, addr string, h Handler) (*TCPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	s := &TCPServer{id: id, handler: h, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *TCPServer) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and all connections.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *TCPServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	r := bufio.NewReaderSize(conn, 256<<10)
	w := bufio.NewWriterSize(conn, 256<<10)
	for {
		f, err := readFrame(r)
		if err != nil {
			return
		}
		if f.Msg == nil {
			return
		}
		resp := s.handler(f.Msg)
		if resp == nil {
			resp = &wire.Resp{}
		}
		if err := writeFrame(w, &frame{Resp: resp}); err != nil {
			return
		}
	}
}

// TCPClient is an RPC over real sockets. It maintains a small pool of
// connections per destination address.
type TCPClient struct {
	mu    sync.Mutex
	addrs map[wire.NodeID]string
	pools map[wire.NodeID]*connPool
}

// NewTCPClient creates a client with a static node -> address map.
// Addresses can be added later with SetAddr.
func NewTCPClient(addrs map[wire.NodeID]string) *TCPClient {
	c := &TCPClient{addrs: make(map[wire.NodeID]string), pools: make(map[wire.NodeID]*connPool)}
	for id, a := range addrs {
		c.addrs[id] = a
	}
	return c
}

// SetAddr registers or updates a node's address.
func (c *TCPClient) SetAddr(id wire.NodeID, addr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.addrs[id] = addr
	delete(c.pools, id) // force reconnect to the new address
}

// Close closes all pooled connections.
func (c *TCPClient) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, p := range c.pools {
		p.closeAll()
	}
	c.pools = make(map[wire.NodeID]*connPool)
}

// Call implements RPC.
func (c *TCPClient) Call(to wire.NodeID, msg *wire.Msg) (*wire.Resp, error) {
	c.mu.Lock()
	pool := c.pools[to]
	if pool == nil {
		addr, ok := c.addrs[to]
		if !ok {
			c.mu.Unlock()
			return nil, fmt.Errorf("transport: no address for node %d", to)
		}
		pool = &connPool{addr: addr}
		c.pools[to] = pool
	}
	c.mu.Unlock()
	return pool.call(msg)
}

type pooledConn struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

type connPool struct {
	addr string
	mu   sync.Mutex
	free []*pooledConn
}

func (p *connPool) get() (*pooledConn, error) {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		pc := p.free[n-1]
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return pc, nil
	}
	p.mu.Unlock()
	conn, err := net.Dial("tcp", p.addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", p.addr, err)
	}
	return &pooledConn{
		conn: conn,
		r:    bufio.NewReaderSize(conn, 256<<10),
		w:    bufio.NewWriterSize(conn, 256<<10),
	}, nil
}

func (p *connPool) put(pc *pooledConn) {
	p.mu.Lock()
	if len(p.free) < 16 {
		p.free = append(p.free, pc)
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	pc.conn.Close()
}

func (p *connPool) closeAll() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, pc := range p.free {
		pc.conn.Close()
	}
	p.free = nil
}

func (p *connPool) call(msg *wire.Msg) (*wire.Resp, error) {
	pc, err := p.get()
	if err != nil {
		return nil, err
	}
	if err := writeFrame(pc.w, &frame{Msg: msg}); err != nil {
		pc.conn.Close()
		return nil, err
	}
	f, err := readFrame(pc.r)
	if err != nil {
		pc.conn.Close()
		return nil, err
	}
	p.put(pc)
	if f.Resp == nil {
		return nil, errors.New("transport: response frame missing body")
	}
	return f.Resp, nil
}
