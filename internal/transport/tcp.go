package transport

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wire"
)

// TCP framing (format v1).
//
// Every frame is a 13-byte header — 4-byte big-endian body length,
// 1-byte frame type (frameMsg or frameResp), 8-byte big-endian request
// id — followed by the body: one wire.Msg or wire.Resp in the binary
// codec of internal/wire (whose own leading byte is wire.FormatVersion).
//
// Connections are multiplexed: many calls are in flight on one
// connection at once, each tagged with a connection-scoped request id.
// On the client a writer goroutine drains the connection's queue and
// writes every queued frame in one writev-style flush (net.Buffers), and
// a reader goroutine demuxes responses to the waiting callers by id; the
// server mirrors the same structure with a handler goroutine per
// request. Encode buffers are sync.Pool-reused on both sides, so the
// steady-state data plane allocates only the response bodies that
// escape to callers.
//
// A peer still speaking the retired gob framing fails the frame-type or
// codec-version check and the connection is torn down with an error
// wrapping wire.ErrBadFormat — mixed gob/binary deployments are
// unsupported (docs/OPERATIONS.md).

const (
	maxFrameSize    = 64 << 20 // refuse absurd frames rather than OOM
	frameHeaderSize = 13
	frameMsg        = 0x01
	frameResp       = 0x02
)

// writeStallBudget bounds how long one flush may block on a peer that
// stopped draining its socket. A multiplexed connection cannot borrow
// any single call's deadline (other calls share the pipe), so this
// conn-level backstop is what keeps a hung peer from wedging the writer
// goroutine — and with it every future call on the connection — forever.
const writeStallBudget = 2 * time.Minute

// maxInflightPerConn caps concurrently executing handlers per server
// connection. The reader stops pulling frames once the cap is reached,
// so a flooding client is throttled by TCP backpressure instead of
// unbounded handler goroutines.
const maxInflightPerConn = 256

// pooledBufCap is the largest buffer capacity returned to the frame
// buffer pool; one-off giant frames are left for the collector instead
// of pinning their capacity forever.
const pooledBufCap = 4 << 20

// connReadBufSize is the buffered-reader size both read loops use. Only
// frame headers and sub-splice bodies are ever copied through it; see
// readBody.
const connReadBufSize = 256 << 10

// spliceThreshold is the body size at which readBody bypasses the
// buffered reader: the already-buffered prefix is drained, then the
// remainder is read straight off the socket into the destination
// buffer. Payload-class frames (KWriteBlock shards, KBlockFetch
// replies) are copied exactly once; control-sized frames stay on the
// buffered path so they keep amortizing syscalls.
const spliceThreshold = 32 << 10

var framePool = sync.Pool{New: func() any { b := make([]byte, 0, 4<<10); return &b }}

func getFrameBuf() *[]byte { return framePool.Get().(*[]byte) }

func putFrameBuf(b *[]byte) {
	if b == nil || cap(*b) > pooledBufCap {
		return
	}
	*b = (*b)[:0]
	framePool.Put(b)
}

// readerPool recycles the connection read buffers across connections
// and redials. A drain or outage churns every connection to a node;
// without the pool each redial allocated a fresh 256 KiB buffer.
var readerPool = sync.Pool{New: func() any { return bufio.NewReaderSize(nil, connReadBufSize) }}

func getReader(conn io.Reader) *bufio.Reader {
	r := readerPool.Get().(*bufio.Reader)
	r.Reset(conn)
	return r
}

func putReader(r *bufio.Reader) {
	r.Reset(nil) // a pooled reader pins no socket
	readerPool.Put(r)
}

// writeScratch is the reusable per-flush state of a writer goroutine:
// the writev vector and (client side) the per-frame sizes used to roll
// sent marks back after a failed flush. Held for the connection's
// lifetime and pooled across connections and redials.
type writeScratch struct {
	bufs  net.Buffers
	sizes []int64
}

var scratchPool = sync.Pool{New: func() any { return new(writeScratch) }}

func getScratch() *writeScratch { return scratchPool.Get().(*writeScratch) }

func putScratch(s *writeScratch) {
	for i := range s.bufs {
		s.bufs[i] = nil // do not pin frame buffers from the pool
	}
	s.bufs = s.bufs[:0]
	s.sizes = s.sizes[:0]
	scratchPool.Put(s)
}

// readBody fills body with one frame's payload. Bodies below
// spliceThreshold come out of the buffered reader as before; larger
// bodies are spliced past it — buffered prefix drained, remainder read
// with io.ReadFull directly from the connection — so a payload-sized
// frame lands in its destination buffer in one copy instead of
// bouncing through the 256 KiB bufio window first.
func readBody(r *bufio.Reader, conn io.Reader, body []byte) error {
	if len(body) >= spliceThreshold {
		if n := min(r.Buffered(), len(body)); n > 0 {
			if _, err := io.ReadFull(r, body[:n]); err != nil {
				return err
			}
			body = body[n:]
		}
		if len(body) == 0 {
			return nil
		}
		_, err := io.ReadFull(conn, body)
		return err
	}
	_, err := io.ReadFull(r, body)
	return err
}

// poolDebug arms the response-buffer misuse detector: releases poison
// the buffer (so use-after-release reads garbage loudly instead of
// silently observing recycled memory), a double Release panics, and
// attach/release pairs are counted so tests can assert that a code
// path returns every pooled buffer it took. Off by default — the
// poolpoison build tag arms it for whole debug builds, SetPoolDebug
// arms it at runtime for tests.
var poolDebug atomic.Bool

// poolOutstanding tracks pooled response buffers attached but not yet
// released while poolDebug is armed. Toggle debug only around balanced
// regions: buffers attached before arming are not counted.
var poolOutstanding atomic.Int64

func init() { poolDebug.Store(poolPoisonBuild) }

// SetPoolDebug toggles the pooled-buffer misuse detector at runtime
// (tests). See poolDebug.
func SetPoolDebug(on bool) { poolDebug.Store(on) }

// PoolDebugOutstanding reports attached-but-unreleased pooled response
// buffers counted while the detector was armed.
func PoolDebugOutstanding() int64 { return poolOutstanding.Load() }

// poisonByte overwrites released buffers in debug mode; 0xDB reads as
// garbage in any payload and is recognizable in a hex dump.
const poisonByte = 0xDB

// newBufRelease builds the wire.Resp release hook for one pooled
// response buffer: the first call returns the buffer to the pool, a
// redundant second call is absorbed (and panics under poolDebug —
// releasing a buffer twice would hand the same memory to two owners).
func newBufRelease(body *[]byte) func() {
	if poolDebug.Load() {
		poolOutstanding.Add(1)
	}
	var released atomic.Bool
	return func() {
		if !released.CompareAndSwap(false, true) {
			if poolDebug.Load() {
				panic("transport: pooled response buffer released twice")
			}
			return
		}
		if poolDebug.Load() {
			poolOutstanding.Add(-1)
			b := *body
			for i := range b {
				b[i] = poisonByte
			}
		}
		putFrameBuf(body)
	}
}

// appendMsgFrame appends a framed request to buf: header, then the
// message's binary encoding.
func appendMsgFrame(buf []byte, id uint64, m *wire.Msg) ([]byte, error) {
	n := m.WireSize()
	if n > maxFrameSize {
		return buf, fmt.Errorf("transport: %v frame of %d bytes exceeds the %d-byte limit", m.Kind, n, maxFrameSize)
	}
	buf = appendFrameHeader(buf, uint32(n), frameMsg, id)
	return m.AppendTo(buf), nil
}

// appendRespFrame appends a framed response to buf.
func appendRespFrame(buf []byte, id uint64, r *wire.Resp) ([]byte, error) {
	n := r.WireSize()
	if n > maxFrameSize {
		return buf, fmt.Errorf("transport: response frame of %d bytes exceeds the %d-byte limit", n, maxFrameSize)
	}
	buf = appendFrameHeader(buf, uint32(n), frameResp, id)
	return r.AppendTo(buf), nil
}

func appendFrameHeader(buf []byte, n uint32, typ byte, id uint64) []byte {
	var hdr [frameHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[0:4], n)
	hdr[4] = typ
	binary.BigEndian.PutUint64(hdr[5:13], id)
	return append(buf, hdr[:]...)
}

type frameHeader struct {
	n   uint32
	typ byte
	id  uint64
}

// readFrameHeader reads and validates one frame header. A peer speaking
// the retired gob framing shows up here as an unrecognized frame type —
// rejected with an error wrapping wire.ErrBadFormat rather than fed to
// the codec.
func readFrameHeader(r *bufio.Reader) (frameHeader, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return frameHeader{}, err
	}
	h := frameHeader{
		n:   binary.BigEndian.Uint32(hdr[0:4]),
		typ: hdr[4],
		id:  binary.BigEndian.Uint64(hdr[5:13]),
	}
	if h.n > maxFrameSize {
		return frameHeader{}, fmt.Errorf("transport: frame of %d bytes exceeds limit", h.n)
	}
	if h.typ != frameMsg && h.typ != frameResp {
		return frameHeader{}, fmt.Errorf("transport: unrecognized frame type 0x%02x: %w", h.typ, wire.ErrBadFormat)
	}
	return h, nil
}

// TCPServer serves a node's handler on a listener.
type TCPServer struct {
	id      wire.NodeID
	handler Handler
	ln      net.Listener

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// ServeTCP starts serving handler for node id on addr ("host:port",
// ":0" for an ephemeral port). It returns once the listener is bound.
// Requests on one connection are dispatched concurrently (bounded by
// maxInflightPerConn); Handler implementations are required to be safe
// for concurrent use on every transport.
func ServeTCP(id wire.NodeID, addr string, h Handler) (*TCPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	s := &TCPServer{id: id, handler: h, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *TCPServer) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and all connections.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// serveConn demuxes one client connection: the read loop decodes
// requests into pooled buffers and dispatches a goroutine per request;
// responses funnel through a shared frameWriter that coalesces
// concurrently finishing replies into single flushes. The request
// buffer is recycled as soon as the response has been encoded — the
// Handler contract (no retaining request payloads beyond the call)
// is what makes the pooling safe.
func (s *TCPServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	var reqWG sync.WaitGroup
	w := newFrameWriter(conn)
	defer func() {
		reqWG.Wait() // every in-flight handler has queued its response
		w.close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	r := getReader(conn)
	defer putReader(r)
	sem := make(chan struct{}, maxInflightPerConn)
	for {
		hdr, err := readFrameHeader(r)
		if err != nil || hdr.typ != frameMsg {
			return
		}
		body := getFrameBuf()
		if cap(*body) < int(hdr.n) {
			*body = make([]byte, hdr.n)
		}
		*body = (*body)[:hdr.n]
		if err := readBody(r, conn, *body); err != nil {
			putFrameBuf(body)
			return
		}
		msg := new(wire.Msg)
		if err := msg.Decode(*body); err != nil {
			putFrameBuf(body)
			return
		}
		sem <- struct{}{}
		reqWG.Add(1)
		go func(id uint64, msg *wire.Msg, body *[]byte) {
			defer func() { <-sem; reqWG.Done() }()
			// Cancellation is a client-side concern on TCP (the caller's
			// context does not cross the wire); handlers run to
			// completion under a background context.
			resp := s.handler(context.Background(), msg)
			if resp == nil {
				resp = &wire.Resp{}
			}
			out := getFrameBuf()
			framed, err := appendRespFrame((*out)[:0], id, resp)
			putFrameBuf(body) // the response encoding copied any aliased payload
			if err != nil {
				// Unencodable response (absurd payload): surface a
				// structured error instead of silently dropping the call.
				framed, _ = appendRespFrame((*out)[:0], id, &wire.Resp{Err: err.Error()})
			}
			*out = framed
			w.send(out)
		}(hdr.id, msg, body)
	}
}

// frameWriter coalesces frames queued by concurrent goroutines into
// single writev-style flushes on one connection. Buffers handed to
// send are owned by the writer and recycled after the flush.
type frameWriter struct {
	conn net.Conn

	mu     sync.Mutex
	queue  []*[]byte
	err    error
	closed bool
	wake   chan struct{}
	done   chan struct{}
}

func newFrameWriter(conn net.Conn) *frameWriter {
	w := &frameWriter{conn: conn, wake: make(chan struct{}, 1), done: make(chan struct{})}
	go w.loop()
	return w
}

// send queues one encoded frame for the next flush.
func (w *frameWriter) send(buf *[]byte) {
	w.mu.Lock()
	if w.err != nil || w.closed {
		w.mu.Unlock()
		putFrameBuf(buf)
		return
	}
	w.queue = append(w.queue, buf)
	w.mu.Unlock()
	select {
	case w.wake <- struct{}{}:
	default:
	}
}

// close stops the writer after the current flush and waits for it.
func (w *frameWriter) close() {
	w.mu.Lock()
	w.closed = true
	w.mu.Unlock()
	select {
	case w.wake <- struct{}{}:
	default:
	}
	<-w.done
}

func (w *frameWriter) loop() {
	defer close(w.done)
	scratch := getScratch()
	defer putScratch(scratch)
	for {
		<-w.wake
		for {
			w.mu.Lock()
			batch := w.queue
			w.queue = nil
			closed, err := w.closed, w.err
			w.mu.Unlock()
			if len(batch) == 0 {
				if closed {
					return
				}
				break // wait for the next wake
			}
			if err == nil {
				err = flushFrames(w.conn, batch, scratch)
				if err != nil {
					w.mu.Lock()
					w.err = err
					w.mu.Unlock()
				}
			}
			for _, b := range batch {
				putFrameBuf(b)
			}
		}
	}
}

// flushFrames writes a batch of frames with one writev-style call,
// assembling the vector in the writer's pooled scratch.
func flushFrames(conn net.Conn, batch []*[]byte, scratch *writeScratch) error {
	bufs := scratch.bufs[:0]
	for _, b := range batch {
		bufs = append(bufs, *b)
	}
	scratch.bufs = bufs
	conn.SetWriteDeadline(time.Now().Add(writeStallBudget))
	_, err := bufs.WriteTo(conn)
	return err
}

// AddrResolver fetches a fresh node address map — typically by asking
// the MDS with wire.KResolveAddr. The TCP client calls it when a
// destination has no known address or a call to a known address fails,
// which is how a pool follows replacement nodes with no manual SetAddr.
//
// A resolver that issues Calls on the same client (the usual shape)
// MUST thread the provided ctx into them: it carries the re-entrancy
// guard that keeps a failing KResolveAddr call from recursively
// triggering another resolve while the MDS is unreachable.
type AddrResolver func(ctx context.Context) (map[wire.NodeID]string, error)

// resolverCtxKey marks contexts handed to an AddrResolver (the value is
// the *TCPClient whose resolver is running), so Calls the resolver
// issues on the same client never start a nested resolve — while a
// different client reached through the same ctx still resolves freely.
type resolverCtxKey struct{}

// resolveFlight is one in-flight resolver invocation; concurrent
// callers wait on done and share ok instead of dogpiling the MDS.
type resolveFlight struct {
	done chan struct{}
	ok   bool
}

// TCPClient is an RPC over real sockets. It maintains one multiplexed
// connection per destination: concurrent calls are pipelined on it with
// per-call request ids, their frames coalesced into shared flushes by
// the connection's writer goroutine, and responses demuxed to waiting
// callers by the reader.
//
// Reliability: a cancelled or deadline-expired ctx abandons the call
// immediately (the response, if one ever arrives, is discarded by the
// demux), so a Call unblocks without waiting out the round-trip. A call
// that fails at the connection level is retried on a fresh connection
// when the message kind is idempotent (wire.Kind.Idempotent) — a
// connection may have died with the server's previous incarnation — or
// when the frame provably never left the client (it had not been
// flushed when the connection failed), and, when an AddrResolver is
// set, the address map is re-resolved first, so a node restarted on a
// new port or a replacement under a fresh id is found without SetAddr.
type TCPClient struct {
	mu       sync.Mutex
	addrs    map[wire.NodeID]string
	conns    map[wire.NodeID]*connSlot
	flushes  map[wire.NodeID]*atomic.Int64 // writev flushes per destination, across redials
	resolver AddrResolver
	flight   *resolveFlight // in-flight resolve shared by concurrent callers
	closed   bool
}

// tcpAttempts bounds connection-level attempts per Call (initial try
// plus reconnect/re-resolve retries).
const tcpAttempts = 3

// errNoAddr marks the terminal "no address and none resolvable" state;
// unlike a dial or connection failure it is not worth burning retry
// attempts on.
var errNoAddr = errors.New("no address")

// NewTCPClient creates a client with a static node -> address map.
// Addresses can be added later with SetAddr or discovered through an
// AddrResolver (SetResolver).
func NewTCPClient(addrs map[wire.NodeID]string) *TCPClient {
	c := &TCPClient{
		addrs:   make(map[wire.NodeID]string),
		conns:   make(map[wire.NodeID]*connSlot),
		flushes: make(map[wire.NodeID]*atomic.Int64),
	}
	for id, a := range addrs {
		c.addrs[id] = a
	}
	return c
}

// DestFlushes reports how many writev flushes this client has issued to
// a destination, summed across every connection ever dialed to it. One
// batched fan-out enters the write queue contiguously and leaves in one
// flush, so this is the observable the write-coalescing tests assert
// on: N stripes coalesced to one destination cost one flush, not N.
func (c *TCPClient) DestFlushes(to wire.NodeID) int64 {
	c.mu.Lock()
	ctr := c.flushes[to]
	c.mu.Unlock()
	if ctr == nil {
		return 0
	}
	return ctr.Load()
}

// flushCounterLocked returns the destination's flush counter, creating
// it on first use. Caller holds c.mu.
func (c *TCPClient) flushCounterLocked(to wire.NodeID) *atomic.Int64 {
	ctr := c.flushes[to]
	if ctr == nil {
		ctr = new(atomic.Int64)
		c.flushes[to] = ctr
	}
	return ctr
}

// SetAddr registers or updates a node's address.
func (c *TCPClient) SetAddr(id wire.NodeID, addr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.setAddrLocked(id, addr)
}

func (c *TCPClient) setAddrLocked(id wire.NodeID, addr string) {
	if c.addrs[id] == addr {
		return
	}
	c.addrs[id] = addr
	if slot := c.conns[id]; slot != nil {
		slot.shutdown() // force reconnect to the new address
		delete(c.conns, id)
	}
}

// SetResolver installs the address resolver consulted when a node has no
// known address or a call to its known address fails.
func (c *TCPClient) SetResolver(r AddrResolver) {
	c.mu.Lock()
	c.resolver = r
	c.mu.Unlock()
}

// UpdateAddrs merges a resolved address map; nodes whose address changed
// get their connection dropped so the next call redials.
func (c *TCPClient) UpdateAddrs(addrs map[wire.NodeID]string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for id, a := range addrs {
		c.setAddrLocked(id, a)
	}
}

// Addr returns the client's current address for a node ("" if unknown).
func (c *TCPClient) Addr(id wire.NodeID) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.addrs[id]
}

// Close closes all connections.
func (c *TCPClient) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for _, slot := range c.conns {
		slot.shutdown()
	}
	c.conns = make(map[wire.NodeID]*connSlot)
}

// resolve refreshes the address map through the resolver, if any.
// Reports whether a refresh happened.
//
// Two re-entry shapes are handled. (1) Recursion: resolvers issue
// KResolveAddr through this same client, and that inner Call must not
// trigger another resolve when the MDS itself is unreachable — the
// mutual recursion would never bottom out, so the resolver runs under a
// ctx marked with this client that makes nested resolves return false
// immediately and an MDS outage surfaces as ErrNodeUnreachable instead
// of a stack overflow. (2) Concurrency: a shard fan-out can miss many
// addresses at once, so callers that find a resolve already in flight
// wait for it and share a success rather than failing fast or dogpiling
// the MDS. A shared *failure* is not adopted: the flight may have died
// on its owner's expiring context, so a waiter whose own ctx is still
// live loops and resolves for itself.
func (c *TCPClient) resolve(ctx context.Context) bool {
	if ctx.Value(resolverCtxKey{}) == c {
		return false // issued by this client's own resolver: never recurse
	}
	for {
		c.mu.Lock()
		r := c.resolver
		if r == nil || c.closed {
			c.mu.Unlock()
			return false
		}
		f := c.flight
		owner := f == nil
		if owner {
			f = &resolveFlight{done: make(chan struct{})}
			c.flight = f
		}
		c.mu.Unlock()
		if owner {
			return c.runResolveFlight(ctx, r, f)
		}
		select {
		case <-f.done:
			if f.ok || ctx.Err() != nil {
				return f.ok
			}
			// The flight failed, possibly on its owner's context rather
			// than the MDS; try again under our own.
		case <-ctx.Done():
			return false
		}
	}
}

// runResolveFlight invokes the resolver once as the owner of f, records
// the outcome for waiters, and clears the flight.
func (c *TCPClient) runResolveFlight(ctx context.Context, r AddrResolver, f *resolveFlight) bool {
	defer func() {
		c.mu.Lock()
		c.flight = nil
		c.mu.Unlock()
		close(f.done)
	}()
	addrs, err := r(context.WithValue(ctx, resolverCtxKey{}, c))
	if err != nil || len(addrs) == 0 {
		return false
	}
	c.UpdateAddrs(addrs)
	f.ok = true
	return true
}

// connFor returns a live multiplexed connection to a node, resolving
// its address first if unknown and dialing (single-flight per node) if
// none is up. A returned error wrapping errNoAddr is terminal for the
// call; any other error is a dial failure worth a retry.
func (c *TCPClient) connFor(ctx context.Context, to wire.NodeID) (*muxConn, string, error) {
	for attempt := 0; ; attempt++ {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return nil, "", fmt.Errorf("transport: client closed: %w: %w", errNoAddr, ErrNodeUnreachable)
		}
		if slot := c.conns[to]; slot != nil {
			c.mu.Unlock()
			mc, err := slot.get(ctx)
			return mc, slot.addr, err
		}
		if addr, ok := c.addrs[to]; ok {
			slot := &connSlot{addr: addr, flushes: c.flushCounterLocked(to)}
			c.conns[to] = slot
			c.mu.Unlock()
			mc, err := slot.get(ctx)
			return mc, slot.addr, err
		}
		c.mu.Unlock()
		if attempt > 0 || !c.resolve(ctx) {
			return nil, "", fmt.Errorf("transport: no address for node %d: %w: %w", to, errNoAddr, ErrNodeUnreachable)
		}
	}
}

// connSlot is the per-destination connection holder: one live muxConn,
// re-dialed on demand with a single-flight guard so a shard fan-out
// that finds the connection dead does not dogpile the destination with
// parallel dials.
type connSlot struct {
	addr    string
	flushes *atomic.Int64 // owning client's per-destination flush counter

	mu      sync.Mutex
	conn    *muxConn
	dialing chan struct{} // non-nil while a dial is in flight
}

func (s *connSlot) get(ctx context.Context) (*muxConn, error) {
	for {
		s.mu.Lock()
		if s.conn != nil && !s.conn.broken() {
			mc := s.conn
			s.mu.Unlock()
			return mc, nil
		}
		s.conn = nil
		if s.dialing == nil {
			ch := make(chan struct{})
			s.dialing = ch
			s.mu.Unlock()
			mc, err := dialMux(ctx, s.addr, s.flushes)
			s.mu.Lock()
			s.dialing = nil
			if err == nil {
				s.conn = mc
			}
			s.mu.Unlock()
			close(ch)
			return mc, err
		}
		ch := s.dialing
		s.mu.Unlock()
		select {
		case <-ch:
			// Re-check: adopt the dialer's fresh connection, or — if its
			// dial failed, possibly on its own shorter ctx — dial for
			// ourselves on the next pass.
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

func (s *connSlot) shutdown() {
	s.mu.Lock()
	mc := s.conn
	s.conn = nil
	s.mu.Unlock()
	if mc != nil {
		mc.shutdown()
	}
}

// Call implements RPC.
func (c *TCPClient) Call(ctx context.Context, to wire.NodeID, msg *wire.Msg) (*wire.Resp, error) {
	bc := BatchCall{To: to, Msg: msg}
	c.callGroup(ctx, to, []*BatchCall{&bc})
	return bc.Resp, bc.Err
}

// CallBatch implements BatchRPC: calls are grouped per destination and
// every group enters its connection's write queue together, so one
// stripe's same-destination frames leave in a single coalesced flush.
// Per-call results land in each BatchCall; retry and re-resolve rules
// are identical to Call's.
func (c *TCPClient) CallBatch(ctx context.Context, calls []*BatchCall) {
	groups := make(map[wire.NodeID][]*BatchCall, len(calls))
	order := make([]wire.NodeID, 0, len(calls))
	for _, bc := range calls {
		if _, ok := groups[bc.To]; !ok {
			order = append(order, bc.To)
		}
		groups[bc.To] = append(groups[bc.To], bc)
	}
	if len(order) == 1 {
		c.callGroup(ctx, order[0], calls)
		return
	}
	var wg sync.WaitGroup
	for _, to := range order {
		wg.Add(1)
		go func(to wire.NodeID, group []*BatchCall) {
			defer wg.Done()
			c.callGroup(ctx, to, group)
		}(to, groups[to])
	}
	wg.Wait()
}

// callGroup delivers a set of calls to one destination, enqueueing
// their frames together (one flush) and applying Call's retry policy
// per call: a frame that provably never left the client retries freely,
// a frame that may have been delivered retries only for idempotent
// kinds, and the address map is re-resolved between attempts.
func (c *TCPClient) callGroup(ctx context.Context, to wire.NodeID, calls []*BatchCall) {
	pending := make([]*BatchCall, len(calls))
	copy(pending, calls)
	lastErr := make(map[*BatchCall]error, len(calls))
	fail := func(bc *BatchCall, err error) { bc.Resp, bc.Err = nil, err }
	for attempt := 0; attempt < tcpAttempts && len(pending) > 0; attempt++ {
		if err := ctx.Err(); err != nil {
			for _, bc := range pending {
				fail(bc, fmt.Errorf("transport: call %v to node %d: %w", bc.Msg.Kind, to, err))
			}
			return
		}
		mc, addr, err := c.connFor(ctx, to)
		if err != nil {
			if errors.Is(err, errNoAddr) {
				// Terminal: nothing to dial and nothing resolved. Prefer
				// the more specific earlier failure when there was one.
				for _, bc := range pending {
					if le := lastErr[bc]; le != nil {
						fail(bc, le)
					} else {
						fail(bc, err)
					}
				}
				return
			}
			werr := fmt.Errorf("transport: call to node %d at %s: %v: %w", to, addr, err, ErrNodeUnreachable)
			if ctx.Err() != nil {
				for _, bc := range pending {
					fail(bc, fmt.Errorf("transport: call %v to node %d: %w", bc.Msg.Kind, to, ctx.Err()))
				}
				return
			}
			for _, bc := range pending {
				lastErr[bc] = werr
			}
			c.resolve(ctx)
			continue
		}
		msgs := make([]*wire.Msg, len(pending))
		for i, bc := range pending {
			msgs[i] = bc.Msg
		}
		results := mc.do(ctx, msgs)
		var next []*BatchCall
		for i, r := range results {
			bc := pending[i]
			if r.err == nil {
				bc.Resp, bc.Err = r.resp, nil
				continue
			}
			if r.ctxDone {
				fail(bc, fmt.Errorf("transport: call %v to node %d: %w", bc.Msg.Kind, to, r.err))
				continue
			}
			le := fmt.Errorf("transport: call %v to node %d at %s: %v: %w", bc.Msg.Kind, to, addr, r.err, ErrNodeUnreachable)
			lastErr[bc] = le
			if r.sent && !bc.Msg.Kind.Idempotent() {
				// The frame may have been delivered and applied; a
				// non-idempotent request is never re-sent on doubt.
				fail(bc, le)
				continue
			}
			next = append(next, bc)
		}
		if ctx.Err() != nil {
			for _, bc := range next {
				fail(bc, fmt.Errorf("transport: call %v to node %d: %w", bc.Msg.Kind, to, ctx.Err()))
			}
			return
		}
		pending = next
		if len(pending) > 0 {
			// The node may have moved; refresh the map before redialing.
			c.resolve(ctx)
		}
	}
	for _, bc := range pending {
		fail(bc, lastErr[bc])
	}
}

// muxResult is the connection-level outcome of one call attempt.
type muxResult struct {
	resp    *wire.Resp
	err     error
	sent    bool // the frame may have reached the server
	ctxDone bool // err is the caller's ctx error, not a connection failure
}

// muxCall is one in-flight request on a muxConn.
type muxCall struct {
	id   uint64
	buf  *[]byte // encoded frame; owned by the writer once queued
	done chan struct{}
	resp *wire.Resp
	err  error
	sent bool // guarded by muxConn.mu until done is closed
}

// muxConn is one multiplexed client connection. Callers enqueue encoded
// frames and wait per call; the writer goroutine drains the queue in
// coalesced writev flushes and the reader demuxes responses by id.
type muxConn struct {
	conn    net.Conn
	flushes *atomic.Int64 // per-destination flush counter (may be nil)

	mu      sync.Mutex
	nextID  uint64
	queue   []*muxCall
	pending map[uint64]*muxCall
	err     error // sticky; the connection is dead once set
	wake    chan struct{}
}

// errConnClosed marks frames failed by a deliberate local shutdown
// (Close or an address change), as opposed to a peer/network failure.
var errConnClosed = errors.New("connection closed")

func dialMux(ctx context.Context, addr string, flushes *atomic.Int64) (*muxConn, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	mc := &muxConn{
		conn:    conn,
		flushes: flushes,
		pending: make(map[uint64]*muxCall),
		wake:    make(chan struct{}, 1),
	}
	go mc.writeLoop()
	go mc.readLoop()
	return mc, nil
}

func (mc *muxConn) broken() bool {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	return mc.err != nil
}

func (mc *muxConn) shutdown() { mc.fail(errConnClosed) }

// fail marks the connection dead and completes every queued and pending
// call with err. Calls still sitting in the write queue provably never
// left (sent stays false); calls already handed to the writer keep
// whatever sent state the writer established. Idempotent by design —
// the first failure wins.
func (mc *muxConn) fail(err error) {
	mc.mu.Lock()
	if mc.err != nil {
		mc.mu.Unlock()
		return
	}
	mc.err = err
	queued := mc.queue
	mc.queue = nil
	for _, call := range queued {
		putFrameBuf(call.buf)
		call.buf = nil
		delete(mc.pending, call.id)
		call.err = err
		close(call.done)
	}
	pending := mc.pending
	mc.pending = make(map[uint64]*muxCall)
	for _, call := range pending {
		call.err = err
		close(call.done)
	}
	mc.mu.Unlock()
	select {
	case mc.wake <- struct{}{}: // unstick an idle writer so it exits
	default:
	}
	mc.conn.Close()
}

// enqueue encodes msgs and adds their frames to the write queue in one
// critical section — a batch enters the queue contiguously and is
// flushed together — then wakes the writer once.
func (mc *muxConn) enqueue(msgs []*wire.Msg) ([]*muxCall, error) {
	calls := make([]*muxCall, len(msgs))
	encoded := make([]*[]byte, len(msgs))
	for i, m := range msgs {
		buf := getFrameBuf()
		mc.mu.Lock()
		mc.nextID++
		id := mc.nextID
		mc.mu.Unlock()
		framed, err := appendMsgFrame((*buf)[:0], id, m)
		if err != nil {
			putFrameBuf(buf)
			for _, b := range encoded[:i] {
				putFrameBuf(b)
			}
			return nil, err
		}
		*buf = framed
		encoded[i] = buf
		calls[i] = &muxCall{id: id, buf: buf, done: make(chan struct{})}
	}
	mc.mu.Lock()
	if err := mc.err; err != nil {
		mc.mu.Unlock()
		for _, b := range encoded {
			putFrameBuf(b)
		}
		return nil, err
	}
	for _, call := range calls {
		mc.queue = append(mc.queue, call)
		mc.pending[call.id] = call
	}
	mc.mu.Unlock()
	select {
	case mc.wake <- struct{}{}:
	default:
	}
	return calls, nil
}

// do runs a batch of calls on the connection and reports each one's
// outcome. A done ctx abandons the remaining calls instantly: their
// frames are withdrawn from the write queue when still unsent, and any
// late responses are dropped by the demux.
func (mc *muxConn) do(ctx context.Context, msgs []*wire.Msg) []muxResult {
	results := make([]muxResult, len(msgs))
	calls, err := mc.enqueue(msgs)
	if err != nil {
		for i := range results {
			results[i] = muxResult{err: err}
		}
		return results
	}
	for i, call := range calls {
		select {
		case <-call.done:
			results[i] = muxResult{resp: call.resp, err: call.err, sent: call.sent}
		case <-ctx.Done():
			results[i] = muxResult{err: ctx.Err(), sent: mc.abandon(call), ctxDone: true}
		}
	}
	return results
}

// abandon withdraws a call after its caller's ctx fired: the frame is
// pulled from the write queue when still unsent, and the pending entry
// is removed so a late response is discarded. Reports whether the frame
// may have reached the server.
func (mc *muxConn) abandon(call *muxCall) (sent bool) {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	select {
	case <-call.done:
		// Completed while we were abandoning; report its real state.
		return call.sent
	default:
	}
	for i, qc := range mc.queue {
		if qc == call {
			mc.queue = append(mc.queue[:i], mc.queue[i+1:]...)
			putFrameBuf(call.buf)
			call.buf = nil
			break
		}
	}
	delete(mc.pending, call.id)
	return call.sent
}

// writeLoop drains the queue, coalescing everything queued since the
// last flush into one writev-style write. Frames are marked sent before
// the flush begins; after a write error the unwritten tail is
// downgraded back to unsent (those frames provably never left), the
// boundary frame staying sent — a truncated frame cannot be decoded by
// the server, but conservatively counting it keeps a non-idempotent
// request from ever being re-sent on doubt.
func (mc *muxConn) writeLoop() {
	scratch := getScratch()
	defer putScratch(scratch)
	for range mc.wake {
		for {
			mc.mu.Lock()
			if mc.err != nil {
				mc.mu.Unlock()
				return
			}
			batch := mc.queue
			mc.queue = nil
			bufs := scratch.bufs[:0]
			sizes := scratch.sizes[:0]
			for _, call := range batch {
				call.sent = true
				bufs = append(bufs, *call.buf)
				sizes = append(sizes, int64(len(*call.buf)))
			}
			scratch.bufs, scratch.sizes = bufs, sizes
			mc.mu.Unlock()
			if len(batch) == 0 {
				break // back to waiting on wake
			}
			if mc.flushes != nil {
				mc.flushes.Add(1)
			}
			mc.conn.SetWriteDeadline(time.Now().Add(writeStallBudget))
			written, err := bufs.WriteTo(mc.conn)
			if err != nil {
				// Frames starting at or beyond the written-byte mark
				// provably never left; the boundary frame (partially
				// written) stays sent even though a truncated frame can
				// never be decoded — conservative, so a non-idempotent
				// request is never re-sent on doubt.
				mc.mu.Lock()
				var prefix int64
				for i, call := range batch {
					if prefix >= written {
						select {
						case <-call.done:
							// Already completed (a concurrent fail);
							// its sent state is final — never mutate
							// after the waiter may read it.
						default:
							call.sent = false
						}
					}
					prefix += sizes[i]
				}
				mc.mu.Unlock()
				for _, call := range batch {
					putFrameBuf(call.buf)
					call.buf = nil
				}
				mc.fail(err)
				return
			}
			for _, call := range batch {
				putFrameBuf(call.buf)
				call.buf = nil
			}
		}
	}
}

// readLoop demuxes response frames to their waiting calls. Any read or
// decode failure — including a peer speaking the retired gob framing,
// surfaced as wire.ErrBadFormat — kills the connection and fails every
// in-flight call.
//
// Response bodies are decoded into pooled buffers (payload-sized frames
// spliced past the bufio layer, see readBody) and handed to the caller
// with a wire.Resp release hook: the caller that is done with Resp.Data
// calls Release() to return the buffer, and a caller that forgets
// merely costs the pool a miss — the collector still owns the memory.
func (mc *muxConn) readLoop() {
	r := getReader(mc.conn)
	defer putReader(r)
	for {
		hdr, err := readFrameHeader(r)
		if err != nil {
			mc.fail(err)
			return
		}
		if hdr.typ != frameResp {
			mc.fail(fmt.Errorf("transport: request frame on the client side: %w", wire.ErrBadFormat))
			return
		}
		body := getFrameBuf()
		if cap(*body) < int(hdr.n) {
			*body = make([]byte, hdr.n)
		}
		*body = (*body)[:hdr.n]
		if err := readBody(r, mc.conn, *body); err != nil {
			putFrameBuf(body)
			mc.fail(err)
			return
		}
		resp := new(wire.Resp)
		if err := resp.Decode(*body); err != nil {
			putFrameBuf(body)
			mc.fail(fmt.Errorf("transport: decode response: %w", err))
			return
		}
		resp.AttachRelease(newBufRelease(body))
		mc.mu.Lock()
		call := mc.pending[hdr.id]
		delete(mc.pending, hdr.id)
		if call != nil {
			call.resp = resp
			close(call.done)
		}
		mc.mu.Unlock()
		if call == nil {
			// Abandoned or unknown id: nobody will ever release it.
			resp.Release()
		}
	}
}
