package transport

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/wire"
)

// Frame format: 4-byte big-endian length, then a gob-encoded frame body.
// Each connection carries a strictly alternating request/response stream;
// the client pool opens one connection per in-flight call slot.

const maxFrameSize = 64 << 20 // refuse absurd frames rather than OOM

type frame struct {
	Msg  *wire.Msg
	Resp *wire.Resp
}

func writeFrame(w *bufio.Writer, f *frame) error {
	var buf encodeBuffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(f); err != nil {
		return fmt.Errorf("transport: encode: %w", err)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(buf.b)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(buf.b); err != nil {
		return err
	}
	return w.Flush()
}

func readFrame(r *bufio.Reader) (*frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrameSize {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	var f frame
	if err := gob.NewDecoder(&sliceReader{b: body}).Decode(&f); err != nil {
		return nil, fmt.Errorf("transport: decode: %w", err)
	}
	return &f, nil
}

type encodeBuffer struct{ b []byte }

func (e *encodeBuffer) Write(p []byte) (int, error) {
	e.b = append(e.b, p...)
	return len(p), nil
}

type sliceReader struct {
	b []byte
	i int
}

func (s *sliceReader) Read(p []byte) (int, error) {
	if s.i >= len(s.b) {
		return 0, io.EOF
	}
	n := copy(p, s.b[s.i:])
	s.i += n
	return n, nil
}

// TCPServer serves a node's handler on a listener.
type TCPServer struct {
	id      wire.NodeID
	handler Handler
	ln      net.Listener

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// ServeTCP starts serving handler for node id on addr ("host:port",
// ":0" for an ephemeral port). It returns once the listener is bound.
func ServeTCP(id wire.NodeID, addr string, h Handler) (*TCPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	s := &TCPServer{id: id, handler: h, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *TCPServer) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and all connections.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *TCPServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	r := bufio.NewReaderSize(conn, 256<<10)
	w := bufio.NewWriterSize(conn, 256<<10)
	for {
		f, err := readFrame(r)
		if err != nil {
			return
		}
		if f.Msg == nil {
			return
		}
		// Cancellation is a client-side concern on TCP (the caller's
		// context does not cross the wire); handlers run to completion
		// under a background context.
		resp := s.handler(context.Background(), f.Msg)
		if resp == nil {
			resp = &wire.Resp{}
		}
		if err := writeFrame(w, &frame{Resp: resp}); err != nil {
			return
		}
	}
}

// AddrResolver fetches a fresh node address map — typically by asking
// the MDS with wire.KResolveAddr. The TCP client calls it when a
// destination has no known address or a call to a known address fails,
// which is how a pool follows replacement nodes with no manual SetAddr.
//
// A resolver that issues Calls on the same client (the usual shape)
// MUST thread the provided ctx into them: it carries the re-entrancy
// guard that keeps a failing KResolveAddr call from recursively
// triggering another resolve while the MDS is unreachable.
type AddrResolver func(ctx context.Context) (map[wire.NodeID]string, error)

// resolverCtxKey marks contexts handed to an AddrResolver (the value is
// the *TCPClient whose resolver is running), so Calls the resolver
// issues on the same client never start a nested resolve — while a
// different client reached through the same ctx still resolves freely.
type resolverCtxKey struct{}

// resolveFlight is one in-flight resolver invocation; concurrent
// callers wait on done and share ok instead of dogpiling the MDS.
type resolveFlight struct {
	done chan struct{}
	ok   bool
}

// TCPClient is an RPC over real sockets. It maintains a small pool of
// connections per destination address.
//
// Reliability: the context's deadline (and cancellation) is mapped onto
// the connection's I/O deadlines, so a cancelled Call unblocks within
// one frame round-trip. A call that fails at the connection level is
// retried on a fresh connection when the message kind is idempotent
// (wire.Kind.Idempotent) — a pooled connection may have died with the
// server's previous incarnation — and, when an AddrResolver is set, the
// address map is re-resolved first, so a node restarted on a new port or
// a replacement under a fresh id is found without SetAddr.
type TCPClient struct {
	mu       sync.Mutex
	addrs    map[wire.NodeID]string
	pools    map[wire.NodeID]*connPool
	resolver AddrResolver
	flight   *resolveFlight // in-flight resolve shared by concurrent callers
	closed   bool
}

// tcpAttempts bounds connection-level attempts per Call (initial try
// plus reconnect/re-resolve retries).
const tcpAttempts = 3

// NewTCPClient creates a client with a static node -> address map.
// Addresses can be added later with SetAddr or discovered through an
// AddrResolver (SetResolver).
func NewTCPClient(addrs map[wire.NodeID]string) *TCPClient {
	c := &TCPClient{addrs: make(map[wire.NodeID]string), pools: make(map[wire.NodeID]*connPool)}
	for id, a := range addrs {
		c.addrs[id] = a
	}
	return c
}

// SetAddr registers or updates a node's address.
func (c *TCPClient) SetAddr(id wire.NodeID, addr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.setAddrLocked(id, addr)
}

func (c *TCPClient) setAddrLocked(id wire.NodeID, addr string) {
	if c.addrs[id] == addr {
		return
	}
	c.addrs[id] = addr
	if p := c.pools[id]; p != nil {
		p.closeAll() // force reconnect to the new address
		delete(c.pools, id)
	}
}

// SetResolver installs the address resolver consulted when a node has no
// known address or a call to its known address fails.
func (c *TCPClient) SetResolver(r AddrResolver) {
	c.mu.Lock()
	c.resolver = r
	c.mu.Unlock()
}

// UpdateAddrs merges a resolved address map; nodes whose address changed
// get their pooled connections dropped so the next call redials.
func (c *TCPClient) UpdateAddrs(addrs map[wire.NodeID]string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for id, a := range addrs {
		c.setAddrLocked(id, a)
	}
}

// Addr returns the client's current address for a node ("" if unknown).
func (c *TCPClient) Addr(id wire.NodeID) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.addrs[id]
}

// Close closes all pooled connections.
func (c *TCPClient) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for _, p := range c.pools {
		p.closeAll()
	}
	c.pools = make(map[wire.NodeID]*connPool)
}

// resolve refreshes the address map through the resolver, if any.
// Reports whether a refresh happened.
//
// Two re-entry shapes are handled. (1) Recursion: resolvers issue
// KResolveAddr through this same client, and that inner Call must not
// trigger another resolve when the MDS itself is unreachable — the
// mutual recursion would never bottom out, so the resolver runs under a
// ctx marked with this client that makes nested resolves return false
// immediately and an MDS outage surfaces as ErrNodeUnreachable instead
// of a stack overflow. (2) Concurrency: a shard fan-out can miss many
// addresses at once, so callers that find a resolve already in flight
// wait for it and share a success rather than failing fast or dogpiling
// the MDS. A shared *failure* is not adopted: the flight may have died
// on its owner's expiring context, so a waiter whose own ctx is still
// live loops and resolves for itself.
func (c *TCPClient) resolve(ctx context.Context) bool {
	if ctx.Value(resolverCtxKey{}) == c {
		return false // issued by this client's own resolver: never recurse
	}
	for {
		c.mu.Lock()
		r := c.resolver
		if r == nil || c.closed {
			c.mu.Unlock()
			return false
		}
		f := c.flight
		owner := f == nil
		if owner {
			f = &resolveFlight{done: make(chan struct{})}
			c.flight = f
		}
		c.mu.Unlock()
		if owner {
			return c.runResolveFlight(ctx, r, f)
		}
		select {
		case <-f.done:
			if f.ok || ctx.Err() != nil {
				return f.ok
			}
			// The flight failed, possibly on its owner's context rather
			// than the MDS; try again under our own.
		case <-ctx.Done():
			return false
		}
	}
}

// runResolveFlight invokes the resolver once as the owner of f, records
// the outcome for waiters, and clears the flight.
func (c *TCPClient) runResolveFlight(ctx context.Context, r AddrResolver, f *resolveFlight) bool {
	defer func() {
		c.mu.Lock()
		c.flight = nil
		c.mu.Unlock()
		close(f.done)
	}()
	addrs, err := r(context.WithValue(ctx, resolverCtxKey{}, c))
	if err != nil || len(addrs) == 0 {
		return false
	}
	c.UpdateAddrs(addrs)
	f.ok = true
	return true
}

// poolFor returns the connection pool for a node, resolving its address
// first if unknown.
func (c *TCPClient) poolFor(ctx context.Context, to wire.NodeID) (*connPool, error) {
	for attempt := 0; ; attempt++ {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return nil, fmt.Errorf("transport: client closed: %w", ErrNodeUnreachable)
		}
		if pool := c.pools[to]; pool != nil {
			c.mu.Unlock()
			return pool, nil
		}
		if addr, ok := c.addrs[to]; ok {
			pool := &connPool{addr: addr}
			c.pools[to] = pool
			c.mu.Unlock()
			return pool, nil
		}
		c.mu.Unlock()
		if attempt > 0 || !c.resolve(ctx) {
			return nil, fmt.Errorf("transport: no address for node %d: %w", to, ErrNodeUnreachable)
		}
	}
}

// Call implements RPC.
func (c *TCPClient) Call(ctx context.Context, to wire.NodeID, msg *wire.Msg) (*wire.Resp, error) {
	var lastErr error
	for attempt := 0; attempt < tcpAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("transport: call %v to node %d: %w", msg.Kind, to, err)
		}
		pool, err := c.poolFor(ctx, to)
		if err != nil {
			if lastErr != nil {
				return nil, lastErr
			}
			return nil, err
		}
		resp, sent, err := pool.call(ctx, msg)
		if err == nil {
			return resp, nil
		}
		lastErr = fmt.Errorf("transport: call %v to node %d at %s: %v: %w", msg.Kind, to, pool.addr, err, ErrNodeUnreachable)
		if ctx.Err() != nil {
			return nil, fmt.Errorf("transport: call %v to node %d: %w", msg.Kind, to, ctx.Err())
		}
		// Reconnect/retry policy: a call that provably sent nothing (a
		// failed dial, or a frame that never finished writing) may be
		// retried with any message; a connection that died mid-call may
		// have delivered the frame, so only idempotent kinds are
		// re-sent. Either way, re-resolve the address map first when a
		// resolver is installed — the node may have moved.
		if sent && !msg.Kind.Idempotent() {
			return nil, lastErr
		}
		c.resolve(ctx)
	}
	return nil, lastErr
}

type pooledConn struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

type connPool struct {
	addr string
	mu   sync.Mutex
	free []*pooledConn
}

// get returns a pooled or freshly dialed connection; reused reports
// whether it came from the pool (and may therefore be stale).
func (p *connPool) get(ctx context.Context) (pc *pooledConn, reused bool, err error) {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		pc := p.free[n-1]
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return pc, true, nil
	}
	p.mu.Unlock()
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", p.addr)
	if err != nil {
		return nil, false, fmt.Errorf("transport: dial %s: %w", p.addr, err)
	}
	return &pooledConn{
		conn: conn,
		r:    bufio.NewReaderSize(conn, 256<<10),
		w:    bufio.NewWriterSize(conn, 256<<10),
	}, false, nil
}

func (p *connPool) put(pc *pooledConn) {
	p.mu.Lock()
	if len(p.free) < 16 {
		p.free = append(p.free, pc)
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	pc.conn.Close()
}

func (p *connPool) closeAll() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, pc := range p.free {
		pc.conn.Close()
	}
	p.free = nil
}

// call performs one round trip. sent reports whether the request frame
// may have reached the server (false when the failure happened before
// the frame could have been delivered — a dial error, or a write
// failure that never flushed the frame). A write failure on a reused
// pooled connection means the server's previous incarnation closed it
// while idle; the frame cannot have been processed by the current
// server, so such calls transparently retry once on a fresh dial
// regardless of idempotency.
func (p *connPool) call(ctx context.Context, msg *wire.Msg) (resp *wire.Resp, sent bool, err error) {
	pc, reused, err := p.get(ctx)
	if err != nil {
		return nil, false, err
	}
	resp, wrote, err := p.roundTrip(ctx, pc, msg)
	if err != nil && reused {
		// Every other pooled connection predates this failure and is
		// suspect too (a server restart kills them all at once); drop
		// them so any retry — ours below, or the caller's next attempt
		// for an idempotent kind — dials fresh instead of burning
		// attempts on more stale connections.
		p.closeAll()
	}
	if err != nil && !wrote && reused && ctx.Err() == nil {
		// The frame never left on the stale connection, so the current
		// server incarnation cannot have processed it: retry once on a
		// fresh dial regardless of idempotency.
		pc, _, derr := p.get(ctx)
		if derr != nil {
			return nil, false, derr
		}
		resp, wrote, err = p.roundTrip(ctx, pc, msg)
	}
	return resp, wrote, err
}

// roundTrip runs one request/response exchange on pc, mapping the
// context onto the connection so cancellation or deadline expiry forces
// pending I/O to fail within one round-trip. wrote reports whether the
// request frame was fully written.
func (p *connPool) roundTrip(ctx context.Context, pc *pooledConn, msg *wire.Msg) (resp *wire.Resp, wrote bool, err error) {
	stop := context.AfterFunc(ctx, func() {
		pc.conn.SetDeadline(time.Unix(1, 0)) // in the past: unblock now
	})
	defer stop()
	if d, ok := ctx.Deadline(); ok {
		pc.conn.SetDeadline(d)
	}
	if err := writeFrame(pc.w, &frame{Msg: msg}); err != nil {
		pc.conn.Close()
		return nil, false, err
	}
	f, err := readFrame(pc.r)
	if err != nil {
		pc.conn.Close()
		return nil, true, err
	}
	if !stop() {
		// The context fired mid-call; the deadline is poisoned, so do
		// not pool the connection even though the call squeaked through.
		pc.conn.Close()
	} else {
		pc.conn.SetDeadline(time.Time{})
		p.put(pc)
	}
	if f.Resp == nil {
		return nil, true, errors.New("transport: response frame missing body")
	}
	return f.Resp, true, nil
}
