package transport

import (
	"testing"

	"repro/internal/wire"
)

// A redundant Release is absorbed in production builds: double-release
// is a bug, but turning it into a crash on every deployment would trade
// a pool inefficiency for an outage.
func TestDoubleReleaseIsNoOpByDefault(t *testing.T) {
	SetPoolDebug(false) // a poolpoison build arms the detector at init
	defer SetPoolDebug(poolPoisonBuild)
	body := getFrameBuf()
	*body = append(*body, 1, 2, 3)
	resp := &wire.Resp{Data: *body}
	resp.AttachRelease(newBufRelease(body))
	resp.Release()
	resp.Release() // must not panic, must not double-free
}

// Under the misuse detector the same bug panics: releasing twice would
// hand one buffer to two owners, which corrupts payloads far from the
// offending call site. Tests arm SetPoolDebug to catch it at the
// source.
func TestDoubleReleasePanicsUnderPoolDebug(t *testing.T) {
	SetPoolDebug(true)
	defer SetPoolDebug(false)
	body := getFrameBuf()
	*body = append(*body, 1, 2, 3)
	resp := &wire.Resp{Data: *body}
	resp.AttachRelease(newBufRelease(body))
	resp.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("second Release did not panic under SetPoolDebug(true)")
		}
	}()
	resp.Release()
}

// Armed releases poison the buffer with 0xDB so a use-after-release
// reads loud garbage instead of silently observing whatever frame got
// the recycled memory next.
func TestReleasePoisonsBufferUnderPoolDebug(t *testing.T) {
	SetPoolDebug(true)
	defer SetPoolDebug(false)
	body := getFrameBuf()
	*body = append(*body, []byte("payload bytes")...)
	data := *body
	resp := &wire.Resp{Data: data}
	resp.AttachRelease(newBufRelease(body))
	resp.Release()
	for i, b := range data {
		if b != poisonByte {
			t.Fatalf("byte %d after Release = %#02x, want poison %#02x", i, b, poisonByte)
		}
	}
}

// The outstanding counter pairs every armed attach with its release.
func TestPoolDebugOutstandingBalances(t *testing.T) {
	SetPoolDebug(true)
	defer SetPoolDebug(false)
	start := PoolDebugOutstanding()
	var resps []*wire.Resp
	for i := 0; i < 4; i++ {
		body := getFrameBuf()
		resp := &wire.Resp{}
		resp.AttachRelease(newBufRelease(body))
		resps = append(resps, resp)
	}
	if got := PoolDebugOutstanding(); got != start+4 {
		t.Fatalf("outstanding after 4 attaches = %d, want %d", got, start+4)
	}
	for _, r := range resps {
		r.Release()
	}
	if got := PoolDebugOutstanding(); got != start {
		t.Fatalf("outstanding after releases = %d, want %d", got, start)
	}
}

// Release on a Resp that never had a buffer attached (in-process
// transports, structured-error replies built by handlers) is a no-op.
func TestReleaseWithoutAttachedBuffer(t *testing.T) {
	(&wire.Resp{}).Release()
}
