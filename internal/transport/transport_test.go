package transport

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/netsim"
	"repro/internal/wire"
)

func echoHandler(id wire.NodeID) Handler {
	return func(_ context.Context, msg *wire.Msg) *wire.Resp {
		return &wire.Resp{Data: msg.Data, Val: int64(id)}
	}
}

func TestInprocCall(t *testing.T) {
	nw := netsim.New(netsim.Ethernet25G())
	tr := NewInproc(nw)
	tr.Register(1, echoHandler(1))
	rpc := tr.Caller(wire.ClientIDBase)
	resp, err := rpc.Call(context.Background(), 1, &wire.Msg{Kind: wire.KPing, Data: []byte("hello")})
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Data) != "hello" || resp.Val != 1 {
		t.Fatalf("bad response: %+v", resp)
	}
	if resp.Cost <= 0 {
		t.Fatal("simulated call must have positive network cost")
	}
	if nw.TotalTraffic() == 0 {
		t.Fatal("traffic not accounted")
	}
}

func TestInprocNilNetwork(t *testing.T) {
	tr := NewInproc(nil)
	tr.Register(2, echoHandler(2))
	resp, err := tr.Caller(1).Call(context.Background(), 2, &wire.Msg{Kind: wire.KPing})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cost != 0 {
		t.Fatal("nil network should be free")
	}
}

func TestInprocNodeDown(t *testing.T) {
	tr := NewInproc(nil)
	tr.Register(1, echoHandler(1))
	tr.Deregister(1)
	_, err := tr.Caller(2).Call(context.Background(), 1, &wire.Msg{Kind: wire.KPing})
	var down ErrNodeDown
	if err == nil {
		t.Fatal("expected error calling deregistered node")
	}
	if ok := errorsAs(err, &down); !ok || down.Node != 1 {
		t.Fatalf("want ErrNodeDown{1}, got %v", err)
	}
}

// errorsAs is a tiny local wrapper so the test reads clearly.
func errorsAs(err error, target *ErrNodeDown) bool {
	e, ok := err.(ErrNodeDown)
	if ok {
		*target = e
	}
	return ok
}

func TestInprocFromFieldSet(t *testing.T) {
	tr := NewInproc(nil)
	var got wire.NodeID
	tr.Register(3, func(_ context.Context, m *wire.Msg) *wire.Resp {
		got = m.From
		return nil
	})
	if _, err := tr.Caller(7).Call(context.Background(), 3, &wire.Msg{Kind: wire.KPing}); err != nil {
		t.Fatal(err)
	}
	if got != 7 {
		t.Fatalf("From = %d, want 7", got)
	}
}

func TestInprocConcurrent(t *testing.T) {
	nw := netsim.New(netsim.Ethernet25G())
	tr := NewInproc(nw)
	for id := wire.NodeID(1); id <= 4; id++ {
		tr.Register(id, echoHandler(id))
	}
	var wg sync.WaitGroup
	for c := 0; c < 16; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rpc := tr.Caller(wire.ClientIDBase + wire.NodeID(c))
			for i := 0; i < 100; i++ {
				to := wire.NodeID(1 + (c+i)%4)
				resp, err := rpc.Call(context.Background(), to, &wire.Msg{Kind: wire.KPing, Data: []byte{byte(i)}})
				if err != nil || resp.Val != int64(to) {
					t.Errorf("call failed: %v %+v", err, resp)
					return
				}
			}
		}(c)
	}
	wg.Wait()
}

func TestTCPRoundTrip(t *testing.T) {
	srv, err := ServeTCP(1, "127.0.0.1:0", func(_ context.Context, m *wire.Msg) *wire.Resp {
		return &wire.Resp{Data: append([]byte("ack:"), m.Data...), Val: int64(m.Block.Ino)}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli := NewTCPClient(map[wire.NodeID]string{1: srv.Addr()})
	defer cli.Close()
	resp, err := cli.Call(context.Background(), 1, &wire.Msg{
		Kind:  wire.KUpdate,
		Block: wire.BlockID{Ino: 42, Stripe: 3, Idx: 1},
		Data:  []byte("payload"),
		Loc:   wire.StripeLoc{Nodes: []wire.NodeID{1, 2, 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Data) != "ack:payload" || resp.Val != 42 {
		t.Fatalf("bad response: %+v", resp)
	}
}

func TestTCPConcurrentClients(t *testing.T) {
	srv, err := ServeTCP(1, "127.0.0.1:0", echoHandler(1))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli := NewTCPClient(map[wire.NodeID]string{1: srv.Addr()})
	defer cli.Close()
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				payload := []byte(fmt.Sprintf("c%d-i%d", c, i))
				resp, err := cli.Call(context.Background(), 1, &wire.Msg{Kind: wire.KPing, Data: payload})
				if err != nil {
					t.Errorf("call: %v", err)
					return
				}
				if string(resp.Data) != string(payload) {
					t.Errorf("cross-talk: sent %q got %q", payload, resp.Data)
					return
				}
			}
		}(c)
	}
	wg.Wait()
}

func TestTCPUnknownNode(t *testing.T) {
	cli := NewTCPClient(nil)
	if _, err := cli.Call(context.Background(), 9, &wire.Msg{Kind: wire.KPing}); err == nil {
		t.Fatal("expected error for unknown node")
	}
}

func TestTCPLargePayload(t *testing.T) {
	srv, err := ServeTCP(1, "127.0.0.1:0", echoHandler(1))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli := NewTCPClient(map[wire.NodeID]string{1: srv.Addr()})
	defer cli.Close()
	big := make([]byte, 4<<20)
	for i := range big {
		big[i] = byte(i)
	}
	resp, err := cli.Call(context.Background(), 1, &wire.Msg{Kind: wire.KWriteBlock, Data: big})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Data) != len(big) {
		t.Fatalf("echo length %d, want %d", len(resp.Data), len(big))
	}
	for i := 0; i < len(big); i += 100_003 {
		if resp.Data[i] != big[i] {
			t.Fatalf("payload corrupted at %d", i)
		}
	}
}

func TestTCPServerClose(t *testing.T) {
	srv, err := ServeTCP(1, "127.0.0.1:0", echoHandler(1))
	if err != nil {
		t.Fatal(err)
	}
	cli := NewTCPClient(map[wire.NodeID]string{1: srv.Addr()})
	defer cli.Close()
	if _, err := cli.Call(context.Background(), 1, &wire.Msg{Kind: wire.KPing}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// Fresh connection must now fail.
	cli2 := NewTCPClient(map[wire.NodeID]string{1: srv.Addr()})
	defer cli2.Close()
	if _, err := cli2.Call(context.Background(), 1, &wire.Msg{Kind: wire.KPing}); err == nil {
		t.Fatal("expected error after server close")
	}
}

func TestWireKindString(t *testing.T) {
	if wire.KUpdate.String() != "update" {
		t.Fatal("Kind string broken")
	}
	if wire.Kind(200).String() == "" {
		t.Fatal("unknown kind should stringify")
	}
}

func TestWireSizes(t *testing.T) {
	// WireSize is exact for the binary codec: the 68-byte fixed Msg
	// header (which always carries the placement epoch) plus 4 bytes per
	// placement node plus the variable sections.
	m := &wire.Msg{Data: make([]byte, 100), Data2: make([]byte, 50), Loc: wire.StripeLoc{Nodes: make([]wire.NodeID, 10)}}
	if want := int64(68 + 40 + 100 + 50); m.WireSize() != want {
		t.Fatalf("msg wire size = %d, want %d", m.WireSize(), want)
	}
	if got := int64(len(m.AppendTo(nil))); got != m.WireSize() {
		t.Fatalf("encoded %d bytes but WireSize says %d", got, m.WireSize())
	}
	r := &wire.Resp{Data: make([]byte, 30), Err: "xx"}
	if want := int64(44 + 30 + 2); r.WireSize() != want {
		t.Fatalf("resp wire size = %d, want %d", r.WireSize(), want)
	}
	if got := int64(len(r.AppendTo(nil))); got != r.WireSize() {
		t.Fatalf("encoded %d bytes but WireSize says %d", got, r.WireSize())
	}
	if (&wire.Msg{}).WireSize() != 68 {
		t.Fatalf("empty msg = %d, want the fixed header", (&wire.Msg{}).WireSize())
	}
}

func TestRespError(t *testing.T) {
	r := &wire.Resp{}
	if !r.OK() || r.Error() != nil {
		t.Fatal("empty Err must be OK")
	}
	r.Err = "boom"
	if r.OK() || r.Error() == nil {
		t.Fatal("non-empty Err must be an error")
	}
}

func TestBlockIDHelpers(t *testing.T) {
	b := wire.BlockID{Ino: 1, Stripe: 2, Idx: 3}
	if b.WithIdx(5).Idx != 5 || b.Idx != 3 {
		t.Fatal("WithIdx must not mutate receiver")
	}
	if b.String() == "" {
		t.Fatal("String empty")
	}
}
