package transport

import (
	"context"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/wire"
)

// countingListener wraps a listener and counts accepted connections.
type countingListener struct {
	net.Listener
	accepted atomic.Int64
}

func (l *countingListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err == nil {
		l.accepted.Add(1)
	}
	return c, err
}

// serveCounted starts a TCP server whose accepted-connection count the
// test can read.
func serveCounted(t *testing.T, id wire.NodeID, h Handler) (*TCPServer, *countingListener) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cl := &countingListener{Listener: ln}
	s := &TCPServer{id: id, handler: h, ln: cl, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	t.Cleanup(func() { s.Close() })
	return s, cl
}

// TestPipelinedCallsShareOneConnection: many concurrent calls to one
// destination are multiplexed over a single TCP connection, not one
// connection per in-flight call like the retired pool.
func TestPipelinedCallsShareOneConnection(t *testing.T) {
	block := make(chan struct{})
	srv, cl := serveCounted(t, 1, func(_ context.Context, m *wire.Msg) *wire.Resp {
		<-block // hold every request in flight simultaneously
		return &wire.Resp{Data: m.Data}
	})
	cli := NewTCPClient(map[wire.NodeID]string{1: srv.Addr()})
	defer cli.Close()

	const n = 32
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := cli.Call(context.Background(), 1, &wire.Msg{Kind: wire.KPing, Data: []byte{byte(i)}})
			if err == nil && (len(resp.Data) != 1 || resp.Data[0] != byte(i)) {
				err = fmt.Errorf("response demuxed to the wrong call: %v", resp.Data)
			}
			errs[i] = err
		}(i)
	}
	// Give every call time to be enqueued and flushed before releasing
	// the handlers.
	time.Sleep(100 * time.Millisecond)
	close(block)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if got := cl.accepted.Load(); got != 1 {
		t.Fatalf("%d in-flight calls used %d connections, want 1", n, got)
	}
}

// TestCallBatch: a batch spanning several destinations delivers every
// call and demuxes each response to its own slot; same-destination
// calls share one connection.
func TestCallBatch(t *testing.T) {
	srvs := make([]*TCPServer, 3)
	addrs := make(map[wire.NodeID]string)
	for i := range srvs {
		id := wire.NodeID(i + 1)
		s, err := ServeTCP(id, "127.0.0.1:0", echoHandler(id))
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		srvs[i] = s
		addrs[id] = s.Addr()
	}
	cli := NewTCPClient(addrs)
	defer cli.Close()

	var calls []*BatchCall
	for i := 0; i < 12; i++ {
		calls = append(calls, &BatchCall{
			To:  wire.NodeID(i%3 + 1),
			Msg: &wire.Msg{Kind: wire.KPing, Data: []byte{byte(i)}},
		})
	}
	cli.CallBatch(context.Background(), calls)
	for i, bc := range calls {
		if bc.Err != nil {
			t.Fatalf("call %d: %v", i, bc.Err)
		}
		if bc.Resp.Val != int64(bc.To) || len(bc.Resp.Data) != 1 || bc.Resp.Data[0] != byte(i) {
			t.Fatalf("call %d: wrong response %+v", i, bc.Resp)
		}
	}
}

// TestFanoutFallback: Fanout on a transport without CallBatch (the
// in-process one) still completes every call.
func TestFanoutFallback(t *testing.T) {
	tr := NewInproc(nil)
	tr.Register(1, echoHandler(1))
	tr.Register(2, echoHandler(2))
	calls := []*BatchCall{
		{To: 1, Msg: &wire.Msg{Kind: wire.KPing}},
		{To: 2, Msg: &wire.Msg{Kind: wire.KPing}},
		{To: 9, Msg: &wire.Msg{Kind: wire.KPing}}, // down
	}
	Fanout(context.Background(), tr.Caller(wire.ClientIDBase), calls)
	if calls[0].Err != nil || calls[0].Resp.Val != 1 {
		t.Fatalf("call 0: %+v / %v", calls[0].Resp, calls[0].Err)
	}
	if calls[1].Err != nil || calls[1].Resp.Val != 2 {
		t.Fatalf("call 1: %+v / %v", calls[1].Resp, calls[1].Err)
	}
	if calls[2].Err == nil {
		t.Fatal("call to a down node must fail")
	}
}

// TestServerRejectsForeignFraming: bytes that are not v1 frames (an old
// gob stream, random garbage) get the connection closed instead of a
// crash or a hang.
func TestServerRejectsForeignFraming(t *testing.T) {
	srv, err := ServeTCP(1, "127.0.0.1:0", echoHandler(1))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Old-framing shape: length prefix then a gob type descriptor — the
	// frame-type byte is wrong, so the server must hang up.
	if _, err := conn.Write([]byte{0, 0, 0, 32, 0x40, 1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("server must close a foreign-framing connection, got %v", err)
	}
}

// TestClientRejectsForeignResponse: a server that answers with a
// non-v1 frame fails the call with a format error rather than hanging.
func TestClientRejectsForeignResponse(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				io.CopyN(io.Discard, conn, frameHeaderSize) // swallow the request header
				conn.Write([]byte{0xDE, 0xAD, 0xBE, 0xEF, 0x99, 0, 0, 0, 0, 0, 0, 0, 0})
				io.Copy(io.Discard, conn)
			}(conn)
		}
	}()
	cli := NewTCPClient(map[wire.NodeID]string{1: ln.Addr().String()})
	defer cli.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_, err = cli.Call(ctx, 1, &wire.Msg{Kind: wire.KPing})
	if err == nil {
		t.Fatal("foreign response framing must fail the call")
	}
	if !strings.Contains(err.Error(), "wire format") && !strings.Contains(err.Error(), "frame") {
		t.Fatalf("error should name the framing problem: %v", err)
	}
}

// TestBatchCancelUnblocksImmediately: a cancelled ctx abandons every
// call of a batch without waiting out the round trip.
func TestBatchCancelUnblocksImmediately(t *testing.T) {
	block := make(chan struct{})
	srv, err := ServeTCP(1, "127.0.0.1:0", func(_ context.Context, m *wire.Msg) *wire.Resp {
		<-block
		return &wire.Resp{}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// Release the handlers before srv.Close runs (LIFO): Close waits for
	// in-flight requests to finish.
	defer close(block)
	cli := NewTCPClient(map[wire.NodeID]string{1: srv.Addr()})
	defer cli.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	calls := []*BatchCall{
		{To: 1, Msg: &wire.Msg{Kind: wire.KPing}},
		{To: 1, Msg: &wire.Msg{Kind: wire.KPing}},
	}
	start := time.Now()
	cli.CallBatch(ctx, calls)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancel took %v to unblock the batch", elapsed)
	}
	for i, bc := range calls {
		if bc.Err == nil {
			t.Fatalf("call %d must carry the ctx error", i)
		}
	}
}

// TestLargePayloadRoundTrip pushes a multi-megabyte frame through the
// real transport: framing, pooled buffers and demux must hold past the
// pooled-capacity bound.
func TestLargePayloadRoundTrip(t *testing.T) {
	srv, err := ServeTCP(1, "127.0.0.1:0", echoHandler(1))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli := NewTCPClient(map[wire.NodeID]string{1: srv.Addr()})
	defer cli.Close()
	payload := make([]byte, 8<<20)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	resp, err := cli.Call(context.Background(), 1, &wire.Msg{Kind: wire.KWriteBlock, Data: payload})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Data) != len(payload) {
		t.Fatalf("echoed %d bytes, want %d", len(resp.Data), len(payload))
	}
	for i := range payload {
		if resp.Data[i] != payload[i] {
			t.Fatalf("payload corrupted at byte %d", i)
		}
	}
}

// BenchmarkTCPRoundTrip measures sequential loopback round-trips/s on
// the multiplexed transport.
func BenchmarkTCPRoundTrip(b *testing.B) {
	srv, err := ServeTCP(1, "127.0.0.1:0", echoHandler(1))
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	cli := NewTCPClient(map[wire.NodeID]string{1: srv.Addr()})
	defer cli.Close()
	msg := &wire.Msg{Kind: wire.KPing, Data: make([]byte, 4<<10)}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cli.Call(ctx, 1, msg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTCPRoundTripPipelined measures concurrent loopback
// round-trips/s — the case the multiplexed connection exists for.
func BenchmarkTCPRoundTripPipelined(b *testing.B) {
	srv, err := ServeTCP(1, "127.0.0.1:0", echoHandler(1))
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	cli := NewTCPClient(map[wire.NodeID]string{1: srv.Addr()})
	defer cli.Close()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		msg := &wire.Msg{Kind: wire.KPing, Data: make([]byte, 4<<10)}
		for pb.Next() {
			if _, err := cli.Call(ctx, 1, msg); err != nil {
				b.Fatal(err)
			}
		}
	})
}
