// Package transport delivers wire.Msg RPCs between cluster nodes.
//
// Two implementations share one interface:
//
//   - Inproc: all nodes live in one process; calls are direct function
//     dispatch priced by a netsim.Network. This is what the benchmark
//     harness uses — deterministic, fast, and fully accounted.
//   - TCP: real sockets with length-prefixed gob frames, used by
//     cmd/ecfsd to run an actual distributed cluster.
//
// A Handler processes one message and returns a response; the response's
// Cost field carries the modeled synchronous latency of the remote work
// so callers can extend their own latency path.
package transport

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/netsim"
	"repro/internal/wire"
)

// Handler processes one inbound message. Implementations must be safe
// for concurrent use.
type Handler func(msg *wire.Msg) *wire.Resp

// RPC sends messages to nodes.
type RPC interface {
	// Call delivers msg to node `to` and returns its response. The
	// response Cost includes remote compute and (on simulated
	// transports) the network transfer cost both ways.
	Call(to wire.NodeID, msg *wire.Msg) (*wire.Resp, error)
}

// Registrar accepts handler registrations for nodes.
type Registrar interface {
	Register(id wire.NodeID, h Handler)
}

// Inproc is the in-process transport. It is both an RPC (from any node)
// and a Registrar. Message payloads are passed by reference; handlers
// must not retain or mutate request buffers beyond the call, mirroring
// the copy semantics a real network imposes.
type Inproc struct {
	net *netsim.Network

	mu       sync.RWMutex
	handlers map[wire.NodeID]Handler
	nics     map[wire.NodeID]*netsim.NIC
}

// NewInproc creates an in-process transport priced by net. net may be
// nil, in which case calls are free (useful in unit tests).
func NewInproc(net *netsim.Network) *Inproc {
	return &Inproc{
		net:      net,
		handlers: make(map[wire.NodeID]Handler),
		nics:     make(map[wire.NodeID]*netsim.NIC),
	}
}

// Register installs the handler for a node and provisions its NIC.
func (t *Inproc) Register(id wire.NodeID, h Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.handlers[id] = h
	if t.net != nil && t.nics[id] == nil {
		t.nics[id] = t.net.AddNIC(fmt.Sprintf("node%d", id))
	}
}

// Deregister removes a node (used to simulate node failure).
func (t *Inproc) Deregister(id wire.NodeID) {
	t.mu.Lock()
	delete(t.handlers, id)
	t.mu.Unlock()
}

// ensureNIC provisions a NIC for nodes that only ever send (clients).
func (t *Inproc) ensureNIC(id wire.NodeID) *netsim.NIC {
	if t.net == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.nics[id] == nil {
		t.nics[id] = t.net.AddNIC(fmt.Sprintf("node%d", id))
	}
	return t.nics[id]
}

// Caller returns an RPC bound to a source node, so network costs are
// charged to the right NIC.
func (t *Inproc) Caller(from wire.NodeID) RPC {
	return &inprocCaller{t: t, from: from}
}

type inprocCaller struct {
	t    *Inproc
	from wire.NodeID
}

// ErrNodeDown is returned when the destination has no handler (failed or
// never registered).
type ErrNodeDown struct{ Node wire.NodeID }

func (e ErrNodeDown) Error() string { return fmt.Sprintf("transport: node %d down", e.Node) }

func (c *inprocCaller) Call(to wire.NodeID, msg *wire.Msg) (*wire.Resp, error) {
	t := c.t
	t.mu.RLock()
	h := t.handlers[to]
	dstNIC := t.nics[to]
	t.mu.RUnlock()
	if h == nil {
		return nil, ErrNodeDown{Node: to}
	}
	msg.From = c.from
	var cost time.Duration
	if t.net != nil {
		src := t.ensureNIC(c.from)
		cost = t.net.Transfer(src, dstNIC, msg.WireSize())
	}
	resp := h(msg)
	if resp == nil {
		resp = &wire.Resp{}
	}
	if t.net != nil {
		dst := t.ensureNIC(c.from)
		cost += t.net.Transfer(dstNIC, dst, resp.WireSize())
	}
	resp.Cost += cost
	return resp, nil
}
