// Package transport delivers wire.Msg RPCs between cluster nodes.
//
// Two implementations share one interface:
//
//   - Inproc: all nodes live in one process; calls are direct function
//     dispatch priced by a netsim.Network. This is what the benchmark
//     harness uses — deterministic, fast, and fully accounted.
//   - TCP: real sockets carrying the fixed-layout binary codec of
//     internal/wire on a multiplexed, pipelined connection per peer
//     (see tcp.go), used by cmd/ecfsd to run an actual distributed
//     cluster.
//
// Both transports price and frame with wire.Msg.WireSize /
// wire.Resp.WireSize, which are exact for the binary codec — the
// simulated byte counts and the bytes TCP ships are the same number.
//
// Every call carries a context.Context. The in-process transport checks
// it before dispatch, so a cancelled context aborts a call chain at the
// next priced step; the TCP transport abandons the call the moment the
// context fires (late responses are discarded by the demux), so a
// cancelled call unblocks immediately.
//
// A Handler processes one message and returns a response; the response's
// Cost field carries the modeled synchronous latency of the remote work
// so callers can extend their own latency path. The handler receives the
// caller's context on the in-process transport (cancellation propagates
// through nested strategy calls) and a background context on TCP, where
// cancellation is a client-side concern.
package transport

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/netsim"
	"repro/internal/wire"
)

// Handler processes one inbound message. Implementations must be safe
// for concurrent use.
type Handler func(ctx context.Context, msg *wire.Msg) *wire.Resp

// RPC sends messages to nodes.
type RPC interface {
	// Call delivers msg to node `to` and returns its response. The
	// response Cost includes remote compute and (on simulated
	// transports) the network transfer cost both ways. A cancelled or
	// expired ctx aborts the call with ctx.Err() wrapped in the return.
	Call(ctx context.Context, to wire.NodeID, msg *wire.Msg) (*wire.Resp, error)
}

// Registrar accepts handler registrations for nodes.
type Registrar interface {
	Register(id wire.NodeID, h Handler)
}

// BatchCall is one call of a batch: destination and message in, response
// or error out. Exactly one of Resp/Err is set once the batch returns.
type BatchCall struct {
	To   wire.NodeID
	Msg  *wire.Msg
	Resp *wire.Resp
	Err  error
}

// BatchRPC is implemented by transports that can deliver a set of calls
// more efficiently than issuing them one by one — the TCP client groups
// same-destination calls so their frames enter the connection's write
// queue together and leave in one coalesced flush. Semantics per call
// are identical to RPC.Call.
type BatchRPC interface {
	RPC
	CallBatch(ctx context.Context, calls []*BatchCall)
}

// Fanout delivers a set of calls through rpc, using CallBatch when the
// transport supports it and falling back to concurrent Calls otherwise.
// It returns when every call has its Resp or Err populated.
func Fanout(ctx context.Context, rpc RPC, calls []*BatchCall) {
	if b, ok := rpc.(BatchRPC); ok {
		b.CallBatch(ctx, calls)
		return
	}
	var wg sync.WaitGroup
	for _, bc := range calls {
		wg.Add(1)
		go func(bc *BatchCall) {
			defer wg.Done()
			bc.Resp, bc.Err = rpc.Call(ctx, bc.To, bc.Msg)
		}(bc)
	}
	wg.Wait()
}

// ErrNodeUnreachable is the sentinel wrapped by every transport-level
// delivery failure — a deregistered in-process node, a refused TCP dial,
// a connection that died mid-call. errors.Is(err, ErrNodeUnreachable)
// therefore distinguishes "could not reach the node" from a structured
// remote rejection on both transports. It wraps wire.ErrUnreachable so
// the classification survives a further wire crossing: a handler that
// fails because *its* peer call failed converts the error with
// wire.ErrorResp, and the end caller still sees the unreachable class.
var ErrNodeUnreachable = fmt.Errorf("node unreachable: %w", wire.ErrUnreachable)

// Inproc is the in-process transport. It is both an RPC (from any node)
// and a Registrar. Message payloads are passed by reference; handlers
// must not retain or mutate request buffers beyond the call, mirroring
// the copy semantics a real network imposes.
type Inproc struct {
	net *netsim.Network

	mu       sync.RWMutex
	handlers map[wire.NodeID]Handler
	nics     map[wire.NodeID]*netsim.NIC
}

// NewInproc creates an in-process transport priced by net. net may be
// nil, in which case calls are free (useful in unit tests).
func NewInproc(net *netsim.Network) *Inproc {
	return &Inproc{
		net:      net,
		handlers: make(map[wire.NodeID]Handler),
		nics:     make(map[wire.NodeID]*netsim.NIC),
	}
}

// Register installs the handler for a node and provisions its NIC.
func (t *Inproc) Register(id wire.NodeID, h Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.handlers[id] = h
	if t.net != nil && t.nics[id] == nil {
		t.nics[id] = t.net.AddNIC(fmt.Sprintf("node%d", id))
	}
}

// Deregister removes a node (used to simulate node failure).
func (t *Inproc) Deregister(id wire.NodeID) {
	t.mu.Lock()
	delete(t.handlers, id)
	t.mu.Unlock()
}

// ensureNIC provisions a NIC for nodes that only ever send (clients).
func (t *Inproc) ensureNIC(id wire.NodeID) *netsim.NIC {
	if t.net == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.nics[id] == nil {
		t.nics[id] = t.net.AddNIC(fmt.Sprintf("node%d", id))
	}
	return t.nics[id]
}

// Caller returns an RPC bound to a source node, so network costs are
// charged to the right NIC.
func (t *Inproc) Caller(from wire.NodeID) RPC {
	return &inprocCaller{t: t, from: from}
}

type inprocCaller struct {
	t    *Inproc
	from wire.NodeID
}

// ErrNodeDown is returned when the destination has no handler (failed or
// never registered). It wraps ErrNodeUnreachable.
type ErrNodeDown struct{ Node wire.NodeID }

func (e ErrNodeDown) Error() string { return fmt.Sprintf("transport: node %d down", e.Node) }

// Unwrap makes errors.Is(err, ErrNodeUnreachable) hold.
func (e ErrNodeDown) Unwrap() error { return ErrNodeUnreachable }

func (c *inprocCaller) Call(ctx context.Context, to wire.NodeID, msg *wire.Msg) (*wire.Resp, error) {
	// Honor cancellation between priced steps: each hop of a call chain
	// (client op, strategy forward, recovery fetch) re-checks the
	// context before dispatching.
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("transport: call %v to node %d: %w", msg.Kind, to, err)
	}
	t := c.t
	t.mu.RLock()
	h := t.handlers[to]
	dstNIC := t.nics[to]
	t.mu.RUnlock()
	if h == nil {
		return nil, ErrNodeDown{Node: to}
	}
	msg.From = c.from
	// Both directions of the exchange are priced under the message's
	// traffic class (explicit tag, or the kind's default), so shared
	// NICs account foreground and rebuild/drain busy time separately.
	cls := msg.TrafficClass()
	var cost time.Duration
	if t.net != nil {
		src := t.ensureNIC(c.from)
		cost = t.net.TransferClass(src, dstNIC, msg.WireSize(), cls)
	}
	resp := h(ctx, msg)
	if resp == nil {
		resp = &wire.Resp{}
	}
	if t.net != nil {
		dst := t.ensureNIC(c.from)
		cost += t.net.TransferClass(dstNIC, dst, resp.WireSize(), cls)
	}
	resp.Cost += cost
	return resp, nil
}
