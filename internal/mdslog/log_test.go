package mdslog

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/wire"
)

// sampleRecords is one of every record kind, exercising every layout.
func sampleRecords() []Record {
	return []Record{
		{Kind: KindCreate, Ino: 17, Name: "vol0/f17"},
		{Kind: KindBind, Ino: 17, Stripe: 3, Epoch: 0, Nodes: []wire.NodeID{1, 2, 3, 4, 5, 6}},
		{Kind: KindRebind, Ino: 17, Stripe: 3, Epoch: 1, Idx: 2, Node: 3, To: 9},
		{Kind: KindAddNode, Node: 9},
		{Kind: KindRemoveNode, Node: 3},
		{Kind: KindAddr, Node: 9, Name: "127.0.0.1:7009"},
		{Kind: KindDrainBegin, Node: 5, Fresh: true, Removed: true},
		{Kind: KindDrainInterrupt, Node: 5},
		{Kind: KindDrainEnd, Node: 5, Readmitted: true},
		{Kind: KindForget, Node: 5, Removed: false},
	}
}

func TestRecordRoundTrip(t *testing.T) {
	for _, want := range sampleRecords() {
		p, err := encodeRecord(want)
		if err != nil {
			t.Fatalf("encode %v: %v", want.Kind, err)
		}
		got, err := decodeRecord(byte(want.Kind), p)
		if err != nil {
			t.Fatalf("decode %v: %v", want.Kind, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%v round trip:\n got %+v\nwant %+v", want.Kind, got, want)
		}
		// Strict decoding: any length deviation must error, so recovery
		// can treat undecodable-but-CRC-valid as end of committed prefix.
		if _, err := decodeRecord(byte(want.Kind), append(p, 0)); err == nil {
			t.Fatalf("%v decoded with a trailing byte", want.Kind)
		}
	}
}

func TestAppendReopenReplay(t *testing.T) {
	dir := t.TempDir()
	l, st, recs, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st != nil || len(recs) != 0 {
		t.Fatalf("fresh dir returned state %v, %d records", st, len(recs))
	}
	want := sampleRecords()
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	l.Crash() // kill -9: no checkpoint, no sync beyond write(2)
	l.Close()

	l2, st2, got, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if st2 != nil {
		t.Fatalf("no snapshot was written, got state %+v", st2)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replay:\n got %+v\nwant %+v", got, want)
	}
}

func TestTornTailDiscarded(t *testing.T) {
	dir := t.TempDir()
	l, _, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := sampleRecords()[:3]
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	size := l.Size()
	if err := l.Append(Record{Kind: KindCreate, Ino: 99, Name: "torn"}); err != nil {
		t.Fatal(err)
	}
	l.Crash()
	l.Close()
	// Tear the last record mid-payload.
	path := filepath.Join(dir, "oplog.bin")
	if err := os.Truncate(path, size+frameHeader+4); err != nil {
		t.Fatal(err)
	}

	l2, _, got, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("torn-tail replay returned %d records, want %d committed", len(got), len(want))
	}
	if l2.Size() != size {
		t.Fatalf("tail not truncated: size %d, want %d", l2.Size(), size)
	}
	// Appending after recovery lands cleanly where the tear was cut.
	if err := l2.Append(want[0]); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotRoundTripAndCompact(t *testing.T) {
	dir := t.TempDir()
	l, _, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range sampleRecords() {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	st := &State{
		K: 4, M: 2, Shards: 16,
		Pool: []wire.NodeID{1, 2, 9, 4},
		Files: []FileState{
			{Name: "vol0/f17", Ino: 17, Stripes: []StripeState{
				{Stripe: 3, Epoch: 1, Nodes: []wire.NodeID{1, 2, 9, 4, 5, 6}},
			}},
			{Name: "empty", Ino: 33},
		},
		Addrs:    []AddrState{{Node: 9, Addr: "127.0.0.1:7009"}},
		Draining: []wire.NodeID{5},
	}
	if err := l.Compact(st); err != nil {
		t.Fatal(err)
	}
	if l.Size() != 0 {
		t.Fatalf("compact left %d log bytes", l.Size())
	}
	l.Close()

	l2, st2, recs, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(recs) != 0 {
		t.Fatalf("compacted log replayed %d records", len(recs))
	}
	if !reflect.DeepEqual(st2, st) {
		t.Fatalf("snapshot round trip:\n got %+v\nwant %+v", st2, st)
	}
}

// TestCompactCrashBeforeTruncate fabricates the checkpoint crash
// window: snapshot renamed, log not yet truncated. Reopen must hand
// back the new snapshot plus the stale records for idempotent redo.
func TestCompactCrashBeforeTruncate(t *testing.T) {
	dir := t.TempDir()
	l, _, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := sampleRecords()
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	st := &State{K: 4, M: 2, Shards: 8, Pool: []wire.NodeID{1, 2, 3, 4, 5, 6}}
	l.SkipNextTruncate()
	if err := l.Compact(st); err != nil {
		t.Fatal(err)
	}
	if l.Size() == 0 {
		t.Fatal("SkipNextTruncate did not keep the log")
	}
	l.Crash()
	l.Close()

	l2, st2, recs, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if !reflect.DeepEqual(st2, st) {
		t.Fatalf("stale-prefix reopen lost the renamed snapshot: %+v", st2)
	}
	if !reflect.DeepEqual(recs, want) {
		t.Fatalf("stale-prefix reopen returned %d records, want %d", len(recs), len(want))
	}
}

func TestFailAppendsFailStop(t *testing.T) {
	dir := t.TempDir()
	l, _, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l.FailAppends(2)
	if err := l.Append(sampleRecords()[0]); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(sampleRecords()[3]); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(sampleRecords()[4]); err == nil {
		t.Fatal("append past the kill point succeeded")
	}
	if !l.Crashed() {
		t.Fatal("failed append did not freeze the log")
	}
	// Sticky: everything fails from here, including compaction.
	if err := l.Append(sampleRecords()[0]); err == nil {
		t.Fatal("append on a crashed log succeeded")
	}
	if err := l.Compact(&State{K: 1, M: 1, Shards: 1}); err == nil {
		t.Fatal("compact on a crashed log succeeded")
	}
	l.Close()

	// Only the two acknowledged records survive.
	_, _, recs, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("reopened with %d records, want the 2 acknowledged", len(recs))
	}
}

func TestHugeLengthPrefixBounded(t *testing.T) {
	dir := t.TempDir()
	hdr := make([]byte, frameHeader)
	hdr[0], hdr[1], hdr[2], hdr[3] = 0xff, 0xff, 0xff, 0x7f
	if err := os.WriteFile(filepath.Join(dir, "oplog.bin"), hdr, 0o644); err != nil {
		t.Fatal(err)
	}
	l, _, recs, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if len(recs) != 0 {
		t.Fatalf("implausible length prefix yielded %d records", len(recs))
	}
	if l.Size() != 0 {
		t.Fatalf("corrupt head not truncated: %d bytes", l.Size())
	}
}
