package mdslog

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"repro/internal/wire"
)

// snapshotVersion guards the snapshot file layout.
const snapshotVersion = 1

// State is the neutral serialized form of the MDS's durable state: the
// namespace (names, inodes, per-stripe placements with epochs), the
// placement pool in order (placement determinism depends on pool
// order), the address map, and the set of nodes with a drain in
// progress. Soft state — heartbeat times, the dead set, address
// freshness, the repair scheduler — is deliberately absent.
type State struct {
	// K, M, Shards pin the stripe geometry and the namespace shard
	// count. Both feed deterministic placement (the shard choice
	// decides a file's ino range, inos feed place()), so a reopen with
	// different values would silently re-place everything; Open-side
	// validation refuses instead.
	K, M, Shards int

	Files []FileState
	// Pool is the placement pool in its exact order.
	Pool  []wire.NodeID
	Addrs []AddrState
	// Draining lists every node with a drain in progress. Whether the
	// drain was running or interrupted at snapshot time is not
	// recorded: the engine executing a running drain died with the
	// process, so a reopen demotes everything here to
	// interrupted-awaiting-resume.
	Draining []wire.NodeID
}

// FileState is one file: its name, inode, and placed stripes.
type FileState struct {
	Name    string
	Ino     uint64
	Stripes []StripeState
}

// StripeState is one placed stripe: index, epoch, and node list.
type StripeState struct {
	Stripe uint32
	Epoch  uint64
	Nodes  []wire.NodeID
}

// AddrState is one address-map entry.
type AddrState struct {
	Node wire.NodeID
	Addr string
}

func encodeSnapshot(st *State) []byte {
	var b []byte
	u16 := func(v uint16) { b = binary.LittleEndian.AppendUint16(b, v) }
	u32 := func(v uint32) { b = binary.LittleEndian.AppendUint32(b, v) }
	u64 := func(v uint64) { b = binary.LittleEndian.AppendUint64(b, v) }
	u32(snapshotVersion)
	u16(uint16(st.K))
	u16(uint16(st.M))
	u32(uint32(st.Shards))
	u32(uint32(len(st.Pool)))
	for _, n := range st.Pool {
		u32(uint32(n))
	}
	u32(uint32(len(st.Files)))
	for _, f := range st.Files {
		u16(uint16(len(f.Name)))
		b = append(b, f.Name...)
		u64(f.Ino)
		u32(uint32(len(f.Stripes)))
		for _, s := range f.Stripes {
			u32(s.Stripe)
			u64(s.Epoch)
			u16(uint16(len(s.Nodes)))
			for _, n := range s.Nodes {
				u32(uint32(n))
			}
		}
	}
	u32(uint32(len(st.Addrs)))
	for _, a := range st.Addrs {
		u32(uint32(a.Node))
		u16(uint16(len(a.Addr)))
		b = append(b, a.Addr...)
	}
	u32(uint32(len(st.Draining)))
	for _, n := range st.Draining {
		u32(uint32(n))
	}
	// CRC trailer over everything above.
	b = binary.LittleEndian.AppendUint32(b, crc32.Checksum(b, castagnoli))
	return b
}

func decodeSnapshot(b []byte) (*State, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("mdslog: snapshot too short (%d bytes)", len(b))
	}
	body, tail := b[:len(b)-4], binary.LittleEndian.Uint32(b[len(b)-4:])
	if crc32.Checksum(body, castagnoli) != tail {
		return nil, fmt.Errorf("mdslog: snapshot checksum mismatch")
	}
	var off int
	need := func(n int) error {
		if len(body)-off < n {
			return fmt.Errorf("mdslog: truncated snapshot at offset %d", off)
		}
		return nil
	}
	u16 := func() uint16 { v := binary.LittleEndian.Uint16(body[off:]); off += 2; return v }
	u32 := func() uint32 { v := binary.LittleEndian.Uint32(body[off:]); off += 4; return v }
	u64 := func() uint64 { v := binary.LittleEndian.Uint64(body[off:]); off += 8; return v }
	if err := need(12); err != nil {
		return nil, err
	}
	if v := u32(); v != snapshotVersion {
		return nil, fmt.Errorf("mdslog: snapshot version %d, want %d", v, snapshotVersion)
	}
	st := &State{}
	st.K = int(u16())
	st.M = int(u16())
	st.Shards = int(u32())
	if err := need(4); err != nil {
		return nil, err
	}
	np := u32()
	if err := need(int(np) * 4); err != nil {
		return nil, err
	}
	for ; np > 0; np-- {
		st.Pool = append(st.Pool, wire.NodeID(int32(u32())))
	}
	if err := need(4); err != nil {
		return nil, err
	}
	for nf := u32(); nf > 0; nf-- {
		if err := need(2); err != nil {
			return nil, err
		}
		nl := int(u16())
		if err := need(nl + 12); err != nil {
			return nil, err
		}
		f := FileState{Name: string(body[off : off+nl])}
		off += nl
		f.Ino = u64()
		for ns := u32(); ns > 0; ns-- {
			if err := need(14); err != nil {
				return nil, err
			}
			s := StripeState{Stripe: u32(), Epoch: u64()}
			nn := int(u16())
			if err := need(nn * 4); err != nil {
				return nil, err
			}
			for ; nn > 0; nn-- {
				s.Nodes = append(s.Nodes, wire.NodeID(int32(u32())))
			}
			f.Stripes = append(f.Stripes, s)
		}
		st.Files = append(st.Files, f)
	}
	if err := need(4); err != nil {
		return nil, err
	}
	for na := u32(); na > 0; na-- {
		if err := need(6); err != nil {
			return nil, err
		}
		a := AddrState{Node: wire.NodeID(int32(u32()))}
		al := int(u16())
		if err := need(al); err != nil {
			return nil, err
		}
		a.Addr = string(body[off : off+al])
		off += al
		st.Addrs = append(st.Addrs, a)
	}
	if err := need(4); err != nil {
		return nil, err
	}
	nd := u32()
	if err := need(int(nd) * 4); err != nil {
		return nil, err
	}
	for ; nd > 0; nd-- {
		st.Draining = append(st.Draining, wire.NodeID(int32(u32())))
	}
	return st, nil
}

// writeSnapshot persists the state atomically: write to a temp file,
// fsync, rename over the live name, fsync the directory. A crash leaves
// either the old snapshot or the new one, never a torn mix.
func writeSnapshot(dir string, st *State) error {
	path := filepath.Join(dir, "snapshot.bin")
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(encodeSnapshot(st)); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// readSnapshot loads the snapshot; a missing file means a fresh data
// directory and returns nil.
func readSnapshot(dir string) (*State, error) {
	b, err := os.ReadFile(filepath.Join(dir, "snapshot.bin"))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	return decodeSnapshot(b)
}
