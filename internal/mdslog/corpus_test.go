package mdslog

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// TestWriteSeedCorpus regenerates the committed fuzz seed corpus under
// testdata/fuzz/FuzzMDSLogReplay (run with MDSLOG_WRITE_CORPUS=1 after
// changing the record formats). The corpus keeps CI's non-fuzzing
// `go test -run Fuzz` step exercising real torn-log shapes.
func TestWriteSeedCorpus(t *testing.T) {
	if os.Getenv("MDSLOG_WRITE_CORPUS") == "" {
		t.Skip("set MDSLOG_WRITE_CORPUS=1 to regenerate the seed corpus")
	}
	valid := validLogBytes(t)
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x40
	badKind := frameRecord(t, Record{Kind: KindAddNode, Node: 3})
	badKind[8] = 0xee
	seeds := map[string][]byte{
		"oplog-valid":   valid,
		"oplog-torn":    valid[:len(valid)-4],
		"oplog-bitflip": flipped,
		"oplog-badkind": badKind,
		"oplog-empty":   {},
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzMDSLogReplay")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, data := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(data)))
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
