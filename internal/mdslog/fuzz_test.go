package mdslog

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/wire"
)

// frameRecord renders one framed record the way Append lays it down.
func frameRecord(t testing.TB, r Record) []byte {
	t.Helper()
	payload, err := encodeRecord(r)
	if err != nil {
		t.Fatal(err)
	}
	rec := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(rec[0:4], uint32(len(payload)))
	rec[8] = byte(r.Kind)
	copy(rec[frameHeader:], payload)
	binary.LittleEndian.PutUint32(rec[4:8], crc32.Checksum(rec[8:], castagnoli))
	return rec
}

func validLogBytes(t testing.TB) []byte {
	t.Helper()
	var b []byte
	for _, r := range sampleRecords() {
		b = append(b, frameRecord(t, r)...)
	}
	return b
}

// FuzzMDSLogReplay feeds arbitrary bytes to the op-log scanner as a
// crash-left log file. Whatever the corruption, Open must not error or
// panic, must recover only a committed prefix (every returned record
// re-encodes to the exact bytes it was decoded from, in order, from
// offset zero), must truncate the file to that prefix, and a second
// Open must see exactly the same records — no unacked mutation can be
// resurrected by replaying garbage.
func FuzzMDSLogReplay(f *testing.F) {
	valid := validLogBytes(f)
	f.Add(valid)                    // clean log
	f.Add(valid[:len(valid)-3])     // torn tail mid-record
	f.Add([]byte{})                 // empty file
	f.Add(valid[:frameHeader-2])    // short header
	bitflip := bytes.Clone(valid)
	bitflip[len(bitflip)/2] ^= 0x40 // corrupt a byte in the middle
	f.Add(bitflip)
	huge := make([]byte, frameHeader)
	binary.LittleEndian.PutUint32(huge[0:4], 1<<30) // implausible length
	f.Add(huge)
	zeroKind := bytes.Clone(frameRecord(f, Record{Kind: KindAddNode, Node: 3}))
	zeroKind[8] = 0 // CRC now wrong too, but exercise the kind path
	f.Add(zeroKind)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "oplog.bin"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, st, recs, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("Open on corrupt log errored: %v", err)
		}
		if st != nil {
			t.Fatalf("no snapshot on disk, got state %+v", st)
		}
		tail := l.Size()
		if tail < 0 || tail > int64(len(data)) {
			t.Fatalf("recovered tail %d out of range [0, %d]", tail, len(data))
		}
		// The recovered records must be exactly the committed prefix:
		// re-encoding and re-framing them reproduces data[:tail].
		var refr []byte
		for _, r := range recs {
			refr = append(refr, frameRecord(t, r)...)
		}
		if int64(len(refr)) != tail || !bytes.Equal(refr, data[:tail]) {
			t.Fatalf("recovered records do not re-encode to the committed prefix (%d records, tail %d)", len(recs), tail)
		}
		// The file was truncated to the committed prefix.
		if info, err := os.Stat(filepath.Join(dir, "oplog.bin")); err != nil || info.Size() != tail {
			t.Fatalf("log file size %v (err %v), want %d", info, err, tail)
		}
		// The log stays usable: an append after recovery commits.
		if err := l.Append(Record{Kind: KindAddNode, Node: wire.NodeID(7)}); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		l.Close()

		// Recovery is deterministic: reopening yields the prefix plus
		// the one appended record.
		_, _, recs2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("second Open errored: %v", err)
		}
		if len(recs2) != len(recs)+1 {
			t.Fatalf("second Open saw %d records, want %d", len(recs2), len(recs)+1)
		}
		if !reflect.DeepEqual(recs2[:len(recs)], recs) && len(recs) > 0 {
			t.Fatal("second Open disagreed about the committed prefix")
		}
	})
}
