// Package mdslog is the MDS's durability layer: a mutation op log of
// fixed-layout binary records (CRC-32C framed, in the internal/wire
// codec style) plus a checkpointed namespace snapshot, following the
// internal/store WAL idiom. The contract is log-before-ack: the MDS
// appends the record for a namespace mutation with plain write(2)
// before applying it in memory and acknowledging the caller, so a
// process-level crash (kill -9) loses at most a torn tail no caller was
// ever told about. Recovery loads the snapshot, scans the log tail,
// discards everything at and after the first bad CRC, and redoes the
// committed records through the MDS's unlogged apply path.
//
// Crash model and invariants:
//
//   - A record is committed once write(2) returned; the framing CRC
//     detects the torn tail a crash can leave, never interleaving.
//   - Compact writes the snapshot atomically (tmp + fsync + rename +
//     dir fsync) and only then truncates the log. A crash between the
//     two leaves the new snapshot plus a stale log prefix, which replay
//     tolerates: every apply is idempotent, so redoing records the
//     snapshot already folded in converges to the same state.
//   - Any append failure freezes the log (fail-stop): the failing
//     mutation was neither applied nor acknowledged, and every later
//     mutation fails too, so memory never runs ahead of disk.
package mdslog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// ErrCrashed is returned by every mutator after the log froze — either
// Crash simulating kill -9, or a failed append tripping fail-stop.
var ErrCrashed = errors.New("mdslog: log crashed")

// frameHeader is the framing overhead per record: payload length (u32),
// CRC-32C over kind+payload (u32), kind (u8) — the internal/store WAL
// frame.
const frameHeader = 9

// maxRecord bounds a single record so a corrupt length prefix in a torn
// tail cannot drive a giant allocation during replay.
const maxRecord = 1 << 20 // 1 MiB; records are name-sized, not data-sized

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SyncPolicy says when the op log fsyncs.
type SyncPolicy int

const (
	// SyncBatched fsyncs on checkpoint only (group commit). The
	// default: appends are still write(2)-visible immediately, which is
	// what the process-crash model preserves.
	SyncBatched SyncPolicy = iota
	// SyncEveryRecord fsyncs after every append — the per-record
	// durability row in the mds-scale bench.
	SyncEveryRecord
)

// Options configures a Log.
type Options struct {
	// Sync selects the fsync policy (default SyncBatched).
	Sync SyncPolicy
	// SnapshotBytes is the log size beyond which NeedsCompact asks for
	// a checkpoint; <= 0 selects 4 MiB.
	SnapshotBytes int64
}

const defaultSnapshotBytes = 4 << 20

// Log is the append-only MDS op log plus its snapshot file, both under
// one directory. Append is safe for concurrent use; Compact excludes
// appends through the caller's gate (the MDS stops the world), not
// through the Log's own mutex.
type Log struct {
	dir  string
	opts Options

	mu      sync.Mutex
	f       *os.File
	off     int64
	crashed bool
	// failAfter is the kill-point test hook: >= 0 means that many more
	// appends succeed, then appends fail and the log freezes.
	failAfter int64
	// skipTruncates makes Compact skip the log truncation after the
	// snapshot rename — the test hook that fabricates the
	// crash-between-rename-and-truncate window recovery must converge
	// through.
	skipTruncates int

	records int64
	bytes   int64
	syncs   int64
}

// Open opens (or creates) the log directory, loads the snapshot if one
// exists (nil for a fresh directory), scans the op log, truncates the
// first torn or corrupt record and everything after it, and returns the
// committed records for the caller to redo. The caller applies them and
// then normally Compacts, folding the tail into a fresh snapshot.
func Open(dir string, opts Options) (*Log, *State, []Record, error) {
	if opts.SnapshotBytes <= 0 {
		opts.SnapshotBytes = defaultSnapshotBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, nil, err
	}
	st, err := readSnapshot(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, "oplog.bin"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, nil, err
	}
	recs, tail, err := scanLog(f)
	if err != nil {
		f.Close()
		return nil, nil, nil, err
	}
	// Discard the torn tail now, so the next committed record never
	// lands after garbage.
	if err := f.Truncate(tail); err != nil {
		f.Close()
		return nil, nil, nil, err
	}
	l := &Log{dir: dir, opts: opts, f: f, off: tail, failAfter: -1}
	return l, st, recs, nil
}

// scanLog walks the op log from the start, returning every committed
// record and the offset of the first torn or corrupt one. A short
// header, an implausible length, a short payload, a CRC mismatch, or a
// CRC-valid record that fails strict decoding all end the scan:
// everything before is committed, everything at and after never
// finished.
func scanLog(f *os.File) (recs []Record, tail int64, err error) {
	info, err := f.Stat()
	if err != nil {
		return nil, 0, err
	}
	size := info.Size()
	var off int64
	hdr := make([]byte, frameHeader)
	for {
		if size-off < frameHeader {
			return recs, off, nil
		}
		if _, err := f.ReadAt(hdr, off); err != nil {
			return recs, off, nil
		}
		n := int64(binary.LittleEndian.Uint32(hdr[0:4]))
		if n > maxRecord || size-off-frameHeader < n {
			return recs, off, nil
		}
		body := make([]byte, 1+n)
		body[0] = hdr[8]
		if _, err := f.ReadAt(body[1:], off+frameHeader); err != nil && err != io.EOF {
			return recs, off, nil
		}
		if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(hdr[4:8]) {
			return recs, off, nil
		}
		rec, err := decodeRecord(body[0], body[1:])
		if err != nil {
			return recs, off, nil
		}
		recs = append(recs, rec)
		off += frameHeader + n
	}
}

// Append frames and writes one record with a single write(2) — a crash
// can tear the record (detected by CRC at replay) but never interleave
// two — returning only once the bytes are handed to the kernel (and,
// under SyncEveryRecord, the media). Any failure freezes the log.
func (l *Log) Append(r Record) error {
	payload, err := encodeRecord(r)
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.crashed {
		return ErrCrashed
	}
	if l.failAfter >= 0 {
		if l.failAfter == 0 {
			l.crashed = true
			return fmt.Errorf("mdslog: append failed at kill point: %w", ErrCrashed)
		}
		l.failAfter--
	}
	rec := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(rec[0:4], uint32(len(payload)))
	rec[8] = byte(r.Kind)
	copy(rec[frameHeader:], payload)
	binary.LittleEndian.PutUint32(rec[4:8], crc32.Checksum(rec[8:], castagnoli))
	if _, err := l.f.WriteAt(rec, l.off); err != nil {
		l.crashed = true
		return fmt.Errorf("mdslog: append: %w", err)
	}
	l.off += int64(len(rec))
	l.records++
	l.bytes += int64(len(rec))
	if l.opts.Sync == SyncEveryRecord {
		l.syncs++
		if err := l.f.Sync(); err != nil {
			l.crashed = true
			return fmt.Errorf("mdslog: append sync: %w", err)
		}
	}
	return nil
}

// NeedsCompact reports whether the log has outgrown the snapshot
// threshold. The MDS checks it after releasing its mutation gate.
func (l *Log) NeedsCompact() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return !l.crashed && l.off > l.opts.SnapshotBytes
}

// Compact checkpoints: the state is written as a snapshot — temp file,
// fsync, atomic rename, directory fsync — and the log truncated. The
// caller must exclude concurrent appends (the MDS holds its mutation
// gate exclusively). A crash after the rename but before the truncate
// leaves the new snapshot plus a stale log prefix; replay converges
// through it.
func (l *Log) Compact(st *State) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.crashed {
		return ErrCrashed
	}
	if err := writeSnapshot(l.dir, st); err != nil {
		return err
	}
	if l.skipTruncates > 0 {
		l.skipTruncates--
		return nil
	}
	if err := l.f.Truncate(0); err != nil {
		return err
	}
	l.off = 0
	return nil
}

// Sync flushes the log file to the media (group commit's commit point).
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.crashed {
		return ErrCrashed
	}
	l.syncs++
	return l.f.Sync()
}

// Crash freezes the log, simulating kill -9: every subsequent append
// and compact fails with ErrCrashed, and Close skips the shutdown
// checkpoint, so on-disk state stays exactly what the kernel saw.
func (l *Log) Crash() {
	l.mu.Lock()
	l.crashed = true
	l.mu.Unlock()
}

// Crashed reports whether the log froze (Crash, or a failed append).
func (l *Log) Crashed() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.crashed
}

// Close releases the file handle. It does not checkpoint — the MDS's
// Close does that first for a clean shutdown.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}

// FailAppends arms the kill-point hook: after n more successful
// appends, the next append fails and the log freezes — the crash-at-
// every-sync-boundary battery's lever. Negative n disarms it.
func (l *Log) FailAppends(n int64) {
	l.mu.Lock()
	l.failAfter = n
	l.mu.Unlock()
}

// SkipNextTruncate makes the next Compact stop after the snapshot
// rename, leaving the log untruncated — fabricating the crash window
// between the two halves of a checkpoint for recovery tests.
func (l *Log) SkipNextTruncate() {
	l.mu.Lock()
	l.skipTruncates++
	l.mu.Unlock()
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// Stats reports lifetime append counters: records and framed bytes
// appended, and fsyncs issued.
func (l *Log) Stats() (records, bytes, syncs int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.records, l.bytes, l.syncs
}

// Size returns the current log length in bytes.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.off
}
