package mdslog

import (
	"encoding/binary"
	"fmt"

	"repro/internal/wire"
)

// Kind names one namespace-mutation record. The catalog mirrors the
// MDS's durable mutating entry points one-to-one; soft state (heartbeat
// times, the dead set, address freshness stamps, the repair scheduler)
// is deliberately absent — it is re-learned after a restart.
type Kind uint8

const (
	// KindCreate registers a name → ino binding (open-or-create's
	// create half). Replay also re-derives the owning name shard's
	// inode-allocation counter from the ino.
	KindCreate Kind = iota + 1
	// KindBind installs a stripe's first placement (Lookup's
	// deterministic first-touch bind), full node list and epoch.
	KindBind
	// KindRebind moves one block of a placed stripe to a new node and
	// bumps the placement epoch — the only epoch-bump record. It
	// carries the old node too so replay can fix the reverse index.
	KindRebind
	// KindAddNode admits a node to the placement pool. Logged only
	// when the node was actually absent, so replay appends
	// unconditionally (modulo the idempotency presence check).
	KindAddNode
	// KindRemoveNode evicts a node from the placement pool. Logged
	// only when the K+M floor allowed the removal, so replay removes
	// unconditionally.
	KindRemoveNode
	// KindAddr records a node's advertised listen address — logged on
	// change only, never per heartbeat. Freshness stamps are soft
	// state: a reopened MDS re-learns them from live heartbeats.
	KindAddr
	// KindDrainBegin marks a drain starting on a node: Fresh
	// distinguishes a new drain (whose pool eviction, if the floor
	// allowed it, rides in Removed) from the resume of an interrupted
	// one.
	KindDrainBegin
	// KindDrainInterrupt downgrades a running drain to
	// interrupted-awaiting-resume (operator cancellation).
	KindDrainInterrupt
	// KindDrainEnd clears a node's drain mark — finish, abort, and
	// hard failure all end here; Readmitted says whether the node
	// returned to the placement pool (abort/failure of a live node).
	KindDrainEnd
	// KindForget retires a node entirely: conditional pool removal
	// (Removed), plus its address-map and drain-registry entries.
	KindForget
)

var kindNames = map[Kind]string{
	KindCreate: "create", KindBind: "bind", KindRebind: "rebind",
	KindAddNode: "add-node", KindRemoveNode: "remove-node", KindAddr: "addr",
	KindDrainBegin: "drain-begin", KindDrainInterrupt: "drain-interrupt",
	KindDrainEnd: "drain-end", KindForget: "forget",
}

// String returns the record kind's catalog name.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Record is one decoded namespace-mutation record. Exactly the fields
// the Kind's layout carries are meaningful; the rest are zero.
type Record struct {
	Kind Kind

	Ino    uint64 // KindCreate, KindBind, KindRebind
	Stripe uint32 // KindBind, KindRebind
	Epoch  uint64 // KindBind, KindRebind (the new epoch)

	// Name is the file name (KindCreate) or the advertised listen
	// address (KindAddr).
	Name string

	Node wire.NodeID // target node; the old node for KindRebind
	To   wire.NodeID // KindRebind: the new node
	Idx  uint8       // KindRebind: block index within the placement

	Nodes []wire.NodeID // KindBind: the full placement

	Fresh      bool // KindDrainBegin: new drain (vs resume)
	Removed    bool // KindDrainBegin, KindForget: pool eviction happened
	Readmitted bool // KindDrainEnd: node returned to the pool
}

// maxNameLen bounds the variable-length string fields so a corrupt
// record cannot drive a giant allocation during replay.
const maxNameLen = 1 << 16

const (
	flagFresh      = 1 << 0
	flagRemoved    = 1 << 1
	flagReadmitted = 1 << 2
)

// encodeRecord renders a record's fixed-layout little-endian payload
// (the framing adds kind, length, and CRC).
func encodeRecord(r Record) ([]byte, error) {
	switch r.Kind {
	case KindCreate:
		if len(r.Name) >= maxNameLen {
			return nil, fmt.Errorf("mdslog: name too long (%d bytes)", len(r.Name))
		}
		p := make([]byte, 10+len(r.Name))
		binary.LittleEndian.PutUint64(p[0:8], r.Ino)
		binary.LittleEndian.PutUint16(p[8:10], uint16(len(r.Name)))
		copy(p[10:], r.Name)
		return p, nil
	case KindBind:
		p := make([]byte, 22+4*len(r.Nodes))
		binary.LittleEndian.PutUint64(p[0:8], r.Ino)
		binary.LittleEndian.PutUint32(p[8:12], r.Stripe)
		binary.LittleEndian.PutUint64(p[12:20], r.Epoch)
		binary.LittleEndian.PutUint16(p[20:22], uint16(len(r.Nodes)))
		for i, n := range r.Nodes {
			binary.LittleEndian.PutUint32(p[22+4*i:], uint32(n))
		}
		return p, nil
	case KindRebind:
		p := make([]byte, 29)
		binary.LittleEndian.PutUint64(p[0:8], r.Ino)
		binary.LittleEndian.PutUint32(p[8:12], r.Stripe)
		binary.LittleEndian.PutUint64(p[12:20], r.Epoch)
		p[20] = r.Idx
		binary.LittleEndian.PutUint32(p[21:25], uint32(r.Node))
		binary.LittleEndian.PutUint32(p[25:29], uint32(r.To))
		return p, nil
	case KindAddNode, KindRemoveNode, KindDrainInterrupt:
		p := make([]byte, 4)
		binary.LittleEndian.PutUint32(p, uint32(r.Node))
		return p, nil
	case KindAddr:
		if len(r.Name) >= maxNameLen {
			return nil, fmt.Errorf("mdslog: addr too long (%d bytes)", len(r.Name))
		}
		p := make([]byte, 6+len(r.Name))
		binary.LittleEndian.PutUint32(p[0:4], uint32(r.Node))
		binary.LittleEndian.PutUint16(p[4:6], uint16(len(r.Name)))
		copy(p[6:], r.Name)
		return p, nil
	case KindDrainBegin, KindDrainEnd, KindForget:
		p := make([]byte, 5)
		binary.LittleEndian.PutUint32(p[0:4], uint32(r.Node))
		p[4] = r.flags()
		return p, nil
	}
	return nil, fmt.Errorf("mdslog: cannot encode kind %v", r.Kind)
}

func (r Record) flags() byte {
	var f byte
	if r.Fresh {
		f |= flagFresh
	}
	if r.Removed {
		f |= flagRemoved
	}
	if r.Readmitted {
		f |= flagReadmitted
	}
	return f
}

// decodeRecord parses one payload. Decoding is strict — the payload
// length must match the kind's layout exactly — so every decoded record
// re-encodes to the identical bytes, which is what lets recovery treat
// "CRC-valid but undecodable" as the end of the committed prefix.
func decodeRecord(kind byte, p []byte) (Record, error) {
	r := Record{Kind: Kind(kind)}
	switch r.Kind {
	case KindCreate:
		if len(p) < 10 {
			return r, fmt.Errorf("mdslog: short create payload (%d bytes)", len(p))
		}
		r.Ino = binary.LittleEndian.Uint64(p[0:8])
		n := int(binary.LittleEndian.Uint16(p[8:10]))
		if len(p) != 10+n {
			return r, fmt.Errorf("mdslog: create payload length %d, want %d", len(p), 10+n)
		}
		r.Name = string(p[10:])
		return r, nil
	case KindBind:
		if len(p) < 22 {
			return r, fmt.Errorf("mdslog: short bind payload (%d bytes)", len(p))
		}
		r.Ino = binary.LittleEndian.Uint64(p[0:8])
		r.Stripe = binary.LittleEndian.Uint32(p[8:12])
		r.Epoch = binary.LittleEndian.Uint64(p[12:20])
		n := int(binary.LittleEndian.Uint16(p[20:22]))
		if len(p) != 22+4*n {
			return r, fmt.Errorf("mdslog: bind payload length %d, want %d", len(p), 22+4*n)
		}
		for i := 0; i < n; i++ {
			r.Nodes = append(r.Nodes, wire.NodeID(int32(binary.LittleEndian.Uint32(p[22+4*i:]))))
		}
		return r, nil
	case KindRebind:
		if len(p) != 29 {
			return r, fmt.Errorf("mdslog: rebind payload length %d, want 29", len(p))
		}
		r.Ino = binary.LittleEndian.Uint64(p[0:8])
		r.Stripe = binary.LittleEndian.Uint32(p[8:12])
		r.Epoch = binary.LittleEndian.Uint64(p[12:20])
		r.Idx = p[20]
		r.Node = wire.NodeID(int32(binary.LittleEndian.Uint32(p[21:25])))
		r.To = wire.NodeID(int32(binary.LittleEndian.Uint32(p[25:29])))
		return r, nil
	case KindAddNode, KindRemoveNode, KindDrainInterrupt:
		if len(p) != 4 {
			return r, fmt.Errorf("mdslog: %v payload length %d, want 4", r.Kind, len(p))
		}
		r.Node = wire.NodeID(int32(binary.LittleEndian.Uint32(p)))
		return r, nil
	case KindAddr:
		if len(p) < 6 {
			return r, fmt.Errorf("mdslog: short addr payload (%d bytes)", len(p))
		}
		r.Node = wire.NodeID(int32(binary.LittleEndian.Uint32(p[0:4])))
		n := int(binary.LittleEndian.Uint16(p[4:6]))
		if len(p) != 6+n {
			return r, fmt.Errorf("mdslog: addr payload length %d, want %d", len(p), 6+n)
		}
		r.Name = string(p[6:])
		return r, nil
	case KindDrainBegin, KindDrainEnd, KindForget:
		if len(p) != 5 {
			return r, fmt.Errorf("mdslog: %v payload length %d, want 5", r.Kind, len(p))
		}
		r.Node = wire.NodeID(int32(binary.LittleEndian.Uint32(p[0:4])))
		r.Fresh = p[4]&flagFresh != 0
		r.Removed = p[4]&flagRemoved != 0
		r.Readmitted = p[4]&flagReadmitted != 0
		return r, nil
	}
	return r, fmt.Errorf("mdslog: unknown record kind %d", kind)
}
