package device

import (
	"testing"
	"time"
)

func TestRandomCostsMoreThanSequential(t *testing.T) {
	for _, p := range []Profile{ChameleonSSD(), Datacenter2TBHDD()} {
		d := New("t", p)
		seq := d.Read(4096, false)
		rnd := d.Read(4096, true)
		if rnd <= seq {
			t.Errorf("%v: random read (%v) should cost more than sequential (%v)", p.Kind, rnd, seq)
		}
		seqW := d.Write(4096, false, false)
		rndW := d.Write(4096, true, true)
		if rndW <= seqW {
			t.Errorf("%v: random write (%v) should cost more than sequential (%v)", p.Kind, rndW, seqW)
		}
	}
}

func TestHDDSeekDominates(t *testing.T) {
	d := New("hdd", Datacenter2TBHDD())
	lat := d.Read(4096, true)
	if lat < 8*time.Millisecond {
		t.Fatalf("HDD random read %v should include ~8ms seek", lat)
	}
}

func TestCounters(t *testing.T) {
	d := New("ssd", ChameleonSSD())
	d.Read(1000, true)
	d.Read(2000, false)
	d.Write(3000, false, false)
	d.Write(500, true, true)
	s := d.Stats()
	if s.Reads != 2 || s.ReadBytes != 3000 {
		t.Fatalf("reads = %d/%d bytes", s.Reads, s.ReadBytes)
	}
	if s.Writes != 2 || s.WriteBytes != 3500 {
		t.Fatalf("writes = %d/%d bytes", s.Writes, s.WriteBytes)
	}
	if s.Overwrites != 1 || s.OverwriteBytes != 500 {
		t.Fatalf("overwrites = %d/%d bytes", s.Overwrites, s.OverwriteBytes)
	}
	if s.RandomOps != 2 || s.SeqOps != 2 {
		t.Fatalf("random/seq = %d/%d", s.RandomOps, s.SeqOps)
	}
}

func TestWearModel(t *testing.T) {
	d := New("ssd", ChameleonSSD())
	// A 512-byte in-place overwrite programs a whole 4 KiB page.
	d.Write(512, true, true)
	s := d.Stats()
	if s.ProgrammedBytes != 4096 {
		t.Fatalf("programmed = %d, want 4096 (whole page)", s.ProgrammedBytes)
	}
	// A sequential log append programs only its own bytes.
	d.Reset()
	d.Write(512, false, false)
	s = d.Stats()
	if s.ProgrammedBytes != 512 {
		t.Fatalf("programmed = %d, want 512", s.ProgrammedBytes)
	}
}

func TestEraseDerivation(t *testing.T) {
	d := New("ssd", ChameleonSSD())
	if d.Stats().EraseOps != 0 {
		t.Fatal("fresh device must have zero erases")
	}
	// 256 KiB erase blocks: 1 MiB programmed -> 4 erases.
	d.Write(1<<20, false, false)
	if got := d.Stats().EraseOps; got != 4 {
		t.Fatalf("erases = %d, want 4", got)
	}
	// HDD has no wear model.
	h := New("hdd", Datacenter2TBHDD())
	h.Write(1<<20, true, true)
	if h.Stats().EraseOps != 0 {
		t.Fatal("HDD must not accumulate erases")
	}
}

func TestOverwriteWearAmplification(t *testing.T) {
	seqDev := New("a", ChameleonSSD())
	rndDev := New("b", ChameleonSSD())
	// Same volume: 1024 x 512 B. Sequential appends vs random overwrites.
	for i := 0; i < 1024; i++ {
		seqDev.Write(512, false, false)
		rndDev.Write(512, true, true)
	}
	se, re := seqDev.Stats().EraseOps, rndDev.Stats().EraseOps
	if re < 7*se {
		t.Fatalf("random overwrites should erase ~8x more (page amplification): seq=%d rand=%d", se, re)
	}
}

func TestBusyTimeAccounted(t *testing.T) {
	d := New("ssd", ChameleonSSD())
	lat := d.Write(64<<10, false, false)
	want := lat / time.Duration(ChameleonSSD().Parallelism)
	if d.Resource().Busy() != want {
		t.Fatalf("resource busy %v != lat/parallelism %v", d.Resource().Busy(), want)
	}
	h := New("hdd", Datacenter2TBHDD())
	hlat := h.Read(4096, true)
	if h.Resource().Busy() != hlat {
		t.Fatalf("HDD busy %v != full latency %v", h.Resource().Busy(), hlat)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Reads: 1, WriteBytes: 10, EraseOps: 2}
	b := Stats{Reads: 2, WriteBytes: 5, EraseOps: 3}
	c := a.Add(b)
	if c.Reads != 3 || c.WriteBytes != 15 || c.EraseOps != 5 {
		t.Fatalf("Add wrong: %+v", c)
	}
}

func TestReset(t *testing.T) {
	d := New("ssd", ChameleonSSD())
	d.Write(4096, true, true)
	d.Reset()
	s := d.Stats()
	if s.Writes != 0 || s.ProgrammedBytes != 0 || d.Resource().Busy() != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestNegativeSizePanics(t *testing.T) {
	d := New("ssd", ChameleonSSD())
	for name, fn := range map[string]func(){
		"read":  func() { d.Read(-1, true) },
		"write": func() { d.Write(-1, true, false) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with negative size must panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestKindString(t *testing.T) {
	if SSD.String() != "ssd" || HDD.String() != "hdd" {
		t.Fatal("Kind.String wrong")
	}
}
