// Package device models the storage devices of the ECFS testbed: the cost
// asymmetry between sequential and random access, read/write/overwrite
// workload counters, and an SSD flash-translation-layer wear model.
//
// A Device does not store data (block contents live in the in-memory
// block store); it prices operations and accounts them against a
// sim.Resource so the benchmark harness can find the cluster bottleneck.
// The pricing captures the two properties the paper's results hinge on:
//
//  1. Small random reads/writes on SSDs cost several times a sequential
//     access of the same size, and on HDDs tens of milliseconds of seek.
//  2. Random sub-page overwrites force the FTL to program whole pages and
//     later erase whole blocks, wearing the flash; sequential appends fill
//     pages exactly and erase the minimum possible.
package device

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sim"
)

// Kind distinguishes device classes.
type Kind int

const (
	// SSD models a NAND-flash solid state drive.
	SSD Kind = iota
	// HDD models a spinning disk.
	HDD
)

func (k Kind) String() string {
	if k == SSD {
		return "ssd"
	}
	return "hdd"
}

// Profile holds the cost parameters of a device class.
type Profile struct {
	Kind         Kind
	SeqReadBW    float64       // bytes/second, sequential reads
	SeqWriteBW   float64       // bytes/second, sequential writes
	RandReadLat  time.Duration // per-op access latency for random reads
	RandWriteLat time.Duration // per-op access latency for random writes
	SeqOpLat     time.Duration // fixed per-op overhead for sequential ops
	// PageSize is the flash program unit; random writes smaller than a
	// page force a whole-page program (read-modify-write in the FTL).
	// Zero disables the wear model (HDD).
	PageSize int64
	// EraseBlockSize is the flash erase unit used to derive erase counts
	// from programmed bytes. Zero disables the wear model.
	EraseBlockSize int64
	// Parallelism is the device's internal command concurrency (flash
	// channels / NCQ depth): an operation still takes its full latency,
	// but the device sustains Parallelism of them at once, so only
	// latency/Parallelism of busy time accrues. HDDs have one head
	// assembly (Parallelism 1).
	Parallelism int
}

// ChameleonSSD approximates the 400 GB datacenter SATA SSDs of the
// paper's Chameleon nodes: ~2 GB/s sequential read, ~1 GB/s sequential
// write, and random 4 KiB latencies in the tens-to-hundreds of
// microseconds — several times the sequential cost, which is the gap TSUE
// exploits (paper §2.3.1).
func ChameleonSSD() Profile {
	return Profile{
		Kind:           SSD,
		SeqReadBW:      2.0e9,
		SeqWriteBW:     1.0e9,
		RandReadLat:    80 * time.Microsecond,
		RandWriteLat:   100 * time.Microsecond,
		SeqOpLat:       10 * time.Microsecond,
		PageSize:       4 << 10,
		EraseBlockSize: 256 << 10,
		Parallelism:    8,
	}
}

// Datacenter2TBHDD approximates the 2 TB HDDs of the paper's second
// testbed (§5.4): ~160 MB/s streaming, ~8 ms random access.
func Datacenter2TBHDD() Profile {
	return Profile{
		Kind:         HDD,
		SeqReadBW:    160e6,
		SeqWriteBW:   160e6,
		RandReadLat:  8 * time.Millisecond,
		RandWriteLat: 8 * time.Millisecond,
		SeqOpLat:     50 * time.Microsecond,
		Parallelism:  1,
	}
}

// Stats is a snapshot of a device's accumulated workload.
type Stats struct {
	Reads           int64
	ReadBytes       int64
	Writes          int64
	WriteBytes      int64
	Overwrites      int64 // in-place writes to previously written space
	OverwriteBytes  int64
	RandomOps       int64
	SeqOps          int64
	ProgrammedBytes int64 // flash pages programmed x page size (SSD only)
	EraseOps        int64 // derived: programmed bytes / erase block size
}

// Add returns the element-wise sum of two snapshots.
func (s Stats) Add(o Stats) Stats {
	s.Reads += o.Reads
	s.ReadBytes += o.ReadBytes
	s.Writes += o.Writes
	s.WriteBytes += o.WriteBytes
	s.Overwrites += o.Overwrites
	s.OverwriteBytes += o.OverwriteBytes
	s.RandomOps += o.RandomOps
	s.SeqOps += o.SeqOps
	s.ProgrammedBytes += o.ProgrammedBytes
	s.EraseOps += o.EraseOps
	return s
}

// Device prices and accounts storage operations. Safe for concurrent use.
type Device struct {
	profile Profile
	res     *sim.Resource

	// slow holds the fault-injection latency multiplier as float64 bits;
	// 0 means no multiplier has been set (factor 1).
	slow atomic.Uint64

	mu    sync.Mutex
	stats Stats
}

// New creates a device with the given profile. The name identifies the
// underlying sim.Resource (e.g. "osd3/ssd").
func New(name string, p Profile) *Device {
	if p.SeqReadBW <= 0 || p.SeqWriteBW <= 0 {
		panic(fmt.Sprintf("device: profile %q has non-positive bandwidth", name))
	}
	if p.Parallelism < 1 {
		p.Parallelism = 1
	}
	return &Device{profile: p, res: sim.NewResource(name)}
}

// Profile returns the device's cost profile.
func (d *Device) Profile() Profile { return d.profile }

// SetSlowdown sets a latency multiplier applied to every subsequent
// read and write — the scenario harness's slow-device fault: a value of
// 4 makes the device price each operation at 4x its profile cost.
// Factors below 1 (including 0) restore full speed. Safe to flip while
// operations are in flight; in-flight charges use whichever factor they
// observed.
func (d *Device) SetSlowdown(factor float64) {
	if factor < 1 {
		factor = 1
	}
	d.slow.Store(math.Float64bits(factor))
}

// Slowdown returns the current latency multiplier (1 when healthy).
func (d *Device) Slowdown() float64 {
	bits := d.slow.Load()
	if bits == 0 {
		return 1
	}
	return math.Float64frombits(bits)
}

// throttle applies the current slowdown factor to a priced latency.
func (d *Device) throttle(lat time.Duration) time.Duration {
	if f := d.Slowdown(); f > 1 {
		return time.Duration(float64(lat) * f)
	}
	return lat
}

// Resource exposes the busy-time accounting resource.
func (d *Device) Resource() *sim.Resource { return d.res }

// Read charges a read of size bytes and returns its modeled latency.
// random selects the random-access cost model. The busy time lands in
// sim.ClassOther; traffic-classified paths use ReadClass.
func (d *Device) Read(size int64, random bool) time.Duration {
	return d.ReadClass(sim.ClassOther, size, random)
}

// ReadClass is Read with the busy time accounted to a traffic class,
// so device charges separate foreground from maintenance work the same
// way NIC charges do.
func (d *Device) ReadClass(class sim.Class, size int64, random bool) time.Duration {
	if size < 0 {
		panic("device: negative read size")
	}
	var lat time.Duration
	if random {
		lat = d.profile.RandReadLat + transfer(size, d.profile.SeqReadBW)
	} else {
		lat = d.profile.SeqOpLat + transfer(size, d.profile.SeqReadBW)
	}
	lat = d.throttle(lat)
	d.mu.Lock()
	d.stats.Reads++
	d.stats.ReadBytes += size
	d.countKind(random)
	d.mu.Unlock()
	d.res.ChargeClass(class, lat/time.Duration(d.profile.Parallelism))
	return lat
}

// Write charges a write and returns its modeled latency. random selects
// the random-access cost model; overwrite marks an in-place update of
// previously written space (the paper's "write penalty"), which feeds the
// SSD wear model with whole-page programming. The busy time lands in
// sim.ClassOther; traffic-classified paths use WriteClass.
func (d *Device) Write(size int64, random, overwrite bool) time.Duration {
	return d.WriteClass(sim.ClassOther, size, random, overwrite)
}

// WriteClass is Write with the busy time accounted to a traffic class.
func (d *Device) WriteClass(class sim.Class, size int64, random, overwrite bool) time.Duration {
	if size < 0 {
		panic("device: negative write size")
	}
	var lat time.Duration
	if random {
		lat = d.profile.RandWriteLat + transfer(size, d.profile.SeqWriteBW)
	} else {
		lat = d.profile.SeqOpLat + transfer(size, d.profile.SeqWriteBW)
	}
	lat = d.throttle(lat)
	d.mu.Lock()
	d.stats.Writes++
	d.stats.WriteBytes += size
	d.countKind(random)
	if overwrite {
		d.stats.Overwrites++
		d.stats.OverwriteBytes += size
	}
	if ps := d.profile.PageSize; ps > 0 {
		programmed := size
		if overwrite {
			// The FTL programs whole pages: a 512 B in-place update
			// still burns a full page (and on sub-page writes, a
			// read-modify-write of that page).
			programmed = ((size + ps - 1) / ps) * ps
		}
		d.stats.ProgrammedBytes += programmed
	}
	d.mu.Unlock()
	d.res.ChargeClass(class, lat/time.Duration(d.profile.Parallelism))
	return lat
}

func (d *Device) countKind(random bool) {
	if random {
		d.stats.RandomOps++
	} else {
		d.stats.SeqOps++
	}
}

// Stats returns a snapshot of the accumulated workload, with EraseOps
// derived from programmed bytes at the profile's erase-block granularity.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	s := d.stats
	d.mu.Unlock()
	if eb := d.profile.EraseBlockSize; eb > 0 {
		s.EraseOps = (s.ProgrammedBytes + eb - 1) / eb
		if s.ProgrammedBytes == 0 {
			s.EraseOps = 0
		}
	}
	return s
}

// Reset clears both workload counters and busy time.
func (d *Device) Reset() {
	d.mu.Lock()
	d.stats = Stats{}
	d.mu.Unlock()
	d.res.Reset()
}

func transfer(size int64, bw float64) time.Duration {
	return time.Duration(float64(size) / bw * float64(time.Second))
}
