// Package logpool implements the TSUE log-pool structure (paper §3.2):
// fixed-size log units managed in a FIFO queue with the four-state
// lifecycle EMPTY → RECYCLABLE → RECYCLING → RECYCLED, a two-level index
// (block hash map + offset-sorted extent list + page bitmap, §3.3.1) that
// exploits the spatio-temporal locality of update streams, and a
// read-cache role for retained units (§3.3.3).
//
// The same pool type backs all three log layers — DataLog, DeltaLog and
// ParityLog — differing only in merge semantics: data logs overwrite
// (newest data wins, Eq. 4), delta and parity logs fold by XOR (Eq. 3).
//
// Pools are correctness-bearing state: recovery's consistency
// requirement (§2.3.2) is that every pool drains — recycles down to the
// backing blocks — before a failed node's stripes are reconstructed,
// which internal/ecfs enforces via the phase-ordered KDrainLogs
// broadcast ahead of every rebuild.
package logpool

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/gf256"
	"repro/internal/wire"
)

// MergeMode selects how same-address log records combine.
type MergeMode int

const (
	// Overwrite keeps only the newest bytes for an address (DataLog:
	// the latest update of a location supersedes earlier ones, Eq. 4).
	Overwrite MergeMode = iota
	// XorFold combines same-address records by XOR (DeltaLog and
	// ParityLog: deltas accumulate by field addition, Eq. 3).
	XorFold
	// NoMerge disables locality exploitation entirely; every record is
	// kept verbatim. Used by the Fig. 7 breakdown (baseline without
	// O1/O2) and by baseline strategies such as FL.
	NoMerge
)

func (m MergeMode) String() string {
	switch m {
	case Overwrite:
		return "overwrite"
	case XorFold:
		return "xorfold"
	case NoMerge:
		return "nomerge"
	default:
		return fmt.Sprintf("MergeMode(%d)", int(m))
	}
}

// Extent is a contiguous run of logged bytes within one block.
type Extent struct {
	Off  uint32
	Data []byte
	// V is the earliest virtual arrival time folded into this extent,
	// used for residence-time statistics (paper Table 2).
	V time.Duration
}

// End returns the exclusive end offset of the extent.
func (e Extent) End() uint32 { return e.Off + uint32(len(e.Data)) }

// bitmapPage is the granularity of the per-block presence bitmap used to
// short-circuit queries that cannot hit (paper §3.3.1).
const bitmapPage = 4 << 10

// blockIndex is the second index level: the extents logged for one block.
// In merging modes the extents are sorted by offset, non-overlapping and
// non-adjacent (adjacent runs are concatenated on insert); in NoMerge
// mode they are kept verbatim in arrival order.
type blockIndex struct {
	mode    MergeMode
	extents []Extent
	bitmap  []uint64
	bytes   int64 // summed extent payload (merged footprint)
}

func (bi *blockIndex) setBitmap(off, end uint32) {
	for p := off / bitmapPage; p <= (end-1)/bitmapPage; p++ {
		word, bit := p/64, p%64
		for int(word) >= len(bi.bitmap) {
			bi.bitmap = append(bi.bitmap, 0)
		}
		bi.bitmap[word] |= 1 << bit
	}
}

// mayContain reports whether any page of [off, end) is marked present.
func (bi *blockIndex) mayContain(off, end uint32) bool {
	if end <= off {
		return false
	}
	for p := off / bitmapPage; p <= (end-1)/bitmapPage; p++ {
		word, bit := p/64, p%64
		if int(word) >= len(bi.bitmap) {
			return false
		}
		if bi.bitmap[word]&(1<<bit) != 0 {
			return true
		}
	}
	return false
}

// insert merges [off, off+len(data)) into the index under the index's
// merge mode. The data slice is copied; callers may reuse their buffer.
func (bi *blockIndex) insert(off uint32, data []byte, v time.Duration) {
	if len(data) == 0 {
		return
	}
	end := off + uint32(len(data))
	bi.setBitmap(off, end)
	if bi.mode == NoMerge {
		bi.extents = append(bi.extents, Extent{Off: off, Data: append([]byte(nil), data...), V: v})
		bi.bytes += int64(len(data))
		return
	}
	// Locate the run of extents that overlap or touch [off, end).
	// extents are sorted by Off; find first with End() >= off and the
	// run while Off <= end (touching counts, to concatenate adjacency).
	first := sort.Search(len(bi.extents), func(i int) bool { return bi.extents[i].End() >= off })
	last := first
	for last < len(bi.extents) && bi.extents[last].Off <= end {
		last++
	}
	if first == last {
		// No overlap/adjacency: plain insert.
		bi.extents = append(bi.extents, Extent{})
		copy(bi.extents[first+1:], bi.extents[first:])
		bi.extents[first] = Extent{Off: off, Data: append([]byte(nil), data...), V: v}
		bi.bytes += int64(len(data))
		return
	}
	// Merge the run and the new data into one extent covering the union.
	lo, hi := off, end
	minV := v
	for i := first; i < last; i++ {
		e := bi.extents[i]
		if e.Off < lo {
			lo = e.Off
		}
		if e.End() > hi {
			hi = e.End()
		}
		if e.V < minV {
			minV = e.V
		}
	}
	buf := make([]byte, hi-lo)
	for i := first; i < last; i++ {
		e := bi.extents[i]
		copy(buf[e.Off-lo:], e.Data)
		bi.bytes -= int64(len(e.Data))
	}
	switch bi.mode {
	case Overwrite:
		copy(buf[off-lo:], data)
	case XorFold:
		gf256.XorSlice(buf[off-lo:end-lo], data)
	}
	merged := Extent{Off: lo, Data: buf, V: minV}
	bi.extents = append(bi.extents[:first+1], bi.extents[last:]...)
	bi.extents[first] = merged
	bi.bytes += int64(len(buf))
}

// lookup assembles [off, off+size) from the index. It returns (data,
// true) only when the range is fully covered — the read-cache fast path.
func (bi *blockIndex) lookup(off, size uint32) ([]byte, bool) {
	end := off + size
	if !bi.mayContain(off, end) {
		return nil, false
	}
	if bi.mode == NoMerge {
		// Arrival-ordered extents: serve only exact containment by the
		// newest covering record.
		for i := len(bi.extents) - 1; i >= 0; i-- {
			e := bi.extents[i]
			if e.Off <= off && e.End() >= end {
				return e.Data[off-e.Off : end-e.Off], true
			}
		}
		return nil, false
	}
	i := sort.Search(len(bi.extents), func(i int) bool { return bi.extents[i].End() > off })
	if i >= len(bi.extents) {
		return nil, false
	}
	e := bi.extents[i]
	if e.Off <= off && e.End() >= end {
		return e.Data[off-e.Off : end-e.Off], true
	}
	return nil, false
}

// overlay applies the indexed extents intersecting [off, off+len(dst))
// onto dst (dst starts at block offset off). Used on the read path to
// give read-your-writes over the base block content. In NoMerge mode
// extents are applied in arrival order, so the newest record wins.
func (bi *blockIndex) overlay(off uint32, dst []byte) {
	end := off + uint32(len(dst))
	if !bi.mayContain(off, end) {
		return
	}
	if bi.mode == NoMerge {
		for _, e := range bi.extents {
			if e.Off >= end || e.End() <= off {
				continue
			}
			from, to := maxU32(e.Off, off), minU32(e.End(), end)
			copy(dst[from-off:to-off], e.Data[from-e.Off:to-e.Off])
		}
		return
	}
	i := sort.Search(len(bi.extents), func(i int) bool { return bi.extents[i].End() > off })
	for ; i < len(bi.extents) && bi.extents[i].Off < end; i++ {
		e := bi.extents[i]
		from, to := maxU32(e.Off, off), minU32(e.End(), end)
		copy(dst[from-off:to-off], e.Data[from-e.Off:to-e.Off])
	}
}

func maxU32(a, b uint32) uint32 {
	if a > b {
		return a
	}
	return b
}

func minU32(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}

// BlockExtents is the per-block recycle work unit handed to RecycleFunc.
type BlockExtents struct {
	Block   wire.BlockID
	Extents []Extent
}
