package logpool

import "repro/internal/wire"

// Persist is the durable backing for one pool's log records. The
// internal/store engine's Layer handle satisfies it structurally; the
// pool stays import-free of the engine. Appends are persisted before
// the pool acknowledges them (log-before-ack); folds mark recycled
// records dead so a restart replays only work whose parity effect
// never happened.
type Persist interface {
	// AppendEntry durably logs one record under the unit generation it
	// was buffered in. v is the append's virtual timestamp.
	AppendEntry(gen uint64, block wire.BlockID, off uint32, v int64, data []byte)
	// FoldBlock marks every record for block in gen as recycled.
	FoldBlock(gen uint64, block wire.BlockID)
	// FoldUnit marks the whole generation recycled (covers units whose
	// recycle produced no per-block work).
	FoldUnit(gen uint64)
}

// PersistProvider hands out per-layer Persist handles keyed by pool
// name. A pool set resolves one handle per member pool.
type PersistProvider interface {
	Layer(name string) Persist
}

// PersistFunc adapts a function to PersistProvider for tests.
type PersistFunc func(name string) Persist

// Layer implements PersistProvider.
func (f PersistFunc) Layer(name string) Persist { return f(name) }
