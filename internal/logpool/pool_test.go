package logpool

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/wire"
)

func blk(i int) wire.BlockID { return wire.BlockID{Ino: 1, Stripe: uint32(i), Idx: 0} }

func testCfg(unitSize int64, maxUnits int) Config {
	return Config{Name: "test", Mode: Overwrite, UnitSize: unitSize, MaxUnits: maxUnits}
}

func TestPoolConfigValidation(t *testing.T) {
	if _, err := NewPool(Config{UnitSize: 0, MaxUnits: 2}); err == nil {
		t.Fatal("zero unit size must fail")
	}
	if _, err := NewPool(Config{UnitSize: 10, MaxUnits: 0}); err == nil {
		t.Fatal("zero max units must fail")
	}
}

func TestAppendAndLookup(t *testing.T) {
	p := MustNewPool(testCfg(1<<20, 4))
	defer p.Close()
	p.Append(blk(1), 100, []byte("hello"), 0)
	d, ok := p.Lookup(blk(1), 100, 5)
	if !ok || string(d) != "hello" {
		t.Fatalf("lookup = %q, %v", d, ok)
	}
	if _, ok := p.Lookup(blk(2), 100, 5); ok {
		t.Fatal("lookup of unlogged block must miss")
	}
	s := p.Stats()
	if s.AppendedEntries != 1 || s.AppendedBytes != 5 {
		t.Fatalf("stats wrong: %+v", s)
	}
	if s.CacheHits != 1 || s.CacheMisses != 1 {
		t.Fatalf("cache stats wrong: %+v", s)
	}
}

func TestUnitSealsWhenFull(t *testing.T) {
	p := MustNewPool(testCfg(100, 4))
	defer p.Close()
	p.Append(blk(1), 0, make([]byte, 80), 0) // 80+32 >= 100 -> seals
	states := p.UnitStates()
	if len(states) == 0 || states[0] != Recyclable {
		t.Fatalf("unit should be RECYCLABLE, states=%v", states)
	}
	u := p.TakeRecyclable(false)
	if u == nil {
		t.Fatal("expected a recyclable unit")
	}
	blocks := u.Blocks()
	if len(blocks) != 1 || len(blocks[0].Extents) != 1 {
		t.Fatalf("unit content wrong: %+v", blocks)
	}
	p.FinishRecycle(u, time.Microsecond, time.Microsecond, 1, 1, 80)
	if got := p.Stats().UnitsRecycled; got != 1 {
		t.Fatalf("units recycled = %d", got)
	}
}

func TestRotationReusesRecycled(t *testing.T) {
	p := MustNewPool(testCfg(100, 2))
	defer p.Close()
	p.Append(blk(1), 0, make([]byte, 80), 0) // seal #1
	u := p.TakeRecyclable(false)
	p.FinishRecycle(u, 0, 0, 1, 1, 80)
	p.Append(blk(2), 0, make([]byte, 80), 0) // seal #2 (new unit)
	u2 := p.TakeRecyclable(false)
	p.FinishRecycle(u2, 0, 0, 1, 1, 80)
	// Third append must reuse a recycled unit, not exceed MaxUnits.
	p.Append(blk(3), 0, []byte("x"), 0)
	if got := p.Stats().UnitsAllocated; got > 2 {
		t.Fatalf("allocated %d units, quota is 2", got)
	}
}

func TestBackpressureBlocksUntilRecycle(t *testing.T) {
	p := MustNewPool(testCfg(100, 1))
	defer p.Close()
	p.Append(blk(1), 0, make([]byte, 80), 0) // seals the only unit

	var appended atomic.Bool
	done := make(chan struct{})
	go func() {
		p.Append(blk(2), 0, []byte("y"), 0) // must block: no unit free
		appended.Store(true)
		close(done)
	}()
	time.Sleep(20 * time.Millisecond)
	if appended.Load() {
		t.Fatal("append should have blocked under quota pressure")
	}
	u := p.TakeRecyclable(false)
	if u == nil {
		t.Fatal("expected recyclable unit")
	}
	p.FinishRecycle(u, 0, 0, 1, 1, 80)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("append did not unblock after recycle")
	}
}

func TestOverlayPendingOnly(t *testing.T) {
	p := MustNewPool(testCfg(100, 2))
	defer p.Close()
	p.Append(blk(1), 4, []byte{7, 7}, 0)
	dst := make([]byte, 8)
	p.Overlay(blk(1), 0, dst)
	if dst[4] != 7 || dst[5] != 7 {
		t.Fatalf("pending overlay missing: %v", dst)
	}
	// Recycle it; overlay must no longer apply (content is on disk).
	p.SealActive(0)
	u := p.TakeRecyclable(false)
	p.FinishRecycle(u, 0, 0, 1, 1, 2)
	dst = make([]byte, 8)
	p.Overlay(blk(1), 0, dst)
	if dst[4] != 0 {
		t.Fatalf("recycled overlay must not apply: %v", dst)
	}
	// But the cache still serves lookups until the unit is reused.
	if d, ok := p.Lookup(blk(1), 4, 2); !ok || d[0] != 7 {
		t.Fatal("recycled unit must serve as read cache")
	}
}

func TestOverlayOrderAcrossUnits(t *testing.T) {
	p := MustNewPool(testCfg(64, 4))
	defer p.Close()
	p.Append(blk(1), 0, bytes.Repeat([]byte{1}, 40), 0) // seals unit 1
	p.Append(blk(1), 2, bytes.Repeat([]byte{2}, 4), 0)  // unit 2
	dst := make([]byte, 8)
	p.Overlay(blk(1), 0, dst)
	want := []byte{1, 1, 2, 2, 2, 2, 1, 1}
	if !bytes.Equal(dst, want) {
		t.Fatalf("cross-unit overlay = %v, want %v", dst, want)
	}
}

func TestLookupOverlaysNewerUnits(t *testing.T) {
	p := MustNewPool(testCfg(64, 4))
	defer p.Close()
	// A full-covering record seals into unit 1; a newer partial update
	// lands in unit 2. A covering lookup must serve the newer bytes, not
	// the sealed unit's stale full cover.
	p.Append(blk(1), 0, bytes.Repeat([]byte{1}, 40), 0) // seals unit 1
	p.Append(blk(1), 8, bytes.Repeat([]byte{2}, 4), 0)  // unit 2
	d, ok := p.Lookup(blk(1), 0, 40)
	if !ok {
		t.Fatal("full range should hit the cache")
	}
	want := append(bytes.Repeat([]byte{1}, 8), append(bytes.Repeat([]byte{2}, 4), bytes.Repeat([]byte{1}, 28)...)...)
	if !bytes.Equal(d, want) {
		t.Fatalf("lookup ignored newer unit: got %v, want %v", d[:16], want[:16])
	}
	// The same holds after the covering unit recycles into a read-cache
	// role: the retained index is still older than the pending update.
	u := p.TakeRecyclable(false)
	if u == nil {
		t.Fatal("expected recyclable unit")
	}
	p.FinishRecycle(u, 0, 0, 1, 1, 40)
	if d, ok = p.Lookup(blk(1), 0, 40); !ok || !bytes.Equal(d, want) {
		t.Fatalf("post-recycle lookup ignored newer unit: ok=%v got %v", ok, d[:16])
	}
}

func TestDrainWithRecycler(t *testing.T) {
	p := MustNewPool(testCfg(128, 3))
	var recycled atomic.Int64
	StartRecycler(p, 2, func(be BlockExtents, sealV time.Duration) time.Duration {
		recycled.Add(int64(len(be.Extents)))
		return time.Microsecond
	})
	for i := 0; i < 50; i++ {
		p.Append(blk(i%5), uint32(i*8), make([]byte, 8), time.Duration(i))
	}
	p.Drain(100)
	if recycled.Load() == 0 {
		t.Fatal("nothing recycled")
	}
	if pend := p.PendingBytes(); pend != 0 {
		t.Fatalf("pending bytes after drain = %d", pend)
	}
	p.Close()
}

func TestRecyclerPerBlockOrdering(t *testing.T) {
	p := MustNewPool(Config{Name: "ord", Mode: NoMerge, UnitSize: 80, MaxUnits: 8})
	var mu sync.Mutex
	seen := map[wire.BlockID][]byte{}
	StartRecycler(p, 4, func(be BlockExtents, _ time.Duration) time.Duration {
		mu.Lock()
		defer mu.Unlock()
		for _, e := range be.Extents {
			seen[be.Block] = append(seen[be.Block], e.Data[0])
		}
		return 0
	})
	// Two appends per block per unit; units seal every ~2 appends.
	for round := byte(0); round < 10; round++ {
		p.Append(blk(1), 0, []byte{round}, 0)
		p.Append(blk(2), 0, []byte{round}, 0)
	}
	p.Drain(0)
	mu.Lock()
	defer mu.Unlock()
	for b, order := range seen {
		for i := 1; i < len(order); i++ {
			if order[i] < order[i-1] {
				t.Fatalf("block %v recycled out of order: %v", b, order)
			}
		}
	}
	p.Close()
}

func TestConcurrentAppendersWithRecycler(t *testing.T) {
	p := MustNewPool(testCfg(4<<10, 4))
	StartRecycler(p, 4, func(be BlockExtents, _ time.Duration) time.Duration {
		return time.Microsecond
	})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				p.Append(blk(g*1000+i%7), uint32(i*16), make([]byte, 16), 0)
			}
		}(g)
	}
	wg.Wait()
	p.Drain(0)
	s := p.Stats()
	if s.AppendedEntries != 1600 {
		t.Fatalf("appended = %d, want 1600", s.AppendedEntries)
	}
	p.Close()
}

func TestLocalityMergingReducesRecycleWork(t *testing.T) {
	// 100 updates to the same 8 bytes must recycle as ~1 extent.
	p := MustNewPool(Config{Name: "loc", Mode: Overwrite, UnitSize: 1 << 20, MaxUnits: 2})
	for i := 0; i < 100; i++ {
		p.Append(blk(1), 64, make([]byte, 8), 0)
	}
	var extents atomic.Int64
	StartRecycler(p, 1, func(be BlockExtents, _ time.Duration) time.Duration {
		extents.Add(int64(len(be.Extents)))
		return 0
	})
	p.Drain(0)
	if extents.Load() != 1 {
		t.Fatalf("recycled %d extents, want 1 (temporal locality)", extents.Load())
	}
	s := p.Stats()
	if s.RecycledBytes != 8 || s.AppendedBytes != 800 {
		t.Fatalf("merge accounting wrong: %+v", s)
	}
	p.Close()
}

func TestDevicePersistenceCharged(t *testing.T) {
	dev := device.New("ssd", device.ChameleonSSD())
	p := MustNewPool(Config{Name: "dev", Mode: Overwrite, UnitSize: 1 << 20, MaxUnits: 2, Device: dev})
	defer p.Close()
	cost := p.Append(blk(1), 0, make([]byte, 4096), 0)
	if cost <= 0 {
		t.Fatal("append must charge the device")
	}
	st := dev.Stats()
	if st.Writes != 1 || st.SeqOps != 1 || st.RandomOps != 0 {
		t.Fatalf("append must be one sequential write: %+v", st)
	}
}

func TestMemoryBytes(t *testing.T) {
	p := MustNewPool(testCfg(1<<20, 4))
	defer p.Close()
	if p.MemoryBytes() != 1<<20 {
		t.Fatalf("one unit allocated: %d", p.MemoryBytes())
	}
}

func TestPoolSetRouting(t *testing.T) {
	ps, err := NewPoolSet(4, testCfg(1<<20, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	if len(ps.Pools()) != 4 {
		t.Fatal("want 4 pools")
	}
	// Same block always routes to the same pool.
	b := blk(42)
	p1, p2 := ps.Pick(b), ps.Pick(b)
	if p1 != p2 {
		t.Fatal("routing must be stable")
	}
	ps.Append(b, 0, []byte("data"), 0)
	if d, ok := ps.Lookup(b, 0, 4); !ok || string(d) != "data" {
		t.Fatal("poolset lookup failed")
	}
	dst := make([]byte, 4)
	ps.Overlay(b, 0, dst)
	if string(dst) != "data" {
		t.Fatal("poolset overlay failed")
	}
	if ps.Stats().AppendedEntries != 1 {
		t.Fatal("poolset stats missing")
	}
	if ps.MemoryBytes() != 4<<20 {
		t.Fatalf("poolset memory = %d", ps.MemoryBytes())
	}
}

func TestSealActiveEmptyNoop(t *testing.T) {
	p := MustNewPool(testCfg(100, 2))
	defer p.Close()
	p.SealActive(0)
	if u := p.TakeRecyclable(false); u != nil {
		t.Fatal("sealing an empty unit must not produce recyclable work")
	}
}

func TestCloseUnblocksWaiters(t *testing.T) {
	p := MustNewPool(testCfg(100, 1))
	p.Append(blk(1), 0, make([]byte, 80), 0) // seal the only unit
	done := make(chan struct{})
	go func() {
		p.Append(blk(2), 0, []byte("z"), 0) // blocks
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	p.Close()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not unblock appender")
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{Empty: "EMPTY", Recyclable: "RECYCLABLE", Recycling: "RECYCLING", Recycled: "RECYCLED"} {
		if s.String() != want {
			t.Fatalf("%v != %s", s, want)
		}
	}
	if State(9).String() == "" {
		t.Fatal("unknown state must stringify")
	}
}
