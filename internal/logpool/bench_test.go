package logpool

import (
	"testing"
	"time"

	"repro/internal/wire"
)

// BenchmarkAppendHotBlock measures the append fast path under maximal
// temporal locality (every record hits one block) — the workload TSUE's
// two-level index is optimized for.
func BenchmarkAppendHotBlock(b *testing.B) {
	p := MustNewPool(Config{Name: "b", Mode: Overwrite, UnitSize: 1 << 30, MaxUnits: 2})
	defer p.Close()
	block := wire.BlockID{Ino: 1}
	data := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Append(block, uint32(i%256)*4096, data, time.Duration(i))
	}
}

// BenchmarkAppendScattered measures appends across many blocks (the
// first index level).
func BenchmarkAppendScattered(b *testing.B) {
	p := MustNewPool(Config{Name: "b", Mode: Overwrite, UnitSize: 1 << 30, MaxUnits: 2})
	defer p.Close()
	data := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		block := wire.BlockID{Ino: uint64(i % 1024)}
		p.Append(block, uint32(i%64)*4096, data, time.Duration(i))
	}
}

// BenchmarkLookupCacheHit measures the read-cache fast path (§3.3.3).
func BenchmarkLookupCacheHit(b *testing.B) {
	p := MustNewPool(Config{Name: "b", Mode: Overwrite, UnitSize: 1 << 30, MaxUnits: 2})
	defer p.Close()
	block := wire.BlockID{Ino: 1}
	p.Append(block, 0, make([]byte, 64<<10), 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := p.Lookup(block, uint32(i%60)<<10, 4096); !ok {
			b.Fatal("expected hit")
		}
	}
}
