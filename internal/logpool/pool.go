package logpool

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/device"
	"repro/internal/sim"
	"repro/internal/wire"
)

// State is the lifecycle state of a log unit (paper Fig. 3).
type State int

const (
	// Empty units accept appends; exactly one Empty unit is active.
	Empty State = iota
	// Recyclable units are sealed and queued for recycling.
	Recyclable
	// Recycling units are being merged into blocks by recycle workers.
	Recycling
	// Recycled units have been merged; their index is retained as a
	// read cache until the unit is reused for new appends.
	Recycled
)

func (s State) String() string {
	switch s {
	case Empty:
		return "EMPTY"
	case Recyclable:
		return "RECYCLABLE"
	case Recycling:
		return "RECYCLING"
	case Recycled:
		return "RECYCLED"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// entryHeader approximates the persisted per-record framing (block id,
// offset, length, checksum).
const entryHeader = 32

// Unit is one fixed-size log unit.
type Unit struct {
	id    int
	state State
	// gen is the unit's incarnation for durable persistence: unit
	// objects are reused after recycling (rotateLocked), so each reuse
	// gets a fresh generation and the persisted records of different
	// fillings never alias.
	gen uint64

	mu      sync.RWMutex
	blocks  map[wire.BlockID]*blockIndex
	raw     int64 // appended payload incl. headers (fill level)
	entries int64 // records appended (pre-merge)

	firstV, sealV time.Duration // virtual times for residence stats
	hasFirst      bool
	sealSeq       int // global seal order within the pool
}

// ID returns the unit's creation ordinal.
func (u *Unit) ID() int { return u.id }

// Entries returns the number of records appended to the unit (pre-merge).
func (u *Unit) Entries() int64 {
	u.mu.RLock()
	defer u.mu.RUnlock()
	return u.entries
}

// SealV returns the virtual time at which the unit was sealed.
func (u *Unit) SealV() time.Duration {
	u.mu.RLock()
	defer u.mu.RUnlock()
	return u.sealV
}

// Blocks returns the recycle work: per-block merged extents, blocks in a
// deterministic order, extents sorted by offset (or arrival order in
// NoMerge mode).
func (u *Unit) Blocks() []BlockExtents {
	u.mu.RLock()
	defer u.mu.RUnlock()
	out := make([]BlockExtents, 0, len(u.blocks))
	for id, bi := range u.blocks {
		exts := make([]Extent, len(bi.extents))
		copy(exts, bi.extents)
		out = append(out, BlockExtents{Block: id, Extents: exts})
	}
	sort.Slice(out, func(i, j int) bool { return lessBlock(out[i].Block, out[j].Block) })
	return out
}

func lessBlock(a, b wire.BlockID) bool {
	if a.Ino != b.Ino {
		return a.Ino < b.Ino
	}
	if a.Stripe != b.Stripe {
		return a.Stripe < b.Stripe
	}
	return a.Idx < b.Idx
}

// Stats is a pool-level snapshot.
type Stats struct {
	AppendedEntries int64
	AppendedBytes   int64 // payload bytes appended (pre-merge)
	RecycledExtents int64 // extents handed to recycle after merging
	RecycledBytes   int64 // payload bytes after merging
	UnitsRecycled   int64
	UnitsAllocated  int // high-water mark of allocated units
	CacheHits       int64
	CacheMisses     int64
	// Residence statistics (virtual time), for Table 2.
	AppendCost   time.Duration // summed device cost of appends
	BufferTime   time.Duration // summed (seal - append) virtual residency
	RecycleCost  time.Duration // summed device cost charged by recyclers
	RecycleCount int64         // entries included in RecycleCost
	// Stall statistics: appends that found every unit busy. The modeled
	// stall duration is derived from the virtual recycle frontier — this
	// is what makes a too-shallow pool (Fig. 6b, maxUnits=2) visibly
	// slower in the deterministic timing model.
	Stalls    int64
	StallTime time.Duration
}

// Config parameterizes a pool.
type Config struct {
	Name     string
	Mode     MergeMode
	UnitSize int64 // capacity of one unit (paper default 16 MiB)
	MinUnits int   // retained floor (paper: 2)
	MaxUnits int   // quota ceiling (paper default: 4, swept 2..20 in Fig. 6b)
	// Device receives the sequential persistence writes of appends. May
	// be nil (pure in-memory log, used in unit tests).
	Device *device.Device
	// Class is the traffic class append device charges account to
	// (foreground-write for front-end logs, other for internal layers).
	Class sim.Class
	// Persist optionally backs the pool with durable per-layer log
	// segments (the internal/store engine); resolved by pool name.
	Persist PersistProvider
}

func (c *Config) sanitize() error {
	if c.UnitSize <= 0 {
		return fmt.Errorf("logpool %q: non-positive unit size", c.Name)
	}
	if c.MaxUnits < 1 {
		return fmt.Errorf("logpool %q: need at least one unit", c.Name)
	}
	if c.MinUnits < 1 {
		c.MinUnits = 1
	}
	if c.MinUnits > c.MaxUnits {
		c.MinUnits = c.MaxUnits
	}
	return nil
}

// Pool is a FIFO queue of log units backing one log pool of one layer.
type Pool struct {
	cfg     Config
	persist Persist // resolved per-layer handle, nil without Config.Persist

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []*Unit // FIFO: oldest first; active unit is the last
	active  *Unit
	nextID  int
	nextGen uint64
	stats   Stats
	closed  bool
	pending int // units in Recyclable/Recycling state
	// slots model the virtual recycle pipeline: up to MaxUnits-1 sealed
	// units recycle concurrently (the paper: "multiple log units marked
	// as RECYCLABLE can be recycled concurrently"), so completions are
	// computed against MaxUnits-1 round-robin virtual lanes.
	slots []time.Duration
	// sealSeq numbers sealed units; completions[i] records when seal #i
	// finished recycling (virtual time) and how long its recycle took.
	// An append filling seal #s could not have started before seal
	// #(s - MaxUnits) completed — the quota is the pipeline depth — so
	// the overlap is accounted as stall (the Fig. 6b effect). Clients
	// are closed-loop: a blocked append waits at most for the head unit
	// to free a slot, so the per-unit stall is capped at that unit's
	// recycle wall time.
	sealSeq     int
	completions map[int]completionRec
}

type completionRec struct {
	done time.Duration
	wall time.Duration
}

// NewPool creates a pool with one active empty unit.
func NewPool(cfg Config) (*Pool, error) {
	if err := cfg.sanitize(); err != nil {
		return nil, err
	}
	p := &Pool{cfg: cfg, completions: make(map[int]completionRec)}
	if cfg.Persist != nil {
		p.persist = cfg.Persist.Layer(cfg.Name)
	}
	lanes := cfg.MaxUnits - 1
	if lanes < 1 {
		lanes = 1
	}
	p.slots = make([]time.Duration, lanes)
	p.cond = sync.NewCond(&p.mu)
	p.active = p.newUnitLocked()
	p.queue = append(p.queue, p.active)
	return p, nil
}

// MustNewPool panics on configuration errors; for tests and literals.
func MustNewPool(cfg Config) *Pool {
	p, err := NewPool(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// Config returns the pool's configuration.
func (p *Pool) Config() Config { return p.cfg }

func (p *Pool) newUnitLocked() *Unit {
	u := &Unit{id: p.nextID, gen: p.nextGen, state: Empty, blocks: make(map[wire.BlockID]*blockIndex)}
	p.nextID++
	p.nextGen++
	if n := p.allocatedLocked() + 1; n > p.stats.UnitsAllocated {
		p.stats.UnitsAllocated = n
	}
	return u
}

func (p *Pool) allocatedLocked() int { return len(p.queue) }

// Append logs one record and returns the modeled device cost of
// persisting it (a sequential append). It blocks when every unit is in
// use and the quota is reached, which is exactly the backpressure the
// paper's memory quota imposes (§3.2.1).
func (p *Pool) Append(block wire.BlockID, off uint32, data []byte, v time.Duration) time.Duration {
	if len(data) == 0 {
		return 0
	}
	var stall time.Duration
	p.mu.Lock()
	for p.active == nil && !p.closed {
		p.rotateLocked()
		if p.active == nil {
			p.cond.Wait()
		}
	}
	if p.closed {
		p.mu.Unlock()
		return 0
	}
	u := p.active
	u.mu.Lock() // acquire before releasing pool lock so seal order holds
	if !u.hasFirst {
		u.firstV, u.hasFirst = v, true
	}
	p.stats.AppendedEntries++
	p.stats.AppendedBytes += int64(len(data))
	u.raw += int64(len(data)) + entryHeader
	u.entries++
	full := u.raw >= p.cfg.UnitSize
	if full {
		u.state = Recyclable
		u.sealV = v
		u.sealSeq = p.sealSeq
		p.sealSeq++
		p.active = nil
		p.pending++
		// Quota-depth stall: this unit's appends could not begin until
		// the unit MaxUnits seals back had finished recycling, and wait
		// at most for that unit's recycle to free its slot.
		if prev := u.sealSeq - p.cfg.MaxUnits; prev >= 0 && u.hasFirst {
			if comp, ok := p.completions[prev]; ok && comp.done > u.firstV {
				st := comp.done - u.firstV
				if st > comp.wall {
					st = comp.wall
				}
				p.stats.Stalls++
				p.stats.StallTime += st
				stall += st
				delete(p.completions, prev)
			}
		}
	}
	p.mu.Unlock()

	bi := u.blocks[block]
	if bi == nil {
		bi = &blockIndex{mode: p.cfg.Mode}
		u.blocks[block] = bi
	}
	bi.insert(off, data, v)
	if p.persist != nil {
		// Log-before-ack, still under the unit lock so no fold for this
		// generation can be recorded before the entry itself lands.
		p.persist.AppendEntry(u.gen, block, off, int64(v), data)
	}
	u.mu.Unlock()

	var cost time.Duration
	if p.cfg.Device != nil {
		cost = p.cfg.Device.WriteClass(p.cfg.Class, int64(len(data))+entryHeader, false, false)
	}
	p.mu.Lock()
	p.stats.AppendCost += cost
	if full {
		p.cond.Broadcast() // wake recyclers waiting in TakeRecyclable
	}
	p.mu.Unlock()
	return cost + stall
}

// rotateLocked installs a new active unit if capacity allows: an Empty
// unit if one exists, else the oldest Recycled unit (clearing its cached
// index), else a fresh allocation under the MaxUnits quota.
func (p *Pool) rotateLocked() {
	for _, u := range p.queue {
		if u.state == Empty && u != p.active {
			p.active = u
			p.moveToTailLocked(u)
			return
		}
	}
	for _, u := range p.queue {
		if u.state == Recycled {
			u.mu.Lock()
			u.blocks = make(map[wire.BlockID]*blockIndex)
			u.raw = 0
			u.entries = 0
			u.hasFirst = false
			u.state = Empty
			u.gen = p.nextGen // fresh incarnation for the reused object
			p.nextGen++
			u.mu.Unlock()
			p.active = u
			p.moveToTailLocked(u)
			return
		}
	}
	if len(p.queue) < p.cfg.MaxUnits {
		u := p.newUnitLocked()
		p.queue = append(p.queue, u)
		p.active = u
	}
}

func (p *Pool) moveToTailLocked(u *Unit) {
	for i, q := range p.queue {
		if q == u {
			p.queue = append(append(p.queue[:i], p.queue[i+1:]...), u)
			return
		}
	}
}

// SealActive force-seals a non-empty active unit so it becomes
// recyclable (used by Drain and by recovery preparation).
func (p *Pool) SealActive(v time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	u := p.active
	if u == nil {
		return
	}
	u.mu.Lock()
	nonEmpty := u.raw > 0
	if nonEmpty {
		u.state = Recyclable
		u.sealV = v
		u.sealSeq = p.sealSeq
		p.sealSeq++
		p.active = nil
		p.pending++
	}
	u.mu.Unlock()
	if nonEmpty {
		p.cond.Broadcast()
	}
}

// TakeRecyclable returns the oldest Recyclable unit, marking it
// Recycling. With wait=true it blocks until a unit is available or the
// pool is closed; with wait=false it returns nil immediately on none.
func (p *Pool) TakeRecyclable(wait bool) *Unit {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		for _, u := range p.queue {
			if u.state == Recyclable {
				u.state = Recycling
				return u
			}
		}
		if !wait || p.closed {
			return nil
		}
		p.cond.Wait()
	}
}

// FinishRecycle transitions a Recycling unit to Recycled, retaining its
// index as a read cache, and accounts residence statistics. recycleCost
// is the total modeled cost of the unit's recycle; wall is its modeled
// wall-clock duration (cost divided by recycle parallelism), which
// advances the virtual recycle frontier used for stall modeling.
func (p *Pool) FinishRecycle(u *Unit, recycleCost, wall time.Duration, entries, extents, bytes int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if u.state != Recycling {
		panic(fmt.Sprintf("logpool %q: FinishRecycle on unit in state %v", p.cfg.Name, u.state))
	}
	u.mu.Lock()
	u.state = Recycled
	if p.persist != nil {
		// Every record of this incarnation has been recycled: mark the
		// generation dead so a restart does not replay it (and the
		// compactor can reclaim the segment file).
		p.persist.FoldUnit(u.gen)
	}
	if u.hasFirst {
		p.stats.BufferTime += (u.sealV - u.firstV)
	}
	lane := u.sealSeq % len(p.slots)
	start := p.slots[lane]
	if u.sealV > start {
		start = u.sealV
	}
	done := start + wall
	p.slots[lane] = done
	p.completions[u.sealSeq] = completionRec{done: done, wall: wall}
	u.mu.Unlock()
	p.pending--
	p.stats.UnitsRecycled++
	p.stats.RecycledExtents += extents
	p.stats.RecycledBytes += bytes
	p.stats.RecycleCost += recycleCost
	p.stats.RecycleCount += entries
	// Shrink beyond the retained floor when idle (paper §3.2.2).
	p.shrinkLocked()
	p.cond.Broadcast()
}

// shrinkLocked releases surplus Recycled units above MinUnits.
func (p *Pool) shrinkLocked() {
	recycled := 0
	for _, u := range p.queue {
		if u.state == Recycled {
			recycled++
		}
	}
	for i := 0; i < len(p.queue) && len(p.queue) > p.cfg.MinUnits && recycled > 1; {
		if p.queue[i].state == Recycled {
			p.queue = append(p.queue[:i], p.queue[i+1:]...)
			recycled--
			continue
		}
		i++
	}
}

// Drain seals the active unit and waits until no unit remains
// recyclable or recycling. Recycle workers must be running.
func (p *Pool) Drain(v time.Duration) {
	p.SealActive(v)
	p.WaitIdle()
}

// WaitIdle waits until all *sealed* units have been recycled, without
// sealing the active unit — the steady state of real-time recycling.
func (p *Pool) WaitIdle() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.pending > 0 && !p.closed {
		p.cond.Wait()
	}
}

// Close unblocks all waiters; further appends are dropped.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
}

// Lookup serves a read from the log working as a cache: it scans units
// newest-to-oldest for a full covering of [off, off+size). A covering
// unit is not necessarily current for every byte — a newer unit may
// hold a partial update inside the range — so the newer units' extents
// are overlaid, oldest to newest, before the content is returned. The
// returned slice aliases internal storage only when no overlay was
// needed and must not be modified.
func (p *Pool) Lookup(block wire.BlockID, off, size uint32) ([]byte, bool) {
	p.mu.Lock()
	units := make([]*Unit, len(p.queue))
	copy(units, p.queue)
	p.mu.Unlock()
	for i := len(units) - 1; i >= 0; i-- {
		u := units[i]
		u.mu.RLock()
		bi := u.blocks[block]
		var data []byte
		ok := false
		if bi != nil {
			data, ok = bi.lookup(off, size)
		}
		u.mu.RUnlock()
		if !ok {
			continue
		}
		copied := false
		for j := i + 1; j < len(units); j++ {
			nu := units[j]
			nu.mu.RLock()
			if nbi := nu.blocks[block]; nbi != nil {
				if !copied {
					data = append([]byte(nil), data...)
					copied = true
				}
				nbi.overlay(off, data)
			}
			nu.mu.RUnlock()
		}
		p.mu.Lock()
		p.stats.CacheHits++
		p.mu.Unlock()
		return data, true
	}
	p.mu.Lock()
	p.stats.CacheMisses++
	p.mu.Unlock()
	return nil, false
}

// Overlay applies all *pending* (not yet recycled) log content for block
// onto dst, which starts at block offset off. Units are applied oldest
// to newest so later updates win. This gives the read path
// read-your-writes semantics over the base block content.
func (p *Pool) Overlay(block wire.BlockID, off uint32, dst []byte) {
	// u.state is guarded by p.mu, so the pending filter happens while
	// snapshotting the queue; a unit recycled between the snapshot and
	// the overlay applies content the base block now also holds, which
	// oldest-to-newest application keeps correct.
	p.mu.Lock()
	units := make([]*Unit, 0, len(p.queue))
	for _, u := range p.queue {
		if u.state != Recycled { // recycled content already on disk
			units = append(units, u)
		}
	}
	p.mu.Unlock()
	for _, u := range units {
		u.mu.RLock()
		if bi := u.blocks[block]; bi != nil {
			bi.overlay(off, dst)
		}
		u.mu.RUnlock()
	}
}

// PendingBytes returns the payload bytes awaiting recycle.
func (p *Pool) PendingBytes() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var n int64
	for _, u := range p.queue {
		if u.state != Recycled {
			u.mu.RLock()
			for _, bi := range u.blocks {
				n += bi.bytes
			}
			u.mu.RUnlock()
		}
	}
	return n
}

// MemoryBytes returns the resident footprint: allocated units times unit
// size (buffers).
func (p *Pool) MemoryBytes() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return int64(len(p.queue)) * p.cfg.UnitSize
}

// QuotaBytes returns the configured ceiling (MaxUnits x UnitSize) — the
// memory budget Fig. 6b sweeps.
func (p *Pool) QuotaBytes() int64 {
	return int64(p.cfg.MaxUnits) * p.cfg.UnitSize
}

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// UnitStates returns the current unit states oldest-first (diagnostics).
func (p *Pool) UnitStates() []State {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]State, len(p.queue))
	for i, u := range p.queue {
		out[i] = u.state
	}
	return out
}
