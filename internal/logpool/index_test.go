package logpool

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func mk(n int, fill byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = fill
	}
	return b
}

func TestInsertDisjoint(t *testing.T) {
	bi := &blockIndex{mode: Overwrite}
	bi.insert(100, mk(10, 1), 0)
	bi.insert(300, mk(10, 2), 0)
	bi.insert(0, mk(10, 3), 0)
	if len(bi.extents) != 3 {
		t.Fatalf("extents = %d, want 3", len(bi.extents))
	}
	// Sorted by offset.
	if bi.extents[0].Off != 0 || bi.extents[1].Off != 100 || bi.extents[2].Off != 300 {
		t.Fatalf("not sorted: %+v", bi.extents)
	}
	if bi.bytes != 30 {
		t.Fatalf("bytes = %d, want 30", bi.bytes)
	}
}

func TestInsertAdjacentConcatenates(t *testing.T) {
	bi := &blockIndex{mode: Overwrite}
	bi.insert(0, mk(8, 1), 0)
	bi.insert(8, mk(8, 2), 0) // touching: must concatenate
	if len(bi.extents) != 1 {
		t.Fatalf("adjacent extents not merged: %d", len(bi.extents))
	}
	e := bi.extents[0]
	if e.Off != 0 || len(e.Data) != 16 || e.Data[0] != 1 || e.Data[8] != 2 {
		t.Fatalf("merged extent wrong: %+v", e)
	}
}

func TestInsertOverwriteNewestWins(t *testing.T) {
	bi := &blockIndex{mode: Overwrite}
	bi.insert(0, mk(16, 1), 0)
	bi.insert(4, mk(4, 9), 0) // overlap in the middle
	if len(bi.extents) != 1 {
		t.Fatalf("extents = %d, want 1", len(bi.extents))
	}
	d := bi.extents[0].Data
	want := []byte{1, 1, 1, 1, 9, 9, 9, 9, 1, 1, 1, 1, 1, 1, 1, 1}
	if !bytes.Equal(d, want) {
		t.Fatalf("data = %v, want %v", d, want)
	}
	if bi.bytes != 16 {
		t.Fatalf("bytes = %d, want 16", bi.bytes)
	}
}

func TestInsertXorFolds(t *testing.T) {
	bi := &blockIndex{mode: XorFold}
	bi.insert(0, []byte{0x0f, 0x0f}, 0)
	bi.insert(0, []byte{0xf0, 0x01}, 0)
	if len(bi.extents) != 1 {
		t.Fatalf("extents = %d, want 1", len(bi.extents))
	}
	if !bytes.Equal(bi.extents[0].Data, []byte{0xff, 0x0e}) {
		t.Fatalf("xor result wrong: %v", bi.extents[0].Data)
	}
}

func TestInsertSpansMultipleExtents(t *testing.T) {
	bi := &blockIndex{mode: Overwrite}
	bi.insert(0, mk(4, 1), 0)
	bi.insert(8, mk(4, 2), 0)
	bi.insert(2, mk(8, 7), 0) // bridges both
	if len(bi.extents) != 1 {
		t.Fatalf("extents = %d, want 1", len(bi.extents))
	}
	e := bi.extents[0]
	if e.Off != 0 || len(e.Data) != 12 {
		t.Fatalf("span wrong: off=%d len=%d", e.Off, len(e.Data))
	}
	want := []byte{1, 1, 7, 7, 7, 7, 7, 7, 7, 7, 2, 2}
	if !bytes.Equal(e.Data, want) {
		t.Fatalf("data = %v, want %v", e.Data, want)
	}
}

func TestInsertNoMergeKeepsAll(t *testing.T) {
	bi := &blockIndex{mode: NoMerge}
	bi.insert(0, mk(8, 1), 0)
	bi.insert(0, mk(8, 2), 0)
	bi.insert(4, mk(8, 3), 0)
	if len(bi.extents) != 3 {
		t.Fatalf("NoMerge must keep all records: %d", len(bi.extents))
	}
	if bi.bytes != 24 {
		t.Fatalf("bytes = %d, want 24", bi.bytes)
	}
}

func TestInsertEmptyIgnored(t *testing.T) {
	bi := &blockIndex{mode: Overwrite}
	bi.insert(5, nil, 0)
	if len(bi.extents) != 0 {
		t.Fatal("empty insert must be ignored")
	}
}

func TestLookupCoverage(t *testing.T) {
	bi := &blockIndex{mode: Overwrite}
	bi.insert(100, mk(50, 4), 0)
	if _, ok := bi.lookup(100, 50); !ok {
		t.Fatal("full extent lookup must hit")
	}
	if d, ok := bi.lookup(110, 20); !ok || len(d) != 20 || d[0] != 4 {
		t.Fatal("interior lookup must hit")
	}
	if _, ok := bi.lookup(90, 20); ok {
		t.Fatal("partially covered lookup must miss")
	}
	if _, ok := bi.lookup(140, 20); ok {
		t.Fatal("right-overhang lookup must miss")
	}
	if _, ok := bi.lookup(0, 10); ok {
		t.Fatal("uncovered lookup must miss")
	}
}

func TestLookupNoMergeNewestWins(t *testing.T) {
	bi := &blockIndex{mode: NoMerge}
	bi.insert(0, mk(8, 1), 0)
	bi.insert(0, mk(8, 2), 0)
	d, ok := bi.lookup(0, 8)
	if !ok || d[0] != 2 {
		t.Fatalf("NoMerge lookup must serve newest: ok=%v d=%v", ok, d)
	}
}

func TestOverlay(t *testing.T) {
	bi := &blockIndex{mode: Overwrite}
	bi.insert(4, []byte{9, 9}, 0)
	bi.insert(10, []byte{8}, 0)
	dst := mk(12, 0)
	bi.overlay(0, dst)
	want := []byte{0, 0, 0, 0, 9, 9, 0, 0, 0, 0, 8, 0}
	if !bytes.Equal(dst, want) {
		t.Fatalf("overlay = %v, want %v", dst, want)
	}
	// Window not starting at 0.
	dst = mk(4, 0)
	bi.overlay(3, dst)
	want = []byte{0, 9, 9, 0}
	if !bytes.Equal(dst, want) {
		t.Fatalf("offset overlay = %v, want %v", dst, want)
	}
}

func TestOverlayNoMergeOrder(t *testing.T) {
	bi := &blockIndex{mode: NoMerge}
	bi.insert(0, mk(4, 1), 0)
	bi.insert(2, mk(4, 2), 0)
	dst := mk(6, 0)
	bi.overlay(0, dst)
	want := []byte{1, 1, 2, 2, 2, 2}
	if !bytes.Equal(dst, want) {
		t.Fatalf("overlay = %v, want %v", dst, want)
	}
}

func TestBitmapFastMiss(t *testing.T) {
	bi := &blockIndex{mode: Overwrite}
	bi.insert(0, mk(16, 1), 0)
	if bi.mayContain(1<<20, 1<<20+16) {
		t.Fatal("bitmap false positive far away")
	}
	if !bi.mayContain(0, 16) {
		t.Fatal("bitmap false negative")
	}
}

func TestVTracksEarliest(t *testing.T) {
	bi := &blockIndex{mode: Overwrite}
	bi.insert(0, mk(4, 1), 100)
	bi.insert(2, mk(4, 2), 50)
	if bi.extents[0].V != 50 {
		t.Fatalf("V = %v, want earliest 50", bi.extents[0].V)
	}
}

// Property: after arbitrary overwrite-mode inserts, the index equals a
// naive byte-map model, extents are sorted, disjoint and non-adjacent.
func TestInsertOverwriteMatchesModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bi := &blockIndex{mode: Overwrite}
		model := map[uint32]byte{}
		for i := 0; i < 60; i++ {
			off := uint32(rng.Intn(400))
			n := 1 + rng.Intn(40)
			data := make([]byte, n)
			rng.Read(data)
			bi.insert(off, data, 0)
			for j, b := range data {
				model[off+uint32(j)] = b
			}
		}
		// Extents must reproduce the model exactly.
		covered := map[uint32]byte{}
		var total int64
		for i, e := range bi.extents {
			if i > 0 && bi.extents[i-1].End() >= e.Off {
				t.Logf("extents overlap/adjacent at %d", i)
				return false
			}
			for j, b := range e.Data {
				covered[e.Off+uint32(j)] = b
			}
			total += int64(len(e.Data))
		}
		if total != bi.bytes {
			t.Logf("bytes accounting off: %d != %d", total, bi.bytes)
			return false
		}
		if len(covered) != len(model) {
			t.Logf("coverage size %d != %d", len(covered), len(model))
			return false
		}
		for k, v := range model {
			if covered[k] != v {
				t.Logf("byte %d: %d != %d", k, covered[k], v)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: XOR-mode index equals a naive XOR byte model.
func TestInsertXorMatchesModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bi := &blockIndex{mode: XorFold}
		model := map[uint32]byte{}
		for i := 0; i < 60; i++ {
			off := uint32(rng.Intn(300))
			n := 1 + rng.Intn(30)
			data := make([]byte, n)
			rng.Read(data)
			bi.insert(off, data, 0)
			for j, b := range data {
				model[off+uint32(j)] ^= b
			}
		}
		for _, e := range bi.extents {
			for j, b := range e.Data {
				if model[e.Off+uint32(j)] != b {
					return false
				}
				delete(model, e.Off+uint32(j))
			}
		}
		// Whatever remains in the model must be zero bytes (XOR of
		// overlaps can cancel, but the extent still covers them).
		for _, v := range model {
			if v != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: extents remain sorted after random inserts in merge modes.
func TestExtentsSortedInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for _, mode := range []MergeMode{Overwrite, XorFold} {
		bi := &blockIndex{mode: mode}
		for i := 0; i < 500; i++ {
			bi.insert(uint32(rng.Intn(10000)), mk(1+rng.Intn(100), byte(i)), 0)
		}
		if !sort.SliceIsSorted(bi.extents, func(i, j int) bool { return bi.extents[i].Off < bi.extents[j].Off }) {
			t.Fatalf("%v: extents unsorted", mode)
		}
	}
}

func TestMergeModeString(t *testing.T) {
	for m, want := range map[MergeMode]string{Overwrite: "overwrite", XorFold: "xorfold", NoMerge: "nomerge"} {
		if m.String() != want {
			t.Fatalf("%v", m)
		}
	}
	if MergeMode(9).String() == "" {
		t.Fatal("unknown mode should stringify")
	}
}

func TestExtentEnd(t *testing.T) {
	e := Extent{Off: 10, Data: mk(5, 0)}
	if e.End() != 15 {
		t.Fatal("End wrong")
	}
}
