package logpool

import (
	"hash/fnv"
	"sync"
	"time"

	"repro/internal/wire"
)

// RecycleFunc merges the (already locality-merged) extents of one block
// into its backing store — reading old data, computing deltas,
// overwriting blocks, forwarding to downstream logs, whatever the log
// layer requires. It returns the modeled device/network cost of the
// work. Calls for the same block are serialized and arrive in unit FIFO
// order; calls for different blocks run concurrently.
type RecycleFunc func(be BlockExtents, sealV time.Duration) time.Duration

// Recycler drives real-time recycling of a pool with the paper's
// recycling thread pool (§3.2.1): log entries are assigned to persistent
// workers per block, so per-block ordering holds across units while
// distinct blocks — including blocks of *different* recyclable units —
// recycle concurrently. That cross-unit concurrency is why a deeper unit
// quota sustains a higher recycle rate (Fig. 6b).
type Recycler struct {
	pool    *Pool
	fn      RecycleFunc
	workers []*recycleWorker
	wg      sync.WaitGroup
}

type recycleWorker struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []workItem
	closed bool
}

type workItem struct {
	be      BlockExtents
	sealV   time.Duration
	tracker *unitTracker
	worker  int
}

// unitTracker collects per-unit recycle accounting across workers and
// finishes the unit when its last block completes.
type unitTracker struct {
	u         *Unit
	pool      *Pool
	mu        sync.Mutex
	remaining int
	cost      time.Duration
	perWorker map[int]time.Duration
	extents   int64
	bytes     int64
}

func (t *unitTracker) add(worker int, cost time.Duration) {
	t.mu.Lock()
	t.cost += cost
	t.perWorker[worker] += cost
	t.remaining--
	done := t.remaining == 0
	var wall time.Duration
	if done {
		for _, w := range t.perWorker {
			if w > wall {
				wall = w
			}
		}
	}
	total := t.cost
	t.mu.Unlock()
	if done {
		t.pool.FinishRecycle(t.u, total, wall, t.u.Entries(), t.extents, t.bytes)
	}
}

// StartRecycler begins recycling pool with the given per-block function
// and worker count. Stop with pool.Close() followed by Wait().
func StartRecycler(pool *Pool, workers int, fn RecycleFunc) *Recycler {
	if workers < 1 {
		workers = 1
	}
	r := &Recycler{pool: pool, fn: fn}
	for i := 0; i < workers; i++ {
		w := &recycleWorker{}
		w.cond = sync.NewCond(&w.mu)
		r.workers = append(r.workers, w)
		r.wg.Add(1)
		go r.workerLoop(w)
	}
	r.wg.Add(1)
	go r.dispatchLoop()
	return r
}

// Wait blocks until the recycler has exited (after pool.Close()).
func (r *Recycler) Wait() { r.wg.Wait() }

func (r *Recycler) dispatchLoop() {
	defer r.wg.Done()
	defer func() {
		for _, w := range r.workers {
			w.mu.Lock()
			w.closed = true
			w.cond.Broadcast()
			w.mu.Unlock()
		}
	}()
	for {
		u := r.pool.TakeRecyclable(true)
		if u == nil {
			return
		}
		r.dispatchUnit(u)
	}
}

func (r *Recycler) dispatchUnit(u *Unit) {
	blocks := u.Blocks()
	if len(blocks) == 0 {
		r.pool.FinishRecycle(u, 0, 0, u.Entries(), 0, 0)
		return
	}
	tracker := &unitTracker{
		u: u, pool: r.pool,
		remaining: len(blocks),
		perWorker: make(map[int]time.Duration),
	}
	for _, be := range blocks {
		tracker.extents += int64(len(be.Extents))
		for _, e := range be.Extents {
			tracker.bytes += int64(len(e.Data))
		}
	}
	sealV := u.SealV()
	for _, be := range blocks {
		wi := int(blockHash(be.Block)) % len(r.workers)
		w := r.workers[wi]
		w.mu.Lock()
		w.queue = append(w.queue, workItem{be: be, sealV: sealV, tracker: tracker, worker: wi})
		w.cond.Signal()
		w.mu.Unlock()
	}
}

func (r *Recycler) workerLoop(w *recycleWorker) {
	defer r.wg.Done()
	for {
		w.mu.Lock()
		for len(w.queue) == 0 && !w.closed {
			w.cond.Wait()
		}
		if len(w.queue) == 0 && w.closed {
			w.mu.Unlock()
			return
		}
		item := w.queue[0]
		w.queue = w.queue[1:]
		w.mu.Unlock()
		cost := r.fn(item.be, item.sealV)
		if per := r.pool.persist; per != nil {
			// The block's records are merged into downstream state; mark
			// them dead so a crash between here and the unit-level fold
			// replays as little as possible.
			per.FoldBlock(item.tracker.u.gen, item.be.Block)
		}
		item.tracker.add(item.worker, cost)
	}
}

func blockHash(b wire.BlockID) uint32 {
	h := fnv.New32a()
	var buf [13]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(b.Ino >> (8 * i))
	}
	for i := 0; i < 4; i++ {
		buf[8+i] = byte(b.Stripe >> (8 * i))
	}
	buf[12] = b.Idx
	h.Write(buf[:])
	return h.Sum32()
}

// PoolSet routes blocks to one of N pools by block hash, the paper's
// "4 log pools per SSD" configuration (§4.1).
type PoolSet struct {
	pools []*Pool
}

// NewPoolSet builds n pools from cfg (names suffixed with the index).
func NewPoolSet(n int, cfg Config) (*PoolSet, error) {
	if n < 1 {
		n = 1
	}
	ps := &PoolSet{}
	base := cfg.Name
	for i := 0; i < n; i++ {
		cfg.Name = base + poolSuffix(i)
		p, err := NewPool(cfg)
		if err != nil {
			return nil, err
		}
		ps.pools = append(ps.pools, p)
	}
	return ps, nil
}

func poolSuffix(i int) string { return string(rune('0' + i%10)) }

// Pick returns the pool responsible for a block.
func (ps *PoolSet) Pick(b wire.BlockID) *Pool {
	return ps.pools[blockHash(b)%uint32(len(ps.pools))]
}

// Pools returns all member pools.
func (ps *PoolSet) Pools() []*Pool { return ps.pools }

// Append routes to the owning pool.
func (ps *PoolSet) Append(block wire.BlockID, off uint32, data []byte, v time.Duration) time.Duration {
	return ps.Pick(block).Append(block, off, data, v)
}

// Lookup queries the owning pool's cache.
func (ps *PoolSet) Lookup(block wire.BlockID, off, size uint32) ([]byte, bool) {
	return ps.Pick(block).Lookup(block, off, size)
}

// Overlay applies pending content from the owning pool.
func (ps *PoolSet) Overlay(block wire.BlockID, off uint32, dst []byte) {
	ps.Pick(block).Overlay(block, off, dst)
}

// Drain drains every member pool.
func (ps *PoolSet) Drain(v time.Duration) {
	for _, p := range ps.pools {
		p.Drain(v)
	}
}

// Close closes every member pool.
func (ps *PoolSet) Close() {
	for _, p := range ps.pools {
		p.Close()
	}
}

// Stats sums the member pools' snapshots.
func (ps *PoolSet) Stats() Stats {
	var s Stats
	for _, p := range ps.pools {
		o := p.Stats()
		s.AppendedEntries += o.AppendedEntries
		s.AppendedBytes += o.AppendedBytes
		s.RecycledExtents += o.RecycledExtents
		s.RecycledBytes += o.RecycledBytes
		s.UnitsRecycled += o.UnitsRecycled
		s.UnitsAllocated += o.UnitsAllocated
		s.CacheHits += o.CacheHits
		s.CacheMisses += o.CacheMisses
		s.AppendCost += o.AppendCost
		s.BufferTime += o.BufferTime
		s.RecycleCost += o.RecycleCost
		s.RecycleCount += o.RecycleCount
		s.Stalls += o.Stalls
		s.StallTime += o.StallTime
	}
	return s
}

// MemoryBytes sums member pools' footprints.
func (ps *PoolSet) MemoryBytes() int64 {
	var n int64
	for _, p := range ps.pools {
		n += p.MemoryBytes()
	}
	return n
}

// QuotaBytes sums member pools' configured memory ceilings.
func (ps *PoolSet) QuotaBytes() int64 {
	var n int64
	for _, p := range ps.pools {
		n += p.QuotaBytes()
	}
	return n
}

// PendingBytes sums member pools' unrecycled payload.
func (ps *PoolSet) PendingBytes() int64 {
	var n int64
	for _, p := range ps.pools {
		n += p.PendingBytes()
	}
	return n
}

// WaitIdle waits for all member pools' sealed units to recycle.
func (ps *PoolSet) WaitIdle() {
	for _, p := range ps.pools {
		p.WaitIdle()
	}
}
