package logpool

import (
	"sync"
	"testing"
	"time"

	"repro/internal/wire"
)

// memPersist records persist calls for assertions.
type memPersist struct {
	mu      sync.Mutex
	name    string
	appends []uint64 // gen per appended entry
	folds   []uint64 // gen per unit fold
}

func (m *memPersist) AppendEntry(gen uint64, block wire.BlockID, off uint32, v int64, data []byte) {
	m.mu.Lock()
	m.appends = append(m.appends, gen)
	m.mu.Unlock()
}
func (m *memPersist) FoldBlock(gen uint64, block wire.BlockID) {}
func (m *memPersist) FoldUnit(gen uint64) {
	m.mu.Lock()
	m.folds = append(m.folds, gen)
	m.mu.Unlock()
}

// TestPersistGenerationsAcrossReuse checks that reused unit objects get
// fresh generations: entries appended after a unit recycles must never
// persist under the generation the fold already declared dead.
func TestPersistGenerationsAcrossReuse(t *testing.T) {
	per := &memPersist{}
	p := MustNewPool(Config{
		Name:     "t/0",
		Mode:     Overwrite,
		UnitSize: 64,
		MaxUnits: 2,
		Persist:  PersistFunc(func(name string) Persist { per.name = name; return per }),
	})
	rec := StartRecycler(p, 1, func(be BlockExtents, sealV time.Duration) time.Duration { return 0 })
	b := wire.BlockID{Ino: 1}
	data := make([]byte, 40) // 40 + 32 header >= 64: every append seals a unit
	for i := 0; i < 6; i++ {
		p.Append(b, uint32(i), data, time.Duration(i))
	}
	p.Drain(6)
	p.Close()
	rec.Wait()

	if per.name != "t/0" {
		t.Fatalf("provider resolved with name %q", per.name)
	}
	per.mu.Lock()
	defer per.mu.Unlock()
	if len(per.appends) != 6 {
		t.Fatalf("%d appends persisted, want 6", len(per.appends))
	}
	if len(per.folds) == 0 {
		t.Fatal("no unit folds persisted")
	}
	// Every persisted entry's generation must eventually fold, and no
	// generation may repeat across folds (reuse must re-generation).
	folded := make(map[uint64]int)
	for _, g := range per.folds {
		folded[g]++
		if folded[g] > 1 {
			t.Fatalf("generation %d folded twice: unit reuse aliased generations", g)
		}
	}
	for _, g := range per.appends {
		if folded[g] == 0 {
			t.Fatalf("generation %d appended but never folded after drain", g)
		}
	}
}
