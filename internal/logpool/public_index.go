package logpool

import "time"

// Index is the standalone two-level-index building block (offset-sorted,
// locality-merging extent list with a page bitmap) exported for strategy
// code that needs the merging semantics outside a pool — PARIX's
// new/original value logs and TSUE's Equation-5 delta merging.
type Index struct {
	bi blockIndex
}

// NewIndex creates an index with the given merge mode.
func NewIndex(mode MergeMode) *Index { return &Index{bi: blockIndex{mode: mode}} }

// Insert merges [off, off+len(data)) into the index (data is copied).
func (x *Index) Insert(off uint32, data []byte, v time.Duration) { x.bi.insert(off, data, v) }

// Lookup returns the bytes of [off, off+size) if fully covered.
func (x *Index) Lookup(off, size uint32) ([]byte, bool) { return x.bi.lookup(off, size) }

// Overlay applies indexed extents intersecting dst (starting at off).
func (x *Index) Overlay(off uint32, dst []byte) { x.bi.overlay(off, dst) }

// Extents returns the current extent list (aliasing internal storage).
func (x *Index) Extents() []Extent { return x.bi.extents }

// Bytes returns the merged payload footprint.
func (x *Index) Bytes() int64 { return x.bi.bytes }
