package bench

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"repro/internal/store"
	"repro/internal/wire"
)

// Storage is the durable-engine extension: it measures the per-OSD
// storage engine (WAL + paged block file + buffer pool) directly, with
// the two knobs an operator actually turns — the WAL fsync policy on
// the write path, and the buffer pool on the read path — plus the cost
// of a crash-reopen (WAL redo). Rates are real wall-clock disk I/O, so
// absolute numbers vary by machine; the shape (batched >> every-record,
// warm >> cold) is the contract.
func Storage(ctx context.Context, s Scale) (*Report, error) {
	rep := &Report{
		ID:     "storage",
		Title:  "Extension: durable OSD storage engine (WAL-backed block store)",
		Header: []string{"op", "MB/s", "time_ms"},
	}
	dir, err := os.MkdirTemp("", "tsuebench-storage-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	blockSize := s.BlockSize
	nBlocks := int(s.FileSize / int64(blockSize))
	if nBlocks > 128 {
		nBlocks = 128
	}
	if nBlocks < 16 {
		nBlocks = 16
	}
	total := float64(nBlocks) * float64(blockSize)
	payload := make([]byte, blockSize)
	rand.New(rand.NewSource(s.Seed)).Read(payload)

	row := func(op string, bytes float64, el time.Duration) {
		mbps := "-"
		if bytes > 0 {
			mbps = fmt.Sprintf("%.1f", bytes/1e6/el.Seconds())
		}
		rep.Rows = append(rep.Rows, []string{op, mbps, fmt.Sprintf("%.2f", float64(el)/float64(time.Millisecond))})
	}
	writeAll := func(eng *store.Engine) error {
		for i := 0; i < nBlocks; i++ {
			if err := eng.WriteFull(wire.BlockID{Ino: 1, Stripe: uint32(i)}, payload); err != nil {
				return err
			}
		}
		return nil
	}

	// Write path: group-commit WAL vs fsync-per-record.
	var warmEng *store.Engine
	for _, pol := range []struct {
		label string
		sync  store.SyncPolicy
	}{
		{"write sync=batched", store.SyncBatched},
		{"write sync=every-record", store.SyncEveryRecord},
	} {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		eng, err := store.Open(filepath.Join(dir, pol.label), store.Options{Sync: pol.sync})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if err := writeAll(eng); err != nil {
			eng.Close()
			return nil, err
		}
		if err := eng.Checkpoint(); err != nil {
			eng.Close()
			return nil, err
		}
		row(pol.label, total, time.Since(start))
		if pol.sync == store.SyncBatched {
			warmEng = eng // reads below run against this populated engine
		} else {
			eng.Close()
		}
	}

	// Read path: buffer-pool hits vs page-file misses.
	readAll := func() error {
		for i := 0; i < nBlocks; i++ {
			if _, err := warmEng.ReadRange(wire.BlockID{Ino: 1, Stripe: uint32(i)}, 0, blockSize); err != nil {
				return err
			}
		}
		return nil
	}
	start := time.Now()
	if err := readAll(); err != nil {
		warmEng.Close()
		return nil, err
	}
	row("read warm-cache", total, time.Since(start))
	if err := warmEng.DropCaches(); err != nil {
		warmEng.Close()
		return nil, err
	}
	start = time.Now()
	if err := readAll(); err != nil {
		warmEng.Close()
		return nil, err
	}
	row("read cold-cache", total, time.Since(start))
	warmEng.Close()

	// Crash-reopen: every write still in the WAL (no checkpoint), so
	// Open pays a full redo pass.
	crashDir := filepath.Join(dir, "crash")
	eng, err := store.Open(crashDir, store.Options{})
	if err != nil {
		return nil, err
	}
	if err := writeAll(eng); err != nil {
		eng.Close()
		return nil, err
	}
	eng.Crash()
	eng.Close()
	start = time.Now()
	eng, err = store.Open(crashDir, store.Options{})
	if err != nil {
		return nil, err
	}
	row("reopen wal-redo", total, time.Since(start))
	eng.Close()

	rep.Notes = append(rep.Notes,
		"real disk I/O: absolute rates are machine-dependent; the contract is the shape (batched >> every-record writes, warm >> cold reads)",
		fmt.Sprintf("%d blocks x %d KiB per phase", nBlocks, blockSize>>10))
	return rep, nil
}
