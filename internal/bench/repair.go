package bench

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ecfs"
	"repro/internal/sim"
	"repro/internal/wire"
)

// Repair is the repair-subsystem extension experiment. The first two
// rows compare degraded-read behavior during a recovery when the
// rebuild order is strict FIFO versus hint-prioritized: a client
// hammers a handful of hot stripes seeded near the *end* of the FIFO
// order, and the table reports how many of its reads had to K-way
// decode and how deep into the read sequence the last decode happened
// (last_degr_%). With prioritization the first degraded read promotes
// each hot stripe to the front of the queue, so the decode tail
// collapses. The middle rows measure the same queue doing planned work:
// Cluster.Drain and Cluster.Decommission migrating a live node's blocks
// onto the survivor pool (sourced from the node itself — no decode).
// The final rows are the scheduler-cap sweep: the same drain under
// foreground readers, first uncapped and then with a rebuild-bandwidth
// cap, proving the capped run's rebuild bandwidth lands at or under
// the cap while the foreground readers move more data per wall second.
//
// The repair_MBps / foreground_MBps columns come from per-class traffic
// tagging (sim.Class): every priced transfer carries a class, so shared
// NICs account rebuild/drain bytes separately from the foreground
// workload. repair_MBps is tagged rebuild+drain traffic over the run's
// modeled makespan (virtual time — comparable to the cap);
// foreground_MBps is tagged foreground traffic over the bottleneck
// resource's busy time in the measurement window (operational-law
// throughput — rebuild interference inflates the denominator, a capped
// rebuild spreads it beyond the window).
func Repair(ctx context.Context, s Scale) (*Report, error) {
	rep := &Report{
		ID:    "repair",
		Title: "Extension: repair scheduler — read-through repair, tagged traffic, capped drain (TSUE, Ten-Cloud, RS(6,4))",
		Header: []string{
			"scenario", "hot_reads", "degraded", "last_degr_%", "blocks", "moved_MB", "time_ms", "repair_MBps", "foreground_MBps",
		},
	}
	for _, fifo := range []bool{true, false} {
		row, err := repairReadRow(ctx, s, fifo)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, row)
	}
	for _, decommission := range []bool{false, true} {
		row, err := repairDrainRow(ctx, s, decommission)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, row)
	}
	// Scheduler-cap sweep: the uncapped run sets the baseline; the
	// capped run (Scale.MaxRebuildMBps, or a quarter of the baseline)
	// must land at or under its cap.
	uncapped, baseMBps, err := repairCapRow(ctx, s, 0)
	if err != nil {
		return nil, err
	}
	rep.Rows = append(rep.Rows, uncapped)
	capMBps := s.MaxRebuildMBps
	if capMBps <= 0 {
		capMBps = baseMBps / 4
	}
	if capMBps <= 0 {
		capMBps = 1
	}
	capped, _, err := repairCapRow(ctx, s, capMBps)
	if err != nil {
		return nil, err
	}
	rep.Rows = append(rep.Rows, capped)

	rep.Notes = append(rep.Notes,
		"expected shape: prioritized repair ends the degraded-read tail earlier than FIFO (lower last_degr_%); drain moves blocks at copy bandwidth (no K-way decode)",
		"drain/fg/cap=N: repair_MBps stays at or under N (scheduler token bucket + makespan floor) while foreground_MBps beats the uncapped row (the throttled drain yields wall time to the readers)",
		"repair_MBps = tagged rebuild+drain bytes / virtual makespan; foreground_MBps = tagged foreground bytes / bottleneck busy time of the window (operational law); read counts race the rebuild in wall time and vary run to run",
	)
	return rep, nil
}

// classWindow brackets a measurement of the per-class traffic a cluster
// moves: open before the maintenance operation, then derive separated
// rebuild and foreground rates from the deltas.
type classWindow struct {
	c       *ecfs.Cluster
	rebuild int64
	fg      int64
	busy    []time.Duration
}

func openClassWindow(c *ecfs.Cluster) *classWindow {
	return &classWindow{
		c:       c,
		rebuild: rebuildTraffic(c),
		fg:      foregroundTraffic(c),
		busy:    sim.SnapshotBusy(c.Resources()),
	}
}

// rebuildTraffic is the cluster's rebuild+drain ledger — the same
// definition the scheduler's budget meters (Cluster.RebuildTraffic).
func rebuildTraffic(c *ecfs.Cluster) int64 {
	return c.RebuildTraffic()
}

// foregroundTraffic sums the cluster's tagged foreground bytes.
func foregroundTraffic(c *ecfs.Cluster) int64 {
	var n int64
	for _, cls := range sim.ForegroundClasses {
		n += c.Net.TrafficByClass(cls)
	}
	return n
}

// repairMBps is the tagged rebuild/drain traffic of the window over the
// run's modeled makespan — the number a rebuild cap bounds.
func (w *classWindow) repairMBps(window time.Duration) float64 {
	if window <= 0 {
		return 0
	}
	return float64(rebuildTraffic(w.c)-w.rebuild) / window.Seconds() / 1e6
}

// foregroundMBps is the operational-law foreground rate of the window:
// tagged foreground bytes over the bottleneck resource's busy time —
// everything that resource did, rebuild interference included. When the
// rebuild crowds the foreground off a shared NIC, the denominator
// inflates and the rate drops; a capped rebuild spreads its busy time
// outside the window and the foreground keeps its bandwidth.
func (w *classWindow) foregroundMBps() float64 {
	busy := sim.MaxBusyDelta(w.c.Resources(), w.busy)
	if busy <= 0 {
		return 0
	}
	return float64(foregroundTraffic(w.c)-w.fg) / busy.Seconds() / 1e6
}

// repairReadRow runs one recovery (FIFO or prioritized) with a client
// reading hot stripes throughout, and reports the degraded-read tail
// plus the class-separated bandwidths of the window.
func repairReadRow(ctx context.Context, s Scale, fifo bool) ([]string, error) {
	scenario := "recover/prio"
	if fifo {
		scenario = "recover/fifo"
	}
	tr, err := makeTrace("ten", s)
	if err != nil {
		return nil, err
	}
	lc, err := loadCluster(ctx, runConfig{Method: "tsue", K: 6, M: 4, Trace: tr, Scale: s})
	if err != nil {
		return nil, fmt.Errorf("repair %s: %w", scenario, err)
	}
	c := lc.c
	defer c.Close()

	victim := c.OSDs[1]
	c.FailOSD(victim.ID())
	freshID := wire.NodeID(c.Opts.NumOSDs + 1)
	cfg := *lc.opts.Strategy
	cfg.BlockSize = c.Opts.BlockSize
	repl, err := ecfs.NewOSD(freshID, c.Opts.Device, c.Tr.Caller(freshID), "tsue", cfg, c.Opts.Kind)
	if err != nil {
		return nil, err
	}
	c.AddOSD(repl)

	// Hot set: the last few data blocks the victim hosts in the queue's
	// FIFO seed order (StripesOnSorted = the engines' rebuild order) —
	// the worst case for a FIFO rebuild.
	refs := c.MDS.StripesOnSorted(victim.ID())
	var hot []ecfs.StripeRef
	for _, ref := range refs {
		if int(ref.Idx) < c.Opts.K {
			hot = append(hot, ref)
		}
	}
	if len(hot) > 4 {
		hot = hot[len(hot)-4:]
	}
	if len(hot) == 0 {
		return nil, fmt.Errorf("repair %s: victim hosts no data blocks", scenario)
	}

	cli := c.NewClient()
	span := int64(cli.StripeSpan())
	var (
		stop     atomic.Bool
		reads    int64
		lastDegr int64
	)
	readerDone := make(chan error, 1)
	go func() {
		for !stop.Load() {
			for _, ref := range hot {
				off := int64(ref.Stripe)*span + int64(ref.Idx)*int64(c.Opts.BlockSize)
				before := cli.Stats().DegradedReads
				if _, _, err := cli.ReadContext(ctx, lc.ino, off, 256); err != nil {
					readerDone <- err
					return
				}
				reads++
				if cli.Stats().DegradedReads > before {
					lastDegr = reads
				}
			}
		}
		readerDone <- nil
	}()

	rebuild := c.RecoverWith
	if fifo {
		rebuild = c.RecoverFIFO
	}
	win := openClassWindow(c)
	res, err := rebuild(ctx, victim.ID(), repl, c.Opts.RecoveryWorkers)
	stop.Store(true)
	fgMBps := win.foregroundMBps()
	if rerr := <-readerDone; rerr != nil {
		return nil, fmt.Errorf("repair %s: hot read: %w", scenario, rerr)
	}
	if err != nil {
		return nil, fmt.Errorf("repair %s: %w", scenario, err)
	}

	tailPct := 0.0
	if reads > 0 {
		tailPct = 100 * float64(lastDegr) / float64(reads)
	}
	// With per-class tagging the recover rows finally report a clean
	// repair bandwidth under load: the hot reader's traffic no longer
	// pollutes the rebuild column, it *is* the foreground column.
	return []string{
		scenario,
		fmt.Sprintf("%d", reads),
		fmt.Sprintf("%d", cli.Stats().DegradedReads),
		fmt.Sprintf("%.0f", tailPct),
		fmt.Sprintf("%d", res.Blocks),
		fmtMB(res.Bytes),
		fmtMS(res.VirtualTime),
		fmtBW(win.repairMBps(res.VirtualTime) * 1e6),
		fmtBW(fgMBps * 1e6),
	}, nil
}

// repairDrainRow measures the planned-migration path: every block moves
// off a live node under per-stripe epoch bumps, sourced from the node
// itself.
func repairDrainRow(ctx context.Context, s Scale, decommission bool) ([]string, error) {
	scenario := "drain"
	if decommission {
		scenario = "decommission"
	}
	tr, err := makeTrace("ten", s)
	if err != nil {
		return nil, err
	}
	lc, err := loadCluster(ctx, runConfig{Method: "tsue", K: 6, M: 4, Trace: tr, Scale: s})
	if err != nil {
		return nil, fmt.Errorf("repair %s: %w", scenario, err)
	}
	c := lc.c
	defer c.Close()

	node := c.OSDs[1].ID()
	migrate := c.Drain
	if decommission {
		migrate = c.Decommission
	}
	win := openClassWindow(c)
	res, err := migrate(ctx, node)
	if err != nil {
		return nil, fmt.Errorf("repair %s: %w", scenario, err)
	}
	// The cluster keeps serving: prove it with a post-migration read.
	cli := c.NewClient()
	if _, _, err := cli.ReadContext(ctx, lc.ino, 0, 4096); err != nil {
		return nil, fmt.Errorf("repair %s: post-migration read: %w", scenario, err)
	}
	return []string{
		scenario,
		"-",
		"-",
		"-",
		fmt.Sprintf("%d", res.Moved),
		fmtMB(res.Bytes),
		fmtMS(res.VirtualTime),
		fmtBW(win.repairMBps(res.VirtualTime) * 1e6),
		"-",
	}, nil
}

// repairCapRow runs one drain under concurrent foreground readers with
// the given rebuild-bandwidth cap (0 = uncapped) and returns its row
// plus the measured repair bandwidth in MB/s, which the caller uses to
// derive the capped run's budget.
func repairCapRow(ctx context.Context, s Scale, capMBps float64) ([]string, float64, error) {
	scenario := "drain/fg/uncapped"
	if capMBps > 0 {
		scenario = fmt.Sprintf("drain/fg/cap=%.1f", capMBps)
	}
	tr, err := makeTrace("ten", s)
	if err != nil {
		return nil, 0, err
	}
	lc, err := loadCluster(ctx, runConfig{Method: "tsue", K: 6, M: 4, Trace: tr, Scale: s})
	if err != nil {
		return nil, 0, fmt.Errorf("repair %s: %w", scenario, err)
	}
	c := lc.c
	defer c.Close()
	if capMBps > 0 {
		c.SetRebuildCap(capMBps)
	}

	// Foreground load: a fixed read workload fanned across many client
	// NICs, so the contended resources are the OSD-side NICs the drain
	// shares. The measurement window closes when the readers finish —
	// an uncapped drain dumps its whole interference burst inside that
	// window, a capped one spreads it out beyond it.
	const readerClients = 16
	readsEach := 256
	node := c.OSDs[1].ID()
	win := openClassWindow(c)

	type drainOut struct {
		res *ecfs.DrainResult
		err error
	}
	drainDone := make(chan drainOut, 1)
	go func() {
		res, err := c.Drain(ctx, node)
		drainDone <- drainOut{res, err}
	}()

	readerErrs := make(chan error, readerClients)
	var wg sync.WaitGroup
	for r := 0; r < readerClients; r++ {
		cli := c.NewClient()
		wg.Add(1)
		go func(r int, cli *ecfs.Client) {
			defer wg.Done()
			span := int64(cli.StripeSpan())
			stripes, err := cli.Stripes(ctx, lc.ino)
			if err != nil {
				readerErrs <- err
				return
			}
			size := int64(stripes) * span
			off := (size / readerClients) * int64(r)
			for i := 0; i < readsEach; i++ {
				if off+4096 > size {
					off = 0
				}
				if _, _, err := cli.ReadContext(ctx, lc.ino, off, 4096); err != nil {
					readerErrs <- err
					return
				}
				off += 4096
			}
		}(r, cli)
	}
	wg.Wait()
	fgMBps := win.foregroundMBps() // window closes with the readers
	// Await the drain before touching any error path: the deferred
	// cluster Close must never tear down OSDs under an active migration.
	out := <-drainDone
	select {
	case rerr := <-readerErrs:
		return nil, 0, fmt.Errorf("repair %s: foreground read: %w", scenario, rerr)
	default:
	}
	res, err := out.res, out.err
	if err != nil {
		return nil, 0, fmt.Errorf("repair %s: %w", scenario, err)
	}

	repairMBps := win.repairMBps(res.VirtualTime)
	return []string{
		scenario,
		fmt.Sprintf("%d", readerClients*readsEach),
		"-",
		"-",
		fmt.Sprintf("%d", res.Moved),
		fmtMB(res.Bytes),
		fmtMS(res.VirtualTime),
		fmtBW(repairMBps * 1e6),
		fmtBW(fgMBps * 1e6),
	}, repairMBps, nil
}
