package bench

import (
	"context"
	"fmt"
	"sync/atomic"

	"repro/internal/ecfs"
	"repro/internal/wire"
)

// Repair is the repair-subsystem extension experiment. The first two
// rows compare degraded-read behavior during a recovery when the
// rebuild order is strict FIFO versus hint-prioritized: a client
// hammers a handful of hot stripes seeded near the *end* of the FIFO
// order, and the table reports how many of its reads had to K-way
// decode and how deep into the read sequence the last decode happened
// (last_degr_%). With prioritization the first degraded read promotes
// each hot stripe to the front of the queue, so the decode tail
// collapses. The last rows measure the same queue doing planned work:
// Cluster.Drain and Cluster.Decommission migrating a live node's blocks
// onto the survivor pool (sourced from the node itself — no decode).
func Repair(ctx context.Context, s Scale) (*Report, error) {
	rep := &Report{
		ID:    "repair",
		Title: "Extension: repair subsystem — read-through repair and planned drain (TSUE, Ten-Cloud, RS(6,4))",
		Header: []string{
			"scenario", "hot_reads", "degraded", "last_degr_%", "blocks", "moved_MB", "time_ms", "MB/s",
		},
	}
	for _, fifo := range []bool{true, false} {
		row, err := repairReadRow(ctx, s, fifo)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, row)
	}
	for _, decommission := range []bool{false, true} {
		row, err := repairDrainRow(ctx, s, decommission)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, row)
	}
	rep.Notes = append(rep.Notes,
		"expected shape: prioritized repair ends the degraded-read tail earlier than FIFO (lower last_degr_%); drain moves blocks at copy bandwidth (no K-way decode)",
		"read counts race the rebuild in wall time and vary run to run; the FIFO/prioritized contrast is the signal",
	)
	return rep, nil
}

// repairReadRow runs one recovery (FIFO or prioritized) with a client
// reading hot stripes throughout, and reports the degraded-read tail.
func repairReadRow(ctx context.Context, s Scale, fifo bool) ([]string, error) {
	scenario := "recover/prio"
	if fifo {
		scenario = "recover/fifo"
	}
	tr, err := makeTrace("ten", s)
	if err != nil {
		return nil, err
	}
	lc, err := loadCluster(ctx, runConfig{Method: "tsue", K: 6, M: 4, Trace: tr, Scale: s})
	if err != nil {
		return nil, fmt.Errorf("repair %s: %w", scenario, err)
	}
	c := lc.c
	defer c.Close()

	victim := c.OSDs[1]
	c.FailOSD(victim.ID())
	freshID := wire.NodeID(c.Opts.NumOSDs + 1)
	cfg := *lc.opts.Strategy
	cfg.BlockSize = c.Opts.BlockSize
	repl, err := ecfs.NewOSD(freshID, c.Opts.Device, c.Tr.Caller(freshID), "tsue", cfg, c.Opts.Kind)
	if err != nil {
		return nil, err
	}
	c.AddOSD(repl)

	// Hot set: the last few data blocks the victim hosts in the queue's
	// FIFO seed order (StripesOnSorted = the engines' rebuild order) —
	// the worst case for a FIFO rebuild.
	refs := c.MDS.StripesOnSorted(victim.ID())
	var hot []ecfs.StripeRef
	for _, ref := range refs {
		if int(ref.Idx) < c.Opts.K {
			hot = append(hot, ref)
		}
	}
	if len(hot) > 4 {
		hot = hot[len(hot)-4:]
	}
	if len(hot) == 0 {
		return nil, fmt.Errorf("repair %s: victim hosts no data blocks", scenario)
	}

	cli := c.NewClient()
	span := int64(cli.StripeSpan())
	var (
		stop     atomic.Bool
		reads    int64
		lastDegr int64
	)
	readerDone := make(chan error, 1)
	go func() {
		for !stop.Load() {
			for _, ref := range hot {
				off := int64(ref.Stripe)*span + int64(ref.Idx)*int64(c.Opts.BlockSize)
				before := cli.Stats().DegradedReads
				if _, _, err := cli.ReadContext(ctx, lc.ino, off, 256); err != nil {
					readerDone <- err
					return
				}
				reads++
				if cli.Stats().DegradedReads > before {
					lastDegr = reads
				}
			}
		}
		readerDone <- nil
	}()

	rebuild := c.RecoverWith
	if fifo {
		rebuild = c.RecoverFIFO
	}
	res, err := rebuild(ctx, victim.ID(), repl, c.Opts.RecoveryWorkers)
	stop.Store(true)
	if rerr := <-readerDone; rerr != nil {
		return nil, fmt.Errorf("repair %s: hot read: %w", scenario, rerr)
	}
	if err != nil {
		return nil, fmt.Errorf("repair %s: %w", scenario, err)
	}

	tailPct := 0.0
	if reads > 0 {
		tailPct = 100 * float64(lastDegr) / float64(reads)
	}
	// time/MB/s are reported for the planned-migration rows only: the
	// recovery makespan model bounds the rebuild window by the busiest
	// resource, and here that resource also carries the hot reader's
	// traffic, so the recover rows' timing would not be comparable.
	return []string{
		scenario,
		fmt.Sprintf("%d", reads),
		fmt.Sprintf("%d", cli.Stats().DegradedReads),
		fmt.Sprintf("%.0f", tailPct),
		fmt.Sprintf("%d", res.Blocks),
		fmtMB(res.Bytes),
		"-",
		"-",
	}, nil
}

// repairDrainRow measures the planned-migration path: every block moves
// off a live node under per-stripe epoch bumps, sourced from the node
// itself.
func repairDrainRow(ctx context.Context, s Scale, decommission bool) ([]string, error) {
	scenario := "drain"
	if decommission {
		scenario = "decommission"
	}
	tr, err := makeTrace("ten", s)
	if err != nil {
		return nil, err
	}
	lc, err := loadCluster(ctx, runConfig{Method: "tsue", K: 6, M: 4, Trace: tr, Scale: s})
	if err != nil {
		return nil, fmt.Errorf("repair %s: %w", scenario, err)
	}
	c := lc.c
	defer c.Close()

	node := c.OSDs[1].ID()
	migrate := c.Drain
	if decommission {
		migrate = c.Decommission
	}
	res, err := migrate(ctx, node)
	if err != nil {
		return nil, fmt.Errorf("repair %s: %w", scenario, err)
	}
	// The cluster keeps serving: prove it with a post-migration read.
	cli := c.NewClient()
	if _, _, err := cli.ReadContext(ctx, lc.ino, 0, 4096); err != nil {
		return nil, fmt.Errorf("repair %s: post-migration read: %w", scenario, err)
	}
	return []string{
		scenario,
		"-",
		"-",
		"-",
		fmt.Sprintf("%d", res.Moved),
		fmtMB(res.Bytes),
		fmtMS(res.VirtualTime),
		fmtBW(res.Bandwidth),
	}, nil
}
