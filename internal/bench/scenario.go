package bench

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/scenario"
	"repro/internal/trace"
)

// ScenarioSoak runs the multi-tenant fault-injection soak harness
// (internal/scenario) as a bench extension: N tenants replay cloud
// traces concurrently while a seed-deterministic fault timeline kills,
// drains, throttles, and rebases the cluster underneath them, with the
// four soak invariants checked at every phase checkpoint. The table
// reports per-tenant, per-class acknowledged-op latency quantiles; the
// notes carry the pass-0 fault timeline, which is identical for
// identical -fault-seed values.
func ScenarioSoak(ctx context.Context, s Scale) (*Report, error) {
	spec := scenario.Spec{
		Name:         s.Scenario,
		Seed:         s.FaultSeed,
		Tenants:      s.Tenants,
		SoakDuration: s.SoakDuration,
	}
	if spec.Seed == 0 {
		spec.Seed = s.Seed
	}
	eng, err := scenario.New(spec)
	if err != nil {
		return nil, err
	}
	res, err := eng.Run(ctx)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:     "scenario",
		Title:  fmt.Sprintf("Extension: multi-tenant soak with fault injection (preset %q, fault seed %d)", presetOr(spec.Name), spec.Seed),
		Header: []string{"tenant", "workload", "class", "ops", "errors", "p50", "p99", "p999"},
	}
	for _, tr := range res.Tenants {
		rep.Rows = append(rep.Rows,
			[]string{tr.Tenant, tr.Workload, "update", fmt.Sprintf("%d", tr.Updates),
				fmtErrorsBy(tr.ErrorsBy), fmtUS(tr.Write.P50), fmtUS(tr.Write.P99), fmtUS(tr.Write.P999)},
			[]string{tr.Tenant, tr.Workload, "read", fmt.Sprintf("%d", tr.Reads),
				"", fmtUS(tr.Read.P50), fmtUS(tr.Read.P99), fmtUS(tr.Read.P999)})
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("passes=%d checkpoints=%d events_fired=%d healed=%d stripes_scrubbed=%d repair_MB=%s",
			res.Passes, res.Checkpoints, res.EventsFired, res.Healed, res.StripesScrubbed, fmtMB(res.RepairBytes)),
		"pass-0 fault timeline (deterministic for this -fault-seed):")
	for _, line := range strings.Split(strings.TrimRight(scenario.FormatTimeline(res.Timeline), "\n"), "\n") {
		rep.Notes = append(rep.Notes, "  "+line)
	}
	rep.Notes = append(rep.Notes,
		"all checkpoints passed: parity scrub, epoch monotonicity, no lost acknowledged write, repair-ledger monotonicity")
	return rep, nil
}

func presetOr(name string) string {
	if name == "" {
		return "mixed"
	}
	return name
}

// fmtErrorsBy renders tolerated transient replay errors by sentinel
// class, e.g. "stale-epoch:3 unreachable:1"; "0" when the tenant saw
// none.
func fmtErrorsBy(by map[trace.ErrClass]int64) string {
	if len(by) == 0 {
		return "0"
	}
	parts := make([]string, 0, len(by))
	for class, n := range by {
		parts = append(parts, fmt.Sprintf("%s:%d", class, n))
	}
	sort.Strings(parts)
	return strings.Join(parts, " ")
}
