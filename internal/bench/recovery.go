package bench

import (
	"context"
	"fmt"
	"time"

	"repro/internal/ecfs"
	"repro/internal/trace"
	"repro/internal/update"
)

// defaultRecoveryWorkerSweep is the worker-count axis of the recovery
// experiment when Scale.RecoveryWorkers is empty.
var defaultRecoveryWorkerSweep = []int{1, 2, 4, 8}

// recoveryMethods are the methods compared on the recovery axis: the
// in-place baseline, the two deferred-recycle log baselines whose
// pending logs depress recovery, and TSUE.
var recoveryMethods = []string{"fo", "pl", "parix", "tsue"}

// loadedCluster is a cluster with one trace replayed onto it, ready for
// failure injection. The replayer and ino allow further update rounds
// (multi-failure scenarios) without re-preparing the file.
type loadedCluster struct {
	c    *ecfs.Cluster
	opts ecfs.Options
	rep  *trace.Replayer
	ino  uint64
}

// loadCluster builds a cluster for rc, replays its trace, settles
// real-time recycling, and — for real-time methods, matching the paper's
// recovery setup where the workload has terminated — drains the
// remaining seconds-scale buffers. Threshold-driven logs (PL/PLR/PARIX)
// stay pending, which is exactly what their recovery pays for. The
// caller owns Close.
func loadCluster(ctx context.Context, rc runConfig) (*loadedCluster, error) {
	opts := rc.clusterOptions()
	c, err := ecfs.NewCluster(opts)
	if err != nil {
		return nil, err
	}
	rep := trace.NewReplayer(c, rc.Scale.ReplayCli)
	ino, err := rep.Prepare(ctx, rc.Trace.Name, rc.Trace.FileSize)
	if err != nil {
		c.Close()
		return nil, err
	}
	if _, err := rep.Run(ctx, rc.Trace, ino); err != nil {
		c.Close()
		return nil, err
	}
	settleCluster(c)
	if _, ok := c.OSDs[0].Strategy().(interface{ RealTimeFlush() error }); ok {
		for phase := 1; phase <= update.DrainPhases; phase++ {
			for _, o := range c.Alive() {
				if err := o.Strategy().Drain(ctx, phase, nil); err != nil {
					c.Close()
					return nil, err
				}
			}
		}
	}
	return &loadedCluster{c: c, opts: opts, rep: rep, ino: ino}, nil
}

// failAndRecover fails the OSD at position pos and rebuilds it with the
// given worker count. The replacement is returned reinstated, so
// multi-failure scenarios can keep going on the same cluster.
func failAndRecover(ctx context.Context, c *ecfs.Cluster, opts ecfs.Options, method string, pos, workers int) (*ecfs.RecoveryResult, error) {
	victim := c.OSDs[pos]
	c.FailOSD(victim.ID())
	cfg := *opts.Strategy
	repl, err := newReplacement(c, victim.ID(), method, cfg)
	if err != nil {
		return nil, err
	}
	res, err := c.RecoverWith(ctx, victim.ID(), repl, workers)
	if err != nil {
		repl.Close()
		return nil, err
	}
	c.Reinstate(repl)
	return res, nil
}

// Recovery is the extension experiment for the paper's recovery axis on
// the SSD testbed: rebuild time and bandwidth versus the rebuild worker
// count and the update method. The worker sweep shows the pipelined
// engine converting per-stripe latency into parallelism until the
// bottleneck resource dominates; the method axis shows pending logs
// (PL/PARIX) depressing recovery exactly as in Fig. 8b.
func Recovery(ctx context.Context, s Scale) (*Report, error) {
	sweep := s.RecoveryWorkers
	if len(sweep) == 0 {
		sweep = defaultRecoveryWorkerSweep
	}
	rep := &Report{
		ID:     "recovery",
		Title:  "Extension: recovery vs worker count and method (Ten-Cloud, RS(6,4))",
		Header: []string{"method", "workers", "blocks", "replayed_KiB", "drain_ms", "time_ms", "MB/s"},
	}
	tr, err := makeTrace("ten", s)
	if err != nil {
		return nil, err
	}
	for _, method := range recoveryMethods {
		for _, w := range sweep {
			lc, err := loadCluster(ctx, runConfig{Method: method, K: 6, M: 4, Trace: tr, Scale: s})
			if err != nil {
				return nil, fmt.Errorf("recovery %s w=%d: %w", method, w, err)
			}
			res, err := failAndRecover(ctx, lc.c, lc.opts, method, 1, w)
			if err != nil {
				lc.c.Close()
				return nil, fmt.Errorf("recovery %s w=%d: %w", method, w, err)
			}
			rep.Rows = append(rep.Rows, []string{
				method,
				fmt.Sprintf("%d", w),
				fmt.Sprintf("%d", res.Blocks),
				fmt.Sprintf("%d", res.ReplayedBytes>>10),
				fmtMS(res.DrainTime),
				fmtMS(res.VirtualTime),
				fmtBW(res.Bandwidth),
			})
			lc.c.Close()
		}
	}
	rep.Notes = append(rep.Notes,
		"expected shape: time falls as workers grow until the bottleneck resource dominates; fo/tsue recover fastest (nothing pending), pl/parix pay the forced drain")
	return rep, nil
}

// RecoveryMulti is the multi-failure scenario: update, fail an OSD,
// recover it, update again, fail a different OSD, recover again. Each
// round recovers with fresh pending-log state; the cluster must scrub
// clean at the end.
func RecoveryMulti(ctx context.Context, s Scale) (*Report, error) {
	rep := &Report{
		ID:     "recovery-multi",
		Title:  "Extension: sequential multi-failure recovery (TSUE, Ten-Cloud, RS(6,4))",
		Header: []string{"round", "victim", "blocks", "skipped", "replayed_KiB", "time_ms", "MB/s"},
	}
	tr, err := makeTrace("ten", s)
	if err != nil {
		return nil, err
	}
	lc, err := loadCluster(ctx, runConfig{Method: "tsue", K: 6, M: 4, Trace: tr, Scale: s})
	if err != nil {
		return nil, err
	}
	c := lc.c
	defer c.Close()

	for round, pos := range []int{1, 4} {
		if round > 0 {
			// Fresh updates between failures, so the second recovery
			// also replays pending state.
			if _, err := lc.rep.Run(ctx, tr, lc.ino); err != nil {
				return nil, err
			}
			settleCluster(c)
		}
		victim := c.OSDs[pos].ID()
		res, err := failAndRecover(ctx, c, lc.opts, "tsue", pos, c.Opts.RecoveryWorkers)
		if err != nil {
			return nil, fmt.Errorf("recovery-multi round %d: %w", round+1, err)
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", round+1),
			fmt.Sprintf("osd%d", victim),
			fmt.Sprintf("%d", res.Blocks),
			fmt.Sprintf("%d", res.Skipped),
			fmt.Sprintf("%d", res.ReplayedBytes>>10),
			fmtMS(res.VirtualTime),
			fmtBW(res.Bandwidth),
		})
	}
	if err := c.Flush(ctx); err != nil {
		return nil, err
	}
	checked, err := c.Scrub()
	if err != nil {
		return nil, fmt.Errorf("recovery-multi: post-recovery scrub: %w", err)
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("post-recovery scrub verified %d stripes parity-consistent after two sequential failures", checked))
	return rep, nil
}

// fmtMS renders a duration in milliseconds.
func fmtMS(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d)/float64(time.Millisecond))
}
