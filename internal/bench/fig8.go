package bench

import (
	"context"
	"fmt"

	"repro/internal/ecfs"
	"repro/internal/trace"
	"repro/internal/update"
	"repro/internal/wire"
)

// fig8Methods are the methods charted on the HDD cluster (the paper
// omits CoRD in Fig. 8).
var fig8Methods = []string{"fo", "pl", "plr", "parix", "tsue"}

// hddTune applies the paper's HDD deployment knobs: one log pool per HDD
// (§5.4) with units small enough that real-time recycling cycles within
// the run.
func hddTune(s Scale) func(cfg *update.Config) {
	return func(cfg *update.Config) {
		cfg.Pools = 1
		cfg.UnitSize = maxI64(s.UnitSize/8, 32<<10)
	}
}

// Fig8a reproduces the HDD update-throughput comparison over the seven
// MSR Cambridge volumes under RS(6,4). The HDD deployment uses the
// paper's §5.4 profile: 40 Gb/s interconnect, 3-copy DataLog, no
// DeltaLog.
func Fig8a(ctx context.Context, s Scale) (*Report, error) {
	rep := &Report{
		ID:     "fig8a",
		Title:  "Update throughput with HDDs (MSR volumes, RS(6,4), IOPS x1000)",
		Header: append([]string{"method"}, trace.MSRVolumes...),
	}
	clients := lastOr(s.Clients, 64)
	for _, method := range fig8Methods {
		row := []string{method}
		for _, vol := range trace.MSRVolumes {
			tr, err := makeTrace(vol, s)
			if err != nil {
				return nil, err
			}
			res, err := run(ctx, runConfig{Method: method, K: 6, M: 4, Trace: tr, Scale: s, HDD: true, NoFlush: true, Mutate: hddTune(s)})
			if err != nil {
				return nil, fmt.Errorf("fig8a %s %s: %w", method, vol, err)
			}
			row = append(row, fmtK(res.iops(clients)))
		}
		rep.Rows = append(rep.Rows, row)
	}
	rep.Notes = append(rep.Notes,
		"expected shape: TSUE best on every volume (up to ~16x FO, ~4x PL, ~9x PLR, ~3.6x PARIX)")
	return rep, nil
}

// Fig8b reproduces the recovery-bandwidth comparison: after an update
// phase, one OSD fails and its blocks are rebuilt from stripe survivors.
// Logs must drain before reconstruction, so methods with large pending
// logs (PL/PLR/PARIX) recover slower; TSUE's real-time recycling leaves
// almost nothing pending and recovers at FO-like bandwidth. Scale's
// Fig8bWorkers adds a rebuild-parallelism axis (tsuebench
// -fig8b-workers); the default single entry reproduces the paper's one
// recovery configuration.
func Fig8b(ctx context.Context, s Scale) (*Report, error) {
	sweep := s.Fig8bWorkers
	if len(sweep) == 0 {
		sweep = []int{0} // 0 = the cluster default worker count
	}
	rep := &Report{
		ID:     "fig8b",
		Title:  "Recovery bandwidth after updates (MSR volumes, RS(6,4), MB/s)",
		Header: append([]string{"method", "workers"}, trace.MSRVolumes...),
	}
	for _, method := range fig8Methods {
		for _, w := range sweep {
			label := w
			if label <= 0 {
				label = ecfs.DefaultRecoveryWorkers
			}
			row := []string{method, fmt.Sprintf("%d", label)}
			for _, vol := range trace.MSRVolumes {
				bw, err := recoveryRun(ctx, method, vol, s, w)
				if err != nil {
					return nil, fmt.Errorf("fig8b %s %s w=%d: %w", method, vol, w, err)
				}
				row = append(row, fmtBW(bw))
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	rep.Notes = append(rep.Notes,
		"expected shape: TSUE ~ FO (logs recycled in real time); PL/PLR/PARIX depressed by pending-log replay before reconstruction",
	)
	if len(sweep) > 1 {
		rep.Notes = append(rep.Notes,
			"worker axis: bandwidth grows with rebuild parallelism until the drain cost or the bottleneck device dominates")
	}
	return rep, nil
}

// recoveryRun replays a volume's updates, fails one OSD, and measures
// the recovery bandwidth (bytes rebuilt / recovery makespan including
// the forced log drain). workers <= 0 selects the cluster default.
func recoveryRun(ctx context.Context, method, vol string, s Scale, workers int) (float64, error) {
	tr, err := makeTrace(vol, s)
	if err != nil {
		return 0, err
	}
	lc, err := loadCluster(ctx, runConfig{Method: method, K: 6, M: 4, Trace: tr, Scale: s, HDD: true, Mutate: hddTune(s)})
	if err != nil {
		return 0, err
	}
	defer lc.c.Close()
	if workers <= 0 {
		workers = lc.c.Opts.RecoveryWorkers
	}
	res, err := failAndRecover(ctx, lc.c, lc.opts, method, 1, workers)
	if err != nil {
		return 0, err
	}
	return res.Bandwidth, nil
}

// fmtBW renders bandwidth in MB/s with enough precision for tiny values.
func fmtBW(bw float64) string {
	mbps := bw / 1e6
	if mbps < 10 {
		return fmt.Sprintf("%.2f", mbps)
	}
	return fmt.Sprintf("%.1f", mbps)
}

func newReplacement(c *ecfs.Cluster, id wire.NodeID, method string, cfg update.Config) (*ecfs.OSD, error) {
	return ecfs.NewOSD(id, c.Opts.Device, c.Tr.Caller(id), method, cfg, c.Opts.Kind)
}
