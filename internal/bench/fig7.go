package bench

import (
	"context"
	"fmt"

	"repro/internal/update"
)

// fig7Variant is one bar group of the Fig. 7 breakdown: cumulative
// enablement of the paper's optimizations on top of the two-log baseline.
type fig7Variant struct {
	name   string
	mutate func(*update.Config)
}

func fig7Variants() []fig7Variant {
	// Baseline: DataLog + ParityLog only, no locality exploitation, no
	// pool structure, one pool, no DeltaLog.
	base := func(cfg *update.Config) {
		cfg.DataLogLocality = false
		cfg.ParityLogLocality = false
		cfg.UseLogPool = false
		cfg.Pools = 1
		cfg.UseDeltaLog = false
	}
	return []fig7Variant{
		{"Baseline", base},
		{"O1", func(cfg *update.Config) { base(cfg); cfg.DataLogLocality = true }},
		{"O2", func(cfg *update.Config) {
			base(cfg)
			cfg.DataLogLocality = true
			cfg.ParityLogLocality = true
		}},
		{"O3", func(cfg *update.Config) {
			cfg.UseLogPool = true
			cfg.Pools = 1
			cfg.UseDeltaLog = false
		}},
		{"O4", func(cfg *update.Config) {
			cfg.UseLogPool = true
			cfg.Pools = 4
			cfg.UseDeltaLog = false
		}},
		{"O5", func(cfg *update.Config) {
			cfg.UseLogPool = true
			cfg.Pools = 4
			cfg.UseDeltaLog = true
		}},
	}
}

// Fig7 reproduces the contribution breakdown: Baseline, then cumulative
// O1 (data-log locality), O2 (parity-log locality), O3 (log pool
// structure), O4 (4 pools per SSD), O5 (DeltaLog), for Ali-Cloud and
// Ten-Cloud under RS(6,2), RS(6,3), RS(6,4).
func Fig7(ctx context.Context, s Scale) (*Report, error) {
	variants := fig7Variants()
	rep := &Report{
		ID:     "fig7",
		Title:  "Breakdown of update throughput (TSUE variants, IOPS x1000)",
		Header: []string{"workload", "Baseline", "O1", "O2", "O3", "O4", "O5"},
	}
	clients := lastOr(s.Clients, 64)
	for _, tn := range []string{"ali", "ten"} {
		for _, m := range []int{2, 3, 4} {
			tr, err := makeTrace(tn, s)
			if err != nil {
				return nil, err
			}
			row := []string{fmt.Sprintf("%s_RS(6,%d)", tn, m)}
			for _, v := range variants {
				res, err := run(ctx, runConfig{
					Method: "tsue", K: 6, M: m, Trace: tr, Scale: s,
					NoFlush: true, Mutate: v.mutate,
				})
				if err != nil {
					return nil, fmt.Errorf("fig7 %s RS(6,%d) %s: %w", tn, m, v.name, err)
				}
				row = append(row, fmtK(res.iops(clients)))
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	rep.Notes = append(rep.Notes,
		"cumulative variants; expected shape: O3 (log pool) largest jump, O1 > O2, O4 minimal, O5 ~ +30%")
	return rep, nil
}
