package bench

import (
	"context"
	"fmt"
	"time"
)

// Table1 reproduces the storage-workload and network-traffic table:
// read/write operation counts and volumes, overwrite (write penalty)
// counts and volumes, and inter-OSD network traffic, for all six
// methods replaying the Ten-Cloud trace under RS(6,4). The final column
// derives the SSD lifespan ratio from erase operations, normalized to
// the worst method.
func Table1(ctx context.Context, s Scale) (*Report, error) {
	rep := &Report{
		ID:    "table1",
		Title: "Storage workload and network traffic (Ten-Cloud, RS(6,4))",
		Header: []string{
			"method", "rw_ops", "rw_GB", "overwrite_ops", "overwrite_GB",
			"net_GB", "erases", "lifespan_x",
		},
	}
	type row struct {
		method string
		res    *runResult
	}
	var rows []row
	var maxErases int64
	for _, method := range []string{"fo", "pl", "plr", "parix", "cord", "tsue"} {
		tr, err := makeTrace("ten", s)
		if err != nil {
			return nil, err
		}
		// Flush included: deferred logs must pay their recycle bill.
		res, err := run(ctx, runConfig{Method: method, K: 6, M: 4, Trace: tr, Scale: s})
		if err != nil {
			return nil, fmt.Errorf("table1 %s: %w", method, err)
		}
		rows = append(rows, row{method, res})
		if e := res.Device.EraseOps; e > maxErases {
			maxErases = e
		}
	}
	for _, r := range rows {
		d := r.res.Device
		lifespan := 0.0
		if d.EraseOps > 0 {
			lifespan = float64(maxErases) / float64(d.EraseOps)
		}
		rep.Rows = append(rep.Rows, []string{
			r.method,
			fmt.Sprintf("%d", d.Reads+d.Writes),
			fmtGB(d.ReadBytes + d.WriteBytes),
			fmt.Sprintf("%d", d.Overwrites),
			fmtGB(d.OverwriteBytes),
			fmtGB(r.res.Traffic),
			fmt.Sprintf("%d", d.EraseOps),
			fmt.Sprintf("%.1f", lifespan),
		})
	}
	rep.Notes = append(rep.Notes,
		"expected shape: TSUE lowest rw op count and lowest overwrite count (~8% of FO); TSUE volume above PARIX/CoRD (three-layer logging); network ~ CoRD < others; lifespan 2.5-13x",
		"workload includes the post-replay flush so deferred-recycle methods pay their log bill")
	return rep, nil
}

// Table2 reproduces the residence-time table: per log layer, the mean
// device cost of an append, the mean time a record stays buffered in
// memory (virtual time from first append to unit seal), and the mean
// recycle cost per record, under RS(12,4) for both cloud traces.
func Table2(ctx context.Context, s Scale) (*Report, error) {
	rep := &Report{
		ID:     "table2",
		Title:  "Time data resides in memory (TSUE, RS(12,4), microseconds)",
		Header: []string{"trace", "layer", "append_us", "buffer_us", "recycle_us", "total_us"},
	}
	// Residence time needs arrival pacing that matches a realistic
	// ingest rate: reuse the scale but with a gentler rate so units
	// take observable virtual time to fill.
	s2 := s
	s2.Rate = s.Rate / 10
	for _, tn := range []string{"ali", "ten"} {
		tr, err := makeTrace(tn, s2)
		if err != nil {
			return nil, err
		}
		res, err := run(ctx, runConfig{Method: "tsue", K: 12, M: 4, Trace: tr, Scale: s2})
		if err != nil {
			return nil, fmt.Errorf("table2 %s: %w", tn, err)
		}
		var total time.Duration
		for _, layer := range []string{"data", "delta", "parity"} {
			st, ok := res.Layers[layer]
			if !ok {
				continue
			}
			app := avgDur(st.AppendCost, st.AppendedEntries)
			buf := avgDur(st.BufferTime, st.UnitsRecycled)
			rec := avgDur(st.RecycleCost, st.RecycleCount)
			total += app + buf + rec
			rep.Rows = append(rep.Rows, []string{
				tn, layer,
				fmt.Sprintf("%.0f", us(app)),
				fmt.Sprintf("%.0f", us(buf)),
				fmt.Sprintf("%.0f", us(rec)),
				"",
			})
		}
		rep.Rows = append(rep.Rows, []string{tn, "TOTAL", "", "", "", fmt.Sprintf("%.0f", us(total))})
	}
	rep.Notes = append(rep.Notes,
		"expected shape: append/recycle are microseconds-to-milliseconds; buffer residence dominates (seconds); total on the order of seconds",
		"buffer_us is the mean first-append-to-seal virtual residency of a unit")
	return rep, nil
}

func avgDur(total time.Duration, n int64) time.Duration {
	if n <= 0 {
		return 0
	}
	return total / time.Duration(n)
}

func us(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
