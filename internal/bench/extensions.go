package bench

import (
	"context"
	"fmt"
	"time"

	"repro/internal/ecfs"
	"repro/internal/trace"
	"repro/internal/update"
)

// Latency is an extension experiment beyond the paper's charts: the paper
// claims TSUE "consistently achieved the highest aggregation IOPS and
// lowest latency" (§7) but only charts IOPS; this table reports the
// update-latency distribution per method under the Ten-Cloud trace.
func Latency(ctx context.Context, s Scale) (*Report, error) {
	rep := &Report{
		ID:     "latency",
		Title:  "Extension: update latency distribution (Ten-Cloud, RS(6,4))",
		Header: []string{"method", "mean", "p50", "p99", "p999", "max"},
	}
	for _, method := range []string{"fo", "pl", "plr", "parix", "cord", "tsue"} {
		tr, err := makeTrace("ten", s)
		if err != nil {
			return nil, err
		}
		rc := runConfig{Method: method, K: 6, M: 4, Trace: tr, Scale: s, NoFlush: true}
		c, err := ecfs.NewCluster(rc.clusterOptions())
		if err != nil {
			return nil, err
		}
		r := trace.NewReplayer(c, s.ReplayCli)
		ino, err := r.Prepare(ctx, tr.Name, tr.FileSize)
		if err != nil {
			c.Close()
			return nil, err
		}
		if _, err := r.Run(ctx, tr, ino); err != nil {
			c.Close()
			return nil, err
		}
		settleCluster(c)
		qs := r.Latency.Percentiles(50, 99, 99.9)
		rep.Rows = append(rep.Rows, []string{
			method,
			fmtUS(r.Latency.Mean()),
			fmtUS(qs[0]),
			fmtUS(qs[1]),
			fmtUS(qs[2]),
			fmtUS(r.Latency.Max()),
		})
		c.Close()
	}
	rep.Notes = append(rep.Notes,
		"expected shape: TSUE lowest mean/median (sequential log append front end); FO highest tail (full in-place path)")
	return rep, nil
}

// Compression is the paper's §7 future-work extension, measured: delta
// compression between log layers trades buffered CPU time for network
// traffic. Reported for a redundant and an incompressible payload mix.
func Compression(ctx context.Context, s Scale) (*Report, error) {
	rep := &Report{
		ID:     "compression",
		Title:  "Extension (paper §7): delta compression between log layers (TSUE, Ten-Cloud, RS(6,4))",
		Header: []string{"payload", "compress", "osd_net_MB", "IOPS(x1000)"},
	}
	clients := lastOr(s.Clients, 64)
	for _, redundant := range []bool{true, false} {
		for _, compress := range []bool{false, true} {
			tr, err := makeTrace("ten", s)
			if err != nil {
				return nil, err
			}
			res, err := runCompression(ctx, tr, s, compress, redundant)
			if err != nil {
				return nil, err
			}
			label := "random"
			if redundant {
				label = "redundant"
			}
			rep.Rows = append(rep.Rows, []string{
				label,
				fmt.Sprintf("%v", compress),
				fmt.Sprintf("%.1f", float64(res.Traffic)/(1<<20)),
				fmtK(res.iops(clients)),
			})
		}
	}
	rep.Notes = append(rep.Notes,
		"redundant payloads: network traffic drops with compression on; random payloads: compression is skipped per-message (no regression)")
	return rep, nil
}

func runCompression(ctx context.Context, tr *trace.Trace, s Scale, compress, redundant bool) (*runResult, error) {
	rc := runConfig{
		Method: "tsue", K: 6, M: 4, Trace: tr, Scale: s,
		Mutate: func(cfg *update.Config) { cfg.CompressDeltas = compress },
	}
	c, err := ecfs.NewCluster(rc.clusterOptions())
	if err != nil {
		return nil, err
	}
	defer c.Close()
	rep := trace.NewReplayer(c, s.ReplayCli)
	if !redundant {
		rep.RandomPayload(s.Seed)
	}
	ino, err := rep.Prepare(ctx, tr.Name, tr.FileSize)
	if err != nil {
		return nil, err
	}
	res, err := rep.Run(ctx, tr, ino)
	if err != nil {
		return nil, err
	}
	settleCluster(c)
	out := &runResult{Replay: res}
	out.MaxBusy = maxBusyOf(c)
	if err := c.Flush(ctx); err != nil {
		return nil, err
	}
	out.Traffic = c.OSDTraffic()
	return out, nil
}

func fmtUS(d time.Duration) string {
	return fmt.Sprintf("%.0fus", float64(d)/float64(time.Microsecond))
}

// Extensions maps extension-experiment ids (beyond the paper's charts) to
// their generators.
var Extensions = map[string]func(context.Context, Scale) (*Report, error){
	"latency":        Latency,
	"compression":    Compression,
	"recovery":       Recovery,
	"recovery-multi": RecoveryMulti,
	"repair":         Repair,
	"mds-scale":      MDSScale,
	"codec":          Codec,
	"scenario":       ScenarioSoak,
	"storage":        Storage,
}
