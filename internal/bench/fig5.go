package bench

import (
	"context"
	"fmt"
	"time"

	"repro/internal/ecfs"
	"repro/internal/trace"
	"repro/internal/update"
)

// fig5Geometries are the six RS(K,M) codes of Fig. 5 (a)-(l).
var fig5Geometries = [][2]int{{6, 2}, {12, 2}, {6, 3}, {12, 3}, {6, 4}, {12, 4}}

// Fig5 reproduces Fig. 5: aggregate update IOPS of FO, PL, PLR, PARIX,
// CoRD and TSUE under the Ali-Cloud and Ten-Cloud traces, for six RS
// geometries and a client sweep. One replay per (geometry, trace,
// method); the client sweep derives from the bottleneck model, since
// per-request costs are client-count independent.
func Fig5(ctx context.Context, s Scale) (*Report, error) {
	rep := &Report{
		ID:     "fig5",
		Title:  "Update throughput with SSDs (aggregate IOPS x1000)",
		Header: append([]string{"rs", "trace", "method"}, clientCols(s.Clients)...),
	}
	for _, km := range fig5Geometries {
		for _, tn := range []string{"ali", "ten"} {
			tr, err := makeTrace(tn, s)
			if err != nil {
				return nil, err
			}
			for _, method := range []string{"fo", "pl", "plr", "parix", "cord", "tsue"} {
				res, err := run(ctx, runConfig{Method: method, K: km[0], M: km[1], Trace: tr, Scale: s, NoFlush: true})
				if err != nil {
					return nil, fmt.Errorf("fig5 %s rs(%d,%d) %s: %w", method, km[0], km[1], tn, err)
				}
				row := []string{fmt.Sprintf("RS(%d,%d)", km[0], km[1]), tn, method}
				for _, c := range s.Clients {
					row = append(row, fmtK(res.iops(c)))
				}
				rep.Rows = append(rep.Rows, row)
			}
		}
	}
	rep.Notes = append(rep.Notes,
		"expected shape: TSUE highest everywhere; advantage grows with M; Ten-Cloud > Ali-Cloud for TSUE; throughput saturates toward 64 clients")
	return rep, nil
}

func clientCols(clients []int) []string {
	out := make([]string, len(clients))
	for i, c := range clients {
		out[i] = fmt.Sprintf("c=%d", c)
	}
	return out
}

// Fig6a reproduces Fig. 6a: TSUE's aggregate IOPS over the run's
// timeline, showing that background recycling does not dent foreground
// throughput. The trace is replayed window by window; each window's IOPS
// derives from the resources consumed within it.
func Fig6a(ctx context.Context, s Scale) (*Report, error) {
	tr, err := makeTrace("ten", s)
	if err != nil {
		return nil, err
	}
	const windows = 10
	rc := runConfig{Method: "tsue", K: 6, M: 4, Trace: tr, Scale: s}
	c, err := ecfs.NewCluster(rc.clusterOptions())
	if err != nil {
		return nil, err
	}
	defer c.Close()
	rep := trace.NewReplayer(c, s.ReplayCli)
	ino, err := rep.Prepare(ctx, tr.Name, tr.FileSize)
	if err != nil {
		return nil, err
	}
	out := &Report{
		ID:     "fig6a",
		Title:  "Recycle overhead in update (TSUE, Ten-Cloud, RS(6,4)): IOPS x1000 per window",
		Header: []string{"window", "t(virtual)", "IOPS(x1000)"},
	}
	per := (len(tr.Ops) + windows - 1) / windows
	clients := lastOr(s.Clients, 64)
	for w := 0; w < windows; w++ {
		lo, hi := w*per, minI((w+1)*per, len(tr.Ops))
		if lo >= hi {
			break
		}
		sub := &trace.Trace{Name: tr.Name, FileSize: tr.FileSize, Ops: tr.Ops[lo:hi]}
		before := snapshotBusy(c)
		res, err := rep.Run(ctx, sub, ino)
		if err != nil {
			return nil, err
		}
		settleCluster(c)
		delta := maxBusyDelta(c, before)
		clientTime := time.Duration(res.Ops) * res.AvgLatency / time.Duration(clients)
		if clientTime > delta {
			delta = clientTime
		}
		iops := 0.0
		if delta > 0 {
			iops = float64(res.Ops) / delta.Seconds()
		}
		out.Rows = append(out.Rows, []string{
			fmt.Sprintf("%d", w+1),
			fmt.Sprintf("%.1fs", sub.Ops[len(sub.Ops)-1].At.Seconds()),
			fmtK(iops),
		})
	}
	out.Notes = append(out.Notes, "expected shape: flat across windows — real-time recycling does not dent update throughput")
	return out, nil
}

// Fig6b reproduces Fig. 6b: TSUE IOPS and peak log memory as the unit
// quota (maximum number of log units per pool) sweeps 2..20. A quota of
// 2 starves the recycle pipeline (stall time surfaces in latency); >= 4
// is flat; memory grows linearly.
func Fig6b(ctx context.Context, s Scale) (*Report, error) {
	// Fig. 6b probes the pool at saturation: the unit quota is the
	// recycle pipeline depth, so it only matters when arrivals keep the
	// pipeline full. Units are shrunk so they turn over many times, and
	// the arrival rate is self-calibrated: a first pass with a deep
	// quota measures the cluster's capacity, then the sweep runs at a
	// slight overload of that capacity.
	s.UnitSize = maxI64(s.UnitSize/4, 32<<10)
	clients := lastOr(s.Clients, 64)
	tr, err := makeTrace("ten", s)
	if err != nil {
		return nil, err
	}
	cal, err := run(ctx, runConfig{
		Method: "tsue", K: 6, M: 4, Trace: tr, Scale: s, NoFlush: true,
		Mutate: func(cfg *update.Config) { cfg.MaxUnits = 64 },
	})
	if err != nil {
		return nil, err
	}
	if capacity := cal.iops(clients); capacity > 0 {
		s.Rate = capacity
	}
	// Walk the rate down until a deep-quota run is (nearly) stall-free:
	// that is the recycle pipeline's sustainable rate. The sweep then
	// runs just above it, where quota depth is what absorbs bursts.
	for iter := 0; iter < 6; iter++ {
		tr, err = makeTrace("ten", s)
		if err != nil {
			return nil, err
		}
		probe, err := run(ctx, runConfig{
			Method: "tsue", K: 6, M: 4, Trace: tr, Scale: s, NoFlush: true,
			Mutate: func(cfg *update.Config) { cfg.MaxUnits = 64 },
		})
		if err != nil {
			return nil, err
		}
		var stallShare float64
		if tot := probe.Replay.TotalLatency; tot > 0 {
			stallShare = stallTimeOf(probe) / float64(tot)
		}
		if stallShare < 0.05 {
			break
		}
		s.Rate /= 2
	}
	s.Rate *= 1.5 // slight overload so shallow quotas visibly stall
	tr, err = makeTrace("ten", s)
	if err != nil {
		return nil, err
	}
	out := &Report{
		ID:     "fig6b",
		Title:  "Memory usage vs performance (TSUE, Ten-Cloud, RS(6,4))",
		Header: []string{"max_units", "IOPS(x1000)", "log_mem(MB)", "stalls"},
	}
	for _, units := range []int{2, 4, 6, 8, 12, 16, 20} {
		units := units
		res, err := run(ctx, runConfig{
			Method: "tsue", K: 6, M: 4, Trace: tr, Scale: s, NoFlush: true,
			Mutate: func(cfg *update.Config) { cfg.MaxUnits = units },
		})
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, []string{
			fmt.Sprintf("%d", units),
			fmtK(res.iops(clients)),
			fmtMB(res.Memory),
			fmt.Sprintf("%d", res.Stalls),
		})
	}
	out.Notes = append(out.Notes,
		"expected shape: shallow quotas stall the append path (see stalls column), deeper quotas absorb bursts; memory grows linearly with the quota",
		"divergence: the paper's IOPS dip at 2 units is reproduced as a stall-count gradient; the closed-loop cap in the stall model mutes its IOPS magnitude (see EXPERIMENTS.md)",
		"paper sets the production default to 4 units")
	return out, nil
}

// stallTimeOf sums modeled stall time across a run's log layers.
func stallTimeOf(r *runResult) float64 {
	var n float64
	for _, st := range r.Layers {
		n += float64(st.StallTime)
	}
	return n
}

func lastOr(xs []int, def int) int {
	if len(xs) == 0 {
		return def
	}
	return xs[len(xs)-1]
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}
