// Package bench regenerates every table and figure of the paper's
// evaluation (§5): Fig. 5 (update throughput on the SSD cluster across
// six RS geometries, two cloud traces and five client counts), Fig. 6a/6b
// (recycle overhead and memory), Fig. 7 (contribution breakdown), Table 1
// (storage workload and network traffic), Table 2 (log residence times),
// and Fig. 8a/8b (HDD throughput and recovery bandwidth).
//
// Each experiment builds a fresh in-process cluster per configuration,
// replays a synthetic trace with real concurrency, lets real-time
// recycling settle, and derives throughput from the bottleneck model
// (see internal/sim). Absolute numbers are not the authors' testbed's;
// the shapes — who wins, by what factor, where crossovers sit — are the
// reproduction target (see DESIGN.md).
//
// Beyond the paper's charts, the Extensions map adds experiments the
// paper motivates but does not plot: update-latency distributions,
// delta-compression traffic, recovery bandwidth versus rebuild
// parallelism and method, sequential multi-failure recovery, and
// mds-scale — metadata lookup and recovery work-list throughput versus
// the MDS namespace shard count (the one experiment reporting
// wall-clock, since pure metadata work sits outside the simulated
// device/network clock).
package bench

import (
	"context"
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/device"
	"repro/internal/ecfs"
	"repro/internal/erasure"
	"repro/internal/logpool"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/update"
)

// Scale sizes an experiment run. Quick() keeps the full suite in CI
// time; Paper() approaches the paper's workload sizes.
type Scale struct {
	NumOSDs   int
	BlockSize int
	FileSize  int64
	Ops       int
	Rate      float64 // trace arrival rate (requests/second)
	Clients   []int   // client-count sweep (Fig. 5)
	ReplayCli int     // concurrent clients used while replaying
	UnitSize  int64
	MaxUnits  int
	Pools     int
	Workers   int
	Seed      int64
	// RecoveryWorkers is the rebuild-parallelism sweep of the recovery
	// experiment; empty selects the default {1, 2, 4, 8}.
	RecoveryWorkers []int
	// Fig8bWorkers is the rebuild-parallelism axis of the fig8b HDD
	// recovery sweep; empty selects the cluster default
	// (ecfs.DefaultRecoveryWorkers), reproducing the paper's single
	// recovery configuration.
	Fig8bWorkers []int
	// MaxRebuildMBps is the rebuild-bandwidth cap (decimal MB/s) the
	// repair experiment's capped drain row runs under; <= 0 derives the
	// cap from the measured uncapped baseline (a quarter of it).
	// tsuebench threads -max-rebuild-mbps through here.
	MaxRebuildMBps float64
	// Scenario, Tenants, FaultSeed, and SoakDuration parameterize the
	// scenario extension (the multi-tenant fault-injection soak,
	// internal/scenario). Zero values select the scenario defaults;
	// FaultSeed 0 falls back to Seed. tsuebench threads -scenario,
	// -tenants, -fault-seed, and -soak-duration through here.
	Scenario     string
	Tenants      int
	FaultSeed    int64
	SoakDuration time.Duration
}

// Quick returns a scale small enough for tests and CI.
func Quick() Scale {
	return Scale{
		NumOSDs:   16,
		BlockSize: 64 << 10,
		FileSize:  8 << 20,
		Ops:       3000,
		Rate:      400_000,
		Clients:   []int{4, 16, 64},
		ReplayCli: 8,
		UnitSize:  256 << 10,
		MaxUnits:  4,
		Pools:     4,
		Workers:   2,
		Seed:      1,
	}
}

// Paper returns a scale closer to the paper's runs (minutes, not hours).
func Paper() Scale {
	return Scale{
		NumOSDs:   16,
		BlockSize: 1 << 20,
		FileSize:  128 << 20,
		Ops:       60_000,
		Rate:      600_000,
		Clients:   []int{4, 8, 16, 32, 64},
		ReplayCli: 16,
		UnitSize:  4 << 20,
		MaxUnits:  4,
		Pools:     4,
		Workers:   4,
		Seed:      1,
	}
}

// Report is a rendered experiment result.
type Report struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Fprint renders the report as an aligned text table.
func (r *Report) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(r.Header, "\t"))
	for _, row := range r.Rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	tw.Flush()
	for _, n := range r.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders the report to a string.
func (r *Report) String() string {
	var sb strings.Builder
	r.Fprint(&sb)
	return sb.String()
}

// runConfig is one cluster+replay execution.
type runConfig struct {
	Method  string
	K, M    int
	Trace   *trace.Trace
	Scale   Scale
	HDD     bool
	Mutate  func(*update.Config) // optional feature-gate tweaks
	NoFlush bool                 // skip the final flush (throughput-only runs)
}

// runResult captures the measurements of one execution.
type runResult struct {
	Replay   *trace.ReplayResult
	MaxBusy  time.Duration // bottleneck resource busy time after settle
	Device   device.Stats  // post-flush unless NoFlush
	Traffic  int64         // OSD-to-OSD bytes, post-flush unless NoFlush
	Layers   map[string]logpool.Stats
	Memory   int64 // resident log buffers (TSUE)
	Stalls   int64
	Recycled int64
}

// settler lets the harness wait for real-time recycling to quiesce.
type settler interface{ Settle() }

// layered exposes per-layer log stats (TSUE).
type layered interface {
	LayerStats() map[string]logpool.Stats
	MemoryBytes() int64
}

func (rc runConfig) clusterOptions() ecfs.Options {
	s := rc.Scale
	cfg := update.DefaultConfig()
	cfg.UnitSize = s.UnitSize
	cfg.MaxUnits = s.MaxUnits
	cfg.Pools = s.Pools
	cfg.Workers = s.Workers
	// PL-family logs defer recycling until this much space is consumed
	// ("PL's extensive parity log space allows recycling to be
	// indefinitely delayed", §5.2) — generous, but finite.
	cfg.RecycleThreshold = 64 * s.UnitSize
	cfg.ReservedSpace = maxI64(s.UnitSize/16, 4<<10)
	cfg.CollectorUnitSize = s.UnitSize / 2
	opts := ecfs.Options{
		NumOSDs:   s.NumOSDs,
		K:         rc.K,
		M:         rc.M,
		BlockSize: s.BlockSize,
		Method:    rc.Method,
		Device:    device.ChameleonSSD(),
		Net:       netsim.Ethernet25G(),
		Kind:      erasure.Vandermonde,
	}
	if rc.HDD {
		opts.Device = device.Datacenter2TBHDD()
		opts.Net = netsim.Infiniband40G()
		// HDD profile (§5.4): 3 DataLog copies, DeltaLog disabled.
		cfg.DataLogReplicas = 2
		cfg.UseDeltaLog = false
	}
	if rc.Mutate != nil {
		rc.Mutate(&cfg)
	}
	opts.Strategy = &cfg
	return opts
}

// run executes one configuration end to end.
func run(ctx context.Context, rc runConfig) (*runResult, error) {
	c, err := ecfs.NewCluster(rc.clusterOptions())
	if err != nil {
		return nil, err
	}
	defer c.Close()
	rep := trace.NewReplayer(c, rc.Scale.ReplayCli)
	ino, err := rep.Prepare(ctx, rc.Trace.Name, rc.Trace.FileSize)
	if err != nil {
		return nil, err
	}
	res, err := rep.Run(ctx, rc.Trace, ino)
	if err != nil {
		return nil, err
	}
	settleCluster(c)

	out := &runResult{Replay: res}
	out.MaxBusy = maxBusyOf(c)
	for _, o := range c.OSDs {
		if l, ok := o.Strategy().(layered); ok {
			out.Memory += l.MemoryBytes()
			for name, st := range l.LayerStats() {
				if out.Layers == nil {
					out.Layers = make(map[string]logpool.Stats)
				}
				out.Layers[name] = addStats(out.Layers[name], st)
				out.Stalls += st.Stalls
				out.Recycled += st.UnitsRecycled
			}
		}
	}
	if !rc.NoFlush {
		if err := c.Flush(ctx); err != nil {
			return nil, err
		}
	}
	out.Device = c.DeviceStats()
	out.Traffic = c.OSDTraffic()
	return out, nil
}

func settleCluster(c *ecfs.Cluster) {
	for _, o := range c.Alive() {
		if s, ok := o.Strategy().(settler); ok {
			s.Settle()
		}
	}
}

// snapshotBusy records every resource's busy time.
func snapshotBusy(c *ecfs.Cluster) []time.Duration {
	return sim.SnapshotBusy(c.Resources())
}

// maxBusyDelta returns the largest per-resource busy increase since the
// snapshot. Resources provisioned after the snapshot (new client NICs)
// count in full.
func maxBusyDelta(c *ecfs.Cluster, before []time.Duration) time.Duration {
	return sim.MaxBusyDelta(c.Resources(), before)
}

func maxBusyOf(c *ecfs.Cluster) time.Duration {
	return sim.MaxBusyDelta(c.Resources(), nil)
}

// iops derives throughput for a client count from the stored bottleneck:
// clients issue synchronously, so they cap at C/avgLatency; the cluster
// caps at its busiest resource.
func (r *runResult) iops(clients int) float64 {
	ops := r.Replay.Ops
	if ops == 0 {
		return 0
	}
	clientTime := time.Duration(ops) * r.Replay.AvgLatency / time.Duration(maxI(clients, 1))
	bound := r.MaxBusy
	if clientTime > bound {
		bound = clientTime
	}
	if bound <= 0 {
		return 0
	}
	return float64(ops) / bound.Seconds()
}

func addStats(a, b logpool.Stats) logpool.Stats {
	a.AppendedEntries += b.AppendedEntries
	a.AppendedBytes += b.AppendedBytes
	a.RecycledExtents += b.RecycledExtents
	a.RecycledBytes += b.RecycledBytes
	a.UnitsRecycled += b.UnitsRecycled
	a.UnitsAllocated += b.UnitsAllocated
	a.CacheHits += b.CacheHits
	a.CacheMisses += b.CacheMisses
	a.AppendCost += b.AppendCost
	a.BufferTime += b.BufferTime
	a.RecycleCost += b.RecycleCost
	a.RecycleCount += b.RecycleCount
	a.Stalls += b.Stalls
	a.StallTime += b.StallTime
	return a
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// makeTrace builds the named workload at this scale.
func makeTrace(name string, s Scale) (*trace.Trace, error) {
	switch name {
	case "ali", "ali-cloud":
		t := trace.AliCloud(s.FileSize, s.Ops, s.Seed)
		retime(t, s.Rate)
		return t, nil
	case "ten", "ten-cloud":
		t := trace.TenCloud(s.FileSize, s.Ops, s.Seed)
		retime(t, s.Rate)
		return t, nil
	default:
		if t, ok := trace.MSR(name, s.FileSize, s.Ops, s.Seed); ok {
			retime(t, s.Rate)
			return t, nil
		}
		return nil, fmt.Errorf("bench: unknown trace %q", name)
	}
}

// retime rewrites arrival timestamps for the scale's rate and clamps
// request sizes to the volume.
func retime(t *trace.Trace, rate float64) {
	if rate <= 0 {
		return
	}
	interval := time.Duration(float64(time.Second) / rate)
	for i := range t.Ops {
		t.Ops[i].At = time.Duration(i+1) * interval
	}
}

// fmtK renders a float as thousands with one decimal (paper axes are
// "IOPS x1000").
func fmtK(v float64) string { return fmt.Sprintf("%.1f", v/1000) }

// fmtGB renders bytes as decimal gigabytes.
func fmtGB(b int64) string { return fmt.Sprintf("%.2f", float64(b)/1e9) }

// fmtMB renders bytes as mebibytes.
func fmtMB(b int64) string { return fmt.Sprintf("%.0f", float64(b)/(1<<20)) }

// Experiments maps experiment ids to their generators. Every generator
// takes a context honored between (and, through the replayer, within)
// its cluster runs, so a cancelled ctx aborts an in-flight experiment.
var Experiments = map[string]func(context.Context, Scale) (*Report, error){
	"fig5":   Fig5,
	"fig6a":  Fig6a,
	"fig6b":  Fig6b,
	"fig7":   Fig7,
	"table1": Table1,
	"table2": Table2,
	"fig8a":  Fig8a,
	"fig8b":  Fig8b,
}

// Order lists experiment ids in the paper's order.
var Order = []string{"fig5", "fig6a", "fig6b", "fig7", "table1", "table2", "fig8a", "fig8b"}

// AblationRun replays a trace on a fresh cluster with a mutated strategy
// configuration and returns the modeled aggregate IOPS at the scale's
// largest client count. Exported for the repository's ablation
// benchmarks (bench_test.go).
func AblationRun(ctx context.Context, method string, k, m int, tr *trace.Trace, s Scale, mutate func(*update.Config)) (float64, error) {
	res, err := run(ctx, runConfig{Method: method, K: k, M: m, Trace: tr, Scale: s, NoFlush: true, Mutate: mutate})
	if err != nil {
		return 0, err
	}
	clients := 64
	if len(s.Clients) > 0 {
		clients = s.Clients[len(s.Clients)-1]
	}
	return res.iops(clients), nil
}
