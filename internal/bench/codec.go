package bench

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"testing"

	"repro/internal/ecfs"
	"repro/internal/erasure"
	"repro/internal/transport"
	"repro/internal/wire"
)

// codecBenchMsg is the frame every row of the codec report measures: a
// 64 KiB KWriteBlock with a realistic RS(4,2) placement — the stripe
// write's hot-path frame.
func codecBenchMsg() *wire.Msg {
	return &wire.Msg{
		Kind:  wire.KWriteBlock,
		From:  wire.ClientIDBase,
		Block: wire.BlockID{Ino: 42, Stripe: 7, Idx: 2},
		Data:  make([]byte, 64<<10),
		K:     4,
		M:     2,
		Loc:   wire.StripeLoc{Nodes: []wire.NodeID{1, 2, 3, 4, 5, 6}, Epoch: 3},
	}
}

// Codec is the PR-6 extension: the wire-format trajectory. It compares
// the retired gob encoding against the hand-rolled binary codec on the
// 64 KiB KWriteBlock frame (encode and decode ns/op and allocs/op), and
// measures real loopback round-trips/s on the multiplexed TCP transport,
// sequential and pipelined.
func Codec(ctx context.Context, _ Scale) (*Report, error) {
	rep := &Report{
		ID:     "codec",
		Title:  "Extension: wire codec and transport microbenchmarks (64 KiB KWriteBlock frame)",
		Header: []string{"benchmark", "ns/op", "MB/s", "B/op", "allocs/op"},
	}
	msg := codecBenchMsg()
	size := float64(msg.WireSize())

	type row struct {
		name string
		fn   func(b *testing.B)
	}
	var gobSeed bytes.Buffer
	if err := gob.NewEncoder(&gobSeed).Encode(msg); err != nil {
		return nil, err
	}
	binSeed := msg.AppendTo(nil)
	rows := []row{
		{"encode/binary", func(b *testing.B) {
			buf := msg.AppendTo(nil)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				buf = msg.AppendTo(buf[:0])
			}
		}},
		{"encode/gob", func(b *testing.B) {
			var buf bytes.Buffer
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				buf.Reset()
				// A fresh encoder per frame, as the retired transport
				// required: gob stream state cannot span frames.
				if err := gob.NewEncoder(&buf).Encode(msg); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"decode/binary", func(b *testing.B) {
			var m wire.Msg
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := m.Decode(binSeed); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"decode/gob", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var m wire.Msg
				if err := gob.NewDecoder(bytes.NewReader(gobSeed.Bytes())).Decode(&m); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}
	results := make(map[string]testing.BenchmarkResult, len(rows))
	for _, r := range rows {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res := testing.Benchmark(r.fn)
		results[r.name] = res
		nsOp := float64(res.NsPerOp())
		rep.Rows = append(rep.Rows, []string{
			r.name,
			fmt.Sprintf("%.0f", nsOp),
			fmt.Sprintf("%.0f", size/nsOp*1e3), // bytes/ns -> MB/s (1e-3 GB/s)
			fmt.Sprintf("%d", res.AllocedBytesPerOp()),
			fmt.Sprintf("%d", res.AllocsPerOp()),
		})
	}

	// Loopback round trips on the real transport: one multiplexed
	// connection, a 4 KiB ping payload.
	for _, pipelined := range []bool{false, true} {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res, err := benchLoopback(pipelined)
		if err != nil {
			return nil, err
		}
		name := "tcp-roundtrip/sequential"
		if pipelined {
			name = "tcp-roundtrip/pipelined"
		}
		nsOp := float64(res.NsPerOp())
		rep.Rows = append(rep.Rows, []string{
			name,
			fmt.Sprintf("%.0f", nsOp),
			fmt.Sprintf("%.0f rt/s", 1e9/nsOp),
			fmt.Sprintf("%d", res.AllocedBytesPerOp()),
			fmt.Sprintf("%d", res.AllocsPerOp()),
		})
	}

	// Multi-stripe file writes on the real transport: the cross-stripe
	// coalescing trajectory (ISSUE 8). One stub cluster and one warm
	// client serve both rows so the comparison is dial- and cache-fair;
	// "per-stripe" drives one WriteStripeContext per stripe (each stripe
	// its own batch), "coalesced" drives WriteFileContext (all stripes'
	// shard frames grouped per destination in one flush window).
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	seqRes, coRes, wfBytes, err := benchWriteFile()
	if err != nil {
		return nil, err
	}
	for _, wf := range []struct {
		name string
		res  testing.BenchmarkResult
	}{{"writefile/per-stripe", seqRes}, {"writefile/coalesced", coRes}} {
		nsOp := float64(wf.res.NsPerOp())
		rep.Rows = append(rep.Rows, []string{
			wf.name,
			fmt.Sprintf("%.0f", nsOp),
			fmt.Sprintf("%.0f", float64(wfBytes)/nsOp*1e3),
			fmt.Sprintf("%d", wf.res.AllocedBytesPerOp()),
			fmt.Sprintf("%d", wf.res.AllocsPerOp()),
		})
	}
	if seq, co := seqRes.NsPerOp(), coRes.NsPerOp(); seq > 0 && co > 0 {
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"cross-stripe write coalescing: %d-stripe file write %.2fx vs per-stripe (%d vs %d ns/op); single-core runners understate the win (the coalesced fan-out also overlaps per-destination flushes)",
			writeFileBenchStripes, float64(seq)/float64(co), co, seq))
	}

	encBin, encGob := results["encode/binary"], results["encode/gob"]
	decBin, decGob := results["decode/binary"], results["decode/gob"]
	sumBin := encBin.NsPerOp() + decBin.NsPerOp()
	sumGob := encGob.NsPerOp() + decGob.NsPerOp()
	allocBin := encBin.AllocsPerOp() + decBin.AllocsPerOp()
	allocGob := encGob.AllocsPerOp() + decGob.AllocsPerOp()
	speedup := float64(sumGob) / float64(sumBin)
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("binary vs gob, encode+decode of the 64 KiB KWriteBlock frame: %.1fx faster (%d vs %d ns/op), %dx fewer allocs (%d vs %d allocs/op)",
			speedup, sumBin, sumGob, safeRatio(allocGob, allocBin), allocBin, allocGob),
		"acceptance gate (ISSUE 6): >=5x fewer allocs/op and >=2x faster encode+decode than gob",
	)
	if speedup < 2 || (allocBin > 0 && allocGob/allocBin < 5) {
		return nil, fmt.Errorf("bench: codec regression: %.1fx speedup, %d vs %d allocs/op (gate: >=2x, >=5x fewer allocs)",
			speedup, allocBin, allocGob)
	}
	return rep, nil
}

// safeRatio returns a/b, treating b==0 as "infinitely fewer" (capped to
// a so the note stays printable).
func safeRatio(a, b int64) int64 {
	if b == 0 {
		return a
	}
	return a / b
}

// writeFileBenchStripes is the stripe count of the writefile trajectory
// row — two full coalescing windows of small (8 KiB) blocks, so the
// comparison is round-trip-structure-bound: the per-stripe loop pays 16
// sequential batch flushes per destination, the coalesced path 2.
const writeFileBenchStripes = 16

// benchWriteFile measures a multi-stripe file write against a stub TCP
// cluster (an MDS that answers create/lookup with a fixed placement,
// K+M OSDs that ack KWriteBlock), both as a per-stripe
// WriteStripeContext loop and coalesced through WriteFileContext. One
// cluster, one client, and one warm-up write serve both modes, so
// neither row pays the connection dials or the cold placement lookup.
// Returns (per-stripe, coalesced, file bytes moved per op).
func benchWriteFile() (seq, co testing.BenchmarkResult, bytes int64, err error) {
	const (
		k, m      = 2, 1
		blockSize = 8 << 10
	)
	osdIDs := []wire.NodeID{1, 2, 3}
	loc := wire.StripeLoc{Nodes: osdIDs, Epoch: 1}
	addrs := make(map[wire.NodeID]string, k+m+1)
	var servers []*transport.TCPServer
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	mds, err := transport.ServeTCP(wire.MDSNode, "127.0.0.1:0", func(_ context.Context, msg *wire.Msg) *wire.Resp {
		switch msg.Kind {
		case wire.KMDSCreate:
			return &wire.Resp{Ino: 1}
		case wire.KMDSLookup:
			return &wire.Resp{Loc: loc}
		default:
			return &wire.Resp{}
		}
	})
	if err != nil {
		return seq, co, 0, err
	}
	servers = append(servers, mds)
	addrs[wire.MDSNode] = mds.Addr()
	for _, id := range osdIDs {
		osd, err := transport.ServeTCP(id, "127.0.0.1:0", func(_ context.Context, _ *wire.Msg) *wire.Resp {
			return &wire.Resp{}
		})
		if err != nil {
			return seq, co, 0, err
		}
		servers = append(servers, osd)
		addrs[id] = osd.Addr()
	}
	rpc := transport.NewTCPClient(addrs)
	defer rpc.Close()
	code, err := erasure.New(k, m, erasure.Vandermonde)
	if err != nil {
		return seq, co, 0, err
	}
	cli := ecfs.NewClient(wire.ClientIDBase, rpc, code, blockSize)
	ctx := context.Background()
	ino, err := cli.CreateContext(ctx, "bench-writefile")
	if err != nil {
		return seq, co, 0, err
	}
	span := cli.StripeSpan()
	data := make([]byte, writeFileBenchStripes*span)
	if _, err := cli.WriteFileContext(ctx, ino, data); err != nil {
		return seq, co, 0, err
	}
	var failed error
	seq = testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for s := 0; s < writeFileBenchStripes; s++ {
				if _, err := cli.WriteStripeContext(ctx, ino, uint32(s), data[s*span:(s+1)*span]); err != nil {
					failed = err
					b.Fatal(err)
				}
			}
		}
	})
	if failed != nil {
		return seq, co, 0, failed
	}
	co = testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := cli.WriteFileContext(ctx, ino, data); err != nil {
				failed = err
				b.Fatal(err)
			}
		}
	})
	return seq, co, int64(len(data)), failed
}

// benchLoopback measures one Call round trip on a real loopback TCP
// connection, sequentially or with GOMAXPROCS concurrent callers
// pipelined onto the shared connection.
func benchLoopback(pipelined bool) (testing.BenchmarkResult, error) {
	srv, err := transport.ServeTCP(1, "127.0.0.1:0", func(_ context.Context, m *wire.Msg) *wire.Resp {
		return &wire.Resp{Data: m.Data}
	})
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	defer srv.Close()
	cli := transport.NewTCPClient(map[wire.NodeID]string{1: srv.Addr()})
	defer cli.Close()
	ctx := context.Background()
	var failed error
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		if pipelined {
			b.RunParallel(func(pb *testing.PB) {
				msg := &wire.Msg{Kind: wire.KPing, Data: make([]byte, 4<<10)}
				for pb.Next() {
					resp, err := cli.Call(ctx, 1, msg)
					if err != nil {
						failed = err
						b.Fatal(err)
					}
					resp.Release()
				}
			})
			return
		}
		msg := &wire.Msg{Kind: wire.KPing, Data: make([]byte, 4<<10)}
		for i := 0; i < b.N; i++ {
			resp, err := cli.Call(ctx, 1, msg)
			if err != nil {
				failed = err
				b.Fatal(err)
			}
			// Honor the pooled-buffer contract: without the Release every
			// round trip misses the frame pool and B/op triples.
			resp.Release()
		}
	})
	return res, failed
}
