package bench

import (
	"strconv"
	"testing"
)

func TestLatencyExtension(t *testing.T) {
	s := tinyScale()
	rep, err := Latency(s)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + rep.String())
	if len(rep.Rows) != 6 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
}

func TestCompressionExtension(t *testing.T) {
	s := tinyScale()
	rep, err := Compression(s)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + rep.String())
	get := func(payload, compress string) float64 {
		v, ok := getCell(rep, func(row []string) bool { return row[0] == payload && row[1] == compress }, 2)
		if !ok {
			t.Fatalf("missing row %s/%s", payload, compress)
		}
		return v
	}
	if get("redundant", "true") >= get("redundant", "false") {
		t.Error("compression should cut traffic on redundant payloads")
	}
	// Random payloads: per-message skip keeps traffic roughly unchanged.
	if get("random", "true") > get("random", "false")*1.1 {
		t.Error("compression must not inflate traffic on random payloads")
	}
}

func TestExtensionRegistry(t *testing.T) {
	for id, fn := range Extensions {
		if fn == nil {
			t.Fatalf("extension %s nil", id)
		}
	}
	for _, id := range []string{"latency", "compression", "recovery", "recovery-multi"} {
		if Extensions[id] == nil {
			t.Fatalf("extension %s missing", id)
		}
	}
	if len(Extensions) != 4 {
		t.Fatalf("extensions = %d", len(Extensions))
	}
	_ = strconv.Itoa
}
