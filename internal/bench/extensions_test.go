package bench

import (
	"context"
	"strconv"
	"strings"
	"testing"
)

func TestLatencyExtension(t *testing.T) {
	s := tinyScale()
	rep, err := Latency(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + rep.String())
	if len(rep.Rows) != 6 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
}

func TestCompressionExtension(t *testing.T) {
	s := tinyScale()
	rep, err := Compression(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + rep.String())
	get := func(payload, compress string) float64 {
		v, ok := getCell(rep, func(row []string) bool { return row[0] == payload && row[1] == compress }, 2)
		if !ok {
			t.Fatalf("missing row %s/%s", payload, compress)
		}
		return v
	}
	if get("redundant", "true") >= get("redundant", "false") {
		t.Error("compression should cut traffic on redundant payloads")
	}
	// Random payloads: per-message skip keeps traffic roughly unchanged.
	if get("random", "true") > get("random", "false")*1.1 {
		t.Error("compression must not inflate traffic on random payloads")
	}
}

func TestMDSScaleExtension(t *testing.T) {
	s := tinyScale()
	rep, err := MDSScale(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + rep.String())
	if len(rep.Rows) != 10 { // 4 shard counts x 2 file counts + 2 durable rows
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	// The durable rows must report real checkpoint and cold-reopen
	// costs; the in-memory rows must not (those cells are "-").
	for _, row := range rep.Rows {
		durable := strings.HasPrefix(row[0], "durable/")
		for _, col := range []int{7, 8} {
			if _, err := strconv.ParseFloat(row[col], 64); durable != (err == nil) {
				t.Fatalf("row %v: snapshot/reopen cell %q does not match durability", row, row[col])
			}
		}
	}
	// StripesOn must be paid per node's block count, not per namespace:
	// within a shard config the small and large namespaces differ ~5x in
	// refs_per_node, so the per-call cost may grow with refs but must
	// stay far below a full-namespace scan blowup. Guard the invariant
	// structurally instead: the generator verifies the reverse index
	// covers every placement exactly (it errors otherwise), and larger
	// namespaces must report proportionally larger refs_per_node.
	refSmall, ok1 := getCell(rep, func(r []string) bool { return r[0] == "1" && r[1] == strconv.Itoa(s.Ops*10) }, 6)
	refLarge, ok2 := getCell(rep, func(r []string) bool { return r[0] == "1" && r[1] == strconv.Itoa(s.Ops*50) }, 6)
	if !ok1 || !ok2 {
		t.Fatal("missing mds-scale rows")
	}
	if refLarge <= refSmall {
		t.Fatalf("refs_per_node did not grow with the namespace: %v vs %v", refLarge, refSmall)
	}
	// The contended-write phase must report a real create rate for every
	// cell (creates_per_s > 0): that is the column where shard-count
	// scaling is visible in the table itself.
	for _, row := range rep.Rows {
		cps, err := strconv.ParseFloat(row[4], 64)
		if err != nil || cps <= 0 {
			t.Fatalf("bad creates_per_s %q in row %v", row[4], row)
		}
	}
}

// TestRepairExtension smoke-runs the repair experiment: recovery under
// hot reads (FIFO vs prioritized) plus drain and decommission rows. The
// FIFO/prioritized read counts race the rebuild in wall time, so only
// structure and hard invariants are asserted here; the deterministic
// reorder proof lives in ecfs.TestPrioritizedRepairReordersQueue.
func TestRepairExtension(t *testing.T) {
	s := tinyScale()
	s.Ops = 600
	s.MaxRebuildMBps = 2.0
	rep, err := Repair(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + rep.String())
	if len(rep.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rep.Rows))
	}
	for _, scenario := range []string{"recover/fifo", "recover/prio"} {
		blocks, ok := getCell(rep, func(r []string) bool { return r[0] == scenario }, 4)
		if !ok || blocks <= 0 {
			t.Fatalf("%s recovered no blocks", scenario)
		}
		// The tagged columns separate rebuild from reader traffic.
		repairBW, ok := getCell(rep, func(r []string) bool { return r[0] == scenario }, 7)
		if !ok || repairBW <= 0 {
			t.Fatalf("%s reports no repair_MBps", scenario)
		}
	}
	for _, scenario := range []string{"drain", "decommission"} {
		moved, ok := getCell(rep, func(r []string) bool { return r[0] == scenario }, 4)
		if !ok || moved <= 0 {
			t.Fatalf("%s moved no blocks", scenario)
		}
	}
	// The scheduler-cap sweep: the capped drain row must report a
	// rebuild bandwidth at or under the cap it ran with (deterministic:
	// the scheduler floors the makespan at budget-bytes/cap).
	capScenario := "drain/fg/cap=2.0"
	capBW, ok := getCell(rep, func(r []string) bool { return r[0] == capScenario }, 7)
	if !ok {
		t.Fatalf("missing capped drain row %q", capScenario)
	}
	if capBW > s.MaxRebuildMBps*1.01 {
		t.Fatalf("capped drain repair_MBps = %.2f, exceeds the %.1f cap", capBW, s.MaxRebuildMBps)
	}
	if uncBW, ok := getCell(rep, func(r []string) bool { return r[0] == "drain/fg/uncapped" }, 7); !ok || uncBW <= 0 {
		t.Fatal("uncapped drain row missing repair_MBps")
	}
	// Foreground throughput under the cap is at least the uncapped
	// row's: the capped drain spreads its interference burst beyond the
	// readers' window, so the window's bottleneck busy time can only
	// shrink (operational law; the totals are workload-conserving).
	capFG, ok1 := getCell(rep, func(r []string) bool { return r[0] == capScenario }, 8)
	uncFG, ok2 := getCell(rep, func(r []string) bool { return r[0] == "drain/fg/uncapped" }, 8)
	if !ok1 || !ok2 || capFG <= 0 || uncFG <= 0 {
		t.Fatalf("foreground_MBps missing: capped=%v uncapped=%v", capFG, uncFG)
	}
	if capFG < uncFG*0.98 {
		t.Fatalf("capped foreground_MBps %.1f below uncapped %.1f", capFG, uncFG)
	}
}

func TestExtensionRegistry(t *testing.T) {
	for id, fn := range Extensions {
		if fn == nil {
			t.Fatalf("extension %s nil", id)
		}
	}
	for _, id := range []string{"latency", "compression", "recovery", "recovery-multi", "repair", "mds-scale", "codec", "scenario", "storage"} {
		if Extensions[id] == nil {
			t.Fatalf("extension %s missing", id)
		}
	}
	if len(Extensions) != 9 {
		t.Fatalf("extensions = %d", len(Extensions))
	}
	_ = strconv.Itoa
}
