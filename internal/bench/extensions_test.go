package bench

import (
	"context"
	"strconv"
	"testing"
)

func TestLatencyExtension(t *testing.T) {
	s := tinyScale()
	rep, err := Latency(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + rep.String())
	if len(rep.Rows) != 6 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
}

func TestCompressionExtension(t *testing.T) {
	s := tinyScale()
	rep, err := Compression(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + rep.String())
	get := func(payload, compress string) float64 {
		v, ok := getCell(rep, func(row []string) bool { return row[0] == payload && row[1] == compress }, 2)
		if !ok {
			t.Fatalf("missing row %s/%s", payload, compress)
		}
		return v
	}
	if get("redundant", "true") >= get("redundant", "false") {
		t.Error("compression should cut traffic on redundant payloads")
	}
	// Random payloads: per-message skip keeps traffic roughly unchanged.
	if get("random", "true") > get("random", "false")*1.1 {
		t.Error("compression must not inflate traffic on random payloads")
	}
}

func TestMDSScaleExtension(t *testing.T) {
	s := tinyScale()
	rep, err := MDSScale(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + rep.String())
	if len(rep.Rows) != 8 { // 4 shard counts x 2 file counts
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	// StripesOn must be paid per node's block count, not per namespace:
	// within a shard config the small and large namespaces differ ~5x in
	// refs_per_node, so the per-call cost may grow with refs but must
	// stay far below a full-namespace scan blowup. Guard the invariant
	// structurally instead: the generator verifies the reverse index
	// covers every placement exactly (it errors otherwise), and larger
	// namespaces must report proportionally larger refs_per_node.
	refSmall, ok1 := getCell(rep, func(r []string) bool { return r[0] == "1" && r[1] == strconv.Itoa(s.Ops*10) }, 6)
	refLarge, ok2 := getCell(rep, func(r []string) bool { return r[0] == "1" && r[1] == strconv.Itoa(s.Ops*50) }, 6)
	if !ok1 || !ok2 {
		t.Fatal("missing mds-scale rows")
	}
	if refLarge <= refSmall {
		t.Fatalf("refs_per_node did not grow with the namespace: %v vs %v", refLarge, refSmall)
	}
	// The contended-write phase must report a real create rate for every
	// cell (creates_per_s > 0): that is the column where shard-count
	// scaling is visible in the table itself.
	for _, row := range rep.Rows {
		cps, err := strconv.ParseFloat(row[4], 64)
		if err != nil || cps <= 0 {
			t.Fatalf("bad creates_per_s %q in row %v", row[4], row)
		}
	}
}

// TestRepairExtension smoke-runs the repair experiment: recovery under
// hot reads (FIFO vs prioritized) plus drain and decommission rows. The
// FIFO/prioritized read counts race the rebuild in wall time, so only
// structure and hard invariants are asserted here; the deterministic
// reorder proof lives in ecfs.TestPrioritizedRepairReordersQueue.
func TestRepairExtension(t *testing.T) {
	s := tinyScale()
	s.Ops = 600
	rep, err := Repair(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + rep.String())
	if len(rep.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rep.Rows))
	}
	for _, scenario := range []string{"recover/fifo", "recover/prio"} {
		blocks, ok := getCell(rep, func(r []string) bool { return r[0] == scenario }, 4)
		if !ok || blocks <= 0 {
			t.Fatalf("%s recovered no blocks", scenario)
		}
	}
	for _, scenario := range []string{"drain", "decommission"} {
		moved, ok := getCell(rep, func(r []string) bool { return r[0] == scenario }, 4)
		if !ok || moved <= 0 {
			t.Fatalf("%s moved no blocks", scenario)
		}
	}
}

func TestExtensionRegistry(t *testing.T) {
	for id, fn := range Extensions {
		if fn == nil {
			t.Fatalf("extension %s nil", id)
		}
	}
	for _, id := range []string{"latency", "compression", "recovery", "recovery-multi", "repair", "mds-scale"} {
		if Extensions[id] == nil {
			t.Fatalf("extension %s missing", id)
		}
	}
	if len(Extensions) != 6 {
		t.Fatalf("extensions = %d", len(Extensions))
	}
	_ = strconv.Itoa
}
