package bench

import (
	"strconv"
	"testing"
)

func TestLatencyExtension(t *testing.T) {
	s := tinyScale()
	rep, err := Latency(s)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + rep.String())
	if len(rep.Rows) != 6 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
}

func TestCompressionExtension(t *testing.T) {
	s := tinyScale()
	rep, err := Compression(s)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + rep.String())
	get := func(payload, compress string) float64 {
		v, ok := getCell(rep, func(row []string) bool { return row[0] == payload && row[1] == compress }, 2)
		if !ok {
			t.Fatalf("missing row %s/%s", payload, compress)
		}
		return v
	}
	if get("redundant", "true") >= get("redundant", "false") {
		t.Error("compression should cut traffic on redundant payloads")
	}
	// Random payloads: per-message skip keeps traffic roughly unchanged.
	if get("random", "true") > get("random", "false")*1.1 {
		t.Error("compression must not inflate traffic on random payloads")
	}
}

func TestMDSScaleExtension(t *testing.T) {
	s := tinyScale()
	rep, err := MDSScale(s)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + rep.String())
	if len(rep.Rows) != 8 { // 4 shard counts x 2 file counts
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	// StripesOn must be paid per node's block count, not per namespace:
	// within a shard config the small and large namespaces differ ~5x in
	// refs_per_node, so the per-call cost may grow with refs but must
	// stay far below a full-namespace scan blowup. Guard the invariant
	// structurally instead: the generator verifies the reverse index
	// covers every placement exactly (it errors otherwise), and larger
	// namespaces must report proportionally larger refs_per_node.
	refSmall, ok1 := getCell(rep, func(r []string) bool { return r[0] == "1" && r[1] == strconv.Itoa(s.Ops*10) }, 5)
	refLarge, ok2 := getCell(rep, func(r []string) bool { return r[0] == "1" && r[1] == strconv.Itoa(s.Ops*50) }, 5)
	if !ok1 || !ok2 {
		t.Fatal("missing mds-scale rows")
	}
	if refLarge <= refSmall {
		t.Fatalf("refs_per_node did not grow with the namespace: %v vs %v", refLarge, refSmall)
	}
}

func TestExtensionRegistry(t *testing.T) {
	for id, fn := range Extensions {
		if fn == nil {
			t.Fatalf("extension %s nil", id)
		}
	}
	for _, id := range []string{"latency", "compression", "recovery", "recovery-multi", "mds-scale"} {
		if Extensions[id] == nil {
			t.Fatalf("extension %s missing", id)
		}
	}
	if len(Extensions) != 5 {
		t.Fatalf("extensions = %d", len(Extensions))
	}
	_ = strconv.Itoa
}
