package bench

import (
	"context"
	"strconv"
	"strings"
	"testing"
)

// tinyScale keeps individual experiment tests fast.
func tinyScale() Scale {
	s := Quick()
	s.NumOSDs = 16
	s.FileSize = 4 << 20
	s.Ops = 1200
	s.Clients = []int{4, 64}
	return s
}

func getCell(r *Report, match func(row []string) bool, col int) (float64, bool) {
	for _, row := range r.Rows {
		if match(row) {
			v, err := strconv.ParseFloat(row[col], 64)
			if err != nil {
				return 0, false
			}
			return v, true
		}
	}
	return 0, false
}

func TestFig5ShapeTSUEWins(t *testing.T) {
	s := tinyScale()
	// One geometry is enough for the smoke shape test.
	old := fig5Geometries
	fig5Geometries = [][2]int{{6, 4}}
	defer func() { fig5Geometries = old }()
	rep, err := Fig5(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + rep.String())
	col := len(rep.Header) - 1 // highest client count
	pick := func(method, tn string) float64 {
		v, ok := getCell(rep, func(row []string) bool { return row[2] == method && row[1] == tn }, col)
		if !ok {
			t.Fatalf("missing row %s/%s", method, tn)
		}
		return v
	}
	for _, tn := range []string{"ali", "ten"} {
		tsue := pick("tsue", tn)
		for _, other := range []string{"fo", "pl", "plr", "parix", "cord"} {
			if tsue <= pick(other, tn) {
				t.Errorf("%s: tsue (%.1f) should beat %s (%.1f)", tn, tsue, other, pick(other, tn))
			}
		}
	}
	// Ten-Cloud (stronger locality) should favor TSUE at least as much.
	if pick("tsue", "ten") < pick("tsue", "ali")*0.8 {
		t.Errorf("ten-cloud tsue (%.1f) unexpectedly far below ali (%.1f)", pick("tsue", "ten"), pick("tsue", "ali"))
	}
}

func TestFig5ClientScaling(t *testing.T) {
	s := tinyScale()
	old := fig5Geometries
	fig5Geometries = [][2]int{{6, 2}}
	defer func() { fig5Geometries = old }()
	rep, err := Fig5(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Rows {
		lo, _ := strconv.ParseFloat(row[3], 64)
		hi, _ := strconv.ParseFloat(row[4], 64)
		if hi < lo {
			t.Errorf("%s/%s: throughput decreased with more clients: %v -> %v", row[0], row[2], lo, hi)
		}
	}
}

func TestFig7Shape(t *testing.T) {
	s := tinyScale()
	rep, err := Fig7(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + rep.String())
	for _, row := range rep.Rows {
		if !strings.HasPrefix(row[0], "ten") {
			continue
		}
		base, _ := strconv.ParseFloat(row[1], 64)
		o5, _ := strconv.ParseFloat(row[6], 64)
		if o5 <= base {
			t.Errorf("%s: full TSUE (%.1f) should beat baseline (%.1f)", row[0], o5, base)
		}
	}
}

func TestTable1Shape(t *testing.T) {
	s := tinyScale()
	rep, err := Table1(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + rep.String())
	get := func(method string, col int) float64 {
		v, ok := getCell(rep, func(row []string) bool { return row[0] == method }, col)
		if !ok {
			t.Fatalf("missing %s", method)
		}
		return v
	}
	// TSUE overwrite count far below FO's.
	if get("tsue", 3) >= get("fo", 3)*0.5 {
		t.Errorf("tsue overwrites (%v) should be well below fo (%v)", get("tsue", 3), get("fo", 3))
	}
	// TSUE lifespan multiple >= 1 (it is the normalization reference or better).
	if get("tsue", 7) < 1 {
		t.Errorf("tsue lifespan ratio %v < 1", get("tsue", 7))
	}
	// CoRD's network traffic should be the lowest or near-lowest.
	if get("cord", 5) > get("fo", 5) {
		t.Errorf("cord traffic (%v GB) should undercut fo (%v GB)", get("cord", 5), get("fo", 5))
	}
}

func TestTable2Produces(t *testing.T) {
	s := tinyScale()
	rep, err := Table2(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + rep.String())
	if len(rep.Rows) < 4 {
		t.Fatalf("too few rows: %d", len(rep.Rows))
	}
}

func TestFig6aFlat(t *testing.T) {
	s := tinyScale()
	rep, err := Fig6a(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + rep.String())
	if len(rep.Rows) < 5 {
		t.Fatalf("too few windows: %d", len(rep.Rows))
	}
}

func TestFig6bMemoryGrows(t *testing.T) {
	s := tinyScale()
	rep, err := Fig6b(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + rep.String())
	first, _ := strconv.ParseFloat(rep.Rows[0][2], 64)
	last, _ := strconv.ParseFloat(rep.Rows[len(rep.Rows)-1][2], 64)
	if last <= first {
		t.Errorf("log memory should grow with unit quota: %v -> %v", first, last)
	}
}

func TestFig8aShape(t *testing.T) {
	s := tinyScale()
	s.Ops = 600
	rep, err := Fig8a(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + rep.String())
	var tsueRow, foRow []string
	for _, row := range rep.Rows {
		if row[0] == "tsue" {
			tsueRow = row
		}
		if row[0] == "fo" {
			foRow = row
		}
	}
	// At this tiny scale the per-volume margin can compress into a
	// rounding tie when the host is heavily loaded (e.g. the ~20x
	// slowdown under `go test -race`), so per-volume the assertion is
	// tolerant — TSUE must not *lose* to FO — while the aggregate across
	// all seven volumes must still be a strict win.
	var tsueSum, foSum float64
	for i := 1; i < len(tsueRow); i++ {
		tv, _ := strconv.ParseFloat(tsueRow[i], 64)
		fv, _ := strconv.ParseFloat(foRow[i], 64)
		tsueSum += tv
		foSum += fv
		if tv < fv*0.9 {
			t.Errorf("volume %s: tsue (%v) far below fo (%v) on HDDs", rep.Header[i], tv, fv)
		}
	}
	if tsueSum <= foSum {
		t.Errorf("aggregate: tsue (%.1f) should beat fo (%.1f) across the MSR volumes", tsueSum, foSum)
	}
}

func TestFig8bShape(t *testing.T) {
	s := tinyScale()
	s.Ops = 500
	rep, err := Fig8b(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + rep.String())
	if len(rep.Rows) != len(fig8Methods) {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if w, err := strconv.Atoi(row[1]); err != nil || w < 1 {
			t.Errorf("%s: bad workers column %q", row[0], row[1])
		}
		for i := 2; i < len(row); i++ {
			v, err := strconv.ParseFloat(row[i], 64)
			if err != nil || v <= 0 {
				t.Errorf("%s/%s: bad bandwidth %q", row[0], rep.Header[i], row[i])
			}
		}
	}
}

// TestFig8bWorkerAxis sweeps the new rebuild-parallelism knob on a
// single method: more workers must not make recovery slower (bandwidth
// within model noise or better).
func TestFig8bWorkerAxis(t *testing.T) {
	s := tinyScale()
	s.Ops = 400
	s.Fig8bWorkers = []int{1, 8}
	old := fig8Methods
	fig8Methods = []string{"tsue"}
	defer func() { fig8Methods = old }()
	rep, err := Fig8b(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + rep.String())
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rep.Rows))
	}
	for i := 2; i < len(rep.Header); i++ {
		seq, _ := strconv.ParseFloat(rep.Rows[0][i], 64)
		par, _ := strconv.ParseFloat(rep.Rows[1][i], 64)
		if par < seq*0.9 {
			t.Errorf("volume %s: 8 workers (%v MB/s) well below 1 worker (%v MB/s)", rep.Header[i], par, seq)
		}
	}
}

func TestRecoveryWorkersReduceTime(t *testing.T) {
	s := tinyScale()
	s.Ops = 600
	s.RecoveryWorkers = []int{1, 8}
	rep, err := Recovery(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + rep.String())
	timeAt := func(method string, workers string) float64 {
		v, ok := getCell(rep, func(row []string) bool { return row[0] == method && row[1] == workers }, 5)
		if !ok {
			t.Fatalf("missing row %s/w=%s", method, workers)
		}
		return v
	}
	for _, method := range recoveryMethods {
		seq, par := timeAt(method, "1"), timeAt(method, "8")
		if par > seq {
			t.Errorf("%s: 8 workers (%vms) slower than 1 (%vms)", method, par, seq)
		}
		if seq <= 0 {
			t.Errorf("%s: no recovery time measured", method)
		}
	}
}

func TestRecoveryMultiScrubsClean(t *testing.T) {
	s := tinyScale()
	s.Ops = 600
	rep, err := RecoveryMulti(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + rep.String())
	if len(rep.Rows) != 2 {
		t.Fatalf("expected 2 recovery rounds, got %d", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		blocks, _ := strconv.ParseFloat(row[2], 64)
		if blocks <= 0 {
			t.Errorf("round %s recovered no blocks", row[0])
		}
	}
}

func TestExperimentRegistry(t *testing.T) {
	if len(Experiments) != len(Order) {
		t.Fatalf("registry size %d != order %d", len(Experiments), len(Order))
	}
	for _, id := range Order {
		if Experiments[id] == nil {
			t.Fatalf("experiment %s missing", id)
		}
	}
}

func TestMakeTraceUnknown(t *testing.T) {
	if _, err := makeTrace("nosuch", tinyScale()); err == nil {
		t.Fatal("unknown trace must error")
	}
}
