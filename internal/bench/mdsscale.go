package bench

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"repro/internal/ecfs"
	"repro/internal/mdslog"
	"repro/internal/wire"
)

// mdsShardSweep is the namespace shard-count axis of the mds-scale
// experiment.
var mdsShardSweep = []int{1, 4, 16, 64}

// mdsScaleConfig derives the experiment's sizes from the Scale so the
// smoke test stays cheap while `-scale paper` reaches the 10⁵–10⁶ file
// range the production-scale claim is about.
func mdsScaleConfig(s Scale) (fileCounts []int, lookups int) {
	large := s.Ops * 50
	if large > 1_000_000 {
		large = 1_000_000
	}
	// Keep the size axis a fixed 5x apart even when the cap bites, so
	// the refs_per_node relationship the table demonstrates holds at
	// every -ops value.
	small := large / 5
	lookups = s.Ops * 20
	if lookups > 400_000 {
		lookups = 400_000
	}
	return []int{small, large}, lookups
}

// MDSScale is the metadata-scale extension experiment: it measures
// placement lookup throughput and the StripesOn recovery work-list cost
// against the namespace shard count and the total file count, on a
// standalone MDS (metadata operations are pure in-memory work, so this
// table reports real wall-clock, not the simulated device/network
// clock). The shape to expect: lookup throughput grows with the shard
// count under concurrency, and StripesOn cost tracks the per-node block
// count (files/OSDs), not the namespace size — the incremental reverse
// index versus the seed's full scan.
func MDSScale(ctx context.Context, s Scale) (*Report, error) {
	const (
		osds       = 64
		k, m       = 4, 2
		stripesPer = 1
		loaders    = 8
	)
	fileCounts, lookups := mdsScaleConfig(s)
	rep := &Report{
		ID:    "mds-scale",
		Title: fmt.Sprintf("Extension: MDS namespace sharding (RS(%d,%d), %d OSDs, wall-clock)", k, m, osds),
		Header: []string{
			"shards", "files", "build_ms", "lookups_per_s", "creates_per_s", "stripeson_us", "refs_per_node",
			"snapshot_ms", "reopen_ms",
		},
	}
	ids := make([]wire.NodeID, osds)
	for i := range ids {
		ids[i] = wire.NodeID(i + 1)
	}
	for _, shards := range mdsShardSweep {
		for _, files := range fileCounts {
			md, err := ecfs.NewMDSWithShards(ids, k, m, shards)
			if err != nil {
				return nil, err
			}

			// Build phase: populate the namespace from parallel loaders,
			// the way a restore or ingest would. The created inos are
			// collected for the lookup phase: with per-shard inode
			// ranges they are disjoint per name shard, not dense 1..N.
			buildStart := time.Now()
			inos := make([]uint64, files)
			var wg sync.WaitGroup
			for w := 0; w < loaders; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for f := w; f < files; f += loaders {
						ino, _ := md.Create(fmt.Sprintf("vol%d/f%d", f%997, f))
						inos[f] = ino
						for st := 0; st < stripesPer; st++ {
							md.Lookup(ino, uint32(st))
						}
					}
				}(w)
			}
			wg.Wait()
			buildMS := float64(time.Since(buildStart)) / float64(time.Millisecond)

			// Lookup phase: resolve hot placements from parallel clients.
			lookupStart := time.Now()
			for w := 0; w < loaders; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(w + 1)))
					for i := 0; i < lookups/loaders; i++ {
						ino := inos[rng.Intn(files)]
						md.Lookup(ino, uint32(rng.Intn(stripesPer)))
					}
				}(w)
			}
			wg.Wait()
			lookupSec := time.Since(lookupStart).Seconds()
			lps := float64(lookups) / lookupSec

			// Contended-write phase: parallel Create bursts of fresh
			// names. Creates take the name shard's lock exclusively, so
			// this is where shard-count scaling shows up in the table
			// itself rather than only under `go test -bench -cpu > 1`.
			burst := lookups / 4
			if burst < loaders {
				burst = loaders
			}
			createStart := time.Now()
			for w := 0; w < loaders; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for f := w; f < burst; f += loaders {
						md.Create(fmt.Sprintf("burst%d/f%d", f%997, f)) //nolint:errcheck
					}
				}(w)
			}
			wg.Wait()
			cps := float64(burst) / time.Since(createStart).Seconds()

			// Recovery work-list phase: one StripesOn per node.
			refs := 0
			soStart := time.Now()
			for _, id := range ids {
				refs += len(md.StripesOn(id))
			}
			soUS := float64(time.Since(soStart)) / float64(time.Microsecond) / float64(osds)

			if refs != files*stripesPer*(k+m) {
				return nil, fmt.Errorf("mds-scale: reverse index holds %d refs, want %d", refs, files*stripesPer*(k+m))
			}
			rep.Rows = append(rep.Rows, []string{
				fmt.Sprintf("%d", md.Shards()),
				fmt.Sprintf("%d", files),
				fmt.Sprintf("%.1f", buildMS),
				fmt.Sprintf("%.0f", lps),
				fmt.Sprintf("%.0f", cps),
				fmt.Sprintf("%.1f", soUS),
				fmt.Sprintf("%d", refs/osds),
				"-", "-",
			})
		}
	}

	// Durable rows: the same workload with the namespace op log
	// underneath (log-before-ack on every create and bind), at the
	// default shard count. build_ms and creates_per_s price the log
	// appends; snapshot_ms is one full-namespace checkpoint; reopen_ms
	// is a cold open that replays the entire build+burst log (compaction
	// is deferred so the replay cost is the worst case, not a snapshot
	// load).
	for _, files := range fileCounts {
		row, err := mdsScaleDurable(ids, k, m, files, lookups, stripesPer, loaders)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, row)
	}
	rep.Notes = append(rep.Notes,
		"expected shape: lookups_per_s and creates_per_s grow with shards under concurrent load; stripeson_us tracks refs_per_node (files/OSDs), not the namespace size",
		"wall-clock measurement: MDS operations are pure in-memory metadata work, outside the simulated device/network clock",
		"durable/* rows append every mutation to an op log before acking (batched sync); reopen_ms replays the full uncompacted log, the cold worst case")
	return rep, nil
}

// mdsScaleDurable runs one durable mds-scale row: build and burst
// against a logged namespace, crash it, time the cold reopen (full log
// replay), time a checkpoint, then run the read phases on the reopened
// MDS — the lookups must see exactly the pre-crash placements, enforced
// by the same reverse-index refs check as the in-memory rows.
func mdsScaleDurable(ids []wire.NodeID, k, m, files, lookups, stripesPer, loaders int) ([]string, error) {
	const shards = ecfs.DefaultMDSShards
	osds := len(ids)
	dir, err := os.MkdirTemp("", "mdsscale")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	// Defer compaction past any realistic log size so reopen measures
	// replay, not snapshot load.
	opts := mdslog.Options{SnapshotBytes: 1 << 40}
	md, err := ecfs.OpenDurableMDS(dir, ids, k, m, shards, opts)
	if err != nil {
		return nil, err
	}

	buildStart := time.Now()
	inos := make([]uint64, files)
	var wg sync.WaitGroup
	for w := 0; w < loaders; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for f := w; f < files; f += loaders {
				ino, _ := md.Create(fmt.Sprintf("vol%d/f%d", f%997, f))
				inos[f] = ino
				for st := 0; st < stripesPer; st++ {
					md.Lookup(ino, uint32(st))
				}
			}
		}(w)
	}
	wg.Wait()
	buildMS := float64(time.Since(buildStart)) / float64(time.Millisecond)

	burst := lookups / 4
	if burst < loaders {
		burst = loaders
	}
	createStart := time.Now()
	for w := 0; w < loaders; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for f := w; f < burst; f += loaders {
				md.Create(fmt.Sprintf("burst%d/f%d", f%997, f)) //nolint:errcheck
			}
		}(w)
	}
	wg.Wait()
	cps := float64(burst) / time.Since(createStart).Seconds()

	// kill -9: freeze the log mid-flight and reopen from disk.
	md.Crash()
	if err := md.Log().Close(); err != nil {
		return nil, err
	}
	reopenStart := time.Now()
	md, err = ecfs.OpenDurableMDS(dir, ids, k, m, shards, opts)
	if err != nil {
		return nil, err
	}
	reopenMS := float64(time.Since(reopenStart)) / float64(time.Millisecond)
	defer md.Close()

	snapStart := time.Now()
	if err := md.Checkpoint(); err != nil {
		return nil, err
	}
	snapMS := float64(time.Since(snapStart)) / float64(time.Millisecond)

	lookupStart := time.Now()
	for w := 0; w < loaders; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w + 1)))
			for i := 0; i < lookups/loaders; i++ {
				ino := inos[rng.Intn(files)]
				md.Lookup(ino, uint32(rng.Intn(stripesPer)))
			}
		}(w)
	}
	wg.Wait()
	lps := float64(lookups) / time.Since(lookupStart).Seconds()

	refs := 0
	soStart := time.Now()
	for _, id := range ids {
		refs += len(md.StripesOn(id))
	}
	soUS := float64(time.Since(soStart)) / float64(time.Microsecond) / float64(osds)
	if refs != files*stripesPer*(k+m) {
		return nil, fmt.Errorf("mds-scale: durable reverse index holds %d refs after reopen, want %d", refs, files*stripesPer*(k+m))
	}
	return []string{
		fmt.Sprintf("durable/%d", shards),
		fmt.Sprintf("%d", files),
		fmt.Sprintf("%.1f", buildMS),
		fmt.Sprintf("%.0f", lps),
		fmt.Sprintf("%.0f", cps),
		fmt.Sprintf("%.1f", soUS),
		fmt.Sprintf("%d", refs/osds),
		fmt.Sprintf("%.1f", snapMS),
		fmt.Sprintf("%.1f", reopenMS),
	}, nil
}
