package netsim

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func TestTransferCost(t *testing.T) {
	nw := New(Ethernet25G())
	a, b := nw.AddNIC("a"), nw.AddNIC("b")
	// 3.125 GB/s: 3.125 MB transfers in 1 ms + 25us base.
	cost := nw.Transfer(a, b, 3_125_000)
	want := time.Millisecond + 25*time.Microsecond
	if diff := cost - want; diff < -time.Microsecond || diff > time.Microsecond {
		t.Fatalf("cost = %v, want ~%v", cost, want)
	}
}

func TestTrafficAccounting(t *testing.T) {
	nw := New(Ethernet25G())
	a, b := nw.AddNIC("a"), nw.AddNIC("b")
	nw.Transfer(a, b, 1000)
	nw.Transfer(b, a, 500)
	if nw.TotalTraffic() != 1500 {
		t.Fatalf("traffic = %d, want 1500", nw.TotalTraffic())
	}
	if a.SentBytes() != 1000 || a.ReceivedBytes() != 500 {
		t.Fatalf("a sent/rcvd = %d/%d", a.SentBytes(), a.ReceivedBytes())
	}
	if b.SentBytes() != 500 || b.ReceivedBytes() != 1000 {
		t.Fatalf("b sent/rcvd = %d/%d", b.SentBytes(), b.ReceivedBytes())
	}
}

func TestLoopbackFree(t *testing.T) {
	nw := New(Ethernet25G())
	a := nw.AddNIC("a")
	if cost := nw.Transfer(a, a, 1<<20); cost != 0 {
		t.Fatalf("loopback cost = %v, want 0", cost)
	}
	if nw.TotalTraffic() != 0 {
		t.Fatal("loopback must not count as traffic")
	}
}

func TestBothNICsBusy(t *testing.T) {
	nw := New(Ethernet25G())
	a, b := nw.AddNIC("a"), nw.AddNIC("b")
	nw.Transfer(a, b, 1<<20)
	if a.Resource().Busy() == 0 || a.Resource().Busy() != b.Resource().Busy() {
		t.Fatal("transfer must occupy both endpoints equally")
	}
	// Occupancy excludes propagation: it must be below the returned
	// latency (which includes the base latency).
	nw2 := New(Ethernet25G())
	x, y := nw2.AddNIC("x"), nw2.AddNIC("y")
	lat := nw2.Transfer(x, y, 1<<20)
	if x.Resource().Busy() >= lat {
		t.Fatalf("occupancy %v should be below latency %v", x.Resource().Busy(), lat)
	}
}

func TestInfinibandFaster(t *testing.T) {
	e := New(Ethernet25G())
	i := New(Infiniband40G())
	ea, eb := e.AddNIC("a"), e.AddNIC("b")
	ia, ib := i.AddNIC("a"), i.AddNIC("b")
	if i.Transfer(ia, ib, 1<<20) >= e.Transfer(ea, eb, 1<<20) {
		t.Fatal("40G InfiniBand should beat 25G Ethernet")
	}
}

func TestReset(t *testing.T) {
	nw := New(Ethernet25G())
	a, b := nw.AddNIC("a"), nw.AddNIC("b")
	nw.Transfer(a, b, 1000)
	nw.Reset()
	if nw.TotalTraffic() != 0 || a.SentBytes() != 0 || b.Resource().Busy() != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestResources(t *testing.T) {
	nw := New(Ethernet25G())
	nw.AddNIC("a")
	nw.AddNIC("b")
	if len(nw.Resources()) != 2 || len(nw.NICs()) != 2 {
		t.Fatal("resource list wrong")
	}
}

func TestNegativeSizePanics(t *testing.T) {
	nw := New(Ethernet25G())
	a, b := nw.AddNIC("a"), nw.AddNIC("b")
	defer func() {
		if recover() == nil {
			t.Fatal("negative size must panic")
		}
	}()
	nw.Transfer(a, b, -5)
}

func TestTransferClassSplitsAccounting(t *testing.T) {
	nw := New(Ethernet25G())
	a, b := nw.AddNIC("a"), nw.AddNIC("b")
	nw.TransferClass(a, b, 1000, sim.ClassRebuild)
	nw.TransferClass(a, b, 500, sim.ClassForegroundRead)
	nw.Transfer(a, b, 250) // untagged → ClassOther
	if got := nw.TotalTraffic(); got != 1750 {
		t.Fatalf("total traffic = %d", got)
	}
	if got := nw.TrafficByClass(sim.ClassRebuild); got != 1000 {
		t.Fatalf("rebuild traffic = %d", got)
	}
	if got := nw.TrafficByClass(sim.ClassForegroundRead); got != 500 {
		t.Fatalf("fg-read traffic = %d", got)
	}
	if got := nw.TrafficByClass(sim.ClassOther); got != 250 {
		t.Fatalf("other traffic = %d", got)
	}
	if got := a.SentBytesClass(sim.ClassRebuild); got != 1000 {
		t.Fatalf("NIC rebuild bytes = %d", got)
	}
	// Busy splits per class on both endpoints; classes sum to the total.
	if a.Resource().BusyClass(sim.ClassRebuild) == 0 || b.Resource().BusyClass(sim.ClassRebuild) == 0 {
		t.Fatal("rebuild busy not charged to both NICs")
	}
	var sum int64
	for c := sim.Class(0); c < sim.NumClasses; c++ {
		sum += nw.TrafficByClass(c)
	}
	if sum != nw.TotalTraffic() {
		t.Fatalf("class traffic sum %d != total %d", sum, nw.TotalTraffic())
	}
	nw.Reset()
	if nw.TrafficByClass(sim.ClassRebuild) != 0 || a.SentBytesClass(sim.ClassRebuild) != 0 {
		t.Fatal("Reset left per-class counters")
	}
}
