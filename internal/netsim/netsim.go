// Package netsim models the cluster interconnect: per-node NICs with
// finite bandwidth and per-message latency, plus cluster-wide traffic
// accounting (the NETWORK TRAFFIC column of the paper's Table 1).
//
// Like internal/device, netsim does not move bytes — transport delivers
// real messages in-process or over TCP — it prices them: a message of S
// bytes costs baseLatency + S/bandwidth, charged to both the sender's and
// the receiver's NIC resource, and S is added once to the cluster traffic
// counter.
package netsim

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sim"
)

// Profile describes a network class.
type Profile struct {
	Bandwidth   float64       // bytes/second per NIC
	BaseLatency time.Duration // per-message one-way latency
}

// Ethernet25G matches the paper's SSD testbed: 25 Gb/s Ethernet with
// tens-of-microseconds one-way latency.
func Ethernet25G() Profile {
	return Profile{Bandwidth: 25e9 / 8, BaseLatency: 25 * time.Microsecond}
}

// Infiniband40G matches the HDD testbed (§5.4): 40 Gb/s InfiniBand.
func Infiniband40G() Profile {
	return Profile{Bandwidth: 40e9 / 8, BaseLatency: 5 * time.Microsecond}
}

// NIC is one node's network interface.
type NIC struct {
	name      string
	prof      Profile
	res       *sim.Resource
	sent      atomic.Int64
	rcvd      atomic.Int64
	sentClass [sim.NumClasses]atomic.Int64
}

// Resource exposes the NIC's busy-time accounting.
func (n *NIC) Resource() *sim.Resource { return n.res }

// Name returns the NIC name.
func (n *NIC) Name() string { return n.name }

// SentBytes returns the bytes sent from this NIC.
func (n *NIC) SentBytes() int64 { return n.sent.Load() }

// ReceivedBytes returns the bytes received by this NIC.
func (n *NIC) ReceivedBytes() int64 { return n.rcvd.Load() }

// SentBytesClass returns the bytes sent from this NIC under one traffic
// class.
func (n *NIC) SentBytesClass(c sim.Class) int64 {
	if c >= sim.NumClasses {
		return 0
	}
	return n.sentClass[c].Load()
}

// Network groups the NICs of a cluster and tracks total traffic, both
// in aggregate and split per traffic class. NIC registration is safe
// against concurrent readers: clients are provisioned lazily on their
// first call, which can race a repair engine snapshotting Resources.
type Network struct {
	prof         Profile
	mu           sync.RWMutex
	nics         []*NIC
	traffic      atomic.Int64
	trafficClass [sim.NumClasses]atomic.Int64
}

// New creates a network with the given profile.
func New(p Profile) *Network {
	if p.Bandwidth <= 0 {
		panic("netsim: non-positive bandwidth")
	}
	return &Network{prof: p}
}

// AddNIC registers and returns a NIC for a node.
func (nw *Network) AddNIC(name string) *NIC {
	n := &NIC{name: name, prof: nw.prof, res: sim.NewResource(fmt.Sprintf("nic/%s", name))}
	nw.mu.Lock()
	nw.nics = append(nw.nics, n)
	nw.mu.Unlock()
	return n
}

// NICs returns a snapshot of the registered NICs.
func (nw *Network) NICs() []*NIC {
	nw.mu.RLock()
	defer nw.mu.RUnlock()
	return append([]*NIC(nil), nw.nics...)
}

// TotalTraffic returns the bytes transferred across the network.
func (nw *Network) TotalTraffic() int64 { return nw.traffic.Load() }

// TrafficByClass returns the bytes transferred across the network under
// one traffic class. The per-class counters always sum to TotalTraffic.
func (nw *Network) TrafficByClass(c sim.Class) int64 {
	if c >= sim.NumClasses {
		return 0
	}
	return nw.trafficClass[c].Load()
}

// Reset clears traffic (all classes) and all NIC accounting.
func (nw *Network) Reset() {
	nw.traffic.Store(0)
	for i := range nw.trafficClass {
		nw.trafficClass[i].Store(0)
	}
	for _, n := range nw.NICs() {
		n.res.Reset()
		n.sent.Store(0)
		n.rcvd.Store(0)
		for i := range n.sentClass {
			n.sentClass[i].Store(0)
		}
	}
}

// perMessageCPU is the NIC/stack occupancy per message beyond the wire
// transfer itself (interrupt + protocol processing).
const perMessageCPU = 2 * time.Microsecond

// Transfer prices a message of size bytes from src to dst under
// sim.ClassOther and returns its one-way latency. See TransferClass.
func (nw *Network) Transfer(src, dst *NIC, size int64) time.Duration {
	return nw.TransferClass(src, dst, size, sim.ClassOther)
}

// TransferClass prices a message of size bytes from src to dst under a
// traffic class and returns its one-way latency. The propagation/base
// latency contributes to latency only; NIC *occupancy* is the
// serialization time plus a small per-message processing cost, so
// pipelined messages overlap like they do on a real link. Loopback
// (src == dst) is free and uncounted, matching how the paper accounts
// only inter-node traffic. The class splits both the NIC busy time and
// the sender/cluster byte counters, which is what lets the repair bench
// report rebuild and foreground bandwidth separately over one shared
// network.
func (nw *Network) TransferClass(src, dst *NIC, size int64, class sim.Class) time.Duration {
	if size < 0 {
		panic("netsim: negative transfer size")
	}
	if class >= sim.NumClasses {
		class = sim.ClassOther
	}
	if src == dst {
		return 0
	}
	wire := time.Duration(float64(size) / nw.prof.Bandwidth * float64(time.Second))
	busy := wire + perMessageCPU
	src.res.ChargeClass(class, busy)
	dst.res.ChargeClass(class, busy)
	src.sent.Add(size)
	src.sentClass[class].Add(size)
	dst.rcvd.Add(size)
	nw.traffic.Add(size)
	nw.trafficClass[class].Add(size)
	return nw.prof.BaseLatency + wire
}

// Resources returns the sim.Resources of every NIC at this instant, for
// bottleneck search.
func (nw *Network) Resources() []*sim.Resource {
	nw.mu.RLock()
	defer nw.mu.RUnlock()
	out := make([]*sim.Resource, len(nw.nics))
	for i, n := range nw.nics {
		out[i] = n.res
	}
	return out
}
