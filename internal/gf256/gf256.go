// Package gf256 implements arithmetic over the Galois field GF(2^8).
//
// The field is constructed modulo the primitive polynomial
// x^8 + x^4 + x^3 + x^2 + 1 (0x11d), the same polynomial used by most
// Reed-Solomon storage codes. Addition and subtraction are XOR;
// multiplication and division are performed with precomputed log/exp
// tables so the hot slice kernels used by the erasure coder stay
// allocation-free.
package gf256

// polynomial is the primitive polynomial generating the field.
const polynomial = 0x11d

var (
	expTable [512]byte // expTable[i] = alpha^i, doubled to avoid mod 255 in Mul
	logTable [256]byte // logTable[x] = i such that alpha^i = x (x != 0)
	// mulTable[a][b] = a*b. 64KiB; built once at init and shared by the
	// slice kernels, which profile faster with a flat lookup than with
	// log/exp on short operands.
	mulTable [256][256]byte
	invTable [256]byte
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		expTable[i] = byte(x)
		logTable[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= polynomial
		}
	}
	for i := 255; i < 512; i++ {
		expTable[i] = expTable[i-255]
	}
	for a := 1; a < 256; a++ {
		la := int(logTable[a])
		for b := 1; b < 256; b++ {
			mulTable[a][b] = expTable[la+int(logTable[b])]
		}
		invTable[a] = expTable[255-la]
	}
}

// Add returns a+b in GF(2^8). Addition and subtraction coincide.
func Add(a, b byte) byte { return a ^ b }

// Mul returns a*b in GF(2^8).
func Mul(a, b byte) byte { return mulTable[a][b] }

// Div returns a/b in GF(2^8). It panics if b == 0.
func Div(a, b byte) byte {
	if b == 0 {
		panic("gf256: division by zero")
	}
	if a == 0 {
		return 0
	}
	return expTable[int(logTable[a])+255-int(logTable[b])]
}

// Inv returns the multiplicative inverse of a. It panics if a == 0.
func Inv(a byte) byte {
	if a == 0 {
		panic("gf256: inverse of zero")
	}
	return invTable[a]
}

// Exp returns alpha^n for the field generator alpha = 0x02.
func Exp(n int) byte {
	n %= 255
	if n < 0 {
		n += 255
	}
	return expTable[n]
}

// Pow returns a raised to the power n.
func Pow(a byte, n int) byte {
	if n == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	return Exp(int(logTable[a]) * n % 255)
}

// MulSlice sets dst[i] = c * src[i]. dst and src must have equal length;
// they may alias. A zero coefficient clears dst.
func MulSlice(c byte, dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf256: MulSlice length mismatch")
	}
	if c == 0 {
		clear(dst)
		return
	}
	if c == 1 {
		copy(dst, src)
		return
	}
	mt := &mulTable[c]
	for i, s := range src {
		dst[i] = mt[s]
	}
}

// MulAddSlice sets dst[i] ^= c * src[i] — the fundamental operation of
// both Reed-Solomon encoding and incremental parity-delta application
// (Equation 2 of the TSUE paper). dst and src must have equal length.
func MulAddSlice(c byte, dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf256: MulAddSlice length mismatch")
	}
	if c == 0 {
		return
	}
	if c == 1 {
		XorSlice(dst, src)
		return
	}
	mt := &mulTable[c]
	for i, s := range src {
		dst[i] ^= mt[s]
	}
}

// XorSlice sets dst[i] ^= src[i]. The slices must have equal length.
func XorSlice(dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf256: XorSlice length mismatch")
	}
	// The compiler vectorizes this loop; a hand-rolled uint64 walk is not
	// measurably faster on amd64 for the block sizes ECFS uses.
	for i, s := range src {
		dst[i] ^= s
	}
}
