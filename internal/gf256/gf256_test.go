package gf256

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddIsXor(t *testing.T) {
	if Add(0x53, 0xCA) != 0x53^0xCA {
		t.Fatal("Add must be XOR")
	}
	if Add(7, 7) != 0 {
		t.Fatal("x+x must be 0")
	}
}

func TestMulIdentity(t *testing.T) {
	for a := 0; a < 256; a++ {
		if got := Mul(byte(a), 1); got != byte(a) {
			t.Fatalf("a*1 = %d, want %d", got, a)
		}
		if got := Mul(byte(a), 0); got != 0 {
			t.Fatalf("a*0 = %d, want 0", got)
		}
	}
}

func TestMulKnownValues(t *testing.T) {
	// Hand-computed products in GF(2^8)/0x11d.
	cases := []struct{ a, b, want byte }{
		{2, 2, 4},
		{0x80, 2, 0x1d}, // wraps through the polynomial
		{0x53, 2, 0xa6},
		{3, 7, 9},
	}
	for _, c := range cases {
		if got := Mul(c.a, c.b); got != c.want {
			t.Errorf("Mul(%#x,%#x) = %#x, want %#x", c.a, c.b, got, c.want)
		}
	}
}

func TestMulCommutative(t *testing.T) {
	f := func(a, b byte) bool { return Mul(a, b) == Mul(b, a) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulAssociative(t *testing.T) {
	f := func(a, b, c byte) bool { return Mul(Mul(a, b), c) == Mul(a, Mul(b, c)) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistributive(t *testing.T) {
	f := func(a, b, c byte) bool { return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c)) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDivInvertsMul(t *testing.T) {
	f := func(a, b byte) bool {
		if b == 0 {
			return true
		}
		return Div(Mul(a, b), b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInv(t *testing.T) {
	for a := 1; a < 256; a++ {
		if got := Mul(byte(a), Inv(byte(a))); got != 1 {
			t.Fatalf("a * a^-1 = %d for a=%d, want 1", got, a)
		}
	}
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) must panic")
		}
	}()
	Inv(0)
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Div(x,0) must panic")
		}
	}()
	Div(5, 0)
}

func TestExpPeriodic(t *testing.T) {
	for n := 0; n < 10; n++ {
		if Exp(n) != Exp(n+255) {
			t.Fatalf("Exp not periodic at %d", n)
		}
	}
	if Exp(-1) != Exp(254) {
		t.Fatal("Exp must handle negative exponents")
	}
}

func TestPow(t *testing.T) {
	for a := 0; a < 256; a++ {
		want := byte(1)
		for n := 0; n < 8; n++ {
			if got := Pow(byte(a), n); got != want {
				t.Fatalf("Pow(%d,%d) = %d, want %d", a, n, got, want)
			}
			want = Mul(want, byte(a))
		}
	}
}

func TestMulSlice(t *testing.T) {
	src := []byte{0, 1, 2, 3, 0xff, 0x80}
	dst := make([]byte, len(src))
	MulSlice(3, dst, src)
	for i := range src {
		if dst[i] != Mul(3, src[i]) {
			t.Fatalf("MulSlice mismatch at %d", i)
		}
	}
	MulSlice(0, dst, src)
	if !bytes.Equal(dst, make([]byte, len(src))) {
		t.Fatal("MulSlice with c=0 must clear dst")
	}
	MulSlice(1, dst, src)
	if !bytes.Equal(dst, src) {
		t.Fatal("MulSlice with c=1 must copy")
	}
}

func TestMulAddSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src := make([]byte, 1024)
	dst := make([]byte, 1024)
	ref := make([]byte, 1024)
	rng.Read(src)
	rng.Read(dst)
	copy(ref, dst)
	MulAddSlice(0x57, dst, src)
	for i := range ref {
		ref[i] ^= Mul(0x57, src[i])
	}
	if !bytes.Equal(dst, ref) {
		t.Fatal("MulAddSlice disagrees with scalar reference")
	}
	// c=0 is a no-op.
	copy(ref, dst)
	MulAddSlice(0, dst, src)
	if !bytes.Equal(dst, ref) {
		t.Fatal("MulAddSlice with c=0 must be a no-op")
	}
}

func TestMulAddSliceSelfInverse(t *testing.T) {
	// Applying the same delta twice must restore dst (characteristic 2).
	f := func(c byte, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		dst := make([]byte, len(data))
		orig := make([]byte, len(data))
		copy(dst, data)
		copy(orig, data)
		src := make([]byte, len(data))
		for i := range src {
			src[i] = byte(i*7 + 13)
		}
		MulAddSlice(c, dst, src)
		MulAddSlice(c, dst, src)
		return bytes.Equal(dst, orig)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestXorSlice(t *testing.T) {
	a := []byte{1, 2, 3}
	b := []byte{4, 5, 6}
	XorSlice(a, b)
	if a[0] != 5 || a[1] != 7 || a[2] != 5 {
		t.Fatalf("XorSlice wrong: %v", a)
	}
}

func TestSliceLengthMismatchPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"MulSlice":    func() { MulSlice(2, make([]byte, 3), make([]byte, 4)) },
		"MulAddSlice": func() { MulAddSlice(2, make([]byte, 3), make([]byte, 4)) },
		"XorSlice":    func() { XorSlice(make([]byte, 3), make([]byte, 4)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s must panic on length mismatch", name)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkMulAddSlice64K(b *testing.B) {
	src := make([]byte, 64<<10)
	dst := make([]byte, 64<<10)
	rand.New(rand.NewSource(2)).Read(src)
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulAddSlice(0x9a, dst, src)
	}
}

func BenchmarkXorSlice64K(b *testing.B) {
	src := make([]byte, 64<<10)
	dst := make([]byte, 64<<10)
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		XorSlice(dst, src)
	}
}
