// The repair subsystem: a prioritized queue of pending stripe
// migrations shared by failure recovery (RepairNode) and planned
// drain/decommission (MigrateNode).
//
// Both engines seed the queue with a node's stripes in deterministic
// FIFO order and let a worker pool consume it. While a repair runs, the
// queue is registered with the MDS: a client whose degraded read just
// paid the K-fetch decode price sends a wire.KRepairHint, and the named
// stripe jumps to the front of the queue (read-through repair — hot
// stripes repair first). Every stripe is rebound at the MDS under a
// bumped placement epoch *as soon as it completes*, so clients cut over
// stripe by stripe: a repeated read of an already-repaired stripe is
// rejected with wire.StatusStaleEpoch (or fails to reach the retired
// holder), re-resolves, and becomes a normal read of the new holder —
// no K-way decode, no end-of-recovery barrier.
package ecfs

import (
	"bytes"
	"container/heap"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/erasure"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/update"
	"repro/internal/wire"
)

// repairItem is one pending stripe repair.
type repairItem struct {
	ref  StripeRef
	seed int   // position in the deterministic seed order (= FIFO rank and result slot)
	prio int64 // promotion stamp; 0 = never promoted, higher = promoted more recently
	pos  int   // heap index
}

// repairQueue is the priority queue at the heart of the repair
// subsystem. Items seed in FIFO order; promote moves a still-pending
// stripe to the front (the most recent promotion wins ties). pop hands
// out work in priority order and stamps each item with its execution
// order, so results can prove how promotion reordered the rebuild.
// While its run is active the queue is registered with the cluster's
// RepairScheduler, which routes hint promotions to it and admits its
// workers against the rebuild-bandwidth budget.
type repairQueue struct {
	// noPromote freezes the queue in FIFO order: the scheduler skips it
	// when routing wire.KRepairHint promotions (the benchmark baseline).
	noPromote bool

	mu       sync.Mutex
	items    repairHeap
	byKey    map[stripeKey]*repairItem
	promoSeq int64
	popped   int
	promoted int
}

type repairHeap []*repairItem

func (h repairHeap) Len() int { return len(h) }
func (h repairHeap) Less(i, j int) bool {
	if h[i].prio != h[j].prio {
		return h[i].prio > h[j].prio // promoted first, most recent promotion foremost
	}
	return h[i].seed < h[j].seed // FIFO otherwise
}
func (h repairHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].pos, h[j].pos = i, j
}
func (h *repairHeap) Push(x any) {
	it := x.(*repairItem)
	it.pos = len(*h)
	*h = append(*h, it)
}
func (h *repairHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// newRepairQueue seeds a queue with refs in their given (deterministic)
// order.
func newRepairQueue(refs []StripeRef) *repairQueue {
	q := &repairQueue{byKey: make(map[stripeKey]*repairItem, len(refs))}
	q.items = make(repairHeap, 0, len(refs))
	for i, ref := range refs {
		it := &repairItem{ref: ref, seed: i, pos: i}
		q.items = append(q.items, it)
		q.byKey[stripeKey{ref.Ino, ref.Stripe}] = it
	}
	// Seed order already satisfies the heap property (prio 0, seed
	// ascending), but initialize defensively.
	heap.Init(&q.items)
	return q
}

// pop removes the highest-priority pending stripe. order is the
// execution rank (0-based pop sequence).
func (q *repairQueue) pop() (ref StripeRef, seed, order int, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) == 0 {
		return StripeRef{}, 0, 0, false
	}
	it := heap.Pop(&q.items).(*repairItem)
	delete(q.byKey, stripeKey{it.ref.Ino, it.ref.Stripe})
	order = q.popped
	q.popped++
	return it.ref, it.seed, order, true
}

// promote moves a still-pending stripe to the front of the queue and
// reports whether it was pending at all (a hint for a stripe already
// repaired or in flight is a no-op).
func (q *repairQueue) promote(ino uint64, stripe uint32) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	it, ok := q.byKey[stripeKey{ino, stripe}]
	if !ok {
		return false
	}
	q.promoSeq++
	it.prio = q.promoSeq
	heap.Fix(&q.items, it.pos)
	q.promoted++
	return true
}

func (q *repairQueue) pending() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

func (q *repairQueue) promotions() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.promoted
}

// RepairOptions parameterize the deployment-agnostic repair engines.
// Cluster.Recover and Cluster.Drain fill them from the in-process
// cluster; a real deployment (see the TCP harness tests) supplies its
// own MDS handle, RPC caller, and drain hook.
type RepairOptions struct {
	K, M    int
	Workers int // <= 0 selects DefaultRecoveryWorkers
	// DataLogReplicas is the number of replica-log copies the update
	// strategy keeps (replica replay fan-out); <= 0 selects 1.
	DataLogReplicas int
	// Down snapshots the failed node set; fetches skip these holders and
	// epoch broadcasts omit them.
	Down map[wire.NodeID]bool
	// Resources, when non-nil, feed the virtual-time makespan model
	// (DrainTime/VirtualTime/Bandwidth). A real deployment leaves it nil
	// and gets wall-free aggregate accounting only.
	Resources []*sim.Resource
	// Flush drains strategy logs cluster-wide — the §2.3.2 consistency
	// requirement — before stripes move and after replica replay. nil
	// skips (the caller has already quiesced the logs).
	Flush func(ctx context.Context) error
	// NoPromote disables degraded-read promotion, turning the queue into
	// a strict FIFO — the baseline the repair benchmark compares against.
	NoPromote bool
	// MaxRebuildMBps caps this run's rebuild traffic (decimal MB per
	// virtual second of foreground time; see RepairScheduler). 0 defers
	// to the cluster-level cap configured on the scheduler
	// (Options.MaxRebuildMBps), which may itself be 0 — uncapped.
	MaxRebuildMBps float64
}

func (o *RepairOptions) sanitize() {
	if o.Workers <= 0 {
		o.Workers = DefaultRecoveryWorkers
	}
	if o.DataLogReplicas <= 0 {
		o.DataLogReplicas = 1
	}
}

// runRepairWorkers drains the queue with o.Workers concurrent workers,
// registering it with the cluster's RepairScheduler for hint promotion
// (unless o.NoPromote) and bandwidth admission. work is called once per
// popped stripe with its seed slot and execution order and returns the
// priced bytes the stripe moved, which are charged against the rebuild
// budget; the first error aborts (remaining items are discarded, not
// executed). Cancellation is honored between stripes — the scheduler's
// admission gate returns ctx.Err() — so a cancelled repair or drain
// stops cleanly at a stripe boundary (completed stripes stay rebound;
// pending ones keep their old placement).
func runRepairWorkers(ctx context.Context, mds *MDS, o RepairOptions, q *repairQueue, work func(ref StripeRef, seed, order int) (int64, error)) error {
	q.noPromote = o.NoPromote
	sched := mds.Scheduler()
	sched.register(q)
	defer sched.unregister(q)
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		errMu.Lock()
		// First error wins, except that a stranded cutover must not be
		// shadowed by a concurrent worker's cancellation: the caller
		// classifies the run's fate (resumable vs hard abort) from the
		// reported error, and a stranded stripe makes it a hard abort
		// no matter who failed first.
		if firstErr == nil ||
			(errors.Is(err, ErrStrandedCutover) && !errors.Is(firstErr, ErrStrandedCutover)) {
			firstErr = err
		}
		errMu.Unlock()
	}
	for w := 0; w < o.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				errMu.Lock()
				failed := firstErr != nil
				errMu.Unlock()
				if failed {
					// Drain the queue without doing (or admitting) work.
					if _, _, _, ok := q.pop(); !ok {
						return
					}
					continue
				}
				// Fast path: once the queue is empty it stays empty
				// (promotions only reorder), so don't run a possibly
				// throttled admission for a stripe that cannot exist.
				if q.pending() == 0 {
					return
				}
				// Admission precedes the pop so a promotion arriving
				// while this worker is throttled can still reorder the
				// stripe it is about to take.
				if err := sched.admit(ctx, q, o.MaxRebuildMBps); err != nil {
					fail(err)
					continue
				}
				ref, seed, order, ok := q.pop()
				if !ok {
					return
				}
				bytes, err := work(ref, seed, order)
				sched.charge(bytes)
				if err != nil {
					fail(err)
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// maintenanceClasses are the traffic classes whose busy time bounds a
// repair/drain makespan: the engines' own tagged traffic plus untagged
// work (device charges, log drains, control). Foreground classes are
// deliberately excluded — concurrent reader/writer traffic on shared
// resources must not inflate the modeled rebuild window, which is what
// lets the repair benchmark report a clean repair bandwidth under load.
var maintenanceClasses = []sim.Class{sim.ClassRebuild, sim.ClassDrain, sim.ClassScrub, sim.ClassOther}

// repairWindow models the pipelined repair-window makespan shared by
// recovery and drain: workers stripes proceed in parallel, so the
// duration is the summed per-stripe cost divided by the worker count,
// plus whatever virtual idle the bandwidth cap injected (throttle) —
// but never less than the additional maintenance-class busy time of the
// bottleneck resource, which parallelism cannot compress. since must be
// a sim.SnapshotBusyClasses(resources, maintenanceClasses...) snapshot.
func repairWindow(stripeTime time.Duration, workers int, resources []*sim.Resource, since []time.Duration, throttle time.Duration) time.Duration {
	w := stripeTime/time.Duration(workers) + throttle
	if b := sim.MaxBusyDeltaClasses(resources, since, maintenanceClasses...); b > w {
		w = b
	}
	return w
}

// RepairNode rebuilds a failed node's blocks onto the replacement OSD
// using the MDS and RPC caller of any deployment — the engine
// Cluster.Recover wraps for the in-process cluster and the TCP harness
// drives over real sockets. The replacement must be reachable in
// process (its store is written directly and it learns epochs first);
// everything else — shard fetches, replica replay, epoch broadcasts —
// travels through caller. See Cluster.Recover for the full semantics.
func RepairNode(ctx context.Context, mds *MDS, caller transport.RPC, code *erasure.Code, o RepairOptions, failed wire.NodeID, repl *OSD) (*RecoveryResult, error) {
	o.sanitize()
	sched := mds.Scheduler()
	if o.MaxRebuildMBps > 0 {
		// A per-run cap starts metering now, not from the scheduler's
		// historical budget base.
		sched.RebaseBudget()
	}
	throttleBase := sched.Throttled()
	spentBase := sched.TotalSpentBytes()
	start := sim.SnapshotBusyClasses(o.Resources, maintenanceClasses...)
	if o.Flush != nil {
		if err := o.Flush(ctx); err != nil {
			return nil, fmt.Errorf("ecfs: pre-recovery drain: %w", err)
		}
	}
	drained := sim.SnapshotBusyClasses(o.Resources, maintenanceClasses...)

	rebind := repl.id != failed
	if rebind {
		// Permanent replacement under a fresh id: the victim must not
		// receive new placements while its stripes are rebound.
		mds.RemoveNode(failed)
	}
	refs := mds.StripesOnSorted(failed)
	if o.Workers > len(refs) && len(refs) > 0 {
		o.Workers = len(refs)
	}
	r := &recoverer{
		ctx:      ctx,
		mds:      mds,
		caller:   caller,
		code:     code,
		k:        o.K,
		m:        o.M,
		replicas: o.DataLogReplicas,
		failed:   failed,
		repl:     repl,
		down:     o.Down,
		rebind:   rebind,
	}
	res := &RecoveryResult{
		Workers:   o.Workers,
		DrainTime: sim.MaxBusyDeltaClasses(o.Resources, start, maintenanceClasses...),
		Stripes:   make([]StripeRecovery, len(refs)),
	}

	q := newRepairQueue(refs)
	err := runRepairWorkers(ctx, mds, o, q, func(ref StripeRef, seed, order int) (int64, error) {
		sr, err := r.rebuildStripe(ref)
		sr.Order = order
		res.Stripes[seed] = sr
		return int64(sr.Bytes), err
	})
	if err != nil {
		return nil, err
	}
	res.Promoted = q.promotions()

	var lossErr *DataLossError
	for _, sr := range res.Stripes {
		res.StripeTime += sr.Time()
		res.FetchErrors += sr.Unreachable
		if sr.Rebound {
			res.Rebound++
		}
		if sr.Lost {
			res.Lost++
			if lossErr == nil {
				lossErr = &DataLossError{
					Ino: sr.Ino, Stripe: sr.Stripe,
					Need:        o.K,
					Have:        sr.Obtained,
					Unreachable: sr.Unreachable,
					NotFound:    sr.NotFound,
				}
			}
			continue
		}
		if sr.Skipped {
			res.Skipped++
			continue
		}
		res.Blocks++
		res.Bytes += int64(sr.Bytes)
		res.ReplayedBytes += sr.Replayed
	}
	if lossErr != nil {
		lossErr.Stripes = res.Lost
	}

	// Replica replay appends parity deltas to surviving parity logs;
	// drain them so parity is fully consistent before service resumes.
	if res.ReplayedBytes > 0 && o.Flush != nil {
		if err := o.Flush(ctx); err != nil {
			return nil, fmt.Errorf("ecfs: post-replay drain: %w", err)
		}
	}

	res.VirtualTime = res.DrainTime + repairWindow(res.StripeTime, o.Workers, o.Resources, drained, sched.Throttled()-throttleBase)
	// A capped run can never report bandwidth above its cap: the budget
	// bytes this run consumed floor the modeled makespan regardless of
	// worker interleaving.
	if floor := res.DrainTime + sched.capFloor(o.MaxRebuildMBps, sched.TotalSpentBytes()-spentBase); res.VirtualTime < floor {
		res.VirtualTime = floor
	}
	if res.VirtualTime > 0 {
		res.Bandwidth = float64(res.Bytes) / res.VirtualTime.Seconds()
	}
	if lossErr != nil {
		return res, lossErr
	}
	return res, nil
}

// StripeMove records the migration of one block during a drain.
type StripeMove struct {
	Ino    uint64
	Stripe uint32
	Idx    uint8
	To     wire.NodeID // destination chosen from the survivor pool
	Bytes  int
	// Skipped marks a placed-but-never-written slot: the placement is
	// rebound but there is no data to copy.
	Skipped bool
	// Refreshed marks a stripe whose post-fence refetch observed content
	// newer than the first copy — a client update raced the cutover and
	// was carried over.
	Refreshed bool
	// Done marks a fully completed migration (copied, cut over, fenced,
	// refetched). A cancelled drain's result contains only Done moves;
	// a stripe interrupted mid-migration is re-seeded by the resuming
	// drain.
	Done bool
	Cost time.Duration // synchronous fetch/store/fence RPC cost
}

// DrainResult summarizes a planned migration off a live node.
type DrainResult struct {
	Node wire.NodeID
	// Resumed marks a run that picked up a previously cancelled drain:
	// its queue was re-seeded from the stripes still on the node, and
	// pool membership was left exactly as the first run set it.
	Resumed   bool
	Moved     int // blocks copied onto survivor-pool nodes
	Skipped   int // placed-but-never-written slots rebound without data
	Refreshed int // racing updates caught by the post-fence refetch
	Rebound   int // placements rewritten under a bumped epoch (= Moved+Skipped)
	Promoted  int // read-through hints that reordered the queue
	Bytes     int64
	Workers   int
	DrainTime time.Duration // pre-migration log drain (virtual time)
	// StripeTime sums per-stripe migration costs; VirtualTime is the
	// modeled makespan (drain + pipelined migration window, bounded by
	// the busiest resource) and Bandwidth the byte rate over it.
	StripeTime  time.Duration
	VirtualTime time.Duration
	Bandwidth   float64
	Moves       []StripeMove // deterministic (Ino, Stripe, Idx) order
}

// MigrateNode moves every stripe off a *live* node onto the survivor
// pool under per-stripe epoch bumps — the engine behind Cluster.Drain
// and Cluster.Decommission. Unlike RepairNode it never decodes: each
// block is fetched from the draining node itself (read-through its
// pending logs), stored on a destination chosen from the pool, and only
// then cut over:
//
//  1. read-through fetch from the source (content including pending
//     data-log updates);
//  2. store on the destination — the new holder has the data before any
//     client can be routed to it;
//  3. rebind at the MDS under a bumped epoch;
//  4. fence: the source synchronously learns the new epoch and starts
//     rejecting stale client writes/updates/reads for the stripe
//     (wire.StatusStaleEpoch), pushing clients to re-resolve;
//  5. refetch from the source; if an update raced in between the first
//     copy and the fence, the fresher content is stored again;
//  6. broadcast the epoch to the remaining members and the destination
//     so asynchronous delta routing follows the move.
//
// Client operations therefore keep succeeding throughout: reads either
// reach the source pre-fence or re-resolve to the destination (falling
// back to a degraded decode only in the copy window, which also
// promotes the stripe); updates rejected by the fence re-resolve and
// land on the destination, whose base block is already present.
//
// Drains are resumable. A run that ends on a cancelled context returns
// the partial DrainResult (completed moves only) *alongside* ctx's
// error, keeps the node marked draining at the MDS, and leaves it out
// of the placement pool — no evicted-then-restored flap. A second
// MigrateNode (or Cluster.DrainWith) on the same node re-seeds its
// queue from the stripes still placed there, so nothing already cut
// over migrates twice; a stripe interrupted mid-migration before its
// rebind is simply migrated again (the copy is idempotent), while one
// past its rebind finishes its fence and refetch under a detached
// context before the cancellation is honored — cancellation never
// leaves a stripe rebound but unfenced, where the resume could not
// find it. If those detached steps themselves fail (a node fault, or
// the drainStripeBudget backstop expiring against a hung source), the
// drain hard-aborts with ErrStrandedCutover naming the affected block,
// returned alongside the partial result — never as a resumable cancel,
// since no resume can revisit a stripe already off the node. A second
// MigrateNode on a node whose drain is still *running* is rejected
// (see MDS.BeginDrain); only an interrupted drain resumes. Only a
// non-cancellation failure aborts the drain outright, restoring pool
// membership (the node is still live, serving, and hosting its
// unmigrated stripes); an operator who cancels and then changes course
// calls Cluster.AbortDrain for the same effect.
func MigrateNode(ctx context.Context, mds *MDS, caller transport.RPC, o RepairOptions, node wire.NodeID) (*DrainResult, error) {
	o.sanitize()
	if o.Down[node] {
		return nil, fmt.Errorf("ecfs: drain: node %d is down (use Recover for failed nodes)", node)
	}
	live := 0
	for _, id := range mds.Nodes() {
		if id == node {
			continue
		}
		if !o.Down[id] {
			live++
		}
	}
	if live < o.K+o.M {
		return nil, fmt.Errorf("ecfs: drain node %d: %d live survivors < K+M = %d", node, live, o.K+o.M)
	}

	sched := mds.Scheduler()

	// Mark the node draining and evict it from the placement pool — or,
	// when resuming an interrupted drain, observe that both already
	// hold. This runs before any shared state moves (budget rebase,
	// cluster flush): a concurrent drain rejected here must leave the
	// running run's accounting and logs untouched. The mark's lifetime
	// encodes the drain's outcome: cleared in place on completion,
	// cleared with a pool restore on a hard failure, and downgraded to
	// interrupted on cancellation so the resume finds the node exactly
	// where the cancelled run left it.
	inPool := false
	for _, id := range mds.Nodes() {
		if id == node {
			inPool = true
		}
	}
	resumed, err := mds.BeginDrain(node)
	if err != nil {
		return nil, err
	}
	completed := false
	var runErr error
	defer func() {
		switch {
		case completed:
			mds.FinishDrain(node)
		case drainResumable(ctx, runErr):
			// Cancelled: stay out of the pool, downgrade the running
			// mark to interrupted so a later DrainWith resumes it while
			// a concurrent one is still rejected.
			mds.InterruptDrain(node)
		case inPool || resumed:
			mds.failDrain(node)
		default:
			// Never pool-evicted by a drain: just clear the mark.
			mds.FinishDrain(node)
		}
	}()
	for _, id := range mds.Nodes() {
		if id == node {
			runErr = fmt.Errorf("ecfs: drain node %d: placement pool cannot shrink below K+M", node)
			return nil, runErr
		}
	}

	if o.MaxRebuildMBps > 0 {
		// A per-run cap starts metering now, not from the scheduler's
		// historical budget base.
		sched.RebaseBudget()
	}
	throttleBase := sched.Throttled()
	spentBase := sched.TotalSpentBytes()
	start := sim.SnapshotBusyClasses(o.Resources, maintenanceClasses...)
	if o.Flush != nil {
		if err := o.Flush(ctx); err != nil {
			runErr = fmt.Errorf("ecfs: pre-drain flush: %w", err)
			return nil, runErr
		}
	}
	drainedAt := sim.SnapshotBusyClasses(o.Resources, maintenanceClasses...)

	refs := mds.StripesOnSorted(node)
	if o.Workers > len(refs) && len(refs) > 0 {
		o.Workers = len(refs)
	}
	var deadIDs []wire.NodeID
	for id := range o.Down {
		deadIDs = append(deadIDs, id)
	}
	mg := &migrator{
		ctx: ctx,
		mds: mds, caller: caller, node: node, k: o.K, m: o.M,
		down: o.Down, deadList: encodeDeadList(deadIDs),
	}
	res := &DrainResult{
		Node:      node,
		Resumed:   resumed,
		Workers:   o.Workers,
		DrainTime: sim.MaxBusyDeltaClasses(o.Resources, start, maintenanceClasses...),
		Moves:     make([]StripeMove, len(refs)),
	}

	q := newRepairQueue(refs)
	err = runRepairWorkers(ctx, mds, o, q, func(ref StripeRef, seed, _ int) (int64, error) {
		mv, err := mg.migrateStripe(ref)
		res.Moves[seed] = mv
		return int64(mv.Bytes), err
	})
	res.Promoted = q.promotions()
	if err != nil {
		runErr = err
		if !drainResumable(ctx, err) {
			if errors.Is(err, ErrStrandedCutover) {
				// Hard abort, but not a silent one: the completed moves
				// stay cut over, and the operator needs to see them
				// next to the stranded stripe named in the error.
				finishDrainResult(res, o, drainedAt, sched, throttleBase, spentBase)
				return res, err
			}
			return nil, err
		}
		// Cancelled at a stripe boundary: report what did complete (the
		// moves below stay cut over) alongside the cancellation, so the
		// operator sees progress and the resume picks up the rest.
		finishDrainResult(res, o, drainedAt, sched, throttleBase, spentBase)
		return res, err
	}

	if rest := mds.StripesOn(node); len(rest) != 0 {
		runErr = fmt.Errorf("ecfs: drain node %d: %d stripes still placed after migration", node, len(rest))
		return nil, runErr
	}
	completed = true
	finishDrainResult(res, o, drainedAt, sched, throttleBase, spentBase)
	return res, nil
}

// finishDrainResult compacts a drain's move list to the completed
// migrations and derives the aggregate counters and the modeled
// makespan from them — shared by the completion and the
// cancelled-partial return paths of MigrateNode.
func finishDrainResult(res *DrainResult, o RepairOptions, drainedAt []time.Duration, sched *RepairScheduler, throttleBase time.Duration, spentBase int64) {
	done := res.Moves[:0]
	for _, mv := range res.Moves {
		if !mv.Done {
			continue
		}
		done = append(done, mv)
		res.StripeTime += mv.Cost
		res.Rebound++
		if mv.Skipped {
			res.Skipped++
			continue
		}
		res.Moved++
		res.Bytes += int64(mv.Bytes)
		if mv.Refreshed {
			res.Refreshed++
		}
	}
	res.Moves = done

	res.VirtualTime = res.DrainTime + repairWindow(res.StripeTime, o.Workers, o.Resources, drainedAt, sched.Throttled()-throttleBase)
	// As in RepairNode: a capped run never reports bandwidth above its
	// cap — the budget bytes it consumed floor the modeled makespan.
	if floor := res.DrainTime + sched.capFloor(o.MaxRebuildMBps, sched.TotalSpentBytes()-spentBase); res.VirtualTime < floor {
		res.VirtualTime = floor
	}
	if res.VirtualTime > 0 {
		res.Bandwidth = float64(res.Bytes) / res.VirtualTime.Seconds()
	}
}

// drainResumable reports whether a drain that failed with err should
// keep its draining state for a later resume (the operator's Ctrl-C —
// the run context's cancellation or deadline) rather than abort and
// restore pool membership. A stranded cutover is never resumable even
// when the operator cancelled at the same time — the stripe is off the
// node, so a resume could not revisit it — and the run ctx must itself
// have ended: a context error surfacing from anywhere else (e.g. the
// detached region's backstop expiring against a hung node) is a hard
// failure, not an operator cancel.
func drainResumable(ctx context.Context, err error) bool {
	if errors.Is(err, ErrStrandedCutover) {
		return false
	}
	if ctx.Err() == nil {
		return false
	}
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// ErrStrandedCutover marks a drain failure inside a stripe's detached
// post-rebind window: the stripe is already rebound at the MDS — off
// the source's StripesOn set, so no resume will ever revisit it — but
// its fence/refetch did not complete. It is always a hard failure
// (drainResumable rejects it regardless of the run context's state,
// and runRepairWorkers reports it in preference to a concurrent
// cancellation), because resuming cannot repair it. The wrapped error
// names the affected block; the partial DrainResult is returned
// alongside so the operator sees the moves that did complete. Until
// stale clients holding the old placement re-resolve, writes they land
// on the source are not carried to the destination — verify with
// Cluster.Flush + Scrub before trusting the stripe.
var ErrStrandedCutover = errors.New("ecfs: drain: stripe cutover incomplete (rebound but not fenced/refetched)")

// drainStripeBudget is the liveness backstop on a stripe's detached
// post-rebind window: the fence/broadcast/log-drain/refetch run under
// context.WithoutCancel (a cancel must not strand the stripe
// rebound-but-unfenced), so without a deadline of their own a hung
// node would wedge the drain worker forever — uncancellable, and with
// BeginDrain rejecting every later attempt. Generous on purpose, like
// the write path's stripeWriteBudget: it bounds a pathology, it does
// not pace healthy moves. An expiry is a hard failure, not a
// resumable cancel (see drainResumable).
const drainStripeBudget = 2 * time.Minute

// migrator is the per-drain engine state shared by the worker pool.
type migrator struct {
	ctx      context.Context // drain-run context; checked at every engine RPC
	mds      *MDS
	caller   transport.RPC
	node     wire.NodeID
	k, m     int
	down     map[wire.NodeID]bool
	deadList []byte // encoded down set for per-stripe source log drains
}

func (mg *migrator) migrateStripe(ref StripeRef) (StripeMove, error) {
	mv := StripeMove{Ino: ref.Ino, Stripe: ref.Stripe, Idx: ref.Idx}
	b := wire.BlockID{Ino: ref.Ino, Stripe: ref.Stripe, Idx: ref.Idx}
	resp, err := mg.caller.Call(mg.ctx, mg.node, &wire.Msg{Kind: wire.KBlockFetch, Block: b, Flag: wire.FetchReadThrough, Class: sim.ClassDrain})
	if err != nil {
		return mv, fmt.Errorf("ecfs: drain fetch %v from %d: %w", b, mg.node, err)
	}
	var data []byte
	switch {
	case resp.OK():
		data = resp.Data
		mv.Cost += resp.Cost
	case resp.IsNotFound():
		mv.Skipped = true // placed but never written: rebind only
	default:
		return mv, fmt.Errorf("ecfs: drain fetch %v from %d: %w", b, mg.node, resp.Error())
	}

	dest, err := mg.mds.PickRebindTarget(ref.Ino, ref.Stripe, ref.Loc)
	if err != nil {
		return mv, err
	}
	mv.To = dest
	if data != nil {
		sresp, err := mg.caller.Call(mg.ctx, dest, &wire.Msg{Kind: wire.KBlockStore, Block: b, Data: data, Class: sim.ClassDrain})
		if err != nil {
			return mv, fmt.Errorf("ecfs: drain store %v on %d: %w", b, dest, err)
		}
		if e := sresp.Error(); e != nil {
			return mv, e
		}
		mv.Cost += sresp.Cost
		mv.Bytes = len(data)
	}

	nl, err := mg.mds.Rebind(ref.Ino, ref.Stripe, mg.node, dest)
	if err != nil {
		return mv, fmt.Errorf("ecfs: drain rebind %d/%d: %w", ref.Ino, ref.Stripe, err)
	}

	// The rebind is the stripe's point of no return: the MDS now routes
	// clients to the destination and the resume path re-seeds from
	// StripesOn, which no longer lists this stripe. A cancellation
	// landing between here and Done would therefore strand it rebound
	// but unfenced — the mandatory fence/refetch would never run and an
	// acknowledged in-window write could be silently discarded. Detach
	// from the drain context so the remaining steps run to completion,
	// re-bounded by the drainStripeBudget backstop (a hung node must
	// not wedge the worker forever); cancellation is honored at the
	// next stripe boundary instead (the scheduler's admission gate in
	// runRepairWorkers). A failure in here — backstop expiry included —
	// is marked ErrStrandedCutover: it can never masquerade as a
	// resumable cancel, because no resume can revisit a stripe that is
	// already off the node.
	detached, cancel := context.WithTimeout(context.WithoutCancel(mg.ctx), drainStripeBudget)
	defer cancel()
	if err := mg.finishCutover(detached, &mv, ref, b, nl, dest, data); err != nil {
		return mv, fmt.Errorf("%w: %w", ErrStrandedCutover, err)
	}
	mv.Done = true
	return mv, nil
}

// finishCutover runs the post-rebind half of a stripe migration: the
// fence at the source, the epoch broadcast to the members, the
// parity-log drain, and the final guarded refetch/re-store. It runs
// under the detached per-stripe context (see migrateStripe); any error
// it returns means the stripe is rebound at the MDS but its cutover
// did not complete, which migrateStripe wraps as ErrStrandedCutover.
func (mg *migrator) finishCutover(ctx context.Context, mv *StripeMove, ref StripeRef, b wire.BlockID, nl wire.StripeLoc, dest wire.NodeID, data []byte) error {
	// Fence: unlike the recovery broadcast, the source notification must
	// succeed — it is what stops stale clients from mutating the moved
	// block on the old holder.
	fr, err := mg.caller.Call(ctx, mg.node, &wire.Msg{
		Kind: wire.KEpochUpdate, Block: b, Loc: nl, K: uint8(mg.k), M: uint8(mg.m), Class: sim.ClassDrain,
	})
	if err != nil {
		return fmt.Errorf("ecfs: drain fence %v at %d: %w", b, mg.node, err)
	}
	if e := fr.Error(); e != nil {
		return e
	}
	mv.Cost += fr.Cost

	// Broadcast to the remaining members and the new holder *before* the
	// refetch, exactly like recovery's rebind but at this point in the
	// sequence on purpose: the broadcast refreshes the members' strategy
	// stripe tables, so asynchronous delta traffic (parity-log appends
	// from data holders) re-routes to the destination before the final
	// copy is taken. The MDS stays the placement authority; for members
	// the epoch remains a best-effort hint.
	for _, member := range nl.Nodes {
		if member == mg.node || mg.down[member] {
			continue
		}
		_, _ = mg.caller.Call(ctx, member, &wire.Msg{
			Kind: wire.KEpochUpdate, Block: b, Loc: nl, K: uint8(mg.k), M: uint8(mg.m), Class: sim.ClassDrain,
		})
	}

	// A parity block's pending state lives in the source's parity log as
	// XOR deltas, which a read-through fetch cannot merge (only data-log
	// overlays are content). With the members now routing new deltas to
	// the destination, force the source to recycle its logs so the base
	// block below is current before the final copy.
	if int(ref.Idx) >= mg.k {
		if err := mg.drainSourceLogs(ctx, mv); err != nil {
			return err
		}
	}

	// Refetch behind the fence: any write acknowledged by the source
	// after the first copy is now final there; carry it over. This runs
	// even when the first fetch found nothing — a placed-but-unwritten
	// stripe can receive its first full-block write inside the copy
	// window — and a refetch failure is an error, not a shrug: skipping
	// it would silently discard an acknowledged write. The re-store is
	// guarded (StoreUnlessOverwritten): it must never clobber a full
	// write a client has already landed on the destination under the
	// new epoch.
	r2, err := mg.caller.Call(ctx, mg.node, &wire.Msg{Kind: wire.KBlockFetch, Block: b, Flag: wire.FetchReadThrough, Class: sim.ClassDrain})
	if err != nil {
		return fmt.Errorf("ecfs: drain refetch %v from %d: %w", b, mg.node, err)
	}
	switch {
	case r2.OK():
		mv.Cost += r2.Cost
		if data == nil || !bytes.Equal(r2.Data, data) {
			sresp, serr := mg.caller.Call(ctx, dest, &wire.Msg{
				Kind: wire.KBlockStore, Block: b, Data: r2.Data,
				Flag: wire.StoreUnlessOverwritten, Loc: nl, Class: sim.ClassDrain,
			})
			if serr != nil {
				return fmt.Errorf("ecfs: drain refresh %v on %d: %w", b, dest, serr)
			}
			if e := sresp.Error(); e != nil {
				return e
			}
			mv.Refreshed = true
			mv.Skipped = false // content appeared inside the window
			mv.Bytes = len(r2.Data)
			mv.Cost += sresp.Cost
		}
	case r2.IsNotFound():
		// Still never written: nothing to carry.
	default:
		return fmt.Errorf("ecfs: drain refetch %v from %d: %w", b, mg.node, r2.Error())
	}
	return nil
}

// drainSourceLogs forces the draining node to recycle its strategy logs
// (all phases), so pending parity-log deltas are folded into its base
// blocks before a parity block's final copy is taken. It runs post-
// rebind, so callers pass the detached (uncancellable) stripe context.
func (mg *migrator) drainSourceLogs(ctx context.Context, mv *StripeMove) error {
	for phase := 1; phase <= update.DrainPhases; phase++ {
		resp, err := mg.caller.Call(ctx, mg.node, &wire.Msg{Kind: wire.KDrainLogs, Flag: uint8(phase), Data: mg.deadList, Class: sim.ClassDrain})
		if err != nil {
			return fmt.Errorf("ecfs: drain source logs at %d: %w", mg.node, err)
		}
		if e := resp.Error(); e != nil {
			return e
		}
		mv.Cost += resp.Cost
	}
	return nil
}

// Drain migrates every stripe off a live node onto the survivor pool
// under per-stripe epoch bumps, with zero downtime: the node keeps
// serving throughout, clients re-resolve stripe by stripe, and no data
// is decoded — blocks are copied straight from the draining node. The
// node is evicted from the placement pool but stays registered; follow
// with RemoveOSD (or use Decommission) to retire it.
//
// A drain cancelled via ctx is resumable: call Drain (or DrainWith)
// again on the same node and it completes from the stripes still
// placed there, with no stripe migrated twice and no pool-membership
// flap in between (see MigrateNode). AbortDrain abandons it instead.
func (c *Cluster) Drain(ctx context.Context, node wire.NodeID) (*DrainResult, error) {
	return c.DrainWith(ctx, node, c.Opts.RecoveryWorkers)
}

// DrainWith is Drain with an explicit migration worker count (<= 0
// selects DefaultRecoveryWorkers).
func (c *Cluster) DrainWith(ctx context.Context, node wire.NodeID, workers int) (*DrainResult, error) {
	if c.OSD(node) == nil {
		return nil, fmt.Errorf("ecfs: drain: unknown node %d", node)
	}
	o := c.repairOptions(workers, false)
	o.Down = c.deadSnapshot()
	return MigrateNode(ctx, c.MDS, c.Tr.Caller(wire.MDSNode), o, node)
}

// AbortDrain abandons a cancelled (interrupted) drain instead of
// resuming it: the node's draining mark is cleared and it is
// re-admitted to the placement pool, still hosting the stripes the
// cancelled run did not migrate. Stripes already cut over stay on
// their destinations. It reports whether an interrupted drain was
// aborted; a drain still actively running is left untouched (false) —
// cancel its context first, then abort.
func (c *Cluster) AbortDrain(node wire.NodeID) bool {
	return c.MDS.AbortDrain(node)
}

// Decommission drains a live node and then retires it: after every
// stripe has been migrated (Drain), the node is deregistered from the
// transport, closed, removed from the OSD list, and forgotten by the
// MDS — the zero-downtime path for taking hardware out of service.
func (c *Cluster) Decommission(ctx context.Context, node wire.NodeID) (*DrainResult, error) {
	res, err := c.Drain(ctx, node)
	if err != nil {
		return res, err
	}
	c.RemoveOSD(node)
	return res, nil
}

// RemoveOSD retires a node that no longer hosts placements (post-Drain):
// the transport handler is deregistered, the OSD closed and dropped from
// the list, and its liveness and reverse-index state forgotten at the
// MDS. Clients still caching the node's placements get transport errors
// and re-resolve.
func (c *Cluster) RemoveOSD(node wire.NodeID) {
	c.Tr.Deregister(node)
	out := c.OSDs[:0]
	for _, o := range c.OSDs {
		if o.id == node {
			o.Close()
			continue
		}
		out = append(out, o)
	}
	c.OSDs = out
	c.MDS.Forget(node)
	c.failMu.Lock()
	delete(c.failed, node)
	c.failMu.Unlock()
}
