package ecfs

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"repro/internal/device"
	"repro/internal/erasure"
	"repro/internal/transport"
	"repro/internal/update"
	"repro/internal/wire"
)

// tcpHarness is an in-process ECFS cluster deployed over real TCP
// loopback sockets — the cmd/ecfsd wiring, assembled for tests.
type tcpHarness struct {
	t     *testing.T
	k, m  int
	mds   *MDS
	code  *erasure.Code
	cfg   update.Config
	addrs map[wire.NodeID]string
	osds  map[wire.NodeID]*OSD
	srvs  map[wire.NodeID]*transport.TCPServer
	rpcs  []*transport.TCPClient // every pool that must learn new addresses
}

func newTCPHarness(t *testing.T, k, m, nOSDs, blockSize int) *tcpHarness {
	t.Helper()
	h := &tcpHarness{
		t: t, k: k, m: m,
		code:  erasure.MustNew(k, m, erasure.Vandermonde),
		addrs: make(map[wire.NodeID]string),
		osds:  make(map[wire.NodeID]*OSD),
		srvs:  make(map[wire.NodeID]*transport.TCPServer),
	}
	ids := make([]wire.NodeID, nOSDs)
	for i := range ids {
		ids[i] = wire.NodeID(i + 1)
	}
	mds, err := NewMDS(ids, k, m)
	if err != nil {
		t.Fatal(err)
	}
	h.mds = mds
	// Self-discovery configuration, exactly as cmd/ecfsd serves it.
	mds.SetBlockSize(blockSize)
	mdsSrv, err := transport.ServeTCP(wire.MDSNode, "127.0.0.1:0", mds.Handler)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mdsSrv.Close() })
	h.srvs[wire.MDSNode] = mdsSrv
	h.addrs[wire.MDSNode] = mdsSrv.Addr()
	mds.RecordAddr(wire.MDSNode, mdsSrv.Addr())

	h.cfg = update.DefaultConfig()
	h.cfg.BlockSize = blockSize
	h.cfg.UnitSize = 4 << 10
	h.cfg.MaxUnits = 4
	h.cfg.Pools = 2
	h.cfg.Workers = 2
	for _, id := range ids {
		h.addOSD(id)
	}
	h.syncAddrs()
	return h
}

// addOSD builds an OSD with its own TCP client pool and serves it. The
// OSD's pool knows only the MDS and resolves peers through the address
// map; the OSD announces its listen address with an immediate heartbeat
// — the cmd/ecfsd wiring.
func (h *tcpHarness) addOSD(id wire.NodeID) *OSD {
	h.t.Helper()
	rpc := transport.NewTCPClient(map[wire.NodeID]string{wire.MDSNode: h.addrs[wire.MDSNode]})
	rpc.SetResolver(resolveVia(rpc))
	h.rpcs = append(h.rpcs, rpc)
	osd, err := NewOSD(id, device.ChameleonSSD(), rpc, "tsue", h.cfg, erasure.Vandermonde)
	if err != nil {
		h.t.Fatal(err)
	}
	h.t.Cleanup(osd.Close)
	srv, err := transport.ServeTCP(id, "127.0.0.1:0", osd.Handler)
	if err != nil {
		h.t.Fatal(err)
	}
	h.t.Cleanup(func() { srv.Close() })
	h.osds[id] = osd
	h.srvs[id] = srv
	h.addrs[id] = srv.Addr()
	osd.SetListenAddr(srv.Addr())
	if err := osd.Heartbeat(context.Background()); err != nil {
		h.t.Fatal(err)
	}
	return osd
}

// resolveVia builds the AddrResolver every node and client uses: ask the
// MDS for the address map over wire.KResolveAddr.
func resolveVia(rpc *transport.TCPClient) transport.AddrResolver {
	return func(ctx context.Context) (map[wire.NodeID]string, error) {
		r, err := rpc.Call(ctx, wire.MDSNode, &wire.Msg{Kind: wire.KResolveAddr})
		if err != nil {
			return nil, err
		}
		if err := r.Error(); err != nil {
			return nil, err
		}
		out, err := wire.DecodeAddrMap(r.Data)
		if err != nil {
			return nil, err
		}
		delete(out, wire.MDSNode)
		return out, nil
	}
}

// newRPC returns a TCP client pool knowing every current address.
func (h *tcpHarness) newRPC() *transport.TCPClient {
	rpc := transport.NewTCPClient(h.addrs)
	h.rpcs = append(h.rpcs, rpc)
	h.t.Cleanup(rpc.Close)
	return rpc
}

// syncAddrs pushes the current address map into every client pool
// (static-config style, as cmd/ecfsd does after all nodes are bound).
func (h *tcpHarness) syncAddrs() {
	for _, rpc := range h.rpcs {
		for id, addr := range h.addrs {
			rpc.SetAddr(id, addr)
		}
	}
}

// fail closes a node's TCP server: subsequent calls to it dial into a
// dead socket, exactly how a crashed ecfsd looks to its peers.
func (h *tcpHarness) fail(id wire.NodeID) {
	h.srvs[id].Close()
	h.mds.MarkDead(id)
}

// flush drains the strategy logs of every live OSD over TCP, phase by
// phase, with the dead list attached (the same KDrainLogs sweep
// Cluster.Flush performs in process).
func (h *tcpHarness) flushOver(rpc transport.RPC, down map[wire.NodeID]bool) func(context.Context) error {
	return func(ctx context.Context) error {
		payload := encodeDeadList(h.mds.DeadNodes())
		for phase := 1; phase <= update.DrainPhases; phase++ {
			for id := range h.osds {
				if down[id] {
					continue
				}
				resp, err := rpc.Call(ctx, id, &wire.Msg{Kind: wire.KDrainLogs, Flag: uint8(phase), Data: payload})
				if err != nil {
					return err
				}
				if e := resp.Error(); e != nil {
					return e
				}
			}
		}
		return nil
	}
}

// TestTCPRecoveryStaleEpochReresolve runs the repair engine over real
// sockets: an OSD's server dies, RepairNode rebuilds its blocks onto a
// replacement under a *fresh* node id with every fetch, replica replay
// and epoch broadcast travelling over TCP, and a client that cached the
// pre-failure placements re-resolves via structured stale-epoch
// rejections — the real framed wire path, not the in-process transport.
func TestTCPRecoveryStaleEpochReresolve(t *testing.T) {
	const (
		k, m      = 2, 1
		nOSDs     = 4
		blockSize = 8 << 10
	)
	h := newTCPHarness(t, k, m, nOSDs, blockSize)

	cli := NewClient(wire.ClientIDBase, h.newRPC(), h.code, blockSize)
	ino, err := cli.Create("tcp-repair-vol")
	if err != nil {
		t.Fatal(err)
	}
	mirror := make([]byte, 2*cli.StripeSpan())
	rand.New(rand.NewSource(15)).Read(mirror)
	if _, err := cli.WriteFile(ino, mirror); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(16))
	for i := 0; i < 60; i++ {
		off := int64(rng.Intn(len(mirror) - 128))
		data := make([]byte, 1+rng.Intn(128))
		rng.Read(data)
		if _, err := cli.Update(ino, off, data, 0); err != nil {
			t.Fatalf("update over TCP: %v", err)
		}
		copy(mirror[off:], data)
	}
	// Warm the placement cache so the client is maximally stale later.
	if _, _, err := cli.Read(ino, 0, len(mirror)); err != nil {
		t.Fatal(err)
	}

	// Kill the holder of stripe 0's first data block.
	loc0, err := h.mds.Lookup(ino, 0)
	if err != nil {
		t.Fatal(err)
	}
	victim := loc0.Nodes[0]
	h.fail(victim)
	down := map[wire.NodeID]bool{victim: true}

	// A replacement joins under a fresh id, served on its own socket.
	freshID := wire.NodeID(nOSDs + 5)
	repl := h.addOSD(freshID)
	h.syncAddrs()
	h.mds.AddNode(freshID)

	caller := h.newRPC()
	res, err := RepairNode(context.Background(), h.mds, caller, h.code, RepairOptions{
		K: k, M: m, Workers: 2, DataLogReplicas: 1,
		Down:  down,
		Flush: h.flushOver(caller, down),
	}, victim, repl)
	if err != nil {
		t.Fatal(err)
	}
	if res.Blocks == 0 {
		t.Fatal("nothing recovered over TCP")
	}
	if res.Lost != 0 || res.Rebound != res.Blocks+res.Skipped {
		t.Fatalf("implausible TCP recovery result: %+v", res)
	}
	if refs := h.mds.StripesOn(victim); len(refs) != 0 {
		t.Fatalf("victim still holds %d placements", len(refs))
	}

	// The stale client re-resolves over real sockets: reads to the moved
	// block hit a dead socket and re-resolve; reads and updates to
	// surviving members carry the old epoch and are rejected with the
	// structured wire.StatusStaleEpoch reply, re-resolved, and retried.
	got, _, err := cli.Read(ino, 0, len(mirror))
	if err != nil {
		t.Fatalf("stale client read over TCP: %v", err)
	}
	if !bytes.Equal(got, mirror) {
		t.Fatal("stale client read mismatch over TCP")
	}
	if st := cli.Stats(); st.DegradedReads != 0 {
		t.Fatalf("post-recovery reads degraded %d times; want the normal path", st.DegradedReads)
	}
	for i := 0; i < 40; i++ {
		off := int64(rng.Intn(len(mirror) - 128))
		data := make([]byte, 1+rng.Intn(128))
		rng.Read(data)
		if _, err := cli.Update(ino, off, data, 0); err != nil {
			t.Fatalf("stale client update over TCP: %v", err)
		}
		copy(mirror[off:], data)
	}
	got, _, err = cli.Read(ino, 0, len(mirror))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, mirror) {
		t.Fatal("post-update read mismatch over TCP")
	}

	// No repair is active anymore: the status RPC reports an idle queue.
	resp, err := caller.Call(context.Background(), wire.MDSNode, &wire.Msg{Kind: wire.KRepairStatus})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Val != 0 {
		t.Fatalf("repair status = %d pending, want 0", resp.Val)
	}

	// Drain over TCP and verify parity on the rebound stripes locally.
	if err := h.flushOver(caller, down)(context.Background()); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 2; s++ {
		loc, err := h.mds.Lookup(ino, uint32(s))
		if err != nil {
			t.Fatal(err)
		}
		if loc.Epoch == 0 {
			t.Fatalf("stripe %d not epoch-bumped", s)
		}
		data := make([][]byte, k)
		parity := make([][]byte, m)
		for i := 0; i < k+m; i++ {
			b := wire.BlockID{Ino: ino, Stripe: uint32(s), Idx: uint8(i)}
			holder := h.osds[loc.Nodes[i]]
			if holder == nil {
				t.Fatalf("stripe %d block %d placed on unknown node %d", s, i, loc.Nodes[i])
			}
			snap, ok := holder.Store().Snapshot(b)
			if !ok {
				t.Fatalf("block %v missing on node %d", b, loc.Nodes[i])
			}
			if i < k {
				data[i] = snap
			} else {
				parity[i-k] = snap
			}
		}
		ok, err := h.code.Verify(data, parity)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("stripe %d parity inconsistent after TCP recovery", s)
		}
	}
}
