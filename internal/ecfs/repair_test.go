package ecfs

import (
	"bytes"
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/wire"
)

// TestRepairQueueOrdering pins the queue's contract: FIFO by default,
// promotions jump to the front, the most recent promotion foremost, and
// hints for unknown or already-popped stripes are no-ops.
func TestRepairQueueOrdering(t *testing.T) {
	refs := make([]StripeRef, 6)
	for i := range refs {
		refs[i] = StripeRef{Ino: 1, Stripe: uint32(i)}
	}
	q := newRepairQueue(refs)
	if q.pending() != 6 {
		t.Fatalf("pending = %d", q.pending())
	}
	if q.promote(1, 99) {
		t.Fatal("promoting an unknown stripe must be a no-op")
	}
	if !q.promote(1, 3) || !q.promote(1, 5) {
		t.Fatal("promoting pending stripes must succeed")
	}
	var got []uint32
	for {
		ref, seed, order, ok := q.pop()
		if !ok {
			break
		}
		if seed != int(ref.Stripe) {
			t.Fatalf("seed %d for stripe %d", seed, ref.Stripe)
		}
		if order != len(got) {
			t.Fatalf("order %d at pop %d", order, len(got))
		}
		got = append(got, ref.Stripe)
	}
	want := []uint32{5, 3, 0, 1, 2, 4} // latest promotion first, then FIFO
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
	if q.promote(1, 0) {
		t.Fatal("promoting a popped stripe must be a no-op")
	}
	if q.promotions() != 2 {
		t.Fatalf("promotions = %d, want 2", q.promotions())
	}
}

// TestPrioritizedRepairReordersQueue is the tentpole's end-to-end proof:
// mid-recovery, a degraded read promotes its stripe to the front of the
// rebuild queue (ahead of its FIFO rank), the stripe is rebound under a
// bumped epoch as soon as it completes, and the next read of it is
// served by the replacement via the normal read path — no K-way decode —
// while the rest of the recovery is still running.
func TestPrioritizedRepairReordersQueue(t *testing.T) {
	c, cli, ino, mirror := buildRecoveryCluster(t, "tsue", 150)
	defer c.Close()
	if err := c.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Warm the client's placement cache across the whole file.
	if _, _, err := cli.Read(ino, 0, len(mirror)); err != nil {
		t.Fatal(err)
	}

	// Pick the OSD hosting the longest work list (placement depends on
	// the ino, which per-shard allocation no longer pins to 1).
	victim := c.OSDs[2]
	for _, o := range c.OSDs {
		if len(c.MDS.StripesOn(o.ID())) > len(c.MDS.StripesOn(victim.ID())) {
			victim = o
		}
	}
	c.FailOSD(victim.ID())
	freshID := wire.NodeID(c.Opts.NumOSDs + 7)
	repl := newFreshReplacement(t, c, freshID)
	c.AddOSD(repl)

	refs := c.MDS.StripesOnSorted(victim.ID())
	if len(refs) < 4 {
		t.Fatalf("victim hosts only %d stripes; test needs a longer work list", len(refs))
	}
	// The hot stripe: the FIFO-last *data* block the victim hosts, so a
	// client read of it degrades while the victim is down.
	hotSeed := -1
	for i := len(refs) - 1; i > 1; i-- {
		if int(refs[i].Idx) < c.Opts.K {
			hotSeed = i
			break
		}
	}
	if hotSeed < 0 {
		t.Fatal("victim hosts no data blocks beyond the queue head")
	}
	hot := refs[hotSeed]

	// Gate the rebuilds of the two FIFO-first stripes: every shard fetch
	// for them blocks until released, pinning the single worker at a
	// known queue position.
	gates := map[stripeKey]chan struct{}{
		{refs[0].Ino, refs[0].Stripe}: make(chan struct{}),
		{refs[1].Ino, refs[1].Stripe}: make(chan struct{}),
	}
	var gateMu sync.Mutex // protects gates map reads vs. test-side deletes
	for _, o := range c.Alive() {
		o := o
		c.Tr.Register(o.ID(), func(hctx context.Context, msg *wire.Msg) *wire.Resp {
			if msg.Kind == wire.KBlockFetch {
				gateMu.Lock()
				gate := gates[stripeKey{msg.Block.Ino, msg.Block.Stripe}]
				gateMu.Unlock()
				if gate != nil {
					<-gate
				}
			}
			return o.Handler(hctx, msg)
		})
	}

	type recDone struct {
		res *RecoveryResult
		err error
	}
	done := make(chan recDone, 1)
	go func() {
		res, err := c.RecoverWith(context.Background(), victim.ID(), repl, 1)
		done <- recDone{res, err}
	}()

	status := c.Tr.Caller(wire.MDSNode)
	waitPending := func(want int) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			resp, err := status.Call(context.Background(), wire.MDSNode, &wire.Msg{Kind: wire.KRepairStatus})
			if err != nil {
				t.Fatal(err)
			}
			if int(resp.Val) == want {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("repair queue pending = %d, want %d", resp.Val, want)
			}
			time.Sleep(time.Millisecond)
		}
	}
	// The worker pops the FIFO head and blocks on its gated fetches.
	waitPending(len(refs) - 1)

	// A degraded read of the hot stripe: the victim is down, so the
	// client decodes from survivors — and promotes the stripe.
	span := int64(cli.StripeSpan())
	hotOff := int64(hot.Stripe)*span + int64(hot.Idx)*int64(c.Opts.BlockSize)
	got, _, err := cli.Read(ino, hotOff, 64)
	if err != nil {
		t.Fatalf("degraded read of the hot stripe: %v", err)
	}
	if !bytes.Equal(got, mirror[hotOff:hotOff+64]) {
		t.Fatal("degraded read content mismatch")
	}
	if st := cli.Stats(); st.DegradedReads != 1 || st.RepairHints != 1 {
		t.Fatalf("stats after degraded read: %+v", st)
	}

	// Release the queue head. The worker finishes it, then must pick the
	// promoted hot stripe — jumping it ahead of its FIFO rank — and then
	// block on the gated second stripe.
	gateMu.Lock()
	close(gates[stripeKey{refs[0].Ino, refs[0].Stripe}])
	delete(gates, stripeKey{refs[0].Ino, refs[0].Stripe})
	gateMu.Unlock()
	waitPending(len(refs) - 3) // head + hot popped, second stripe in flight

	// Mid-recovery: the hot stripe is rebuilt and rebound. Its next read
	// re-resolves to the bumped epoch and is served by the replacement
	// through the normal read path — no additional K-way decode.
	loc, err := c.MDS.Lookup(hot.Ino, hot.Stripe)
	if err != nil {
		t.Fatal(err)
	}
	if loc.Epoch == 0 {
		t.Fatal("hot stripe not rebound mid-recovery")
	}
	if loc.Nodes[hot.Idx] != repl.ID() {
		t.Fatalf("hot block hosted by %d, want replacement %d", loc.Nodes[hot.Idx], repl.ID())
	}
	got, _, err = cli.Read(ino, hotOff, 64)
	if err != nil {
		t.Fatalf("post-cutover read of the hot stripe: %v", err)
	}
	if !bytes.Equal(got, mirror[hotOff:hotOff+64]) {
		t.Fatal("post-cutover read content mismatch")
	}
	if st := cli.Stats(); st.DegradedReads != 1 {
		t.Fatalf("post-cutover read decoded again: %+v", st)
	}

	gateMu.Lock()
	close(gates[stripeKey{refs[1].Ino, refs[1].Stripe}])
	delete(gates, stripeKey{refs[1].Ino, refs[1].Stripe})
	gateMu.Unlock()
	out := <-done
	if out.err != nil {
		t.Fatal(out.err)
	}
	if out.res.Promoted != 1 {
		t.Fatalf("Promoted = %d, want 1", out.res.Promoted)
	}
	// The proof of reordering: the hot stripe executed second despite
	// being seeded near the end of the FIFO order.
	if order := out.res.Stripes[hotSeed].Order; order != 1 {
		t.Fatalf("hot stripe executed at order %d, want 1 (FIFO rank %d)", order, hotSeed)
	}
	for seed, sr := range out.res.Stripes {
		if seed != hotSeed && seed > 1 && sr.Order < 2 {
			t.Fatalf("unpromoted stripe seed %d executed at order %d", seed, sr.Order)
		}
	}

	// And the recovery is complete and correct.
	got, _, err = cli.Read(ino, 0, len(mirror))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, mirror) {
		t.Fatal("post-recovery read mismatch")
	}
}

// TestRecoverFIFOKeepsSeedOrder pins the baseline the benchmark
// compares against: without promotion the execution order is exactly
// the deterministic FIFO seed order, and repair hints are ignored.
func TestRecoverFIFOKeepsSeedOrder(t *testing.T) {
	c, _, _, _ := buildRecoveryCluster(t, "tsue", 100)
	defer c.Close()
	victim := c.OSDs[2]
	c.FailOSD(victim.ID())
	repl := newTestReplacement(t, c, victim.ID())
	defer repl.Close()
	res, err := c.RecoverFIFO(context.Background(), victim.ID(), repl, 1)
	if err != nil {
		t.Fatal(err)
	}
	for seed, sr := range res.Stripes {
		if sr.Order != seed {
			t.Fatalf("FIFO recovery executed seed %d at order %d", seed, sr.Order)
		}
	}
	if res.Promoted != 0 {
		t.Fatalf("FIFO recovery promoted %d stripes", res.Promoted)
	}
}

func newFreshReplacement(t *testing.T, c *Cluster, id wire.NodeID) *OSD {
	t.Helper()
	cfg := *c.Opts.Strategy
	cfg.BlockSize = c.Opts.BlockSize
	repl, err := NewOSD(id, c.Opts.Device, c.Tr.Caller(id), c.Opts.Method, cfg, c.Opts.Kind)
	if err != nil {
		t.Fatal(err)
	}
	return repl
}

// buildDrainCluster assembles a cluster whose log units are too large to
// recycle mid-test (the drain contract quiesces logs up front; the
// read-through fence carries anything that lands after).
func buildDrainCluster(t *testing.T, updates int) (*Cluster, *Client, uint64, []byte) {
	t.Helper()
	opts := testOptions("tsue")
	cfg := *opts.Strategy
	cfg.UnitSize = 16 << 20
	opts.Strategy = &cfg
	c := MustNewCluster(opts)
	cli := c.NewClient()
	fileSize := 64 << 10
	ino, mirror := writeTestFile(t, c, cli, fileSize, 61)
	rng := rand.New(rand.NewSource(67))
	for i := 0; i < updates; i++ {
		off := int64(rng.Intn(fileSize - 256))
		data := make([]byte, 1+rng.Intn(256))
		rng.Read(data)
		if _, err := cli.Update(ino, off, data, 0); err != nil {
			t.Fatal(err)
		}
		copy(mirror[off:], data)
	}
	return c, cli, ino, mirror
}

// TestDrainMigratesLiveNode drains a live node while clients keep
// reading and updating: no client operation may fail, every stripe must
// leave the node, and the final content must verify byte-for-byte.
func TestDrainMigratesLiveNode(t *testing.T) {
	c, cli, ino, mirror := buildDrainCluster(t, 150)
	defer c.Close()

	node := c.OSDs[2].ID()
	before := len(c.MDS.StripesOnSorted(node))
	if before == 0 {
		t.Fatal("drain target hosts nothing")
	}

	// Concurrent workload: two updaters own disjoint regions at the
	// front of the file; two readers verify a quiet region at the back.
	var (
		wg     sync.WaitGroup
		mirMu  sync.Mutex
		stop   = make(chan struct{})
		opErrs = make(chan error, 8)
	)
	region := len(mirror) / 8
	for u := 0; u < 2; u++ {
		ucli := c.NewClient()
		wg.Add(1)
		go func(u int, ucli *Client) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(200 + u)))
			base := u * region
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				off := int64(base + rng.Intn(region-64))
				data := make([]byte, 1+rng.Intn(64))
				rng.Read(data)
				if _, err := ucli.Update(ino, off, data, 0); err != nil {
					opErrs <- err
					return
				}
				mirMu.Lock()
				copy(mirror[off:], data)
				mirMu.Unlock()
			}
		}(u, ucli)
	}
	quiet := mirror[6*region : 7*region]
	for r := 0; r < 2; r++ {
		rcli := c.NewClient()
		wg.Add(1)
		go func(r int, rcli *Client) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(300 + r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				off := rng.Intn(region - 128)
				n := 1 + rng.Intn(128)
				got, _, err := rcli.Read(ino, int64(6*region+off), n)
				if err != nil {
					opErrs <- err
					return
				}
				if !bytes.Equal(got, quiet[off:off+n]) {
					opErrs <- errReadMismatch{off: int64(off), n: n}
					return
				}
			}
		}(r, rcli)
	}

	res, err := c.Drain(context.Background(), node)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	select {
	case cerr := <-opErrs:
		t.Fatalf("client operation failed during drain: %v", cerr)
	default:
	}

	if got := len(c.MDS.StripesOn(node)); got != 0 {
		t.Fatalf("%d stripes still on the drained node", got)
	}
	if res.Moved == 0 || res.Rebound != res.Moved+res.Skipped {
		t.Fatalf("implausible drain result: %+v", res)
	}
	if res.Rebound != before {
		t.Fatalf("rebound %d placements, node hosted %d", res.Rebound, before)
	}
	for _, id := range c.MDS.Nodes() {
		if id == node {
			t.Fatal("drained node still in the placement pool")
		}
	}
	for _, mv := range res.Moves {
		if !mv.Skipped && mv.To == node {
			t.Fatalf("stripe %d/%d moved onto the draining node", mv.Ino, mv.Stripe)
		}
	}

	// The stale client and a fresh one both see the migrated content.
	got, _, err := cli.Read(ino, 0, len(mirror))
	if err != nil {
		t.Fatal(err)
	}
	mirMu.Lock()
	snap := append([]byte(nil), mirror...)
	mirMu.Unlock()
	if !bytes.Equal(got, snap) {
		t.Fatal("post-drain read mismatch")
	}
	if err := c.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyStripes(ino, snap); err != nil {
		t.Fatal(err)
	}
}

// TestDecommissionRetiresNode pins the end of the planned-migration
// path: Decommission drains the node and removes it from the topology,
// after which every client operation keeps working.
func TestDecommissionRetiresNode(t *testing.T) {
	c, cli, ino, mirror := buildDrainCluster(t, 100)
	defer c.Close()

	node := c.OSDs[1].ID()
	res, err := c.Decommission(context.Background(), node)
	if err != nil {
		t.Fatal(err)
	}
	if res.Moved == 0 {
		t.Fatal("nothing migrated")
	}
	if c.OSD(node) != nil {
		t.Fatal("decommissioned node still in the OSD list")
	}
	if _, err := c.Tr.Caller(wire.MDSNode).Call(context.Background(), node, &wire.Msg{Kind: wire.KPing}); err == nil {
		t.Fatal("decommissioned node still answers the transport")
	}
	if _, ok := c.MDS.LastHeartbeat(node); ok {
		t.Fatal("decommissioned node still has liveness state")
	}

	// The stale client re-resolves; updates and a full read succeed.
	rng := rand.New(rand.NewSource(71))
	for i := 0; i < 50; i++ {
		off := int64(rng.Intn(len(mirror) - 128))
		data := make([]byte, 1+rng.Intn(128))
		rng.Read(data)
		if _, err := cli.Update(ino, off, data, 0); err != nil {
			t.Fatalf("post-decommission update: %v", err)
		}
		copy(mirror[off:], data)
	}
	got, _, err := cli.Read(ino, 0, len(mirror))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, mirror) {
		t.Fatal("post-decommission read mismatch")
	}
	if err := c.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyStripes(ino, mirror); err != nil {
		t.Fatal(err)
	}
}

// TestDrainParityPendingLogsPL pins the parity-layer handover: PL
// buffers parity deltas in the parity holder's log, which a read-through
// fetch cannot merge (deltas are XORs, not content). MigrateNode must
// fold the source's pending logs into its base blocks before taking a
// parity block's final copy — here exercised deterministically by
// migrating with *pending* parity logs (no pre-drain flush).
func TestDrainParityPendingLogsPL(t *testing.T) {
	c := MustNewCluster(testOptions("pl"))
	defer c.Close()
	cli := c.NewClient()
	fileSize := 64 << 10
	ino, mirror := writeTestFile(t, c, cli, fileSize, 83)
	rng := rand.New(rand.NewSource(89))
	for i := 0; i < 200; i++ {
		off := int64(rng.Intn(fileSize - 256))
		data := make([]byte, 1+rng.Intn(256))
		rng.Read(data)
		if _, err := cli.Update(ino, off, data, 0); err != nil {
			t.Fatal(err)
		}
		copy(mirror[off:], data)
	}

	// Migrate a node while its parity logs still hold undrained deltas:
	// no Flush hook, so only the per-stripe source drain can save them.
	node := c.OSDs[2].ID()
	res, err := MigrateNode(context.Background(), c.MDS, c.Tr.Caller(wire.MDSNode), RepairOptions{
		K: c.Opts.K, M: c.Opts.M, Workers: 2,
	}, node)
	if err != nil {
		t.Fatal(err)
	}
	if res.Moved == 0 {
		t.Fatal("nothing migrated")
	}
	if got := len(c.MDS.StripesOn(node)); got != 0 {
		t.Fatalf("%d stripes still on the drained node", got)
	}
	if err := c.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyStripes(ino, mirror); err != nil {
		t.Fatalf("parity lost in migration: %v", err)
	}
}

// TestDrainRollsBackPoolOnFailure: a drain that aborts partway must
// re-admit the (still live, still hosting) node to the placement pool.
func TestDrainRollsBackPoolOnFailure(t *testing.T) {
	c, _, ino, _ := buildDrainCluster(t, 50)
	defer c.Close()
	node := c.OSDs[2].ID()

	// Every block store fails: the first migration errors out.
	for _, o := range c.Alive() {
		o := o
		if o.ID() == node {
			continue
		}
		c.Tr.Register(o.ID(), func(hctx context.Context, msg *wire.Msg) *wire.Resp {
			if msg.Kind == wire.KBlockStore {
				return &wire.Resp{Err: "injected store failure"}
			}
			return o.Handler(hctx, msg)
		})
	}
	if _, err := c.Drain(context.Background(), node); err == nil {
		t.Fatal("drain must fail when destinations reject stores")
	}
	found := false
	for _, id := range c.MDS.Nodes() {
		if id == node {
			found = true
		}
	}
	if !found {
		t.Fatal("failed drain left the live node evicted from the placement pool")
	}
	// The cluster still works end to end once the fault clears.
	for _, o := range c.Alive() {
		c.Tr.Register(o.ID(), o.Handler)
	}
	if _, _, err := c.NewClient().Read(ino, 0, 4096); err != nil {
		t.Fatal(err)
	}
}

// TestDrainValidation: drains that cannot preserve placement invariants
// must be refused up front.
func TestDrainValidation(t *testing.T) {
	// A minimum-size pool (K+M nodes) cannot lose a member.
	opts := testOptions("tsue")
	opts.NumOSDs = opts.K + opts.M
	c := MustNewCluster(opts)
	defer c.Close()
	cli := c.NewClient()
	writeTestFile(t, c, cli, 32<<10, 3)
	if _, err := c.Drain(context.Background(), c.OSDs[0].ID()); err == nil {
		t.Fatal("draining a minimum-size pool must fail")
	}

	c2 := MustNewCluster(testOptions("tsue"))
	defer c2.Close()
	if _, err := c2.Drain(context.Background(), wire.NodeID(999)); err == nil {
		t.Fatal("draining an unknown node must fail")
	}
	// A failed node cannot be drained (it cannot source its blocks).
	c2.FailOSD(c2.OSDs[3].ID())
	if _, err := c2.Drain(context.Background(), c2.OSDs[3].ID()); err == nil {
		t.Fatal("draining a failed node must fail")
	}
}
