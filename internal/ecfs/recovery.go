package ecfs

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/erasure"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/update"
	"repro/internal/wire"
)

// DefaultRecoveryWorkers is the stripe-rebuild parallelism used when
// Options.RecoveryWorkers is zero.
const DefaultRecoveryWorkers = 4

// StripeRecovery records the rebuild of one lost block.
type StripeRecovery struct {
	Ino         uint64
	Stripe      uint32
	Idx         uint8
	Bytes       int
	Replayed    int64         // replica-log bytes replayed onto this block
	Fetch       time.Duration // slowest of the concurrent shard fetches
	Replay      time.Duration // replica-log fetch + parity-delta forwarding
	Write       time.Duration // store write on the replacement
	Retries     int           // failed fetch attempts of any cause that fell back to another holder
	Unreachable int           // failed fetch attempts where the holder did not answer at all (transport error)
	NotFound    int           // structured "block never written" replies from reachable holders
	Obtained    int           // surviving shards actually fetched
	Skipped     bool          // fewer than K shards obtainable, all misses structured not-found (never fully written)
	Lost        bool          // fewer than K shards obtainable with >= 1 holder unreachable (possible data loss)
	Rebound     bool          // placement rebound onto the replacement with a bumped epoch
	// Order is the stripe's 0-based position in the rebuild order the
	// repair queue actually executed. Without promotions it equals the
	// stripe's FIFO rank; a degraded-read hint moves a hot stripe's
	// Order ahead of colder stripes seeded before it.
	Order int
}

// DataLossError reports that recovery could not obtain K shards of a
// stripe because holders were unreachable — as opposed to a stripe that
// was never fully written, whose reachable holders all answer with a
// structured not-found and which is merely skipped. The distinction is
// exactly transport error versus wire.StatusNotFound reply.
type DataLossError struct {
	Ino         uint64
	Stripe      uint32
	Have        int // shards obtained
	Need        int // K
	Unreachable int // holders that did not answer at all
	NotFound    int // reachable holders without the block
	Stripes     int // total stripes in this state for the recovery
}

// Error renders the loss: which stripe, the shard arithmetic, and how
// many stripes the recovery left in this state.
func (e *DataLossError) Error() string {
	return fmt.Sprintf(
		"ecfs: data loss: stripe %d/%d has %d of %d needed shards (%d holders unreachable, %d never written); %d stripe(s) affected",
		e.Ino, e.Stripe, e.Have, e.Need, e.Unreachable, e.NotFound, e.Stripes)
}

// Time is the stripe's synchronous rebuild latency: the parallel fetch
// fan-out completes at its slowest member, then replica replay and the
// replacement write extend the path.
func (s StripeRecovery) Time() time.Duration { return s.Fetch + s.Replay + s.Write }

// RecoveryResult summarizes a completed recovery.
type RecoveryResult struct {
	Blocks        int
	Bytes         int64
	ReplayedBytes int64 // pending updates replayed from replica logs
	Skipped       int   // never-fully-written stripes (< K shards, all misses structured not-found)
	// Lost counts stripes that could not be rebuilt because holders
	// were unreachable (< K shards with >= 1 transport error). When
	// Lost > 0, Recover also returns a *DataLossError describing the
	// first such stripe — alongside the result, so the caller still
	// sees what *was* rebuilt.
	Lost int
	// Rebound counts placements rewritten onto the replacement under a
	// bumped epoch (fresh-id recovery only; a same-id replacement
	// reuses the victim's placements unchanged).
	Rebound int
	// Promoted counts degraded-read hints that reordered the repair
	// queue (a hint for a stripe already rebuilt or in flight is not
	// counted).
	Promoted int
	// FetchErrors counts shard fetches that failed because the holder was
	// unreachable (transport error). Absent-block replies — the normal
	// state of a never-fully-written stripe — fall back too but are
	// counted only in the per-stripe Retries and NotFound.
	FetchErrors int
	Workers     int // stripe-rebuild parallelism used
	DrainTime   time.Duration
	// StripeTime sums the per-stripe rebuild latencies — the cost a
	// single sequential walker would experience.
	StripeTime time.Duration
	// VirtualTime is the modeled recovery makespan: the forced log drain
	// plus the rebuild window, where Workers stripes proceed in parallel
	// but the window can never beat the busiest resource
	// (operational-law bound, as in sim.Throughput).
	VirtualTime time.Duration
	Bandwidth   float64 // bytes/second over VirtualTime
	// Stripes holds per-stripe timing in deterministic
	// (Ino, Stripe, Idx) order.
	Stripes []StripeRecovery
}

// Recover rebuilds every block the failed node hosted onto the
// replacement OSD (which must already be registered under a live node
// id), using K surviving blocks per stripe. Logs are drained first —
// exactly the consistency requirement of §2.3.2 — and the drain cost is
// part of the measured recovery time, which is how pending logs depress
// recovery bandwidth for the deferred-recycle baselines (Fig. 8b).
//
// The replacement may carry the victim's node id (the classic
// drop-in-replacement flow) or a *fresh* id admitted via
// Cluster.AddOSD. With a fresh id, every rebuilt — and every placed but
// never-written — stripe is rebound at the MDS onto the replacement
// under a bumped placement epoch, and the new epoch is broadcast to the
// stripe's surviving members so they reject stale client placements
// (wire.StatusStaleEpoch) until those clients re-resolve.
//
// A stripe with fewer than K obtainable shards is classified by *why*
// the shards are missing: if every miss is a structured not-found reply
// from a reachable holder the stripe was never fully written and is
// skipped; if any holder was unreachable (transport error) the stripe
// is counted in RecoveryResult.Lost and Recover returns a
// *DataLossError alongside the (otherwise complete) result.
//
// The rebuild is pipelined: each stripe's K shard fetches fan out
// concurrently, and Options.RecoveryWorkers stripes rebuild in parallel.
// A shard fetch that fails — the holder is unreachable or answers with an
// error — falls back to the remaining live shard holders of the stripe
// instead of aborting the rebuild; a stripe is skipped (not failed) only
// when fewer than K shards are obtainable at all, which is also the
// legitimate state of a never-fully-written stripe. The reconstructed
// bytes are independent of the worker count: any K shards of an RS
// stripe decode to the same content.
func (c *Cluster) Recover(ctx context.Context, failed wire.NodeID, replacement *OSD) (*RecoveryResult, error) {
	return c.RecoverWith(ctx, failed, replacement, c.Opts.RecoveryWorkers)
}

// RecoverWith is Recover with an explicit worker count (<= 0 selects
// DefaultRecoveryWorkers), the knob the recovery benchmark sweeps. It
// wraps the deployment-agnostic RepairNode engine with this cluster's
// MDS, transport and virtual-time resources; while the rebuild runs,
// degraded client reads promote their stripe to the front of the repair
// queue (send wire.KRepairHint) so hot stripes repair first.
func (c *Cluster) RecoverWith(ctx context.Context, failed wire.NodeID, replacement *OSD, workers int) (*RecoveryResult, error) {
	o := c.repairOptions(workers, false)
	o.Down = c.deadSet(failed)
	return RepairNode(ctx, c.MDS, c.Tr.Caller(replacement.id), c.code, o, failed, replacement)
}

// RecoverFIFO is RecoverWith with degraded-read promotion disabled: the
// rebuild order is strictly the deterministic FIFO seed order. It is
// the baseline the repair benchmark compares prioritized repair
// against.
func (c *Cluster) RecoverFIFO(ctx context.Context, failed wire.NodeID, replacement *OSD, workers int) (*RecoveryResult, error) {
	o := c.repairOptions(workers, true)
	o.Down = c.deadSet(failed)
	return RepairNode(ctx, c.MDS, c.Tr.Caller(replacement.id), c.code, o, failed, replacement)
}

// repairOptions assembles the RepairOptions for this cluster's
// geometry, strategy and timing model. Down is filled by the caller
// (recovery forces the victim in; drain must not).
func (c *Cluster) repairOptions(workers int, fifo bool) RepairOptions {
	reps := 1
	if c.Opts.Strategy != nil && c.Opts.Strategy.DataLogReplicas > 0 {
		reps = c.Opts.Strategy.DataLogReplicas
	}
	return RepairOptions{
		K:               c.Opts.K,
		M:               c.Opts.M,
		Workers:         workers,
		DataLogReplicas: reps,
		Resources:       c.resources(),
		Flush:           c.Flush,
		NoPromote:       fifo,
	}
}

// recoverer is the per-recovery engine state shared by the worker pool.
// It is deployment-agnostic: everything it touches besides the
// in-process replacement OSD goes through the MDS handle and the RPC
// caller, so the same engine rebuilds over the in-process transport and
// real TCP sockets.
type recoverer struct {
	ctx      context.Context // repair-run context; checked at every engine RPC
	mds      *MDS
	caller   transport.RPC
	code     *erasure.Code
	k, m     int
	replicas int // replica-log copies to consult during replay
	failed   wire.NodeID
	repl     *OSD
	// down snapshots the failed set at recovery start. A node that dies
	// *during* the rebuild surfaces as fetch errors and is handled by
	// the per-stripe fallback.
	down map[wire.NodeID]bool
	// rebind is set when the replacement carries a different node id
	// than the victim: every handled stripe is then rebound at the MDS
	// under a bumped epoch and the survivors are notified.
	rebind bool
}

// rebindStripe moves a stripe's placement from the victim to the
// replacement at the MDS (bumping the epoch) and broadcasts the new
// epoch to the stripe's live members, so they start rejecting requests
// that carry the pre-recovery placement. The replacement learns the
// epoch directly — its handler may not be registered yet.
func (r *recoverer) rebindStripe(ref StripeRef) (wire.StripeLoc, bool, error) {
	nl, err := r.mds.Rebind(ref.Ino, ref.Stripe, r.failed, r.repl.id)
	if err != nil {
		if errors.Is(err, ErrAlreadyPlaced) {
			// The replacement already hosts a block of this stripe
			// (possible only through the minimum-size-pool window
			// where the victim stayed placeable). The stripe keeps
			// its old placement — degraded until another node can
			// take the slot — rather than failing the recovery.
			return wire.StripeLoc{}, false, nil
		}
		return wire.StripeLoc{}, false, fmt.Errorf("ecfs: rebind %d/%d: %w", ref.Ino, ref.Stripe, err)
	}
	r.repl.noteEpoch(ref.Ino, ref.Stripe, nl.Epoch)
	b := wire.BlockID{Ino: ref.Ino, Stripe: ref.Stripe}
	for _, node := range nl.Nodes {
		if node == r.repl.id || node == r.failed || r.down[node] {
			continue
		}
		// Best effort: a member that misses the broadcast simply keeps
		// accepting the old epoch, which is only a liveness hint; the
		// MDS remains the placement authority. Geometry rides along so
		// the member's strategy can refresh its stripe table and route
		// future deltas to the replacement.
		_, _ = r.caller.Call(r.ctx, node, &wire.Msg{
			Kind: wire.KEpochUpdate, Block: b, Loc: nl, K: uint8(r.k), M: uint8(r.m), Class: sim.ClassRebuild,
		})
	}
	return nl, true, nil
}

// rebuildStripe reconstructs one lost block: fetch K surviving shards
// (concurrently, with fallback to further shard holders on error),
// decode, replay the replica log for a data block, and write the result
// to the replacement.
func (r *recoverer) rebuildStripe(ref StripeRef) (StripeRecovery, error) {
	sr := StripeRecovery{Ino: ref.Ino, Stripe: ref.Stripe, Idx: ref.Idx}
	k := r.k
	n := k + r.m
	shards := make([][]byte, n)

	// Candidate shard holders in index order: every live node of the
	// stripe other than the one being rebuilt.
	cands := make([]int, 0, n-1)
	for idx := 0; idx < n; idx++ {
		node := ref.Loc.Nodes[idx]
		if node == r.failed || r.down[node] {
			continue
		}
		cands = append(cands, idx)
	}

	type fetched struct {
		idx         int
		data        []byte
		cost        time.Duration
		ok          bool
		unreachable bool
		notFound    bool
	}
	have := 0
	for have < k && len(cands) > 0 {
		wave := cands[:min(k-have, len(cands))]
		cands = cands[len(wave):]
		ch := make(chan fetched, len(wave))
		for _, idx := range wave {
			go func(idx int) {
				b := wire.BlockID{Ino: ref.Ino, Stripe: ref.Stripe, Idx: uint8(idx)}
				resp, err := r.caller.Call(r.ctx, ref.Loc.Nodes[idx], &wire.Msg{Kind: wire.KBlockFetch, Block: b, Class: sim.ClassRebuild})
				if err != nil || !resp.OK() {
					// Unreachable node or error reply: fall back to
					// another holder. A structured not-found is the
					// normal state of a never-fully-written stripe and
					// is classified separately from transport errors.
					ch <- fetched{idx: idx, unreachable: err != nil, notFound: err == nil && resp.IsNotFound()}
					return
				}
				ch <- fetched{idx: idx, data: resp.Data, cost: resp.Cost, ok: true}
			}(idx)
		}
		var waveMax time.Duration
		for range wave {
			f := <-ch
			if !f.ok {
				sr.Retries++
				if f.unreachable {
					sr.Unreachable++
				}
				if f.notFound {
					sr.NotFound++
				}
				continue
			}
			shards[f.idx] = f.data
			have++
			if f.cost > waveMax {
				waveMax = f.cost
			}
		}
		// Fetches within a wave run concurrently, so the wave costs its
		// slowest member; sequential fallback waves add up.
		sr.Fetch += waveMax
	}
	sr.Obtained = have
	if have < k {
		if sr.Unreachable > 0 || sr.Retries > sr.NotFound || have > 0 {
			// Evidence the stripe's data exists but cannot be
			// reassembled: a holder did not answer at all (transport
			// error), a reachable holder failed with something other
			// than a structured not-found, or some shards *were*
			// fetched yet fewer than K are obtainable — possible data
			// loss, surfaced to the caller as a *DataLossError.
			sr.Lost = true
		} else {
			// Every miss was a structured not-found from a reachable
			// holder and no shard exists anywhere: the stripe was
			// never fully written.
			sr.Skipped = true
		}
		// Either way there is no data to rebuild, but a fresh-id
		// replacement must still take over the placement slot:
		// otherwise the stripe keeps referencing the retired node id
		// forever, and even a full-stripe rewrite — the one legitimate
		// way to re-create a lost stripe — could never succeed.
		if r.rebind {
			_, ok, err := r.rebindStripe(ref)
			if err != nil {
				return sr, err
			}
			sr.Rebound = ok
		}
		return sr, nil
	}

	if err := r.code.Reconstruct(shards); err != nil {
		return sr, fmt.Errorf("ecfs: reconstruct %d/%d: %w", ref.Ino, ref.Stripe, err)
	}
	lost := wire.BlockID{Ino: ref.Ino, Stripe: ref.Stripe, Idx: ref.Idx}
	data := shards[ref.Idx]
	// A lost *data* block may have updates that were still buffered in
	// the dead node's DataLog. Its replica log on the next OSD(s) of the
	// stripe holds them (§4.2): replay on top of the reconstructed
	// content and push the resulting parity deltas.
	if int(ref.Idx) < k {
		replayed, cost, err := r.replayReplica(ref, lost, data)
		if err != nil {
			return sr, err
		}
		sr.Replayed = replayed
		sr.Replay = cost
	}
	sr.Write = r.repl.store.WriteFullClass(sim.ClassRebuild, lost, data, true)
	sr.Bytes = len(data)
	if r.rebind {
		_, ok, err := r.rebindStripe(ref)
		if err != nil {
			return sr, err
		}
		sr.Rebound = ok
	}
	return sr, nil
}

// replayReplica fetches the replica-log extents of a lost data block from
// the stripe's replica holders, applies them to the reconstructed
// content (in place), and forwards parity deltas for any bytes that
// changed. Methods without replica logs answer with an error or an empty
// payload and are skipped. It returns the replayed byte count and the
// synchronous cost of the replay RPCs.
func (r *recoverer) replayReplica(ref StripeRef, lost wire.BlockID, data []byte) (int64, time.Duration, error) {
	n := len(ref.Loc.Nodes)
	reps := r.replicas
	var (
		recs []update.ExtentRec
		cost time.Duration
	)
	for rep := 1; rep <= reps && rep < n; rep++ {
		node := ref.Loc.Nodes[(int(ref.Idx)+rep)%n]
		if node == r.failed || r.down[node] {
			continue
		}
		resp, err := r.caller.Call(r.ctx, node, &wire.Msg{Kind: wire.KReplicaFetch, Block: lost, Class: sim.ClassRebuild})
		if err != nil || !resp.OK() || len(resp.Data) == 0 {
			continue
		}
		cost += resp.Cost
		recs, err = update.DecodeExtents(resp.Data)
		if err != nil {
			return 0, cost, err
		}
		break
	}
	if len(recs) == 0 {
		return 0, cost, nil
	}
	var replayed int64
	for _, rec := range recs {
		end := int(rec.Off) + len(rec.Data)
		if end > len(data) {
			continue
		}
		delta := make([]byte, len(rec.Data))
		changed := false
		for i, b := range rec.Data {
			delta[i] = data[int(rec.Off)+i] ^ b
			if delta[i] != 0 {
				changed = true
			}
		}
		copy(data[rec.Off:], rec.Data)
		if !changed {
			continue // already recycled before the failure: idempotent
		}
		replayed += int64(len(rec.Data))
		for j := 0; j < r.m; j++ {
			pNode := ref.Loc.Nodes[r.k+j]
			if pNode == r.failed || r.down[pNode] {
				continue
			}
			pd := r.code.ParityDelta(j, int(ref.Idx), delta)
			pb := wire.BlockID{Ino: ref.Ino, Stripe: ref.Stripe, Idx: uint8(r.k + j)}
			resp, err := r.caller.Call(r.ctx, pNode, &wire.Msg{
				Kind: wire.KParityLogAdd, Block: pb, Off: rec.Off, Data: pd,
				K: uint8(r.k), M: uint8(r.m), Loc: ref.Loc, Class: sim.ClassRebuild,
			})
			if err != nil {
				return replayed, cost, err
			}
			if err := resp.Error(); err != nil {
				return replayed, cost, err
			}
			cost += resp.Cost
		}
	}
	return replayed, cost, nil
}
