package ecfs

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/blockstore"
	"repro/internal/device"
	"repro/internal/erasure"
	"repro/internal/transport"
	"repro/internal/update"
	"repro/internal/wire"
)

// OSD is one object storage device server: a device model, the block
// store it prices, and the update strategy instance bound to this node.
// OSD implements update.Env.
type OSD struct {
	id       wire.NodeID
	dev      *device.Device
	store    *blockstore.Store
	rpc      transport.RPC
	strategy update.Strategy
	codeKind erasure.MatrixKind

	codeMu sync.RWMutex
	codes  map[[2]int]*erasure.Code

	// epochs is the highest placement epoch this OSD has seen per
	// stripe, learned from the placements client requests carry and
	// from recovery's KEpochUpdate broadcast. Client-boundary requests
	// (KWriteBlock, KUpdate) carrying an older epoch are rejected with
	// a structured stale reply so the caller re-resolves at the MDS.
	epochMu sync.RWMutex
	epochs  map[stripeKey]uint64
}

// NewOSD builds an OSD and its strategy. The caller registers
// osd.Handler on the transport.
func NewOSD(id wire.NodeID, prof device.Profile, rpc transport.RPC, method string, cfg update.Config, kind erasure.MatrixKind) (*OSD, error) {
	dev := device.New(fmt.Sprintf("osd%d/%s", id, prof.Kind), prof)
	o := &OSD{
		id:       id,
		dev:      dev,
		store:    blockstore.New(dev),
		rpc:      rpc,
		codeKind: kind,
		codes:    make(map[[2]int]*erasure.Code),
		epochs:   make(map[stripeKey]uint64),
	}
	s, err := update.New(method, cfg, o)
	if err != nil {
		return nil, err
	}
	o.strategy = s
	return o, nil
}

// --- update.Env implementation ---

// ID returns the OSD's node id.
func (o *OSD) ID() wire.NodeID { return o.id }

// Store returns the block container.
func (o *OSD) Store() *blockstore.Store { return o.store }

// Dev returns the device model.
func (o *OSD) Dev() *device.Device { return o.dev }

// Call performs a synchronous RPC to a peer node.
func (o *OSD) Call(to wire.NodeID, msg *wire.Msg) (*wire.Resp, error) {
	return o.rpc.Call(to, msg)
}

// Code returns the cached RS code for a geometry.
func (o *OSD) Code(k, m int) (*erasure.Code, error) {
	key := [2]int{k, m}
	o.codeMu.RLock()
	c := o.codes[key]
	o.codeMu.RUnlock()
	if c != nil {
		return c, nil
	}
	o.codeMu.Lock()
	defer o.codeMu.Unlock()
	if c = o.codes[key]; c != nil {
		return c, nil
	}
	c, err := erasure.New(k, m, o.codeKind)
	if err != nil {
		return nil, err
	}
	o.codes[key] = c
	return c, nil
}

// Strategy exposes the bound update strategy (tests, metrics).
func (o *OSD) Strategy() update.Strategy { return o.strategy }

// noteEpoch records a placement epoch for a stripe if it is newer than
// the one already known.
func (o *OSD) noteEpoch(ino uint64, stripe uint32, epoch uint64) {
	if epoch == 0 {
		return
	}
	key := stripeKey{ino, stripe}
	o.epochMu.RLock()
	cur := o.epochs[key]
	o.epochMu.RUnlock()
	if epoch <= cur {
		return
	}
	o.epochMu.Lock()
	if epoch > o.epochs[key] {
		o.epochs[key] = epoch
	}
	o.epochMu.Unlock()
}

// checkEpoch validates a client-boundary request's placement epoch
// against the stripe epochs this OSD has learned. It returns a
// structured stale reply for an outdated placement, nil otherwise; a
// newer epoch in the request is learned in passing. Strategy-internal
// forwards are exempt (see the package comment).
func (o *OSD) checkEpoch(msg *wire.Msg) *wire.Resp {
	if len(msg.Loc.Nodes) == 0 {
		return nil
	}
	key := stripeKey{msg.Block.Ino, msg.Block.Stripe}
	o.epochMu.RLock()
	cur := o.epochs[key]
	o.epochMu.RUnlock()
	if msg.Loc.Epoch < cur {
		return wire.StaleEpochResp(msg.Block, msg.Loc.Epoch, cur)
	}
	o.noteEpoch(msg.Block.Ino, msg.Block.Stripe, msg.Loc.Epoch)
	return nil
}

// Handler dispatches inbound messages.
func (o *OSD) Handler(msg *wire.Msg) *wire.Resp {
	switch msg.Kind {
	case wire.KWriteBlock:
		// Normal write of a freshly encoded stripe member: a large
		// sequential write (§4 "Normal Write").
		if stale := o.checkEpoch(msg); stale != nil {
			return stale
		}
		cost := o.store.WriteFull(msg.Block, msg.Data, true)
		return &wire.Resp{Cost: cost}
	case wire.KUpdate:
		if stale := o.checkEpoch(msg); stale != nil {
			return stale
		}
		cost, err := o.strategy.Update(msg)
		if err != nil {
			return &wire.Resp{Err: err.Error()}
		}
		return &wire.Resp{Cost: cost}
	case wire.KRead:
		data, cost, err := o.strategy.Read(msg.Block, msg.Off, int(msg.Size))
		if err != nil {
			return &wire.Resp{Err: err.Error()}
		}
		return &wire.Resp{Data: data, Cost: cost}
	case wire.KEpochUpdate:
		o.noteEpoch(msg.Block.Ino, msg.Block.Stripe, msg.Loc.Epoch)
		return &wire.Resp{}
	case wire.KBlockFetch:
		size := o.store.Size(msg.Block)
		if size < 0 {
			return wire.NotFoundResp(o.id, msg.Block)
		}
		data, cost, err := o.store.ReadRange(msg.Block, 0, size, false)
		if err != nil {
			return &wire.Resp{Err: err.Error()}
		}
		return &wire.Resp{Data: data, Cost: cost}
	case wire.KBlockStore:
		cost := o.store.WriteFull(msg.Block, msg.Data, true)
		return &wire.Resp{Cost: cost}
	case wire.KDrainLogs:
		dead := decodeDeadList(msg.Data)
		if err := o.strategy.Drain(int(msg.Flag), dead); err != nil {
			return &wire.Resp{Err: err.Error()}
		}
		return &wire.Resp{}
	case wire.KPing:
		return &wire.Resp{Val: int64(o.id)}
	default:
		return o.strategy.Handle(msg)
	}
}

// Close stops the strategy's background workers.
func (o *OSD) Close() { o.strategy.Close() }

// DrainAll runs all drain phases locally (single-node tests).
func (o *OSD) DrainAll() error {
	for phase := 1; phase <= update.DrainPhases; phase++ {
		if err := o.strategy.Drain(phase, nil); err != nil {
			return err
		}
	}
	return nil
}

// encodeDeadList/decodeDeadList pack failed node ids into a byte payload
// for KDrainLogs.
func encodeDeadList(dead []wire.NodeID) []byte {
	out := make([]byte, 0, 4*len(dead))
	for _, d := range dead {
		out = append(out, byte(d), byte(d>>8), byte(d>>16), byte(d>>24))
	}
	return out
}

func decodeDeadList(b []byte) []wire.NodeID {
	out := make([]wire.NodeID, 0, len(b)/4)
	for i := 0; i+4 <= len(b); i += 4 {
		out = append(out, wire.NodeID(uint32(b[i])|uint32(b[i+1])<<8|uint32(b[i+2])<<16|uint32(b[i+3])<<24))
	}
	return out
}

// Heartbeat sends one liveness report to the MDS. From is set explicitly
// because the TCP transport, unlike the in-process one, does not stamp
// the sender.
func (o *OSD) Heartbeat() error {
	resp, err := o.rpc.Call(wire.MDSNode, &wire.Msg{Kind: wire.KMDSHeartbeat, From: o.id})
	if err != nil {
		return err
	}
	return resp.Error()
}

// StartHeartbeats sends periodic heartbeats until stop is closed (used
// by the TCP deployment; the in-process harness drives liveness
// directly).
func (o *OSD) StartHeartbeats(interval time.Duration, stop <-chan struct{}) {
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				_ = o.Heartbeat()
			}
		}
	}()
}
