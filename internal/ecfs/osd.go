package ecfs

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/blockstore"
	"repro/internal/device"
	"repro/internal/erasure"
	"repro/internal/logpool"
	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/update"
	"repro/internal/wire"
)

// OSD is one object storage device server: a device model, the block
// store it prices, and the update strategy instance bound to this node.
// OSD implements update.Env.
type OSD struct {
	id       wire.NodeID
	dev      *device.Device
	store    *blockstore.Store
	eng      *store.Engine // durable backing; nil for in-memory OSDs
	rpc      transport.RPC
	strategy update.Strategy
	codeKind erasure.MatrixKind

	closeOnce sync.Once

	codeMu sync.RWMutex
	codes  map[[2]int]*erasure.Code

	// epochs is the highest placement epoch this OSD has seen per
	// stripe, learned from the placements client requests carry and
	// from the repair engines' KEpochUpdate broadcast. Client-boundary
	// requests (KWriteBlock, KUpdate, KRead) carrying an older epoch
	// are rejected with a structured stale reply so the caller
	// re-resolves at the MDS.
	epochMu sync.RWMutex
	epochs  map[stripeKey]uint64

	// inflight counts client-boundary *mutations* (KWriteBlock,
	// KUpdate) currently executing per stripe. An epoch fence
	// (KEpochUpdate) waits for the stripe's count to reach zero after
	// bumping the epoch, so a drain's post-fence refetch observes every
	// update this OSD ever acknowledged for the stripe — requests are
	// registered *before* their epoch check, which makes the
	// fence-then-drain sequence airtight (see Handler).
	inflightMu   sync.Mutex
	inflightCond *sync.Cond
	inflight     map[stripeKey]int

	// overwrites records, per stripe, the highest placement epoch at
	// which a client full-block write (KWriteBlock) landed here. A
	// drain's post-fence re-store (KBlockStore with
	// wire.StoreUnlessOverwritten) is skipped when a client has already
	// overwritten the block at the current epoch — the old-epoch
	// content being carried over is superseded and must not clobber it.
	overwriteMu sync.Mutex
	overwrites  map[stripeKey]uint64

	// listenAddr is the advertised TCP listen address, reported on every
	// heartbeat so the MDS address map can serve it (wire.KResolveAddr).
	// Empty for in-process deployments.
	addrMu     sync.Mutex
	listenAddr string
}

// NewOSD builds an in-memory OSD and its strategy. The caller registers
// osd.Handler on the transport.
func NewOSD(id wire.NodeID, prof device.Profile, rpc transport.RPC, method string, cfg update.Config, kind erasure.MatrixKind) (*OSD, error) {
	return NewOSDAt(id, prof, rpc, method, cfg, kind, "")
}

// enginePersist adapts the storage engine to the log pools'
// PersistProvider: each pool's records land in its own named on-disk
// segment layer.
type enginePersist struct{ eng *store.Engine }

func (p enginePersist) Layer(name string) logpool.Persist { return p.eng.Layer(name) }

// NewOSDAt is NewOSD with a data directory. A non-empty dataDir selects
// the durable storage engine: block contents go through the WAL-backed
// page store, TSUE log records are persisted to on-disk segments, and
// reopening an existing directory recovers all of it — redo committed
// WAL records, re-seed placements and epochs, and replay surviving
// (unfolded) log records back into the strategy's pools — so a
// kill-restarted OSD rejoins with its local data intact.
func NewOSDAt(id wire.NodeID, prof device.Profile, rpc transport.RPC, method string, cfg update.Config, kind erasure.MatrixKind, dataDir string) (*OSD, error) {
	dev := device.New(fmt.Sprintf("osd%d/%s", id, prof.Kind), prof)
	o := &OSD{
		id:         id,
		dev:        dev,
		rpc:        rpc,
		codeKind:   kind,
		codes:      make(map[[2]int]*erasure.Code),
		epochs:     make(map[stripeKey]uint64),
		inflight:   make(map[stripeKey]int),
		overwrites: make(map[stripeKey]uint64),
	}
	o.inflightCond = sync.NewCond(&o.inflightMu)
	if dataDir != "" {
		eng, err := store.Open(dataDir, store.Options{})
		if err != nil {
			return nil, fmt.Errorf("ecfs: osd %d open %s: %w", id, dataDir, err)
		}
		o.eng = eng
		o.store = blockstore.NewDurable(dev, eng)
		cfg.Persist = enginePersist{eng}
	} else {
		o.store = blockstore.New(dev)
	}
	s, err := update.New(method, cfg, o)
	if err != nil {
		if o.eng != nil {
			o.eng.Close()
		}
		return nil, err
	}
	o.strategy = s
	if o.eng != nil {
		o.recoverLocal()
	}
	return o, nil
}

// recoverLocal finishes a durable OSD's open: seed the in-memory epoch
// table and the strategy's stripe placements from the engine's
// persisted state, then replay surviving log-segment records through
// the strategy's normal append path. Placements MUST be seeded first —
// a recycle triggered by a replayed append routes deltas through the
// stripe table, and an unknown stripe recycles to nothing.
func (o *OSD) recoverLocal() {
	o.eng.ForEachEpoch(func(ino uint64, stripe uint32, ep uint64) {
		o.epochs[stripeKey{ino, stripe}] = ep
	})
	if r, ok := o.strategy.(update.PlacementRefresher); ok {
		o.eng.ForEachPlacement(func(ino uint64, stripe uint32, p store.Placement) {
			r.RefreshPlacement(&wire.Msg{
				Block: wire.BlockID{Ino: ino, Stripe: stripe},
				K:     uint8(p.K), M: uint8(p.M),
				Loc: wire.StripeLoc{Nodes: p.Nodes, Epoch: p.Epoch},
			})
		})
	}
	if rp, ok := o.strategy.(update.Replayer); ok {
		o.eng.Replay(func(e store.SegEntry) {
			rp.ReplayPersisted(e.Layer, e.Block, e.Off, e.V, e.Data)
		})
	}
	// Replayed records were re-persisted under the new segment era by
	// the appends above; the previous era's files are now dead weight.
	o.eng.FinishReplay()
}

// Engine returns the durable storage engine, or nil for in-memory OSDs.
func (o *OSD) Engine() *store.Engine { return o.eng }

// --- update.Env implementation ---

// ID returns the OSD's node id.
func (o *OSD) ID() wire.NodeID { return o.id }

// Store returns the block container.
func (o *OSD) Store() *blockstore.Store { return o.store }

// Dev returns the device model.
func (o *OSD) Dev() *device.Device { return o.dev }

// Call performs a synchronous RPC to a peer node.
func (o *OSD) Call(ctx context.Context, to wire.NodeID, msg *wire.Msg) (*wire.Resp, error) {
	return o.rpc.Call(ctx, to, msg)
}

// CallBatch delivers a set of peer calls together. On a batch-capable
// transport (the TCP client) same-destination frames enter their
// connection's write queue in one flush; otherwise the calls simply run
// concurrently. Strategy fan-outs pick this up through the optional
// batchCaller extension of update.Env.
func (o *OSD) CallBatch(ctx context.Context, calls []*transport.BatchCall) {
	transport.Fanout(ctx, o.rpc, calls)
}

// Code returns the cached RS code for a geometry.
func (o *OSD) Code(k, m int) (*erasure.Code, error) {
	key := [2]int{k, m}
	o.codeMu.RLock()
	c := o.codes[key]
	o.codeMu.RUnlock()
	if c != nil {
		return c, nil
	}
	o.codeMu.Lock()
	defer o.codeMu.Unlock()
	if c = o.codes[key]; c != nil {
		return c, nil
	}
	c, err := erasure.New(k, m, o.codeKind)
	if err != nil {
		return nil, err
	}
	o.codes[key] = c
	return c, nil
}

// Strategy exposes the bound update strategy (tests, metrics).
func (o *OSD) Strategy() update.Strategy { return o.strategy }

// noteEpoch records a placement epoch for a stripe if it is newer than
// the one already known.
func (o *OSD) noteEpoch(ino uint64, stripe uint32, epoch uint64) {
	if epoch == 0 {
		return
	}
	key := stripeKey{ino, stripe}
	o.epochMu.RLock()
	cur := o.epochs[key]
	o.epochMu.RUnlock()
	if epoch <= cur {
		return
	}
	o.epochMu.Lock()
	if epoch > o.epochs[key] {
		o.epochs[key] = epoch
		if o.eng != nil {
			// Durable OSDs journal the epoch too: after a kill-restart
			// the resilver pass compares these against the MDS to decide
			// which local stripes are still current.
			o.eng.NoteEpoch(ino, stripe, epoch)
		}
	}
	o.epochMu.Unlock()
}

// persistPlacement records a stripe placement in the storage engine so
// a reopened OSD can re-seed its strategy's stripe table before log
// replay. In-memory OSDs and messages without placements are no-ops.
func (o *OSD) persistPlacement(msg *wire.Msg) {
	if o.eng == nil || len(msg.Loc.Nodes) == 0 {
		return
	}
	k, m := int(msg.K), int(msg.M)
	if k == 0 {
		// Epoch fences ship a placement without geometry; keep the
		// recorded K/M if we have one, otherwise there is nothing useful
		// to remember yet.
		p, ok := o.eng.PlacementOf(msg.Block.Ino, msg.Block.Stripe)
		if !ok {
			return
		}
		k, m = p.K, p.M
	}
	o.eng.RememberPlacement(msg.Block.Ino, msg.Block.Stripe, store.Placement{
		K: k, M: m, Epoch: msg.Loc.Epoch,
		Nodes: append([]wire.NodeID(nil), msg.Loc.Nodes...),
	})
}

// beginMutation registers an in-flight client-boundary mutation for the
// stripe. It MUST be called before the request's epoch check: a fence
// that bumps the epoch and then waits for quiescence is thereby
// guaranteed to either see this request's registration or have it
// rejected as stale.
func (o *OSD) beginMutation(key stripeKey) {
	o.inflightMu.Lock()
	o.inflight[key]++
	o.inflightMu.Unlock()
}

func (o *OSD) endMutation(key stripeKey) {
	o.inflightMu.Lock()
	if o.inflight[key]--; o.inflight[key] <= 0 {
		delete(o.inflight, key)
		o.inflightCond.Broadcast()
	}
	o.inflightMu.Unlock()
}

// noteOverwrite records a client full-block write at the given epoch,
// so a drain's guarded re-store knows its carried-over content is
// superseded.
func (o *OSD) noteOverwrite(key stripeKey, epoch uint64) {
	o.overwriteMu.Lock()
	if epoch > o.overwrites[key] {
		o.overwrites[key] = epoch
	}
	o.overwriteMu.Unlock()
}

// awaitQuiescent blocks until no client-boundary mutation is executing
// for the stripe. Called by the KEpochUpdate fence after the epoch bump,
// so every mutation this OSD ever acknowledged for the stripe has fully
// landed when the fence reply goes out.
func (o *OSD) awaitQuiescent(key stripeKey) {
	o.inflightMu.Lock()
	for o.inflight[key] > 0 {
		o.inflightCond.Wait()
	}
	o.inflightMu.Unlock()
}

// checkEpoch validates a client-boundary request's placement epoch
// against the stripe epochs this OSD has learned. It returns a
// structured stale reply for an outdated placement, nil otherwise; a
// newer epoch in the request is learned in passing. Strategy-internal
// forwards are exempt (see the package comment).
func (o *OSD) checkEpoch(msg *wire.Msg) *wire.Resp {
	if len(msg.Loc.Nodes) == 0 {
		return nil
	}
	key := stripeKey{msg.Block.Ino, msg.Block.Stripe}
	o.epochMu.RLock()
	cur := o.epochs[key]
	o.epochMu.RUnlock()
	if msg.Loc.Epoch < cur {
		return wire.StaleEpochResp(msg.Block, msg.Loc.Epoch, cur)
	}
	o.noteEpoch(msg.Block.Ino, msg.Block.Stripe, msg.Loc.Epoch)
	o.persistPlacement(msg)
	return nil
}

// Handler dispatches inbound messages. ctx is the caller's context on
// the in-process transport (cancellation propagates into strategy
// forwards) and a background context on TCP.
func (o *OSD) Handler(ctx context.Context, msg *wire.Msg) *wire.Resp {
	switch msg.Kind {
	case wire.KWriteBlock:
		// Normal write of a freshly encoded stripe member: a large
		// sequential write (§4 "Normal Write"). Registered in-flight
		// before the epoch check so an epoch fence can wait it out.
		key := stripeKey{msg.Block.Ino, msg.Block.Stripe}
		o.beginMutation(key)
		defer o.endMutation(key)
		if stale := o.checkEpoch(msg); stale != nil {
			return stale
		}
		o.noteOverwrite(key, msg.Loc.Epoch)
		cost := o.store.WriteFullClass(msg.TrafficClass(), msg.Block, msg.Data, true)
		return &wire.Resp{Cost: cost}
	case wire.KUpdate:
		key := stripeKey{msg.Block.Ino, msg.Block.Stripe}
		o.beginMutation(key)
		defer o.endMutation(key)
		if stale := o.checkEpoch(msg); stale != nil {
			return stale
		}
		cost, err := o.strategy.Update(ctx, msg)
		if err != nil {
			return wire.ErrorResp(err)
		}
		return &wire.Resp{Cost: cost}
	case wire.KRead:
		// Reads are epoch-checked too (when the client ships its cached
		// placement): after a repair or drain moves the block, a stale
		// client must re-resolve instead of reading a retired copy
		// forever — the per-stripe cutover the repair queue relies on.
		if stale := o.checkEpoch(msg); stale != nil {
			return stale
		}
		data, cost, err := o.strategy.Read(msg.Block, msg.Off, int(msg.Size))
		if err != nil {
			return wire.ErrorResp(err)
		}
		return &wire.Resp{Data: data, Cost: cost}
	case wire.KEpochUpdate:
		o.noteEpoch(msg.Block.Ino, msg.Block.Stripe, msg.Loc.Epoch)
		o.persistPlacement(msg)
		// Fence semantics: once the epoch is bumped, wait for any
		// mutation that passed the old epoch check to finish. When this
		// reply goes out, the stripe's client-visible state on this OSD
		// is final — the drain engine's post-fence refetch depends on
		// it.
		o.awaitQuiescent(stripeKey{msg.Block.Ino, msg.Block.Stripe})
		// Refresh the strategy's cached stripe placement as well, so
		// asynchronous recycle paths route deltas to the new member.
		if r, ok := o.strategy.(update.PlacementRefresher); ok {
			r.RefreshPlacement(msg)
		}
		return &wire.Resp{}
	case wire.KBlockFetch:
		size := o.store.Size(msg.Block)
		if size < 0 {
			return wire.NotFoundResp(o.id, msg.Block)
		}
		if msg.Flag&wire.FetchReadThrough != 0 {
			// Drain sources a live node: serve base content plus any
			// pending data-log overlays (read-your-writes), so the
			// migrated copy carries updates still buffered here.
			data, cost, err := o.strategy.Read(msg.Block, 0, size)
			if err != nil {
				return wire.ErrorResp(err)
			}
			return &wire.Resp{Data: data, Cost: cost}
		}
		data, cost, err := o.store.ReadRangeClass(msg.TrafficClass(), msg.Block, 0, size, false)
		if err != nil {
			return wire.ErrorResp(err)
		}
		return &wire.Resp{Data: data, Cost: cost}
	case wire.KBlockStore:
		if msg.Flag&wire.StoreUnlessOverwritten != 0 {
			// A drain carrying over fenced source content: a client
			// full write at the current epoch supersedes it.
			key := stripeKey{msg.Block.Ino, msg.Block.Stripe}
			o.overwriteMu.Lock()
			superseded := o.overwrites[key] >= msg.Loc.Epoch && msg.Loc.Epoch > 0
			o.overwriteMu.Unlock()
			if superseded {
				return &wire.Resp{Val: 1} // acknowledged, intentionally not applied
			}
		}
		cost := o.store.WriteFullClass(msg.TrafficClass(), msg.Block, msg.Data, true)
		return &wire.Resp{Cost: cost}
	case wire.KDrainLogs:
		dead := decodeDeadList(msg.Data)
		if err := o.strategy.Drain(ctx, int(msg.Flag), dead); err != nil {
			return wire.ErrorResp(err)
		}
		return &wire.Resp{}
	case wire.KPing:
		return &wire.Resp{Val: int64(o.id)}
	default:
		return o.strategy.Handle(ctx, msg)
	}
}

// Close stops the strategy's background workers and, for durable OSDs,
// checkpoints and closes the storage engine. Idempotent: a crashed OSD
// being replaced by Reinstate may be closed again harmlessly.
func (o *OSD) Close() {
	o.closeOnce.Do(func() {
		o.strategy.Close()
		if o.eng != nil {
			o.eng.Close()
		}
	})
}

// Crash simulates a kill -9: the storage engine stops persisting
// anything beyond what already hit the disk, then the OSD shuts down.
// Whatever the WAL and segment files contain at this instant is exactly
// what a subsequent NewOSDAt on the same directory recovers.
func (o *OSD) Crash() {
	if o.eng != nil {
		o.eng.Crash()
	}
	o.Close()
}

// DrainAll runs all drain phases locally (single-node tests).
func (o *OSD) DrainAll() error {
	for phase := 1; phase <= update.DrainPhases; phase++ {
		if err := o.strategy.Drain(context.Background(), phase, nil); err != nil {
			return err
		}
	}
	return nil
}

// encodeDeadList/decodeDeadList pack failed node ids into a byte payload
// for KDrainLogs.
func encodeDeadList(dead []wire.NodeID) []byte {
	out := make([]byte, 0, 4*len(dead))
	for _, d := range dead {
		out = append(out, byte(d), byte(d>>8), byte(d>>16), byte(d>>24))
	}
	return out
}

func decodeDeadList(b []byte) []wire.NodeID {
	out := make([]wire.NodeID, 0, len(b)/4)
	for i := 0; i+4 <= len(b); i += 4 {
		out = append(out, wire.NodeID(uint32(b[i])|uint32(b[i+1])<<8|uint32(b[i+2])<<16|uint32(b[i+3])<<24))
	}
	return out
}

// SetListenAddr records the address this OSD's TCP server is reachable
// at. Subsequent heartbeats carry it, which is how the MDS's address map
// (wire.KResolveAddr) learns where every node lives — the self-discovery
// that lets clients follow replacement nodes with no manual SetAddr.
func (o *OSD) SetListenAddr(addr string) {
	o.addrMu.Lock()
	o.listenAddr = addr
	o.addrMu.Unlock()
}

// ListenAddr returns the advertised listen address ("" when in-process).
func (o *OSD) ListenAddr() string {
	o.addrMu.Lock()
	defer o.addrMu.Unlock()
	return o.listenAddr
}

// Heartbeat sends one liveness report to the MDS, carrying the OSD's
// advertised listen address (if any) so the MDS address map stays
// current. From is set explicitly because the TCP transport, unlike the
// in-process one, does not stamp the sender.
func (o *OSD) Heartbeat(ctx context.Context) error {
	resp, err := o.rpc.Call(ctx, wire.MDSNode, &wire.Msg{Kind: wire.KMDSHeartbeat, From: o.id, Name: o.ListenAddr()})
	if err != nil {
		return err
	}
	return resp.Error()
}

// StartHeartbeats sends periodic heartbeats until stop is closed (used
// by the TCP deployment; the in-process harness drives liveness
// directly).
func (o *OSD) StartHeartbeats(interval time.Duration, stop <-chan struct{}) {
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				_ = o.Heartbeat(context.Background())
			}
		}
	}()
}
