// Package ecfs is the erasure-coded cluster file system of the paper
// (§4, Fig. 4): a metadata server (MDS) tracking files, stripe placement
// and node liveness; object storage device servers (OSDs) hosting data
// and parity blocks behind a pluggable update strategy; and a client that
// encodes writes, routes updates, and reads with read-your-writes
// semantics. Recovery reconstructs a failed OSD's blocks from stripe
// survivors after logs are drained.
//
// # Metadata scale: shards, the reverse index, and placement epochs
//
// The MDS namespace is partitioned into independently locked shards
// (names and inodes hash to a shard), so metadata operations on
// different files never contend. Alongside the namespace it maintains a
// node→stripe reverse index, updated incrementally whenever a placement
// is created or rebound; StripesOn — the recovery work list — reads one
// node's bucket instead of scanning the whole namespace, so its cost is
// proportional to the blocks the node actually hosts, not to the total
// file count.
//
// Every placement carries an epoch (wire.StripeLoc.Epoch). The
// invariants are:
//
//   - A placement's Nodes slice is immutable once published; rebinding
//     a stripe onto a replacement node installs a fresh StripeLoc with
//     Epoch+1. Cached copies therefore never mutate under a reader.
//   - The MDS is the epoch authority. OSDs learn epochs from the
//     placements that reach them (writes, updates, recovery's
//     KEpochUpdate broadcast) and reject client requests carrying an
//     older epoch with a structured wire.StatusStaleEpoch reply, which
//     makes a client with a stale cache re-resolve and retry instead of
//     silently writing through a dead placement.
//   - Epoch checks happen only at the client→OSD boundary (KWriteBlock,
//     KUpdate). Strategy-internal forwards inherit the already-validated
//     placement of the triggering request, so a mid-flight epoch bump
//     cannot split one update across two placements.
package ecfs

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"repro/internal/mdslog"
	"repro/internal/wire"
)

// DefaultMDSShards is the namespace shard count used when none is
// configured. Shard counts are rounded up to a power of two.
const DefaultMDSShards = 16

// MDS is the metadata server: namespace, placement, liveness, and the
// node→stripe reverse index that feeds recovery.
type MDS struct {
	k, m int
	// blockSize is the cluster's block size, served to dialing clients
	// through wire.KResolveAddr (0 when never configured — in-process
	// clusters set it from Options, cmd/ecfsd from its -block flag).
	blockSize int

	// topoMu guards the OSD placement pool, which grows when a
	// replacement joins under a fresh node id (AddNode).
	topoMu sync.RWMutex
	osds   []wire.NodeID

	// The namespace is sharded two ways: names hash to a nameShard
	// (name → ino) and inodes hash to an inoShard (ino → placements).
	// Lock order: nameShard.mu → inoShard.mu → revMu → nodeIndex.mu →
	// topoMu; no path acquires them in the reverse direction.
	//
	// Name hashing is deliberately deterministic (FNV-1a, not a
	// per-instance seeded hash): the shard choice decides which ino
	// range a file allocates from, and inos feed stripe placement —
	// identical clusters must place identically for the harness's
	// determinism guarantees (and the recovery tests) to hold.
	nameShards []*nameShard
	inoShards  []*inoShard

	// rev is the reverse index: for each node, the set of (ino, stripe)
	// whose placement puts a block there, with the block index. It is
	// maintained incrementally on placement creation and rebind, under
	// the owning inoShard's lock, so StripesOn never scans the
	// namespace.
	revMu sync.RWMutex
	rev   map[wire.NodeID]*nodeIndex

	// liveMu guards liveness state, which is touched by heartbeats on
	// every node and must not contend with namespace traffic. addrs is
	// the node address map heartbeats populate (TCP deployments only):
	// the wire.KResolveAddr answer that makes clients self-discovering.
	// addrAt stamps each entry's freshness and addrTTL ages entries out
	// of the served map once a node stops heartbeating (see SetAddrTTL).
	liveMu  sync.Mutex
	beats   map[wire.NodeID]time.Time
	dead    map[wire.NodeID]bool
	addrs   map[wire.NodeID]string
	addrAt  map[wire.NodeID]time.Time
	addrTTL time.Duration

	// sched is the cluster-level repair scheduler every RepairNode /
	// MigrateNode run registers its queue with. wire.KRepairHint
	// messages promote stripes across all active queues through it;
	// wire.KRepairStatus reports their combined pending depth. Created
	// lazily so a bare MDS (TCP deployment) gets an uncapped scheduler
	// with no virtual-time resources.
	schedMu sync.Mutex
	sched   *RepairScheduler

	// draining tracks nodes with a drain in progress. The state
	// distinguishes a drain actively executing (drainActive) from one
	// interrupted by cancellation (drainInterrupted): an interrupted
	// node stays marked so a second DrainWith resumes without the node
	// transiting back through the placement pool, while a running one
	// rejects a concurrent BeginDrain outright.
	drainMu  sync.Mutex
	draining map[wire.NodeID]drainState

	// log is the mutation op log of a durable MDS (nil in-memory — the
	// default, and the unchanged hot path). Mutators hold gate in shared
	// mode across append+apply; Checkpoint holds it exclusively so the
	// snapshot it serializes matches the log exactly. Set once before
	// the MDS is shared. See mds_durable.go.
	gate sync.RWMutex
	log  *mdslog.Log
}

// drainState is a node's position in the drain lifecycle: absent from
// the draining map (zero value) means no drain, drainActive a
// MigrateNode run currently executing, drainInterrupted a cancelled
// run awaiting resume or AbortDrain.
type drainState uint8

const (
	drainNone drainState = iota
	drainActive
	drainInterrupted
)

type nameShard struct {
	mu    sync.Mutex
	files map[string]uint64
	// Inode allocation is per-shard: shard i of n hands out inos
	// i+1, i+1+n, i+1+2n, ... under its own lock. The ranges are
	// disjoint by construction, so Create performs no cross-shard
	// write at all — the last shared write in the create path
	// (formerly one global atomic counter) is gone.
	idx  uint64 // this shard's position
	step uint64 // total shard count
	next uint64 // allocations performed by this shard
}

type inoShard struct {
	mu   sync.RWMutex
	meta map[uint64]*fileMeta
}

type fileMeta struct {
	name    string
	stripes map[uint32]wire.StripeLoc
}

// stripeKey addresses one placed stripe in the reverse index.
type stripeKey struct {
	ino    uint64
	stripe uint32
}

// nodeIndex is one node's bucket of the reverse index: every stripe
// placing a block on the node, keyed by (ino, stripe) with the block
// index as value (placements use distinct nodes, so a node hosts at
// most one block of a stripe).
type nodeIndex struct {
	mu   sync.Mutex
	refs map[stripeKey]uint8
}

// NewMDS creates a metadata server for a cluster of the given OSDs and
// stripe geometry with DefaultMDSShards namespace shards. It requires
// len(osds) >= k+m so every stripe can place its blocks on distinct
// nodes.
func NewMDS(osds []wire.NodeID, k, m int) (*MDS, error) {
	return NewMDSWithShards(osds, k, m, DefaultMDSShards)
}

// NewMDSWithShards is NewMDS with an explicit namespace shard count
// (rounded up to a power of two; values < 1 select one shard). The
// shard count is the concurrency knob the mds-scale benchmark sweeps.
func NewMDSWithShards(osds []wire.NodeID, k, m, shards int) (*MDS, error) {
	if k < 1 || m < 1 {
		return nil, fmt.Errorf("ecfs: invalid geometry RS(%d,%d)", k, m)
	}
	if len(osds) < k+m {
		return nil, fmt.Errorf("ecfs: %d OSDs cannot host RS(%d,%d) stripes", len(osds), k, m)
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	md := &MDS{
		k: k, m: m,
		osds:       append([]wire.NodeID(nil), osds...),
		nameShards: make([]*nameShard, n),
		inoShards:  make([]*inoShard, n),
		rev:        make(map[wire.NodeID]*nodeIndex, len(osds)),
		beats:      make(map[wire.NodeID]time.Time),
		dead:       make(map[wire.NodeID]bool),
		addrs:      make(map[wire.NodeID]string),
		addrAt:     make(map[wire.NodeID]time.Time),
		draining:   make(map[wire.NodeID]drainState),
	}
	for i := 0; i < n; i++ {
		md.nameShards[i] = &nameShard{files: make(map[string]uint64), idx: uint64(i), step: uint64(n)}
		md.inoShards[i] = &inoShard{meta: make(map[uint64]*fileMeta)}
	}
	for _, id := range osds {
		md.rev[id] = &nodeIndex{refs: make(map[stripeKey]uint8)}
	}
	return md, nil
}

// Geometry returns the cluster's (K, M).
func (m *MDS) Geometry() (int, int) { return m.k, m.m }

// SetBlockSize records the cluster's block size for address-map replies
// (wire.KResolveAddr), so dialing clients self-discover the full cluster
// configuration. Call before serving.
func (m *MDS) SetBlockSize(n int) { m.blockSize = n }

// BlockSize returns the configured block size (0 when unset).
func (m *MDS) BlockSize() int { return m.blockSize }

// RecordAddr stores a node's advertised listen address — normally
// learned from the address heartbeats carry, and set directly for the
// MDS's own listener by cmd/ecfsd.
func (m *MDS) RecordAddr(id wire.NodeID, addr string) {
	if addr == "" {
		return
	}
	m.mutateLock()
	defer m.mutateUnlock()
	m.liveMu.Lock()
	defer m.liveMu.Unlock()
	// Logged on change only — freshness stamps are soft state a
	// restarted MDS re-learns from heartbeats.
	if m.addrs[id] != addr {
		if err := m.logAppend(mdslog.Record{Kind: mdslog.KindAddr, Node: id, Name: addr}); err != nil {
			return
		}
	}
	m.addrs[id] = addr
	m.addrAt[id] = time.Now()
}

// SetAddrTTL ages the served address map: an entry whose owner has
// neither heartbeaten nor re-announced within d is dropped from AddrMap
// (and pruned), so clients re-resolving a node stop being handed the
// last known address of a long-dead process and fall straight through
// to "unknown node" handling instead of redialing it. Tie d to the
// deployment's liveness timeout (a few heartbeat intervals; cmd/ecfsd
// wires -addr-ttl). 0 — the default — disables aging.
func (m *MDS) SetAddrTTL(d time.Duration) {
	m.liveMu.Lock()
	m.addrTTL = d
	m.liveMu.Unlock()
}

// AddrMap snapshots the node address map heartbeats have populated,
// dropping entries older than the configured address TTL.
func (m *MDS) AddrMap() map[wire.NodeID]string {
	m.liveMu.Lock()
	defer m.liveMu.Unlock()
	now := time.Now()
	out := make(map[wire.NodeID]string, len(m.addrs))
	for id, a := range m.addrs {
		if m.addrTTL > 0 {
			fresh := m.addrAt[id]
			if beat, ok := m.beats[id]; ok && beat.After(fresh) {
				fresh = beat
			}
			if now.Sub(fresh) > m.addrTTL {
				// Aged out: prune so the map cannot grow with the
				// addresses of nodes that will never return.
				delete(m.addrs, id)
				delete(m.addrAt, id)
				continue
			}
		}
		out[id] = a
	}
	return out
}

// Shards returns the namespace shard count.
func (m *MDS) Shards() int { return len(m.inoShards) }

func (m *MDS) nameShard(name string) *nameShard {
	h := fnv.New64a()
	h.Write([]byte(name))
	return m.nameShards[h.Sum64()&uint64(len(m.nameShards)-1)]
}

func (m *MDS) inoShard(ino uint64) *inoShard {
	// Fibonacci hashing spreads sequential inodes across shards.
	h := ino * 0x9E3779B97F4A7C15
	return m.inoShards[(h>>32)&uint64(len(m.inoShards)-1)]
}

// Create registers a file and returns its inode number; creating an
// existing name returns the existing ino (open-or-create semantics).
// On a durable MDS the binding is logged before it is applied or
// acknowledged; the error is the op log failing (fail-stop).
func (m *MDS) Create(name string) (uint64, error) {
	m.mutateLock()
	defer m.mutateUnlock()
	ns := m.nameShard(name)
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if ino, ok := ns.files[name]; ok {
		return ino, nil
	}
	// Allocate from this shard's disjoint ino range (no shared state).
	ino := ns.next*ns.step + ns.idx + 1
	if err := m.logAppend(mdslog.Record{Kind: mdslog.KindCreate, Ino: ino, Name: name}); err != nil {
		return 0, err
	}
	ns.next++
	m.installFile(ns, name, ino)
	return ino, nil
}

// installFile publishes a name → ino binding; the caller holds the name
// shard's lock and has allocated (or replayed) the ino.
func (m *MDS) installFile(ns *nameShard, name string, ino uint64) {
	is := m.inoShard(ino)
	is.mu.Lock()
	is.meta[ino] = &fileMeta{name: name, stripes: make(map[uint32]wire.StripeLoc)}
	is.mu.Unlock()
	ns.files[name] = ino
}

// Lookup resolves (ino, stripe) to its placement, creating the placement
// deterministically on first touch and registering it in the reverse
// index.
func (m *MDS) Lookup(ino uint64, stripe uint32) (wire.StripeLoc, error) {
	is := m.inoShard(ino)
	is.mu.RLock()
	fm := is.meta[ino]
	if fm != nil {
		if loc, ok := fm.stripes[stripe]; ok {
			is.mu.RUnlock()
			return loc, nil
		}
	}
	is.mu.RUnlock()
	if fm == nil {
		return wire.StripeLoc{}, fmt.Errorf("ecfs: unknown ino %d", ino)
	}

	// First-touch bind: a mutation, so it takes the durability gate and
	// logs before publishing (the fast path above stays log-free).
	m.mutateLock()
	defer m.mutateUnlock()
	is.mu.Lock()
	defer is.mu.Unlock()
	fm = is.meta[ino]
	if fm == nil {
		return wire.StripeLoc{}, fmt.Errorf("ecfs: unknown ino %d", ino)
	}
	if loc, ok := fm.stripes[stripe]; ok {
		return loc, nil
	}
	loc := m.place(ino, stripe)
	if err := m.logAppend(mdslog.Record{Kind: mdslog.KindBind, Ino: ino, Stripe: stripe, Epoch: loc.Epoch, Nodes: loc.Nodes}); err != nil {
		return wire.StripeLoc{}, err
	}
	fm.stripes[stripe] = loc
	for idx, node := range loc.Nodes {
		m.indexBlock(node, ino, stripe, uint8(idx))
	}
	return loc, nil
}

// place spreads the K+M blocks of a stripe across distinct OSDs,
// rotating the starting node per (ino, stripe) so load balances.
func (m *MDS) place(ino uint64, stripe uint32) wire.StripeLoc {
	m.topoMu.RLock()
	osds := m.osds
	m.topoMu.RUnlock()
	n := len(osds)
	start := int((ino*2654435761 + uint64(stripe)*40503) % uint64(n))
	nodes := make([]wire.NodeID, m.k+m.m)
	for i := range nodes {
		nodes[i] = osds[(start+i)%n]
	}
	return wire.StripeLoc{Nodes: nodes}
}

// nodeIndexFor returns the reverse-index bucket of a node, creating it
// for nodes that joined after construction (replacements).
func (m *MDS) nodeIndexFor(id wire.NodeID) *nodeIndex {
	m.revMu.RLock()
	ni := m.rev[id]
	m.revMu.RUnlock()
	if ni != nil {
		return ni
	}
	m.revMu.Lock()
	defer m.revMu.Unlock()
	if ni = m.rev[id]; ni == nil {
		ni = &nodeIndex{refs: make(map[stripeKey]uint8)}
		m.rev[id] = ni
	}
	return ni
}

func (m *MDS) indexBlock(node wire.NodeID, ino uint64, stripe uint32, idx uint8) {
	ni := m.nodeIndexFor(node)
	ni.mu.Lock()
	ni.refs[stripeKey{ino, stripe}] = idx
	ni.mu.Unlock()
}

func (m *MDS) unindexBlock(node wire.NodeID, ino uint64, stripe uint32) {
	ni := m.nodeIndexFor(node)
	ni.mu.Lock()
	delete(ni.refs, stripeKey{ino, stripe})
	ni.mu.Unlock()
}

// ErrAlreadyPlaced is wrapped by Rebind when the target node already
// hosts a block of the stripe — placing two blocks on one node would
// halve the stripe's fault tolerance. Callers that rebind in bulk
// (recovery) skip such stripes rather than failing outright.
var ErrAlreadyPlaced = errors.New("node already in placement")

// Rebind moves one block of a placed stripe from node `from` to node
// `to`, bumping the placement epoch — the recovery path that lets a
// stripe be rebuilt onto a replacement with a *different* node id. The
// new placement is returned; the old StripeLoc value is left untouched
// for holders of cached copies, which will be rejected by epoch-aware
// OSDs and re-resolve.
func (m *MDS) Rebind(ino uint64, stripe uint32, from, to wire.NodeID) (wire.StripeLoc, error) {
	m.mutateLock()
	defer m.mutateUnlock()
	is := m.inoShard(ino)
	is.mu.Lock()
	defer is.mu.Unlock()
	fm := is.meta[ino]
	if fm == nil {
		return wire.StripeLoc{}, fmt.Errorf("ecfs: rebind: unknown ino %d", ino)
	}
	loc, ok := fm.stripes[stripe]
	if !ok {
		return wire.StripeLoc{}, fmt.Errorf("ecfs: rebind: stripe %d/%d not placed", ino, stripe)
	}
	idx := -1
	for i, n := range loc.Nodes {
		if n == from {
			idx = i
		}
		if n == to {
			// Refuse to double-place: a node may host at most one
			// block of a stripe (the reverse index and the stripe's
			// fault tolerance both depend on it).
			return wire.StripeLoc{}, fmt.Errorf("ecfs: rebind: node %d already in placement of %d/%d: %w", to, ino, stripe, ErrAlreadyPlaced)
		}
	}
	if idx < 0 {
		return wire.StripeLoc{}, fmt.Errorf("ecfs: rebind: node %d not in placement of %d/%d", from, ino, stripe)
	}
	nodes := append([]wire.NodeID(nil), loc.Nodes...)
	nodes[idx] = to
	nl := wire.StripeLoc{Nodes: nodes, Epoch: loc.Epoch + 1}
	if err := m.logAppend(mdslog.Record{Kind: mdslog.KindRebind, Ino: ino, Stripe: stripe, Epoch: nl.Epoch, Idx: uint8(idx), Node: from, To: to}); err != nil {
		return wire.StripeLoc{}, err
	}
	fm.stripes[stripe] = nl
	m.unindexBlock(from, ino, stripe)
	m.indexBlock(to, ino, stripe, uint8(idx))
	return nl, nil
}

// AddNode admits a node to the placement pool (no-op if present) and
// provisions its reverse-index bucket — how a replacement OSD with a
// fresh id becomes a rebind and placement target. The admission is
// logged only when the node was actually absent.
func (m *MDS) AddNode(id wire.NodeID) {
	m.mutateLock()
	defer m.mutateUnlock()
	m.topoMu.Lock()
	if !poolContains(m.osds, id) {
		if err := m.logAppend(mdslog.Record{Kind: mdslog.KindAddNode, Node: id}); err != nil {
			m.topoMu.Unlock()
			return // fail-stop: not applied, not acknowledged
		}
		m.poolInsertLocked(id)
	}
	m.topoMu.Unlock()
	m.nodeIndexFor(id)
}

// RemoveNode evicts a node from the placement pool so no *new* stripe
// is placed on it — used on node failure and when recovery permanently
// replaces a victim with a fresh node id. Existing placements are
// untouched; recovery rebinds them stripe by stripe. A pool already at
// its K+M minimum is left intact (a stripe must remain placeable), so
// on a minimum-size cluster a dead node stays placeable until a
// replacement joins. The eviction is logged only when the floor check
// allowed it, so replay removes unconditionally.
func (m *MDS) RemoveNode(id wire.NodeID) {
	m.mutateLock()
	defer m.mutateUnlock()
	m.topoMu.Lock()
	defer m.topoMu.Unlock()
	m.removeNodeTopoLocked(id)
}

// removeNodeTopoLocked is RemoveNode's logged body; the caller holds
// topoMu (and the mutation gate).
func (m *MDS) removeNodeTopoLocked(id wire.NodeID) {
	if len(m.osds) <= m.k+m.m {
		return // keep enough nodes to place a stripe
	}
	if !poolContains(m.osds, id) {
		return
	}
	if err := m.logAppend(mdslog.Record{Kind: mdslog.KindRemoveNode, Node: id}); err != nil {
		return
	}
	m.poolFilterLocked(id)
}

func poolContains(pool []wire.NodeID, id wire.NodeID) bool {
	for _, n := range pool {
		if n == id {
			return true
		}
	}
	return false
}

// poolInsertLocked appends a node to the placement pool (caller holds
// topoMu and has checked absence, or tolerates a duplicate check here).
func (m *MDS) poolInsertLocked(id wire.NodeID) {
	if poolContains(m.osds, id) {
		return
	}
	// Copy-on-write: place reads the slice under RLock only.
	m.osds = append(append([]wire.NodeID(nil), m.osds...), id)
}

// poolFilterLocked removes a node from the placement pool (caller holds
// topoMu).
func (m *MDS) poolFilterLocked(id wire.NodeID) {
	out := make([]wire.NodeID, 0, len(m.osds))
	for _, n := range m.osds {
		if n != id {
			out = append(out, n)
		}
	}
	m.osds = out
}

// PickRebindTarget chooses a destination for moving one block of a
// stripe: a live pool node not already in the placement, rotated by
// (ino, stripe) so a drain spreads its blocks across the survivor pool
// instead of piling them onto one node.
func (m *MDS) PickRebindTarget(ino uint64, stripe uint32, loc wire.StripeLoc) (wire.NodeID, error) {
	m.topoMu.RLock()
	osds := m.osds
	m.topoMu.RUnlock()
	in := make(map[wire.NodeID]bool, len(loc.Nodes))
	for _, n := range loc.Nodes {
		in[n] = true
	}
	n := len(osds)
	if n == 0 {
		return 0, fmt.Errorf("ecfs: empty placement pool")
	}
	start := int((ino*2654435761 + uint64(stripe)*40503) % uint64(n))
	// Probe the dead set in place rather than copying it per call: a
	// drain calls this once per migrated stripe.
	m.liveMu.Lock()
	defer m.liveMu.Unlock()
	for i := 0; i < n; i++ {
		cand := osds[(start+i)%n]
		if !in[cand] && !m.dead[cand] {
			return cand, nil
		}
	}
	return 0, fmt.Errorf("ecfs: no live rebind target outside the placement of %d/%d", ino, stripe)
}

// Forget removes a retired node entirely: placement pool, liveness
// state, and its (empty) reverse-index bucket — the final step of a
// decommission. The node must no longer host placements.
func (m *MDS) Forget(id wire.NodeID) {
	m.mutateLock()
	defer m.mutateUnlock()
	m.drainMu.Lock()
	m.topoMu.Lock()
	// One record carries the whole retirement; the pool eviction
	// decision (K+M floor) is captured so replay never re-decides.
	removed := len(m.osds) > m.k+m.m && poolContains(m.osds, id)
	if err := m.logAppend(mdslog.Record{Kind: mdslog.KindForget, Node: id, Removed: removed}); err != nil {
		m.topoMu.Unlock()
		m.drainMu.Unlock()
		return
	}
	if removed {
		m.poolFilterLocked(id)
	}
	m.topoMu.Unlock()
	delete(m.draining, id)
	m.drainMu.Unlock()
	m.forgetSoftState(id)
}

// forgetSoftState clears a retired node's liveness entries and its
// (empty) reverse-index bucket — unlogged state derived afresh on a
// restart, shared by Forget and its replay.
func (m *MDS) forgetSoftState(id wire.NodeID) {
	m.liveMu.Lock()
	delete(m.beats, id)
	delete(m.dead, id)
	delete(m.addrs, id)
	delete(m.addrAt, id)
	m.liveMu.Unlock()
	m.revMu.Lock()
	if ni := m.rev[id]; ni != nil {
		ni.mu.Lock()
		empty := len(ni.refs) == 0
		ni.mu.Unlock()
		if empty {
			delete(m.rev, id)
		}
	}
	m.revMu.Unlock()
}

// Scheduler returns the cluster-level repair scheduler, creating an
// uncapped one on first use. Every RepairNode/MigrateNode run registers
// its queue here; Cluster construction configures it with the cluster's
// resources and rebuild cap.
func (m *MDS) Scheduler() *RepairScheduler {
	m.schedMu.Lock()
	defer m.schedMu.Unlock()
	if m.sched == nil {
		m.sched = NewRepairScheduler(nil, 0)
	}
	return m.sched
}

// promoteRepair moves a pending stripe to the front of whichever active
// repair/drain queue holds it; false when no repair is running or the
// stripe is no longer pending.
func (m *MDS) promoteRepair(ino uint64, stripe uint32) bool {
	return m.Scheduler().Promote(ino, stripe)
}

// RepairPending reports the number of stripes still queued across all
// active repairs/drains, 0 when none is running — the
// wire.KRepairStatus answer.
func (m *MDS) RepairPending() int {
	return m.Scheduler().Pending()
}

// BeginDrain marks a node as actively draining and evicts it from the
// placement pool. resumed reports the pick-up of an earlier
// *interrupted* drain — pool membership is then left exactly as the
// cancelled run put it, so a node never transits back through the pool
// between a Ctrl-C and the DrainWith that resumes the work. A node
// whose drain is still running is rejected with an error: two engines
// migrating the same stripes would race their rebind/fence/refetch
// sequences, so only an interrupted drain is resumable.
func (m *MDS) BeginDrain(id wire.NodeID) (resumed bool, err error) {
	m.mutateLock()
	defer m.mutateUnlock()
	m.drainMu.Lock()
	defer m.drainMu.Unlock()
	switch m.draining[id] {
	case drainActive:
		return false, fmt.Errorf("ecfs: drain node %d: a drain is already running", id)
	case drainInterrupted:
		if err := m.logAppend(mdslog.Record{Kind: mdslog.KindDrainBegin, Node: id}); err != nil {
			return false, err
		}
		m.draining[id] = drainActive
		return true, nil
	}
	// Fresh drain. The pool eviction decision (K+M floor) is made here,
	// under topoMu, and captured in the single DrainBegin record so
	// replay redoes the whole op without re-deciding.
	m.topoMu.Lock()
	defer m.topoMu.Unlock()
	removed := len(m.osds) > m.k+m.m && poolContains(m.osds, id)
	if err := m.logAppend(mdslog.Record{Kind: mdslog.KindDrainBegin, Node: id, Fresh: true, Removed: removed}); err != nil {
		return false, err
	}
	m.draining[id] = drainActive
	if removed {
		m.poolFilterLocked(id)
	}
	return false, nil
}

// InterruptDrain downgrades a node's running drain to
// interrupted-awaiting-resume — MigrateNode's bookkeeping when a run
// ends on a cancelled context. The node stays out of the placement
// pool; a later BeginDrain resumes it, AbortDrain abandons it.
func (m *MDS) InterruptDrain(id wire.NodeID) {
	m.mutateLock()
	defer m.mutateUnlock()
	m.drainMu.Lock()
	defer m.drainMu.Unlock()
	if m.draining[id] != drainActive {
		return
	}
	if err := m.logAppend(mdslog.Record{Kind: mdslog.KindDrainInterrupt, Node: id}); err != nil {
		return
	}
	m.draining[id] = drainInterrupted
}

// FinishDrain clears a node's draining mark after every stripe has
// migrated. The node stays out of the placement pool — it hosts
// nothing; RemoveOSD retires it, AddNode re-admits it.
func (m *MDS) FinishDrain(id wire.NodeID) {
	m.mutateLock()
	defer m.mutateUnlock()
	m.drainMu.Lock()
	defer m.drainMu.Unlock()
	if m.draining[id] == drainNone {
		return
	}
	if err := m.logAppend(mdslog.Record{Kind: mdslog.KindDrainEnd, Node: id}); err != nil {
		return
	}
	delete(m.draining, id)
}

// AbortDrain abandons an *interrupted* drain: the mark is cleared and
// the node — still hosting its unmigrated stripes — is re-admitted to
// the placement pool, unless it has since been marked dead. A drain
// that is still actively running is left untouched and false is
// returned: re-admitting the node mid-migration would hand the
// engine's own rebind target picker the node it is draining — cancel
// the drain's context first, then abort. Operators reach this through
// Cluster.AbortDrain.
func (m *MDS) AbortDrain(id wire.NodeID) bool {
	m.mutateLock()
	defer m.mutateUnlock()
	m.drainMu.Lock()
	defer m.drainMu.Unlock()
	if m.draining[id] != drainInterrupted {
		return false
	}
	return m.endDrainLocked(id)
}

// failDrain clears a *running* drain's mark and restores the node's
// pool membership — MigrateNode's cleanup when a run it owns ends on a
// hard (non-resumable) failure. Unlike AbortDrain it acts on the
// active state, which only the engine itself may tear down.
func (m *MDS) failDrain(id wire.NodeID) {
	m.mutateLock()
	defer m.mutateUnlock()
	m.drainMu.Lock()
	defer m.drainMu.Unlock()
	m.endDrainLocked(id)
}

// endDrainLocked abandons a drain and restores the node's pool
// membership — unless the node has been marked dead in the meantime (it
// failed mid-drain): placement must never select a dead node, so a dead
// one stays evicted and re-enters via recovery or an explicit AddNode
// once it is actually back. The readmission decision is captured in the
// single DrainEnd record (the dead set is soft state replay cannot
// consult). Caller holds drainMu and the mutation gate.
func (m *MDS) endDrainLocked(id wire.NodeID) bool {
	m.liveMu.Lock()
	dead := m.dead[id]
	m.liveMu.Unlock()
	m.topoMu.Lock()
	if err := m.logAppend(mdslog.Record{Kind: mdslog.KindDrainEnd, Node: id, Readmitted: !dead}); err != nil {
		m.topoMu.Unlock()
		return false
	}
	delete(m.draining, id)
	if !dead {
		m.poolInsertLocked(id)
	}
	m.topoMu.Unlock()
	if !dead {
		m.nodeIndexFor(id)
	}
	return true
}

// Draining reports whether the node has a drain in progress (running
// or interrupted awaiting resume).
func (m *MDS) Draining(id wire.NodeID) bool {
	m.drainMu.Lock()
	defer m.drainMu.Unlock()
	return m.draining[id] != drainNone
}

// Nodes returns the current placement pool.
func (m *MDS) Nodes() []wire.NodeID {
	m.topoMu.RLock()
	defer m.topoMu.RUnlock()
	return append([]wire.NodeID(nil), m.osds...)
}

// Heartbeat records a liveness report.
func (m *MDS) Heartbeat(id wire.NodeID, at time.Time) {
	m.liveMu.Lock()
	m.beats[id] = at
	delete(m.dead, id)
	m.liveMu.Unlock()
}

// HeartbeatAddr records a liveness report carrying the node's advertised
// listen address.
func (m *MDS) HeartbeatAddr(id wire.NodeID, at time.Time, addr string) {
	m.mutateLock()
	defer m.mutateUnlock()
	m.liveMu.Lock()
	defer m.liveMu.Unlock()
	m.beats[id] = at
	delete(m.dead, id)
	if addr == "" {
		return
	}
	// The address itself is durable (clients resolve through it after a
	// restart); logged on change only, never per heartbeat.
	if m.addrs[id] != addr {
		if err := m.logAppend(mdslog.Record{Kind: mdslog.KindAddr, Node: id, Name: addr}); err != nil {
			return
		}
	}
	m.addrs[id] = addr
}

// LastHeartbeat returns the most recent heartbeat time for a node.
func (m *MDS) LastHeartbeat(id wire.NodeID) (time.Time, bool) {
	m.liveMu.Lock()
	defer m.liveMu.Unlock()
	t, ok := m.beats[id]
	return t, ok
}

// MarkDead flags an OSD as failed (heartbeat timeout or explicit kill).
func (m *MDS) MarkDead(id wire.NodeID) {
	m.liveMu.Lock()
	m.dead[id] = true
	m.liveMu.Unlock()
}

// DeadNodes returns the currently failed OSDs.
func (m *MDS) DeadNodes() []wire.NodeID {
	m.liveMu.Lock()
	defer m.liveMu.Unlock()
	out := make([]wire.NodeID, 0, len(m.dead))
	for id := range m.dead {
		out = append(out, id)
	}
	return out
}

// StripesOn returns every (ino, stripe, placement) whose stripe places a
// block on the given node — the recovery work list. It reads the node's
// reverse-index bucket, so the cost is proportional to the blocks the
// node hosts, never to the namespace size.
func (m *MDS) StripesOn(id wire.NodeID) []StripeRef {
	m.revMu.RLock()
	ni := m.rev[id]
	m.revMu.RUnlock()
	if ni == nil {
		return nil
	}
	ni.mu.Lock()
	keys := make([]stripeKey, 0, len(ni.refs))
	for k := range ni.refs {
		keys = append(keys, k)
	}
	ni.mu.Unlock()

	out := make([]StripeRef, 0, len(keys))
	for _, k := range keys {
		is := m.inoShard(k.ino)
		is.mu.RLock()
		fm := is.meta[k.ino]
		var (
			loc wire.StripeLoc
			ok  bool
		)
		if fm != nil {
			loc, ok = fm.stripes[k.stripe]
		}
		is.mu.RUnlock()
		if !ok {
			continue
		}
		// Re-derive the index from the authoritative placement: a
		// concurrent rebind may have moved the block off this node
		// between the bucket snapshot and here.
		for idx, n := range loc.Nodes {
			if n == id {
				out = append(out, StripeRef{Ino: k.ino, Stripe: k.stripe, Idx: uint8(idx), Loc: loc})
				break
			}
		}
	}
	return out
}

// StripesOnSorted is StripesOn in deterministic (Ino, Stripe, Idx)
// order — the repair queue's FIFO seed order. Anything that must agree
// with the engines' rebuild order (benchmarks, tests) should use this
// rather than re-sorting.
func (m *MDS) StripesOnSorted(id wire.NodeID) []StripeRef {
	refs := m.StripesOn(id)
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].Ino != refs[j].Ino {
			return refs[i].Ino < refs[j].Ino
		}
		if refs[i].Stripe != refs[j].Stripe {
			return refs[i].Stripe < refs[j].Stripe
		}
		return refs[i].Idx < refs[j].Idx
	})
	return refs
}

// StripeRef names one block of one placed stripe.
type StripeRef struct {
	Ino    uint64
	Stripe uint32
	Idx    uint8
	Loc    wire.StripeLoc
}

// Files returns every (name, ino) pair in the namespace.
func (m *MDS) Files() map[string]uint64 {
	out := make(map[string]uint64)
	for _, ns := range m.nameShards {
		ns.mu.Lock()
		for name, ino := range ns.files {
			out[name] = ino
		}
		ns.mu.Unlock()
	}
	return out
}

// Stripes returns the number of placed stripes of a file.
func (m *MDS) Stripes(ino uint64) int {
	is := m.inoShard(ino)
	is.mu.RLock()
	defer is.mu.RUnlock()
	if fm := is.meta[ino]; fm != nil {
		return len(fm.stripes)
	}
	return 0
}

// Handler serves the MDS RPC surface. Metadata operations are pure
// in-memory work; ctx is accepted for transport symmetry.
func (m *MDS) Handler(ctx context.Context, msg *wire.Msg) *wire.Resp {
	switch msg.Kind {
	case wire.KMDSCreate:
		ino, err := m.Create(msg.Name)
		if err != nil {
			return wire.ErrorResp(err)
		}
		return &wire.Resp{Ino: ino}
	case wire.KMDSLookup:
		loc, err := m.Lookup(msg.Block.Ino, msg.Block.Stripe)
		if err != nil {
			return wire.ErrorResp(err)
		}
		return &wire.Resp{Loc: loc}
	case wire.KMDSHeartbeat:
		m.HeartbeatAddr(msg.From, time.Now(), msg.Name)
		return &wire.Resp{}
	case wire.KResolveAddr:
		// Self-discovery for dialing clients: the full node address map
		// plus the stripe geometry and block size, so tsue.Dial needs
		// nothing but the MDS address. An unencodable address (beyond
		// the wire format's bound) fails the whole reply loudly rather
		// than silently dropping the node from the map.
		data, err := wire.EncodeAddrMap(m.AddrMap())
		if err != nil {
			return wire.ErrorResp(err)
		}
		return &wire.Resp{
			Data: data,
			Val:  int64(m.k)<<32 | int64(m.m),
			Ino:  uint64(m.blockSize),
		}
	case wire.KMDSStat:
		return &wire.Resp{Val: int64(m.Stripes(msg.Block.Ino))}
	case wire.KRepairHint:
		// A degraded read just paid the K-fetch decode price for this
		// stripe: promote it in the active repair queue, if any. Val
		// reports whether the hint landed so callers can account it.
		if m.promoteRepair(msg.Block.Ino, msg.Block.Stripe) {
			return &wire.Resp{Val: 1}
		}
		return &wire.Resp{}
	case wire.KRepairStatus:
		return &wire.Resp{Val: int64(m.RepairPending())}
	default:
		return &wire.Resp{Err: fmt.Sprintf("mds: unexpected message %v", msg.Kind)}
	}
}
