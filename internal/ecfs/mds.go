// Package ecfs is the erasure-coded cluster file system of the paper
// (§4, Fig. 4): a metadata server (MDS) tracking files, stripe placement
// and node liveness; object storage device servers (OSDs) hosting data
// and parity blocks behind a pluggable update strategy; and a client that
// encodes writes, routes updates, and reads with read-your-writes
// semantics. Recovery reconstructs a failed OSD's blocks from stripe
// survivors after logs are drained.
package ecfs

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/wire"
)

// MDS is the metadata server: namespace, placement and liveness.
type MDS struct {
	k, m int
	osds []wire.NodeID

	mu      sync.Mutex
	nextIno uint64
	files   map[string]uint64
	meta    map[uint64]*fileMeta
	beats   map[wire.NodeID]time.Time
	dead    map[wire.NodeID]bool
}

type fileMeta struct {
	name    string
	stripes map[uint32]wire.StripeLoc
}

// NewMDS creates a metadata server for a cluster of the given OSDs and
// stripe geometry. It requires len(osds) >= k+m so every stripe can place
// its blocks on distinct nodes.
func NewMDS(osds []wire.NodeID, k, m int) (*MDS, error) {
	if k < 1 || m < 1 {
		return nil, fmt.Errorf("ecfs: invalid geometry RS(%d,%d)", k, m)
	}
	if len(osds) < k+m {
		return nil, fmt.Errorf("ecfs: %d OSDs cannot host RS(%d,%d) stripes", len(osds), k, m)
	}
	return &MDS{
		k: k, m: m,
		osds:    append([]wire.NodeID(nil), osds...),
		nextIno: 1,
		files:   make(map[string]uint64),
		meta:    make(map[uint64]*fileMeta),
		beats:   make(map[wire.NodeID]time.Time),
		dead:    make(map[wire.NodeID]bool),
	}, nil
}

// Geometry returns the cluster's (K, M).
func (m *MDS) Geometry() (int, int) { return m.k, m.m }

// Create registers a file and returns its inode number; creating an
// existing name returns the existing ino (open-or-create semantics).
func (m *MDS) Create(name string) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if ino, ok := m.files[name]; ok {
		return ino
	}
	ino := m.nextIno
	m.nextIno++
	m.files[name] = ino
	m.meta[ino] = &fileMeta{name: name, stripes: make(map[uint32]wire.StripeLoc)}
	return ino
}

// Lookup resolves (ino, stripe) to its placement, creating the placement
// deterministically on first touch.
func (m *MDS) Lookup(ino uint64, stripe uint32) (wire.StripeLoc, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	fm := m.meta[ino]
	if fm == nil {
		return wire.StripeLoc{}, fmt.Errorf("ecfs: unknown ino %d", ino)
	}
	if loc, ok := fm.stripes[stripe]; ok {
		return loc, nil
	}
	loc := m.placeLocked(ino, stripe)
	fm.stripes[stripe] = loc
	return loc, nil
}

// placeLocked spreads the K+M blocks of a stripe across distinct OSDs,
// rotating the starting node per (ino, stripe) so load balances.
func (m *MDS) placeLocked(ino uint64, stripe uint32) wire.StripeLoc {
	n := len(m.osds)
	start := int((ino*2654435761 + uint64(stripe)*40503) % uint64(n))
	nodes := make([]wire.NodeID, m.k+m.m)
	for i := range nodes {
		nodes[i] = m.osds[(start+i)%n]
	}
	return wire.StripeLoc{Nodes: nodes}
}

// Heartbeat records a liveness report.
func (m *MDS) Heartbeat(id wire.NodeID, at time.Time) {
	m.mu.Lock()
	m.beats[id] = at
	delete(m.dead, id)
	m.mu.Unlock()
}

// LastHeartbeat returns the most recent heartbeat time for a node.
func (m *MDS) LastHeartbeat(id wire.NodeID) (time.Time, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, ok := m.beats[id]
	return t, ok
}

// MarkDead flags an OSD as failed (heartbeat timeout or explicit kill).
func (m *MDS) MarkDead(id wire.NodeID) {
	m.mu.Lock()
	m.dead[id] = true
	m.mu.Unlock()
}

// DeadNodes returns the currently failed OSDs.
func (m *MDS) DeadNodes() []wire.NodeID {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]wire.NodeID, 0, len(m.dead))
	for id := range m.dead {
		out = append(out, id)
	}
	return out
}

// StripesOn returns every (ino, stripe, placement) whose stripe places a
// block on the given node — the recovery work list.
func (m *MDS) StripesOn(id wire.NodeID) []StripeRef {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []StripeRef
	for ino, fm := range m.meta {
		for stripe, loc := range fm.stripes {
			for idx, n := range loc.Nodes {
				if n == id {
					out = append(out, StripeRef{Ino: ino, Stripe: stripe, Idx: uint8(idx), Loc: loc})
				}
			}
		}
	}
	return out
}

// StripeRef names one block of one placed stripe.
type StripeRef struct {
	Ino    uint64
	Stripe uint32
	Idx    uint8
	Loc    wire.StripeLoc
}

// Files returns every (name, ino) pair in the namespace.
func (m *MDS) Files() map[string]uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]uint64, len(m.files))
	for name, ino := range m.files {
		out[name] = ino
	}
	return out
}

// Stripes returns the number of placed stripes of a file.
func (m *MDS) Stripes(ino uint64) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if fm := m.meta[ino]; fm != nil {
		return len(fm.stripes)
	}
	return 0
}

// Handler serves the MDS RPC surface.
func (m *MDS) Handler(msg *wire.Msg) *wire.Resp {
	switch msg.Kind {
	case wire.KMDSCreate:
		return &wire.Resp{Ino: m.Create(msg.Name)}
	case wire.KMDSLookup:
		loc, err := m.Lookup(msg.Block.Ino, msg.Block.Stripe)
		if err != nil {
			return &wire.Resp{Err: err.Error()}
		}
		return &wire.Resp{Loc: loc}
	case wire.KMDSHeartbeat:
		m.Heartbeat(msg.From, time.Now())
		return &wire.Resp{}
	case wire.KMDSStat:
		return &wire.Resp{Val: int64(m.Stripes(msg.Block.Ino))}
	default:
		return &wire.Resp{Err: fmt.Sprintf("mds: unexpected message %v", msg.Kind)}
	}
}
