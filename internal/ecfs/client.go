package ecfs

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/erasure"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Client is the POSIX-facing access component (§4): it encodes normal
// writes into stripes, distinguishes writes from updates, routes updates
// to the data block's OSD, and reads with location caching.
type Client struct {
	id        wire.NodeID
	rpc       transport.RPC
	code      *erasure.Code
	blockSize int

	locMu sync.RWMutex
	locs  map[stripeAddr]wire.StripeLoc
}

type stripeAddr struct {
	ino    uint64
	stripe uint32
}

// NewClient builds a client talking over rpc with the given stripe
// geometry.
func NewClient(id wire.NodeID, rpc transport.RPC, code *erasure.Code, blockSize int) *Client {
	return &Client{id: id, rpc: rpc, code: code, blockSize: blockSize, locs: make(map[stripeAddr]wire.StripeLoc)}
}

// StripeSpan returns the bytes of file data covered by one stripe.
func (c *Client) StripeSpan() int { return c.code.K * c.blockSize }

// Create opens-or-creates a file and returns its ino.
func (c *Client) Create(name string) (uint64, error) {
	resp, err := c.rpc.Call(wire.MDSNode, &wire.Msg{Kind: wire.KMDSCreate, Name: name})
	if err != nil {
		return 0, err
	}
	if err := resp.Error(); err != nil {
		return 0, err
	}
	return resp.Ino, nil
}

func (c *Client) lookup(ino uint64, stripe uint32) (wire.StripeLoc, error) {
	key := stripeAddr{ino, stripe}
	c.locMu.RLock()
	loc, ok := c.locs[key]
	c.locMu.RUnlock()
	if ok {
		return loc, nil
	}
	resp, err := c.rpc.Call(wire.MDSNode, &wire.Msg{Kind: wire.KMDSLookup, Block: wire.BlockID{Ino: ino, Stripe: stripe}})
	if err != nil {
		return wire.StripeLoc{}, err
	}
	if err := resp.Error(); err != nil {
		return wire.StripeLoc{}, err
	}
	c.locMu.Lock()
	c.locs[key] = resp.Loc
	c.locMu.Unlock()
	return resp.Loc, nil
}

// InvalidateLocations clears the placement cache (after recovery moves
// blocks).
func (c *Client) InvalidateLocations() {
	c.locMu.Lock()
	c.locs = make(map[stripeAddr]wire.StripeLoc)
	c.locMu.Unlock()
}

// WriteStripe encodes and distributes one full stripe of file data
// (len(data) must be K*blockSize). Returns the modeled latency: blocks
// are transferred concurrently, so the cost is the slowest member.
func (c *Client) WriteStripe(ino uint64, stripe uint32, data []byte) (time.Duration, error) {
	if len(data) != c.StripeSpan() {
		return 0, fmt.Errorf("ecfs: stripe write of %d bytes, want %d", len(data), c.StripeSpan())
	}
	loc, err := c.lookup(ino, stripe)
	if err != nil {
		return 0, err
	}
	shards := make([][]byte, c.code.K)
	for i := range shards {
		shards[i] = data[i*c.blockSize : (i+1)*c.blockSize]
	}
	parity, err := c.code.Encode(shards)
	if err != nil {
		return 0, err
	}
	all := append(append([][]byte{}, shards...), parity...)
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		max  time.Duration
		rerr error
	)
	for i, shard := range all {
		wg.Add(1)
		go func(i int, shard []byte) {
			defer wg.Done()
			b := wire.BlockID{Ino: ino, Stripe: stripe, Idx: uint8(i)}
			resp, err := c.rpc.Call(loc.Nodes[i], &wire.Msg{Kind: wire.KWriteBlock, Block: b, Data: shard, Loc: loc})
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				rerr = err
				return
			}
			if e := resp.Error(); e != nil {
				rerr = e
				return
			}
			if resp.Cost > max {
				max = resp.Cost
			}
		}(i, shard)
	}
	wg.Wait()
	return max, rerr
}

// WriteFile stripes data from file offset 0, zero-padding the tail
// stripe, and returns the number of stripes written.
func (c *Client) WriteFile(ino uint64, data []byte) (int, error) {
	span := c.StripeSpan()
	stripes := (len(data) + span - 1) / span
	for s := 0; s < stripes; s++ {
		chunk := make([]byte, span)
		copy(chunk, data[s*span:min(len(data), (s+1)*span)])
		if _, err := c.WriteStripe(ino, uint32(s), chunk); err != nil {
			return s, err
		}
	}
	return stripes, nil
}

// Update applies a partial update at a file byte offset, splitting it
// across data blocks as needed. v is the virtual workload time of the
// request. Returns the synchronous update latency (max across split
// parts, which proceed concurrently).
func (c *Client) Update(ino uint64, off int64, data []byte, v time.Duration) (time.Duration, error) {
	parts, err := c.split(ino, off, len(data))
	if err != nil {
		return 0, err
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		max  time.Duration
		rerr error
	)
	for _, p := range parts {
		wg.Add(1)
		go func(p part) {
			defer wg.Done()
			resp, err := c.rpc.Call(p.node, &wire.Msg{
				Kind:  wire.KUpdate,
				Block: p.block,
				Off:   p.off,
				Data:  data[p.src : p.src+p.n],
				K:     uint8(c.code.K),
				M:     uint8(c.code.M),
				Loc:   p.loc,
				V:     int64(v),
			})
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				rerr = err
				return
			}
			if e := resp.Error(); e != nil {
				rerr = e
				return
			}
			if resp.Cost > max {
				max = resp.Cost
			}
		}(p)
	}
	wg.Wait()
	return max, rerr
}

// Read fetches [off, off+size) of a file.
func (c *Client) Read(ino uint64, off int64, size int) ([]byte, time.Duration, error) {
	parts, err := c.split(ino, off, size)
	if err != nil {
		return nil, 0, err
	}
	out := make([]byte, size)
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		max  time.Duration
		rerr error
	)
	for _, p := range parts {
		wg.Add(1)
		go func(p part) {
			defer wg.Done()
			resp, err := c.rpc.Call(p.node, &wire.Msg{
				Kind: wire.KRead, Block: p.block, Off: p.off, Size: uint32(p.n),
			})
			if err != nil {
				// Degraded read: the data block's OSD is down, so
				// rebuild the requested range from K surviving blocks
				// of the stripe.
				var data []byte
				var cost time.Duration
				data, cost, err = c.degradedRead(p)
				if err == nil {
					resp = &wire.Resp{Data: data, Cost: cost}
				}
			}
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				rerr = err
				return
			}
			if e := resp.Error(); e != nil {
				rerr = e
				return
			}
			copy(out[p.src:p.src+p.n], resp.Data)
			if resp.Cost > max {
				max = resp.Cost
			}
		}(p)
	}
	wg.Wait()
	if rerr != nil {
		return nil, 0, rerr
	}
	return out, max, nil
}

// degradedRead reconstructs one part's data block from stripe survivors —
// the degraded-read path an erasure-coded file system must serve while a
// node is down and recovery has not yet completed. It reflects the last
// *recycled* state: updates still buffered in the failed node's DataLog
// are only restored by recovery's replica-log replay (Cluster.Recover).
func (c *Client) degradedRead(p part) ([]byte, time.Duration, error) {
	n := c.code.K + c.code.M
	shards := make([][]byte, n)
	have := 0
	var cost time.Duration
	for idx := 0; idx < n && have < c.code.K; idx++ {
		if idx == int(p.block.Idx) {
			continue
		}
		b := p.block.WithIdx(uint8(idx))
		resp, err := c.rpc.Call(p.loc.Nodes[idx], &wire.Msg{Kind: wire.KBlockFetch, Block: b})
		if err != nil || !resp.OK() {
			continue
		}
		shards[idx] = resp.Data
		have++
		if resp.Cost > cost {
			cost = resp.Cost
		}
	}
	if have < c.code.K {
		return nil, 0, fmt.Errorf("ecfs: degraded read of %v: only %d of %d shards reachable", p.block, have, c.code.K)
	}
	if err := c.code.Reconstruct(shards); err != nil {
		return nil, 0, fmt.Errorf("ecfs: degraded read of %v: %w", p.block, err)
	}
	rebuilt := shards[p.block.Idx]
	if int(p.off)+p.n > len(rebuilt) {
		return nil, 0, fmt.Errorf("ecfs: degraded read of %v: range beyond block", p.block)
	}
	return rebuilt[p.off : int(p.off)+p.n], cost, nil
}

// part maps a byte range of a file request onto one data block.
type part struct {
	node  wire.NodeID
	block wire.BlockID
	loc   wire.StripeLoc
	off   uint32 // intra-block offset
	src   int    // offset within the request payload
	n     int
}

func (c *Client) split(ino uint64, off int64, size int) ([]part, error) {
	if off < 0 || size < 0 {
		return nil, fmt.Errorf("ecfs: negative range")
	}
	span := int64(c.StripeSpan())
	var parts []part
	src := 0
	for size > 0 {
		stripe := uint32(off / span)
		inStripe := off % span
		blockIdx := int(inStripe) / c.blockSize
		blockOff := uint32(int(inStripe) % c.blockSize)
		n := min(size, c.blockSize-int(blockOff))
		loc, err := c.lookup(ino, stripe)
		if err != nil {
			return nil, err
		}
		b := wire.BlockID{Ino: ino, Stripe: stripe, Idx: uint8(blockIdx)}
		parts = append(parts, part{
			node: loc.Nodes[blockIdx], block: b, loc: loc,
			off: blockOff, src: src, n: n,
		})
		off += int64(n)
		src += n
		size -= n
	}
	return parts, nil
}
