package ecfs

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/erasure"
	"repro/internal/transport"
	"repro/internal/wire"
)

// maxStaleRetries bounds how many times a request is retried after a
// stale-epoch rejection or a transport error before giving up. Each
// retry re-resolves the placement at the MDS first, so one round trip
// suffices in the common case; the bound only matters when the MDS
// itself keeps handing out a placement the OSDs reject.
const maxStaleRetries = 3

// stripeWriteBudget is the liveness backstop on a detached stripe
// fan-out: far above any healthy shard round-trip, tight enough that a
// half-open connection to a hung OSD cannot wedge a write forever.
const stripeWriteBudget = 2 * time.Minute

// Client is the POSIX-facing access component (§4): it encodes normal
// writes into stripes, distinguishes writes from updates, routes updates
// to the data block's OSD, and reads with location caching.
//
// The v2 surface is context-first: Open returns a *File handle
// (io.ReaderAt / io.WriterAt / io.Closer plus UpdateAt), and the
// *Context methods take an explicit context.Context that is honored at
// every priced step of the call chain. The context-free Create /
// WriteStripe / WriteFile / Update / Read methods are deprecated
// wrappers over their *Context equivalents, kept so existing bench and
// trace code migrates incrementally.
//
// Cancellation semantics: updates and reads abort between priced steps
// (an aborted multi-part update may be torn across blocks, like any
// interrupted POSIX write). Normal writes are stripe-atomic — the
// context is checked before each stripe is placed, and once a stripe's
// shard fan-out begins it runs to completion (bounded only by the
// stripeWriteBudget liveness backstop) — so a cancelled WriteFile never
// leaves a stripe bound at the MDS without all its shards stored.
//
// Cached placements carry their epoch (wire.StripeLoc.Epoch). When an
// OSD rejects a request with wire.StatusStaleEpoch — recovery rebound
// the stripe onto a different node set — or a cached node is
// unreachable, the client transparently re-resolves the placement at
// the MDS and retries, so callers never observe a rebind.
type Client struct {
	id        wire.NodeID
	rpc       transport.RPC
	code      *erasure.Code
	blockSize int

	locMu sync.RWMutex
	locs  map[stripeAddr]wire.StripeLoc

	degraded atomic.Int64 // reads served by K-way reconstruction
	hints    atomic.Int64 // repair-priority hints sent after degraded reads
}

// ClientStats counts client-side repair-relevant events.
type ClientStats struct {
	// DegradedReads is the number of block-range reads that had to be
	// reconstructed from K surviving shards instead of being served by
	// the block's holder.
	DegradedReads int64
	// RepairHints is the number of wire.KRepairHint promotions sent to
	// the MDS after degraded reads (read-through repair).
	RepairHints int64
}

// Stats returns a snapshot of the client's counters.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		DegradedReads: c.degraded.Load(),
		RepairHints:   c.hints.Load(),
	}
}

type stripeAddr struct {
	ino    uint64
	stripe uint32
}

// NewClient builds a client talking over rpc with the given stripe
// geometry.
func NewClient(id wire.NodeID, rpc transport.RPC, code *erasure.Code, blockSize int) *Client {
	return &Client{id: id, rpc: rpc, code: code, blockSize: blockSize, locs: make(map[stripeAddr]wire.StripeLoc)}
}

// StripeSpan returns the bytes of file data covered by one stripe.
func (c *Client) StripeSpan() int { return c.code.K * c.blockSize }

// Open opens-or-creates a file and returns a handle bound to ctx (the
// handle's io.ReaderAt/io.WriterAt methods, which cannot accept a
// context, use the one given here).
func (c *Client) Open(ctx context.Context, name string) (*File, error) {
	ino, err := c.CreateContext(ctx, name)
	if err != nil {
		return nil, err
	}
	return &File{cli: c, ino: ino, name: name, ctx: ctx}, nil
}

// CreateContext opens-or-creates a file and returns its ino.
func (c *Client) CreateContext(ctx context.Context, name string) (uint64, error) {
	resp, err := c.rpc.Call(ctx, wire.MDSNode, &wire.Msg{Kind: wire.KMDSCreate, Name: name})
	if err != nil {
		return 0, err
	}
	if err := resp.Error(); err != nil {
		return 0, err
	}
	return resp.Ino, nil
}

// Create opens-or-creates a file and returns its ino.
//
// Deprecated: use CreateContext (or Open, which returns a *File handle).
func (c *Client) Create(name string) (uint64, error) {
	return c.CreateContext(context.Background(), name)
}

func (c *Client) lookup(ctx context.Context, ino uint64, stripe uint32) (wire.StripeLoc, error) {
	key := stripeAddr{ino, stripe}
	c.locMu.RLock()
	loc, ok := c.locs[key]
	c.locMu.RUnlock()
	if ok {
		return loc, nil
	}
	resp, err := c.rpc.Call(ctx, wire.MDSNode, &wire.Msg{Kind: wire.KMDSLookup, Block: wire.BlockID{Ino: ino, Stripe: stripe}})
	if err != nil {
		return wire.StripeLoc{}, err
	}
	if err := resp.Error(); err != nil {
		return wire.StripeLoc{}, err
	}
	c.locMu.Lock()
	// Never clobber a newer placement a concurrent refresh installed
	// while this lookup was in flight.
	if cur, ok := c.locs[key]; !ok || resp.Loc.Epoch >= cur.Epoch {
		c.locs[key] = resp.Loc
	}
	c.locMu.Unlock()
	return resp.Loc, nil
}

// refreshLoc re-resolves one stripe's placement after an attempt with
// epoch `stale` failed. If the cache already holds a newer placement —
// a concurrent part of the same request refreshed it first — that copy
// is returned without another MDS round trip, so a rebind costs one
// lookup per client, not one per in-flight shard.
func (c *Client) refreshLoc(ctx context.Context, ino uint64, stripe uint32, stale uint64) (wire.StripeLoc, error) {
	key := stripeAddr{ino, stripe}
	c.locMu.Lock()
	if cur, ok := c.locs[key]; ok && cur.Epoch > stale {
		c.locMu.Unlock()
		return cur, nil
	}
	delete(c.locs, key)
	c.locMu.Unlock()
	return c.lookup(ctx, ino, stripe)
}

// InvalidateLocations clears the placement cache. With placement epochs
// this is no longer required for correctness after a recovery — stale
// entries are detected and re-resolved per stripe — but it remains
// useful to reset a client wholesale.
func (c *Client) InvalidateLocations() {
	c.locMu.Lock()
	c.locs = make(map[stripeAddr]wire.StripeLoc)
	c.locMu.Unlock()
}

// WriteStripeContext encodes and distributes one full stripe of file
// data (len(data) must be K*blockSize). Returns the modeled latency:
// blocks are transferred concurrently, so the cost is the slowest
// member.
//
// Cancellation is checked once at entry; past that point the write
// ignores the caller's ctx (cancel and deadline alike), so a stripe is
// never placed at the MDS with only some of its shards stored. The
// detached fan-out still runs under the stripeWriteBudget liveness
// backstop — should that fire (a hung OSD), the write errors out and
// the stripe may be left short of shards for Scrub to flag.
func (c *Client) WriteStripeContext(ctx context.Context, ino uint64, stripe uint32, data []byte) (time.Duration, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	// Detach: the placement below binds the stripe at the MDS, and a
	// bound stripe must have all its shards stored (Scrub's invariant).
	// Detaching must not mean unbounded, though — over TCP an OSD that
	// accepts the connection and never replies would otherwise hang the
	// write forever — so the fan-out runs under the liveness backstop
	// documented above.
	ctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), stripeWriteBudget)
	defer cancel()
	if len(data) != c.StripeSpan() {
		return 0, fmt.Errorf("ecfs: stripe write of %d bytes, want %d", len(data), c.StripeSpan())
	}
	loc, err := c.lookup(ctx, ino, stripe)
	if err != nil {
		return 0, err
	}
	shards := make([][]byte, c.code.K)
	for i := range shards {
		shards[i] = data[i*c.blockSize : (i+1)*c.blockSize]
	}
	parity, err := c.code.Encode(shards)
	if err != nil {
		return 0, err
	}
	all := append(append([][]byte{}, shards...), parity...)
	// Fast path: the whole fan-out is issued as one batch, so on a
	// batch-capable transport (the TCP client) every same-destination
	// frame of the stripe enters its connection's write queue together
	// and leaves in a single coalesced flush. KWriteBlock is a
	// full-block overwrite — idempotent — so any shard that fails here
	// (node unreachable, stale placement) safely drops to the per-shard
	// re-resolve loop below.
	calls := make([]*transport.BatchCall, len(all))
	for i, shard := range all {
		calls[i] = &transport.BatchCall{To: loc.Nodes[i], Msg: &wire.Msg{
			Kind:  wire.KWriteBlock,
			Block: wire.BlockID{Ino: ino, Stripe: stripe, Idx: uint8(i)},
			Data:  shard,
			Loc:   loc,
		}}
	}
	transport.Fanout(ctx, c.rpc, calls)
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		max     time.Duration
		rerr    error
		setCost = func(cost time.Duration) {
			mu.Lock()
			if cost > max {
				max = cost
			}
			mu.Unlock()
		}
	)
	for i, bc := range calls {
		if bc.Err == nil && bc.Resp.OK() {
			setCost(bc.Resp.Cost)
			continue
		}
		if bc.Err == nil && !bc.Resp.IsStale() {
			// A structured, non-stale rejection (bad geometry, storage
			// failure): re-resolving the placement cannot change it.
			if rerr == nil {
				rerr = bc.Resp.Error()
			}
			continue
		}
		wg.Add(1)
		go func(i int, shard []byte) {
			defer wg.Done()
			b := wire.BlockID{Ino: ino, Stripe: stripe, Idx: uint8(i)}
			cost, err := c.writeShard(ctx, b, shard, loc)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				rerr = err
				return
			}
			if cost > max {
				max = cost
			}
		}(i, all[i])
	}
	wg.Wait()
	return max, rerr
}

// WriteStripe encodes and distributes one full stripe.
//
// Deprecated: use WriteStripeContext.
func (c *Client) WriteStripe(ino uint64, stripe uint32, data []byte) (time.Duration, error) {
	return c.WriteStripeContext(context.Background(), ino, stripe, data)
}

// sendWithReresolve delivers one block-addressed request, re-resolving
// the placement and retrying when the target rejects a stale epoch or
// is unreachable. send is invoked with the placement to use for the
// attempt. A refresh that returns an unchanged placement stops the
// loop: the MDS agrees with the cache, so the failure is real. A
// cancelled ctx stops the loop immediately.
//
// Retry safety: a stale-epoch *rejection* happens before any server
// state changes, so it may always be retried — even to the same node,
// with the refreshed placement. A *transport* error, however, can (on
// the TCP transport) mean "applied but the reply was lost"; a
// non-idempotent request (idempotent=false) is therefore retried after
// a transport error only if the block's host changed — a node that may
// already have applied it is never re-delivered to.
func (c *Client) sendWithReresolve(ctx context.Context, b wire.BlockID, loc wire.StripeLoc, idempotent bool, send func(loc wire.StripeLoc) (*wire.Resp, error)) (time.Duration, error) {
	var (
		lastErr   error
		lastStale bool
	)
	for attempt := 0; attempt <= maxStaleRetries; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return 0, lastErr
			}
			return 0, err
		}
		if attempt > 0 {
			nl, err := c.refreshLoc(ctx, b.Ino, b.Stripe, loc.Epoch)
			if err != nil {
				return 0, err
			}
			sameHost := nl.Nodes[b.Idx] == loc.Nodes[b.Idx]
			if nl.Epoch == loc.Epoch && sameHost {
				return 0, lastErr
			}
			if sameHost && !lastStale && !idempotent {
				return 0, lastErr
			}
			loc = nl
		}
		resp, err := send(loc)
		if err != nil {
			lastErr, lastStale = err, false
			continue
		}
		if resp.IsStale() {
			lastErr, lastStale = resp.Error(), true
			continue
		}
		if e := resp.Error(); e != nil {
			return 0, e
		}
		return resp.Cost, nil
	}
	return 0, lastErr
}

// writeShard delivers one stripe member with placement re-resolution
// (idempotent: a full-block overwrite may be re-delivered freely).
func (c *Client) writeShard(ctx context.Context, b wire.BlockID, shard []byte, loc wire.StripeLoc) (time.Duration, error) {
	return c.sendWithReresolve(ctx, b, loc, true, func(loc wire.StripeLoc) (*wire.Resp, error) {
		return c.rpc.Call(ctx, loc.Nodes[b.Idx], &wire.Msg{Kind: wire.KWriteBlock, Block: b, Data: shard, Loc: loc})
	})
}

// WriteFileContext stripes data from file offset 0, zero-padding the
// tail stripe, and returns the number of stripes written. The context
// is checked before every stripe: a cancelled write stops at a stripe
// boundary, with every already-written stripe complete and no partial
// stripe bound at the MDS.
func (c *Client) WriteFileContext(ctx context.Context, ino uint64, data []byte) (int, error) {
	return c.writeStripes(ctx, ino, 0, data)
}

// writeStripes chunks data into full stripes starting at stripe `first`
// (zero-padding the tail) and writes each through WriteStripeContext —
// the shared striping loop behind WriteFileContext and File.WriteAt. It
// returns the number of stripes completed.
func (c *Client) writeStripes(ctx context.Context, ino uint64, first uint32, data []byte) (int, error) {
	span := c.StripeSpan()
	stripes := (len(data) + span - 1) / span
	for s := 0; s < stripes; s++ {
		chunk := make([]byte, span)
		copy(chunk, data[s*span:min(len(data), (s+1)*span)])
		if _, err := c.WriteStripeContext(ctx, ino, first+uint32(s), chunk); err != nil {
			return s, err
		}
	}
	return stripes, nil
}

// WriteFile stripes data from file offset 0.
//
// Deprecated: use WriteFileContext (or File.WriteAt via Open).
func (c *Client) WriteFile(ino uint64, data []byte) (int, error) {
	return c.WriteFileContext(context.Background(), ino, data)
}

// UpdateContext applies a partial update at a file byte offset,
// splitting it across data blocks as needed. v is the virtual workload
// time of the request. Returns the synchronous update latency (max
// across split parts, which proceed concurrently). A cancelled ctx
// aborts unsent parts at the next priced step; like any interrupted
// POSIX write, a multi-part update may be torn (parity stays consistent
// per part — each part's two-stage update is atomic at its OSD).
func (c *Client) UpdateContext(ctx context.Context, ino uint64, off int64, data []byte, v time.Duration) (time.Duration, error) {
	parts, err := c.split(ctx, ino, off, len(data))
	if err != nil {
		return 0, err
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		max  time.Duration
		rerr error
	)
	for _, p := range parts {
		wg.Add(1)
		go func(p part) {
			defer wg.Done()
			cost, err := c.updatePart(ctx, p, data[p.src:p.src+p.n], v)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				rerr = err
				return
			}
			if cost > max {
				max = cost
			}
		}(p)
	}
	wg.Wait()
	return max, rerr
}

// Update applies a partial update at a file byte offset.
//
// Deprecated: use UpdateContext (or File.UpdateAt via Open).
func (c *Client) Update(ino uint64, off int64, data []byte, v time.Duration) (time.Duration, error) {
	return c.UpdateContext(context.Background(), ino, off, data, v)
}

// updatePart routes one split of an update to its data block's OSD with
// placement re-resolution. The update is not idempotent, so
// sendWithReresolve only retries it to a *different* host after a
// transport error (the prior target is dead or rebound away — its
// state is discarded by recovery); stale-epoch rejections retry freely.
func (c *Client) updatePart(ctx context.Context, p part, payload []byte, v time.Duration) (time.Duration, error) {
	return c.sendWithReresolve(ctx, p.block, p.loc, false, func(loc wire.StripeLoc) (*wire.Resp, error) {
		return c.rpc.Call(ctx, loc.Nodes[p.block.Idx], &wire.Msg{
			Kind:  wire.KUpdate,
			Block: p.block,
			Off:   p.off,
			Data:  payload,
			K:     uint8(c.code.K),
			M:     uint8(c.code.M),
			Loc:   loc,
			V:     int64(v),
		})
	})
}

// ReadContext fetches [off, off+size) of a file.
func (c *Client) ReadContext(ctx context.Context, ino uint64, off int64, size int) ([]byte, time.Duration, error) {
	parts, err := c.split(ctx, ino, off, size)
	if err != nil {
		return nil, 0, err
	}
	out := make([]byte, size)
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		max  time.Duration
		rerr error
	)
	for _, p := range parts {
		wg.Add(1)
		go func(p part) {
			defer wg.Done()
			data, cost, err := c.readPart(ctx, p)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				rerr = err
				return
			}
			copy(out[p.src:p.src+p.n], data)
			if cost > max {
				max = cost
			}
		}(p)
	}
	wg.Wait()
	if rerr != nil {
		return nil, 0, rerr
	}
	return out, max, nil
}

// Read fetches [off, off+size) of a file.
//
// Deprecated: use ReadContext (or File.ReadAt via Open).
func (c *Client) Read(ino uint64, off int64, size int) ([]byte, time.Duration, error) {
	return c.ReadContext(context.Background(), ino, off, size)
}

// Stripes returns the number of placed stripes of a file (KMDSStat).
func (c *Client) Stripes(ctx context.Context, ino uint64) (int, error) {
	resp, err := c.rpc.Call(ctx, wire.MDSNode, &wire.Msg{Kind: wire.KMDSStat, Block: wire.BlockID{Ino: ino}})
	if err != nil {
		return 0, err
	}
	if err := resp.Error(); err != nil {
		return 0, err
	}
	return int(resp.Val), nil
}

// readPart serves one block-range read. The normal path ships the cached
// placement so the holder can epoch-check it: a stale-epoch rejection or
// an unreachable holder re-resolves at the MDS and retries — after a
// repair or drain rebinds the stripe, this is how the read cuts over to
// the new holder with no K-way decode. Only when the normal path is
// exhausted does the read degrade to reconstruction, and then it tells
// the MDS (wire.KRepairHint) so an in-flight repair promotes the stripe
// to the front of its queue.
func (c *Client) readPart(ctx context.Context, p part) ([]byte, time.Duration, error) {
	var data []byte
	cost, err := c.sendWithReresolve(ctx, p.block, p.loc, true, func(loc wire.StripeLoc) (*wire.Resp, error) {
		resp, rerr := c.rpc.Call(ctx, loc.Nodes[p.block.Idx], &wire.Msg{
			Kind: wire.KRead, Block: p.block, Off: p.off, Size: uint32(p.n), Loc: loc,
		})
		if rerr == nil && resp.OK() {
			data = resp.Data
		}
		return resp, rerr
	})
	if err == nil {
		return data, cost, nil
	}
	if ctx.Err() != nil {
		return nil, 0, err
	}
	// Degraded read: the block's holder cannot serve it (node down, or
	// the block is mid-migration), so rebuild the requested range from K
	// surviving blocks — under the freshest placement the retry loop
	// left in the cache.
	if nl, lerr := c.lookup(ctx, p.block.Ino, p.block.Stripe); lerr == nil {
		p.loc = nl
	}
	data, cost, derr := c.degradedRead(ctx, p)
	if derr != nil {
		return nil, 0, fmt.Errorf("%w (degraded fallback: %v)", err, derr)
	}
	c.degraded.Add(1)
	c.hintRepair(ctx, p.block)
	return data, cost, nil
}

// hintRepair tells the MDS a degraded read just paid the K-fetch decode
// price for a stripe, so an active repair can promote it to the front
// of its rebuild queue (read-through repair). Best effort: with no
// repair running the MDS ignores the hint.
func (c *Client) hintRepair(ctx context.Context, b wire.BlockID) {
	c.hints.Add(1)
	_, _ = c.rpc.Call(ctx, wire.MDSNode, &wire.Msg{Kind: wire.KRepairHint, Block: b})
}

// degradedRead reconstructs one part's data block from stripe survivors —
// the degraded-read path an erasure-coded file system must serve while a
// node is down and recovery has not yet completed. It reflects the last
// *recycled* state: updates still buffered in the failed node's DataLog
// are only restored by recovery's replica-log replay (Cluster.Recover).
func (c *Client) degradedRead(ctx context.Context, p part) ([]byte, time.Duration, error) {
	n := c.code.K + c.code.M
	shards := make([][]byte, n)
	have := 0
	var cost time.Duration
	for idx := 0; idx < n && have < c.code.K; idx++ {
		if idx == int(p.block.Idx) {
			continue
		}
		b := p.block.WithIdx(uint8(idx))
		resp, err := c.rpc.Call(ctx, p.loc.Nodes[idx], &wire.Msg{Kind: wire.KBlockFetch, Block: b})
		if err != nil || !resp.OK() {
			continue
		}
		shards[idx] = resp.Data
		have++
		if resp.Cost > cost {
			cost = resp.Cost
		}
	}
	if have < c.code.K {
		return nil, 0, fmt.Errorf("ecfs: degraded read of %v: only %d of %d shards reachable", p.block, have, c.code.K)
	}
	if err := c.code.Reconstruct(shards); err != nil {
		return nil, 0, fmt.Errorf("ecfs: degraded read of %v: %w", p.block, err)
	}
	rebuilt := shards[p.block.Idx]
	if int(p.off)+p.n > len(rebuilt) {
		return nil, 0, fmt.Errorf("ecfs: degraded read of %v: range beyond block", p.block)
	}
	return rebuilt[p.off : int(p.off)+p.n], cost, nil
}

// part maps a byte range of a file request onto one data block. The
// block's current host is derived from loc at send time (loc may be
// refreshed by the stale-epoch retry loop).
type part struct {
	block wire.BlockID
	loc   wire.StripeLoc
	off   uint32 // intra-block offset
	src   int    // offset within the request payload
	n     int
}

func (c *Client) split(ctx context.Context, ino uint64, off int64, size int) ([]part, error) {
	if off < 0 || size < 0 {
		return nil, fmt.Errorf("ecfs: negative range")
	}
	span := int64(c.StripeSpan())
	var parts []part
	src := 0
	for size > 0 {
		stripe := uint32(off / span)
		inStripe := off % span
		blockIdx := int(inStripe) / c.blockSize
		blockOff := uint32(int(inStripe) % c.blockSize)
		n := min(size, c.blockSize-int(blockOff))
		loc, err := c.lookup(ctx, ino, stripe)
		if err != nil {
			return nil, err
		}
		b := wire.BlockID{Ino: ino, Stripe: stripe, Idx: uint8(blockIdx)}
		parts = append(parts, part{
			block: b, loc: loc,
			off: blockOff, src: src, n: n,
		})
		off += int64(n)
		src += n
		size -= n
	}
	return parts, nil
}
