package ecfs

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/erasure"
	"repro/internal/transport"
	"repro/internal/wire"
)

// maxStaleRetries bounds how many times a request is retried after a
// stale-epoch rejection or a transport error before giving up. Each
// retry re-resolves the placement at the MDS first, so one round trip
// suffices in the common case; the bound only matters when the MDS
// itself keeps handing out a placement the OSDs reject.
const maxStaleRetries = 3

// stripeWriteBudget is the liveness backstop on a detached stripe
// fan-out: far above any healthy shard round-trip, tight enough that a
// half-open connection to a hung OSD cannot wedge a write forever.
const stripeWriteBudget = 2 * time.Minute

// writeCoalesceStripes is the coalescing window of the striped write
// path: WriteFileContext / File.WriteAt encode up to this many stripes
// at once and fan out *all* of their shard frames in a single batch, so
// a batch-capable transport flushes every same-destination frame of the
// window in one writev. The window bounds the memory pinned per write
// (window × K+M × blockSize of encoded shards) and sets the
// cancellation granularity — the caller's ctx is observed between
// windows, never inside one.
const writeCoalesceStripes = 8

// Client is the POSIX-facing access component (§4): it encodes normal
// writes into stripes, distinguishes writes from updates, routes updates
// to the data block's OSD, and reads with location caching.
//
// The v2 surface is context-first: Open returns a *File handle
// (io.ReaderAt / io.WriterAt / io.Closer plus UpdateAt), and the
// *Context methods take an explicit context.Context that is honored at
// every priced step of the call chain. The context-free Create /
// WriteStripe / WriteFile / Update / Read methods are deprecated
// wrappers over their *Context equivalents, kept so existing bench and
// trace code migrates incrementally.
//
// Cancellation semantics: updates and reads abort between priced steps
// (an aborted multi-part update may be torn across blocks, like any
// interrupted POSIX write). Normal writes are stripe-atomic at
// coalescing-window granularity — the context is checked before each
// window of up to writeCoalesceStripes stripes is placed, and once a
// window's shard fan-out begins it runs to completion (bounded only by
// the stripeWriteBudget liveness backstop) — so a cancelled WriteFile
// never leaves a stripe bound at the MDS without all its shards stored.
//
// Cached placements carry their epoch (wire.StripeLoc.Epoch). When an
// OSD rejects a request with wire.StatusStaleEpoch — recovery rebound
// the stripe onto a different node set — or a cached node is
// unreachable, the client transparently re-resolves the placement at
// the MDS and retries, so callers never observe a rebind.
type Client struct {
	id        wire.NodeID
	rpc       transport.RPC
	code      *erasure.Code
	blockSize int

	locMu sync.RWMutex
	locs  map[stripeAddr]wire.StripeLoc

	degraded atomic.Int64 // reads served by K-way reconstruction
	hints    atomic.Int64 // repair-priority hints sent after degraded reads
}

// ClientStats counts client-side repair-relevant events.
type ClientStats struct {
	// DegradedReads is the number of block-range reads that had to be
	// reconstructed from K surviving shards instead of being served by
	// the block's holder.
	DegradedReads int64
	// RepairHints is the number of wire.KRepairHint promotions sent to
	// the MDS after degraded reads (read-through repair).
	RepairHints int64
}

// Stats returns a snapshot of the client's counters.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		DegradedReads: c.degraded.Load(),
		RepairHints:   c.hints.Load(),
	}
}

type stripeAddr struct {
	ino    uint64
	stripe uint32
}

// NewClient builds a client talking over rpc with the given stripe
// geometry.
func NewClient(id wire.NodeID, rpc transport.RPC, code *erasure.Code, blockSize int) *Client {
	return &Client{id: id, rpc: rpc, code: code, blockSize: blockSize, locs: make(map[stripeAddr]wire.StripeLoc)}
}

// StripeSpan returns the bytes of file data covered by one stripe.
func (c *Client) StripeSpan() int { return c.code.K * c.blockSize }

// Open opens-or-creates a file and returns a handle bound to ctx (the
// handle's io.ReaderAt/io.WriterAt methods, which cannot accept a
// context, use the one given here).
func (c *Client) Open(ctx context.Context, name string) (*File, error) {
	ino, err := c.CreateContext(ctx, name)
	if err != nil {
		return nil, err
	}
	return &File{cli: c, ino: ino, name: name, ctx: ctx}, nil
}

// CreateContext opens-or-creates a file and returns its ino.
func (c *Client) CreateContext(ctx context.Context, name string) (uint64, error) {
	resp, err := c.rpc.Call(ctx, wire.MDSNode, &wire.Msg{Kind: wire.KMDSCreate, Name: name})
	if err != nil {
		return 0, err
	}
	defer resp.Release()
	if err := resp.Error(); err != nil {
		return 0, err
	}
	return resp.Ino, nil
}

// Create opens-or-creates a file and returns its ino.
//
// Deprecated: use CreateContext (or Open, which returns a *File handle).
func (c *Client) Create(name string) (uint64, error) {
	return c.CreateContext(context.Background(), name)
}

func (c *Client) lookup(ctx context.Context, ino uint64, stripe uint32) (wire.StripeLoc, error) {
	key := stripeAddr{ino, stripe}
	c.locMu.RLock()
	loc, ok := c.locs[key]
	c.locMu.RUnlock()
	if ok {
		return loc, nil
	}
	resp, err := c.rpc.Call(ctx, wire.MDSNode, &wire.Msg{Kind: wire.KMDSLookup, Block: wire.BlockID{Ino: ino, Stripe: stripe}})
	if err != nil {
		return wire.StripeLoc{}, err
	}
	// Loc.Nodes is decoded into its own allocation (never aliasing the
	// response buffer), so the placement may be cached past the release.
	defer resp.Release()
	if err := resp.Error(); err != nil {
		return wire.StripeLoc{}, err
	}
	c.cacheLoc(key, resp.Loc)
	return resp.Loc, nil
}

// cacheLoc installs a freshly resolved placement, never clobbering a
// newer one a concurrent refresh installed while the lookup was in
// flight.
func (c *Client) cacheLoc(key stripeAddr, loc wire.StripeLoc) {
	c.locMu.Lock()
	if cur, ok := c.locs[key]; !ok || loc.Epoch >= cur.Epoch {
		c.locs[key] = loc
	}
	c.locMu.Unlock()
}

// refreshLoc re-resolves one stripe's placement after an attempt with
// epoch `stale` failed. If the cache already holds a newer placement —
// a concurrent part of the same request refreshed it first — that copy
// is returned without another MDS round trip, so a rebind costs one
// lookup per client, not one per in-flight shard.
func (c *Client) refreshLoc(ctx context.Context, ino uint64, stripe uint32, stale uint64) (wire.StripeLoc, error) {
	key := stripeAddr{ino, stripe}
	c.locMu.Lock()
	if cur, ok := c.locs[key]; ok && cur.Epoch > stale {
		c.locMu.Unlock()
		return cur, nil
	}
	delete(c.locs, key)
	c.locMu.Unlock()
	return c.lookup(ctx, ino, stripe)
}

// InvalidateLocations clears the placement cache. With placement epochs
// this is no longer required for correctness after a recovery — stale
// entries are detected and re-resolved per stripe — but it remains
// useful to reset a client wholesale.
func (c *Client) InvalidateLocations() {
	c.locMu.Lock()
	c.locs = make(map[stripeAddr]wire.StripeLoc)
	c.locMu.Unlock()
}

// WriteStripeContext encodes and distributes one full stripe of file
// data (len(data) must be K*blockSize). Returns the modeled latency:
// blocks are transferred concurrently, so the cost is the slowest
// member.
//
// Cancellation is checked once at entry; past that point the write
// ignores the caller's ctx (cancel and deadline alike), so a stripe is
// never placed at the MDS with only some of its shards stored. The
// detached fan-out still runs under the stripeWriteBudget liveness
// backstop — should that fire (a hung OSD), the write errors out and
// the stripe may be left short of shards for Scrub to flag.
func (c *Client) WriteStripeContext(ctx context.Context, ino uint64, stripe uint32, data []byte) (time.Duration, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if len(data) != c.StripeSpan() {
		return 0, fmt.Errorf("ecfs: stripe write of %d bytes, want %d", len(data), c.StripeSpan())
	}
	costs, errs := c.writeWindow(ctx, ino, stripe, data, 1)
	return costs[0], errs[0]
}

// lookupWindow resolves placements for n consecutive stripes, serving
// cache hits locally and batching every miss into one KMDSLookup
// fan-out — a cold multi-stripe write pays one coalesced MDS flush, not
// one round trip per stripe. Failures are per stripe: errs[s] != nil
// means stripe s has no usable placement (locs[s] is zero).
func (c *Client) lookupWindow(ctx context.Context, ino uint64, first uint32, n int) ([]wire.StripeLoc, []error) {
	locs := make([]wire.StripeLoc, n)
	errs := make([]error, n)
	var miss []int
	c.locMu.RLock()
	for s := 0; s < n; s++ {
		if loc, ok := c.locs[stripeAddr{ino, first + uint32(s)}]; ok {
			locs[s] = loc
		} else {
			miss = append(miss, s)
		}
	}
	c.locMu.RUnlock()
	if len(miss) == 0 {
		return locs, errs
	}
	calls := make([]*transport.BatchCall, len(miss))
	for i, s := range miss {
		calls[i] = &transport.BatchCall{To: wire.MDSNode, Msg: &wire.Msg{
			Kind: wire.KMDSLookup, Block: wire.BlockID{Ino: ino, Stripe: first + uint32(s)},
		}}
	}
	transport.Fanout(ctx, c.rpc, calls)
	for i, s := range miss {
		bc := calls[i]
		if bc.Err != nil {
			errs[s] = bc.Err
			continue
		}
		if err := bc.Resp.Error(); err != nil {
			errs[s] = err
		} else {
			c.cacheLoc(stripeAddr{ino, first + uint32(s)}, bc.Resp.Loc)
			locs[s] = bc.Resp.Loc
		}
		bc.Resp.Release()
	}
	return locs, errs
}

// writeWindow encodes and distributes a window of n consecutive stripes
// starting at `first`. data holds the window's file bytes in stripe
// order; every stripe but the last must be full, and a short tail is
// zero-padded. Returns per-stripe costs and errors — a failed shard
// degrades only its own stripe.
//
// This is the cross-stripe coalescing core: placements for the whole
// window are resolved up front (lookupWindow), every stripe is encoded,
// and all n×(K+M) shard frames are issued as a single batch — so on a
// batch-capable transport every same-destination frame of the *window*
// enters its connection's write queue together and leaves in one
// coalesced flush per destination. KWriteBlock is a full-block
// overwrite — idempotent — so any shard that fails the fast path (node
// unreachable, stale placement) safely drops to the per-shard
// re-resolve loop, which retries only that shard.
//
// Cancellation is checked once at entry; past that point the window
// ignores the caller's ctx (cancel and deadline alike), so a stripe is
// never left bound at the MDS with only some of its shards stored
// (Scrub's invariant). Detached must not mean unbounded, though — over
// TCP an OSD that accepts the connection and never replies would
// otherwise hang the write forever — so the fan-out runs under the
// stripeWriteBudget liveness backstop; should that fire, the write
// errors out and the stripe may be left short of shards for Scrub to
// flag.
func (c *Client) writeWindow(ctx context.Context, ino uint64, first uint32, data []byte, n int) ([]time.Duration, []error) {
	costs := make([]time.Duration, n)
	errs := make([]error, n)
	if err := ctx.Err(); err != nil {
		for s := range errs {
			errs[s] = err
		}
		return costs, errs
	}
	ctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), stripeWriteBudget)
	defer cancel()
	span := c.StripeSpan()
	locs, errs := c.lookupWindow(ctx, ino, first, n)
	type shardRef struct {
		stripe int
		idx    int
		shard  []byte
	}
	var (
		calls []*transport.BatchCall
		refs  []shardRef
	)
	for s := 0; s < n; s++ {
		if errs[s] != nil {
			continue
		}
		chunk := data[s*span : min(len(data), (s+1)*span)]
		if len(chunk) < span {
			padded := make([]byte, span)
			copy(padded, chunk)
			chunk = padded
		}
		shards := make([][]byte, c.code.K)
		for i := range shards {
			// Interior shards alias the caller's buffer directly — the
			// OSD's blockstore copies on ingest, so no stripe-local copy
			// is needed.
			shards[i] = chunk[i*c.blockSize : (i+1)*c.blockSize]
		}
		parity, err := c.code.Encode(shards)
		if err != nil {
			errs[s] = err
			continue
		}
		all := append(shards, parity...)
		for i, shard := range all {
			calls = append(calls, &transport.BatchCall{To: locs[s].Nodes[i], Msg: &wire.Msg{
				Kind:  wire.KWriteBlock,
				Block: wire.BlockID{Ino: ino, Stripe: first + uint32(s), Idx: uint8(i)},
				Data:  shard,
				Loc:   locs[s],
			}})
			refs = append(refs, shardRef{s, i, shard})
		}
	}
	transport.Fanout(ctx, c.rpc, calls)
	var (
		wg sync.WaitGroup
		mu sync.Mutex
	)
	setCost := func(s int, cost time.Duration) {
		if cost > costs[s] {
			costs[s] = cost
		}
	}
	for ci, bc := range calls {
		ref := refs[ci]
		if bc.Err == nil && bc.Resp.OK() {
			mu.Lock()
			setCost(ref.stripe, bc.Resp.Cost)
			mu.Unlock()
			bc.Resp.Release()
			continue
		}
		if bc.Err == nil && !bc.Resp.IsStale() {
			// A structured, non-stale rejection (bad geometry, storage
			// failure): re-resolving the placement cannot change it.
			mu.Lock()
			if errs[ref.stripe] == nil {
				errs[ref.stripe] = bc.Resp.Error()
			}
			mu.Unlock()
			bc.Resp.Release()
			continue
		}
		if bc.Err == nil {
			bc.Resp.Release()
		}
		wg.Add(1)
		go func(ref shardRef, loc wire.StripeLoc) {
			defer wg.Done()
			b := wire.BlockID{Ino: ino, Stripe: first + uint32(ref.stripe), Idx: uint8(ref.idx)}
			cost, err := c.writeShard(ctx, b, ref.shard, loc)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if errs[ref.stripe] == nil {
					errs[ref.stripe] = err
				}
				return
			}
			setCost(ref.stripe, cost)
		}(ref, locs[ref.stripe])
	}
	wg.Wait()
	return costs, errs
}

// WriteStripe encodes and distributes one full stripe.
//
// Deprecated: use WriteStripeContext.
func (c *Client) WriteStripe(ino uint64, stripe uint32, data []byte) (time.Duration, error) {
	return c.WriteStripeContext(context.Background(), ino, stripe, data)
}

// sendWithReresolve delivers one block-addressed request, re-resolving
// the placement and retrying when the target rejects a stale epoch or
// is unreachable. send is invoked with the placement to use for the
// attempt. A refresh that returns an unchanged placement stops the
// loop: the MDS agrees with the cache, so the failure is real. A
// cancelled ctx stops the loop immediately.
//
// Retry safety: a stale-epoch *rejection* happens before any server
// state changes, so it may always be retried — even to the same node,
// with the refreshed placement. A *transport* error, however, can (on
// the TCP transport) mean "applied but the reply was lost"; a
// non-idempotent request (idempotent=false) is therefore retried after
// a transport error only if the block's host changed — a node that may
// already have applied it is never re-delivered to.
//
// Buffer ownership: every failed attempt's response is released here;
// the successful response is returned and becomes the caller's to
// Release once it is done with Resp.Data.
func (c *Client) sendWithReresolve(ctx context.Context, b wire.BlockID, loc wire.StripeLoc, idempotent bool, send func(loc wire.StripeLoc) (*wire.Resp, error)) (*wire.Resp, error) {
	var (
		lastErr   error
		lastStale bool
	)
	for attempt := 0; attempt <= maxStaleRetries; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return nil, lastErr
			}
			return nil, err
		}
		if attempt > 0 {
			nl, err := c.refreshLoc(ctx, b.Ino, b.Stripe, loc.Epoch)
			if err != nil {
				return nil, err
			}
			sameHost := nl.Nodes[b.Idx] == loc.Nodes[b.Idx]
			if nl.Epoch == loc.Epoch && sameHost {
				return nil, lastErr
			}
			if sameHost && !lastStale && !idempotent {
				return nil, lastErr
			}
			loc = nl
		}
		resp, err := send(loc)
		if err != nil {
			lastErr, lastStale = err, false
			continue
		}
		if resp.IsStale() {
			lastErr, lastStale = resp.Error(), true
			resp.Release()
			continue
		}
		if e := resp.Error(); e != nil {
			resp.Release()
			return nil, e
		}
		return resp, nil
	}
	return nil, lastErr
}

// writeShard delivers one stripe member with placement re-resolution
// (idempotent: a full-block overwrite may be re-delivered freely).
func (c *Client) writeShard(ctx context.Context, b wire.BlockID, shard []byte, loc wire.StripeLoc) (time.Duration, error) {
	resp, err := c.sendWithReresolve(ctx, b, loc, true, func(loc wire.StripeLoc) (*wire.Resp, error) {
		return c.rpc.Call(ctx, loc.Nodes[b.Idx], &wire.Msg{Kind: wire.KWriteBlock, Block: b, Data: shard, Loc: loc})
	})
	if err != nil {
		return 0, err
	}
	cost := resp.Cost
	resp.Release()
	return cost, nil
}

// WriteFileContext stripes data from file offset 0, zero-padding the
// tail stripe, and returns the number of stripes written. Stripes are
// written in coalescing windows (writeCoalesceStripes at a time, all
// shard frames of a window batched per destination); the context is
// checked before every window: a cancelled write stops at a window
// boundary, with every already-written stripe complete and no partial
// stripe bound at the MDS.
func (c *Client) WriteFileContext(ctx context.Context, ino uint64, data []byte) (int, error) {
	return c.writeStripes(ctx, ino, 0, data)
}

// writeStripes chunks data into stripes starting at stripe `first`
// (zero-padding the tail) and writes them in coalescing windows of
// writeCoalesceStripes through writeWindow — the shared striping loop
// behind WriteFileContext and File.WriteAt. It returns the number of
// contiguous stripes completed from the start: on error, every stripe
// before the reported count is fully stored (later stripes of the same
// window may also have landed, but the count never skips a failure).
func (c *Client) writeStripes(ctx context.Context, ino uint64, first uint32, data []byte) (int, error) {
	span := c.StripeSpan()
	stripes := (len(data) + span - 1) / span
	done := 0
	for done < stripes {
		if err := ctx.Err(); err != nil {
			return done, err
		}
		n := min(writeCoalesceStripes, stripes-done)
		lo := done * span
		hi := min(len(data), (done+n)*span)
		_, errs := c.writeWindow(ctx, ino, first+uint32(done), data[lo:hi], n)
		for s := 0; s < n; s++ {
			if errs[s] != nil {
				return done + s, errs[s]
			}
		}
		done += n
	}
	return done, nil
}

// WriteFile stripes data from file offset 0.
//
// Deprecated: use WriteFileContext (or File.WriteAt via Open).
func (c *Client) WriteFile(ino uint64, data []byte) (int, error) {
	return c.WriteFileContext(context.Background(), ino, data)
}

// UpdateContext applies a partial update at a file byte offset,
// splitting it across data blocks as needed. v is the virtual workload
// time of the request. Returns the synchronous update latency (max
// across split parts, which proceed concurrently). A cancelled ctx
// aborts unsent parts at the next priced step; like any interrupted
// POSIX write, a multi-part update may be torn (parity stays consistent
// per part — each part's two-stage update is atomic at its OSD).
func (c *Client) UpdateContext(ctx context.Context, ino uint64, off int64, data []byte, v time.Duration) (time.Duration, error) {
	parts, err := c.split(ctx, ino, off, len(data))
	if err != nil {
		return 0, err
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		max  time.Duration
		rerr error
	)
	for _, p := range parts {
		wg.Add(1)
		go func(p part) {
			defer wg.Done()
			cost, err := c.updatePart(ctx, p, data[p.src:p.src+p.n], v)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				rerr = err
				return
			}
			if cost > max {
				max = cost
			}
		}(p)
	}
	wg.Wait()
	return max, rerr
}

// Update applies a partial update at a file byte offset.
//
// Deprecated: use UpdateContext (or File.UpdateAt via Open).
func (c *Client) Update(ino uint64, off int64, data []byte, v time.Duration) (time.Duration, error) {
	return c.UpdateContext(context.Background(), ino, off, data, v)
}

// updatePart routes one split of an update to its data block's OSD with
// placement re-resolution. The update is not idempotent, so
// sendWithReresolve only retries it to a *different* host after a
// transport error (the prior target is dead or rebound away — its
// state is discarded by recovery); stale-epoch rejections retry freely.
func (c *Client) updatePart(ctx context.Context, p part, payload []byte, v time.Duration) (time.Duration, error) {
	resp, err := c.sendWithReresolve(ctx, p.block, p.loc, false, func(loc wire.StripeLoc) (*wire.Resp, error) {
		return c.rpc.Call(ctx, loc.Nodes[p.block.Idx], &wire.Msg{
			Kind:  wire.KUpdate,
			Block: p.block,
			Off:   p.off,
			Data:  payload,
			K:     uint8(c.code.K),
			M:     uint8(c.code.M),
			Loc:   loc,
			V:     int64(v),
		})
	})
	if err != nil {
		return 0, err
	}
	cost := resp.Cost
	resp.Release()
	return cost, nil
}

// ReadContext fetches [off, off+size) of a file.
func (c *Client) ReadContext(ctx context.Context, ino uint64, off int64, size int) ([]byte, time.Duration, error) {
	parts, err := c.split(ctx, ino, off, size)
	if err != nil {
		return nil, 0, err
	}
	out := make([]byte, size)
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		max  time.Duration
		rerr error
	)
	for _, p := range parts {
		wg.Add(1)
		go func(p part) {
			defer wg.Done()
			cost, err := c.readPart(ctx, p, out[p.src:p.src+p.n])
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				rerr = err
				return
			}
			if cost > max {
				max = cost
			}
		}(p)
	}
	wg.Wait()
	if rerr != nil {
		return nil, 0, rerr
	}
	return out, max, nil
}

// Read fetches [off, off+size) of a file.
//
// Deprecated: use ReadContext (or File.ReadAt via Open).
func (c *Client) Read(ino uint64, off int64, size int) ([]byte, time.Duration, error) {
	return c.ReadContext(context.Background(), ino, off, size)
}

// Stripes returns the number of placed stripes of a file (KMDSStat).
func (c *Client) Stripes(ctx context.Context, ino uint64) (int, error) {
	resp, err := c.rpc.Call(ctx, wire.MDSNode, &wire.Msg{Kind: wire.KMDSStat, Block: wire.BlockID{Ino: ino}})
	if err != nil {
		return 0, err
	}
	defer resp.Release()
	if err := resp.Error(); err != nil {
		return 0, err
	}
	return int(resp.Val), nil
}

// readPart serves one block-range read into dst (len(dst) == p.n). The
// normal path ships the cached placement so the holder can epoch-check
// it: a stale-epoch rejection or an unreachable holder re-resolves at
// the MDS and retries — after a repair or drain rebinds the stripe,
// this is how the read cuts over to the new holder with no K-way
// decode. Only when the normal path is exhausted does the read degrade
// to reconstruction, and then it tells the MDS (wire.KRepairHint) so an
// in-flight repair promotes the stripe to the front of its queue.
//
// Copying into dst here (rather than returning Resp.Data) is what lets
// the response buffer go back to the transport pool before the part
// fan-out joins.
func (c *Client) readPart(ctx context.Context, p part, dst []byte) (time.Duration, error) {
	resp, err := c.sendWithReresolve(ctx, p.block, p.loc, true, func(loc wire.StripeLoc) (*wire.Resp, error) {
		return c.rpc.Call(ctx, loc.Nodes[p.block.Idx], &wire.Msg{
			Kind: wire.KRead, Block: p.block, Off: p.off, Size: uint32(p.n), Loc: loc,
		})
	})
	if err == nil {
		cost := resp.Cost
		copy(dst, resp.Data)
		resp.Release()
		return cost, nil
	}
	if ctx.Err() != nil {
		return 0, err
	}
	// Degraded read: the block's holder cannot serve it (node down, or
	// the block is mid-migration), so rebuild the requested range from K
	// surviving blocks — under the freshest placement the retry loop
	// left in the cache.
	if nl, lerr := c.lookup(ctx, p.block.Ino, p.block.Stripe); lerr == nil {
		p.loc = nl
	}
	cost, derr := c.degradedRead(ctx, p, dst)
	if derr != nil {
		return 0, fmt.Errorf("%w (degraded fallback: %v)", err, derr)
	}
	c.degraded.Add(1)
	c.hintRepair(ctx, p.block)
	return cost, nil
}

// hintRepair tells the MDS a degraded read just paid the K-fetch decode
// price for a stripe, so an active repair can promote it to the front
// of its rebuild queue (read-through repair). Best effort: with no
// repair running the MDS ignores the hint.
func (c *Client) hintRepair(ctx context.Context, b wire.BlockID) {
	c.hints.Add(1)
	if resp, err := c.rpc.Call(ctx, wire.MDSNode, &wire.Msg{Kind: wire.KRepairHint, Block: b}); err == nil {
		resp.Release()
	}
}

// degradedRead reconstructs one part's data block from stripe survivors
// into dst — the degraded-read path an erasure-coded file system must
// serve while a node is down and recovery has not yet completed. It
// reflects the last *recycled* state: updates still buffered in the
// failed node's DataLog are only restored by recovery's replica-log
// replay (Cluster.Recover). Survivor shards alias their pooled response
// buffers, so those are held until the decode has copied out and only
// then released.
func (c *Client) degradedRead(ctx context.Context, p part, dst []byte) (time.Duration, error) {
	n := c.code.K + c.code.M
	shards := make([][]byte, n)
	resps := make([]*wire.Resp, 0, c.code.K)
	defer func() {
		for _, r := range resps {
			r.Release()
		}
	}()
	have := 0
	var cost time.Duration
	for idx := 0; idx < n && have < c.code.K; idx++ {
		if idx == int(p.block.Idx) {
			continue
		}
		b := p.block.WithIdx(uint8(idx))
		resp, err := c.rpc.Call(ctx, p.loc.Nodes[idx], &wire.Msg{Kind: wire.KBlockFetch, Block: b})
		if err != nil {
			continue
		}
		if !resp.OK() {
			resp.Release()
			continue
		}
		resps = append(resps, resp)
		shards[idx] = resp.Data
		have++
		if resp.Cost > cost {
			cost = resp.Cost
		}
	}
	if have < c.code.K {
		return 0, fmt.Errorf("ecfs: degraded read of %v: only %d of %d shards reachable", p.block, have, c.code.K)
	}
	if err := c.code.Reconstruct(shards); err != nil {
		return 0, fmt.Errorf("ecfs: degraded read of %v: %w", p.block, err)
	}
	rebuilt := shards[p.block.Idx]
	if int(p.off)+p.n > len(rebuilt) {
		return 0, fmt.Errorf("ecfs: degraded read of %v: range beyond block", p.block)
	}
	copy(dst, rebuilt[p.off:int(p.off)+p.n])
	return cost, nil
}

// part maps a byte range of a file request onto one data block. The
// block's current host is derived from loc at send time (loc may be
// refreshed by the stale-epoch retry loop).
type part struct {
	block wire.BlockID
	loc   wire.StripeLoc
	off   uint32 // intra-block offset
	src   int    // offset within the request payload
	n     int
}

func (c *Client) split(ctx context.Context, ino uint64, off int64, size int) ([]part, error) {
	if off < 0 || size < 0 {
		return nil, fmt.Errorf("ecfs: negative range")
	}
	span := int64(c.StripeSpan())
	var parts []part
	src := 0
	for size > 0 {
		stripe := uint32(off / span)
		inStripe := off % span
		blockIdx := int(inStripe) / c.blockSize
		blockOff := uint32(int(inStripe) % c.blockSize)
		n := min(size, c.blockSize-int(blockOff))
		loc, err := c.lookup(ctx, ino, stripe)
		if err != nil {
			return nil, err
		}
		b := wire.BlockID{Ino: ino, Stripe: stripe, Idx: uint8(blockIdx)}
		parts = append(parts, part{
			block: b, loc: loc,
			off: blockOff, src: src, n: n,
		})
		off += int64(n)
		src += n
		size -= n
	}
	return parts, nil
}
