package ecfs

import (
	"context"
	"fmt"
	"sync/atomic"

	"repro/internal/erasure"
	"repro/internal/transport"
	"repro/internal/wire"
)

// dialClientSeq hands out distinct client node ids within this process.
// Client ids only matter for accounting (the TCP transport does not
// price by NIC), so process-local uniqueness suffices.
var dialClientSeq atomic.Int32

// RemoteClient is a client of a TCP-deployed ECFS cluster, obtained
// from Dial. It embeds a *Client (so every client operation and the
// File-handle surface are available) and owns the underlying connection
// pool, which re-resolves node addresses through the MDS
// (wire.KResolveAddr) whenever a node is unreachable or unknown — a
// replacement OSD that announced itself via heartbeats is found with no
// manual SetAddr.
type RemoteClient struct {
	*Client
	rpc     *transport.TCPClient
	mdsAddr string
	k, m    int
}

// Dial connects to a TCP-deployed ECFS cluster knowing only the MDS
// address. It self-discovers everything else over wire.KResolveAddr:
// the node address map (fed by OSD heartbeats), the stripe geometry and
// the block size. The returned client's pool keeps re-resolving through
// the same RPC, so fresh-id recovery and node restarts on new ports are
// followed transparently.
//
// The deployment must report its configuration: cmd/ecfsd's MDS role
// does (its -k/-m/-block flags), and OSDs announce their listen
// addresses on every heartbeat.
func Dial(ctx context.Context, mdsAddr string) (*RemoteClient, error) {
	rpc := transport.NewTCPClient(map[wire.NodeID]string{wire.MDSNode: mdsAddr})
	resp, err := rpc.Call(ctx, wire.MDSNode, &wire.Msg{Kind: wire.KResolveAddr})
	if err != nil {
		rpc.Close()
		return nil, fmt.Errorf("ecfs: dial %s: %w", mdsAddr, err)
	}
	// DecodeAddrMap copies every entry out of the payload, so the
	// response buffer can go back to the pool when Dial returns.
	defer resp.Release()
	if err := resp.Error(); err != nil {
		rpc.Close()
		return nil, fmt.Errorf("ecfs: dial %s: %w", mdsAddr, err)
	}
	k, m, blockSize := int(resp.Val>>32), int(resp.Val&0xFFFFFFFF), int(resp.Ino)
	if k < 1 || m < 1 || blockSize < 1 {
		rpc.Close()
		return nil, fmt.Errorf("ecfs: dial %s: MDS did not report cluster geometry (k=%d m=%d block=%d); does the deployment set it (ecfsd -k/-m/-block)?", mdsAddr, k, m, blockSize)
	}
	addrs, err := wire.DecodeAddrMap(resp.Data)
	if err != nil {
		rpc.Close()
		return nil, fmt.Errorf("ecfs: dial %s: %w", mdsAddr, err)
	}
	// The MDS itself stays reachable at the dialed address even if the
	// map carries no (or a non-routable) self entry.
	delete(addrs, wire.MDSNode)
	rpc.UpdateAddrs(addrs)
	rpc.SetResolver(func(ctx context.Context) (map[wire.NodeID]string, error) {
		r, err := rpc.Call(ctx, wire.MDSNode, &wire.Msg{Kind: wire.KResolveAddr})
		if err != nil {
			return nil, err
		}
		defer r.Release()
		if err := r.Error(); err != nil {
			return nil, err
		}
		out, err := wire.DecodeAddrMap(r.Data)
		if err != nil {
			return nil, err
		}
		delete(out, wire.MDSNode)
		return out, nil
	})
	code, err := erasure.New(k, m, erasure.Vandermonde)
	if err != nil {
		rpc.Close()
		return nil, err
	}
	id := wire.ClientIDBase + wire.NodeID(dialClientSeq.Add(1))
	return &RemoteClient{
		Client:  NewClient(id, rpc, code, blockSize),
		rpc:     rpc,
		mdsAddr: mdsAddr,
		k:       k, m: m,
	}, nil
}

// Geometry returns the discovered stripe geometry (K, M).
func (r *RemoteClient) Geometry() (int, int) { return r.k, r.m }

// MDSAddr returns the address the client was dialed against.
func (r *RemoteClient) MDSAddr() string { return r.mdsAddr }

// Transport exposes the underlying TCP pool (tests, diagnostics).
func (r *RemoteClient) Transport() *transport.TCPClient { return r.rpc }

// OpenFile opens-or-creates a file and returns a handle bound to ctx.
func (r *RemoteClient) OpenFile(ctx context.Context, name string) (*File, error) {
	return r.Open(ctx, name)
}

// CreateFile is OpenFile under the name the creation path reads
// naturally by; the MDS has open-or-create semantics, so both succeed
// whether or not the file exists.
func (r *RemoteClient) CreateFile(ctx context.Context, name string) (*File, error) {
	return r.Open(ctx, name)
}

// Close releases the connection pool. Open File handles share it and
// become unusable.
func (r *RemoteClient) Close() error {
	r.rpc.Close()
	return nil
}
