package ecfs

import (
	"context"
	"math/rand"
	"testing"
	"time"
)

// durableOptions is testOptions backed by an on-disk storage engine.
func durableOptions(t *testing.T, method string) Options {
	t.Helper()
	opts := testOptions(method)
	opts.DataDir = t.TempDir()
	return opts
}

// applyUpdates issues n small random in-place updates through the
// client and mirrors them locally.
func applyUpdates(t *testing.T, cli *Client, ino uint64, mirror []byte, n int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		off := rng.Intn(len(mirror) - 256)
		buf := make([]byte, 64+rng.Intn(192))
		rng.Read(buf)
		if _, err := cli.Update(ino, int64(off), buf, time.Duration(i+1)); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
		copy(mirror[off:], buf)
	}
}

// TestDurableWriteVerify checks the durable engine is a drop-in for the
// in-memory store on the normal data path.
func TestDurableWriteVerify(t *testing.T) {
	c := MustNewCluster(durableOptions(t, "tsue"))
	defer c.Close()
	cli := c.NewClient()
	ino, mirror := writeTestFile(t, c, cli, 64<<10, 11)
	applyUpdates(t, cli, ino, mirror, 16, 12)
	if err := c.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyStripes(ino, mirror); err != nil {
		t.Fatal(err)
	}
}

// TestKillRestartQuiesced crashes a durable OSD with acknowledged
// updates still sitting in its log pools, restarts it from the same
// directory, and checks (a) nothing needed a rebuild — the outage
// touched no stripe — and (b) the replayed log records drain to a
// parity-consistent, byte-identical file.
func TestKillRestartQuiesced(t *testing.T) {
	c := MustNewCluster(durableOptions(t, "tsue"))
	defer c.Close()
	ctx := context.Background()
	cli := c.NewClient()
	ino, mirror := writeTestFile(t, c, cli, 64<<10, 21)
	// No Flush: the updates' effects live only in (persisted) logs when
	// the crash hits.
	applyUpdates(t, cli, ino, mirror, 24, 22)

	victim := c.OSDs[0].id
	c.CrashOSD(victim)
	_, res, err := c.RestartOSD(ctx, victim)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	if res.Rebuilt != 0 {
		t.Fatalf("quiesced outage rebuilt %d stripes, want 0 (kept %d, dropped %d)", res.Rebuilt, res.Kept, res.Dropped)
	}
	if res.Kept == 0 {
		t.Fatal("restarted node kept no stripes; resilver saw no local state")
	}
	if res.Dropped != 0 {
		t.Fatalf("dropped %d blocks, want 0", res.Dropped)
	}

	if err := c.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyStripes(ino, mirror); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Scrub(); err != nil {
		t.Fatal(err)
	}
}

// TestKillRestartStaleRebuild bumps placement epochs while a durable
// OSD is down (a concurrent node failure is repaired and rebound), so
// on restart the node's overlapping stripes are stale and must be
// rebuilt — but only those.
func TestKillRestartStaleRebuild(t *testing.T) {
	c := MustNewCluster(durableOptions(t, "tsue"))
	defer c.Close()
	ctx := context.Background()
	cli := c.NewClient()
	ino, mirror := writeTestFile(t, c, cli, 64<<10, 31)
	if err := c.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	sleeper := c.OSDs[0].id
	c.CrashOSD(sleeper)

	// A second node dies for real while the first sleeps; its stripes
	// are rebound onto a fresh replacement, bumping their epochs.
	casualty := c.OSDs[1].id
	c.FailOSD(casualty)
	repl, err := c.SpawnOSD(c.MaxNodeID() + 1)
	if err != nil {
		t.Fatal(err)
	}
	c.AddOSD(repl)
	if _, err := c.Recover(ctx, casualty, repl); err != nil {
		t.Fatalf("recover: %v", err)
	}

	_, res, err := c.RestartOSD(ctx, sleeper)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	if res.Rebuilt == 0 {
		t.Fatal("epoch-bumped stripes were not rebuilt on restart")
	}

	if err := c.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyStripes(ino, mirror); err != nil {
		t.Fatal(err)
	}
}
