package ecfs

import (
	"bytes"
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/wire"
)

// TestCompressionEquivalence: the §7 compression extension must not
// change any byte of the final state.
func TestCompressionEquivalence(t *testing.T) {
	opts := testOptions("tsue")
	cfg := *opts.Strategy
	cfg.CompressDeltas = true
	opts.Strategy = &cfg
	c := MustNewCluster(opts)
	defer c.Close()
	cli := c.NewClient()
	fileSize := 64 << 10
	ino, mirror := writeTestFile(t, c, cli, fileSize, 31)
	rng := rand.New(rand.NewSource(33))
	for i := 0; i < 300; i++ {
		off := int64(rng.Intn(fileSize - 512))
		data := make([]byte, 1+rng.Intn(512))
		rng.Read(data)
		if _, err := cli.Update(ino, off, data, time.Duration(i)*time.Millisecond); err != nil {
			t.Fatal(err)
		}
		copy(mirror[off:], data)
	}
	if err := c.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyStripes(ino, mirror); err != nil {
		t.Fatal(err)
	}
}

// TestCompressionReducesTraffic: compressible update payloads must shrink
// inter-OSD traffic when the extension is enabled.
func TestCompressionReducesTraffic(t *testing.T) {
	traffic := func(compress bool) int64 {
		opts := testOptions("tsue")
		cfg := *opts.Strategy
		cfg.CompressDeltas = compress
		opts.Strategy = &cfg
		c := MustNewCluster(opts)
		defer c.Close()
		cli := c.NewClient()
		fileSize := 64 << 10
		ino, _ := writeTestFile(t, c, cli, fileSize, 35)
		payload := bytes.Repeat([]byte("compressible! "), 64) // ~900 B, highly redundant
		rng := rand.New(rand.NewSource(37))
		for i := 0; i < 150; i++ {
			off := int64(rng.Intn(fileSize - len(payload)))
			if _, err := cli.Update(ino, off, payload, 0); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.Flush(context.Background()); err != nil {
			t.Fatal(err)
		}
		if err := c.VerifyStripes(ino, nil); err != nil {
			t.Fatal(err)
		}
		return c.OSDTraffic()
	}
	plain := traffic(false)
	compressed := traffic(true)
	if compressed >= plain {
		t.Fatalf("compression did not reduce traffic: %d >= %d", compressed, plain)
	}
	if float64(compressed) > 0.9*float64(plain) {
		t.Fatalf("compression saved too little on redundant deltas: %d vs %d", compressed, plain)
	}
}

// TestDegradedRead: with one OSD down and no recovery yet, reads of its
// blocks must be served by on-the-fly reconstruction from survivors.
func TestDegradedRead(t *testing.T) {
	for _, method := range []string{"tsue", "fo"} {
		method := method
		t.Run(method, func(t *testing.T) {
			t.Parallel()
			c := MustNewCluster(testOptions(method))
			defer c.Close()
			cli := c.NewClient()
			fileSize := 48 << 10
			ino, mirror := writeTestFile(t, c, cli, fileSize, 41)
			rng := rand.New(rand.NewSource(43))
			for i := 0; i < 100; i++ {
				off := int64(rng.Intn(fileSize - 128))
				data := make([]byte, 1+rng.Intn(128))
				rng.Read(data)
				if _, err := cli.Update(ino, off, data, 0); err != nil {
					t.Fatal(err)
				}
				copy(mirror[off:], data)
			}
			// Flush so survivors hold the full state, then kill a node.
			if err := c.Flush(context.Background()); err != nil {
				t.Fatal(err)
			}
			loc, _ := c.MDS.Lookup(ino, 0)
			c.FailOSD(loc.Nodes[1])

			got, _, err := cli.Read(ino, 0, fileSize)
			if err != nil {
				t.Fatalf("degraded read failed: %v", err)
			}
			if !bytes.Equal(got, mirror[:fileSize]) {
				t.Fatal("degraded read returned wrong data")
			}
		})
	}
}

func TestDegradedReadTooManyFailures(t *testing.T) {
	c := MustNewCluster(testOptions("fo")) // K=4, M=2: three failures is fatal
	defer c.Close()
	cli := c.NewClient()
	ino, _ := writeTestFile(t, c, cli, 48<<10, 45)
	if err := c.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	loc, _ := c.MDS.Lookup(ino, 0)
	c.FailOSD(loc.Nodes[0])
	c.FailOSD(loc.Nodes[1])
	c.FailOSD(loc.Nodes[2])
	if _, _, err := cli.Read(ino, 0, 4096); err == nil {
		t.Fatal("read must fail with more than M nodes down")
	}
}

func TestScrub(t *testing.T) {
	c := MustNewCluster(testOptions("tsue"))
	defer c.Close()
	cli := c.NewClient()
	ino1, _ := writeTestFile(t, c, cli, 32<<10, 47)
	ino2, err := cli.Create("second")
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, cli.StripeSpan())
	if _, err := cli.WriteFile(ino2, data); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	n, err := c.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	want := c.MDS.Stripes(ino1) + c.MDS.Stripes(ino2)
	if n != want {
		t.Fatalf("scrubbed %d stripes, want %d", n, want)
	}
	// Corrupt one byte of a parity block: scrub must catch it.
	loc, _ := c.MDS.Lookup(ino1, 0)
	pNode := c.OSD(loc.Nodes[c.Opts.K])
	pb := wireBlock(ino1, 0, uint8(c.Opts.K))
	snap, _ := pNode.Store().Snapshot(pb)
	snap[0] ^= 0xff
	pNode.Store().WriteFull(pb, snap, true)
	if _, err := c.Scrub(); err == nil {
		t.Fatal("scrub missed a corrupted parity block")
	}
}

// TestCrashRecoveryBattery alternates workload bursts with node failures
// and recoveries, verifying full consistency after each round.
func TestCrashRecoveryBattery(t *testing.T) {
	opts := testOptions("tsue")
	c := MustNewCluster(opts)
	defer c.Close()
	cli := c.NewClient()
	fileSize := 64 << 10
	ino, mirror := writeTestFile(t, c, cli, fileSize, 51)
	rng := rand.New(rand.NewSource(53))

	for round := 0; round < 3; round++ {
		for i := 0; i < 80; i++ {
			off := int64(rng.Intn(fileSize - 200))
			data := make([]byte, 1+rng.Intn(200))
			rng.Read(data)
			if _, err := cli.Update(ino, off, data, time.Duration(i)*time.Millisecond); err != nil {
				t.Fatalf("round %d update: %v", round, err)
			}
			copy(mirror[off:], data)
		}
		// Fail a different OSD each round, with pending log state.
		victim := c.OSDs[(round*3+1)%len(c.OSDs)].ID()
		c.FailOSD(victim)
		cfg := *opts.Strategy
		cfg.BlockSize = opts.BlockSize
		repl, err := NewOSD(victim, opts.Device, c.Tr.Caller(victim), "tsue", cfg, opts.Kind)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Recover(context.Background(), victim, repl); err != nil {
			t.Fatalf("round %d recover: %v", round, err)
		}
		c.Reinstate(repl)
		got, _, err := cli.Read(ino, 0, fileSize)
		if err != nil {
			t.Fatalf("round %d read: %v", round, err)
		}
		if !bytes.Equal(got, mirror[:fileSize]) {
			t.Fatalf("round %d: content diverged after recovery", round)
		}
		if err := c.Flush(context.Background()); err != nil {
			t.Fatal(err)
		}
		if err := c.VerifyStripes(ino, mirror); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}

func wireBlock(ino uint64, stripe uint32, idx uint8) wire.BlockID {
	return wire.BlockID{Ino: ino, Stripe: stripe, Idx: idx}
}
