package ecfs

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/wire"
)

func testMDS(t testing.TB, osds, k, m, shards int) *MDS {
	t.Helper()
	ids := make([]wire.NodeID, osds)
	for i := range ids {
		ids[i] = wire.NodeID(i + 1)
	}
	md, err := NewMDSWithShards(ids, k, m, shards)
	if err != nil {
		t.Fatal(err)
	}
	return md
}

// scanStripesOn is the seed's full-namespace scan, kept as the oracle
// the incremental reverse index must match.
func scanStripesOn(m *MDS, id wire.NodeID) map[stripeKey]uint8 {
	out := make(map[stripeKey]uint8)
	for _, ino := range m.Files() {
		for s := 0; s < m.Stripes(ino); s++ {
			loc, err := m.Lookup(ino, uint32(s))
			if err != nil {
				continue
			}
			for idx, n := range loc.Nodes {
				if n == id {
					out[stripeKey{ino, uint32(s)}] = uint8(idx)
				}
			}
		}
	}
	return out
}

// TestStripesOnMatchesScan pins the tentpole invariant: the incremental
// node→stripe index returns exactly what a full-namespace scan would.
func TestStripesOnMatchesScan(t *testing.T) {
	md := testMDS(t, 12, 4, 2, 8)
	rng := rand.New(rand.NewSource(7))
	for f := 0; f < 200; f++ {
		ino, _ := md.Create(fmt.Sprintf("f%d", f))
		for s := 0; s < 1+rng.Intn(5); s++ {
			if _, err := md.Lookup(ino, uint32(s)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for id := wire.NodeID(1); id <= 12; id++ {
		want := scanStripesOn(md, id)
		got := md.StripesOn(id)
		if len(got) != len(want) {
			t.Fatalf("node %d: index has %d refs, scan %d", id, len(got), len(want))
		}
		for _, ref := range got {
			idx, ok := want[stripeKey{ref.Ino, ref.Stripe}]
			if !ok {
				t.Fatalf("node %d: index has %d/%d which the scan does not", id, ref.Ino, ref.Stripe)
			}
			if idx != ref.Idx {
				t.Fatalf("node %d: stripe %d/%d index mismatch: %d vs %d", id, ref.Ino, ref.Stripe, ref.Idx, idx)
			}
			if ref.Loc.Nodes[ref.Idx] != id {
				t.Fatalf("node %d: ref placement does not place the block here", id)
			}
		}
	}
}

// TestMDSShardRounding checks the shard-count normalization.
func TestMDSShardRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{{0, 1}, {1, 1}, {3, 4}, {16, 16}, {33, 64}} {
		md := testMDS(t, 8, 4, 2, tc.in)
		if md.Shards() != tc.want {
			t.Errorf("shards(%d) = %d, want %d", tc.in, md.Shards(), tc.want)
		}
	}
}

// TestMDSConcurrent drives creates, lookups, rebinds and reverse-index
// reads from many goroutines — the sharding contract, meaningful mostly
// under -race.
func TestMDSConcurrent(t *testing.T) {
	md := testMDS(t, 16, 4, 2, 8)
	md.AddNode(99) // rebind target
	const (
		workers = 8
		files   = 64
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 400; i++ {
				ino, _ := md.Create(fmt.Sprintf("f%d", rng.Intn(files)))
				stripe := uint32(rng.Intn(4))
				loc, err := md.Lookup(ino, stripe)
				if err != nil {
					t.Error(err)
					return
				}
				switch rng.Intn(4) {
				case 0:
					md.StripesOn(wire.NodeID(1 + rng.Intn(16)))
				case 1:
					// Rebind back and forth; each bump must be visible.
					if _, err := md.Rebind(ino, stripe, loc.Nodes[0], 99); err == nil {
						if _, err := md.Rebind(ino, stripe, 99, loc.Nodes[0]); err != nil {
							t.Errorf("rebind back: %v", err)
							return
						}
					}
				case 2:
					md.Stripes(ino)
				case 3:
					md.Heartbeat(wire.NodeID(1+rng.Intn(16)), time.Now())
				}
			}
		}(w)
	}
	wg.Wait()
	// After the dust settles the index must still match a full scan.
	for id := wire.NodeID(1); id <= 16; id++ {
		want := scanStripesOn(md, id)
		if got := md.StripesOn(id); len(got) != len(want) {
			t.Fatalf("node %d: index %d refs, scan %d", id, len(got), len(want))
		}
	}
}

// TestRebindBumpsEpoch checks the placement versioning contract: a
// rebind installs a fresh immutable StripeLoc with Epoch+1, moves the
// reverse-index entry, and leaves previously returned copies untouched.
func TestRebindBumpsEpoch(t *testing.T) {
	md := testMDS(t, 8, 4, 2, 4)
	ino, _ := md.Create("f")
	old, err := md.Lookup(ino, 0)
	if err != nil {
		t.Fatal(err)
	}
	if old.Epoch != 0 {
		t.Fatalf("fresh placement epoch = %d", old.Epoch)
	}
	victim := old.Nodes[2]
	md.AddNode(42)
	nl, err := md.Rebind(ino, 0, victim, 42)
	if err != nil {
		t.Fatal(err)
	}
	if nl.Epoch != 1 {
		t.Fatalf("rebound epoch = %d, want 1", nl.Epoch)
	}
	if nl.Nodes[2] != 42 {
		t.Fatalf("rebound node = %d, want 42", nl.Nodes[2])
	}
	if old.Nodes[2] != victim {
		t.Fatal("rebind mutated the published placement in place")
	}
	cur, err := md.Lookup(ino, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cur.Epoch != 1 || cur.Nodes[2] != 42 {
		t.Fatalf("lookup after rebind = %+v", cur)
	}
	for _, ref := range md.StripesOn(victim) {
		if ref.Ino == ino && ref.Stripe == 0 {
			t.Fatal("victim still indexed for the rebound stripe")
		}
	}
	found := false
	for _, ref := range md.StripesOn(42) {
		if ref.Ino == ino && ref.Stripe == 0 && ref.Idx == 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("replacement not indexed for the rebound stripe")
	}
	if _, err := md.Rebind(ino, 0, victim, 42); err == nil {
		t.Fatal("rebind from a node not in the placement must fail")
	}
}

// TestRemoveNodeStopsPlacement: after RemoveNode, no new placement uses
// the node; the pool never shrinks below K+M.
func TestRemoveNodeStopsPlacement(t *testing.T) {
	md := testMDS(t, 8, 4, 2, 4)
	md.RemoveNode(3)
	ino, _ := md.Create("f")
	for s := 0; s < 64; s++ {
		loc, err := md.Lookup(ino, uint32(s))
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range loc.Nodes {
			if n == 3 {
				t.Fatalf("stripe %d placed on removed node", s)
			}
		}
	}
	small := testMDS(t, 6, 4, 2, 4)
	small.RemoveNode(1)
	if got := len(small.Nodes()); got != 6 {
		t.Fatalf("pool shrank below K+M: %d nodes", got)
	}
}

// benchNamespace builds an MDS with files×stripesPer placements and
// returns it with the created inos (per-shard allocation means they are
// disjoint ranges, not dense 1..N).
func benchNamespace(b *testing.B, osds, shards, files, stripesPer int) (*MDS, []uint64) {
	b.Helper()
	md := testMDS(b, osds, 4, 2, shards)
	inos := make([]uint64, files)
	for f := 0; f < files; f++ {
		ino, _ := md.Create(fmt.Sprintf("f%d", f))
		inos[f] = ino
		for s := 0; s < stripesPer; s++ {
			if _, err := md.Lookup(ino, uint32(s)); err != nil {
				b.Fatal(err)
			}
		}
	}
	return md, inos
}

// BenchmarkMDSLookup measures concurrent placement resolution against
// the shard count — the contention the sharded namespace removes.
func BenchmarkMDSLookup(b *testing.B) {
	for _, shards := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			md, inos := benchNamespace(b, 16, shards, 10_000, 2)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(1))
				for pb.Next() {
					ino := inos[rng.Intn(len(inos))]
					if _, err := md.Lookup(ino, uint32(rng.Intn(2))); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkStripesOnScaling holds the per-node block count fixed while
// the total namespace grows (OSD count scales with file count). With
// the incremental reverse index the cost per call stays flat —
// sublinear in the total file count — where the seed's full scan grew
// linearly.
func BenchmarkStripesOnScaling(b *testing.B) {
	for _, sz := range []struct{ files, osds int }{
		{4_000, 16}, {16_000, 64}, {64_000, 256},
	} {
		b.Run(fmt.Sprintf("files=%d/osds=%d", sz.files, sz.osds), func(b *testing.B) {
			md, _ := benchNamespace(b, sz.osds, 16, sz.files, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				refs := md.StripesOn(wire.NodeID(1 + i%sz.osds))
				if len(refs) == 0 {
					b.Fatal("empty work list")
				}
			}
		})
	}
}

// TestAddrMapTTL pins the address-map aging contract: with a TTL set,
// entries whose owner has not heartbeaten (or re-announced) within the
// TTL are dropped — and pruned — from AddrMap, so clients re-resolving
// a long-dead node fall through to unknown-node handling instead of
// redialing its last address; a fresh heartbeat re-admits the node.
func TestAddrMapTTL(t *testing.T) {
	mds, err := NewMDS([]wire.NodeID{1, 2, 3, 4, 5, 6}, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	mds.HeartbeatAddr(1, now, "h1:1")
	mds.HeartbeatAddr(2, now.Add(-5*time.Second), "h2:1")
	mds.RecordAddr(wire.MDSNode, "mds:1") // RecordAddr stamps its own freshness

	// No TTL: everything is served, however stale.
	m := mds.AddrMap()
	if len(m) != 3 {
		t.Fatalf("AddrMap without TTL = %v", m)
	}

	mds.SetAddrTTL(2 * time.Second)
	m = mds.AddrMap()
	if _, ok := m[2]; ok {
		t.Fatal("entry past the TTL still served")
	}
	if m[1] != "h1:1" || m[wire.MDSNode] != "mds:1" {
		t.Fatalf("fresh entries dropped: %v", m)
	}

	// The aged entry was pruned, not just filtered: a later heartbeat
	// without an address cannot resurrect the stale string...
	mds.Heartbeat(2, time.Now())
	if _, ok := mds.AddrMap()[2]; ok {
		t.Fatal("pruned address resurrected by an address-less heartbeat")
	}
	// ...but a heartbeat that carries the address re-admits the node.
	mds.HeartbeatAddr(2, time.Now(), "h2:2")
	if got := mds.AddrMap()[2]; got != "h2:2" {
		t.Fatalf("re-announced node served %q", got)
	}

	// A node whose heartbeats keep arriving stays served forever even
	// though its *address* was recorded long ago.
	mds.HeartbeatAddr(3, now.Add(-5*time.Second), "h3:1")
	mds.Heartbeat(3, time.Now())
	if got := mds.AddrMap()[3]; got != "h3:1" {
		t.Fatalf("heartbeating node aged out: %q", got)
	}
}
