package ecfs

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/mdslog"
	"repro/internal/wire"
)

// --- deterministic mutation workload ---------------------------------
//
// The kill-point battery runs the same scripted op sequence against a
// durable MDS and an in-memory shadow, crashing the durable one at
// every sync boundary (after every committed record). Every op is a
// deterministic function of MDS state, so until the crash both sides
// evolve identically; after it, the reopened namespace must equal the
// shadow — no acknowledged mutation lost, no unacked one resurrected.

const (
	wlCreate = iota
	wlBind
	wlRebind
	wlAddNode
	wlRemoveNode
	wlDrainBegin
	wlDrainInterrupt
	wlDrainFinish
	wlDrainAbort
	wlForget
	wlAddr
	wlHeartbeatAddr
	wlMarkDead
	wlRevive
	numWlKinds
)

type wlOp struct {
	kind   int
	name   string
	stripe uint32
	node   wire.NodeID
	pick   int
}

// mdsWorkload generates a deterministic mutation-heavy script. All
// randomness is spent here, at generation time: applying an op draws
// nothing, so durable and shadow MDSes see byte-identical decisions.
func mdsWorkload(seed int64, n int) []wlOp {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]wlOp, 0, n)
	for i := 0; i < n; i++ {
		op := wlOp{kind: rng.Intn(numWlKinds)}
		switch op.kind {
		case wlCreate:
			op.name = fmt.Sprintf("f%d", rng.Intn(24)) // collisions exercise open-or-create
		case wlBind, wlRebind:
			op.name = fmt.Sprintf("f%d", rng.Intn(24))
			op.stripe = uint32(rng.Intn(6))
			op.pick = rng.Int()
		case wlAddr, wlHeartbeatAddr:
			op.node = wire.NodeID(1 + rng.Intn(14))
			op.name = fmt.Sprintf("127.0.0.1:%d", 7000+rng.Intn(4)) // few ports → re-announce same addr too
		default:
			op.node = wire.NodeID(1 + rng.Intn(14))
		}
		ops = append(ops, op)
	}
	return ops
}

// applyWlOp runs one scripted op against an MDS. Errors are expected
// (drain state machine refusals, crashed log) and deliberately ignored:
// the crash check happens between ops, in the runner.
func applyWlOp(m *MDS, op wlOp) {
	switch op.kind {
	case wlCreate:
		m.Create(op.name)
	case wlBind:
		// Resolve without creating so every op appends at most one
		// record — the kill-point runner's shadow cut is per-record.
		if ino := m.Files()[op.name]; ino != 0 {
			m.Lookup(ino, op.stripe)
		}
	case wlRebind:
		ino := m.Files()[op.name]
		if ino == 0 {
			return
		}
		loc, ok := m.PlacementOf(ino, op.stripe)
		if !ok {
			return
		}
		from := loc.Nodes[op.pick%len(loc.Nodes)]
		to, err := m.PickRebindTarget(ino, op.stripe, loc)
		if err != nil {
			return
		}
		m.Rebind(ino, op.stripe, from, to)
	case wlAddNode:
		m.AddNode(op.node)
	case wlRemoveNode:
		m.RemoveNode(op.node)
	case wlDrainBegin:
		m.BeginDrain(op.node)
	case wlDrainInterrupt:
		m.InterruptDrain(op.node)
	case wlDrainFinish:
		m.FinishDrain(op.node)
	case wlDrainAbort:
		m.AbortDrain(op.node)
	case wlForget:
		m.Forget(op.node)
	case wlAddr:
		m.RecordAddr(op.node, op.name)
	case wlHeartbeatAddr:
		m.HeartbeatAddr(op.node, time.Unix(1, 0), op.name)
	case wlMarkDead:
		m.MarkDead(op.node)
	case wlRevive:
		m.Heartbeat(op.node, time.Unix(2, 0))
	}
}

var wlPool = []wire.NodeID{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}

func wlShadow(t testing.TB) *MDS {
	t.Helper()
	sh, err := NewMDSWithShards(wlPool, 4, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	return sh
}

// compareMDS asserts two MDSes serve the same durable namespace:
// files, placements with epochs, placement pool (order included — it
// feeds deterministic placement), reverse index, drain registry
// (running ≡ interrupted: the engine dies with the process), and the
// address map. Soft state (heartbeats, dead set) is exempt by design.
func compareMDS(t *testing.T, tag string, got, want *MDS) {
	t.Helper()
	gf, wf := got.Files(), want.Files()
	if len(gf) != len(wf) {
		t.Fatalf("%s: %d files, want %d", tag, len(gf), len(wf))
	}
	for name, ino := range wf {
		if gf[name] != ino {
			t.Fatalf("%s: file %q ino %d, want %d", tag, name, gf[name], ino)
		}
		if gs, ws := got.Stripes(ino), want.Stripes(ino); gs != ws {
			t.Fatalf("%s: %q has %d stripes, want %d", tag, name, gs, ws)
		}
		for s := uint32(0); s < 8; s++ {
			gl, gok := got.PlacementOf(ino, s)
			wl, wok := want.PlacementOf(ino, s)
			if gok != wok {
				t.Fatalf("%s: %q stripe %d placed=%v, want %v", tag, name, s, gok, wok)
			}
			if !gok {
				continue
			}
			if gl.Epoch != wl.Epoch {
				t.Fatalf("%s: %q stripe %d epoch %d, want %d", tag, name, s, gl.Epoch, wl.Epoch)
			}
			if fmt.Sprint(gl.Nodes) != fmt.Sprint(wl.Nodes) {
				t.Fatalf("%s: %q stripe %d nodes %v, want %v", tag, name, s, gl.Nodes, wl.Nodes)
			}
		}
	}
	if g, w := fmt.Sprint(got.Nodes()), fmt.Sprint(want.Nodes()); g != w {
		t.Fatalf("%s: pool %s, want %s", tag, g, w)
	}
	for id := wire.NodeID(1); id <= 20; id++ {
		if g, w := got.Draining(id), want.Draining(id); g != w {
			t.Fatalf("%s: node %d draining=%v, want %v", tag, id, g, w)
		}
		gr, wr := got.StripesOnSorted(id), want.StripesOnSorted(id)
		if len(gr) != len(wr) {
			t.Fatalf("%s: node %d hosts %d blocks, want %d", tag, id, len(gr), len(wr))
		}
		for i := range gr {
			if gr[i].Ino != wr[i].Ino || gr[i].Stripe != wr[i].Stripe || gr[i].Idx != wr[i].Idx {
				t.Fatalf("%s: node %d block %d = %+v, want %+v", tag, id, i, gr[i], wr[i])
			}
		}
	}
	ga, wa := got.AddrMap(), want.AddrMap()
	if len(ga) != len(wa) {
		t.Fatalf("%s: addr map has %d entries, want %d", tag, len(ga), len(wa))
	}
	for id, addr := range wa {
		if ga[id] != addr {
			t.Fatalf("%s: node %d addr %q, want %q", tag, id, ga[id], addr)
		}
	}
}

// runWorkload applies the script to a durable MDS and its shadow,
// stopping the shadow at the durable side's first failed append: the op
// that tripped the kill point was neither applied nor acknowledged, so
// the shadow — the state every caller was told exists — must not see it
// either. Returns the shadow.
func runWorkload(t *testing.T, md *MDS, ops []wlOp) *MDS {
	t.Helper()
	sh := wlShadow(t)
	for _, op := range ops {
		applyWlOp(md, op)
		if md.Log().Crashed() {
			break
		}
		applyWlOp(sh, op)
	}
	return sh
}

func openWorkloadMDS(t *testing.T, dir string, opts mdslog.Options) *MDS {
	t.Helper()
	md, err := OpenDurableMDS(dir, wlPool, 4, 2, 8, opts)
	if err != nil {
		t.Fatal(err)
	}
	return md
}

// TestDurableMDSCleanShutdown: close snapshots, reopen replays nothing
// and serves the identical namespace.
func TestDurableMDSCleanShutdown(t *testing.T) {
	dir := t.TempDir()
	md := openWorkloadMDS(t, dir, mdslog.Options{})
	sh := runWorkload(t, md, mdsWorkload(11, 300))
	if err := md.Close(); err != nil {
		t.Fatal(err)
	}
	re := openWorkloadMDS(t, dir, mdslog.Options{})
	defer re.Close()
	if n, _, _ := re.Log().Stats(); n != 0 {
		t.Fatalf("clean reopen replayed %d records", n)
	}
	compareMDS(t, "clean", re, sh)
}

// TestDurableMDSKillPoints crashes the MDS at every sync boundary of a
// mutation-heavy workload: for every n, the n+1-th op-log append fails
// (the record never reaches the kernel — the tightest possible kill
// point) and the reopened namespace must equal the shadow at the crash.
func TestDurableMDSKillPoints(t *testing.T) {
	ops := mdsWorkload(23, 160)
	// Dry run to learn the total number of appends.
	dry := openWorkloadMDS(t, t.TempDir(), mdslog.Options{})
	runWorkload(t, dry, ops)
	total, _, _ := dry.Log().Stats()
	dry.Crash()
	dry.Log().Close()
	if total < 40 {
		t.Fatalf("workload appended only %d records — not mutation-heavy enough", total)
	}

	for n := int64(0); n <= total; n++ {
		dir := t.TempDir()
		md := openWorkloadMDS(t, dir, mdslog.Options{})
		md.Log().FailAppends(n)
		sh := runWorkload(t, md, ops)
		if n < total && !md.Log().Crashed() {
			t.Fatalf("kill point %d never tripped", n)
		}
		md.Crash() // kill -9 whatever survived
		md.Log().Close()
		re := openWorkloadMDS(t, dir, mdslog.Options{})
		compareMDS(t, fmt.Sprintf("kill@%d", n), re, sh)
		re.Crash()
		re.Log().Close()
	}
}

// TestDurableMDSKillPointsAcrossCompacts is the same battery with a
// snapshot threshold so small that checkpoints fire throughout the
// workload: kill points land before, between, and after compactions, so
// recovery exercises every snapshot+tail combination.
func TestDurableMDSKillPointsAcrossCompacts(t *testing.T) {
	opts := mdslog.Options{SnapshotBytes: 256}
	ops := mdsWorkload(31, 120)
	dry := openWorkloadMDS(t, t.TempDir(), opts)
	runWorkload(t, dry, ops)
	total, _, _ := dry.Log().Stats()
	dry.Crash()
	dry.Log().Close()

	stride := int64(1)
	if testing.Short() {
		stride = 7
	}
	for n := int64(0); n <= total; n += stride {
		dir := t.TempDir()
		md := openWorkloadMDS(t, dir, opts)
		md.Log().FailAppends(n)
		sh := runWorkload(t, md, ops)
		md.Crash()
		md.Log().Close()
		re := openWorkloadMDS(t, dir, opts)
		compareMDS(t, fmt.Sprintf("compact-kill@%d", n), re, sh)
		re.Crash()
		re.Log().Close()
	}
}

// TestDurableMDSStalePrefixConverges fabricates the checkpoint crash
// window: the snapshot rename lands but the log truncate never does, so
// reopen replays records the snapshot already folded in. Replay must be
// idempotent — the doubled prefix converges to the same namespace.
func TestDurableMDSStalePrefixConverges(t *testing.T) {
	dir := t.TempDir()
	md := openWorkloadMDS(t, dir, mdslog.Options{})
	half := mdsWorkload(47, 200)
	sh := runWorkload(t, md, half)
	md.Log().SkipNextTruncate()
	if err := md.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if md.Log().Size() == 0 {
		t.Fatal("test hook failed to keep the stale log prefix")
	}
	// More mutations after the torn checkpoint, then die.
	for _, op := range mdsWorkload(53, 60) {
		applyWlOp(md, op)
		applyWlOp(sh, op)
	}
	md.Crash()
	md.Log().Close()
	re := openWorkloadMDS(t, dir, mdslog.Options{})
	defer re.Close()
	compareMDS(t, "stale-prefix", re, sh)
}

// TestDurableMDSGeometryMismatchRefused: a data directory created under
// one geometry must refuse to open under another (shard choice and
// placement both derive from it — silently re-placing would corrupt).
func TestDurableMDSGeometryMismatchRefused(t *testing.T) {
	dir := t.TempDir()
	md := openWorkloadMDS(t, dir, mdslog.Options{})
	runWorkload(t, md, mdsWorkload(3, 40))
	if err := md.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDurableMDS(dir, wlPool, 4, 2, 16, mdslog.Options{}); err == nil {
		t.Fatal("shard-count mismatch opened")
	}
	if _, err := OpenDurableMDS(dir, wlPool, 6, 2, 8, mdslog.Options{}); err == nil {
		t.Fatal("geometry mismatch opened")
	}
}

// TestClusterMDSCrashRestart drives real traffic, kill -9s the durable
// MDS mid-flight, and restarts it: the namespace and placements
// survive, data written before the crash verifies, the repair
// scheduler's ledger carries across, and new writes land after.
func TestClusterMDSCrashRestart(t *testing.T) {
	opts := testOptions("tsue")
	opts.MDSDataDir = t.TempDir()
	c := MustNewCluster(opts)
	defer c.Close()
	cli := c.NewClient()
	ino, mirror := writeTestFile(t, c, cli, 64<<10, 9)

	files := c.MDS.Files()
	stripes := c.MDS.Stripes(ino)
	locs := make([]wire.StripeLoc, stripes)
	for s := 0; s < stripes; s++ {
		locs[s], _ = c.MDS.PlacementOf(ino, uint32(s))
	}
	sched := c.Scheduler()

	if err := c.CrashMDS(); err != nil {
		t.Fatal(err)
	}
	// Metadata plane down: an uncached create cannot be acknowledged.
	if _, err := cli.Create("during-outage"); err == nil {
		t.Fatal("create succeeded against a crashed MDS")
	}
	md, err := c.RestartMDS()
	if err != nil {
		t.Fatal(err)
	}
	if md != c.MDS {
		t.Fatal("RestartMDS did not install the reopened MDS")
	}
	if c.Scheduler() != sched {
		t.Fatal("restart replaced the repair scheduler — the rebuild ledger was lost")
	}

	gotFiles := c.MDS.Files()
	if len(gotFiles) != len(files) {
		t.Fatalf("namespace has %d files after restart, want %d", len(gotFiles), len(files))
	}
	for name, want := range files {
		if gotFiles[name] != want {
			t.Fatalf("file %q ino %d after restart, want %d", name, gotFiles[name], want)
		}
	}
	if got := c.MDS.Stripes(ino); got != stripes {
		t.Fatalf("%d stripes after restart, want %d", got, stripes)
	}
	for s := 0; s < stripes; s++ {
		loc, ok := c.MDS.PlacementOf(ino, uint32(s))
		if !ok || loc.Epoch != locs[s].Epoch || fmt.Sprint(loc.Nodes) != fmt.Sprint(locs[s].Nodes) {
			t.Fatalf("stripe %d placement %v/%v after restart, want %v", s, loc, ok, locs[s])
		}
	}

	// Acknowledged data still reads back through the reopened metadata.
	if err := c.VerifyStripes(ino, mirror); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Scrub(); err != nil {
		t.Fatal(err)
	}
	got, _, err := cli.Read(ino, 0, len(mirror))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, mirror) {
		t.Fatal("post-restart read-back mismatch")
	}

	// And the metadata plane is fully writable again.
	ino2, err := cli.Create("after-restart")
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0xA5}, cli.StripeSpan())
	if _, err := cli.WriteFile(ino2, data); err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyStripes(ino2, data); err != nil {
		t.Fatal(err)
	}
}
