// The cluster-level repair scheduler: one coordinator per cluster
// (owned by the MDS) through which every repair and drain admits its
// per-stripe jobs. It is the piece that turns N independent repair
// queues into coordinated maintenance:
//
//   - Bandwidth budget. An optional rebuild-bandwidth cap
//     (RepairOptions.MaxRebuildMBps / Options.MaxRebuildMBps) is
//     enforced as a token bucket over priced bytes: tokens accrue as
//     *foreground* busy time accumulates on the cluster's resources
//     (sim.ForegroundClasses — the scheduler's virtual clock), and
//     every migrated or rebuilt block spends its byte count. A worker
//     whose queue is over budget backs off — it yields wall time to the
//     foreground workload while waiting for tokens — and, when the
//     foreground is idle, the scheduler advances the virtual clock
//     itself by recording throttle time, which the engines fold into
//     their makespan (VirtualTime). Measured rebuild bandwidth
//     therefore lands at or under the cap by construction.
//   - Fairness across victims. Concurrent repairs/drains register their
//     queues; when admissions contend for budget, the scheduler grants
//     the waiter whose queue carries the most weight — pending depth
//     plus a boost per read-through-repair promotion — so the deepest
//     and hottest backlog drains first instead of whichever goroutine
//     happens to wake up.
//   - Hint routing. wire.KRepairHint promotions and wire.KRepairStatus
//     depth queries resolve across *all* registered queues, so two
//     concurrent victims both benefit from read-through repair (the
//     MDS previously tracked only the most recently started repair).
package ecfs

import (
	"context"
	"sync"
	"time"

	"repro/internal/sim"
)

// admitPoll is the wall-clock back-off between admission attempts of a
// throttled repair worker. Each poll is a slice handed to the
// foreground workload; it also bounds how stale the foreground clock
// reading a waiter decides on can be.
const admitPoll = 200 * time.Microsecond

// admitMaxPolls bounds how many wall polls a waiter spends hoping the
// foreground clock advances before the scheduler self-advances the
// virtual clock (throttle time). It keeps a capped rebuild on an idle
// cluster from degenerating into a wall-clock sleep of Bytes/cap.
const admitMaxPolls = 2

// maxThrottleSleep bounds the real sleep that accompanies a throttle
// injection. A cap is physically a pacing device: a capped rebuild must
// also stretch in wall time, or concurrent foreground goroutines would
// see the same burst of interference the cap exists to prevent. The
// bound keeps a deeply capped run from turning into a full wall-clock
// replay of its virtual idle.
const maxThrottleSleep = 2 * time.Millisecond

// promotionWeight is how many queued stripes one read-through-repair
// promotion is worth when ranking contending queues: promoted queues
// hold stripes clients are actively paying degraded-read decodes for.
const promotionWeight = 4

// RepairScheduler coordinates all repair and drain work running against
// one cluster: it admits per-stripe jobs against an optional
// rebuild-bandwidth budget, interleaves concurrent victims' queues
// fairly, and routes read-through-repair hints across every active
// queue. One scheduler exists per cluster, owned by its MDS
// (MDS.Scheduler); the zero configuration (no resources, no cap) admits
// everything immediately, which is what a real TCP deployment without a
// virtual-time model gets.
type RepairScheduler struct {
	mu        sync.Mutex
	resources []*sim.Resource // cluster resources carrying the foreground clock
	fgBase    []time.Duration // foreground busy snapshot at Configure time
	rate      float64         // cluster rebuild cap, bytes per virtual second; 0 = uncapped
	// The budget ledger. With a traffic source installed (SetTrafficSource
	// — the in-process cluster points it at the network's tagged
	// rebuild+drain byte counters), spent bytes are *priced* bytes: what
	// the rebuild actually put on the wire, fetches and stores and fences
	// included. Without one, the engines' per-stripe payload charges
	// (charge) stand in — the best a deployment without a pricing model
	// can account.
	traffic     func() int64
	trafficBase int64
	charged     int64
	// chargedTotal is the monotonic lifetime sum of charge() bytes. It
	// is never rebased: engines snapshot per-run deltas of the lifetime
	// ledger (TotalSpentBytes), which must stay correct even when a
	// concurrent per-run cap rebases the budget-relative ledger above.
	chargedTotal int64
	// throttled is the monotonic published counter of injected virtual
	// idle (engines snapshot deltas of it); balThrottle is the same
	// quantity as a budget term, which rebases to zero whenever the
	// budget's zero point moves (Configure / SetRebuildCap).
	throttled   time.Duration
	balThrottle time.Duration
	queues      []*repairQueue // active repair/drain queues, registration order
	waiting     map[*repairQueue]int
}

// NewRepairScheduler builds a scheduler over the given resources with a
// rebuild cap in MB/s (decimal; 0 disables the cap). resources may be
// nil: the foreground clock then never advances and a capped scheduler
// paces purely by throttle time.
func NewRepairScheduler(resources []*sim.Resource, maxMBps float64) *RepairScheduler {
	s := &RepairScheduler{waiting: make(map[*repairQueue]int)}
	s.Configure(resources, maxMBps)
	return s
}

// Configure (re)binds the scheduler to a resource set and rebuild cap,
// rebasing the budget from now. Cluster construction calls it once;
// tests may reconfigure an idle scheduler.
func (s *RepairScheduler) Configure(resources []*sim.Resource, maxMBps float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.resources = resources
	s.rate = maxMBps * 1e6
	s.rebaseLocked()
}

// SetRebuildCap changes the cluster rebuild-bandwidth cap (MB/s,
// decimal; 0 removes it) and rebases the budget's zero point: the
// foreground clock and the byte ledger restart from now, so foreground
// history accrued before the cap was set does not grant an unbounded
// initial token balance (a cap set at time T means "from T on"). Safe
// while repairs run: the next admission sees the new rate.
func (s *RepairScheduler) SetRebuildCap(maxMBps float64) {
	s.mu.Lock()
	s.rate = maxMBps * 1e6
	s.rebaseLocked()
	s.mu.Unlock()
}

// rebaseLocked restarts the budget from the current instant: foreground
// clock, throttle balance, and the byte ledger all zero here (the
// published Throttled counter stays monotonic). Callers hold s.mu.
func (s *RepairScheduler) rebaseLocked() {
	s.fgBase = sim.SnapshotBusyClasses(s.resources, sim.ForegroundClasses...)
	s.balThrottle = 0
	s.charged = 0
	if s.traffic != nil {
		s.trafficBase = s.traffic()
	}
}

// RebaseBudget restarts the budget's zero point without touching the
// rate: foreground history stops counting as an initial token balance.
// The engines call it when a per-run cap (RepairOptions.MaxRebuildMBps)
// takes effect; with a concurrent run in flight this is conservative —
// tokens the other run had accrued are forfeited, never duplicated.
func (s *RepairScheduler) RebaseBudget() {
	s.mu.Lock()
	s.rebaseLocked()
	s.mu.Unlock()
}

// RebuildCap returns the cluster rebuild-bandwidth cap in MB/s (0 when
// uncapped).
func (s *RepairScheduler) RebuildCap() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rate / 1e6
}

// SetTrafficSource installs the priced-byte ledger: a function
// returning the cumulative rebuild+drain bytes the network has carried
// (the in-process cluster wires it to the tagged netsim counters). The
// current reading becomes the budget's zero point.
func (s *RepairScheduler) SetTrafficSource(f func() int64) {
	s.mu.Lock()
	s.traffic = f
	if f != nil {
		s.trafficBase = f()
	}
	s.mu.Unlock()
}

// spentLocked returns the bytes consumed from the budget: priced wire
// bytes when a traffic source is installed, the engines' payload
// charges otherwise. Callers hold s.mu.
func (s *RepairScheduler) spentLocked() int64 {
	if s.traffic != nil {
		return s.traffic() - s.trafficBase
	}
	return s.charged
}

// SpentBytes returns the rebuild/drain bytes consumed from the budget
// since the scheduler was configured (or the budget last rebased):
// priced wire bytes with a traffic source installed, per-stripe
// payload charges otherwise. The reading is budget-relative — it
// restarts at zero on Configure/SetRebuildCap/RebaseBudget; use
// TotalSpentBytes for per-run deltas.
func (s *RepairScheduler) SpentBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.spentLocked()
}

// TotalSpentBytes returns the monotonic lifetime rebuild/drain byte
// ledger: the raw traffic-source reading when one is installed, the
// cumulative charge() sum otherwise. Unlike SpentBytes it is never
// rebased, so engines can snapshot it around a run and trust the delta
// to be non-negative even when a concurrent run's per-run cap rebases
// the budget's zero point mid-flight.
func (s *RepairScheduler) TotalSpentBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.traffic != nil {
		return s.traffic()
	}
	return s.chargedTotal
}

// Throttled returns the cumulative virtual idle time the scheduler has
// injected to keep rebuild traffic under the cap. Engines snapshot it
// around a run and fold the delta into their makespan.
func (s *RepairScheduler) Throttled() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.throttled
}

// Pending returns the stripes still queued across every active repair
// and drain — the wire.KRepairStatus answer.
func (s *RepairScheduler) Pending() int {
	s.mu.Lock()
	qs := append([]*repairQueue(nil), s.queues...)
	s.mu.Unlock()
	n := 0
	for _, q := range qs {
		n += q.pending()
	}
	return n
}

// Promote moves a still-pending stripe to the front of whichever active
// queue holds it (read-through repair across concurrent victims) and
// reports whether any queue did. Queues running in FIFO-baseline mode
// (RepairOptions.NoPromote) are skipped.
func (s *RepairScheduler) Promote(ino uint64, stripe uint32) bool {
	s.mu.Lock()
	qs := append([]*repairQueue(nil), s.queues...)
	s.mu.Unlock()
	for _, q := range qs {
		if q.noPromote {
			continue
		}
		if q.promote(ino, stripe) {
			return true
		}
	}
	return false
}

// register adds an engine run's queue to the active set.
func (s *RepairScheduler) register(q *repairQueue) {
	s.mu.Lock()
	s.queues = append(s.queues, q)
	s.mu.Unlock()
}

// unregister removes a queue when its run finishes.
func (s *RepairScheduler) unregister(q *repairQueue) {
	s.mu.Lock()
	out := s.queues[:0]
	for _, cur := range s.queues {
		if cur != q {
			out = append(out, cur)
		}
	}
	s.queues = out
	s.mu.Unlock()
}

// effectiveRate resolves the budget an admission runs against: the
// per-run override when set, else the cluster cap. Bytes per virtual
// second; 0 means uncapped.
func (s *RepairScheduler) effectiveRate(runMBps float64) float64 {
	if runMBps > 0 {
		return runMBps * 1e6
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rate
}

// fgClockLocked returns the foreground virtual clock: the largest
// per-resource foreground busy increase since Configure. Callers hold
// s.mu.
func (s *RepairScheduler) fgClockLocked() time.Duration {
	return sim.MaxBusyDeltaClasses(s.resources, s.fgBase, sim.ForegroundClasses...)
}

// weight ranks a queue for contended admissions: pending depth plus a
// boost per promotion (hot queues first). Callers need not hold s.mu —
// the queue has its own lock.
func weight(q *repairQueue) int {
	return q.pending() + promotionWeight*q.promotions()
}

// bestWaiterLocked returns the highest-weight queue currently waiting
// for budget (registration order breaks ties). Callers hold s.mu.
func (s *RepairScheduler) bestWaiterLocked() *repairQueue {
	var best *repairQueue
	bw := -1
	for _, q := range s.queues {
		if s.waiting[q] == 0 {
			continue
		}
		if w := weight(q); w > bw {
			best, bw = q, w
		}
	}
	return best
}

// admit blocks a worker of queue q until the rebuild budget allows
// another stripe job, or ctx ends. Budget accounting is debt-based: a
// job is admitted while spent bytes are at or under the accrued budget
// and charged after it completes (charge), so no size estimate is
// needed and over-shoot is bounded by the in-flight worker count. While
// over budget the worker backs off in wall time (yielding to foreground
// goroutines); if the foreground clock cannot cover the debt after
// admitMaxPolls polls, the scheduler injects the shortfall as throttle
// time — virtual idle the engines fold into their makespan.
func (s *RepairScheduler) admit(ctx context.Context, q *repairQueue, runMBps float64) error {
	rate := s.effectiveRate(runMBps)
	if rate <= 0 {
		return ctx.Err()
	}
	s.mu.Lock()
	s.waiting[q]++
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.waiting[q]--
		if s.waiting[q] == 0 {
			delete(s.waiting, q)
		}
		s.mu.Unlock()
	}()

	polls := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		s.mu.Lock()
		budget := time.Duration(0)
		if clock := s.fgClockLocked() + s.balThrottle; clock > 0 {
			budget = clock
		}
		have := int64(rate * budget.Seconds())
		spent := s.spentLocked()
		if spent <= have {
			// Tokens are available; under contention only the
			// highest-weight waiter takes them.
			if best := s.bestWaiterLocked(); best == nil || best == q {
				s.mu.Unlock()
				return nil
			}
			// Lost the best-waiter race: the winner's charge will open a
			// fresh shortfall, which deserves the full wall back-off
			// before this waiter self-advances the virtual clock again.
			polls = 0
		} else if polls >= admitMaxPolls {
			// The foreground is idle (or too slow to matter): advance
			// the virtual clock by the shortfall ourselves — the
			// modeled idle a capped rebuild inserts into its own
			// makespan — and pace in wall time too (bounded), so the
			// interference burst is genuinely spread out for whatever
			// foreground work is running.
			short := time.Duration(float64(spent-have) / rate * float64(time.Second))
			s.throttled += short
			s.balThrottle += short
			if best := s.bestWaiterLocked(); best == nil || best == q {
				s.mu.Unlock()
				if short > maxThrottleSleep {
					short = maxThrottleSleep
				}
				time.Sleep(short)
				return nil
			}
			// The injection covered the shortfall on the winner's
			// behalf; start the wall back-off over so this waiter does
			// not re-inject on every subsequent poll, inflating
			// Throttled() under sustained multi-queue contention.
			polls = 0
		}
		s.mu.Unlock()
		time.Sleep(admitPoll)
		polls++
	}
}

// AdmitMaintenance paces a background maintenance pass (segment
// compaction, scrub-side housekeeping) through the same byte budget
// that gates repair traffic, without competing as a repair queue: it
// never injects throttle time into the shared ledger — concurrent
// repair runs must not inherit virtual idle from the compactor — and
// after a bounded wall back-off it proceeds regardless, charging its
// bytes so sustained maintenance still eats into the budget the next
// admission sees. With no cap configured it admits immediately.
func (s *RepairScheduler) AdmitMaintenance(ctx context.Context, bytes int64) error {
	rate := s.effectiveRate(0)
	if rate <= 0 {
		s.charge(bytes)
		return ctx.Err()
	}
	for polls := 0; ; polls++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		s.mu.Lock()
		budget := time.Duration(0)
		if clock := s.fgClockLocked() + s.balThrottle; clock > 0 {
			budget = clock
		}
		have := int64(rate * budget.Seconds())
		spent := s.spentLocked()
		s.mu.Unlock()
		if spent <= have || polls >= admitMaxPolls {
			s.charge(bytes)
			return nil
		}
		time.Sleep(admitPoll)
	}
}

// charge records a completed stripe job's payload bytes in the
// fallback ledger — the budget's spend when no traffic source is
// installed (a deployment without a pricing model).
func (s *RepairScheduler) charge(bytes int64) {
	if bytes <= 0 {
		return
	}
	s.mu.Lock()
	s.charged += bytes
	s.chargedTotal += bytes
	s.mu.Unlock()
}

// capFloor returns the minimum makespan the cap imposes on a run that
// consumed the given budget bytes (bytes/rate), or 0 when uncapped —
// the clamp that guarantees a capped run never *reports* bandwidth
// above its cap regardless of worker interleaving. The budget is
// cluster-global, so with concurrent capped runs each run's delta
// includes the others' traffic and its floor over-estimates — the
// conservative direction: the combined traffic is what the cap bounds,
// and every individual report stays at or under it.
func (s *RepairScheduler) capFloor(runMBps float64, bytes int64) time.Duration {
	rate := s.effectiveRate(runMBps)
	if rate <= 0 || bytes <= 0 {
		return 0
	}
	return time.Duration(float64(bytes) / rate * float64(time.Second))
}
