package ecfs

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/device"
	"repro/internal/erasure"
	"repro/internal/mdslog"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/update"
	"repro/internal/wire"
)

// Options configures an in-process cluster.
type Options struct {
	NumOSDs   int
	K, M      int
	BlockSize int
	Method    string // "fo", "fl", "pl", "plr", "parix", "cord", "tsue"
	Device    device.Profile
	Net       netsim.Profile
	Kind      erasure.MatrixKind
	// RecoveryWorkers is the number of stripes Recover rebuilds in
	// parallel; <= 0 selects DefaultRecoveryWorkers.
	RecoveryWorkers int
	// MDSShards is the metadata namespace shard count (rounded up to a
	// power of two); <= 0 selects DefaultMDSShards.
	MDSShards int
	// MaxRebuildMBps is the cluster-level rebuild-bandwidth cap (decimal
	// MB per virtual second) the repair scheduler enforces across every
	// concurrent repair and drain; 0 leaves rebuild traffic uncapped.
	// Adjustable at runtime via Cluster.SetRebuildCap.
	MaxRebuildMBps float64
	// Update strategy tunables; zero value uses update.DefaultConfig()
	// with BlockSize applied.
	Strategy *update.Config
	// DataDir selects the durable per-OSD storage engine: each OSD keeps
	// its blocks, log segments and placement metadata under
	// DataDir/osd<id> and recovers them on reopen (see RestartOSD).
	// Empty (the default) keeps every OSD in memory.
	DataDir string
	// MDSDataDir selects the durable MDS: the namespace op log and
	// snapshot live under this directory, every namespace mutation is
	// logged before it is acknowledged, and a kill -9'd MDS reopens its
	// directory serving the same namespace (see CrashMDS/RestartMDS).
	// Empty (the default) keeps the MDS in memory. Independent of
	// DataDir — either plane can be durable on its own.
	MDSDataDir string
}

// DefaultOptions mirrors the paper's SSD testbed: 16 OSD nodes, 25 Gb/s
// Ethernet, RS(6,4), 1 MiB blocks, TSUE.
func DefaultOptions() Options {
	return Options{
		NumOSDs:   16,
		K:         6,
		M:         4,
		BlockSize: 1 << 20,
		Method:    "tsue",
		Device:    device.ChameleonSSD(),
		Net:       netsim.Ethernet25G(),
		Kind:      erasure.Vandermonde,

		RecoveryWorkers: DefaultRecoveryWorkers,
	}
}

// Cluster is a fully assembled in-process ECFS deployment.
type Cluster struct {
	Opts    Options
	Net     *netsim.Network
	Tr      *transport.Inproc
	MDS     *MDS
	OSDs    []*OSD
	code    *erasure.Code
	cfg     update.Config // resolved strategy config every OSD was built with
	nextCli atomic.Int32  // next client node id offset from ClientIDBase

	// handleCli is the shared client behind OpenFile/CreateFile handles
	// (lazily provisioned; Client is safe for concurrent use).
	handleMu  sync.Mutex
	handleCli *Client

	failMu sync.Mutex
	failed map[wire.NodeID]bool
}

// NewCluster builds and wires a cluster.
func NewCluster(opts Options) (*Cluster, error) {
	if opts.NumOSDs < opts.K+opts.M {
		return nil, fmt.Errorf("ecfs: %d OSDs < K+M = %d", opts.NumOSDs, opts.K+opts.M)
	}
	if opts.Method == "" {
		opts.Method = "tsue"
	}
	code, err := erasure.New(opts.K, opts.M, opts.Kind)
	if err != nil {
		return nil, err
	}
	cfg := update.DefaultConfig()
	if opts.Strategy != nil {
		cfg = *opts.Strategy
	}
	cfg.BlockSize = opts.BlockSize

	nw := netsim.New(opts.Net)
	tr := transport.NewInproc(nw)
	c := &Cluster{
		Opts: opts, Net: nw, Tr: tr, code: code, cfg: cfg,
		failed: make(map[wire.NodeID]bool),
	}

	ids := make([]wire.NodeID, opts.NumOSDs)
	for i := range ids {
		ids[i] = wire.NodeID(i + 1)
	}
	shards := opts.MDSShards
	if shards <= 0 {
		shards = DefaultMDSShards
	}
	mds, err := c.openMDS(ids, shards)
	if err != nil {
		return nil, err
	}
	c.MDS = mds
	mds.SetBlockSize(opts.BlockSize)
	tr.Register(wire.MDSNode, mds.Handler)

	for _, id := range ids {
		osd, err := NewOSDAt(id, opts.Device, tr.Caller(id), opts.Method, cfg, opts.Kind, c.osdDataDir(id))
		if err != nil {
			return nil, err
		}
		c.OSDs = append(c.OSDs, osd)
		tr.Register(id, osd.Handler)
	}
	// The repair scheduler's foreground clock reads the cluster's
	// resources, and its budget ledger the network's tagged rebuild and
	// drain byte counters (priced bytes — fetches, stores and fences all
	// count against the cap); configure both once everything that
	// charges them exists.
	sched := mds.Scheduler()
	sched.Configure(c.resources(), opts.MaxRebuildMBps)
	sched.SetTrafficSource(c.RebuildTraffic)
	// Segment compaction is admitted through the scheduler so it
	// shares the rebuild budget instead of competing unaccounted.
	for _, o := range c.OSDs {
		c.startCompactor(o)
	}
	return c, nil
}

// openMDS builds the cluster's metadata server: in-memory by default,
// or reopened from Options.MDSDataDir — a directory that already holds
// a namespace serves it as-is (same geometry required), so a restarted
// cluster keeps its files.
func (c *Cluster) openMDS(ids []wire.NodeID, shards int) (*MDS, error) {
	if c.Opts.MDSDataDir == "" {
		return NewMDSWithShards(ids, c.Opts.K, c.Opts.M, shards)
	}
	return OpenDurableMDS(c.Opts.MDSDataDir, ids, c.Opts.K, c.Opts.M, shards, mdslog.Options{})
}

// CrashMDS simulates a process kill of the durable MDS: the op log
// freezes exactly at what write(2) saw (no shutdown checkpoint), the
// transport stops routing to it, and every in-flight or later metadata
// call fails as unreachable until RestartMDS. Clients ride their
// resolver single-flight through the outage. Refused for an in-memory
// MDS — crashing it would lose the namespace.
func (c *Cluster) CrashMDS() error {
	if !c.MDS.Durable() {
		return fmt.Errorf("ecfs: CrashMDS needs Options.MDSDataDir: an in-memory namespace cannot be recovered")
	}
	c.Tr.Deregister(wire.MDSNode)
	c.MDS.Crash()
	c.MDS.Log().Close()
	return nil
}

// RestartMDS reopens the MDS from its data directory — snapshot load,
// op-log replay, torn tail discarded — and returns it to service under
// the same transport node. The repair scheduler survives as an object
// (its rebuild ledger and registered queues are process state, not
// namespace state), so budget accounting continues across the restart.
func (c *Cluster) RestartMDS() (*MDS, error) {
	if c.Opts.MDSDataDir == "" {
		return nil, fmt.Errorf("ecfs: RestartMDS needs Options.MDSDataDir")
	}
	old := c.MDS
	old.Crash()
	if l := old.Log(); l != nil {
		l.Close()
	}
	ids := make([]wire.NodeID, c.Opts.NumOSDs)
	for i := range ids {
		ids[i] = wire.NodeID(i + 1)
	}
	shards := c.Opts.MDSShards
	if shards <= 0 {
		shards = DefaultMDSShards
	}
	md, err := OpenDurableMDS(c.Opts.MDSDataDir, ids, c.Opts.K, c.Opts.M, shards, mdslog.Options{})
	if err != nil {
		return nil, err
	}
	md.SetBlockSize(c.Opts.BlockSize)
	md.AdoptScheduler(old.Scheduler())
	c.MDS = md
	c.Tr.Register(wire.MDSNode, md.Handler)
	return md, nil
}

// osdDataDir maps a node id to its on-disk home, or "" for in-memory
// clusters.
func (c *Cluster) osdDataDir(id wire.NodeID) string {
	if c.Opts.DataDir == "" {
		return ""
	}
	return filepath.Join(c.Opts.DataDir, fmt.Sprintf("osd%d", id))
}

// startCompactor attaches the cluster's repair scheduler to a durable
// OSD's background segment compactor. In-memory OSDs are a no-op.
func (c *Cluster) startCompactor(o *OSD) {
	if o.eng == nil {
		return
	}
	sched := c.MDS.Scheduler()
	o.eng.StartCompactor(func(ctx context.Context, bytes int64) error {
		return sched.AdmitMaintenance(ctx, bytes)
	}, 0)
}

// RebuildTraffic returns the cluster's tagged repair-machinery priced
// bytes (rebuild + drain classes) — the single definition of the
// ledger the repair scheduler's budget meters and the benchmark's
// repair_MBps column reports.
func (c *Cluster) RebuildTraffic() int64 {
	return c.Net.TrafficByClass(sim.ClassRebuild) + c.Net.TrafficByClass(sim.ClassDrain)
}

// MustNewCluster panics on configuration errors.
func MustNewCluster(opts Options) *Cluster {
	c, err := NewCluster(opts)
	if err != nil {
		panic(err)
	}
	return c
}

// NewClient provisions a client with a fresh node id.
func (c *Cluster) NewClient() *Client {
	id := wire.ClientIDBase + wire.NodeID(c.nextCli.Add(1)) - 1
	return NewClient(id, c.Tr.Caller(id), c.code, c.Opts.BlockSize)
}

// handleClient returns the shared client behind file handles.
func (c *Cluster) handleClient() *Client {
	c.handleMu.Lock()
	defer c.handleMu.Unlock()
	if c.handleCli == nil {
		c.handleCli = c.NewClient()
	}
	return c.handleCli
}

// OpenFile opens-or-creates a file and returns a *File handle bound to
// ctx — the v2 entry point of the in-process cluster. The handle
// implements io.ReaderAt, io.WriterAt and io.Closer, plus UpdateAt for
// two-stage TSUE updates.
func (c *Cluster) OpenFile(ctx context.Context, name string) (*File, error) {
	return c.handleClient().Open(ctx, name)
}

// CreateFile is OpenFile spelled for the creation path; the MDS has
// open-or-create semantics, so both succeed whether or not the file
// exists.
func (c *Cluster) CreateFile(ctx context.Context, name string) (*File, error) {
	return c.handleClient().Open(ctx, name)
}

// Code returns the cluster's RS code.
func (c *Cluster) Code() *erasure.Code { return c.code }

// Scheduler returns the cluster-level repair scheduler (owned by the
// MDS) that admits every repair/drain stripe job against the rebuild
// budget and routes read-through-repair hints across concurrent
// victims.
func (c *Cluster) Scheduler() *RepairScheduler { return c.MDS.Scheduler() }

// SetRebuildCap changes the cluster rebuild-bandwidth cap (decimal
// MB/s; 0 removes it) for all subsequent repair/drain admissions. The
// live cap is owned by the scheduler — read it back with
// Scheduler().RebuildCap(); c.Opts keeps its construction-time value
// (Opts fields are read concurrently by running repairs and must stay
// immutable after NewCluster).
func (c *Cluster) SetRebuildCap(maxMBps float64) {
	c.MDS.Scheduler().SetRebuildCap(maxMBps)
}

// OSD returns the OSD with the given node id, or nil.
func (c *Cluster) OSD(id wire.NodeID) *OSD {
	for _, o := range c.OSDs {
		if o.id == id {
			return o
		}
	}
	return nil
}

// Alive returns the OSDs that have not been failed.
func (c *Cluster) Alive() []*OSD {
	c.failMu.Lock()
	defer c.failMu.Unlock()
	out := make([]*OSD, 0, len(c.OSDs))
	for _, o := range c.OSDs {
		if !c.failed[o.id] {
			out = append(out, o)
		}
	}
	return out
}

// deadSet snapshots the failed node set, with failed forced in (recovery
// may start before FailOSD has been called for the victim).
func (c *Cluster) deadSet(failed wire.NodeID) map[wire.NodeID]bool {
	out := c.deadSnapshot()
	out[failed] = true
	return out
}

// deadSnapshot snapshots the failed node set as-is (drain must not force
// its live source node in).
func (c *Cluster) deadSnapshot() map[wire.NodeID]bool {
	c.failMu.Lock()
	defer c.failMu.Unlock()
	out := make(map[wire.NodeID]bool, len(c.failed)+1)
	for id := range c.failed {
		out[id] = true
	}
	return out
}

// Flush drains every strategy's logs cluster-wide, phase by phase, so all
// asynchronous update state reaches the data and parity blocks. A
// cancelled ctx aborts between per-node drain RPCs.
func (c *Cluster) Flush(ctx context.Context) error {
	dead := c.MDS.DeadNodes()
	payload := encodeDeadList(dead)
	for phase := 1; phase <= update.DrainPhases; phase++ {
		for _, o := range c.Alive() {
			resp, err := c.Tr.Caller(wire.MDSNode).Call(ctx, o.id, &wire.Msg{Kind: wire.KDrainLogs, Flag: uint8(phase), Data: payload})
			if err != nil {
				return err
			}
			if err := resp.Error(); err != nil {
				return err
			}
		}
	}
	return nil
}

// FailOSD simulates a node failure: the OSD stops answering, the MDS
// marks it dead and evicts it from the placement pool so no *new*
// stripe is placed on a node that cannot serve it (Reinstate re-admits
// it). Exception: a pool already at its K+M minimum cannot shrink, so
// on a minimum-size cluster new placements may still reference the dead
// node until a replacement joins (see MDS.RemoveNode). Its device and
// store contents are considered lost.
func (c *Cluster) FailOSD(id wire.NodeID) {
	c.failMu.Lock()
	c.failed[id] = true
	c.failMu.Unlock()
	c.Tr.Deregister(id)
	c.MDS.MarkDead(id)
	c.MDS.RemoveNode(id)
	if o := c.OSD(id); o != nil && o.eng != nil {
		// A failed durable node's disk is gone with it: release the
		// engine and wipe the directory so a same-id replacement starts
		// empty, as the rebuild path assumes.
		o.Crash()
		os.RemoveAll(c.osdDataDir(id))
	}
}

// CrashOSD simulates a process kill of a durable OSD: it stops
// answering and the MDS marks it dead, but — unlike FailOSD — its disk
// state survives and the node is NOT evicted from the placement pool,
// so no placement epochs are bumped and stripes untouched during the
// outage need no rebuild when the node returns via RestartOSD.
func (c *Cluster) CrashOSD(id wire.NodeID) {
	c.failMu.Lock()
	c.failed[id] = true
	c.failMu.Unlock()
	c.Tr.Deregister(id)
	c.MDS.MarkDead(id)
	if o := c.OSD(id); o != nil {
		o.Crash()
	}
}

// ResilverResult reports what a restarted OSD did with its local state.
type ResilverResult struct {
	Kept    int // stripes whose local copy was still current
	Rebuilt int // stripes rebuilt from surviving members
	Dropped int // local blocks no longer placed on this node
}

// Resilver reconciles a restarted durable OSD's recovered local state
// against the MDS: stripes whose persisted placement epoch is at least
// the MDS's are kept as-is (the fast path that makes kill-restart cheap
// — zero traffic for anything untouched during the outage); stripes the
// cluster moved on from (a repair or drain bumped their epoch while the
// node was down) are rebuilt in place through the repair scheduler; and
// local blocks the MDS no longer places here at all are dropped.
func (c *Cluster) Resilver(ctx context.Context, id wire.NodeID) (*ResilverResult, error) {
	o := c.OSD(id)
	res := &ResilverResult{}
	if o == nil || o.eng == nil {
		return res, nil
	}
	refs := c.MDS.StripesOnSorted(id)
	var stale []StripeRef
	for _, ref := range refs {
		ep, ok := o.eng.EpochOf(ref.Ino, ref.Stripe)
		if (ok && ep >= ref.Loc.Epoch) || (!ok && ref.Loc.Epoch == 0) {
			res.Kept++
			continue
		}
		stale = append(stale, ref)
	}
	if len(stale) > 0 {
		opts := c.repairOptions(c.Opts.RecoveryWorkers, false)
		opts.Down = c.deadSnapshot()
		if opts.Workers > len(stale) {
			opts.Workers = len(stale)
		}
		r := &recoverer{
			ctx:      ctx,
			mds:      c.MDS,
			caller:   c.Tr.Caller(wire.MDSNode),
			code:     c.code,
			k:        opts.K,
			m:        opts.M,
			replicas: opts.DataLogReplicas,
			failed:   id, // the stale local copy must not source itself
			repl:     o,
			down:     opts.Down,
			rebind:   false,
		}
		srs := make([]StripeRecovery, len(stale))
		q := newRepairQueue(stale)
		err := runRepairWorkers(ctx, c.MDS, opts, q, func(ref StripeRef, seed, order int) (int64, error) {
			sr, err := r.rebuildStripe(ref)
			srs[seed] = sr
			return int64(sr.Bytes), err
		})
		if err != nil {
			return res, err
		}
		for _, sr := range srs {
			if sr.Lost {
				return res, &DataLossError{
					Ino: sr.Ino, Stripe: sr.Stripe,
					Need: opts.K, Have: sr.Obtained,
					Unreachable: sr.Unreachable, NotFound: sr.NotFound,
					Stripes: 1,
				}
			}
			if !sr.Skipped {
				res.Rebuilt++
			}
		}
	}
	// Drop blocks the MDS no longer places on this node (the stripe was
	// rebound elsewhere while the node was down).
	for _, b := range o.store.Blocks() {
		loc, err := c.MDS.Lookup(b.Ino, b.Stripe)
		if err != nil || int(b.Idx) >= len(loc.Nodes) || loc.Nodes[b.Idx] != id {
			o.store.Delete(b)
			res.Dropped++
		}
	}
	return res, nil
}

// RestartOSD brings a crashed durable OSD back under the same id: a
// fresh OSD reopens the node's data directory (WAL redo + segment
// replay happen in NewOSDAt), rejoins the cluster in the victim's
// place, and resilvers against the MDS. The returned result reports how
// much local state survived; for an outage during which nothing wrote
// to the node's stripes, Rebuilt is zero.
func (c *Cluster) RestartOSD(ctx context.Context, id wire.NodeID) (*OSD, *ResilverResult, error) {
	repl, err := c.SpawnOSD(id)
	if err != nil {
		return nil, nil, err
	}
	c.Reinstate(repl)
	c.startCompactor(repl)
	res, err := c.Resilver(ctx, id)
	if err != nil {
		return repl, res, err
	}
	return repl, res, nil
}

// AddOSD admits an OSD to the cluster under a fresh node id: the
// transport handler is registered, the node joins the MDS placement
// pool (so it can be a rebind target and host future placements), and a
// heartbeat is reported. This is how a replacement with a *different*
// id than the victim joins before Recover rebinds stripes onto it. It
// is Reinstate under a name that reads as admission.
func (c *Cluster) AddOSD(osd *OSD) { c.Reinstate(osd) }

// SpawnOSD builds a fresh OSD under the given node id with exactly the
// cluster's construction-time configuration (device profile, update
// strategy, erasure kind) — the replacement-node factory the scenario
// harness and operator tooling use before AddOSD/Recover. The OSD is
// not registered anywhere; pass it to AddOSD (fresh id) or Reinstate
// (same id) to admit it.
func (c *Cluster) SpawnOSD(id wire.NodeID) (*OSD, error) {
	return NewOSDAt(id, c.Opts.Device, c.Tr.Caller(id), c.Opts.Method, c.cfg, c.Opts.Kind, c.osdDataDir(id))
}

// MaxNodeID returns the largest OSD node id currently registered —
// fresh replacement ids are allocated above it.
func (c *Cluster) MaxNodeID() wire.NodeID {
	var m wire.NodeID
	for _, o := range c.OSDs {
		if o.id > m {
			m = o.id
		}
	}
	return m
}

// Reinstate returns a replacement OSD to service under its node id: the
// transport handler is (re-)registered, the OSD list entry swapped (the
// failed instance's background workers are stopped) or appended for a
// fresh id, the node (re-)admitted to the MDS placement pool, the
// failure flag cleared, and a heartbeat reported. The usual same-id
// sequence is FailOSD, NewOSD under the same id, Recover, Reinstate; a
// fresh-id replacement uses AddOSD, Recover instead and needs no
// Reinstate.
func (c *Cluster) Reinstate(repl *OSD) {
	c.Tr.Register(repl.id, repl.Handler)
	found := false
	for i, o := range c.OSDs {
		if o.id == repl.id {
			if o != repl {
				o.Close()
			}
			c.OSDs[i] = repl
			found = true
		}
	}
	if !found {
		c.OSDs = append(c.OSDs, repl)
	}
	c.MDS.AddNode(repl.id)
	c.failMu.Lock()
	delete(c.failed, repl.id)
	c.failMu.Unlock()
	c.MDS.Heartbeat(repl.id, time.Now())
}

// resources collects every accounted resource in the cluster.
func (c *Cluster) resources() []*sim.Resource {
	out := make([]*sim.Resource, 0, 2*len(c.OSDs))
	for _, o := range c.OSDs {
		out = append(out, o.dev.Resource())
	}
	out = append(out, c.Net.Resources()...)
	return out
}

// Resources exposes the cluster's accounted resources for throughput
// derivation.
func (c *Cluster) Resources() []*sim.Resource { return c.resources() }

// DeviceStats sums device workload across all OSDs (Table 1 columns).
func (c *Cluster) DeviceStats() device.Stats {
	var s device.Stats
	for _, o := range c.OSDs {
		s = s.Add(o.dev.Stats())
	}
	return s
}

// OSDTraffic returns the total bytes sent by OSD NICs — the paper's
// NETWORK TRAFFIC column (inter-OSD update traffic; client ingress is
// identical across methods and excluded).
func (c *Cluster) OSDTraffic() int64 {
	var n int64
	for _, nic := range c.Net.NICs() {
		if isOSDNIC(nic.Name(), len(c.OSDs)) {
			n += nic.SentBytes()
		}
	}
	return n
}

func isOSDNIC(name string, osds int) bool {
	var id int
	if _, err := fmt.Sscanf(name, "node%d", &id); err != nil {
		return false
	}
	return id >= 1 && id <= osds
}

// Close shuts down every OSD's background workers and checkpoints a
// durable MDS (clean shutdown — the next open replays nothing).
func (c *Cluster) Close() {
	for _, o := range c.OSDs {
		o.Close()
	}
	c.MDS.Close()
}

// Scrub verifies parity consistency of every placed stripe of every file
// — the background integrity check a production cluster runs. It returns
// the number of stripes checked and the first inconsistency found.
// Pending logs are legal during a scrub only for methods whose reads are
// log-aware; call Flush first for a strict check.
func (c *Cluster) Scrub() (int, error) {
	checked := 0
	for _, ino := range c.MDS.Files() {
		stripes := c.MDS.Stripes(ino)
		if err := c.VerifyStripes(ino, nil); err != nil {
			return checked, err
		}
		checked += stripes
	}
	return checked, nil
}

// VerifyStripes checks every placed stripe of a file: data blocks versus
// the expected mirror and parity consistency via re-encode. It returns
// the first inconsistency found. Call Flush first.
func (c *Cluster) VerifyStripes(ino uint64, mirror []byte) error {
	span := c.Opts.K * c.Opts.BlockSize
	stripes := c.MDS.Stripes(ino)
	for s := 0; s < stripes; s++ {
		loc, err := c.MDS.Lookup(ino, uint32(s))
		if err != nil {
			return err
		}
		data := make([][]byte, c.Opts.K)
		for i := 0; i < c.Opts.K; i++ {
			b := wire.BlockID{Ino: ino, Stripe: uint32(s), Idx: uint8(i)}
			osd := c.OSD(loc.Nodes[i])
			if osd == nil {
				return fmt.Errorf("ecfs: verify: node %d missing", loc.Nodes[i])
			}
			snap, ok := osd.store.Snapshot(b)
			if !ok {
				return fmt.Errorf("ecfs: verify: block %v missing", b)
			}
			if len(snap) != c.Opts.BlockSize {
				return fmt.Errorf("ecfs: verify: block %v has %d bytes", b, len(snap))
			}
			data[i] = snap
			if mirror != nil {
				lo := s*span + i*c.Opts.BlockSize
				for j := 0; j < c.Opts.BlockSize; j++ {
					var want byte
					if lo+j < len(mirror) {
						want = mirror[lo+j]
					}
					if snap[j] != want {
						return fmt.Errorf("ecfs: verify: data mismatch at stripe %d block %d byte %d: got %d want %d", s, i, j, snap[j], want)
					}
				}
			}
		}
		parity := make([][]byte, c.Opts.M)
		for j := 0; j < c.Opts.M; j++ {
			b := wire.BlockID{Ino: ino, Stripe: uint32(s), Idx: uint8(c.Opts.K + j)}
			osd := c.OSD(loc.Nodes[c.Opts.K+j])
			if osd == nil {
				return fmt.Errorf("ecfs: verify: node %d missing", loc.Nodes[c.Opts.K+j])
			}
			snap, ok := osd.store.Snapshot(b)
			if !ok {
				return fmt.Errorf("ecfs: verify: parity %v missing", b)
			}
			parity[j] = snap
		}
		ok, err := c.code.Verify(data, parity)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("ecfs: verify: stripe %d parity inconsistent", s)
		}
	}
	return nil
}
