package ecfs

import (
	"bytes"
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/transport"
	"repro/internal/wire"
)

// TestCoalescedWriteFlushesOncePerDestinationPerWindow is the
// acceptance gate for cross-stripe write coalescing: a multi-stripe
// WriteFileContext must reach each destination OSD in at most one
// writer flush per coalescing window, where the pre-coalescing client
// paid one flush per destination per *stripe*. Measured over real TCP
// loopback with the transport's per-destination flush counters.
func TestCoalescedWriteFlushesOncePerDestinationPerWindow(t *testing.T) {
	const (
		k, m      = 2, 1
		nOSDs     = 3 // k+m: every OSD holds a shard of every stripe
		blockSize = 4 << 10
	)
	h := newTCPHarness(t, k, m, nOSDs, blockSize)
	rpc := h.newRPC()
	cli := NewClient(wire.ClientIDBase, rpc, h.code, blockSize)
	ctx := context.Background()

	ino, err := cli.CreateContext(ctx, "coalesce-flush-count")
	if err != nil {
		t.Fatal(err)
	}
	span := k * blockSize
	stripes := 2 * writeCoalesceStripes // two full coalescing windows
	data := make([]byte, stripes*span)
	rand.New(rand.NewSource(8)).Read(data)

	// Warm-up pass: dials every connection and fills the placement
	// cache, so the measured pass counts data-plane flushes only.
	if _, err := cli.WriteFileContext(ctx, ino, data); err != nil {
		t.Fatal(err)
	}

	flushes := func() map[wire.NodeID]int64 {
		out := make(map[wire.NodeID]int64)
		for id := range h.osds {
			out[id] = rpc.DestFlushes(id)
		}
		return out
	}

	before := flushes()
	if n, err := cli.WriteFileContext(ctx, ino, data); err != nil || n != stripes {
		t.Fatalf("coalesced write: n=%d stripes err=%v, want %d", n, err, stripes)
	}
	windows := (stripes + writeCoalesceStripes - 1) / writeCoalesceStripes
	for id, b := range before {
		delta := rpc.DestFlushes(id) - b
		if delta == 0 {
			t.Errorf("OSD %d saw no flushes; every OSD holds a shard of every stripe", id)
		}
		if delta > int64(windows) {
			t.Errorf("OSD %d: %d flushes for %d coalescing windows, want <= 1 per window", id, delta, windows)
		}
	}

	// Contrast: the per-stripe path pays at least one flush per stripe
	// per destination — what coalescing buys is stripes/window fewer.
	before = flushes()
	for s := 0; s < stripes; s++ {
		if _, err := cli.WriteStripeContext(ctx, ino, uint32(s), data[s*span:(s+1)*span]); err != nil {
			t.Fatal(err)
		}
	}
	for id, b := range before {
		if delta := rpc.DestFlushes(id) - b; delta < int64(stripes) {
			t.Errorf("OSD %d: per-stripe path took %d flushes for %d stripes, expected >= one per stripe", id, delta, stripes)
		}
	}

	out, _, err := cli.ReadContext(ctx, ino, 0, len(data))
	if err != nil || !bytes.Equal(out, data) {
		t.Fatalf("read-back mismatch after flush-count passes: err=%v", err)
	}
}

// TestPooledRespBalanceAcrossErrorPaths arms the transport's pooled
// buffer misuse detector and drives the client through every hot-path
// shape — coalesced writes, partial-block updates, healthy reads, a
// node failure with degraded writes and reconstructing reads — then
// requires every pooled response buffer to be back in the pool.
// A leak here is invisible in production (just a pool miss); this test
// plus the -race run is where the ownership contract is enforced.
func TestPooledRespBalanceAcrossErrorPaths(t *testing.T) {
	const (
		k, m      = 2, 1
		nOSDs     = 4
		blockSize = 4 << 10
	)
	h := newTCPHarness(t, k, m, nOSDs, blockSize)
	rpc := h.newRPC()
	cli := NewClient(wire.ClientIDBase, rpc, h.code, blockSize)
	ctx := context.Background()

	transport.SetPoolDebug(true)
	defer transport.SetPoolDebug(false)
	base := transport.PoolDebugOutstanding()

	ino, err := cli.CreateContext(ctx, "pool-balance")
	if err != nil {
		t.Fatal(err)
	}
	span := k * blockSize
	stripes := writeCoalesceStripes + 3 // full window plus a partial one
	data := make([]byte, stripes*span)
	rand.New(rand.NewSource(9)).Read(data)

	// Healthy paths: coalesced write, overwrite (delta updates through
	// the OSD-side update fan-out), partial-block update, full read.
	if _, err := cli.WriteFileContext(ctx, ino, data); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.WriteFileContext(ctx, ino, data); err != nil {
		t.Fatal(err)
	}
	f, err := cli.Open(ctx, "pool-balance")
	if err != nil {
		t.Fatal(err)
	}
	patch := []byte("pooled-buffer ownership patch")
	copy(data[137:], patch)
	if _, err := f.UpdateAt(ctx, 137, patch, 0); err != nil {
		t.Fatal(err)
	}
	if out, _, err := cli.ReadContext(ctx, ino, 0, len(data)); err != nil || !bytes.Equal(out, data) {
		t.Fatalf("healthy read-back: err=%v", err)
	}

	// Failure paths: kill an OSD mid-placement. Writes that land on it
	// exhaust the re-resolve/retry loop (release-on-error in writeShard
	// and the coalesced fan-out harvest); reads reconstruct via the
	// degraded path, which collects k responses and releases them all.
	h.fail(1)
	if n, err := cli.WriteFileContext(ctx, ino, data); err == nil {
		t.Logf("write after OSD failure unexpectedly clean (n=%d); error paths not exercised", n)
	}
	if out, _, err := cli.ReadContext(ctx, ino, 0, len(data)); err != nil || !bytes.Equal(out, data) {
		t.Fatalf("degraded read-back: err=%v", err)
	}

	// Every buffer attached while armed must be released once handlers
	// and fallback goroutines settle.
	deadline := time.Now().Add(10 * time.Second)
	for transport.PoolDebugOutstanding() != base {
		if time.Now().After(deadline) {
			t.Fatalf("pooled response buffers leaked: outstanding=%d want %d",
				transport.PoolDebugOutstanding(), base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
