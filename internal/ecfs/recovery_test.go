package ecfs

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/wire"
)

// buildRecoveryCluster assembles a cluster with a written + updated file.
// Everything is driven from one client with a fixed seed, so two calls
// produce byte-identical cluster states.
func buildRecoveryCluster(t *testing.T, method string, updates int) (*Cluster, *Client, uint64, []byte) {
	t.Helper()
	c := MustNewCluster(testOptions(method))
	cli := c.NewClient()
	fileSize := 64 << 10
	ino, mirror := writeTestFile(t, c, cli, fileSize, 23)
	rng := rand.New(rand.NewSource(29))
	for i := 0; i < updates; i++ {
		off := int64(rng.Intn(fileSize - 256))
		data := make([]byte, 1+rng.Intn(256))
		rng.Read(data)
		if _, err := cli.Update(ino, off, data, time.Duration(i)*time.Millisecond); err != nil {
			t.Fatal(err)
		}
		copy(mirror[off:], data)
	}
	return c, cli, ino, mirror
}

// failAndRecover fails the OSD at position pos, rebuilds it with the
// given worker count, and returns the replacement and result. The
// replacement is NOT reinstated.
func failAndRecover(t *testing.T, c *Cluster, pos int, workers int) (*OSD, *RecoveryResult) {
	t.Helper()
	victim := c.OSDs[pos]
	c.FailOSD(victim.ID())
	repl := newTestReplacement(t, c, victim.ID())
	res, err := c.RecoverWith(context.Background(), victim.ID(), repl, workers)
	if err != nil {
		t.Fatal(err)
	}
	return repl, res
}

func newTestReplacement(t *testing.T, c *Cluster, id wire.NodeID) *OSD {
	t.Helper()
	cfg := *c.Opts.Strategy
	cfg.BlockSize = c.Opts.BlockSize
	repl, err := NewOSD(id, c.Opts.Device, c.Tr.Caller(id), c.Opts.Method, cfg, c.Opts.Kind)
	if err != nil {
		t.Fatal(err)
	}
	return repl
}

// TestRecoveryDeterministicAcrossWorkers pins the tentpole's core
// guarantee: the parallel rebuild produces block contents byte-identical
// to the sequential (one-worker) path, for every worker count.
func TestRecoveryDeterministicAcrossWorkers(t *testing.T) {
	type outcome struct {
		repl *OSD
		res  *RecoveryResult
	}
	outs := map[int]outcome{}
	for _, workers := range []int{1, 8} {
		c, _, _, _ := buildRecoveryCluster(t, "tsue", 200)
		defer c.Close()
		repl, res := failAndRecover(t, c, 2, workers)
		defer repl.Close()
		outs[workers] = outcome{repl: repl, res: res}
	}
	seq, par := outs[1], outs[8]
	if seq.res.Blocks == 0 {
		t.Fatal("nothing recovered")
	}
	if seq.res.Blocks != par.res.Blocks || seq.res.Bytes != par.res.Bytes ||
		seq.res.ReplayedBytes != par.res.ReplayedBytes || seq.res.Skipped != par.res.Skipped {
		t.Fatalf("result mismatch: seq=%+v par=%+v", seq.res, par.res)
	}
	blocks := seq.repl.Store().Blocks()
	if len(blocks) != seq.res.Blocks {
		t.Fatalf("store holds %d blocks, result says %d", len(blocks), seq.res.Blocks)
	}
	for _, id := range blocks {
		want, _ := seq.repl.Store().Snapshot(id)
		got, ok := par.repl.Store().Snapshot(id)
		if !ok {
			t.Fatalf("block %v missing from parallel rebuild", id)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("block %v differs between worker counts", id)
		}
	}
	// Per-stripe timings are reported in deterministic order and sum to
	// the serial cost.
	var sum time.Duration
	for i, sr := range par.res.Stripes {
		sum += sr.Time()
		if i > 0 {
			prev := par.res.Stripes[i-1]
			if prev.Ino > sr.Ino || (prev.Ino == sr.Ino && prev.Stripe > sr.Stripe) {
				t.Fatal("per-stripe timings not in (ino, stripe) order")
			}
		}
	}
	if sum != par.res.StripeTime {
		t.Fatalf("StripeTime %v != summed per-stripe time %v", par.res.StripeTime, sum)
	}
	// The pipelined makespan model must credit the extra workers.
	if par.res.VirtualTime > seq.res.VirtualTime {
		t.Fatalf("8 workers slower than 1: %v > %v", par.res.VirtualTime, seq.res.VirtualTime)
	}
}

// TestRecoveryFetchErrorFallback injects fetch failures at one surviving
// shard holder: every fetch it serves answers with an error. Recovery
// must fall back to the remaining live holders (here including parity
// shards) instead of aborting or silently skipping stripes.
func TestRecoveryFetchErrorFallback(t *testing.T) {
	c, cli, ino, mirror := buildRecoveryCluster(t, "tsue", 150)
	defer c.Close()
	if err := c.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}

	victim := c.OSDs[2]
	c.FailOSD(victim.ID())

	// A second, live node serves everything except block fetches.
	flaky := c.OSDs[5]
	var injected atomic.Int64
	c.Tr.Register(flaky.ID(), func(hctx context.Context, msg *wire.Msg) *wire.Resp {
		if msg.Kind == wire.KBlockFetch {
			injected.Add(1)
			return &wire.Resp{Err: "injected fetch failure"}
		}
		return flaky.Handler(hctx, msg)
	})

	repl := newTestReplacement(t, c, victim.ID())
	defer repl.Close()
	res, err := c.Recover(context.Background(), victim.ID(), repl)
	if err != nil {
		t.Fatalf("recovery must survive per-node fetch errors: %v", err)
	}
	if injected.Load() == 0 {
		t.Fatal("fault injection never triggered")
	}
	// Error replies are accounted as per-stripe fallback retries; they
	// are not transport-level FetchErrors (the node did answer).
	retries := 0
	for _, sr := range res.Stripes {
		retries += sr.Retries
	}
	if retries == 0 {
		t.Fatal("fetch fallbacks not accounted")
	}
	if res.FetchErrors != 0 {
		t.Fatalf("error replies miscounted as unreachable nodes: %d", res.FetchErrors)
	}
	if res.Skipped != 0 {
		t.Fatalf("%d stripes skipped despite >= K live holders", res.Skipped)
	}
	for _, id := range victim.Store().Blocks() {
		if _, ok := repl.Store().Snapshot(id); !ok {
			t.Fatalf("block %v not recovered", id)
		}
	}
	// Restore the flaky node's real handler and verify end to end.
	c.Tr.Register(flaky.ID(), flaky.Handler)
	c.Reinstate(repl)
	got, _, err := cli.Read(ino, 0, len(mirror))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, mirror) {
		t.Fatal("post-recovery read mismatch")
	}
	if err := c.VerifyStripes(ino, mirror); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryNodeDiesMidRebuild kills a second node *during* the
// rebuild: its first served fetch deregisters it, so every later fetch
// to it fails at the transport (the exact cluster.go:212 abort of the
// seed). Recovery must fall back to other holders and finish.
func TestRecoveryNodeDiesMidRebuild(t *testing.T) {
	c, _, _, _ := buildRecoveryCluster(t, "tsue", 100)
	defer c.Close()
	if err := c.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}

	victim := c.OSDs[1]
	c.FailOSD(victim.ID())

	dying := c.OSDs[4]
	var killed atomic.Bool
	c.Tr.Register(dying.ID(), func(hctx context.Context, msg *wire.Msg) *wire.Resp {
		if msg.Kind == wire.KBlockFetch {
			if killed.CompareAndSwap(false, true) {
				c.FailOSD(dying.ID())
			}
			return &wire.Resp{Err: "node dying"}
		}
		return dying.Handler(hctx, msg)
	})

	repl := newTestReplacement(t, c, victim.ID())
	defer repl.Close()
	res, err := c.Recover(context.Background(), victim.ID(), repl)
	if err != nil {
		t.Fatalf("recovery must survive a node dying mid-rebuild: %v", err)
	}
	if !killed.Load() {
		t.Fatal("second failure never triggered")
	}
	if res.Skipped != 0 {
		t.Fatalf("%d stripes skipped despite K live holders", res.Skipped)
	}
	// Whether a given failed attempt was an error reply (before the
	// deregistration) or a transport error (after) depends on stripe
	// placement; together they must be visible as fallbacks.
	retries := 0
	for _, sr := range res.Stripes {
		retries += sr.Retries
	}
	if retries == 0 {
		t.Fatal("fetch fallbacks not accounted")
	}
	for _, id := range victim.Store().Blocks() {
		if _, ok := repl.Store().Snapshot(id); !ok {
			t.Fatalf("block %v not recovered", id)
		}
	}
}

// TestRecoveryDoubleFailure exercises M=2 fault tolerance: two OSDs die
// with pending updates, and both are rebuilt one after the other while
// the other is still down.
func TestRecoveryDoubleFailure(t *testing.T) {
	c, cli, ino, mirror := buildRecoveryCluster(t, "tsue", 200)
	defer c.Close()

	first, second := c.OSDs[1], c.OSDs[4]
	c.FailOSD(first.ID())
	c.FailOSD(second.ID())

	for _, victim := range []*OSD{first, second} {
		repl := newTestReplacement(t, c, victim.ID())
		res, err := c.Recover(context.Background(), victim.ID(), repl)
		if err != nil {
			t.Fatalf("recover %d: %v", victim.ID(), err)
		}
		if res.Blocks == 0 {
			t.Fatalf("recover %d: nothing recovered", victim.ID())
		}
		for _, id := range victim.Store().Blocks() {
			if _, ok := repl.Store().Snapshot(id); !ok {
				t.Fatalf("recover %d: block %v not recovered", victim.ID(), id)
			}
		}
		c.Reinstate(repl)
	}
	got, _, err := cli.Read(ino, 0, len(mirror))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, mirror) {
		t.Fatal("post-recovery read mismatch")
	}
	if err := c.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyStripes(ino, mirror); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryNeverWrittenStripes: stripes that were placed but never
// written (no block exists anywhere) are skipped, not treated as errors.
func TestRecoveryNeverWrittenStripes(t *testing.T) {
	c, cli, ino, mirror := buildRecoveryCluster(t, "tsue", 50)
	defer c.Close()
	// Place (but never write) several additional stripes; with 8 OSDs
	// and 6 nodes per stripe, every OSD appears in some placement.
	written := c.MDS.Stripes(ino)
	for s := written; s < written+8; s++ {
		if _, err := c.MDS.Lookup(ino, uint32(s)); err != nil {
			t.Fatal(err)
		}
	}

	victim := c.OSDs[3]
	c.FailOSD(victim.ID())
	repl := newTestReplacement(t, c, victim.ID())
	defer repl.Close()
	res, err := c.Recover(context.Background(), victim.ID(), repl)
	if err != nil {
		t.Fatalf("never-written stripes must not fail recovery: %v", err)
	}
	if res.Skipped == 0 {
		t.Fatal("expected at least one never-written stripe on the victim")
	}
	for _, sr := range res.Stripes {
		if sr.Skipped && sr.Bytes != 0 {
			t.Fatalf("skipped stripe %d/%d reports %d rebuilt bytes", sr.Ino, sr.Stripe, sr.Bytes)
		}
	}
	c.Reinstate(repl)
	got, _, err := cli.Read(ino, 0, len(mirror))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, mirror) {
		t.Fatal("post-recovery read mismatch")
	}
}

// TestRecoveryConcurrentWithReads drives client reads (which degrade to
// reconstruction for blocks of the dead node) while the rebuild engine
// runs with multiple workers.
func TestRecoveryConcurrentWithReads(t *testing.T) {
	c, cli, ino, mirror := buildRecoveryCluster(t, "tsue", 150)
	defer c.Close()
	// Drain first so degraded reads see fully recycled state.
	if err := c.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}

	victim := c.OSDs[2]
	c.FailOSD(victim.ID())
	repl := newTestReplacement(t, c, victim.ID())

	done := make(chan error, 1)
	go func() {
		rng := rand.New(rand.NewSource(31))
		for i := 0; i < 40; i++ {
			off := int64(rng.Intn(len(mirror) - 512))
			n := 1 + rng.Intn(512)
			got, _, err := cli.Read(ino, off, n)
			if err != nil {
				done <- err
				return
			}
			if !bytes.Equal(got, mirror[off:off+int64(n)]) {
				done <- errReadMismatch{off: off, n: n}
				return
			}
		}
		done <- nil
	}()

	if _, err := c.RecoverWith(context.Background(), victim.ID(), repl, 8); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("concurrent read: %v", err)
	}
	c.Reinstate(repl)
	if err := c.VerifyStripes(ino, mirror); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryErrorReturnsPromptly pins the worker-pool error path: a
// stripe rebuild that errors (here: a replica log that fails to decode)
// must surface the error from Recover instead of deadlocking the
// feeder against exited workers.
func TestRecoveryErrorReturnsPromptly(t *testing.T) {
	for _, workers := range []int{1, 4} {
		c, _, _, _ := buildRecoveryCluster(t, "tsue", 100)
		defer c.Close()
		victim := c.OSDs[2]
		c.FailOSD(victim.ID())
		// Every replica-log fetch answers garbage that DecodeExtents
		// rejects, so every data-block stripe rebuild errors.
		for _, o := range c.Alive() {
			o := o
			c.Tr.Register(o.ID(), func(hctx context.Context, msg *wire.Msg) *wire.Resp {
				if msg.Kind == wire.KReplicaFetch {
					return &wire.Resp{Data: []byte{0xFF, 0x01, 0x02}}
				}
				return o.Handler(hctx, msg)
			})
		}
		repl := newTestReplacement(t, c, victim.ID())
		defer repl.Close()

		errCh := make(chan error, 1)
		go func() {
			_, err := c.RecoverWith(context.Background(), victim.ID(), repl, workers)
			errCh <- err
		}()
		select {
		case err := <-errCh:
			if err == nil {
				t.Fatalf("workers=%d: expected a decode error from recovery", workers)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("workers=%d: recovery deadlocked on stripe error", workers)
		}
	}
}

// TestRecoveryOntoFreshNode pins the epoch tentpole end to end: the
// victim's blocks are rebuilt onto a replacement with a *different*
// node id, every affected placement is rebound under a bumped epoch,
// and a client that cached the pre-failure placements transparently
// re-resolves — reads, updates and writes all succeed with no manual
// cache invalidation.
func TestRecoveryOntoFreshNode(t *testing.T) {
	c, cli, ino, mirror := buildRecoveryCluster(t, "tsue", 200)
	defer c.Close()

	// Warm the client's placement cache across the whole file.
	if _, _, err := cli.Read(ino, 0, len(mirror)); err != nil {
		t.Fatal(err)
	}

	victim := c.OSDs[2]
	c.FailOSD(victim.ID())

	freshID := wire.NodeID(c.Opts.NumOSDs + 5)
	cfg := *c.Opts.Strategy
	cfg.BlockSize = c.Opts.BlockSize
	repl, err := NewOSD(freshID, c.Opts.Device, c.Tr.Caller(freshID), c.Opts.Method, cfg, c.Opts.Kind)
	if err != nil {
		t.Fatal(err)
	}
	c.AddOSD(repl)

	res, err := c.Recover(context.Background(), victim.ID(), repl)
	if err != nil {
		t.Fatal(err)
	}
	if res.Blocks == 0 {
		t.Fatal("nothing recovered")
	}
	if res.Rebound != res.Blocks+res.Skipped {
		t.Fatalf("rebound %d placements, want %d", res.Rebound, res.Blocks+res.Skipped)
	}
	// Presence check per block; contents are verified against the
	// mirror below (the rebuilt blocks may legitimately differ from the
	// victim's last store state, since replica-log replay applies the
	// updates that were still buffered in the victim's DataLog).
	for _, id := range victim.Store().Blocks() {
		if _, ok := repl.Store().Snapshot(id); !ok {
			t.Fatalf("block %v not rebuilt on the fresh node", id)
		}
	}

	// The MDS must no longer reference the victim anywhere.
	if refs := c.MDS.StripesOn(victim.ID()); len(refs) != 0 {
		t.Fatalf("victim still holds %d placements after fresh-node recovery", len(refs))
	}
	loc, err := c.MDS.Lookup(ino, 0)
	if err != nil {
		t.Fatal(err)
	}
	if loc.Epoch == 0 {
		t.Fatal("placement epoch not bumped by fresh-node recovery")
	}

	// The stale client: reads re-resolve the moved block (its cached
	// node is gone), updates to surviving holders are rejected with
	// the structured stale-epoch reply and retried transparently.
	got, _, err := cli.Read(ino, 0, len(mirror))
	if err != nil {
		t.Fatalf("stale client read: %v", err)
	}
	if !bytes.Equal(got, mirror) {
		t.Fatal("stale client read mismatch")
	}
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 50; i++ {
		off := int64(rng.Intn(len(mirror) - 128))
		data := make([]byte, 1+rng.Intn(128))
		rng.Read(data)
		if _, err := cli.Update(ino, off, data, 0); err != nil {
			t.Fatalf("stale client update: %v", err)
		}
		copy(mirror[off:], data)
	}
	// A full-stripe write through the stale cache must also land on the
	// rebound placement. (Drain first: rewriting a stripe that has
	// pending update logs is out of contract.)
	if err := c.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	span := cli.StripeSpan()
	rng.Read(mirror[:span])
	if _, err := cli.WriteStripe(ino, 0, mirror[:span]); err != nil {
		t.Fatalf("stale client write: %v", err)
	}
	if err := c.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyStripes(ino, mirror); err != nil {
		t.Fatal(err)
	}

	// A second, fresh client resolves the rebound placements directly.
	cli2 := c.NewClient()
	got, _, err = cli2.Read(ino, 0, len(mirror))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, mirror) {
		t.Fatal("fresh client read mismatch")
	}
}

// TestRecoveryDataLossError pins the skip/loss distinction: when more
// than M holders of a written stripe cannot be reached (transport-level
// or non-not-found failures), Recover reports an explicit
// *DataLossError instead of silently skipping the stripe, while still
// rebuilding everything that *is* recoverable.
func TestRecoveryDataLossError(t *testing.T) {
	c, _, ino, _ := buildRecoveryCluster(t, "tsue", 100)
	defer c.Close()
	if err := c.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Pick the victims from one stripe's placement so at least that
	// stripe is short of K: the victim plus M more members that answer
	// fetches with a generic (non-not-found) failure.
	loc, err := c.MDS.Lookup(ino, 0)
	if err != nil {
		t.Fatal(err)
	}
	victim := c.OSD(loc.Nodes[0])
	c.FailOSD(victim.ID())
	for _, node := range loc.Nodes[1 : 1+c.Opts.M] {
		o := c.OSD(node)
		c.Tr.Register(o.ID(), func(hctx context.Context, msg *wire.Msg) *wire.Resp {
			if msg.Kind == wire.KBlockFetch {
				return &wire.Resp{Err: "injected disk failure"}
			}
			return o.Handler(hctx, msg)
		})
	}

	repl := newTestReplacement(t, c, victim.ID())
	defer repl.Close()
	res, err := c.Recover(context.Background(), victim.ID(), repl)
	if err == nil {
		t.Fatal("expected a data-loss error")
	}
	var dl *DataLossError
	if !errors.As(err, &dl) {
		t.Fatalf("error is %T (%v), want *DataLossError", err, err)
	}
	if dl.Unreachable+dl.NotFound == 0 && dl.Have >= dl.Need {
		t.Fatalf("implausible data-loss detail: %+v", dl)
	}
	if res == nil {
		t.Fatal("data loss must still return the partial result")
	}
	if res.Lost == 0 {
		t.Fatal("no stripe accounted as lost")
	}
	if res.Skipped != 0 {
		t.Fatalf("%d written stripes misclassified as never-written", res.Skipped)
	}
	for _, sr := range res.Stripes {
		if sr.Lost && sr.Skipped {
			t.Fatal("a stripe is both lost and skipped")
		}
	}
}

// TestBlockFetchNotFoundStructured pins the wire-level distinction the
// recovery classification relies on.
func TestBlockFetchNotFoundStructured(t *testing.T) {
	c := MustNewCluster(testOptions("tsue"))
	defer c.Close()
	resp, err := c.Tr.Caller(wire.MDSNode).Call(context.Background(), c.OSDs[0].ID(), &wire.Msg{
		Kind: wire.KBlockFetch, Block: wire.BlockID{Ino: 9999, Stripe: 0, Idx: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.IsNotFound() {
		t.Fatalf("missing block reply not structured: %+v", resp)
	}
	if !errors.Is(resp.Error(), wire.ErrNotFound) {
		t.Fatalf("resp.Error() = %v, want wrap of wire.ErrNotFound", resp.Error())
	}
}

type errReadMismatch struct {
	off int64
	n   int
}

func (e errReadMismatch) Error() string {
	return "degraded read mismatch during recovery"
}
