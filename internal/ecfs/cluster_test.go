package ecfs

import (
	"bytes"
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/erasure"
	"repro/internal/netsim"
	"repro/internal/update"
	"repro/internal/wire"
)

// testOptions returns a small, fast cluster configuration with log units
// small enough that pools genuinely seal and recycle mid-test.
func testOptions(method string) Options {
	cfg := update.DefaultConfig()
	cfg.UnitSize = 8 << 10
	cfg.MaxUnits = 4
	cfg.Pools = 2
	cfg.Workers = 2
	cfg.RecycleThreshold = 32 << 10
	cfg.ReservedSpace = 2 << 10
	cfg.CollectorUnitSize = 8 << 10
	return Options{
		NumOSDs:   8,
		K:         4,
		M:         2,
		BlockSize: 4 << 10,
		Method:    method,
		Device:    device.ChameleonSSD(),
		Net:       netsim.Ethernet25G(),
		Kind:      erasure.Vandermonde,
		Strategy:  &cfg,
	}
}

func writeTestFile(t *testing.T, c *Cluster, cli *Client, size int, seed int64) (uint64, []byte) {
	t.Helper()
	ino, err := cli.Create("f1")
	if err != nil {
		t.Fatal(err)
	}
	mirror := make([]byte, size)
	rand.New(rand.NewSource(seed)).Read(mirror)
	if _, err := cli.WriteFile(ino, mirror); err != nil {
		t.Fatal(err)
	}
	// Pad the mirror to full stripes (WriteFile zero-pads).
	span := cli.StripeSpan()
	padded := make([]byte, (size+span-1)/span*span)
	copy(padded, mirror)
	return ino, padded
}

func TestWriteVerify(t *testing.T) {
	c := MustNewCluster(testOptions("tsue"))
	defer c.Close()
	cli := c.NewClient()
	ino, mirror := writeTestFile(t, c, cli, 64<<10, 1)
	if err := c.VerifyStripes(ino, mirror); err != nil {
		t.Fatal(err)
	}
}

func TestReadBack(t *testing.T) {
	c := MustNewCluster(testOptions("tsue"))
	defer c.Close()
	cli := c.NewClient()
	ino, mirror := writeTestFile(t, c, cli, 48<<10, 2)
	got, lat, err := cli.Read(ino, 1000, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, mirror[1000:6000]) {
		t.Fatal("read-back mismatch")
	}
	if lat < 0 {
		t.Fatal("negative latency")
	}
}

// TestUpdateEquivalenceAllMethods is the central correctness check: after
// an arbitrary update workload and a full flush, every method must leave
// identical data blocks AND parity consistent with a re-encode — i.e. all
// seven update paths compute the same mathematics (Eq. 1-5).
func TestUpdateEquivalenceAllMethods(t *testing.T) {
	for _, method := range update.AllMethods {
		method := method
		t.Run(method, func(t *testing.T) {
			t.Parallel()
			c := MustNewCluster(testOptions(method))
			defer c.Close()
			cli := c.NewClient()
			fileSize := 96 << 10 // 6 stripes of 16 KiB
			ino, mirror := writeTestFile(t, c, cli, fileSize, 42)

			rng := rand.New(rand.NewSource(7))
			for i := 0; i < 400; i++ {
				off := int64(rng.Intn(fileSize - 512))
				n := 1 + rng.Intn(512)
				data := make([]byte, n)
				rng.Read(data)
				if _, err := cli.Update(ino, off, data, time.Duration(i)*time.Millisecond); err != nil {
					t.Fatalf("update %d: %v", i, err)
				}
				copy(mirror[off:], data)
			}
			if err := c.Flush(context.Background()); err != nil {
				t.Fatal(err)
			}
			if err := c.VerifyStripes(ino, mirror); err != nil {
				t.Fatalf("method %s: %v", method, err)
			}
		})
	}
}

// TestReadYourWrites: reads must observe updates immediately, before any
// flush, under every method.
func TestReadYourWrites(t *testing.T) {
	for _, method := range update.AllMethods {
		method := method
		t.Run(method, func(t *testing.T) {
			t.Parallel()
			c := MustNewCluster(testOptions(method))
			defer c.Close()
			cli := c.NewClient()
			ino, _ := writeTestFile(t, c, cli, 32<<10, 3)
			payload := []byte("fresh-update-payload")
			if _, err := cli.Update(ino, 777, payload, 0); err != nil {
				t.Fatal(err)
			}
			got, _, err := cli.Read(ino, 777, len(payload))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, payload) {
				t.Fatalf("%s: stale read: %q", method, got)
			}
		})
	}
}

func TestConcurrentClients(t *testing.T) {
	c := MustNewCluster(testOptions("tsue"))
	defer c.Close()
	setup := c.NewClient()
	fileSize := 64 << 10
	ino, mirror := writeTestFile(t, c, setup, fileSize, 5)

	// Partition the file: each client owns a disjoint region, so the
	// final state is deterministic.
	var wg sync.WaitGroup
	nClients := 8
	region := fileSize / nClients
	var mu sync.Mutex
	for ci := 0; ci < nClients; ci++ {
		cli := c.NewClient()
		wg.Add(1)
		go func(ci int, cli *Client) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + ci)))
			base := int64(ci * region)
			for i := 0; i < 60; i++ {
				off := base + int64(rng.Intn(region-64))
				data := make([]byte, 1+rng.Intn(64))
				rng.Read(data)
				if _, err := cli.Update(ino, off, data, time.Duration(i)*time.Millisecond); err != nil {
					t.Errorf("client %d: %v", ci, err)
					return
				}
				mu.Lock()
				copy(mirror[off:], data)
				mu.Unlock()
			}
		}(ci, cli)
	}
	wg.Wait()
	if err := c.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyStripes(ino, mirror); err != nil {
		t.Fatal(err)
	}
}

func TestTSUEReadCacheHit(t *testing.T) {
	c := MustNewCluster(testOptions("tsue"))
	defer c.Close()
	cli := c.NewClient()
	ino, _ := writeTestFile(t, c, cli, 32<<10, 9)
	payload := make([]byte, 256)
	for i := range payload {
		payload[i] = 0xAB
	}
	if _, err := cli.Update(ino, 512, payload, 0); err != nil {
		t.Fatal(err)
	}
	// A read fully covered by the data log must cost zero device time.
	_, lat, err := cli.Read(ino, 512, 256)
	if err != nil {
		t.Fatal(err)
	}
	// Latency includes only network, which the client-side call adds on
	// top of resp.Cost; resp.Cost itself must show zero device read.
	// Reading uncached data costs the random-read latency (~80us).
	_, lat2, err := cli.Read(ino, 20<<10, 256)
	if err != nil {
		t.Fatal(err)
	}
	if lat >= lat2 {
		t.Fatalf("cache hit (%v) should be cheaper than miss (%v)", lat, lat2)
	}
}

func TestRecoveryAfterUpdates(t *testing.T) {
	for _, method := range []string{"tsue", "pl", "fo"} {
		method := method
		t.Run(method, func(t *testing.T) {
			t.Parallel()
			c := MustNewCluster(testOptions(method))
			defer c.Close()
			cli := c.NewClient()
			fileSize := 64 << 10
			ino, mirror := writeTestFile(t, c, cli, fileSize, 11)
			rng := rand.New(rand.NewSource(13))
			for i := 0; i < 200; i++ {
				off := int64(rng.Intn(fileSize - 256))
				data := make([]byte, 1+rng.Intn(256))
				rng.Read(data)
				if _, err := cli.Update(ino, off, data, time.Duration(i)*time.Millisecond); err != nil {
					t.Fatal(err)
				}
				copy(mirror[off:], data)
			}

			// Fail one OSD and rebuild its blocks onto a replacement
			// registered under the same id.
			victim := c.OSDs[2]
			c.FailOSD(victim.ID())
			repl, err := NewOSD(victim.ID(), c.Opts.Device, c.Tr.Caller(victim.ID()), method, func() update.Config {
				cfg := *c.Opts.Strategy
				cfg.BlockSize = c.Opts.BlockSize
				return cfg
			}(), c.Opts.Kind)
			if err != nil {
				t.Fatal(err)
			}
			defer repl.Close()

			res, err := c.Recover(context.Background(), victim.ID(), repl)
			if err != nil {
				t.Fatal(err)
			}
			if res.Blocks == 0 {
				t.Fatal("nothing recovered")
			}
			if res.Bandwidth <= 0 {
				t.Fatal("no recovery bandwidth measured")
			}
			// Every block the victim hosted must exist on the
			// replacement. (Its content is the *post-drain* state, which
			// can legitimately be newer than the dead node's snapshot.)
			for _, id := range victim.Store().Blocks() {
				if _, ok := repl.Store().Snapshot(id); !ok {
					t.Fatalf("block %v not recovered", id)
				}
			}
			// Reinstate the replacement under the victim's id: reads
			// must match the mirror and stripes must verify end to end.
			c.Reinstate(repl)
			got, _, err := cli.Read(ino, 0, fileSize)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, mirror[:fileSize]) {
				t.Fatal("post-recovery read mismatch")
			}
			if err := c.VerifyStripes(ino, mirror); err != nil {
				t.Fatalf("post-recovery stripe verify: %v", err)
			}
		})
	}
}

func TestTSUEDeltaCopyPromotion(t *testing.T) {
	// Fail the OSD hosting a stripe's first parity block while deltas
	// are still buffered in its DeltaLog: the copies at the second
	// parity OSD must be promoted so parity stays consistent.
	opts := testOptions("tsue")
	// Huge units: nothing recycles on its own, so deltas sit in the
	// DataLog; we drain the data logs manually to push them into the
	// DeltaLog layer, then fail the DeltaLog owner.
	cfg := *opts.Strategy
	cfg.UnitSize = 16 << 20
	opts.Strategy = &cfg
	c := MustNewCluster(opts)
	defer c.Close()
	cli := c.NewClient()
	fileSize := 16 << 10 // one stripe
	ino, mirror := writeTestFile(t, c, cli, fileSize, 17)
	rng := rand.New(rand.NewSource(19))
	for i := 0; i < 50; i++ {
		off := int64(rng.Intn(fileSize - 128))
		data := make([]byte, 1+rng.Intn(128))
		rng.Read(data)
		if _, err := cli.Update(ino, off, data, 0); err != nil {
			t.Fatal(err)
		}
		copy(mirror[off:], data)
	}
	// Push DataLogs into DeltaLogs only (phase 1).
	for _, o := range c.Alive() {
		if err := o.Strategy().Drain(context.Background(), 1, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Fail the first parity OSD of stripe 0 (the DeltaLog primary).
	loc, err := c.MDS.Lookup(ino, 0)
	if err != nil {
		t.Fatal(err)
	}
	parity1 := loc.Nodes[c.Opts.K]
	c.FailOSD(parity1)

	repl, err := NewOSD(parity1, c.Opts.Device, c.Tr.Caller(parity1), "tsue", cfg, c.Opts.Kind)
	if err != nil {
		t.Fatal(err)
	}
	defer repl.Close()
	if _, err := c.Recover(context.Background(), parity1, repl); err != nil {
		t.Fatal(err)
	}
	c.Reinstate(repl)
	if err := c.VerifyStripes(ino, mirror); err != nil {
		t.Fatal(err)
	}
}

func TestMDSPlacement(t *testing.T) {
	ids := []wire.NodeID{1, 2, 3, 4, 5, 6, 7, 8}
	m, err := NewMDS(ids, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	ino, _ := m.Create("f")
	if again, _ := m.Create("f"); ino != again {
		t.Fatal("create must be idempotent")
	}
	loc, err := m.Lookup(ino, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(loc.Nodes) != 6 {
		t.Fatalf("placement has %d nodes", len(loc.Nodes))
	}
	seen := map[wire.NodeID]bool{}
	for _, n := range loc.Nodes {
		if seen[n] {
			t.Fatal("placement reuses a node")
		}
		seen[n] = true
	}
	// Deterministic.
	loc2, _ := m.Lookup(ino, 0)
	for i := range loc.Nodes {
		if loc.Nodes[i] != loc2.Nodes[i] {
			t.Fatal("placement not stable")
		}
	}
	if _, err := m.Lookup(999, 0); err == nil {
		t.Fatal("unknown ino must fail")
	}
}

func TestMDSValidation(t *testing.T) {
	if _, err := NewMDS([]wire.NodeID{1, 2}, 4, 2); err == nil {
		t.Fatal("too few OSDs must fail")
	}
	if _, err := NewMDS([]wire.NodeID{1, 2, 3}, 0, 2); err == nil {
		t.Fatal("K=0 must fail")
	}
}

func TestMDSLiveness(t *testing.T) {
	m, _ := NewMDS([]wire.NodeID{1, 2, 3, 4, 5, 6}, 4, 2)
	now := time.Now()
	m.Heartbeat(3, now)
	if got, ok := m.LastHeartbeat(3); !ok || !got.Equal(now) {
		t.Fatal("heartbeat lost")
	}
	m.MarkDead(5)
	dead := m.DeadNodes()
	if len(dead) != 1 || dead[0] != 5 {
		t.Fatalf("dead = %v", dead)
	}
	m.Heartbeat(5, now) // resurrection clears the flag
	if len(m.DeadNodes()) != 0 {
		t.Fatal("heartbeat must clear dead flag")
	}
}

func TestClientSplitSpansBlocks(t *testing.T) {
	c := MustNewCluster(testOptions("fo"))
	defer c.Close()
	cli := c.NewClient()
	ino, mirror := writeTestFile(t, c, cli, 64<<10, 21)
	// Update crossing a block boundary and a stripe boundary.
	span := cli.StripeSpan()
	off := int64(span - 1000)
	data := make([]byte, 3000)
	for i := range data {
		data[i] = byte(i)
	}
	if _, err := cli.Update(ino, off, data, 0); err != nil {
		t.Fatal(err)
	}
	copy(mirror[off:], data)
	if err := c.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyStripes(ino, mirror); err != nil {
		t.Fatal(err)
	}
}

func TestClusterValidation(t *testing.T) {
	opts := testOptions("tsue")
	opts.NumOSDs = 3 // < K+M
	if _, err := NewCluster(opts); err == nil {
		t.Fatal("too few OSDs must fail")
	}
	opts = testOptions("nosuch")
	if _, err := NewCluster(opts); err == nil {
		t.Fatal("unknown method must fail")
	}
}

func TestHeartbeatRPC(t *testing.T) {
	c := MustNewCluster(testOptions("tsue"))
	defer c.Close()
	if err := c.OSDs[0].Heartbeat(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.MDS.LastHeartbeat(c.OSDs[0].ID()); !ok {
		t.Fatal("MDS did not record heartbeat")
	}
}

func TestDeadListRoundTrip(t *testing.T) {
	in := []wire.NodeID{1, 70000, 5}
	out := decodeDeadList(encodeDeadList(in))
	if len(out) != 3 || out[0] != 1 || out[1] != 70000 || out[2] != 5 {
		t.Fatalf("roundtrip = %v", out)
	}
	if len(decodeDeadList(nil)) != 0 {
		t.Fatal("empty list must decode empty")
	}
}
