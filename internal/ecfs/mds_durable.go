package ecfs

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/mdslog"
	"repro/internal/wire"
)

// This file is the MDS's durability layer: the glue between the mutating
// entry points in mds.go and the internal/mdslog op log.
//
// The contract is log-before-ack. Every durable mutator takes the
// mutation gate in shared mode, appends its record while holding the
// lock that owns the mutated state, and only then applies and
// acknowledges — so log order and apply order agree per lock, and a
// crash can lose only mutations no caller was ever told about. Replay
// redoes committed records through the unlogged apply* functions below,
// which are idempotent so a stale log prefix (crash between snapshot
// rename and log truncate) converges to the same state.
//
// Soft state — heartbeat times, the dead set, address freshness stamps,
// the repair scheduler — is never logged and is re-learned after a
// restart; see the snapshot State doc in internal/mdslog.

// OpenDurableMDS opens (or creates) a durable MDS backed by the given
// data directory: load the snapshot if one exists, replay the committed
// op-log tail, and checkpoint the result so the log starts empty. The
// osds/k/m/shards arguments seed a fresh directory; a directory with a
// snapshot must agree on the geometry (the namespace shard choice and
// stripe placement both derive from it) and supplies its own placement
// pool.
func OpenDurableMDS(dir string, osds []wire.NodeID, k, m, shards int, opts mdslog.Options) (*MDS, error) {
	l, st, recs, err := mdslog.Open(dir, opts)
	if err != nil {
		return nil, err
	}
	pool := osds
	if st != nil {
		n := 1
		for n < shards {
			n <<= 1
		}
		if shards < 1 {
			n = 1
		}
		if st.K != k || st.M != m || st.Shards != n {
			l.Close()
			return nil, fmt.Errorf("ecfs: mds data dir %s holds RS(%d,%d)/%d shards, asked for RS(%d,%d)/%d", dir, st.K, st.M, st.Shards, k, m, n)
		}
		pool = st.Pool
	}
	md, err := NewMDSWithShards(pool, k, m, shards)
	if err != nil {
		l.Close()
		return nil, err
	}
	if st != nil {
		md.loadState(st)
	}
	for _, r := range recs {
		md.applyRecord(r)
	}
	// A drain that was running when the process died lost its engine:
	// demote to interrupted-awaiting-resume, the same state an operator
	// cancellation leaves.
	md.drainMu.Lock()
	for id, s := range md.draining {
		if s == drainActive {
			md.draining[id] = drainInterrupted
		}
	}
	md.drainMu.Unlock()
	md.log = l
	// Fold the replayed tail into a fresh snapshot so the next open
	// replays nothing (and a stale prefix from a torn checkpoint is
	// retired).
	if err := md.Checkpoint(); err != nil {
		l.Close()
		return nil, err
	}
	return md, nil
}

// Durable reports whether the MDS is backed by an op log.
func (m *MDS) Durable() bool { return m.log != nil }

// mutateLock/mutateUnlock bracket every durable mutation in the gate's
// shared mode; Checkpoint's exclusive mode stops the world so the
// snapshot matches the log exactly. In-memory MDSes skip the gate
// entirely — the hot path is unchanged.
func (m *MDS) mutateLock() {
	if m.log != nil {
		m.gate.RLock()
	}
}

func (m *MDS) mutateUnlock() {
	if m.log == nil {
		return
	}
	m.gate.RUnlock()
	if m.log.NeedsCompact() {
		m.gate.Lock()
		if m.log.NeedsCompact() {
			m.log.Compact(m.snapshotState()) // failure freezes the log; mutators surface it
		}
		m.gate.Unlock()
	}
}

// logAppend appends one record, returning nil on an in-memory MDS. The
// caller holds the lock owning the mutated state, so log order and
// apply order agree. On error the caller must not apply: the op log
// froze (fail-stop) and memory must not run ahead of disk.
func (m *MDS) logAppend(r mdslog.Record) error {
	if m.log == nil {
		return nil
	}
	return m.log.Append(r)
}

// Checkpoint serializes the namespace and compacts the op log (snapshot
// write + log truncate), holding the mutation gate exclusively. A no-op
// for in-memory MDSes.
func (m *MDS) Checkpoint() error {
	if m.log == nil {
		return nil
	}
	m.gate.Lock()
	defer m.gate.Unlock()
	return m.log.Compact(m.snapshotState())
}

// Crash freezes the op log, simulating kill -9: every later mutation
// fails, Close skips the shutdown checkpoint, and the data directory
// keeps exactly what write(2) saw.
func (m *MDS) Crash() {
	if m.log != nil {
		m.log.Crash()
	}
}

// Close shuts the durable MDS down cleanly: checkpoint (unless crashed)
// and release the log. In-memory MDSes no-op.
func (m *MDS) Close() error {
	if m.log == nil {
		return nil
	}
	var err error
	if !m.log.Crashed() {
		err = m.Checkpoint()
	}
	if cerr := m.log.Close(); err == nil {
		err = cerr
	}
	return err
}

// Log exposes the underlying op log (nil for in-memory MDSes) — test
// and bench access to stats and crash hooks.
func (m *MDS) Log() *mdslog.Log { return m.log }

// AdoptScheduler installs an existing repair scheduler — how an MDS
// restart keeps the cluster-lifetime rebuild ledger and the queues the
// running engines registered: the scheduler is soft state owned by the
// process, not the namespace, so a reopened MDS inherits the live one
// rather than persisting it.
func (m *MDS) AdoptScheduler(s *RepairScheduler) {
	if s == nil {
		return
	}
	m.schedMu.Lock()
	m.sched = s
	m.schedMu.Unlock()
}

// PlacementOf returns a stripe's current placement without binding it
// on a miss — the read-only peek equivalence checks use so comparing
// two MDSes cannot mutate either.
func (m *MDS) PlacementOf(ino uint64, stripe uint32) (wire.StripeLoc, bool) {
	is := m.inoShard(ino)
	is.mu.RLock()
	defer is.mu.RUnlock()
	fm := is.meta[ino]
	if fm == nil {
		return wire.StripeLoc{}, false
	}
	loc, ok := fm.stripes[stripe]
	return loc, ok
}

// snapshotState serializes the durable state, deterministically ordered
// (files by ino, stripes by index, addrs and drains by node). Called
// under the exclusive gate, so no mutation is mid-flight; the per-field
// locks are still taken for the race detector's benefit.
func (m *MDS) snapshotState() *mdslog.State {
	st := &mdslog.State{K: m.k, M: m.m, Shards: len(m.inoShards)}
	m.topoMu.RLock()
	st.Pool = append([]wire.NodeID(nil), m.osds...)
	m.topoMu.RUnlock()

	files := m.Files()
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool { return files[names[i]] < files[names[j]] })
	for _, name := range names {
		ino := files[name]
		fs := mdslog.FileState{Name: name, Ino: ino}
		is := m.inoShard(ino)
		is.mu.RLock()
		if fm := is.meta[ino]; fm != nil {
			for stripe, loc := range fm.stripes {
				fs.Stripes = append(fs.Stripes, mdslog.StripeState{
					Stripe: stripe, Epoch: loc.Epoch,
					Nodes: append([]wire.NodeID(nil), loc.Nodes...),
				})
			}
		}
		is.mu.RUnlock()
		sort.Slice(fs.Stripes, func(i, j int) bool { return fs.Stripes[i].Stripe < fs.Stripes[j].Stripe })
		st.Files = append(st.Files, fs)
	}

	m.liveMu.Lock()
	for id, addr := range m.addrs {
		st.Addrs = append(st.Addrs, mdslog.AddrState{Node: id, Addr: addr})
	}
	m.liveMu.Unlock()
	sort.Slice(st.Addrs, func(i, j int) bool { return st.Addrs[i].Node < st.Addrs[j].Node })

	m.drainMu.Lock()
	for id := range m.draining {
		st.Draining = append(st.Draining, id)
	}
	m.drainMu.Unlock()
	sort.Slice(st.Draining, func(i, j int) bool { return st.Draining[i] < st.Draining[j] })
	return st
}

// loadState installs a decoded snapshot into a freshly built MDS (whose
// pool already came from the snapshot).
func (m *MDS) loadState(st *mdslog.State) {
	now := time.Now()
	for _, f := range st.Files {
		m.applyCreate(f.Name, f.Ino)
		for _, s := range f.Stripes {
			m.applyBind(f.Ino, s.Stripe, wire.StripeLoc{Nodes: s.Nodes, Epoch: s.Epoch})
		}
	}
	m.liveMu.Lock()
	for _, a := range st.Addrs {
		m.addrs[a.Node] = a.Addr
		// Freshness is soft state: stamp load time so a TTL grace
		// window covers the gap until the owner heartbeats again.
		m.addrAt[a.Node] = now
	}
	m.liveMu.Unlock()
	m.drainMu.Lock()
	for _, id := range st.Draining {
		m.draining[id] = drainInterrupted
	}
	m.drainMu.Unlock()
}

// applyRecord redoes one committed op-log record through the unlogged
// apply path. Every case is idempotent: replaying records a snapshot
// already folded in (the stale-prefix crash window) must converge.
func (m *MDS) applyRecord(r mdslog.Record) {
	switch r.Kind {
	case mdslog.KindCreate:
		m.applyCreate(r.Name, r.Ino)
	case mdslog.KindBind:
		m.applyBind(r.Ino, r.Stripe, wire.StripeLoc{Nodes: r.Nodes, Epoch: r.Epoch})
	case mdslog.KindRebind:
		m.applyRebind(r)
	case mdslog.KindAddNode:
		m.topoMu.Lock()
		m.poolInsertLocked(r.Node)
		m.topoMu.Unlock()
		m.nodeIndexFor(r.Node)
	case mdslog.KindRemoveNode:
		// The K+M floor check gated logging, so replay removes
		// unconditionally (a no-op when the snapshot already folded it).
		m.topoMu.Lock()
		m.poolFilterLocked(r.Node)
		m.topoMu.Unlock()
	case mdslog.KindAddr:
		m.liveMu.Lock()
		m.addrs[r.Node] = r.Name
		m.addrAt[r.Node] = time.Now()
		m.liveMu.Unlock()
	case mdslog.KindDrainBegin:
		m.drainMu.Lock()
		m.draining[r.Node] = drainActive // demoted to interrupted after replay
		m.drainMu.Unlock()
		if r.Removed {
			m.topoMu.Lock()
			m.poolFilterLocked(r.Node)
			m.topoMu.Unlock()
		}
	case mdslog.KindDrainInterrupt:
		m.drainMu.Lock()
		if m.draining[r.Node] == drainActive {
			m.draining[r.Node] = drainInterrupted
		}
		m.drainMu.Unlock()
	case mdslog.KindDrainEnd:
		m.drainMu.Lock()
		delete(m.draining, r.Node)
		m.drainMu.Unlock()
		if r.Readmitted {
			m.topoMu.Lock()
			m.poolInsertLocked(r.Node)
			m.topoMu.Unlock()
			m.nodeIndexFor(r.Node)
		}
	case mdslog.KindForget:
		if r.Removed {
			m.topoMu.Lock()
			m.poolFilterLocked(r.Node)
			m.topoMu.Unlock()
		}
		m.drainMu.Lock()
		delete(m.draining, r.Node)
		m.drainMu.Unlock()
		m.forgetSoftState(r.Node)
	}
}

// applyCreate installs a name → ino binding, re-deriving the owning
// shard's allocation counter from the ino so later creates cannot
// collide with replayed ones.
func (m *MDS) applyCreate(name string, ino uint64) {
	ns := m.nameShard(name)
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if _, ok := ns.files[name]; ok {
		return // stale-prefix redo: already folded into the snapshot
	}
	if n := (ino - 1 - ns.idx) / ns.step; n >= ns.next {
		ns.next = n + 1
	}
	m.installFile(ns, name, ino)
}

// applyBind installs a stripe placement exactly as recorded, skipping
// stripes already placed (stale-prefix redo).
func (m *MDS) applyBind(ino uint64, stripe uint32, loc wire.StripeLoc) {
	is := m.inoShard(ino)
	is.mu.Lock()
	defer is.mu.Unlock()
	fm := is.meta[ino]
	if fm == nil {
		return
	}
	if _, ok := fm.stripes[stripe]; ok {
		return
	}
	fm.stripes[stripe] = loc
	for idx, node := range loc.Nodes {
		m.indexBlock(node, ino, stripe, uint8(idx))
	}
}

// applyRebind redoes a recorded rebind. The record's epoch makes redo
// idempotent: a placement already at (or past) it was bound by the
// snapshot or an earlier record.
func (m *MDS) applyRebind(r mdslog.Record) {
	is := m.inoShard(r.Ino)
	is.mu.Lock()
	defer is.mu.Unlock()
	fm := is.meta[r.Ino]
	if fm == nil {
		return
	}
	loc, ok := fm.stripes[r.Stripe]
	if !ok || loc.Epoch >= r.Epoch || int(r.Idx) >= len(loc.Nodes) {
		return
	}
	nodes := append([]wire.NodeID(nil), loc.Nodes...)
	nodes[r.Idx] = r.To
	fm.stripes[r.Stripe] = wire.StripeLoc{Nodes: nodes, Epoch: r.Epoch}
	m.unindexBlock(r.Node, r.Ino, r.Stripe)
	m.indexBlock(r.To, r.Ino, r.Stripe, r.Idx)
}
