package ecfs

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/wire"
)

// buildResumeCluster is buildDrainCluster with a bigger file, so a
// drained node hosts enough stripes that cancelling partway leaves
// meaningful work for the resume.
func buildResumeCluster(t *testing.T, updates int) (*Cluster, *Client, uint64, []byte) {
	t.Helper()
	opts := testOptions("tsue")
	cfg := *opts.Strategy
	cfg.UnitSize = 16 << 20 // no mid-test recycling; the drain quiesces logs up front
	opts.Strategy = &cfg
	c := MustNewCluster(opts)
	cli := c.NewClient()
	fileSize := 256 << 10
	ino, mirror := writeTestFile(t, c, cli, fileSize, 101)
	rng := rand.New(rand.NewSource(103))
	for i := 0; i < updates; i++ {
		off := int64(rng.Intn(fileSize - 256))
		data := make([]byte, 1+rng.Intn(256))
		rng.Read(data)
		if _, err := cli.Update(ino, off, data, 0); err != nil {
			t.Fatal(err)
		}
		copy(mirror[off:], data)
	}
	return c, cli, ino, mirror
}

// poolSnapshot returns the placement pool as a set.
func poolSnapshot(c *Cluster) map[wire.NodeID]bool {
	out := make(map[wire.NodeID]bool)
	for _, id := range c.MDS.Nodes() {
		out[id] = true
	}
	return out
}

// TestDrainCancelResume is the resumable-drain acceptance proof: a
// drain cancelled mid-way (a) returns the completed moves alongside the
// cancellation, (b) keeps the node marked draining and OUT of the
// placement pool — no evicted-then-restored flap — and (c) a second
// DrainWith on the same node completes from the remaining stripes with
// no stripe migrated twice.
func TestDrainCancelResume(t *testing.T) {
	c, cli, ino, mirror := buildResumeCluster(t, 150)
	defer c.Close()

	node := c.OSDs[2].ID()
	before := len(c.MDS.StripesOnSorted(node))
	if before < 6 {
		t.Fatalf("drain target hosts only %d stripes; test needs more", before)
	}
	poolBefore := poolSnapshot(c)

	// Cancel the drain from inside the source's fence handler: the Nth
	// per-stripe cutover fence (KEpochUpdate at the source) pulls the
	// plug, so the cancellation point is deterministic with one worker.
	const cancelAfter = 2
	ctx1, cancel := context.WithCancel(context.Background())
	defer cancel()
	src := c.OSD(node)
	var fences atomic.Int32
	c.Tr.Register(node, func(hctx context.Context, msg *wire.Msg) *wire.Resp {
		if msg.Kind == wire.KEpochUpdate && fences.Add(1) == cancelAfter {
			cancel()
		}
		return src.Handler(hctx, msg)
	})

	res1, err := c.DrainWith(ctx1, node, 1)
	c.Tr.Register(node, src.Handler)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled drain returned %v, want context.Canceled", err)
	}
	if res1 == nil {
		t.Fatal("cancelled drain returned no partial result")
	}
	if res1.Resumed {
		t.Fatal("first drain reported Resumed")
	}
	if len(res1.Moves) == 0 || len(res1.Moves) >= before {
		t.Fatalf("cancelled drain completed %d of %d moves; test needs a partial run", len(res1.Moves), before)
	}
	for _, mv := range res1.Moves {
		if !mv.Done {
			t.Fatalf("partial result contains an incomplete move: %+v", mv)
		}
	}

	// Between cancel and resume: the node must stay marked draining and
	// stay out of the pool, and no other node's membership may change.
	if !c.MDS.Draining(node) {
		t.Fatal("cancelled drain cleared the draining mark")
	}
	poolAfter := poolSnapshot(c)
	if poolAfter[node] {
		t.Fatal("cancelled drain restored the node to the placement pool")
	}
	for id := range poolBefore {
		if id != node && !poolAfter[id] {
			t.Fatalf("node %d vanished from the pool during the cancelled drain", id)
		}
	}
	if len(poolAfter) != len(poolBefore)-1 {
		t.Fatalf("pool size %d after cancel, want %d", len(poolAfter), len(poolBefore)-1)
	}

	remaining := len(c.MDS.StripesOn(node))
	if remaining == 0 || remaining >= before {
		t.Fatalf("%d of %d stripes remaining after cancel; test needs a partial run", remaining, before)
	}
	// Every stripe the MDS no longer places on the node must appear as a
	// completed move: a cancellation arriving after a stripe's rebind
	// must not strand it rebound-but-unfenced — the resume re-seeds from
	// StripesOn, which would never revisit it, so the mandatory
	// fence/refetch would be lost. migrateStripe detaches from the drain
	// context at the rebind to guarantee this.
	if got, want := len(res1.Moves), before-remaining; got != want {
		t.Fatalf("cancelled drain completed %d moves but %d stripes left the node — a stripe was stranded mid-cutover", got, want)
	}

	// Resume. The second run must complete, re-seeded from the
	// remaining stripes only.
	res2, err := c.DrainWith(context.Background(), node, 1)
	if err != nil {
		t.Fatalf("resumed drain: %v", err)
	}
	if !res2.Resumed {
		t.Fatal("second drain did not report Resumed")
	}
	if len(res2.Moves) != remaining {
		t.Fatalf("resumed drain migrated %d stripes, want the %d remaining", len(res2.Moves), remaining)
	}
	// No stripe migrated twice: the two runs' move sets are disjoint.
	seen := make(map[stripeKey]bool, len(res1.Moves))
	for _, mv := range res1.Moves {
		seen[stripeKey{mv.Ino, mv.Stripe}] = true
	}
	for _, mv := range res2.Moves {
		if seen[stripeKey{mv.Ino, mv.Stripe}] {
			t.Fatalf("stripe %d/%d migrated by both runs", mv.Ino, mv.Stripe)
		}
	}

	// Drained for real: nothing left, mark cleared, node still out of
	// the pool (exactly like an uninterrupted drain), content intact.
	if got := len(c.MDS.StripesOn(node)); got != 0 {
		t.Fatalf("%d stripes still on the node after resume", got)
	}
	if c.MDS.Draining(node) {
		t.Fatal("completed resume left the draining mark set")
	}
	if poolSnapshot(c)[node] {
		t.Fatal("completed resume re-admitted the drained node")
	}
	got, _, err := cli.Read(ino, 0, len(mirror))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, mirror) {
		t.Fatal("post-resume read mismatch")
	}
	if err := c.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyStripes(ino, mirror); err != nil {
		t.Fatal(err)
	}
}

// TestAbortDrainRestoresPool: an operator who cancels a drain and then
// abandons it gets the node back in the placement pool with the
// draining mark cleared.
func TestAbortDrainRestoresPool(t *testing.T) {
	c, _, _, _ := buildResumeCluster(t, 50)
	defer c.Close()
	node := c.OSDs[2].ID()

	ctx1, cancel := context.WithCancel(context.Background())
	defer cancel()
	src := c.OSD(node)
	var fences atomic.Int32
	c.Tr.Register(node, func(hctx context.Context, msg *wire.Msg) *wire.Resp {
		if msg.Kind == wire.KEpochUpdate && fences.Add(1) == 1 {
			cancel()
		}
		return src.Handler(hctx, msg)
	})
	if _, err := c.DrainWith(ctx1, node, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled drain returned %v", err)
	}
	c.Tr.Register(node, src.Handler)

	if !c.AbortDrain(node) {
		t.Fatal("AbortDrain refused an interrupted drain")
	}
	if c.MDS.Draining(node) {
		t.Fatal("AbortDrain left the draining mark")
	}
	if !poolSnapshot(c)[node] {
		t.Fatal("AbortDrain did not re-admit the node to the pool")
	}
}

// TestBeginDrainRejectsRunning pins the drain state machine: a node
// whose drain is actively running rejects a second BeginDrain (two
// engines migrating the same stripes would race their
// rebind/fence/refetch sequences); only an *interrupted* drain is
// resumable, and resuming puts it back in the running state.
func TestBeginDrainRejectsRunning(t *testing.T) {
	m, err := NewMDS([]wire.NodeID{1, 2, 3, 4, 5, 6, 7}, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := m.BeginDrain(7)
	if err != nil || resumed {
		t.Fatalf("fresh BeginDrain = (resumed=%v, err=%v), want (false, nil)", resumed, err)
	}
	for _, id := range m.Nodes() {
		if id == 7 {
			t.Fatal("BeginDrain left the node in the placement pool")
		}
	}
	if _, err := m.BeginDrain(7); err == nil {
		t.Fatal("BeginDrain on a running drain must be rejected")
	}
	if m.AbortDrain(7) {
		t.Fatal("AbortDrain on a running drain must be refused")
	}
	if !m.Draining(7) {
		t.Fatal("refused AbortDrain cleared the running drain's mark")
	}

	m.InterruptDrain(7)
	if !m.Draining(7) {
		t.Fatal("interrupted drain lost its draining mark")
	}
	resumed, err = m.BeginDrain(7)
	if err != nil || !resumed {
		t.Fatalf("resuming BeginDrain = (resumed=%v, err=%v), want (true, nil)", resumed, err)
	}
	for _, id := range m.Nodes() {
		if id == 7 {
			t.Fatal("resume re-admitted the node to the placement pool")
		}
	}
	if _, err := m.BeginDrain(7); err == nil {
		t.Fatal("a resumed (running again) drain must reject a concurrent BeginDrain")
	}

	m.FinishDrain(7)
	if m.Draining(7) {
		t.Fatal("FinishDrain left the draining mark")
	}
	// InterruptDrain on a node with no drain must not invent one.
	m.InterruptDrain(7)
	if m.Draining(7) {
		t.Fatal("InterruptDrain marked a node with no drain")
	}
}

// TestAbandonedDrainSkipsDeadNode: a node that dies mid-drain must not
// re-enter the placement pool when its drain is abandoned — placement
// never selects dead nodes, and the drain's eviction must not become
// the loophole.
func TestAbandonedDrainSkipsDeadNode(t *testing.T) {
	m, err := NewMDS([]wire.NodeID{1, 2, 3, 4, 5, 6, 7}, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.BeginDrain(7); err != nil {
		t.Fatal(err)
	}
	m.InterruptDrain(7)
	m.MarkDead(7) // the node fails between the Ctrl-C and the abort
	if !m.AbortDrain(7) {
		t.Fatal("AbortDrain refused an interrupted drain")
	}
	if m.Draining(7) {
		t.Fatal("AbortDrain left the draining mark")
	}
	for _, id := range m.Nodes() {
		if id == 7 {
			t.Fatal("AbortDrain re-admitted a dead node to the placement pool")
		}
	}
	// Once the node is actually back, explicit re-admission works.
	m.Heartbeat(7, time.Now())
	m.AddNode(7)
	found := false
	for _, id := range m.Nodes() {
		if id == 7 {
			found = true
		}
	}
	if !found {
		t.Fatal("recovered node could not rejoin the pool")
	}
}

// TestConcurrentDrainRejected drives the same guarantee end to end: a
// second DrainWith on a node whose drain is still executing fails
// instead of racing the first engine over the same stripes.
func TestConcurrentDrainRejected(t *testing.T) {
	c, _, _, _ := buildResumeCluster(t, 20)
	defer c.Close()
	node := c.OSDs[2].ID()
	src := c.OSD(node)

	gate := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	c.Tr.Register(node, func(hctx context.Context, msg *wire.Msg) *wire.Resp {
		if msg.Kind == wire.KBlockFetch {
			once.Do(func() { close(entered) })
			<-gate
		}
		return src.Handler(hctx, msg)
	})

	done := make(chan error, 1)
	go func() {
		_, err := c.DrainWith(context.Background(), node, 1)
		done <- err
	}()
	<-entered // the first drain is past BeginDrain, copying its first stripe

	if _, err := c.DrainWith(context.Background(), node, 1); err == nil {
		t.Fatal("second DrainWith on a running drain must be rejected")
	}
	if c.AbortDrain(node) {
		t.Fatal("AbortDrain on a running drain must be refused")
	}
	if poolSnapshot(c)[node] {
		t.Fatal("refused AbortDrain re-admitted the draining node to the pool")
	}

	close(gate)
	err := <-done
	c.Tr.Register(node, src.Handler)
	if err != nil {
		t.Fatalf("first drain failed after the rejected concurrent attempt: %v", err)
	}
	if got := len(c.MDS.StripesOn(node)); got != 0 {
		t.Fatalf("%d stripes still on the drained node", got)
	}
	if c.MDS.Draining(node) {
		t.Fatal("completed drain left the draining mark")
	}
}

// TestDrainStrandedCutoverHardAborts pins the post-rebind failure
// contract: a fence that fails after the stripe's rebind strands the
// cutover, which must surface as ErrStrandedCutover alongside the
// partial result and hard-abort the drain (pool restored, mark
// cleared) — never classify as a resumable cancel, even when the
// operator cancels at the same moment, because the resume's StripesOn
// re-seed could not revisit the stranded stripe.
func TestDrainStrandedCutoverHardAborts(t *testing.T) {
	c, _, _, _ := buildResumeCluster(t, 20)
	defer c.Close()
	node := c.OSDs[2].ID()
	before := len(c.MDS.StripesOnSorted(node))
	src := c.OSD(node)

	// The second fence fails; the operator's ctx is cancelled at the
	// same instant — the racing-cancel variant of the hazard.
	ctx1, cancel := context.WithCancel(context.Background())
	defer cancel()
	var fences atomic.Int32
	c.Tr.Register(node, func(hctx context.Context, msg *wire.Msg) *wire.Resp {
		if msg.Kind == wire.KEpochUpdate && fences.Add(1) == 2 {
			cancel()
			return &wire.Resp{Err: "injected fence failure"}
		}
		return src.Handler(hctx, msg)
	})

	res, err := c.DrainWith(ctx1, node, 1)
	c.Tr.Register(node, src.Handler)
	if !errors.Is(err, ErrStrandedCutover) {
		t.Fatalf("post-rebind fence failure returned %v, want ErrStrandedCutover", err)
	}
	if res == nil {
		t.Fatal("stranded cutover returned no partial result")
	}
	for _, mv := range res.Moves {
		if !mv.Done {
			t.Fatalf("partial result contains an incomplete move: %+v", mv)
		}
	}
	// Hard abort, not an interrupted resume: mark cleared, node back in
	// the pool with its unmigrated stripes.
	if c.MDS.Draining(node) {
		t.Fatal("stranded cutover left the drain resumable")
	}
	if !poolSnapshot(c)[node] {
		t.Fatal("stranded cutover did not restore pool membership")
	}
	if rest := len(c.MDS.StripesOn(node)); rest == 0 || rest >= before {
		t.Fatalf("%d of %d stripes on the node after the stranded abort; expected a partial drain", rest, before)
	}
}

// TestSchedulerLedgerSurvivesRebase pins the monotonic lifetime
// ledger: a per-run cap's RebaseBudget zeroes the budget-relative
// ledger, but another in-flight run's spent-byte deltas come from
// TotalSpentBytes, which never rebases — so its capFloor clamp cannot
// collapse to zero and report bandwidth above the cap.
func TestSchedulerLedgerSurvivesRebase(t *testing.T) {
	s := NewRepairScheduler(nil, 1.0)
	base := s.TotalSpentBytes() // run A snapshots its base
	s.charge(100_000)
	s.RebaseBudget() // run B starts with a per-run cap mid-flight
	s.charge(50_000)
	if d := s.TotalSpentBytes() - base; d != 150_000 {
		t.Fatalf("lifetime delta = %d across a rebase, want 150000", d)
	}
	if got := s.SpentBytes(); got != 50_000 {
		t.Fatalf("budget-relative SpentBytes = %d after rebase, want 50000", got)
	}
	if f := s.capFloor(1.0, s.TotalSpentBytes()-base); f != 150*time.Millisecond {
		t.Fatalf("capFloor over the lifetime delta = %v, want 150ms", f)
	}
}

// TestDrainHonorsRebuildCap drives the scheduler's acceptance
// criterion under the race detector: with a cluster rebuild cap set
// and foreground readers hammering the cluster throughout, the drain
// completes, no client operation fails, and the measured rebuild
// bandwidth lands at or under the cap.
func TestDrainHonorsRebuildCap(t *testing.T) {
	c, _, ino, mirror := buildResumeCluster(t, 100)
	defer c.Close()
	const capMBps = 0.05 // far below the uncapped copy rate, so the cap must bite
	c.SetRebuildCap(capMBps)

	node := c.OSDs[2].ID()
	var (
		wg     sync.WaitGroup
		stop   = make(chan struct{})
		opErrs = make(chan error, 4)
	)
	region := len(mirror) / 4
	quiet := mirror[3*region:]
	for r := 0; r < 2; r++ {
		rcli := c.NewClient()
		wg.Add(1)
		go func(r int, rcli *Client) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(400 + r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				off := rng.Intn(region - 128)
				n := 1 + rng.Intn(128)
				got, _, err := rcli.Read(ino, int64(3*region+off), n)
				if err != nil {
					opErrs <- err
					return
				}
				if !bytes.Equal(got, quiet[off:off+n]) {
					opErrs <- errReadMismatch{off: int64(off), n: n}
					return
				}
			}
		}(r, rcli)
	}

	trafficBefore := c.Net.TrafficByClass(sim.ClassDrain)
	res, err := c.Drain(context.Background(), node)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	select {
	case cerr := <-opErrs:
		t.Fatalf("client operation failed during capped drain: %v", cerr)
	default:
	}

	if res.Bytes == 0 {
		t.Fatal("capped drain moved no bytes; the cap check is vacuous")
	}
	if capBps := capMBps * 1e6; res.Bandwidth > capBps*1.001 {
		t.Fatalf("measured rebuild bandwidth %.0f B/s exceeds the %.0f B/s cap", res.Bandwidth, capBps)
	}
	// The cap bounds *priced* bytes: everything the drain put on the
	// wire (fetches, stores, fences — tagged sim.ClassDrain), not just
	// the payload, stays under cap x makespan.
	priced := c.Net.TrafficByClass(sim.ClassDrain) - trafficBefore
	if pricedBW := float64(priced) / res.VirtualTime.Seconds(); pricedBW > capMBps*1e6*1.001 {
		t.Fatalf("priced drain traffic %.0f B/s exceeds the cap", pricedBW)
	}
	if spent := c.Scheduler().SpentBytes(); spent < res.Bytes {
		t.Fatalf("scheduler charged %d bytes for a drain that moved %d", spent, res.Bytes)
	}
	if got := len(c.MDS.StripesOn(node)); got != 0 {
		t.Fatalf("%d stripes still on the drained node", got)
	}
}

// TestMigrateNodePerRunCap: RepairOptions.MaxRebuildMBps caps a single
// run on an otherwise uncapped cluster.
func TestMigrateNodePerRunCap(t *testing.T) {
	c, _, ino, mirror := buildResumeCluster(t, 50)
	defer c.Close()
	node := c.OSDs[1].ID()
	const capMBps = 0.1
	res, err := MigrateNode(context.Background(), c.MDS, c.Tr.Caller(wire.MDSNode), RepairOptions{
		K: c.Opts.K, M: c.Opts.M, Workers: 2,
		Resources:      c.Resources(),
		Flush:          c.Flush,
		MaxRebuildMBps: capMBps,
	}, node)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes == 0 {
		t.Fatal("nothing migrated")
	}
	if capBps := capMBps * 1e6; res.Bandwidth > capBps*1.001 {
		t.Fatalf("per-run capped bandwidth %.0f B/s exceeds the %.0f B/s cap", res.Bandwidth, capBps)
	}
	if err := c.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyStripes(ino, mirror); err != nil {
		t.Fatal(err)
	}
}

// TestSchedulerRoutesHintsAcrossQueues pins the concurrent-victims fix:
// with two queues registered (two simultaneous repairs), a promotion
// finds its stripe in whichever queue holds it, and FIFO-baseline
// queues are skipped.
func TestSchedulerRoutesHintsAcrossQueues(t *testing.T) {
	s := NewRepairScheduler(nil, 0)
	q1 := newRepairQueue([]StripeRef{{Ino: 1, Stripe: 0}, {Ino: 1, Stripe: 1}})
	q2 := newRepairQueue([]StripeRef{{Ino: 2, Stripe: 0}, {Ino: 2, Stripe: 1}})
	s.register(q1)
	s.register(q2)
	defer s.unregister(q1)
	defer s.unregister(q2)

	if s.Pending() != 4 {
		t.Fatalf("Pending = %d, want 4 across both queues", s.Pending())
	}
	if !s.Promote(2, 1) {
		t.Fatal("promotion did not reach the second queue")
	}
	if q2.promotions() != 1 || q1.promotions() != 0 {
		t.Fatalf("promotions landed on the wrong queue: q1=%d q2=%d", q1.promotions(), q2.promotions())
	}
	if s.Promote(3, 0) {
		t.Fatal("promoting an unknown stripe must fail")
	}

	// A FIFO-baseline queue is invisible to hints.
	q2.noPromote = true
	if s.Promote(2, 0) {
		t.Fatal("promotion reached a NoPromote queue")
	}
}

// TestSchedulerThrottleAccounting pins the token bucket's virtual
// clock: on an idle cluster (no foreground traffic) a capped scheduler
// self-advances, accruing throttle time of about spent/rate, and a
// cancelled context aborts a throttled admission.
func TestSchedulerThrottleAccounting(t *testing.T) {
	const mbps = 1.0
	s := NewRepairScheduler(nil, mbps)
	q := newRepairQueue([]StripeRef{{Ino: 1, Stripe: 0}})
	s.register(q)
	defer s.unregister(q)

	ctx := context.Background()
	if err := s.admit(ctx, q, 0); err != nil {
		t.Fatal(err) // first admission rides the zero debt
	}
	s.charge(500_000) // half a virtual second of budget at 1 MB/s
	if err := s.admit(ctx, q, 0); err != nil {
		t.Fatal(err)
	}
	th := s.Throttled()
	if want := 500 * time.Millisecond; th < want || th > want+50*time.Millisecond {
		t.Fatalf("throttled %v after spending 0.5s of budget, want ~%v", th, want)
	}
	if s.SpentBytes() != 500_000 {
		t.Fatalf("SpentBytes = %d", s.SpentBytes())
	}

	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.admit(cctx, q, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("admit under a cancelled ctx returned %v", err)
	}

	// capFloor converts a run's bytes into the cap-imposed makespan.
	if f := s.capFloor(0, 2_000_000); f != 2*time.Second {
		t.Fatalf("capFloor = %v, want 2s", f)
	}
	if f := s.capFloor(2.0, 2_000_000); f != time.Second {
		t.Fatalf("per-run capFloor = %v, want 1s", f)
	}
}

// TestSchedulerQueueWeight pins the fairness ranking input: queue depth
// plus a boost per promotion.
func TestSchedulerQueueWeight(t *testing.T) {
	q := newRepairQueue([]StripeRef{{Ino: 1, Stripe: 0}, {Ino: 1, Stripe: 1}, {Ino: 1, Stripe: 2}})
	if w := weight(q); w != 3 {
		t.Fatalf("weight = %d, want 3", w)
	}
	q.promote(1, 2)
	if w := weight(q); w != 3+promotionWeight {
		t.Fatalf("weight after promotion = %d, want %d", w, 3+promotionWeight)
	}
}
