package ecfs

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/wire"
)

// buildResumeCluster is buildDrainCluster with a bigger file, so a
// drained node hosts enough stripes that cancelling partway leaves
// meaningful work for the resume.
func buildResumeCluster(t *testing.T, updates int) (*Cluster, *Client, uint64, []byte) {
	t.Helper()
	opts := testOptions("tsue")
	cfg := *opts.Strategy
	cfg.UnitSize = 16 << 20 // no mid-test recycling; the drain quiesces logs up front
	opts.Strategy = &cfg
	c := MustNewCluster(opts)
	cli := c.NewClient()
	fileSize := 256 << 10
	ino, mirror := writeTestFile(t, c, cli, fileSize, 101)
	rng := rand.New(rand.NewSource(103))
	for i := 0; i < updates; i++ {
		off := int64(rng.Intn(fileSize - 256))
		data := make([]byte, 1+rng.Intn(256))
		rng.Read(data)
		if _, err := cli.Update(ino, off, data, 0); err != nil {
			t.Fatal(err)
		}
		copy(mirror[off:], data)
	}
	return c, cli, ino, mirror
}

// poolSnapshot returns the placement pool as a set.
func poolSnapshot(c *Cluster) map[wire.NodeID]bool {
	out := make(map[wire.NodeID]bool)
	for _, id := range c.MDS.Nodes() {
		out[id] = true
	}
	return out
}

// TestDrainCancelResume is the resumable-drain acceptance proof: a
// drain cancelled mid-way (a) returns the completed moves alongside the
// cancellation, (b) keeps the node marked draining and OUT of the
// placement pool — no evicted-then-restored flap — and (c) a second
// DrainWith on the same node completes from the remaining stripes with
// no stripe migrated twice.
func TestDrainCancelResume(t *testing.T) {
	c, cli, ino, mirror := buildResumeCluster(t, 150)
	defer c.Close()

	node := c.OSDs[2].ID()
	before := len(c.MDS.StripesOnSorted(node))
	if before < 6 {
		t.Fatalf("drain target hosts only %d stripes; test needs more", before)
	}
	poolBefore := poolSnapshot(c)

	// Cancel the drain from inside the source's fence handler: the Nth
	// per-stripe cutover fence (KEpochUpdate at the source) pulls the
	// plug, so the cancellation point is deterministic with one worker.
	const cancelAfter = 2
	ctx1, cancel := context.WithCancel(context.Background())
	defer cancel()
	src := c.OSD(node)
	var fences atomic.Int32
	c.Tr.Register(node, func(hctx context.Context, msg *wire.Msg) *wire.Resp {
		if msg.Kind == wire.KEpochUpdate && fences.Add(1) == cancelAfter {
			cancel()
		}
		return src.Handler(hctx, msg)
	})

	res1, err := c.DrainWith(ctx1, node, 1)
	c.Tr.Register(node, src.Handler)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled drain returned %v, want context.Canceled", err)
	}
	if res1 == nil {
		t.Fatal("cancelled drain returned no partial result")
	}
	if res1.Resumed {
		t.Fatal("first drain reported Resumed")
	}
	if len(res1.Moves) == 0 || len(res1.Moves) >= before {
		t.Fatalf("cancelled drain completed %d of %d moves; test needs a partial run", len(res1.Moves), before)
	}
	for _, mv := range res1.Moves {
		if !mv.Done {
			t.Fatalf("partial result contains an incomplete move: %+v", mv)
		}
	}

	// Between cancel and resume: the node must stay marked draining and
	// stay out of the pool, and no other node's membership may change.
	if !c.MDS.Draining(node) {
		t.Fatal("cancelled drain cleared the draining mark")
	}
	poolAfter := poolSnapshot(c)
	if poolAfter[node] {
		t.Fatal("cancelled drain restored the node to the placement pool")
	}
	for id := range poolBefore {
		if id != node && !poolAfter[id] {
			t.Fatalf("node %d vanished from the pool during the cancelled drain", id)
		}
	}
	if len(poolAfter) != len(poolBefore)-1 {
		t.Fatalf("pool size %d after cancel, want %d", len(poolAfter), len(poolBefore)-1)
	}

	remaining := len(c.MDS.StripesOn(node))
	if remaining == 0 || remaining >= before {
		t.Fatalf("%d of %d stripes remaining after cancel; test needs a partial run", remaining, before)
	}

	// Resume. The second run must complete, re-seeded from the
	// remaining stripes only.
	res2, err := c.DrainWith(context.Background(), node, 1)
	if err != nil {
		t.Fatalf("resumed drain: %v", err)
	}
	if !res2.Resumed {
		t.Fatal("second drain did not report Resumed")
	}
	if len(res2.Moves) != remaining {
		t.Fatalf("resumed drain migrated %d stripes, want the %d remaining", len(res2.Moves), remaining)
	}
	// No stripe migrated twice: the two runs' move sets are disjoint.
	seen := make(map[stripeKey]bool, len(res1.Moves))
	for _, mv := range res1.Moves {
		seen[stripeKey{mv.Ino, mv.Stripe}] = true
	}
	for _, mv := range res2.Moves {
		if seen[stripeKey{mv.Ino, mv.Stripe}] {
			t.Fatalf("stripe %d/%d migrated by both runs", mv.Ino, mv.Stripe)
		}
	}

	// Drained for real: nothing left, mark cleared, node still out of
	// the pool (exactly like an uninterrupted drain), content intact.
	if got := len(c.MDS.StripesOn(node)); got != 0 {
		t.Fatalf("%d stripes still on the node after resume", got)
	}
	if c.MDS.Draining(node) {
		t.Fatal("completed resume left the draining mark set")
	}
	if poolSnapshot(c)[node] {
		t.Fatal("completed resume re-admitted the drained node")
	}
	got, _, err := cli.Read(ino, 0, len(mirror))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, mirror) {
		t.Fatal("post-resume read mismatch")
	}
	if err := c.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyStripes(ino, mirror); err != nil {
		t.Fatal(err)
	}
}

// TestAbortDrainRestoresPool: an operator who cancels a drain and then
// abandons it gets the node back in the placement pool with the
// draining mark cleared.
func TestAbortDrainRestoresPool(t *testing.T) {
	c, _, _, _ := buildResumeCluster(t, 50)
	defer c.Close()
	node := c.OSDs[2].ID()

	ctx1, cancel := context.WithCancel(context.Background())
	defer cancel()
	src := c.OSD(node)
	var fences atomic.Int32
	c.Tr.Register(node, func(hctx context.Context, msg *wire.Msg) *wire.Resp {
		if msg.Kind == wire.KEpochUpdate && fences.Add(1) == 1 {
			cancel()
		}
		return src.Handler(hctx, msg)
	})
	if _, err := c.DrainWith(ctx1, node, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled drain returned %v", err)
	}
	c.Tr.Register(node, src.Handler)

	c.AbortDrain(node)
	if c.MDS.Draining(node) {
		t.Fatal("AbortDrain left the draining mark")
	}
	if !poolSnapshot(c)[node] {
		t.Fatal("AbortDrain did not re-admit the node to the pool")
	}
}

// TestDrainHonorsRebuildCap drives the scheduler's acceptance
// criterion under the race detector: with a cluster rebuild cap set
// and foreground readers hammering the cluster throughout, the drain
// completes, no client operation fails, and the measured rebuild
// bandwidth lands at or under the cap.
func TestDrainHonorsRebuildCap(t *testing.T) {
	c, _, ino, mirror := buildResumeCluster(t, 100)
	defer c.Close()
	const capMBps = 0.05 // far below the uncapped copy rate, so the cap must bite
	c.SetRebuildCap(capMBps)

	node := c.OSDs[2].ID()
	var (
		wg     sync.WaitGroup
		stop   = make(chan struct{})
		opErrs = make(chan error, 4)
	)
	region := len(mirror) / 4
	quiet := mirror[3*region:]
	for r := 0; r < 2; r++ {
		rcli := c.NewClient()
		wg.Add(1)
		go func(r int, rcli *Client) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(400 + r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				off := rng.Intn(region - 128)
				n := 1 + rng.Intn(128)
				got, _, err := rcli.Read(ino, int64(3*region+off), n)
				if err != nil {
					opErrs <- err
					return
				}
				if !bytes.Equal(got, quiet[off:off+n]) {
					opErrs <- errReadMismatch{off: int64(off), n: n}
					return
				}
			}
		}(r, rcli)
	}

	trafficBefore := c.Net.TrafficByClass(sim.ClassDrain)
	res, err := c.Drain(context.Background(), node)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	select {
	case cerr := <-opErrs:
		t.Fatalf("client operation failed during capped drain: %v", cerr)
	default:
	}

	if res.Bytes == 0 {
		t.Fatal("capped drain moved no bytes; the cap check is vacuous")
	}
	if capBps := capMBps * 1e6; res.Bandwidth > capBps*1.001 {
		t.Fatalf("measured rebuild bandwidth %.0f B/s exceeds the %.0f B/s cap", res.Bandwidth, capBps)
	}
	// The cap bounds *priced* bytes: everything the drain put on the
	// wire (fetches, stores, fences — tagged sim.ClassDrain), not just
	// the payload, stays under cap x makespan.
	priced := c.Net.TrafficByClass(sim.ClassDrain) - trafficBefore
	if pricedBW := float64(priced) / res.VirtualTime.Seconds(); pricedBW > capMBps*1e6*1.001 {
		t.Fatalf("priced drain traffic %.0f B/s exceeds the cap", pricedBW)
	}
	if spent := c.Scheduler().SpentBytes(); spent < res.Bytes {
		t.Fatalf("scheduler charged %d bytes for a drain that moved %d", spent, res.Bytes)
	}
	if got := len(c.MDS.StripesOn(node)); got != 0 {
		t.Fatalf("%d stripes still on the drained node", got)
	}
}

// TestMigrateNodePerRunCap: RepairOptions.MaxRebuildMBps caps a single
// run on an otherwise uncapped cluster.
func TestMigrateNodePerRunCap(t *testing.T) {
	c, _, ino, mirror := buildResumeCluster(t, 50)
	defer c.Close()
	node := c.OSDs[1].ID()
	const capMBps = 0.1
	res, err := MigrateNode(context.Background(), c.MDS, c.Tr.Caller(wire.MDSNode), RepairOptions{
		K: c.Opts.K, M: c.Opts.M, Workers: 2,
		Resources:      c.Resources(),
		Flush:          c.Flush,
		MaxRebuildMBps: capMBps,
	}, node)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes == 0 {
		t.Fatal("nothing migrated")
	}
	if capBps := capMBps * 1e6; res.Bandwidth > capBps*1.001 {
		t.Fatalf("per-run capped bandwidth %.0f B/s exceeds the %.0f B/s cap", res.Bandwidth, capBps)
	}
	if err := c.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyStripes(ino, mirror); err != nil {
		t.Fatal(err)
	}
}

// TestSchedulerRoutesHintsAcrossQueues pins the concurrent-victims fix:
// with two queues registered (two simultaneous repairs), a promotion
// finds its stripe in whichever queue holds it, and FIFO-baseline
// queues are skipped.
func TestSchedulerRoutesHintsAcrossQueues(t *testing.T) {
	s := NewRepairScheduler(nil, 0)
	q1 := newRepairQueue([]StripeRef{{Ino: 1, Stripe: 0}, {Ino: 1, Stripe: 1}})
	q2 := newRepairQueue([]StripeRef{{Ino: 2, Stripe: 0}, {Ino: 2, Stripe: 1}})
	s.register(q1)
	s.register(q2)
	defer s.unregister(q1)
	defer s.unregister(q2)

	if s.Pending() != 4 {
		t.Fatalf("Pending = %d, want 4 across both queues", s.Pending())
	}
	if !s.Promote(2, 1) {
		t.Fatal("promotion did not reach the second queue")
	}
	if q2.promotions() != 1 || q1.promotions() != 0 {
		t.Fatalf("promotions landed on the wrong queue: q1=%d q2=%d", q1.promotions(), q2.promotions())
	}
	if s.Promote(3, 0) {
		t.Fatal("promoting an unknown stripe must fail")
	}

	// A FIFO-baseline queue is invisible to hints.
	q2.noPromote = true
	if s.Promote(2, 0) {
		t.Fatal("promotion reached a NoPromote queue")
	}
}

// TestSchedulerThrottleAccounting pins the token bucket's virtual
// clock: on an idle cluster (no foreground traffic) a capped scheduler
// self-advances, accruing throttle time of about spent/rate, and a
// cancelled context aborts a throttled admission.
func TestSchedulerThrottleAccounting(t *testing.T) {
	const mbps = 1.0
	s := NewRepairScheduler(nil, mbps)
	q := newRepairQueue([]StripeRef{{Ino: 1, Stripe: 0}})
	s.register(q)
	defer s.unregister(q)

	ctx := context.Background()
	if err := s.admit(ctx, q, 0); err != nil {
		t.Fatal(err) // first admission rides the zero debt
	}
	s.charge(500_000) // half a virtual second of budget at 1 MB/s
	if err := s.admit(ctx, q, 0); err != nil {
		t.Fatal(err)
	}
	th := s.Throttled()
	if want := 500 * time.Millisecond; th < want || th > want+50*time.Millisecond {
		t.Fatalf("throttled %v after spending 0.5s of budget, want ~%v", th, want)
	}
	if s.SpentBytes() != 500_000 {
		t.Fatalf("SpentBytes = %d", s.SpentBytes())
	}

	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.admit(cctx, q, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("admit under a cancelled ctx returned %v", err)
	}

	// capFloor converts a run's bytes into the cap-imposed makespan.
	if f := s.capFloor(0, 2_000_000); f != 2*time.Second {
		t.Fatalf("capFloor = %v, want 2s", f)
	}
	if f := s.capFloor(2.0, 2_000_000); f != time.Second {
		t.Fatalf("per-run capFloor = %v, want 1s", f)
	}
}

// TestSchedulerQueueWeight pins the fairness ranking input: queue depth
// plus a boost per promotion.
func TestSchedulerQueueWeight(t *testing.T) {
	q := newRepairQueue([]StripeRef{{Ino: 1, Stripe: 0}, {Ino: 1, Stripe: 1}, {Ino: 1, Stripe: 2}})
	if w := weight(q); w != 3 {
		t.Fatalf("weight = %d, want 3", w)
	}
	q.promote(1, 2)
	if w := weight(q); w != 3+promotionWeight {
		t.Fatalf("weight after promotion = %d, want %d", w, 3+promotionWeight)
	}
}
