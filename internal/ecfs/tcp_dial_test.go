package ecfs

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/transport"
	"repro/internal/wire"
)

// TestDialSelfDiscovery is the v2 acceptance test for the dialable
// transport: a client built from nothing but the MDS address completes
// create/write/update/read against a real TCP cluster, survives an OSD
// restart on a fresh port, and keeps working through a fresh-id
// recovery — with zero SetAddr calls anywhere on the client. Address
// re-discovery runs entirely over wire.KResolveAddr, fed by the listen
// addresses OSDs report in their heartbeats.
func TestDialSelfDiscovery(t *testing.T) {
	const (
		k, m      = 2, 1
		nOSDs     = 4
		blockSize = 8 << 10
	)
	ctx := context.Background()
	h := newTCPHarness(t, k, m, nOSDs, blockSize)

	// Dial knows only the MDS address; geometry, block size and the node
	// address map are discovered.
	rc, err := Dial(ctx, h.addrs[wire.MDSNode])
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if gk, gm := rc.Geometry(); gk != k || gm != m {
		t.Fatalf("discovered geometry RS(%d,%d), want RS(%d,%d)", gk, gm, k, m)
	}
	if span := rc.StripeSpan(); span != k*blockSize {
		t.Fatalf("discovered stripe span %d, want %d", span, k*blockSize)
	}

	// Create / write / update / read through the handle surface.
	f, err := rc.CreateFile(ctx, "dial-vol")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	mirror := make([]byte, 2*rc.StripeSpan())
	rand.New(rand.NewSource(21)).Read(mirror)
	if _, err := f.WriteAt(mirror, 0); err != nil {
		t.Fatal(err)
	}
	payload := []byte("dialed two-stage update")
	if _, err := f.UpdateAt(ctx, 300, payload, 0); err != nil {
		t.Fatal(err)
	}
	copy(mirror[300:], payload)
	got := make([]byte, len(mirror))
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, mirror) {
		t.Fatal("dialed read-back mismatch")
	}
	if n, err := f.Stripes(ctx); err != nil || n != 2 {
		t.Fatalf("stripes = %d, %v; want 2", n, err)
	}

	// Restart the holder of stripe 0's first data block on a FRESH port.
	// The dialed client's pool still caches the old (now dead) address;
	// its next read must re-resolve through the MDS — no SetAddr.
	loc0, err := h.mds.Lookup(f.Ino(), 0)
	if err != nil {
		t.Fatal(err)
	}
	moved := loc0.Nodes[0]
	osd := h.osds[moved]
	h.srvs[moved].Close()
	srv2, err := transport.ServeTCP(moved, "127.0.0.1:0", osd.Handler)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv2.Close() })
	if srv2.Addr() == h.addrs[moved] {
		t.Fatalf("restart reused the old port %s; test needs a fresh one", srv2.Addr())
	}
	h.srvs[moved] = srv2
	h.addrs[moved] = srv2.Addr()
	osd.SetListenAddr(srv2.Addr())
	if err := osd.Heartbeat(ctx); err != nil {
		t.Fatal(err)
	}

	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatalf("read after OSD restart on fresh port: %v", err)
	}
	if !bytes.Equal(got, mirror) {
		t.Fatal("read-back mismatch after restart")
	}
	if st := rc.Stats(); st.DegradedReads != 0 {
		t.Fatalf("restart read degraded %d times; want address re-discovery on the normal path", st.DegradedReads)
	}

	// Fresh-id recovery over TCP: a victim dies for good, a replacement
	// joins under a NEW node id (announcing itself via heartbeat), and
	// the repair engine rebinds the victim's stripes onto it under
	// bumped epochs. The dialed client has never heard of the new id;
	// its pool must discover the address via wire.KResolveAddr.
	victim := loc0.Nodes[1]
	h.fail(victim)
	down := map[wire.NodeID]bool{victim: true}
	freshID := wire.NodeID(nOSDs + 9)
	repl := h.addOSD(freshID)
	h.mds.AddNode(freshID)

	caller := h.newRPC()
	res, err := RepairNode(ctx, h.mds, caller, h.code, RepairOptions{
		K: k, M: m, Workers: 2, DataLogReplicas: 1,
		Down:  down,
		Flush: h.flushOver(caller, down),
	}, victim, repl)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rebound == 0 {
		t.Fatalf("fresh-id recovery rebound nothing: %+v", res)
	}

	// More traffic through the dialed client: updates and reads land on
	// the replacement (stale epochs re-resolve placement; the unknown
	// node id re-resolves its address). Still zero SetAddr calls.
	rng := rand.New(rand.NewSource(22))
	for i := 0; i < 30; i++ {
		off := int64(rng.Intn(len(mirror) - 64))
		data := make([]byte, 1+rng.Intn(64))
		rng.Read(data)
		if _, err := f.UpdateAt(ctx, off, data, 0); err != nil {
			t.Fatalf("update after fresh-id recovery: %v", err)
		}
		copy(mirror[off:], data)
	}
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, mirror) {
		t.Fatal("read-back mismatch after fresh-id recovery")
	}
}

// TestDialReportsMissingGeometry ensures Dial fails with a descriptive
// error against an MDS that never configured its block size, instead of
// building a client with a zero-size stripe.
func TestDialReportsMissingGeometry(t *testing.T) {
	ids := []wire.NodeID{1, 2, 3}
	mds, err := NewMDS(ids, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := transport.ServeTCP(wire.MDSNode, "127.0.0.1:0", mds.Handler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := Dial(context.Background(), srv.Addr()); err == nil {
		t.Fatal("Dial must fail when the MDS reports no block size")
	}
}

// TestDialUnreachable proves the error taxonomy holds at the dial
// boundary: a refused connection surfaces as ErrNodeUnreachable.
func TestDialUnreachable(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_, err := Dial(ctx, "127.0.0.1:1") // nothing listens on port 1
	if err == nil {
		t.Fatal("Dial of a dead address must fail")
	}
	if !errors.Is(err, transport.ErrNodeUnreachable) {
		t.Fatalf("want ErrNodeUnreachable, got %v", err)
	}
}
