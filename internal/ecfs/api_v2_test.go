package ecfs

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"os"
	"sync/atomic"
	"testing"

	"repro/internal/transport"
	"repro/internal/wire"
)

// cancelAfterRPC wraps an RPC and cancels a context after a fixed
// number of calls have been issued — the scalpel the cancellation tests
// use to stop a client mid-flight at a deterministic point.
type cancelAfterRPC struct {
	inner  transport.RPC
	calls  atomic.Int64
	after  int64
	cancel context.CancelFunc
}

func (c *cancelAfterRPC) Call(ctx context.Context, to wire.NodeID, msg *wire.Msg) (*wire.Resp, error) {
	if c.calls.Add(1) == c.after {
		c.cancel()
	}
	return c.inner.Call(ctx, to, msg)
}

// TestFileHandleRoundTrip drives the v2 handle surface end to end on
// the in-process cluster: OpenFile, io.WriterAt, UpdateAt, io.ReaderAt,
// Stripes/Size, Close semantics.
func TestFileHandleRoundTrip(t *testing.T) {
	ctx := context.Background()
	c := MustNewCluster(testOptions("tsue"))
	defer c.Close()

	f, err := c.CreateFile(ctx, "handles")
	if err != nil {
		t.Fatal(err)
	}
	span := c.Opts.K * c.Opts.BlockSize
	mirror := make([]byte, 2*span)
	rand.New(rand.NewSource(31)).Read(mirror)
	if n, err := f.WriteAt(mirror, 0); err != nil || n != len(mirror) {
		t.Fatalf("WriteAt = %d, %v", n, err)
	}
	// Stripe-aligned WriteAt at a non-zero offset works too.
	if _, err := f.WriteAt(mirror[:span], int64(span)); err != nil {
		t.Fatal(err)
	}
	copy(mirror[span:], mirror[:span])
	// Unaligned WriteAt is rejected with a pointer at UpdateAt.
	if _, err := f.WriteAt([]byte("x"), 7); err == nil {
		t.Fatal("unaligned WriteAt must fail")
	}

	payload := []byte("handle update")
	if _, err := f.UpdateAt(ctx, 99, payload, 0); err != nil {
		t.Fatal(err)
	}
	copy(mirror[99:], payload)

	got := make([]byte, len(mirror))
	if n, err := f.ReadAt(got, 0); err != nil || n != len(got) {
		t.Fatalf("ReadAt = %d, %v", n, err)
	}
	if !bytes.Equal(got, mirror) {
		t.Fatal("handle read-back mismatch")
	}
	if n, err := f.Stripes(ctx); err != nil || n != 2 {
		t.Fatalf("Stripes = %d, %v", n, err)
	}
	if sz, err := f.Size(ctx); err != nil || sz != int64(2*span) {
		t.Fatalf("Size = %d, %v", sz, err)
	}

	// A second handle on the same name sees the same file.
	f2, err := c.OpenFile(ctx, "handles")
	if err != nil {
		t.Fatal(err)
	}
	if f2.Ino() != f.Ino() {
		t.Fatalf("OpenFile ino %d != CreateFile ino %d", f2.Ino(), f.Ino())
	}

	// Close invalidates this handle only.
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadAt(got, 0); !errors.Is(err, os.ErrClosed) {
		t.Fatalf("read after close = %v, want os.ErrClosed", err)
	}
	if _, err := f.WriteAt(mirror, 0); !errors.Is(err, os.ErrClosed) {
		t.Fatalf("write after close = %v, want os.ErrClosed", err)
	}
	// WithContext carries the closed state — it must not resurrect a
	// closed handle.
	if _, err := f.WithContext(ctx).ReadAt(got, 0); !errors.Is(err, os.ErrClosed) {
		t.Fatalf("read via WithContext after close = %v, want os.ErrClosed", err)
	}
	if _, err := f2.ReadAt(got, 0); err != nil {
		t.Fatalf("sibling handle must survive: %v", err)
	}
}

// TestCancelMidWriteFileInproc is the cancellation-safety satellite on
// the in-process transport: a context cancelled mid-WriteFile stops the
// write at a coalescing-window boundary — every placed stripe has all
// its shards stored (Scrub verifies it), and no partial stripe is bound
// at the MDS. The file spans two windows so the cancel (fired inside
// the first window's detached fan-out) is observed before the second
// window binds anything.
func TestCancelMidWriteFileInproc(t *testing.T) {
	c := MustNewCluster(testOptions("tsue"))
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Cancel deep inside the first window's fan-out: after the create,
	// a few of the window's lookups and shard writes.
	rpc := &cancelAfterRPC{
		inner:  c.Tr.Caller(wire.ClientIDBase + 500),
		after:  int64(2 + c.Opts.K + c.Opts.M + 2),
		cancel: cancel,
	}
	cli := NewClient(wire.ClientIDBase+500, rpc, c.code, c.Opts.BlockSize)

	ino, err := cli.CreateContext(ctx, "cancelled-write")
	if err != nil {
		t.Fatal(err)
	}
	span := cli.StripeSpan()
	stripes := 2 * writeCoalesceStripes
	data := make([]byte, stripes*span)
	rand.New(rand.NewSource(41)).Read(data)
	n, err := cli.WriteFileContext(ctx, ino, data)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("WriteFileContext = %d, %v; want context.Canceled", n, err)
	}
	if n == 0 || n >= stripes {
		t.Fatalf("cancel landed outside the file: %d stripes written", n)
	}

	// The invariant: every stripe the MDS has bound is fully stored.
	// (A torn stripe would fail Scrub with a missing block; a stripe
	// placed by a cancelled write attempt would too.)
	if err := c.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	checked, err := c.Scrub()
	if err != nil {
		t.Fatalf("scrub after cancelled write: %v", err)
	}
	if placed := c.MDS.Stripes(ino); placed != n {
		t.Fatalf("MDS has %d stripes bound, client completed %d", placed, n)
	}
	if checked < n {
		t.Fatalf("scrub checked %d stripes, want >= %d", checked, n)
	}
	// The completed prefix reads back intact with a fresh, uncancelled
	// client.
	cli2 := c.NewClient()
	got, _, err := cli2.ReadContext(context.Background(), ino, 0, n*span)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[:n*span]) {
		t.Fatal("completed stripes corrupted by cancellation")
	}
}

// TestCancelMidWriteFileTCP is the same invariant over real sockets:
// the cancelled write stops at a coalescing-window boundary and every
// bound stripe is complete on its (remote) OSDs.
func TestCancelMidWriteFileTCP(t *testing.T) {
	const (
		k, m      = 2, 1
		blockSize = 8 << 10
	)
	h := newTCPHarness(t, k, m, 4, blockSize)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rpc := &cancelAfterRPC{
		inner:  h.newRPC(),
		after:  int64(2 + k + m + 2),
		cancel: cancel,
	}
	cli := NewClient(wire.ClientIDBase+600, rpc, h.code, blockSize)

	ino, err := cli.CreateContext(ctx, "tcp-cancelled-write")
	if err != nil {
		t.Fatal(err)
	}
	span := cli.StripeSpan()
	stripes := 2 * writeCoalesceStripes
	data := make([]byte, stripes*span)
	rand.New(rand.NewSource(43)).Read(data)
	n, err := cli.WriteFileContext(ctx, ino, data)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("WriteFileContext over TCP = %d, %v; want context.Canceled", n, err)
	}
	if n == 0 || n >= stripes {
		t.Fatalf("cancel landed outside the file: %d stripes written", n)
	}
	if placed := h.mds.Stripes(ino); placed != n {
		t.Fatalf("MDS has %d stripes bound, client completed %d", placed, n)
	}
	// Every bound stripe is fully stored on its OSDs and parity-
	// consistent — the remote equivalent of Scrub for this file.
	for s := 0; s < n; s++ {
		loc, err := h.mds.Lookup(ino, uint32(s))
		if err != nil {
			t.Fatal(err)
		}
		shards := make([][]byte, k)
		parity := make([][]byte, m)
		for i := 0; i < k+m; i++ {
			b := wire.BlockID{Ino: ino, Stripe: uint32(s), Idx: uint8(i)}
			snap, ok := h.osds[loc.Nodes[i]].Store().Snapshot(b)
			if !ok {
				t.Fatalf("bound stripe %d is torn: block %v missing", s, b)
			}
			if i < k {
				shards[i] = snap
			} else {
				parity[i-k] = snap
			}
		}
		ok, err := h.code.Verify(shards, parity)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("bound stripe %d parity-inconsistent after cancel", s)
		}
	}
}

// TestDeprecatedWrappersStillWork pins the migration contract: the
// context-free Create/WriteFile/Update/Read keep working as before.
func TestDeprecatedWrappersStillWork(t *testing.T) {
	c := MustNewCluster(testOptions("tsue"))
	defer c.Close()
	cli := c.NewClient()
	ino, err := cli.Create("v1-compat")
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, cli.StripeSpan())
	rand.New(rand.NewSource(47)).Read(data)
	if _, err := cli.WriteFile(ino, data); err != nil {
		t.Fatal(err)
	}
	payload := []byte("compat")
	if _, err := cli.Update(ino, 10, payload, 0); err != nil {
		t.Fatal(err)
	}
	copy(data[10:], payload)
	got, _, err := cli.Read(ino, 0, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("deprecated wrapper round trip mismatch")
	}
}

// TestPerShardInoRanges pins the satellite: concurrent creates allocate
// unique inos from disjoint per-shard ranges with no shared counter.
func TestPerShardInoRanges(t *testing.T) {
	ids := []wire.NodeID{1, 2, 3}
	md, err := NewMDSWithShards(ids, 2, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	const files = 4000
	inos := make([]uint64, files)
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := w; i < files; i += 8 {
				inos[i], _ = md.Create(nameForInoTest(i))
			}
		}(w)
	}
	for w := 0; w < 8; w++ {
		<-done
	}
	seen := make(map[uint64]bool, files)
	for i, ino := range inos {
		if ino == 0 {
			t.Fatalf("file %d got ino 0", i)
		}
		if seen[ino] {
			t.Fatalf("duplicate ino %d", ino)
		}
		seen[ino] = true
	}
	// Open-or-create still returns the existing ino.
	if again, _ := md.Create(nameForInoTest(17)); again != inos[17] {
		t.Fatalf("re-create returned %d, want %d", again, inos[17])
	}
	// Determinism: two MDS instances fed the same create sequence
	// allocate identically (name-shard hashing is seedless), so
	// placements stay reproducible run to run.
	md2, err := NewMDSWithShards(ids, 2, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	md3, err := NewMDSWithShards(ids, 2, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		a, _ := md2.Create(nameForInoTest(i))
		b, _ := md3.Create(nameForInoTest(i))
		if a != b {
			t.Fatalf("ino allocation not deterministic: file %d got %d and %d", i, a, b)
		}
	}
}

func nameForInoTest(i int) string {
	return "ino-range/f" + string(rune('a'+i%26)) + "/" + itoa(i)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
