package ecfs

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"repro/internal/device"
	"repro/internal/erasure"
	"repro/internal/transport"
	"repro/internal/update"
	"repro/internal/wire"
)

// TestTCPClusterEndToEnd deploys a real ECFS cluster over TCP loopback —
// the same wiring cmd/ecfsd uses — and runs writes, updates, flush and
// reads through actual sockets with binary-codec frames.
func TestTCPClusterEndToEnd(t *testing.T) {
	const (
		k, m      = 2, 1
		nOSDs     = 4
		blockSize = 8 << 10
	)
	ids := make([]wire.NodeID, nOSDs)
	for i := range ids {
		ids[i] = wire.NodeID(i + 1)
	}
	mds, err := NewMDS(ids, k, m)
	if err != nil {
		t.Fatal(err)
	}
	mdsSrv, err := transport.ServeTCP(wire.MDSNode, "127.0.0.1:0", mds.Handler)
	if err != nil {
		t.Fatal(err)
	}
	defer mdsSrv.Close()

	addrs := map[wire.NodeID]string{wire.MDSNode: mdsSrv.Addr()}
	cfg := update.DefaultConfig()
	cfg.BlockSize = blockSize
	cfg.UnitSize = 4 << 10
	cfg.MaxUnits = 4
	cfg.Pools = 2
	cfg.Workers = 2

	var osds []*OSD
	var srvs []*transport.TCPServer
	// Each OSD gets its own TCP client pool; addresses are completed
	// after every server is bound (two passes, like a static config).
	clients := make([]*transport.TCPClient, nOSDs)
	for i, id := range ids {
		clients[i] = transport.NewTCPClient(nil)
		osd, err := NewOSD(id, device.ChameleonSSD(), clients[i], "tsue", cfg, erasure.Vandermonde)
		if err != nil {
			t.Fatal(err)
		}
		defer osd.Close()
		srv, err := transport.ServeTCP(id, "127.0.0.1:0", osd.Handler)
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		osds = append(osds, osd)
		srvs = append(srvs, srv)
		addrs[id] = srv.Addr()
	}
	for i := range clients {
		for id, addr := range addrs {
			clients[i].SetAddr(id, addr)
		}
	}
	_ = srvs

	cliRPC := transport.NewTCPClient(addrs)
	defer cliRPC.Close()
	code := erasure.MustNew(k, m, erasure.Vandermonde)
	cli := NewClient(wire.ClientIDBase, cliRPC, code, blockSize)

	ino, err := cli.Create("tcp-vol")
	if err != nil {
		t.Fatal(err)
	}
	mirror := make([]byte, 2*cli.StripeSpan())
	rand.New(rand.NewSource(5)).Read(mirror)
	if _, err := cli.WriteFile(ino, mirror); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 60; i++ {
		off := int64(rng.Intn(len(mirror) - 128))
		data := make([]byte, 1+rng.Intn(128))
		rng.Read(data)
		if _, err := cli.Update(ino, off, data, 0); err != nil {
			t.Fatalf("update over TCP: %v", err)
		}
		copy(mirror[off:], data)
	}

	got, _, err := cli.Read(ino, 0, len(mirror))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, mirror) {
		t.Fatal("TCP read-back mismatch before flush")
	}

	// Drain over TCP, phase by phase, then verify parity locally.
	for phase := 1; phase <= update.DrainPhases; phase++ {
		for _, id := range ids {
			resp, err := cliRPC.Call(context.Background(), id, &wire.Msg{Kind: wire.KDrainLogs, Flag: uint8(phase)})
			if err != nil {
				t.Fatal(err)
			}
			if e := resp.Error(); e != nil {
				t.Fatal(e)
			}
		}
	}
	for s := 0; s < 2; s++ {
		loc, err := mds.Lookup(ino, uint32(s))
		if err != nil {
			t.Fatal(err)
		}
		data := make([][]byte, k)
		parity := make([][]byte, m)
		for i := 0; i < k+m; i++ {
			b := wire.BlockID{Ino: ino, Stripe: uint32(s), Idx: uint8(i)}
			var holder *OSD
			for _, o := range osds {
				if o.ID() == loc.Nodes[i] {
					holder = o
				}
			}
			snap, ok := holder.Store().Snapshot(b)
			if !ok {
				t.Fatalf("block %v missing", b)
			}
			if i < k {
				data[i] = snap
			} else {
				parity[i-k] = snap
			}
		}
		ok, err := code.Verify(data, parity)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("stripe %d parity inconsistent after TCP run", s)
		}
	}

	// Heartbeats flow over TCP too.
	if err := osds[0].Heartbeat(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, ok := mds.LastHeartbeat(ids[0]); !ok {
		t.Fatal("heartbeat not recorded")
	}
}
