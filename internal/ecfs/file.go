package ecfs

import (
	"context"
	"fmt"
	"os"
	"sync/atomic"
	"time"
)

// File is a handle on one ECFS file — the v2 client surface. It is
// obtained from Client.Open (or Cluster.OpenFile / RemoteClient.OpenFile)
// and implements io.ReaderAt, io.WriterAt and io.Closer, plus UpdateAt
// for the paper's two-stage TSUE updates. The distinction mirrors §4 of
// the paper: WriteAt is the "normal write" path (full stripes, freshly
// encoded), UpdateAt is the "data update" path (partial, routed to the
// data block's OSD and propagated to parity through the update
// strategy's log pipeline).
//
// The io.ReaderAt/io.WriterAt methods cannot accept a context, so they
// use the context the handle was opened with; UpdateAt and ReadRange
// take an explicit one. A File is safe for concurrent use. Close
// invalidates the handle only — ECFS keeps no per-open server state.
type File struct {
	cli    *Client
	ino    uint64
	name   string
	ctx    context.Context
	closed atomic.Bool
}

// Ino returns the file's inode number.
func (f *File) Ino() uint64 { return f.ino }

// Name returns the name the file was opened with.
func (f *File) Name() string { return f.name }

// WithContext returns a handle on the same file whose io.ReaderAt /
// io.WriterAt methods use ctx. The closed state carries over: deriving
// from a closed handle yields a closed handle (Close does not re-open).
func (f *File) WithContext(ctx context.Context) *File {
	nf := &File{cli: f.cli, ino: f.ino, name: f.name, ctx: ctx}
	if f.closed.Load() {
		nf.closed.Store(true)
	}
	return nf
}

func (f *File) guard() error {
	if f.closed.Load() {
		return fmt.Errorf("ecfs: %s: %w", f.name, os.ErrClosed)
	}
	return nil
}

// ReadAt implements io.ReaderAt: it fills p from [off, off+len(p)),
// honoring pending update logs (read-your-writes) and degrading to a
// K-way reconstruction only when the block's holder cannot serve it.
// Reads past the last written stripe fail — ECFS places stripes on
// first write and has no sparse-zero semantics.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	if err := f.guard(); err != nil {
		return 0, err
	}
	data, _, err := f.cli.ReadContext(f.ctx, f.ino, off, len(p))
	if err != nil {
		return 0, err
	}
	return copy(p, data), nil
}

// ReadRange is ReadAt with an explicit context, returning the modeled
// synchronous latency alongside the data.
func (f *File) ReadRange(ctx context.Context, off int64, size int) ([]byte, time.Duration, error) {
	if err := f.guard(); err != nil {
		return nil, 0, err
	}
	return f.cli.ReadContext(ctx, f.ino, off, size)
}

// WriteAt implements io.WriterAt for the normal-write path: data is
// split into stripes, erasure-coded and distributed. off must be
// stripe-aligned (a multiple of StripeSpan) and the tail stripe is
// zero-padded — for partial in-place mutations of written data use
// UpdateAt, which is the paper's subject. A cancelled handle context
// stops at a stripe boundary; every acknowledged stripe is complete.
func (f *File) WriteAt(p []byte, off int64) (int, error) {
	if err := f.guard(); err != nil {
		return 0, err
	}
	span := int64(f.cli.StripeSpan())
	if off%span != 0 {
		return 0, fmt.Errorf("ecfs: WriteAt offset %d is not stripe-aligned (span %d); use UpdateAt for partial updates", off, span)
	}
	if n, err := f.cli.writeStripes(f.ctx, f.ino, uint32(off/span), p); err != nil {
		return int(min(int64(n)*span, int64(len(p)))), err
	}
	return len(p), nil
}

// UpdateAt applies a partial update at a file byte offset through the
// cluster's update strategy — for TSUE, the two-stage log-structured
// path (§3). v is the virtual workload time used by the timing model
// (0 outside replay harnesses). Returns the modeled synchronous update
// latency.
func (f *File) UpdateAt(ctx context.Context, off int64, data []byte, v time.Duration) (time.Duration, error) {
	if err := f.guard(); err != nil {
		return 0, err
	}
	return f.cli.UpdateContext(ctx, f.ino, off, data, v)
}

// Stripes returns the number of placed stripes of the file.
func (f *File) Stripes(ctx context.Context) (int, error) {
	if err := f.guard(); err != nil {
		return 0, err
	}
	return f.cli.Stripes(ctx, f.ino)
}

// Size returns the written span of the file in bytes (placed stripes
// times stripe span — ECFS tracks stripe-granular sizes).
func (f *File) Size(ctx context.Context) (int64, error) {
	n, err := f.Stripes(ctx)
	return int64(n) * int64(f.cli.StripeSpan()), err
}

// Close implements io.Closer: it invalidates the handle (subsequent
// operations fail with os.ErrClosed). ECFS keeps no per-open server
// state, so Close performs no RPC.
func (f *File) Close() error {
	f.closed.Store(true)
	return nil
}
