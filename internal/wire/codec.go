// Binary wire codec (format v1).
//
// Every frame body the TCP transport ships is one Msg or Resp encoded by
// the hand-rolled codec below: a fixed-layout header holding the union's
// scalar fields at hard-coded big-endian offsets, followed by the
// variable sections (placement nodes, name, payloads) whose lengths the
// header declares. No reflection, no per-field type tags, no varints —
// encoding is a handful of stores plus payload copies, and decoding is
// bounds checks plus sub-slicing, so the data plane allocates nothing on
// encode and only the payload-aliasing struct fields on decode.
//
// The first byte of every encoding is FormatVersion. A decoder that sees
// any other value — a frame from the retired gob framing, or a future
// format — rejects the frame with ErrBadFormat instead of guessing;
// mixed-format deployments are unsupported (docs/OPERATIONS.md).
//
// WireSize is exact: it returns precisely len(AppendTo(nil)), and the
// in-process transport and the repair scheduler's priced-byte token
// bucket charge those same bytes, so simulated pricing and what TCP
// actually ships agree to the byte.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"repro/internal/sim"
)

// FormatVersion is the one-byte wire format version leading every
// encoded Msg and Resp. Bump it when the layout changes; decoders
// reject every version but their own.
const FormatVersion = 1

// ErrBadFormat rejects a frame that does not start with FormatVersion —
// typically a peer still speaking the retired gob framing. Mixed
// deployments are unsupported; upgrade every node together.
var ErrBadFormat = errors.New("unsupported wire format (mixed gob/binary deployment?)")

// Fixed header sizes of the v1 layouts (see AppendTo for the field
// offsets). WireSize builds on these, so they are exact by definition.
const (
	msgFixedSize  = 68
	respFixedSize = 44
)

// maxLocNodes bounds the placement width a frame may carry. K+M tops
// out far below this; the bound keeps a corrupt header from asking the
// decoder for an absurd node slice.
const maxLocNodes = 0xFFFF

// Msg v1 layout, all integers big-endian:
//
//	[0]      format version (FormatVersion)
//	[1]      Kind
//	[2]      Flag
//	[3]      Class
//	[4]      Idx           (delta-origin data-block index)
//	[5]      K
//	[6]      M
//	[7]      Block.Idx
//	[8:12]   From          (int32)
//	[12:16]  Block.Stripe
//	[16:24]  Block.Ino
//	[24:28]  Off
//	[28:32]  Size
//	[32:40]  Seq
//	[40:48]  V             (int64)
//	[48:56]  Loc.Epoch
//	[56:60]  len(Data)
//	[60:64]  len(Data2)
//	[64:66]  len(Name)     (uint16)
//	[66:68]  len(Loc.Nodes) (uint16)
//	[68:]    Loc.Nodes (4 bytes each) | Name | Data | Data2
//
// AppendTo appends the encoding of m to buf and returns the extended
// slice. It allocates only when buf lacks capacity, so a pooled buffer
// makes encoding allocation-free. Panics if Name or Loc.Nodes exceed
// their uint16 length fields — both are bounded far below that by
// construction (names are file paths, placements are K+M wide).
func (m *Msg) AppendTo(buf []byte) []byte {
	if len(m.Name) > 0xFFFF {
		panic(fmt.Sprintf("wire: message name of %d bytes exceeds the wire format's 64 KiB bound", len(m.Name)))
	}
	if len(m.Loc.Nodes) > maxLocNodes {
		panic(fmt.Sprintf("wire: placement of %d nodes exceeds the wire format bound", len(m.Loc.Nodes)))
	}
	need := int(m.WireSize())
	buf = growBuf(buf, need)
	h := buf[len(buf) : len(buf)+msgFixedSize]
	h[0] = FormatVersion
	h[1] = byte(m.Kind)
	h[2] = m.Flag
	h[3] = byte(m.Class)
	h[4] = m.Idx
	h[5] = m.K
	h[6] = m.M
	h[7] = m.Block.Idx
	binary.BigEndian.PutUint32(h[8:12], uint32(m.From))
	binary.BigEndian.PutUint32(h[12:16], m.Block.Stripe)
	binary.BigEndian.PutUint64(h[16:24], m.Block.Ino)
	binary.BigEndian.PutUint32(h[24:28], m.Off)
	binary.BigEndian.PutUint32(h[28:32], m.Size)
	binary.BigEndian.PutUint64(h[32:40], m.Seq)
	binary.BigEndian.PutUint64(h[40:48], uint64(m.V))
	binary.BigEndian.PutUint64(h[48:56], m.Loc.Epoch)
	binary.BigEndian.PutUint32(h[56:60], uint32(len(m.Data)))
	binary.BigEndian.PutUint32(h[60:64], uint32(len(m.Data2)))
	binary.BigEndian.PutUint16(h[64:66], uint16(len(m.Name)))
	binary.BigEndian.PutUint16(h[66:68], uint16(len(m.Loc.Nodes)))
	buf = buf[:len(buf)+msgFixedSize]
	for _, n := range m.Loc.Nodes {
		buf = binary.BigEndian.AppendUint32(buf, uint32(n))
	}
	buf = append(buf, m.Name...)
	buf = append(buf, m.Data...)
	buf = append(buf, m.Data2...)
	return buf
}

// Decode parses a v1 encoding into m, replacing every field. Data and
// Data2 alias b — the caller owns b's lifetime and must not recycle it
// while the decoded message is live. A malformed frame — wrong version,
// truncated header, or section lengths that do not add up to exactly
// len(b) — returns an error without allocating anything beyond what the
// declared (and verified) lengths require; Decode never panics on
// adversarial input.
func (m *Msg) Decode(b []byte) error {
	if len(b) < msgFixedSize {
		return fmt.Errorf("wire: message frame of %d bytes, need at least %d", len(b), msgFixedSize)
	}
	if b[0] != FormatVersion {
		return fmt.Errorf("wire: message frame declares format %d, this build speaks %d: %w", b[0], FormatVersion, ErrBadFormat)
	}
	dataLen := int(binary.BigEndian.Uint32(b[56:60]))
	data2Len := int(binary.BigEndian.Uint32(b[60:64]))
	nameLen := int(binary.BigEndian.Uint16(b[64:66]))
	nodes := int(binary.BigEndian.Uint16(b[66:68]))
	need := msgFixedSize + 4*nodes + nameLen
	// Payload lengths are 32-bit; sum in the frame's int domain only
	// after the small sections proved in-bounds, to keep a corrupt
	// header from overflowing the bound check.
	if need > len(b) || dataLen > len(b)-need || data2Len > len(b)-need-dataLen {
		return fmt.Errorf("wire: message sections exceed frame of %d bytes", len(b))
	}
	if need+dataLen+data2Len != len(b) {
		return fmt.Errorf("wire: message frame of %d bytes carries %d trailing bytes", len(b), len(b)-need-dataLen-data2Len)
	}
	*m = Msg{
		Kind:  Kind(b[1]),
		Flag:  b[2],
		Class: sim.Class(b[3]),
		Idx:   b[4],
		K:     b[5],
		M:     b[6],
		Block: BlockID{
			Idx:    b[7],
			Stripe: binary.BigEndian.Uint32(b[12:16]),
			Ino:    binary.BigEndian.Uint64(b[16:24]),
		},
		From: NodeID(int32(binary.BigEndian.Uint32(b[8:12]))),
		Off:  binary.BigEndian.Uint32(b[24:28]),
		Size: binary.BigEndian.Uint32(b[28:32]),
		Seq:  binary.BigEndian.Uint64(b[32:40]),
		V:    int64(binary.BigEndian.Uint64(b[40:48])),
	}
	off := msgFixedSize
	if nodes > 0 {
		m.Loc.Nodes = make([]NodeID, nodes)
		for i := range m.Loc.Nodes {
			m.Loc.Nodes[i] = NodeID(int32(binary.BigEndian.Uint32(b[off : off+4])))
			off += 4
		}
	}
	m.Loc.Epoch = binary.BigEndian.Uint64(b[48:56])
	if nameLen > 0 {
		m.Name = string(b[off : off+nameLen])
		off += nameLen
	}
	if dataLen > 0 {
		m.Data = b[off : off+dataLen : off+dataLen]
		off += dataLen
	}
	if data2Len > 0 {
		m.Data2 = b[off : off+data2Len : off+data2Len]
	}
	return nil
}

// Resp v1 layout, all integers big-endian:
//
//	[0]      format version (FormatVersion)
//	[1]      Code
//	[2:4]    len(Loc.Nodes) (uint16)
//	[4:8]    len(Err)
//	[8:12]   len(Data)
//	[12:20]  Ino
//	[20:28]  Val            (int64)
//	[28:36]  Cost           (int64 nanoseconds)
//	[36:44]  Loc.Epoch
//	[44:]    Loc.Nodes (4 bytes each) | Err | Data
//
// AppendTo appends the encoding of r to buf and returns the extended
// slice; see Msg.AppendTo for the allocation contract.
func (r *Resp) AppendTo(buf []byte) []byte {
	if len(r.Loc.Nodes) > maxLocNodes {
		panic(fmt.Sprintf("wire: placement of %d nodes exceeds the wire format bound", len(r.Loc.Nodes)))
	}
	need := int(r.WireSize())
	buf = growBuf(buf, need)
	h := buf[len(buf) : len(buf)+respFixedSize]
	h[0] = FormatVersion
	h[1] = byte(r.Code)
	binary.BigEndian.PutUint16(h[2:4], uint16(len(r.Loc.Nodes)))
	binary.BigEndian.PutUint32(h[4:8], uint32(len(r.Err)))
	binary.BigEndian.PutUint32(h[8:12], uint32(len(r.Data)))
	binary.BigEndian.PutUint64(h[12:20], r.Ino)
	binary.BigEndian.PutUint64(h[20:28], uint64(r.Val))
	binary.BigEndian.PutUint64(h[28:36], uint64(r.Cost))
	binary.BigEndian.PutUint64(h[36:44], r.Loc.Epoch)
	buf = buf[:len(buf)+respFixedSize]
	for _, n := range r.Loc.Nodes {
		buf = binary.BigEndian.AppendUint32(buf, uint32(n))
	}
	buf = append(buf, r.Err...)
	buf = append(buf, r.Data...)
	return buf
}

// Decode parses a v1 encoding into r, replacing every field. Data
// aliases b; see Msg.Decode for the validation and allocation contract.
func (r *Resp) Decode(b []byte) error {
	if len(b) < respFixedSize {
		return fmt.Errorf("wire: response frame of %d bytes, need at least %d", len(b), respFixedSize)
	}
	if b[0] != FormatVersion {
		return fmt.Errorf("wire: response frame declares format %d, this build speaks %d: %w", b[0], FormatVersion, ErrBadFormat)
	}
	nodes := int(binary.BigEndian.Uint16(b[2:4]))
	errLen := int(binary.BigEndian.Uint32(b[4:8]))
	dataLen := int(binary.BigEndian.Uint32(b[8:12]))
	need := respFixedSize + 4*nodes
	if need > len(b) || errLen > len(b)-need || dataLen > len(b)-need-errLen {
		return fmt.Errorf("wire: response sections exceed frame of %d bytes", len(b))
	}
	if need+errLen+dataLen != len(b) {
		return fmt.Errorf("wire: response frame of %d bytes carries %d trailing bytes", len(b), len(b)-need-errLen-dataLen)
	}
	*r = Resp{
		Code: Status(b[1]),
		Ino:  binary.BigEndian.Uint64(b[12:20]),
		Val:  int64(binary.BigEndian.Uint64(b[20:28])),
		Cost: time.Duration(int64(binary.BigEndian.Uint64(b[28:36]))),
	}
	off := respFixedSize
	if nodes > 0 {
		r.Loc.Nodes = make([]NodeID, nodes)
		for i := range r.Loc.Nodes {
			r.Loc.Nodes[i] = NodeID(int32(binary.BigEndian.Uint32(b[off : off+4])))
			off += 4
		}
	}
	r.Loc.Epoch = binary.BigEndian.Uint64(b[36:44])
	if errLen > 0 {
		r.Err = string(b[off : off+errLen])
		off += errLen
	}
	if dataLen > 0 {
		r.Data = b[off : off+dataLen : off+dataLen]
	}
	return nil
}

// growBuf ensures buf has capacity for need more bytes.
func growBuf(buf []byte, need int) []byte {
	if cap(buf)-len(buf) >= need {
		return buf
	}
	grown := make([]byte, len(buf), len(buf)+need)
	copy(grown, buf)
	return grown
}
