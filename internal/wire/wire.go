// Package wire defines the RPC message vocabulary of ECFS: the requests
// clients send to the metadata server and OSDs, and the inter-OSD
// messages the update strategies exchange (delta forwards, log replicas,
// parity-log appends). The same messages travel over both transports —
// in-process (with simulated network pricing) and real TCP (gob-encoded,
// length-prefixed).
package wire

import (
	"fmt"
	"time"
)

// NodeID identifies a node in the cluster. The MDS is node 0; OSDs are
// 1..N; clients use ephemeral IDs >= ClientIDBase.
type NodeID int32

// ClientIDBase is the first NodeID used for clients.
const ClientIDBase NodeID = 1 << 16

// MDSNode is the well-known NodeID of the metadata server.
const MDSNode NodeID = 0

// BlockID names one block of one stripe of one file. Idx is the position
// inside the stripe: 0..K-1 are data blocks, K..K+M-1 are parity blocks.
type BlockID struct {
	Ino    uint64
	Stripe uint32
	Idx    uint8
}

func (b BlockID) String() string {
	return fmt.Sprintf("ino%d/s%d/b%d", b.Ino, b.Stripe, b.Idx)
}

// WithIdx returns the BlockID of another position in the same stripe.
func (b BlockID) WithIdx(idx uint8) BlockID {
	b.Idx = idx
	return b
}

// StripeLoc is the placement of one stripe: Nodes[i] hosts block Idx i.
type StripeLoc struct {
	Nodes []NodeID // length K+M
}

// Kind enumerates message types.
type Kind uint8

// Message kinds. Client-facing first, then strategy-internal.
const (
	KInvalid Kind = iota

	// Client -> OSD.
	KWriteBlock // full-block write of a freshly encoded stripe member
	KUpdate     // partial update of a data block (the paper's subject)
	KRead       // read a byte range of a block

	// MDS RPCs.
	KMDSCreate    // create a file, returns ino
	KMDSLookup    // resolve (ino, stripe) -> StripeLoc
	KMDSHeartbeat // OSD liveness report
	KMDSStat      // file size / stripe count

	// Strategy-internal, OSD -> OSD.
	KParityDelta    // apply or log a parity delta at a parity OSD
	KParityLogAdd   // TSUE/PL: append a parity delta to the parity log
	KDeltaLogAdd    // TSUE: append a data delta to a DeltaLog
	KDataLogReplica // TSUE: replicate a DataLog append
	KParixLogAdd    // PARIX: append new (and optionally old) data
	KCordCollect    // CoRD: send a data delta to the stripe collector
	KBlockFetch     // fetch a whole block (recovery / reconstruction)
	KBlockStore     // store a rebuilt block
	KDrainLogs      // force strategy logs to be recycled (pre-recovery)
	KReplicaFetch   // fetch replicated log extents for a block (recovery)
	KPing           // liveness / latency probe
)

var kindNames = map[Kind]string{
	KInvalid: "invalid", KWriteBlock: "write-block", KUpdate: "update",
	KRead: "read", KMDSCreate: "mds-create", KMDSLookup: "mds-lookup",
	KMDSHeartbeat: "mds-heartbeat", KMDSStat: "mds-stat",
	KParityDelta: "parity-delta", KParityLogAdd: "parity-log-add",
	KDeltaLogAdd: "delta-log-add", KDataLogReplica: "data-log-replica",
	KParixLogAdd: "parix-log-add", KCordCollect: "cord-collect",
	KBlockFetch: "block-fetch", KBlockStore: "block-store",
	KDrainLogs: "drain-logs", KReplicaFetch: "replica-fetch", KPing: "ping",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Msg is the single envelope for every request. Fields are a union; each
// Kind documents which fields it uses. A flat struct keeps gob encoding
// simple and the in-process fast path allocation-light.
type Msg struct {
	Kind  Kind
	From  NodeID
	Block BlockID
	Off   uint32
	Size  uint32
	Data  []byte
	Data2 []byte // secondary payload (e.g. PARIX old data)
	Idx   uint8  // data-block index a delta originates from
	K, M  uint8  // stripe geometry
	Loc   StripeLoc
	Seq   uint64 // per-source sequence number for ordered appends
	Name  string // file name for MDS ops
	Flag  uint8  // kind-specific flag (e.g. PARIX first-update)
	// V is the virtual workload time (nanoseconds since replay start) at
	// which this request was issued. The timing model uses it for log
	// residence statistics and stall accounting.
	V int64
}

// WireSize approximates the bytes this message occupies on the network,
// used by the simulated transport for pricing. Header fields are counted
// at a fixed 64 bytes, close to the gob framing overhead.
func (m *Msg) WireSize() int64 {
	return 64 + int64(len(m.Data)) + int64(len(m.Data2)) + 4*int64(len(m.Loc.Nodes)) + int64(len(m.Name))
}

// Resp is the reply to a Msg.
type Resp struct {
	Err  string
	Data []byte
	Ino  uint64
	Loc  StripeLoc
	Val  int64
	// Cost is the modeled synchronous latency the remote side (plus the
	// network, on the simulated transport) contributed to this call.
	Cost time.Duration
}

// WireSize approximates the reply's size on the network.
func (r *Resp) WireSize() int64 {
	return 48 + int64(len(r.Data)) + int64(len(r.Err)) + 4*int64(len(r.Loc.Nodes))
}

// OK reports whether the response carries no error.
func (r *Resp) OK() bool { return r.Err == "" }

// Error converts a non-empty Err field into an error value.
func (r *Resp) Error() error {
	if r.Err == "" {
		return nil
	}
	return fmt.Errorf("remote: %s", r.Err)
}
