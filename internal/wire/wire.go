// Package wire defines the RPC message vocabulary of ECFS: the requests
// clients send to the metadata server and OSDs, and the inter-OSD
// messages the update strategies exchange (delta forwards, log replicas,
// parity-log appends). The same messages travel over both transports —
// in-process (with simulated network pricing) and real TCP
// (length-prefixed frames holding the hand-rolled binary encoding of
// codec.go, format v1). WireSize is exact on both: the bytes the
// simulator prices are the bytes TCP ships.
package wire

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/sim"
)

// NodeID identifies a node in the cluster. The MDS is node 0; OSDs are
// 1..N; clients use ephemeral IDs >= ClientIDBase.
type NodeID int32

// ClientIDBase is the first NodeID used for clients.
const ClientIDBase NodeID = 1 << 16

// MDSNode is the well-known NodeID of the metadata server.
const MDSNode NodeID = 0

// BlockID names one block of one stripe of one file. Idx is the position
// inside the stripe: 0..K-1 are data blocks, K..K+M-1 are parity blocks.
type BlockID struct {
	Ino    uint64
	Stripe uint32
	Idx    uint8
}

func (b BlockID) String() string {
	return fmt.Sprintf("ino%d/s%d/b%d", b.Ino, b.Stripe, b.Idx)
}

// WithIdx returns the BlockID of another position in the same stripe.
func (b BlockID) WithIdx(idx uint8) BlockID {
	b.Idx = idx
	return b
}

// StripeLoc is the placement of one stripe: Nodes[i] hosts block Idx i.
//
// Epoch is the placement's version. It starts at 0 when the MDS first
// places the stripe and is bumped every time recovery rebinds the stripe
// onto a different node set (a lost block rebuilt onto a replacement
// with a new node id). A client caches the whole StripeLoc; an OSD that
// has learned a newer epoch for the stripe rejects requests carrying an
// older one with StatusStaleEpoch, which tells the client to drop its
// cache entry and re-resolve at the MDS. Nodes slices are immutable
// once published: a rebind installs a fresh StripeLoc rather than
// mutating the old one, so concurrent readers of a cached value are
// always safe.
type StripeLoc struct {
	Nodes []NodeID // length K+M
	Epoch uint64   // placement version; see the type comment
}

// Kind enumerates message types.
type Kind uint8

// Message kinds. Client-facing first, then strategy-internal.
const (
	KInvalid Kind = iota

	// Client -> OSD.
	KWriteBlock // full-block write of a freshly encoded stripe member
	KUpdate     // partial update of a data block (the paper's subject)
	KRead       // read a byte range of a block

	// MDS RPCs.
	KMDSCreate    // create a file, returns ino
	KMDSLookup    // resolve (ino, stripe) -> StripeLoc
	KMDSHeartbeat // OSD liveness report
	KMDSStat      // file size / stripe count

	// Strategy-internal, OSD -> OSD.
	KParityDelta    // apply or log a parity delta at a parity OSD
	KParityLogAdd   // TSUE/PL: append a parity delta to the parity log
	KDeltaLogAdd    // TSUE: append a data delta to a DeltaLog
	KDataLogReplica // TSUE: replicate a DataLog append
	KParixLogAdd    // PARIX: append new (and optionally old) data
	KCordCollect    // CoRD: send a data delta to the stripe collector
	KBlockFetch     // fetch a whole block (recovery / reconstruction)
	KBlockStore     // store a rebuilt block
	KDrainLogs      // force strategy logs to be recycled (pre-recovery)
	KReplicaFetch   // fetch replicated log extents for a block (recovery)
	KPing           // liveness / latency probe
	KEpochUpdate    // repair tells a stripe member about a new placement epoch

	// Repair-subsystem RPCs (client/tool -> MDS).
	KRepairHint   // degraded read promotes a stripe in the active repair queue
	KRepairStatus // query the active repair/drain queue (Val = pending stripes)

	// KResolveAddr asks the MDS for the cluster's node address map (the
	// listen addresses OSDs report in their heartbeats) plus the stripe
	// geometry and block size. It is how tsue.Dial self-discovers a TCP
	// deployment and how a client pool re-resolves a replacement node's
	// address with no manual SetAddr. Reply: Data = EncodeAddrMap,
	// Val = int64(K)<<32 | int64(M), Ino = uint64(blockSize).
	KResolveAddr
)

// FetchReadThrough, set in Msg.Flag on a KBlockFetch, asks the holder to
// serve the block through its update strategy (base content plus any
// pending data-log overlays) instead of the raw store. The drain engine
// uses it so a live migration source hands over read-your-writes content
// without a full cluster log drain per stripe.
const FetchReadThrough uint8 = 1

// StoreUnlessOverwritten, set in Msg.Flag on a KBlockStore carrying a
// placement (Msg.Loc), makes the store a no-op if a client full-block
// write at Loc.Epoch (or newer) has already landed for the stripe: the
// drain engine's post-fence re-store carries *old-epoch* content and
// must never clobber a write acknowledged under the new placement.
const StoreUnlessOverwritten uint8 = 2

var kindNames = map[Kind]string{
	KInvalid: "invalid", KWriteBlock: "write-block", KUpdate: "update",
	KRead: "read", KMDSCreate: "mds-create", KMDSLookup: "mds-lookup",
	KMDSHeartbeat: "mds-heartbeat", KMDSStat: "mds-stat",
	KParityDelta: "parity-delta", KParityLogAdd: "parity-log-add",
	KDeltaLogAdd: "delta-log-add", KDataLogReplica: "data-log-replica",
	KParixLogAdd: "parix-log-add", KCordCollect: "cord-collect",
	KBlockFetch: "block-fetch", KBlockStore: "block-store",
	KDrainLogs: "drain-logs", KReplicaFetch: "replica-fetch", KPing: "ping",
	KEpochUpdate: "epoch-update", KRepairHint: "repair-hint",
	KRepairStatus: "repair-status", KResolveAddr: "resolve-addr",
}

// Idempotent reports whether a request of this kind may be safely
// re-delivered when the transport cannot tell if the first attempt was
// applied (a connection died after the frame was written). Full-block
// writes and stores are overwrites, epoch updates are monotonic, and
// metadata requests are read-only or open-or-create; log appends and
// partial updates are not re-deliverable.
func (k Kind) Idempotent() bool {
	switch k {
	case KWriteBlock, KRead, KMDSCreate, KMDSLookup, KMDSHeartbeat, KMDSStat,
		KBlockFetch, KBlockStore, KReplicaFetch, KDrainLogs, KPing,
		KEpochUpdate, KRepairHint, KRepairStatus, KResolveAddr:
		return true
	}
	return false
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// DefaultClass maps a kind to the traffic class it is priced under when
// the sender did not tag the message explicitly. Client-facing reads
// (including the block fetches of a degraded read) are foreground-read;
// writes, updates and the strategy-internal forwards they trigger are
// foreground-write; everything only the repair/drain engines send —
// which always tag explicitly — plus control traffic (heartbeats,
// pings, hints, resolution) stays ClassOther.
func (k Kind) DefaultClass() sim.Class {
	switch k {
	case KRead, KMDSLookup, KMDSStat, KBlockFetch, KReplicaFetch:
		return sim.ClassForegroundRead
	case KWriteBlock, KUpdate, KMDSCreate, KParityDelta, KParityLogAdd,
		KDeltaLogAdd, KDataLogReplica, KParixLogAdd, KCordCollect:
		return sim.ClassForegroundWrite
	}
	return sim.ClassOther
}

// Msg is the single envelope for every request. Fields are a union; each
// Kind documents which fields it uses. A flat struct keeps the binary
// codec a fixed layout and the in-process fast path allocation-light.
type Msg struct {
	Kind  Kind
	From  NodeID
	Block BlockID
	Off   uint32
	Size  uint32
	Data  []byte
	Data2 []byte // secondary payload (e.g. PARIX old data)
	Idx   uint8  // data-block index a delta originates from
	K, M  uint8  // stripe geometry
	Loc   StripeLoc
	Seq   uint64 // per-source sequence number for ordered appends
	Name  string // file name for MDS ops
	Flag  uint8  // kind-specific flag (e.g. PARIX first-update)
	// Class tags the traffic class this message (and its reply) is
	// priced under. The zero value defers to the kind's DefaultClass;
	// the repair/drain engines tag their messages ClassRebuild /
	// ClassDrain explicitly so shared resources can account rebuild
	// traffic separately from the foreground workload.
	Class sim.Class
	// V is the virtual workload time (nanoseconds since replay start) at
	// which this request was issued. The timing model uses it for log
	// residence statistics and stall accounting.
	V int64
}

// TrafficClass resolves the class this message is priced under: the
// explicit Class tag when set, the kind's default otherwise.
func (m *Msg) TrafficClass() sim.Class {
	if m.Class != sim.ClassOther {
		return m.Class
	}
	return m.Kind.DefaultClass()
}

// WireSize returns the exact number of bytes this message occupies on
// the wire — precisely len(m.AppendTo(nil)) — used by the simulated
// transport for pricing and by the TCP transport to size encode
// buffers. The fixed header (msgFixedSize bytes, including the 8-byte
// placement epoch) is always paid; the placement nodes, name and
// payloads add their own bytes.
func (m *Msg) WireSize() int64 {
	return msgFixedSize + 4*int64(len(m.Loc.Nodes)) + int64(len(m.Name)) + int64(len(m.Data)) + int64(len(m.Data2))
}

// EncodeAddrMap packs a node address map into a byte payload for the
// KResolveAddr reply: entries in ascending node-id order, each 4-byte
// big-endian id, 2-byte big-endian length, then the address bytes. An
// address longer than the 2-byte length field can carry (64 KiB — far
// beyond any real host:port) is an error, never a silent skip: a
// pathological address must not simply vanish from KResolveAddr
// replies, leaving the node permanently unreachable with no diagnosis.
func EncodeAddrMap(addrs map[NodeID]string) ([]byte, error) {
	ids := make([]NodeID, 0, len(addrs))
	for id := range addrs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var out []byte
	for _, id := range ids {
		a := addrs[id]
		if len(a) > 0xFFFF {
			return nil, fmt.Errorf("wire: address of node %d is %d bytes, exceeds the 64 KiB wire bound", id, len(a))
		}
		out = append(out, byte(uint32(id)>>24), byte(uint32(id)>>16), byte(uint32(id)>>8), byte(uint32(id)))
		out = append(out, byte(len(a)>>8), byte(len(a)))
		out = append(out, a...)
	}
	return out, nil
}

// DecodeAddrMap unpacks an EncodeAddrMap payload.
func DecodeAddrMap(b []byte) (map[NodeID]string, error) {
	out := make(map[NodeID]string)
	for i := 0; i < len(b); {
		if i+6 > len(b) {
			return nil, errors.New("wire: truncated address map entry")
		}
		id := NodeID(uint32(b[i])<<24 | uint32(b[i+1])<<16 | uint32(b[i+2])<<8 | uint32(b[i+3]))
		n := int(b[i+4])<<8 | int(b[i+5])
		i += 6
		if i+n > len(b) {
			return nil, errors.New("wire: truncated address map address")
		}
		out[id] = string(b[i : i+n])
		i += n
	}
	return out, nil
}

// Status classifies a reply beyond the free-text Err field, so callers
// can react to specific failure shapes (stale placement, absent block)
// without parsing error strings. Every non-OK status also fills Err, so
// code that only checks OK()/Error() keeps working.
type Status uint8

const (
	// StatusOK is the zero value: the request succeeded.
	StatusOK Status = iota
	// StatusError is a generic failure described only by Err.
	StatusError
	// StatusStaleEpoch rejects a request whose StripeLoc carries an
	// older placement epoch than the serving OSD has learned for the
	// stripe. The caller should invalidate its cached placement,
	// re-resolve at the MDS, and retry.
	StatusStaleEpoch
	// StatusNotFound reports that the addressed block has never been
	// written on this node — a normal state for placed-but-unwritten
	// stripes, and distinct from a transport failure. Recovery uses the
	// distinction to tell "never fully written" from data loss.
	StatusNotFound
	// StatusUnreachable reports that serving the request required a peer
	// that could not be reached — a replica fanout target or a forwarded
	// delta's destination down mid-call. The failure happened one hop
	// beyond the responder, so the classification must ride the reply
	// (via ErrorResp) rather than the transport error the end caller
	// never saw directly.
	StatusUnreachable
)

// ErrStaleEpoch, ErrNotFound, and ErrUnreachable are sentinel errors
// wrapped by Resp.Error for the corresponding statuses, so callers can
// use errors.Is across transport boundaries. Transport implementations
// wrap ErrUnreachable into their own node-down errors, which is what
// lets ErrorResp re-classify a one-hop-away outage.
var (
	ErrStaleEpoch  = errors.New("stale placement epoch")
	ErrNotFound    = errors.New("block not found")
	ErrUnreachable = errors.New("peer unreachable")
)

// Resp is the reply to a Msg.
type Resp struct {
	Err  string
	Code Status // structured classification of Err; StatusOK when Err == ""
	Data []byte
	Ino  uint64
	Loc  StripeLoc
	Val  int64
	// Cost is the modeled synchronous latency the remote side (plus the
	// network, on the simulated transport) contributed to this call.
	Cost time.Duration

	// release returns the pooled buffer Data aliases (if any) to its
	// transport's pool. Installed by AttachRelease, invoked by Release.
	// Never encoded: ownership is a local concern, not a wire one.
	release func()
}

// AttachRelease installs the recycler for the pooled buffer Data
// aliases. Transports that decode responses into pooled memory call it
// right after Decode; everyone else leaves it nil and Release is free.
func (r *Resp) AttachRelease(f func()) { r.release = f }

// Release returns the response's payload buffer to its transport's
// pool. After Release, Data (and anything aliasing it) must not be
// touched — copy what you need first. Calling Release on a response
// with no pooled buffer (the in-process transport, error replies) is a
// no-op; a redundant second call is absorbed by the transport's
// release guard, and the transport's debug poison mode turns both
// misuses (double release, use-after-release) into loud failures.
// Releasing is an optimization, never an obligation: a dropped
// response is collected normally, it just costs the pool a miss.
func (r *Resp) Release() {
	if r.release != nil {
		r.release()
	}
}

// StaleEpochResp builds the structured rejection of a request whose
// placement epoch (have) is older than the serving node's (cur). Val
// carries the current epoch so the caller can log the gap.
func StaleEpochResp(b BlockID, have, cur uint64) *Resp {
	return &Resp{
		Code: StatusStaleEpoch,
		Err:  fmt.Sprintf("stale epoch %d for %v (current %d)", have, b, cur),
		Val:  int64(cur),
	}
}

// NotFoundResp builds the structured "block never written here" reply.
func NotFoundResp(from NodeID, b BlockID) *Resp {
	return &Resp{
		Code: StatusNotFound,
		Err:  fmt.Sprintf("osd%d: no block %v", from, b),
	}
}

// IsStale reports whether the reply is a stale-epoch rejection.
func (r *Resp) IsStale() bool { return r.Code == StatusStaleEpoch }

// IsNotFound reports whether the reply is a structured block-not-found.
func (r *Resp) IsNotFound() bool { return r.Code == StatusNotFound }

// WireSize returns the exact number of bytes this reply occupies on the
// wire — precisely len(r.AppendTo(nil)); see Msg.WireSize.
func (r *Resp) WireSize() int64 {
	return respFixedSize + 4*int64(len(r.Loc.Nodes)) + int64(len(r.Err)) + int64(len(r.Data))
}

// OK reports whether the response carries no error.
func (r *Resp) OK() bool { return r.Err == "" }

// Error converts a non-empty Err field into an error value. Structured
// statuses wrap the matching sentinel so errors.Is(err, ErrStaleEpoch)
// and errors.Is(err, ErrNotFound) work across transports.
func (r *Resp) Error() error {
	if r.Err == "" {
		return nil
	}
	switch r.Code {
	case StatusStaleEpoch:
		return fmt.Errorf("remote: %s: %w", r.Err, ErrStaleEpoch)
	case StatusNotFound:
		return fmt.Errorf("remote: %s: %w", r.Err, ErrNotFound)
	case StatusUnreachable:
		return fmt.Errorf("remote: %s: %w", r.Err, ErrUnreachable)
	}
	return fmt.Errorf("remote: %s", r.Err)
}

// ErrorResp converts an error into a reply, preserving the structured
// classification of any sentinel the error wraps. Without it, a node
// that fails because one of *its* calls failed (a fanout peer down, a
// stale placement seen while forwarding) would flatten the cause into
// free text and the end caller could no longer tell a transient
// fault-window error from a real one.
func ErrorResp(err error) *Resp {
	r := &Resp{Err: err.Error(), Code: StatusError}
	switch {
	case errors.Is(err, ErrStaleEpoch):
		r.Code = StatusStaleEpoch
	case errors.Is(err, ErrNotFound):
		r.Code = StatusNotFound
	case errors.Is(err, ErrUnreachable):
		r.Code = StatusUnreachable
	}
	return r
}
